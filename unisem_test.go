package unisem

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/table"
)

// buildDemo assembles a small heterogeneous system across all four
// source kinds.
func buildDemo(t *testing.T) *System {
	t.Helper()
	sys := New()
	sys.Vocabulary(VocabProduct, "Product Alpha", "Product Beta")
	sys.Vocabulary(VocabDrug, "Drug A")
	sys.Vocabulary(VocabSideEffect, "nausea", "fatigue")

	if err := sys.AddDocument("reviews", "r1", "Customer C-1 rated Product Alpha 5 stars. Battery life was great."); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("reviews", "r2", "Customer C-2 rated Product Alpha 3 stars."); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("reviews", "r3", "Customer C-3 rated Product Beta 2 stars."); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument("notes", "n1", "Patient P-1 received Drug A on 2024-02-02. Patient P-1 reported nausea."); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCSV("sales", strings.NewReader(
		"product,quarter,revenue\nProduct Alpha,Q2,1200\nProduct Beta,Q2,800\nProduct Alpha,Q3,1500\n")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddJSONLines("events", strings.NewReader(`{"id":"e1","product":"Product Alpha","event":"return"}`)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXML("conf", strings.NewReader(`<cfg><svc id="s1"><host>db1</host></svc></cfg>`)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAskBeforeBuild(t *testing.T) {
	sys := New()
	if _, err := sys.Ask("anything"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("err = %v", err)
	}
}

func TestDoubleBuild(t *testing.T) {
	sys := buildDemo(t)
	if err := sys.Build(); !errors.Is(err, ErrAlreadyBuilt) {
		t.Errorf("err = %v", err)
	}
	if err := sys.AddDocument("x", "y", "z"); !errors.Is(err, ErrAlreadyBuilt) {
		t.Errorf("add after build: %v", err)
	}
}

func TestAskStructured(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("What was the revenue of Product Alpha in Q3?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "1500" {
		t.Errorf("answer = %q (plan %s)", ans.Text, ans.Plan)
	}
	if len(ans.Evidence) == 0 {
		t.Error("no evidence")
	}
	if ans.Latency <= 0 {
		t.Error("no latency")
	}
}

func TestAskCrossModal(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("What is the average rating of Product Alpha?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "4" {
		t.Errorf("answer = %q (plan %s)", ans.Text, ans.Plan)
	}
}

func TestAskComparison(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("Compare total revenue for Product Alpha and Product Beta in Q2")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "Product Alpha: 1200, Product Beta: 800" {
		t.Errorf("answer = %q", ans.Text)
	}
}

func TestAskHealthcare(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("Which side effects were reported for Drug A?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "nausea" {
		t.Errorf("answer = %q (plan %s)", ans.Text, ans.Plan)
	}
}

func TestStatsAndTables(t *testing.T) {
	sys := buildDemo(t)
	st := sys.Stats()
	if st.Nodes == 0 || st.Chunks == 0 || st.ExtractedRows == 0 || st.IndexBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	names := sys.Tables()
	joined := strings.Join(names, ",")
	for _, want := range []string{"sales", "ratings", "treatments"} {
		if !strings.Contains(joined, want) {
			t.Errorf("tables = %v missing %s", names, want)
		}
	}
	preview, err := sys.Table("ratings")
	if err != nil || !strings.Contains(preview, "stars") {
		t.Errorf("preview: %v %q", err, preview)
	}
	if _, err := sys.Table("ghost"); err == nil {
		t.Error("ghost table found")
	}
}

func TestExplainEvidence(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("What is the average rating of Product Alpha?")
	if err != nil {
		t.Fatal(err)
	}
	path := sys.ExplainEvidence("What is the average rating of Product Alpha?", ans.Evidence[0].ID)
	if len(path) < 2 {
		t.Errorf("path = %v", path)
	}
}

func TestGraphComponents(t *testing.T) {
	sys := buildDemo(t)
	comps := sys.GraphComponents()
	if len(comps) == 0 || comps[0] < 5 {
		t.Errorf("components = %v", comps)
	}
}

func TestEntropyFlagging(t *testing.T) {
	sys := buildDemo(t)
	// A well-supported structured answer should not be flagged.
	ans, err := sys.Ask("What was the revenue of Product Alpha in Q3?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Flagged {
		t.Errorf("confident answer flagged (entropy %v)", ans.Entropy)
	}
}

func TestStatsBeforeBuild(t *testing.T) {
	sys := New()
	if sys.Stats() != (Stats{}) {
		t.Error("stats before build should be zero")
	}
	if sys.Tables() != nil || sys.GraphComponents() != nil {
		t.Error("accessors before build should be nil")
	}
}

func TestOptionsNormalization(t *testing.T) {
	sys := NewWithOptions(Options{})
	if sys.opts.EvidenceK <= 0 || sys.opts.EntropySamples <= 0 || sys.opts.FlagThreshold <= 0 {
		t.Errorf("options not normalized: %+v", sys.opts)
	}
}

func TestAddCSVErrors(t *testing.T) {
	sys := New()
	if err := sys.AddCSV("bad", strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if err := sys.AddJSONLines("bad", strings.NewReader("{broken")); err == nil {
		t.Error("broken json accepted")
	}
	if err := sys.AddXML("bad", strings.NewReader("<unclosed>")); err == nil {
		t.Error("broken xml accepted")
	}
}

func TestDescribeTableDumpsStatsAndZones(t *testing.T) {
	sys := buildDemo(t)
	name := sys.Tables()[0]
	desc, err := sys.DescribeTable(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stats: table " + name, "ndv=", "zones:", "frag[0]"} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeTable(%s) missing %q:\n%s", name, want, desc)
		}
	}
	if _, err := sys.DescribeTable("no_such_table"); err == nil {
		t.Error("DescribeTable of unknown table did not error")
	} else {
		// The one-line error lists every known table, so a -stats typo
		// is self-correcting at the CLI.
		if !strings.Contains(err.Error(), "known tables: ") || !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-table error does not list known tables: %v", err)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("unknown-table error is not one line: %q", err)
		}
	}
	if _, err := New().DescribeTable(name); err == nil {
		t.Error("DescribeTable before Build did not error")
	}
}

func TestRollupSurface(t *testing.T) {
	def := table.RollupDef{
		Name:    "ratings_by_product",
		Base:    "ratings",
		GroupBy: []string{"product"},
		Aggs: []table.Agg{
			{Func: table.AggAvg, Col: "stars"},
			{Func: table.AggCount, Col: "", As: "n"},
		},
	}
	if err := New().AddRollup(def); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("AddRollup before Build = %v, want ErrNotBuilt", err)
	}
	if got := New().Rollups(); got != nil {
		t.Fatalf("Rollups before Build = %v, want nil", got)
	}
	if _, err := New().DescribeRollup("x"); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("DescribeRollup before Build = %v, want ErrNotBuilt", err)
	}

	sys := buildDemo(t)
	if err := sys.AddRollup(def); err != nil {
		t.Fatal(err)
	}
	defs := sys.Rollups()
	if len(defs) != 1 || defs[0].Name != "ratings_by_product" {
		t.Fatalf("Rollups = %v, want [ratings_by_product]", defs)
	}
	desc, err := sys.DescribeRollup("ratings_by_product")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rollup ratings_by_product", "rows=", "epoch="} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeRollup missing %q:\n%s", want, desc)
		}
	}
	// The unknown-rollup error lists every registered rollup, matching
	// the unknown-table convention, so a -rollup-stats typo is
	// self-correcting at the CLI.
	if _, err := sys.DescribeRollup("no_such_rollup"); err == nil {
		t.Error("DescribeRollup of unknown rollup did not error")
	} else if !strings.Contains(err.Error(), "known rollups: ratings_by_product") {
		t.Errorf("unknown-rollup error does not list known rollups: %v", err)
	}

	// Asking through the registered rollup routes transparently and
	// preserves the answer.
	ans, err := sys.Ask("What is the average rating of Product Alpha?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "4" {
		t.Errorf("routed answer = %q, want 4 (plan %s)", ans.Text, ans.Plan)
	}
	if !strings.Contains(ans.Explain, "rollup:   ratings -> ratings_by_product") {
		t.Errorf("EXPLAIN missing rollup routing line:\n%s", ans.Explain)
	}
}
