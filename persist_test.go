package unisem

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := buildDemo(t)

	// Reference answers before save.
	questions := []string{
		"What was the revenue of Product Alpha in Q3?",
		"What is the average rating of Product Alpha?",
		"Which side effects were reported for Drug A?",
	}
	want := map[string]string{}
	for _, q := range questions {
		ans, err := orig.Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = ans.Text
	}

	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"graph.json", "catalog.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}

	loaded, err := Load(dir, func(s *System) {
		s.Vocabulary(VocabProduct, "Product Alpha", "Product Beta")
		s.Vocabulary(VocabDrug, "Drug A")
		s.Vocabulary(VocabSideEffect, "nausea", "fatigue")
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same stats shape.
	if loaded.Stats().Nodes != orig.Stats().Nodes {
		t.Errorf("nodes: %d vs %d", loaded.Stats().Nodes, orig.Stats().Nodes)
	}
	// Same answers.
	for _, q := range questions {
		ans, err := loaded.Ask(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if ans.Text != want[q] {
			t.Errorf("%q: loaded %q, want %q", q, ans.Text, want[q])
		}
	}
	// Loaded system supports live ingest too.
	if err := loaded.Ingest("reviews", "r-after-load", "Customer C-8 rated Product Beta 4 stars."); err != nil {
		t.Fatal(err)
	}
}

func TestSaveBeforeBuild(t *testing.T) {
	if err := New().Save(t.TempDir()); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope"), nil); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestLoadCorruptGraph(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "graph.json"), []byte("{bad"), 0o644)
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{}"), 0o644)
	if _, err := Load(dir, nil); err == nil {
		t.Error("corrupt graph accepted")
	}
}

func TestLoadCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	sys := buildDemo(t)
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{bad"), 0o644)
	if _, err := Load(dir, nil); err == nil {
		t.Error("corrupt catalog accepted")
	}
}
