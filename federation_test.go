package unisem

import (
	"strings"
	"testing"

	"repro/internal/federate"
	"repro/internal/table"
)

// federationQuestions exercise every plan shape through the public
// API: filter, group-by, join, compare, list.
var federationQuestions = []string{
	"What was the revenue of Product Alpha in Q2?",
	"What is the average revenue by product?",
	"Compare revenue of Product Alpha vs Product Beta",
	"Which products had a revenue of more than 1000?",
}

// TestSaveLoadFederatedRoundTrip proves a persisted system answers
// through the federated path exactly like the freshly built one:
// identical answers and identical EXPLAIN plans for every shape.
func TestSaveLoadFederatedRoundTrip(t *testing.T) {
	built := buildDemo(t)
	dir := t.TempDir()
	if err := built.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, func(s *System) {
		s.Vocabulary(VocabProduct, "Product Alpha", "Product Beta")
		s.Vocabulary(VocabDrug, "Drug A")
		s.Vocabulary(VocabSideEffect, "nausea", "fatigue")
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range federationQuestions {
		orig, err := built.Ask(q)
		if err != nil {
			t.Fatalf("%q: built system failed to answer: %v", q, err)
		}
		if orig.Text == "" || orig.Explain == "" {
			t.Fatalf("%q: built system gave no planned answer (text %q, explain %q)", q, orig.Text, orig.Explain)
		}
		redo, err := loaded.Ask(q)
		if err != nil {
			t.Fatalf("%q: loaded system failed to answer: %v", q, err)
		}
		if orig.Text != redo.Text {
			t.Errorf("%q: loaded answer %q differs from built %q", q, redo.Text, orig.Text)
		}
		if orig.Plan != redo.Plan {
			t.Errorf("%q: loaded plan differs:\n%s\nvs\n%s", q, redo.Plan, orig.Plan)
		}
		if orig.Explain != redo.Explain {
			t.Errorf("%q: loaded EXPLAIN differs:\n%s\nvs\n%s", q, redo.Explain, orig.Explain)
		}
	}
}

// staticBackend serves one fixed table — the minimal external store.
type staticBackend struct {
	tbl *table.Table
}

func (sb staticBackend) Name() string                    { return "static" }
func (sb staticBackend) Tables() []string                { return []string{sb.tbl.Name} }
func (sb staticBackend) Caps() federate.Caps             { return federate.CapFilter }
func (sb staticBackend) CanPush(string, table.Pred) bool { return true }
func (sb staticBackend) Estimate(tbl string, preds []table.Pred) (federate.Estimate, bool) {
	if !strings.EqualFold(tbl, sb.tbl.Name) {
		return federate.Estimate{}, false
	}
	n := sb.tbl.Len()
	return federate.Estimate{Total: n, Scanned: n, Out: n, Cost: float64(n)}, true
}
func (sb staticBackend) Scan(f federate.Fragment) (federate.Result, error) {
	cur := sb.tbl
	if len(f.Preds) > 0 {
		var err error
		cur, err = table.Filter(sb.tbl, f.Preds...)
		if err != nil {
			return federate.Result{}, err
		}
	}
	return federate.Result{Table: cur, Scanned: sb.tbl.Len()}, nil
}

// TestRegisterBackendRoutesExternalTable registers a backend serving a
// table the catalog does not have and checks the planner binds and
// routes to it — the RegisterBackend federation path end to end.
func TestRegisterBackendRoutesExternalTable(t *testing.T) {
	sys := buildDemo(t)

	inv := table.New("latencies", table.Schema{
		{Name: "service", Type: table.TypeString},
		{Name: "latency_ms", Type: table.TypeFloat},
	})
	inv.MustAppend([]table.Value{table.S("api"), table.F(120)})
	inv.MustAppend([]table.Value{table.S("db"), table.F(40)})
	inv.MustAppend([]table.Value{table.S("cache"), table.F(8)})
	sys.RegisterBackend(staticBackend{tbl: inv})

	found := false
	for _, b := range sys.Backends() {
		if b == "static" {
			found = true
		}
	}
	if !found {
		t.Fatalf("backends = %v, want static registered", sys.Backends())
	}

	ans, err := sys.Ask("What is the average latency?")
	if err != nil {
		t.Fatalf("ask over external backend: %v", err)
	}
	if ans.Text != "56" { // (120+40+8)/3
		t.Errorf("answer = %q, want 56", ans.Text)
	}
	if !strings.Contains(ans.Explain, "backend=static") {
		t.Errorf("EXPLAIN does not route to the external backend:\n%s", ans.Explain)
	}
}

// TestExplainExposedThroughPublicAPI pins the public Answer.Explain
// surface used by uniquery -explain.
func TestExplainExposedThroughPublicAPI(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("What was the revenue of Product Alpha in Q2?")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"logical:", "physical:", "backend=", "est: scan", "actual: scan"} {
		if !strings.Contains(ans.Explain, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, ans.Explain)
		}
	}
}
