package unisem

import (
	"sync"
	"testing"
)

// Ask must be safe from multiple goroutines after Build (run with
// -race to verify).
func TestConcurrentAsk(t *testing.T) {
	sys := buildDemo(t)
	questions := []string{
		"What was the revenue of Product Alpha in Q3?",
		"What is the average rating of Product Alpha?",
		"Which side effects were reported for Drug A?",
		"Compare total revenue for Product Alpha and Product Beta in Q2",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := questions[(w+i)%len(questions)]
				if _, err := sys.Ask(q); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Ask: %v", err)
	}
}

// Concurrent asks must not change structured answers (they are
// deterministic regardless of RNG interleaving).
func TestConcurrentAskDeterministicAnswers(t *testing.T) {
	sys := buildDemo(t)
	const q = "What was the revenue of Product Alpha in Q3?"
	var wg sync.WaitGroup
	answers := make([]string, 16)
	for i := range answers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := sys.Ask(q)
			if err == nil {
				answers[i] = ans.Text
			}
		}(i)
	}
	wg.Wait()
	for i, a := range answers {
		if a != "1500" {
			t.Errorf("answer[%d] = %q", i, a)
		}
	}
}
