package unisem

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Ask must be safe from multiple goroutines after Build (run with
// -race to verify).
func TestConcurrentAsk(t *testing.T) {
	sys := buildDemo(t)
	questions := []string{
		"What was the revenue of Product Alpha in Q3?",
		"What is the average rating of Product Alpha?",
		"Which side effects were reported for Drug A?",
		"Compare total revenue for Product Alpha and Product Beta in Q2",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := questions[(w+i)%len(questions)]
				if _, err := sys.Ask(q); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Ask: %v", err)
	}
}

// Concurrent asks must not change structured answers (they are
// deterministic regardless of RNG interleaving).
func TestConcurrentAskDeterministicAnswers(t *testing.T) {
	sys := buildDemo(t)
	const q = "What was the revenue of Product Alpha in Q3?"
	var wg sync.WaitGroup
	answers := make([]string, 16)
	for i := range answers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := sys.Ask(q)
			if err == nil {
				answers[i] = ans.Text
			}
		}(i)
	}
	wg.Wait()
	for i, a := range answers {
		if a != "1500" {
			t.Errorf("answer[%d] = %q", i, a)
		}
	}
}

// Ingest and Ask must interleave safely from concurrent goroutines (run
// with -race): writers extend the live index while readers answer.
func TestConcurrentIngestAndAsk(t *testing.T) {
	sys := buildDemo(t)
	questions := []string{
		"What was the revenue of Product Alpha in Q3?",
		"What is the average rating of Product Alpha?",
		"Which side effects were reported for Drug A?",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				id := fmt.Sprintf("live-%d-%d", w, i)
				doc := fmt.Sprintf("Customer C-%d%d rated Product Beta %d stars.", w, i, i%5+1)
				if err := sys.Ingest("live", id, doc); err != nil {
					errs <- fmt.Errorf("ingest %s: %w", id, err)
				}
			}
		}(w)
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := questions[(w+i)%len(questions)]
				if _, err := sys.Ask(q); err != nil && !errors.Is(err, ErrNoAnswer) {
					errs <- fmt.Errorf("ask %q: %w", q, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The writers' documents must all have landed.
	if st := sys.Stats(); st.Nodes == 0 {
		t.Errorf("stats after concurrent ingest: %+v", st)
	}
	if ans, err := sys.Ask("What was the revenue of Product Alpha in Q3?"); err != nil || ans.Text != "1500" {
		t.Errorf("post-ingest ask = (%q, %v)", ans.Text, err)
	}
}

// AskAll must return per-question answers in order, identical across
// worker counts.
func TestAskAllDeterministic(t *testing.T) {
	sysA := buildDemo(t)
	sysB := buildDemo(t)
	questions := []string{
		"What was the revenue of Product Alpha in Q3?",
		"What is the average rating of Product Alpha?",
		"What was the revenue of Product Beta in Q2?",
	}
	seq, err := sysA.AskAll(questions, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sysB.AskAll(questions, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range questions {
		if seq[i].Text != par[i].Text || seq[i].Entropy != par[i].Entropy {
			t.Errorf("[%d] %q: seq (%q, %v) vs par (%q, %v)",
				i, questions[i], seq[i].Text, seq[i].Entropy, par[i].Text, par[i].Entropy)
		}
	}
	if seq[0].Text != "1500" {
		t.Errorf("batch answer[0] = %q", seq[0].Text)
	}
}

// Workers must not change what Build produces: public stats and answers
// are identical between a sequential and a parallel build.
func TestParallelBuildSameAsSequentialPublic(t *testing.T) {
	build := func(workers int) *System {
		opts := DefaultOptions()
		opts.Workers = workers
		sys := NewWithOptions(opts)
		sys.Vocabulary(VocabProduct, "Product Alpha", "Product Beta")
		for i := 0; i < 16; i++ {
			doc := fmt.Sprintf("Customer C-%d rated Product Alpha %d stars. Customer C-%d returned Product Beta.", i, i%5+1, i+100)
			if err := sys.AddDocument("reviews", fmt.Sprintf("r%d", i), doc); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.AddCSV("sales", strings.NewReader(
			"product,quarter,revenue\nProduct Alpha,Q2,1200\nProduct Beta,Q2,800\n")); err != nil {
			t.Fatal(err)
		}
		if err := sys.Build(); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	seq, par := build(1), build(8)
	ss, sp := seq.Stats(), par.Stats()
	ss.BuildTime, sp.BuildTime = 0, 0
	if ss != sp {
		t.Errorf("stats diverge:\n  seq %+v\n  par %+v", ss, sp)
	}
	for _, q := range []string{
		"What was the revenue of Product Alpha in Q2?",
		"What is the average rating of Product Alpha?",
	} {
		a, errA := seq.Ask(q)
		b, errB := par.Ask(q)
		if (errA == nil) != (errB == nil) || a.Text != b.Text {
			t.Errorf("%q: seq (%q, %v) vs par (%q, %v)", q, a.Text, errA, b.Text, errB)
		}
	}
}
