// Healthcare cross-modal QA: the paper's introduction scenario —
// "Compare the efficacy of Drug A (from clinical trial tables) with
// patient-reported side effects (from unstructured forums)". Trial
// results are a native structured table; side effects exist only in
// clinical notes and forum posts, and become queryable through
// SLM-driven Relational Table Generation. Evidence provenance is shown
// as graph paths.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	sys := unisem.New()
	sys.Vocabulary(unisem.VocabDrug, "Drug A", "Drug B")
	sys.Vocabulary(unisem.VocabSideEffect, "nausea", "fatigue", "dizziness", "headache")

	// Structured: trial results.
	if err := sys.AddCSV("trial_results", strings.NewReader(
		"drug,efficacy_pct,enrolled\nDrug A,72,40\nDrug B,55,38\n")); err != nil {
		log.Fatal(err)
	}

	// Unstructured: clinical notes.
	notes := map[string]string{
		"n1": "Patient P-1 received Drug A on 2024-02-10. Patient P-1 reported nausea.",
		"n2": "Patient P-2 received Drug A on 2024-02-12. Patient P-2 reported fatigue.",
		"n3": "Patient P-3 received Drug B on 2024-03-01. Patient P-3 reported dizziness.",
		"n4": "Patient P-4 received Drug B on 2024-03-04.",
	}
	for id, text := range notes {
		if err := sys.AddDocument("notes", id, text); err != nil {
			log.Fatal(err)
		}
	}

	// Unstructured: patient forums.
	forums := map[string]string{
		"f1": "Patients on Drug A reported nausea after the second week.",
		"f2": "Patients on Drug B reported dizziness and headache.",
	}
	for id, text := range forums {
		if err := sys.AddDocument("forums", id, text); err != nil {
			log.Fatal(err)
		}
	}

	// Semi-structured: facility config.
	if err := sys.AddXML("facilities", strings.NewReader(
		`<sites><site id="s1"><city>Metropolis</city><beds>50</beds></site></sites>`)); err != nil {
		log.Fatal(err)
	}

	if err := sys.Build(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tables after ingest: %v\n\n", sys.Tables())

	questions := []string{
		"Compare the efficacy of Drug A and Drug B",
		"Which side effects were reported for Drug A?",
		"Which side effects were reported for Drug B?",
		"How many patients received Drug A?",
	}
	for _, q := range questions {
		ans, err := sys.Ask(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		fmt.Printf("Q: %s\nA: %s\n   plan: %s\n", q, ans.Text, ans.Plan)
		if len(ans.Evidence) > 0 {
			path := sys.ExplainEvidence(q, ans.Evidence[0].ID)
			if len(path) > 0 {
				fmt.Printf("   provenance: %s\n", strings.Join(path, " -> "))
			}
		}
		fmt.Println()
	}
}
