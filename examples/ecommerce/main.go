// E-commerce Multi-Entity QA: the paper's Section III.C scenario — a
// data lake of unstructured customer reviews, free-text sales reports,
// structured catalog/sales tables and JSON events, queried with
// complex multi-entity questions including the flagship cross-modal
// join ("average customer satisfaction of products whose sales grew
// more than 15%").
//
// The corpus comes from the seeded synthetic generator so answers are
// verifiable; everything is ingested through the public API.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	corpus := workload.ECommerce(workload.DefaultECommerceOptions())
	sys := unisem.New()
	for kind, phrases := range corpus.Vocab() {
		sys.Vocabulary(unisem.VocabKind(kind), phrases...)
	}
	for _, rec := range corpus.Sources.Records() {
		if rec.Kind == store.KindText {
			if err := sys.AddDocument(rec.Source, rec.ID, rec.Text); err != nil {
				log.Fatal(err)
			}
		}
	}
	cat := corpus.NativeCatalog()
	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			log.Fatal(err)
		}
		if err := sys.AddCSV(name, &buf); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Build(); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("corpus: %d chunks, %d entities, %d cues; SLM generated %d rows into tables %v\n\n",
		st.Chunks, st.Entities, st.Cues, st.ExtractedRows, sys.Tables())

	// Show a generated table — Relational Table Generation output.
	preview, err := sys.Table("metric_changes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLM-generated table metric_changes:\n%s\n", preview)

	// Run the generated workload, checking answers against gold.
	correct := 0
	for _, q := range corpus.Queries {
		ans, err := sys.Ask(q.Text)
		status := "OK"
		switch {
		case err != nil:
			status = fmt.Sprintf("ERR %v", err)
		case ans.Text != q.Gold:
			status = fmt.Sprintf("MISMATCH got %q want %q", ans.Text, q.Gold)
		default:
			correct++
		}
		fmt.Printf("[%-16s] %s\n  -> %s (%s)\n", q.Class, q.Text, ans.Text, status)
	}
	fmt.Printf("\n%d/%d exact matches across query classes\n", correct, len(corpus.Queries))
}
