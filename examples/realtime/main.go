// Real-time analytics and knowledge construction (the paper's
// future-work section, implemented): documents stream into a live
// system with no rebuild, answers update immediately, the inferred
// knowledge base grows, and the whole index persists to disk and loads
// back.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	sys := unisem.New()
	sys.Vocabulary(unisem.VocabProduct, "Product Alpha")

	// Initial corpus: one review and a sales table.
	if err := sys.AddDocument("reviews", "r1", "Customer C-1 rated Product Alpha 2 stars. Shipping was slow."); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddCSV("sales", strings.NewReader("product,quarter,revenue\nProduct Alpha,Q1,900\n")); err != nil {
		log.Fatal(err)
	}
	if err := sys.Build(); err != nil {
		log.Fatal(err)
	}

	const q = "What is the average rating of Product Alpha?"
	ans, err := sys.Ask(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=0  %s -> %s  (graph: %d nodes)\n", q, ans.Text, sys.Stats().Nodes)

	// Reviews stream in; every Ingest updates graph, tables and
	// retrieval priors in place.
	stream := []string{
		"Customer C-2 rated Product Alpha 5 stars. Battery life impressed everyone.",
		"Customer C-3 rated Product Alpha 5 stars.",
	}
	for i, text := range stream {
		if err := sys.Ingest("reviews", fmt.Sprintf("live-%d", i), text); err != nil {
			log.Fatal(err)
		}
		ans, err = sys.Ask(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%d  %s -> %s  (graph: %d nodes)\n", i+1, q, ans.Text, sys.Stats().Nodes)
	}

	// The knowledge base grew along the way.
	fmt.Println("\nknowledge facts (subject  predicate  object  sources):")
	if err := sys.ExportKnowledge(os.Stdout, unisem.KnowledgeTSV); err != nil {
		log.Fatal(err)
	}

	// Persist and reload: answers survive the round trip.
	dir := filepath.Join(os.TempDir(), "unisem-demo-index")
	if err := sys.Save(dir); err != nil {
		log.Fatal(err)
	}
	loaded, err := unisem.Load(dir, func(s *unisem.System) {
		s.Vocabulary(unisem.VocabProduct, "Product Alpha")
	})
	if err != nil {
		log.Fatal(err)
	}
	ans, err = loaded.Ask(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreloaded from %s -> %s (same answer, no re-ingest)\n", dir, ans.Text)
}
