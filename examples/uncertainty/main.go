// Uncertainty quantification with semantic entropy (paper Section
// III.D): a question the corpus answers consistently yields low
// entropy; a question the corpus contradicts itself about yields high
// entropy and gets flagged for human review — the paper's legal-advice
// example, recast over business data.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	sys := unisem.NewWithOptions(unisem.Options{
		EvidenceK:      8,
		EntropySamples: 10,
		FlagThreshold:  0.6,
		Seed:           3,
	})
	sys.Vocabulary(unisem.VocabProduct, "Product Alpha", "Product Beta")

	// Consistent facts about Product Alpha.
	consistent := []string{
		"Product Alpha sales increased 20% in Q2.",
		"The Q2 report confirms Product Alpha sales increased 20%.",
		"According to finance, Product Alpha sales increased 20% in Q2.",
	}
	// Contradictory reporting about Product Beta — three sources give
	// three different numbers.
	contradictory := []string{
		"Product Beta sales increased 5% in Q2.",
		"Product Beta sales increased 18% in Q2.",
		"Product Beta sales decreased 7% in Q2.",
	}
	for i, text := range consistent {
		if err := sys.AddDocument("reports", fmt.Sprintf("alpha-%d", i), text); err != nil {
			log.Fatal(err)
		}
	}
	for i, text := range contradictory {
		if err := sys.AddDocument("reports", fmt.Sprintf("beta-%d", i), text); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Build(); err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		"How much did Product Alpha sales increase in Q2?",
		"How much did Product Beta sales increase in Q2?",
	} {
		ans, err := sys.Ask(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		verdict := "reliable"
		if ans.Flagged {
			verdict = "FLAGGED for human review"
		}
		fmt.Printf("Q: %s\nA: %s\n   semantic entropy: %.3f -> %s\n", q, ans.Text, ans.Entropy, verdict)
		fmt.Printf("   evidence seen: %d items\n", len(ans.Evidence))
		fmt.Println(strings.Repeat("-", 60))
	}
	fmt.Println("\nLow entropy = answers cluster on one meaning; high entropy = the")
	fmt.Println("model diverges across samples, so the answer is surfaced with a flag.")
}
