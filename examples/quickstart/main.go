// Quickstart: ingest three kinds of sources, build the index, ask two
// questions — one answered from a native table, one answered from a
// table the SLM generated out of free text.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	sys := unisem.New()

	// Teach the tagger the domain vocabulary.
	sys.Vocabulary(unisem.VocabProduct, "Product Alpha", "Product Beta")

	// Unstructured: customer reviews (ratings live ONLY here).
	reviews := map[string]string{
		"r1": "Customer C-1 rated Product Alpha 5 stars. Battery life was excellent.",
		"r2": "Customer C-2 rated Product Alpha 4 stars.",
		"r3": "Customer C-3 rated Product Beta 2 stars. Shipping was slow.",
	}
	for id, text := range reviews {
		if err := sys.AddDocument("reviews", id, text); err != nil {
			log.Fatal(err)
		}
	}

	// Structured: quarterly sales.
	csv := "product,quarter,revenue\n" +
		"Product Alpha,Q2,1200\nProduct Beta,Q2,800\nProduct Alpha,Q3,1500\n"
	if err := sys.AddCSV("sales", strings.NewReader(csv)); err != nil {
		log.Fatal(err)
	}

	// Semi-structured: JSON events.
	if err := sys.AddJSONLines("events", strings.NewReader(
		`{"id":"e1","product":"Product Beta","event":"return"}`)); err != nil {
		log.Fatal(err)
	}

	if err := sys.Build(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("built: %d nodes, %d edges, %d extracted rows, tables: %v\n\n",
		st.Nodes, st.Edges, st.ExtractedRows, sys.Tables())

	for _, q := range []string{
		"What was the revenue of Product Alpha in Q3?", // native table
		"What is the average rating of Product Alpha?", // SLM-generated table
		"Compare total revenue for Product Alpha and Product Beta in Q2",
	} {
		ans, err := sys.Ask(q)
		if err != nil {
			log.Fatalf("%q: %v", q, err)
		}
		fmt.Printf("Q: %s\nA: %s\n   plan: %s\n   entropy: %.3f\n\n", q, ans.Text, ans.Plan, ans.Entropy)
	}
}
