package unisem

import (
	"errors"
	"strings"
	"testing"
)

func TestQueryBeforeBuild(t *testing.T) {
	sys := New()
	if _, err := sys.Query("SELECT * FROM sales"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("err = %v", err)
	}
}

// TestQuerySQLEntry drives the public SQL entry path: the statement
// compiles onto the shared logical IR, executes federated, and returns
// the same rows the table engine would.
func TestQuerySQLEntry(t *testing.T) {
	sys := buildDemo(t)
	res, err := sys.Query("SELECT quarter, SUM(revenue) AS result FROM sales WHERE product = 'Product Alpha' GROUP BY quarter ORDER BY quarter")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "quarter" || res.Columns[1] != "result" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != "1200" || res.Rows[1][1] != "1500" {
		t.Errorf("rows = %v", res.Rows)
	}
	if !strings.Contains(res.Explain, "rules:") || !strings.Contains(res.Explain, "physical:") {
		t.Errorf("explain missing sections:\n%s", res.Explain)
	}
	if !strings.Contains(res.Plan, "Scan(sales") {
		t.Errorf("plan = %q", res.Plan)
	}

	if _, err := sys.Query("SELECT nope FROM sales"); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := sys.Query("not sql at all"); err == nil {
		t.Error("unparseable statement accepted")
	}
}

// TestQueryMatchesAsk pins the SQL and NL entries to the same numbers:
// the SQL form of an answered question returns the value the NL answer
// reports.
func TestQueryMatchesAsk(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("What was the revenue of Product Alpha in Q2?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query("SELECT revenue FROM sales WHERE product = 'Product Alpha' AND quarter = 'Q2'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != ans.Text {
		t.Errorf("SQL rows %v vs NL answer %q", res.Rows, ans.Text)
	}
}
