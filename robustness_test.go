package unisem

import (
	"strings"
	"testing"
)

// Adversarial and degenerate inputs must never panic and must degrade
// to clean errors or low-confidence answers.

func TestBuildEmptySystem(t *testing.T) {
	sys := New()
	if err := sys.Build(); err != nil {
		t.Fatalf("empty build should succeed: %v", err)
	}
	ans, err := sys.Ask("anything at all?")
	if err == nil && ans.Text != "" {
		t.Errorf("empty system answered %q", ans.Text)
	}
}

func TestAdversarialDocuments(t *testing.T) {
	sys := New()
	sys.Vocabulary(VocabProduct, "Product Alpha")
	adversarial := map[string]string{
		"quotes":  `Customer C-1 rated "Product Alpha" 5 stars. It's the 'best'.`,
		"sqlish":  "SELECT * FROM users; DROP TABLE sales; -- rated 1 stars",
		"unicode": "顧客 C-2 rated Product Alpha 4 stars. Ünïcödé résumé ω≈π.",
		"long":    strings.Repeat("word ", 5000),
		"empty":   "",
		"newline": "line one\n\n\nline two.\r\nline three.",
		"control": "null\x00byte and tab\there",
	}
	for id, text := range adversarial {
		if err := sys.AddDocument("docs", id, text); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if err := sys.AddCSV("sales", strings.NewReader("product,revenue\nProduct Alpha,100\n")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	// The system must survive queries echoing the adversarial content.
	for _, q := range []string{
		"SELECT * FROM users",
		"'; DROP TABLE sales; --",
		"What is the average rating of Product Alpha?",
		strings.Repeat("alpha ", 500),
		"",
	} {
		ans, err := sys.Ask(q)
		_ = ans
		_ = err // any outcome is fine as long as it returns
	}
}

func TestAskEmptyQuestion(t *testing.T) {
	sys := buildDemo(t)
	ans, err := sys.Ask("")
	if err == nil && ans.Text != "" {
		t.Logf("empty question answered %q — acceptable only with weak confidence", ans.Text)
	}
}

func TestQuestionWithOnlyStopwords(t *testing.T) {
	sys := buildDemo(t)
	if _, err := sys.Ask("the of and to in"); err != nil {
		t.Logf("stopword query: %v", err) // clean error is the expected path
	}
}

func TestHugeVocabulary(t *testing.T) {
	sys := New()
	phrases := make([]string, 500)
	for i := range phrases {
		phrases[i] = strings.Repeat("x", i%7+1) + " product"
	}
	sys.Vocabulary(VocabProduct, phrases...)
	sys.AddDocument("d", "1", "Some xx product was rated 3 stars.")
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestManySmallDocuments(t *testing.T) {
	sys := New()
	sys.Vocabulary(VocabProduct, "Product Alpha")
	for i := 0; i < 300; i++ {
		sys.AddDocument("docs", strings.Repeat("d", i%5+1)+string(rune('a'+i%26))+strings.Repeat("x", i/26), "Product Alpha appeared.")
	}
	if err := sys.Build(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Chunks == 0 {
		t.Error("no chunks")
	}
}
