// Package par holds the repository's bounded-parallelism primitives so
// every fan-out site shares one worker-count convention and one pool
// implementation: 0 means GOMAXPROCS, 1 means run on the calling
// goroutine, n > 1 bounds the pool at n.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: values <= 0 mean
// GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (normalized via Workers). Work is handed out through an atomic
// counter, so callers get load balancing without partition skew. fn
// must write only to its own index's state; ForEach returns after all
// calls complete.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForRange splits [0, n) into up to workers contiguous ranges and runs
// fn(lo, hi) for each. Use it when per-item dispatch would dominate the
// work (tight numeric loops); the fixed partitioning also keeps any
// per-range accumulation order independent of scheduling.
func ForRange(n, workers int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	stride := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += stride {
		hi := lo + stride
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
