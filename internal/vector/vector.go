// Package vector implements the dense vector index substrate used by
// the conventional-RAG baseline the paper compares against (Section I:
// pipelines built on "dense vector retrieval, reranking, and context
// augmentation" with "large-scale vector indexing").
//
// Two indexes are provided: Flat (exact brute-force scan) and IVF
// (inverted file over k-means centroids, probing the nearest nProbe
// partitions). IVF trades a small recall loss for sublinear probe cost,
// matching production vector databases.
package vector

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/slm"
)

// Hit is one search result.
type Hit struct {
	ID    string
	Score float64 // cosine similarity
}

// Index is the common search interface.
type Index interface {
	// Add inserts a vector under id. Dimensions must match the index.
	Add(id string, vec []float32) error
	// Search returns the k nearest ids by cosine similarity,
	// best-first, ties broken by id.
	Search(query []float32, k int) []Hit
	// Len returns the number of stored vectors.
	Len() int
	// SizeBytes estimates resident index size.
	SizeBytes() int64
}

// Sentinel errors.
var (
	ErrDimMismatch = errors.New("vector: dimension mismatch")
	ErrDupID       = errors.New("vector: duplicate id")
)

type entry struct {
	id  string
	vec []float32
}

// Flat is an exact brute-force index.
type Flat struct {
	dim     int
	entries []entry
	ids     map[string]bool
}

// NewFlat returns an exact index for dim-dimensional vectors.
func NewFlat(dim int) *Flat {
	return &Flat{dim: dim, ids: make(map[string]bool)}
}

// Add implements Index.
func (f *Flat) Add(id string, vec []float32) error {
	if len(vec) != f.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(vec), f.dim)
	}
	if f.ids[id] {
		return fmt.Errorf("%w: %s", ErrDupID, id)
	}
	f.ids[id] = true
	f.entries = append(f.entries, entry{id: id, vec: vec})
	return nil
}

// Search implements Index.
func (f *Flat) Search(query []float32, k int) []Hit {
	hits := make([]Hit, 0, len(f.entries))
	for _, e := range f.entries {
		hits = append(hits, Hit{ID: e.id, Score: slm.Cosine(query, e.vec)})
	}
	return topK(hits, k)
}

// Len implements Index.
func (f *Flat) Len() int { return len(f.entries) }

// SizeBytes implements Index.
func (f *Flat) SizeBytes() int64 {
	var b int64
	for _, e := range f.entries {
		b += int64(len(e.id)) + int64(4*len(e.vec)) + 24
	}
	return b
}

// IVF is an inverted-file index: vectors are partitioned by nearest
// k-means centroid and queries probe only the nProbe closest
// partitions.
type IVF struct {
	dim       int
	nlist     int
	nprobe    int
	trained   bool
	centroids [][]float32
	lists     [][]entry
	pending   []entry // held until Train
	ids       map[string]bool
}

// NewIVF returns an IVF index with nlist partitions probing nprobe of
// them per query. Values are clamped to sane minimums.
func NewIVF(dim, nlist, nprobe int) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	if nprobe < 1 {
		nprobe = 1
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	return &IVF{dim: dim, nlist: nlist, nprobe: nprobe, ids: make(map[string]bool)}
}

// Add implements Index. Before Train, vectors accumulate in a pending
// buffer; after Train they are routed to their nearest partition.
func (ix *IVF) Add(id string, vec []float32) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimMismatch, len(vec), ix.dim)
	}
	if ix.ids[id] {
		return fmt.Errorf("%w: %s", ErrDupID, id)
	}
	ix.ids[id] = true
	e := entry{id: id, vec: vec}
	if !ix.trained {
		ix.pending = append(ix.pending, e)
		return nil
	}
	ix.lists[ix.nearestCentroid(vec)] = append(ix.lists[ix.nearestCentroid(vec)], e)
	return nil
}

// Train runs k-means (k-means++ style seeding from a deterministic
// stride, fixed iteration budget) over the pending vectors and
// partitions them. Training with fewer vectors than partitions reduces
// nlist to the vector count. rngSeed makes the seeding reproducible.
func (ix *IVF) Train(rngSeed uint64) {
	if ix.trained {
		return
	}
	n := len(ix.pending)
	if n == 0 {
		ix.trained = true
		ix.lists = make([][]entry, ix.nlist)
		ix.centroids = make([][]float32, ix.nlist)
		for i := range ix.centroids {
			ix.centroids[i] = make([]float32, ix.dim)
		}
		return
	}
	if ix.nlist > n {
		ix.nlist = n
		if ix.nprobe > ix.nlist {
			ix.nprobe = ix.nlist
		}
	}
	rng := slm.NewRNG(rngSeed)
	// Seed centroids from a random permutation of the data.
	perm := rng.Perm(n)
	ix.centroids = make([][]float32, ix.nlist)
	for i := 0; i < ix.nlist; i++ {
		src := ix.pending[perm[i]].vec
		c := make([]float32, ix.dim)
		copy(c, src)
		ix.centroids[i] = c
	}
	assign := make([]int, n)
	for iter := 0; iter < 10; iter++ {
		changed := false
		for i, e := range ix.pending {
			c := ix.nearestCentroid(e.vec)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([][]float64, ix.nlist)
		counts := make([]int, ix.nlist)
		for i := range sums {
			sums[i] = make([]float64, ix.dim)
		}
		for i, e := range ix.pending {
			c := assign[i]
			counts[c]++
			for d, x := range e.vec {
				sums[c][d] += float64(x)
			}
		}
		for c := 0; c < ix.nlist; c++ {
			if counts[c] == 0 {
				continue // keep the old centroid for empty clusters
			}
			var norm float64
			for d := range ix.centroids[c] {
				m := sums[c][d] / float64(counts[c])
				ix.centroids[c][d] = float32(m)
				norm += m * m
			}
			if norm > 0 {
				inv := float32(1 / math.Sqrt(norm))
				for d := range ix.centroids[c] {
					ix.centroids[c][d] *= inv
				}
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	ix.lists = make([][]entry, ix.nlist)
	for i, e := range ix.pending {
		ix.lists[assign[i]] = append(ix.lists[assign[i]], e)
	}
	ix.pending = nil
	ix.trained = true
}

func (ix *IVF) nearestCentroid(vec []float32) int {
	best, bestScore := 0, math.Inf(-1)
	for i, c := range ix.centroids {
		if s := slm.Cosine(vec, c); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Search implements Index. An untrained index trains itself first with
// a fixed seed.
func (ix *IVF) Search(query []float32, k int) []Hit {
	if !ix.trained {
		ix.Train(1)
	}
	// Rank centroids, probe the closest nprobe lists.
	type cs struct {
		idx   int
		score float64
	}
	order := make([]cs, len(ix.centroids))
	for i, c := range ix.centroids {
		order[i] = cs{idx: i, score: slm.Cosine(query, c)}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].idx < order[j].idx
	})
	var hits []Hit
	for p := 0; p < ix.nprobe && p < len(order); p++ {
		for _, e := range ix.lists[order[p].idx] {
			hits = append(hits, Hit{ID: e.id, Score: slm.Cosine(query, e.vec)})
		}
	}
	return topK(hits, k)
}

// Len implements Index.
func (ix *IVF) Len() int {
	n := len(ix.pending)
	for _, l := range ix.lists {
		n += len(l)
	}
	return n
}

// SizeBytes implements Index.
func (ix *IVF) SizeBytes() int64 {
	var b int64
	for _, l := range ix.lists {
		for _, e := range l {
			b += int64(len(e.id)) + int64(4*len(e.vec)) + 24
		}
	}
	for _, e := range ix.pending {
		b += int64(len(e.id)) + int64(4*len(e.vec)) + 24
	}
	b += int64(len(ix.centroids)) * int64(4*ix.dim)
	return b
}

// topK sorts hits best-first (score desc, id asc) and truncates to k.
func topK(hits []Hit, k int) []Hit {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k >= 0 && k < len(hits) {
		hits = hits[:k]
	}
	return hits
}
