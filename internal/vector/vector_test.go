package vector

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/slm"
)

func embed(texts ...string) [][]float32 {
	e := slm.NewEmbedder(64)
	out := make([][]float32, len(texts))
	for i, t := range texts {
		out[i] = e.Embed(t)
	}
	return out
}

func TestFlatSearchExact(t *testing.T) {
	ix := NewFlat(64)
	vecs := embed(
		"sales increased for product alpha",
		"patient reported severe headache",
		"quarterly revenue grew strongly",
	)
	for i, v := range vecs {
		if err := ix.Add(fmt.Sprintf("d%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	q := embed("revenue grew this quarter")[0]
	hits := ix.Search(q, 2)
	if len(hits) != 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].ID != "d2" {
		t.Errorf("top hit = %v", hits[0])
	}
}

func TestFlatErrors(t *testing.T) {
	ix := NewFlat(4)
	if err := ix.Add("a", make([]float32, 3)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim: %v", err)
	}
	ix.Add("a", make([]float32, 4))
	if err := ix.Add("a", make([]float32, 4)); !errors.Is(err, ErrDupID) {
		t.Errorf("dup: %v", err)
	}
}

func TestFlatSearchKLargerThanIndex(t *testing.T) {
	ix := NewFlat(64)
	ix.Add("only", embed("one document")[0])
	if hits := ix.Search(embed("query")[0], 10); len(hits) != 1 {
		t.Errorf("hits = %v", hits)
	}
}

func TestFlatEmptySearch(t *testing.T) {
	ix := NewFlat(8)
	if hits := ix.Search(make([]float32, 8), 5); len(hits) != 0 {
		t.Errorf("empty index returned %v", hits)
	}
}

func TestIVFMatchesFlatOnTop1(t *testing.T) {
	e := slm.NewEmbedder(64)
	flat := NewFlat(64)
	ivf := NewIVF(64, 4, 4) // probing all lists == exact
	docs := []string{
		"alpha sales rose in the second quarter",
		"beta sales fell sharply in q2",
		"patients on drug a reported nausea",
		"drug b reduced fever in the trial",
		"the widget was rated five stars",
		"shipping delays hurt customer satisfaction",
		"revenue reached two million dollars",
		"the clinic enrolled forty patients",
	}
	for i, d := range docs {
		v := e.Embed(d)
		flat.Add(fmt.Sprintf("d%d", i), v)
		ivf.Add(fmt.Sprintf("d%d", i), v)
	}
	ivf.Train(7)
	for _, q := range []string{"how did beta sales do in q2", "what did patients report on drug a"} {
		qv := e.Embed(q)
		f := flat.Search(qv, 1)
		v := ivf.Search(qv, 1)
		if f[0].ID != v[0].ID {
			t.Errorf("query %q: flat %v vs ivf %v", q, f[0], v[0])
		}
	}
}

func TestIVFRecallBoundProperty(t *testing.T) {
	// With nprobe == nlist IVF is exhaustive, so its top-k set must
	// equal Flat's for any corpus.
	e := slm.NewEmbedder(32)
	f := func(seed uint64, n uint8) bool {
		count := int(n%30) + 5
		flat := NewFlat(32)
		ivf := NewIVF(32, 5, 5)
		rng := slm.NewRNG(seed)
		for i := 0; i < count; i++ {
			text := fmt.Sprintf("doc %d token%d token%d", i, rng.Intn(20), rng.Intn(20))
			v := e.Embed(text)
			id := fmt.Sprintf("d%d", i)
			flat.Add(id, v)
			ivf.Add(id, v)
		}
		ivf.Train(seed)
		q := e.Embed(fmt.Sprintf("token%d token%d", rng.Intn(20), rng.Intn(20)))
		fh := flat.Search(q, 3)
		vh := ivf.Search(q, 3)
		if len(fh) != len(vh) {
			return false
		}
		fset := map[string]bool{}
		for _, h := range fh {
			fset[h.ID] = true
		}
		// Scores can tie; require IVF hits to score >= flat's worst.
		worst := fh[len(fh)-1].Score
		for _, h := range vh {
			if !fset[h.ID] && h.Score < worst-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIVFPartialProbeStillFindsNeighbors(t *testing.T) {
	e := slm.NewEmbedder(64)
	ivf := NewIVF(64, 8, 2)
	for i := 0; i < 100; i++ {
		topic := "finance"
		if i%2 == 0 {
			topic = "medicine"
		}
		ivf.Add(fmt.Sprintf("d%d", i), e.Embed(fmt.Sprintf("%s document number %d with words", topic, i)))
	}
	ivf.Train(3)
	hits := ivf.Search(e.Embed("finance document with words"), 10)
	if len(hits) != 10 {
		t.Fatalf("got %d hits", len(hits))
	}
}

func TestIVFUntrainedSearchAutotrains(t *testing.T) {
	e := slm.NewEmbedder(32)
	ivf := NewIVF(32, 2, 1)
	ivf.Add("a", e.Embed("hello world"))
	hits := ivf.Search(e.Embed("hello"), 1)
	if len(hits) != 1 || hits[0].ID != "a" {
		t.Errorf("hits = %v", hits)
	}
}

func TestIVFEmptyTrain(t *testing.T) {
	ivf := NewIVF(8, 4, 2)
	ivf.Train(1)
	if hits := ivf.Search(make([]float32, 8), 3); len(hits) != 0 {
		t.Errorf("empty ivf returned %v", hits)
	}
}

func TestIVFFewerVectorsThanLists(t *testing.T) {
	e := slm.NewEmbedder(32)
	ivf := NewIVF(32, 16, 8)
	ivf.Add("a", e.Embed("one"))
	ivf.Add("b", e.Embed("two"))
	ivf.Train(1)
	if ivf.Len() != 2 {
		t.Errorf("len = %d", ivf.Len())
	}
	hits := ivf.Search(e.Embed("one"), 2)
	if len(hits) != 2 {
		t.Errorf("hits = %v", hits)
	}
}

func TestIVFDupAndDim(t *testing.T) {
	ivf := NewIVF(4, 2, 1)
	if err := ivf.Add("a", make([]float32, 3)); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("dim: %v", err)
	}
	ivf.Add("a", make([]float32, 4))
	if err := ivf.Add("a", make([]float32, 4)); !errors.Is(err, ErrDupID) {
		t.Errorf("dup: %v", err)
	}
}

func TestIVFAddAfterTrain(t *testing.T) {
	e := slm.NewEmbedder(32)
	ivf := NewIVF(32, 2, 2)
	ivf.Add("a", e.Embed("alpha document"))
	ivf.Train(1)
	if err := ivf.Add("b", e.Embed("beta document")); err != nil {
		t.Fatal(err)
	}
	if ivf.Len() != 2 {
		t.Errorf("len = %d", ivf.Len())
	}
	hits := ivf.Search(e.Embed("beta document"), 1)
	if hits[0].ID != "b" {
		t.Errorf("post-train add not searchable: %v", hits)
	}
}

func TestSizeBytes(t *testing.T) {
	e := slm.NewEmbedder(32)
	flat := NewFlat(32)
	ivf := NewIVF(32, 2, 1)
	if flat.SizeBytes() != 0 {
		t.Error("empty flat size != 0")
	}
	flat.Add("a", e.Embed("text"))
	ivf.Add("a", e.Embed("text"))
	if flat.SizeBytes() <= 0 || ivf.SizeBytes() <= 0 {
		t.Error("size must be positive after add")
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := NewFlat(8)
	v := make([]float32, 8)
	v[0] = 1
	ix.Add("b", v)
	ix.Add("a", v)
	hits := ix.Search(v, 2)
	if hits[0].ID != "a" || hits[1].ID != "b" {
		t.Errorf("tie-break order: %v", hits)
	}
}
