package federate

import (
	"fmt"
	"sync"

	"repro/internal/logical"
	"repro/internal/table"
)

// Memory serves every table of an in-process table.Catalog. It is the
// reference backend: full pushdown capability plus lazy per-column
// hash indexes for equality predicates, so a pushed equality filter
// scans only the matching bucket instead of the whole table. Indexes
// are keyed by the catalog epoch and rebuilt after any mutation.
type Memory struct {
	catalog *table.Catalog

	mu    sync.Mutex
	epoch uint64
	idx   map[string]*colIndex // "table\x00column" -> equality index
}

// NewMemory returns a backend over the catalog.
func NewMemory(c *table.Catalog) *Memory {
	return &Memory{catalog: c, idx: make(map[string]*colIndex)}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Tables implements Backend: every catalog table.
func (m *Memory) Tables() []string { return m.catalog.Names() }

// Caps implements Backend: the memory engine absorbs everything.
func (m *Memory) Caps() Caps { return CapFilter | CapProject | CapAggregate }

// CanPush implements Backend: any predicate the table engine evaluates.
func (m *Memory) CanPush(string, table.Pred) bool { return true }

// Zones implements ZoneMapped: the catalog's per-fragment zone maps,
// maintained incrementally by Catalog.Put.
func (m *Memory) Zones(tbl string) *table.Zones { return m.catalog.ZonesOf(tbl) }

// colIndex maps a column value's hash key to the ascending row indexes
// holding it. Ascending order matters: an index-driven scan must yield
// rows in the same order a full-table filter would, so aggregates
// (float summation order) and lookups (first row) are bit-identical to
// the unindexed path.
type colIndex struct {
	buckets map[string][]int
}

// indexable reports whether the predicate can be answered from an
// equality index on its column: Key() equality must coincide with
// Pred.Eval equality, which holds for same-kind values and for
// numeric-vs-numeric comparisons.
func indexable(t *table.Table, p table.Pred) bool {
	if p.Op != table.OpEq || p.Val.IsNull() {
		return false
	}
	ci := t.Schema.ColIndex(p.Col)
	if ci < 0 {
		return false
	}
	ct := t.Schema[ci].Type
	if p.Val.Kind() == ct {
		return true
	}
	return p.Val.IsNumeric() && (ct == table.TypeInt || ct == table.TypeFloat)
}

// indexForLocked returns the equality index for (tbl, col), building
// it on first use. Caller holds m.mu with the epoch already validated.
func (m *Memory) indexForLocked(t *table.Table, col string) *colIndex {
	key := t.Name + "\x00" + col
	if ix, ok := m.idx[key]; ok {
		return ix
	}
	ci := t.Schema.ColIndex(col)
	ix := &colIndex{buckets: make(map[string][]int)}
	for ri, row := range t.Rows {
		v := row[ci]
		if v.IsNull() {
			continue // NULL never satisfies equality
		}
		k := v.Key()
		ix.buckets[k] = append(ix.buckets[k], ri)
	}
	m.idx[key] = ix
	return ix
}

// pickIndex chooses the pushed equality predicate with the smallest
// bucket (first wins ties, so the choice is deterministic) and returns
// its position in preds, or -1 when no predicate is indexable. One
// lock acquisition covers the epoch check and every index touched.
func (m *Memory) pickIndex(t *table.Table, preds []table.Pred) (best int, bucket []int) {
	best = -1
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.catalog.Epoch(); e != m.epoch {
		m.epoch = e
		m.idx = make(map[string]*colIndex)
	}
	for i, p := range preds {
		if !indexable(t, p) {
			continue
		}
		b := m.indexForLocked(t, p.Col).buckets[p.Val.Key()]
		if best == -1 || len(b) < len(bucket) {
			best, bucket = i, b
		}
	}
	return best, bucket
}

// Estimate implements Backend. The smallest equality-index bucket an
// indexable predicate would scan is estimated from the catalog's
// per-column statistics — exact for low-NDV columns, where it equals
// the bucket Scan will actually read — without forcing index builds
// at planning time; remaining predicates flow through the shared
// statistics-driven selectivity model. Deterministic for a fixed
// catalog epoch.
func (m *Memory) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	t, err := m.catalog.Get(tbl)
	if err != nil {
		return Estimate{}, false
	}
	ts := m.catalog.StatsOf(tbl)
	total := t.Len()
	scan, pick := total, -1
	for i, p := range preds {
		if !indexable(t, p) {
			continue
		}
		if est := estEqBucket(ts, total, p); pick == -1 || est < scan {
			pick, scan = i, est
		}
	}
	rest := preds
	if pick >= 0 {
		rest = append(append([]table.Pred(nil), preds[:pick]...), preds[pick+1:]...)
	}
	return Estimate{
		Total:   total,
		Scanned: scan,
		Out:     ts.EstimateRows(scan, rest),
		Cost:    8 + float64(scan),
	}, true
}

// estEqBucket estimates the rows an equality-index bucket holds for
// p's value: the exact per-value count when the column statistics
// keep one, else the statistics-driven (or heuristic) uniform share.
func estEqBucket(ts *table.TableStats, total int, p table.Pred) int {
	if n, ok := ts.Col(p.Col).EqCount(p.Val); ok {
		return n
	}
	return ts.EstimateRows(total, []table.Pred{p})
}

// Scan implements Backend: zone-pruned, index-accelerated filter, then
// aggregation, then projection — the same operator order as the
// unfederated executor, over the same engine, so results are
// identical. When the planner restricted the fragment to surviving row
// ranges, only those rows are read (an equality-index bucket is
// intersected with the ranges first); the pruned fragments are
// provably empty under the pushed conjunction, so skipping them cannot
// change the output.
func (m *Memory) Scan(f Fragment) (Result, error) {
	t, err := m.catalog.Get(f.Table)
	if err != nil {
		return Result{}, err
	}

	cur := t
	scanned := t.Len()
	if f.Ranges != nil && len(f.Ranges) == 0 {
		// Every fragment was refuted at plan time: nothing to read.
		cur, scanned = table.New(t.Name, t.Schema), 0
	} else if len(f.Preds) > 0 {
		pick, bucket := m.pickIndex(t, f.Preds)
		if pick >= 0 {
			if f.Ranges != nil {
				bucket = intersectAscending(bucket, f.Ranges)
			}
			// Bucket rows already satisfy preds[pick]; evaluate only the
			// residue, in ascending row order (== full-filter order).
			var rest []table.Pred
			if len(f.Preds) > 1 {
				rest = append(append(make([]table.Pred, 0, len(f.Preds)-1), f.Preds[:pick]...), f.Preds[pick+1:]...)
			}
			out := table.New(t.Name, t.Schema)
			out.Rows = make([][]table.Value, 0, len(bucket))
			for _, ri := range bucket {
				row := t.Rows[ri]
				keep := true
				for _, p := range rest {
					ok, err := p.Eval(t.Schema, row)
					if err != nil {
						return Result{}, err
					}
					if !ok {
						keep = false
						break
					}
				}
				if keep {
					out.Rows = append(out.Rows, row)
				}
			}
			cur, scanned = out, len(bucket)
		} else {
			// Unindexed filter: run the vectorized kernel over the
			// catalog's cached columnar fragments, honoring the
			// zone-pruned row ranges. Results (rows, order, scanned
			// accounting) are bit-identical to the row kernels.
			cur, scanned, err = logical.VecFilterTable(t, m.catalog.FragsOf(f.Table), f.Ranges, f.Preds, 1)
			if err != nil {
				return Result{}, err
			}
		}
	} else if f.Ranges != nil {
		cur, scanned, err = logical.VecFilterTable(t, m.catalog.FragsOf(f.Table), f.Ranges, nil, 1)
		if err != nil {
			return Result{}, err
		}
	}
	if len(f.Aggs) > 0 {
		// Vectorize only when the catalog's cached fragments cover the
		// input or the input is at least a fragment long — on smaller
		// intermediates the row kernel wins because column extraction
		// cannot amortize. Both kernels are bit-identical, so the
		// dispatch is invisible in results.
		var fr *table.Frags
		if cur == t {
			fr = m.catalog.FragsOf(f.Table)
		}
		if fr != nil || cur.Len() >= table.FragmentRows {
			cur, err = logical.VecAggregateTable(cur, fr, f.GroupBy, f.Aggs, 0, 1)
		} else {
			cur, err = table.Aggregate(cur, f.GroupBy, f.Aggs)
		}
		if err != nil {
			return Result{}, err
		}
	}
	if len(f.Columns) > 0 {
		cur, err = table.Project(cur, f.Columns...)
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Table: cur, Scanned: scanned}
	if cur == t {
		// Pass-through scan: hand the residual executor the table's
		// columnar fragments so it probes and filters without
		// re-extracting columns.
		res.Frags = m.catalog.FragsOf(f.Table)
	}
	return res, nil
}

// intersectAscending keeps the row indexes that fall inside the
// ascending, disjoint ranges; both inputs are ascending, so one merge
// walk suffices and the output preserves row order.
func intersectAscending(rows []int, ranges []table.RowRange) []int {
	out := rows[:0:0]
	j := 0
	for _, ri := range rows {
		for j < len(ranges) && ranges[j].End <= ri {
			j++
		}
		if j == len(ranges) {
			break
		}
		if ri >= ranges[j].Start {
			out = append(out, ri)
		}
	}
	return out
}

// IndexStats reports how many equality indexes are currently built, for
// tests and diagnostics.
func (m *Memory) IndexStats() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return fmt.Sprintf("epoch=%d indexes=%d", m.epoch, len(m.idx))
}
