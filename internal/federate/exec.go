package federate

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/semop"
	"repro/internal/table"
)

// FragmentRun pairs a planned fragment with its actual execution
// counts for the estimated-vs-actual EXPLAIN report.
type FragmentRun struct {
	Fragment
	ActScanned int // base-table rows the backend actually read
	ActOut     int // rows that actually crossed the boundary
}

// Run records one federated execution: the physical plan, per-fragment
// actuals, and the final result size. Everything in a Run is
// deterministic for a fixed corpus and epoch — it is the unit the
// golden EXPLAIN tests snapshot.
type Run struct {
	Plan      *PhysicalPlan
	Fragments []FragmentRun
	RowsOut   int // rows in the final result table
}

// Execute lowers, routes and runs the logical plan: fragments scan
// their backends with bounded parallelism, then the federation layer
// applies the remaining operators (join, comparison, residual filters,
// aggregation, sort, limit, projection) in exactly the order the
// unfederated executor used, so results are identical to semop.Exec
// over a single catalog.
func (e *Executor) Execute(p *semop.Plan) (*table.Table, *Run, error) {
	if p == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	return e.executeKeyed(p, fingerprint(p))
}

// Prepared is a reusable execution handle: the plan fingerprint is
// computed once, so repeated executions pay only the epoch-checked
// cache lookup before scanning. The underlying logical plan must not
// be mutated after Prepare. Re-planning still happens automatically
// whenever the data epoch moves.
type Prepared struct {
	e   *Executor
	p   *semop.Plan
	key string
}

// Prepare returns a reusable handle for the plan.
func (e *Executor) Prepare(p *semop.Plan) *Prepared {
	return &Prepared{e: e, p: p, key: fingerprint(p)}
}

// Execute runs the prepared plan against the current epoch.
func (pr *Prepared) Execute() (*table.Table, *Run, error) {
	if pr.p == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	return pr.e.executeKeyed(pr.p, pr.key)
}

func (e *Executor) executeKeyed(p *semop.Plan, key string) (*table.Table, *Run, error) {
	pp, _, err := e.plan(p, key)
	if err != nil {
		return nil, nil, err
	}

	frags := []Fragment{pp.Main}
	if pp.Join != nil {
		frags = append(frags, *pp.Join)
	}
	results := make([]Result, len(frags))
	errs := make([]error, len(frags))
	par.ForEach(len(frags), e.opts.Workers, func(i int) {
		b := e.backend(frags[i].Backend)
		if b == nil {
			errs[i] = fmt.Errorf("%w: %s", ErrNoBackend, frags[i].Table)
			return
		}
		results[i], errs[i] = b.Scan(frags[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	run := &Run{Plan: pp, Fragments: make([]FragmentRun, len(frags))}
	for i, f := range frags {
		run.Fragments[i] = FragmentRun{
			Fragment:   f,
			ActScanned: results[i].Scanned,
			ActOut:     results[i].Table.Len(),
		}
	}

	cur := results[0].Table

	if pp.Join != nil {
		keys := results[1].Table
		if len(pp.JoinRes) > 0 {
			keys, err = table.Filter(keys, pp.JoinRes...)
			if err != nil {
				return nil, nil, err
			}
		}
		if len(pp.Join.Columns) == 0 {
			// Projection was not pushed; take the key column here.
			keys, err = table.Project(keys, p.JoinRightCol)
			if err != nil {
				return nil, nil, err
			}
		}
		keys = table.Distinct(keys)
		cur, err = table.HashJoin(cur, keys, p.JoinLeftCol, p.JoinRightCol)
		if err != nil {
			return nil, nil, err
		}
	}

	if len(p.Comparison) > 0 && p.CompareCol != "" {
		// The comparison tail is shared with the single-store executor;
		// the common predicates are whatever pushdown left behind.
		out, err := semop.ExecCompare(p, cur, pp.PostFilters)
		if err != nil {
			return nil, nil, err
		}
		run.RowsOut = out.Len()
		return out, run, nil
	}

	if len(pp.PostFilters) > 0 {
		cur, err = table.Filter(cur, pp.PostFilters...)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(p.Aggs) > 0 && !pp.AggPushed {
		cur, err = table.Aggregate(cur, p.GroupBy, p.Aggs)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(p.OrderBy) > 0 {
		cur, err = table.Sort(cur, p.OrderBy...)
		if err != nil {
			return nil, nil, err
		}
	}
	if p.LimitRows > 0 {
		cur = table.Limit(cur, p.LimitRows)
	}
	if len(p.Columns) > 0 {
		cur, err = table.Project(cur, p.Columns...)
		if err != nil {
			return nil, nil, err
		}
	}
	run.RowsOut = cur.Len()
	return cur, run, nil
}
