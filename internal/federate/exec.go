package federate

import (
	"fmt"
	"sync"

	"repro/internal/logical"
	"repro/internal/par"
	"repro/internal/semop"
	"repro/internal/table"
)

// FragmentRun pairs a planned fragment with its actual execution
// counts for the estimated-vs-actual EXPLAIN report.
type FragmentRun struct {
	Fragment
	ActScanned int // base-table rows the backend actually read
	ActOut     int // rows that actually crossed the boundary
}

// Run records one federated execution: the physical plan, per-fragment
// actuals, and the final result size. Everything in a Run is
// deterministic for a fixed corpus and epoch — it is the unit the
// golden EXPLAIN tests snapshot.
type Run struct {
	Plan      *PhysicalPlan
	Fragments []FragmentRun
	RowsOut   int // rows in the final result table
}

// Execute compiles the bound plan to the shared logical IR, runs the
// rule-based optimizer against the federated schema surface, and
// executes the result. Results are identical to semop.Exec over a
// single catalog holding the same tables.
func (e *Executor) Execute(p *semop.Plan) (*table.Table, *Run, error) {
	if p == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	opt := logical.Optimize(semop.Compile(p), e.Stats())
	return e.executeKeyed(opt, logical.Fingerprint(opt.Root))
}

// ExecuteIR runs an already-optimized logical tree — the entry point
// the NL and SQL front ends share. Because the physical-plan cache is
// keyed by the canonical IR fingerprint, the NL and SQL compilations
// of the same question land on one cached physical plan.
func (e *Executor) ExecuteIR(opt *logical.Optimized) (*table.Table, *Run, error) {
	if opt == nil || opt.Root == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	return e.executeKeyed(opt, logical.Fingerprint(opt.Root))
}

// Prepared is a reusable execution handle: compilation, optimization
// and fingerprinting are computed once per (data epoch, backend
// registry generation) and reused, so repeated executions pay only the
// epoch checks and the cache lookup before scanning. When the epoch or
// registry moves, the next Execute re-optimizes from the original
// bound plan — stale retyped literals, pruned column sets and seeded
// join predicates never outlive the schemas and cardinalities they
// were derived from. The underlying plan must not be mutated after
// Prepare. Safe for concurrent Execute calls.
type Prepared struct {
	e *Executor
	p *semop.Plan

	mu    sync.Mutex
	epoch uint64
	gen   uint64
	opt   *logical.Optimized
	key   string
}

// Prepare returns a reusable handle for the plan.
func (e *Executor) Prepare(p *semop.Plan) *Prepared {
	return &Prepared{e: e, p: p}
}

// Execute runs the prepared plan against the current epoch.
func (pr *Prepared) Execute() (*table.Table, *Run, error) {
	if pr.p == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	epoch, gen := pr.e.epochFn(), pr.e.generation()
	pr.mu.Lock()
	if pr.opt == nil || pr.epoch != epoch || pr.gen != gen {
		pr.opt = logical.Optimize(semop.Compile(pr.p), pr.e.Stats())
		pr.key = logical.Fingerprint(pr.opt.Root)
		pr.epoch, pr.gen = epoch, gen
	}
	opt, key := pr.opt, pr.key
	pr.mu.Unlock()
	return pr.e.executeKeyed(opt, key)
}

// executeKeyed lowers (or re-uses) the physical plan, scans every
// fragment with bounded parallelism, and interprets the residual tree
// over the fragment outputs through the same operator loop the
// single-store executors use — so the federation layer applies joins,
// comparisons, residual filters, aggregation, sort, limit and
// projection in exactly the order the unfederated path does.
func (e *Executor) executeKeyed(opt *logical.Optimized, key string) (*table.Table, *Run, error) {
	pp, _, err := e.plan(opt, key)
	if err != nil {
		return nil, nil, err
	}

	frags := pp.Frags
	results := make([]Result, len(frags))
	errs := make([]error, len(frags))
	par.ForEach(len(frags), e.opts.Workers, func(i int) {
		b := e.backend(frags[i].Backend)
		if b == nil {
			errs[i] = fmt.Errorf("%w: %s", ErrNoBackend, frags[i].Table)
			return
		}
		results[i], errs[i] = b.Scan(frags[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	run := &Run{Plan: pp, Fragments: make([]FragmentRun, len(frags))}
	for i, f := range frags {
		run.Fragments[i] = FragmentRun{
			Fragment:   f,
			ActScanned: results[i].Scanned,
			ActOut:     results[i].Table.Len(),
		}
	}

	leaf := func(leaf *logical.Node) (*table.Table, error) {
		if leaf.Op == logical.OpEmpty {
			// emptyfold proved the scan selects no rows; no fragment was
			// routed. The binding schema stands in for the scan's output.
			schema, ok := e.Stats().Schema(leaf.Table)
			if !ok {
				return nil, fmt.Errorf("federate: no schema for empty leaf %s", leaf.Table)
			}
			empty := table.New(leaf.Table, schema)
			if len(leaf.Cols) > 0 {
				return table.Project(empty, leaf.Cols...)
			}
			return empty, nil
		}
		if leaf.Op != logical.OpInput || leaf.Index >= len(results) {
			return nil, fmt.Errorf("federate: unresolved %v leaf", leaf.Op)
		}
		return results[leaf.Index].Table, nil
	}
	var out *table.Table
	if pp.VecResidual {
		// Every residual operator has a columnar kernel: run the
		// vectorized executor, reusing fragment batches the backends
		// attached to pass-through scans. Bit-identical to Run.
		out, err = logical.RunVec(pp.Residual, logical.VecEnv{
			Leaf: leaf,
			Frags: func(l *logical.Node) *table.Frags {
				if l.Op == logical.OpInput && l.Index < len(results) {
					return results[l.Index].Frags
				}
				return nil
			},
			Workers: e.opts.Workers,
		})
	} else {
		out, err = logical.Run(pp.Residual, leaf)
	}
	if err != nil {
		return nil, nil, err
	}
	run.RowsOut = out.Len()
	return out, run, nil
}
