package federate

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/logical"
	"repro/internal/par"
	"repro/internal/semop"
	"repro/internal/table"
)

// FragmentRun pairs a planned fragment with its actual execution
// counts for the estimated-vs-actual EXPLAIN report, plus the
// resilience events the scan went through. Under seeded fault
// injection the event counts are as deterministic as the faults
// themselves; fault-free runs record all zeros and EXPLAIN omits the
// resilience line entirely.
type FragmentRun struct {
	Fragment
	ActScanned int // base-table rows the backend actually read
	ActOut     int // rows that actually crossed the boundary

	Retries     int    // transient-failure retries taken (all backends tried)
	FailedOver  string // backend that actually served after failover ("" = planned backend)
	BreakerSkip bool   // planned backend skipped because its breaker was open
}

// Run records one federated execution: the physical plan, per-fragment
// actuals, and the final result size. Everything in a Run is
// deterministic for a fixed corpus and epoch — it is the unit the
// golden EXPLAIN tests snapshot.
type Run struct {
	Plan      *PhysicalPlan
	Fragments []FragmentRun
	RowsOut   int // rows in the final result table
	Replans   int // stale-registry re-plans before this execution succeeded
}

// Execute compiles the bound plan to the shared logical IR, runs the
// rule-based optimizer against the federated schema surface, and
// executes the result. Results are identical to semop.Exec over a
// single catalog holding the same tables.
func (e *Executor) Execute(p *semop.Plan) (*table.Table, *Run, error) {
	if p == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	opt := logical.Optimize(semop.Compile(p), e.Stats())
	return e.executeKeyed(opt, logical.Fingerprint(opt.Root))
}

// ExecuteIR runs an already-optimized logical tree — the entry point
// the NL and SQL front ends share. Because the physical-plan cache is
// keyed by the canonical IR fingerprint, the NL and SQL compilations
// of the same question land on one cached physical plan.
func (e *Executor) ExecuteIR(opt *logical.Optimized) (*table.Table, *Run, error) {
	if opt == nil || opt.Root == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	return e.executeKeyed(opt, logical.Fingerprint(opt.Root))
}

// Prepared is a reusable execution handle: compilation, optimization
// and fingerprinting are computed once per (data epoch, backend
// registry generation) and reused, so repeated executions pay only the
// epoch checks and the cache lookup before scanning. When the epoch or
// registry moves, the next Execute re-optimizes from the original
// bound plan — stale retyped literals, pruned column sets and seeded
// join predicates never outlive the schemas and cardinalities they
// were derived from. The underlying plan must not be mutated after
// Prepare. Safe for concurrent Execute calls.
type Prepared struct {
	e *Executor
	p *semop.Plan

	mu    sync.Mutex
	epoch uint64
	gen   uint64
	opt   *logical.Optimized
	key   string
}

// Prepare returns a reusable handle for the plan.
func (e *Executor) Prepare(p *semop.Plan) *Prepared {
	return &Prepared{e: e, p: p}
}

// Execute runs the prepared plan against the current epoch.
func (pr *Prepared) Execute() (*table.Table, *Run, error) {
	if pr.p == nil {
		return nil, nil, semop.ErrEmptyPlan
	}
	epoch, gen := pr.e.epochFn(), pr.e.generation()
	pr.mu.Lock()
	if pr.opt == nil || pr.epoch != epoch || pr.gen != gen {
		pr.opt = logical.Optimize(semop.Compile(pr.p), pr.e.Stats())
		pr.key = logical.Fingerprint(pr.opt.Root)
		pr.epoch, pr.gen = epoch, gen
	}
	opt, key := pr.opt, pr.key
	pr.mu.Unlock()
	return pr.e.executeKeyed(opt, key)
}

// executeKeyed lowers (or re-uses) the physical plan, scans every
// fragment with bounded parallelism, and interprets the residual tree
// over the fragment outputs through the same operator loop the
// single-store executors use — so the federation layer applies joins,
// comparisons, residual filters, aggregation, sort, limit and
// projection in exactly the order the unfederated path does.
func (e *Executor) executeKeyed(opt *logical.Optimized, key string) (*table.Table, *Run, error) {
	// A backend can vanish between planning and execution (Unregister
	// racing the query). Routing already validated the plan's backends,
	// so that is a stale plan, not a missing backend: re-plan against
	// the current registry — the generation bump guarantees a cache
	// miss — instead of failing. Bounded so a registry churning faster
	// than queries replan still terminates.
	const maxReplans = 3
	for replans := 0; ; replans++ {
		out, run, err := e.executeOnce(opt, key, replans)
		if err != nil && errors.Is(err, errStaleRegistry) && replans < maxReplans {
			e.opts.Counters.Inc("plan.replan")
			continue
		}
		return out, run, err
	}
}

// executeOnce runs one planning + scan + residual pass. Fragment scans
// share a context: the first scan failure cancels in-flight siblings
// (no work wasted finishing scans whose query already failed), and the
// executor's Timeout, when set, bounds the whole pass.
func (e *Executor) executeOnce(opt *logical.Optimized, key string, replans int) (*table.Table, *Run, error) {
	if replans == 0 {
		// One cooldown-clock tick per query (not per replan): open
		// breakers count sat-out queries toward their half-open probe.
		e.health.tick(e.opts.Breaker)
	}
	pp, _, err := e.plan(opt, key)
	if err != nil {
		return nil, nil, err
	}

	frags := pp.Frags
	ctx := context.Background()
	var cancel context.CancelFunc
	if e.opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
	} else if len(frags) > 1 {
		// Only multi-fragment plans have siblings to cancel; the
		// single-fragment hot path skips the context allocation.
		ctx, cancel = context.WithCancel(ctx)
	}
	if cancel != nil {
		defer cancel()
	}

	results := make([]Result, len(frags))
	errs := make([]error, len(frags))
	runs := make([]FragmentRun, len(frags))
	par.ForEach(len(frags), e.opts.Workers, func(i int) {
		runs[i].Fragment = frags[i]
		results[i], errs[i] = e.scanFragment(ctx, frags[i], &runs[i])
		if errs[i] != nil && cancel != nil {
			cancel() // first failure cancels in-flight siblings
		}
	})
	if err := firstScanError(errs); err != nil {
		return nil, nil, err
	}

	run := &Run{Plan: pp, Fragments: runs, Replans: replans}
	for i := range runs {
		runs[i].ActScanned = results[i].Scanned
		runs[i].ActOut = results[i].Table.Len()
	}

	leaf := func(leaf *logical.Node) (*table.Table, error) {
		if leaf.Op == logical.OpEmpty {
			// emptyfold proved the scan selects no rows; no fragment was
			// routed. The binding schema stands in for the scan's output.
			schema, ok := e.Stats().Schema(leaf.Table)
			if !ok {
				return nil, fmt.Errorf("federate: no schema for empty leaf %s", leaf.Table)
			}
			empty := table.New(leaf.Table, schema)
			if len(leaf.Cols) > 0 {
				return table.Project(empty, leaf.Cols...)
			}
			return empty, nil
		}
		if leaf.Op != logical.OpInput || leaf.Index >= len(results) {
			return nil, fmt.Errorf("federate: unresolved %v leaf", leaf.Op)
		}
		return results[leaf.Index].Table, nil
	}
	var out *table.Table
	if pp.VecResidual {
		// Every residual operator has a columnar kernel: run the
		// vectorized executor, reusing fragment batches the backends
		// attached to pass-through scans. Bit-identical to Run.
		out, err = logical.RunVec(pp.Residual, logical.VecEnv{
			Leaf: leaf,
			Frags: func(l *logical.Node) *table.Frags {
				if l.Op == logical.OpInput && l.Index < len(results) {
					return results[l.Index].Frags
				}
				return nil
			},
			Workers: e.opts.Workers,
		})
	} else {
		out, err = logical.Run(pp.Residual, leaf)
	}
	if err != nil {
		return nil, nil, err
	}
	run.RowsOut = out.Len()
	return out, run, nil
}
