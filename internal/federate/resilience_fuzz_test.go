package federate

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/semop"
)

// FuzzFaultSchedule fuzzes the chaos fault schedule — seed, transient
// budget, which backends are fully down, worker count — against the
// resilience invariants: whenever at least one backend survives, every
// plan shape must return results bit-identical to the fault-free
// single-store execution; and whatever happens (including total
// outage), two identical systems under the same schedule must behave
// identically.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), uint8(1))
	f.Add(uint64(42), uint8(3), uint8(1), uint8(2))
	f.Add(uint64(7), uint8(0), uint8(2), uint8(8))
	f.Add(uint64(99), uint8(1), uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, maxTransient, downMask, workers uint8) {
		// Keep the transient budget within the executor's retry budget,
		// so injected transients alone can never exhaust a scan.
		mt := int(maxTransient) % (fault.DefaultPolicy().MaxRetries + 1)
		w := int(workers)%8 + 1
		memDown := downMask&1 != 0
		sqlDown := downMask&2 != 0

		build := func() *Executor {
			c := testCatalog()
			clock := fault.NewFakeClock()
			return New(c.Epoch, Options{Workers: w, Clock: clock},
				NewChaos(NewMemory(c), ChaosOptions{Seed: seed, MaxTransient: mt, Down: memDown, Clock: clock}),
				NewChaos(NewSQL(c), ChaosOptions{Seed: seed + 1, MaxTransient: mt, Down: sqlDown, Clock: clock}),
			)
		}

		names := make([]string, 0, 5)
		plans := resilienceTestPlans()
		for name := range plans {
			names = append(names, name)
		}
		sort.Strings(names)

		run := func(e *Executor) []string {
			out := make([]string, 0, len(names))
			for _, name := range names {
				got, _, err := e.Execute(plans[name])
				if err != nil {
					out = append(out, name+" ERR "+err.Error())
					continue
				}
				out = append(out, name+" OK "+render(got))
			}
			return out
		}

		e1, e2 := build(), build()
		r1, r2 := run(e1), run(e2)
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("same schedule, diverging behavior:\n%s\nvs\n%s", r1[i], r2[i])
			}
		}

		if memDown && sqlDown {
			for _, r := range r1 {
				if !strings.Contains(r, " ERR ") {
					t.Fatalf("total outage but query succeeded: %s", r)
				}
			}
			return
		}
		// At least one backend survives per table: parity must hold.
		c := testCatalog()
		for i, name := range names {
			want, err := semop.Exec(plans[name], c)
			if err != nil {
				t.Fatal(err)
			}
			if got := name + " OK " + render(want); r1[i] != got {
				t.Fatalf("parity broken under schedule seed=%d mt=%d down=%d workers=%d:\n%s\nvs\n%s",
					seed, mt, downMask, w, r1[i], got)
			}
		}
	})
}
