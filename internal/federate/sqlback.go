package federate

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/table"
)

// SQL drives internal/sql's parser and executor: every fragment is
// rendered to a SELECT statement in the engine's dialect, parsed, and
// executed against the backing catalog. The fragment crosses the
// backend boundary as text, not as Go structures — the shape a
// federated external SQL store requires — which makes this backend the
// template for wiring real databases behind the planner.
type SQL struct {
	catalog *table.Catalog
	// PerRow and Fixed shape the cost model: text round-trip and
	// unindexed scans make this backend pricier per row than the
	// in-memory engine, so the planner prefers it only when it is the
	// sole provider of a table (or a test tunes the costs).
	PerRow float64
	Fixed  float64
}

// NewSQL returns a SQL-dialect backend over the catalog.
func NewSQL(c *table.Catalog) *SQL {
	return &SQL{catalog: c, PerRow: 1.25, Fixed: 24}
}

// Name implements Backend.
func (s *SQL) Name() string { return "sql" }

// Tables implements Backend.
func (s *SQL) Tables() []string { return s.catalog.Names() }

// Caps implements Backend: the dialect expresses filters, projections
// and grouped aggregates.
func (s *SQL) Caps() Caps { return CapFilter | CapProject | CapAggregate }

// sqlIdent reports whether name lexes as a plain identifier in the
// dialect, so pushdown never produces an unparseable statement.
func sqlIdent(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CanPush implements Backend: the predicate must survive a text
// round-trip — identifier column, single-line literal, and a numeric
// rendering the dialect's lexer can re-parse (large/small floats
// render in exponent notation, which it cannot).
func (s *SQL) CanPush(_ string, p table.Pred) bool {
	if !sqlIdent(p.Col) || p.Val.IsNull() {
		return false
	}
	v := p.Val.String()
	if p.Val.IsNumeric() {
		return plainNumber(v)
	}
	return !strings.ContainsAny(v, "\n\r")
}

// CanPushAgg implements AggPushable: the aggregate must survive the
// text round-trip, which restricts it to the functions the dialect
// parses (COUNT/SUM/AVG/MIN/MAX — not the routing pass's COUNT_MERGE)
// over identifier columns.
func (s *SQL) CanPushAgg(a table.Agg) bool {
	switch a.Func {
	case table.AggSum, table.AggAvg, table.AggCount, table.AggMin, table.AggMax:
	default:
		return false
	}
	return a.Col == "" || sqlIdent(a.Col)
}

// plainNumber reports whether s is a bare decimal literal
// (-?digits[.digits]) — the only numeric shape the dialect lexes.
// Exponent forms ("1e+06"), NaN and ±Inf are rejected.
func plainNumber(s string) bool {
	if strings.HasPrefix(s, "-") {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' && !dot && i > 0 && i < len(s)-1:
			dot = true
		default:
			return false
		}
	}
	return true
}

// Estimate implements Backend: no indexes, so every scan reads the
// whole table; the shared catalog statistics estimate the output.
func (s *SQL) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	t, err := s.catalog.Get(tbl)
	if err != nil {
		return Estimate{}, false
	}
	return estimateFromStats(s.catalog.StatsOf(tbl), t.Len(), preds, s.Fixed, s.PerRow), true
}

// Zones implements ZoneMapped: the catalog's per-fragment zone maps.
func (s *SQL) Zones(tbl string) *table.Zones { return s.catalog.ZonesOf(tbl) }

// Render lowers the fragment to one SELECT statement in the dialect.
func (s *SQL) Render(f Fragment) string {
	return s.render(f, nil)
}

// render lowers the fragment to one SELECT, optionally restricted to a
// physical row range via the dialect's ROWS a TO b clause — the text
// form a fragment-ranged scan crosses the backend boundary in.
func (s *SQL) render(f Fragment, r *table.RowRange) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case len(f.Aggs) > 0:
		parts := append([]string(nil), f.GroupBy...)
		for _, a := range f.Aggs {
			col := a.Col
			if col == "" {
				col = "*"
			}
			as := a.As
			if as == "" {
				as = strings.ToLower(a.Func.String()) + "_" + a.Col
			}
			parts = append(parts, fmt.Sprintf("%s(%s) AS %s", a.Func, col, as))
		}
		b.WriteString(strings.Join(parts, ", "))
	case len(f.Columns) > 0:
		b.WriteString(strings.Join(f.Columns, ", "))
	default:
		b.WriteString("*")
	}
	fmt.Fprintf(&b, " FROM %s", f.Table)
	if r != nil {
		fmt.Fprintf(&b, " ROWS %d TO %d", r.Start, r.End)
	}
	if len(f.Preds) > 0 {
		wheres := make([]string, len(f.Preds))
		for i, p := range f.Preds {
			wheres[i] = renderPred(p)
		}
		b.WriteString(" WHERE " + strings.Join(wheres, " AND "))
	}
	if len(f.Aggs) > 0 && len(f.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(f.GroupBy, ", "))
	}
	return b.String()
}

func renderPred(p table.Pred) string {
	val := p.Val.String()
	if !p.Val.IsNumeric() && p.Val.Kind() != table.TypeBool {
		val = "'" + strings.ReplaceAll(val, "'", "''") + "'"
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, val)
}

// Scan implements Backend: render, parse, execute. The statement
// executes over the same table engine the memory backend uses, so a
// fragment routed here returns identical rows in identical order.
//
// A zone-pruned fragment becomes one ranged SELECT per surviving row
// range (the ROWS a TO b dialect clause), concatenated in ascending
// order — the same row multiset and order a full filtered scan
// produces, reading only the surviving rows. Aggregation cannot be
// split across ranges (an aggregate of per-range aggregates is not the
// aggregate of the union), so the ranged SELECTs carry only filters
// and the backend aggregates the assembled rows locally through the
// identical engine.
func (s *SQL) Scan(f Fragment) (Result, error) {
	t, err := s.catalog.Get(f.Table)
	if err != nil {
		return Result{}, err
	}
	if f.Ranges == nil {
		res, err := sql.Exec(s.catalog, s.Render(f))
		if err != nil {
			return Result{}, fmt.Errorf("federate: sql backend: %w", err)
		}
		return Result{Table: res, Scanned: t.Len()}, nil
	}

	ranged := Fragment{Table: f.Table, Preds: f.Preds}
	if len(f.Aggs) == 0 {
		ranged.Columns = f.Columns
	}
	var cur *table.Table
	scanned := 0
	for _, r := range f.Ranges {
		r := r
		part, err := sql.Exec(s.catalog, s.render(ranged, &r))
		if err != nil {
			return Result{}, fmt.Errorf("federate: sql backend: %w", err)
		}
		scanned += r.Len()
		if cur == nil {
			cur = part
		} else {
			cur.Rows = append(cur.Rows, part.Rows...)
		}
	}
	if cur == nil { // every fragment pruned: empty result, zero rows read
		cur = table.New(t.Name, t.Schema)
		if len(f.Aggs) == 0 && len(f.Columns) > 0 {
			if cur, err = table.Project(cur, f.Columns...); err != nil {
				return Result{}, err
			}
		}
	}
	if len(f.Aggs) > 0 {
		if cur, err = table.Aggregate(cur, f.GroupBy, f.Aggs); err != nil {
			return Result{}, err
		}
		if len(f.Columns) > 0 {
			if cur, err = table.Project(cur, f.Columns...); err != nil {
				return Result{}, err
			}
		}
	}
	return Result{Table: cur, Scanned: scanned}, nil
}
