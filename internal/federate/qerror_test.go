package federate

import (
	"testing"

	"repro/internal/extract"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/workload"
)

// heuristicMaxQError is the frozen maximum per-fragment q-error the
// fixed selectivity heuristic produced on the 28-question workload
// corpus, measured at the commit that introduced per-column statistics
// (the last commit where logical.Selectivity alone drove every
// estimate). The statistics-driven estimates must beat it strictly:
// if TestEstimateAccuracyWorkload starts failing against this
// constant, the cost model has regressed to heuristic-grade guessing.
const heuristicMaxQError = 8.0

// statsMaxQErrorBound pins how accurate the statistics-driven
// estimates are on the workload corpus. Exact low-NDV value counts
// make most equality fragments exact (q = 1); histogram interpolation
// on range predicates is the loosest estimator.
const statsMaxQErrorBound = 1.75

// workloadCatalog mirrors the hybrid system's catalog assembly —
// native relational tables, materialized JSON/XML sources, and
// SLM-extracted tables from every text document — without the graph
// layers, so the federate package can bind the full workload question
// set against the same schema surface core.NewHybrid produces.
func workloadCatalog(tb testing.TB, c *workload.Corpus, ner *slm.NER) *table.Catalog {
	tb.Helper()
	cat := table.NewCatalog()
	var docs []extract.Doc
	for _, s := range c.Sources.Sources() {
		switch src := s.(type) {
		case *store.RelationalStore:
			for _, name := range src.Catalog().Names() {
				if t, err := src.Catalog().Get(name); err == nil {
					cat.Put(t)
				}
			}
		default:
			switch s.Kind() {
			case store.KindJSON, store.KindXML:
				t, err := store.ToTable(s.Name(), s.Records())
				if err != nil {
					tb.Fatal(err)
				}
				if t.Len() > 0 {
					cat.Put(t)
				}
			case store.KindText:
				for _, rec := range s.Records() {
					docs = append(docs, extract.Doc{ID: rec.ID, Text: rec.Text})
				}
			}
		}
	}
	eng := extract.NewEngine(ner, extract.Rules()...)
	if err := extract.Merge(cat, eng.ExtractDocs(docs, 1)); err != nil {
		tb.Fatal(err)
	}
	return cat
}

// WorkloadMaxQError executes every bindable workload question across
// both domains and returns the maximum per-fragment q-error (estimated
// vs actual rows, both scanned and output) plus the number of
// fragments measured. BenchmarkEstimateAccuracy (repo root) measures
// the same questions through the full hybrid pipeline for the
// benchguard-gated q_error_max metric; this harness binds against a
// federate-only catalog so the package can pin the bound without
// importing internal/core.
func WorkloadMaxQError(tb testing.TB) (maxQ float64, fragments int) {
	corpora := []*workload.Corpus{
		workload.ECommerce(workload.DefaultECommerceOptions()),
		workload.Healthcare(workload.DefaultHealthcareOptions()),
	}
	for _, c := range corpora {
		ner := slm.NewNER()
		c.Register(ner)
		cat := workloadCatalog(tb, c, ner)
		e := New(cat.Epoch, Options{}, NewMemory(cat), NewSQL(cat))
		bound := 0
		for _, q := range c.Queries {
			plan, err := semop.Bind(semop.Parse(q.Text, ner), cat)
			if err != nil {
				continue
			}
			bound++
			_, run, err := e.Execute(plan)
			if err != nil {
				tb.Fatalf("%s: %q: %v", c.Name, q.Text, err)
			}
			for _, fr := range run.Fragments {
				fragments++
				if qe := QError(fr.Est.Scanned, fr.ActScanned); qe > maxQ {
					maxQ = qe
				}
				if qe := QError(fr.Est.Out, fr.ActOut); qe > maxQ {
					maxQ = qe
				}
			}
		}
		if bound == 0 {
			tb.Fatalf("%s: no workload question bound — accuracy harness vacuous", c.Name)
		}
	}
	return maxQ, fragments
}

// TestEstimateAccuracyWorkload is the estimate-accuracy harness: it
// runs the 28-question workload corpus through the federated planner,
// records estimated vs actual rows for every fragment, and holds the
// maximum q-error to a pinned bound — and strictly below the frozen
// pre-statistics heuristic baseline, so the statistics must keep
// paying for themselves.
func TestEstimateAccuracyWorkload(t *testing.T) {
	maxQ, fragments := WorkloadMaxQError(t)
	t.Logf("max q-error %.3f over %d fragments", maxQ, fragments)
	if fragments == 0 {
		t.Fatal("no fragments measured")
	}
	if maxQ > statsMaxQErrorBound {
		t.Errorf("max q-error %.3f exceeds pinned bound %.2f", maxQ, statsMaxQErrorBound)
	}
	if maxQ >= heuristicMaxQError {
		t.Errorf("max q-error %.3f is no better than the frozen heuristic baseline %.2f",
			maxQ, heuristicMaxQError)
	}
}
