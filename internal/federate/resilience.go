package federate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/logical"
	"repro/internal/table"
)

// errStaleRegistry signals that a fragment's planned backend vanished
// between planning and execution (an Unregister raced the query).
// executeKeyed catches it and re-plans against the current registry
// instead of surfacing ErrNoBackend for a plan routing already
// validated.
var errStaleRegistry = errors.New("federate: registry changed since plan")

// ContextScanner is the optional Backend extension for cancellable
// scans: a backend that can observe ctx mid-scan (to abandon work when
// a sibling fragment failed or the query deadline passed) implements
// it. Backends without it stay source-compatible — the executor checks
// the context before delegating to their plain Scan, which then runs
// to completion.
type ContextScanner interface {
	ScanContext(ctx context.Context, f Fragment) (Result, error)
}

// scanWithContext scans f on b, honoring cancellation: the context is
// checked up front, and backends implementing ContextScanner also see
// it in flight.
func scanWithContext(ctx context.Context, b Backend, f Fragment) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if cs, ok := b.(ContextScanner); ok {
		return cs.ScanContext(ctx, f)
	}
	return b.Scan(f)
}

// isCancellation reports whether err is context cancellation or
// deadline expiry — outcomes of the query's own lifecycle, never
// evidence against a backend's health, and never worth a retry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// breakerPenalty is the routing-cost surcharge for a backend whose
// breaker is open: large enough to lose to any healthy backend, but a
// penalty rather than exclusion — when the open backend is the only
// provider, the fragment still routes there (and the scan becomes a
// probe).
const breakerPenalty = 1e12

// BreakerConfig tunes the per-backend circuit breaker. The breaker is
// deliberately clock-free: cooldown is counted in executed queries
// rather than elapsed time, so its state transitions are a
// deterministic function of the query/outcome sequence and tests need
// no fake timers.
type BreakerConfig struct {
	// FailThreshold is the consecutive-failure count that opens the
	// breaker (default 3). -1 disables circuit breaking.
	FailThreshold int
	// Cooldown is how many queries an open breaker sits out before
	// transitioning to half-open, where the next scan routed at the
	// backend is the recovery probe (default 8).
	Cooldown int
}

// Breaker states. closed = healthy, open = shedding, halfOpen = one
// probe decides.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerState is one backend's health record inside healthTracker.
// All fields are guarded by the tracker's mutex.
type breakerState struct {
	state    int    // guarded by healthTracker.mu
	failures int    // guarded by healthTracker.mu; consecutive scan failures
	openedAt uint64 // guarded by healthTracker.mu; query count when the breaker last opened
}

// healthTracker is the executor's per-backend circuit-breaker table.
// Its generation mirrors the backend registry generation: when the
// registry changes, accumulated health is forgiven (a re-registered
// backend is a new instance). The transitions counter versions routing
// decisions the same way regGen does — route() consults breaker state,
// so any state change must invalidate cached physical plans, and the
// plan cache folds version() into its validity check. The cooldown
// clock is the executed-query count, ticked once per execution, so an
// open breaker half-opens after Cooldown queries even when routing has
// stopped consulting the backend entirely.
type healthTracker struct {
	mu          sync.Mutex
	gen         uint64                   // guarded by mu; registry generation the states belong to
	transitions uint64                   // guarded by mu; bumped on every breaker state change
	queries     uint64                   // guarded by mu; executions seen — the cooldown clock
	nonClosed   int                      // guarded by mu; breakers currently open or half-open
	m           map[string]*breakerState // guarded by mu
	names       []string                 // guarded by mu; sorted keys of m, for deterministic sweeps
}

func newHealthTracker() *healthTracker {
	return &healthTracker{m: make(map[string]*breakerState)}
}

// sync aligns the tracker with the registry generation, resetting all
// health state when the registry changed. Resetting a non-closed
// breaker is a state change, so it bumps transitions.
func (h *healthTracker) sync(gen uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if gen == h.gen {
		return
	}
	h.gen = gen
	if len(h.m) > 0 {
		if h.nonClosed > 0 {
			h.transitions++
		}
		h.m = make(map[string]*breakerState)
		h.names = nil
		h.nonClosed = 0
	}
}

// tick advances the cooldown clock by one executed query and
// transitions any open breaker whose cooldown expired to half-open —
// its next routed scan becomes the recovery probe. The sweep walks
// backends in sorted name order; transitions are per-entry independent
// either way, but a deterministic order keeps the invariant auditable.
func (h *healthTracker) tick(cfg BreakerConfig) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.queries++
	if h.nonClosed == 0 {
		return
	}
	for _, name := range h.names {
		s := h.m[name]
		if s.state == breakerOpen && h.queries-s.openedAt >= uint64(cfg.Cooldown) {
			s.state = breakerHalfOpen
			h.transitions++
		}
	}
}

// version returns the breaker-state version routing decisions were
// made against.
func (h *healthTracker) version() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.transitions
}

// stateLocked returns the named backend's record, creating a closed
// one on first sight. Caller holds h.mu.
func (h *healthTracker) stateLocked(name string) *breakerState {
	s := h.m[name]
	if s == nil {
		s = &breakerState{}
		h.m[name] = s
		i := sort.SearchStrings(h.names, name)
		h.names = append(h.names, "")
		copy(h.names[i+1:], h.names[i:])
		h.names[i] = name
	}
	return s
}

// isOpen reports whether the named backend's breaker is open — the
// condition under which route() deprioritizes it and scanFragment
// skips it when an alternative exists. Half-open reads as not open:
// the next scan is the probe.
func (h *healthTracker) isOpen(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.m[name]
	return s != nil && s.state == breakerOpen
}

// reportSuccess records a successful scan: consecutive failures reset
// and a non-closed breaker closes. Returns true when the breaker
// closed (for the breaker.close counter).
func (h *healthTracker) reportSuccess(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.stateLocked(name)
	s.failures = 0
	if s.state == breakerClosed {
		return false
	}
	s.state = breakerClosed
	h.nonClosed--
	h.transitions++
	return true
}

// reportFailure records a scan that ultimately failed (permanent
// error, or transient retries exhausted). A half-open probe failure
// re-opens immediately; a closed breaker opens at the consecutive-
// failure threshold; an already-open breaker (a forced probe on a sole
// provider) restarts its cooldown. Returns true when the breaker
// opened (for the breaker.open counter). threshold < 0 disables
// breaking.
func (h *healthTracker) reportFailure(name string, threshold int) bool {
	if threshold < 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.stateLocked(name)
	s.failures++
	switch s.state {
	case breakerHalfOpen:
		s.state = breakerOpen
		s.openedAt = h.queries
		h.transitions++
		return true
	case breakerClosed:
		if s.failures >= threshold {
			s.state = breakerOpen
			s.openedAt = h.queries
			h.nonClosed++
			h.transitions++
			return true
		}
	case breakerOpen:
		s.openedAt = h.queries
	}
	return false
}

// reportScanSuccess/reportScanFailure wire breaker transitions into
// the metrics counters.
func (e *Executor) reportScanSuccess(name string) {
	if e.health.reportSuccess(name) {
		e.opts.Counters.Inc("breaker.close")
	}
}

func (e *Executor) reportScanFailure(name string) {
	if e.health.reportFailure(name, e.opts.Breaker.FailThreshold) {
		e.opts.Counters.Inc("breaker.open")
	}
}

// scanFragment executes one planned fragment with the full resilience
// ladder: breaker gate, retry with backoff on the planned backend,
// then cost-ordered failover across every other backend serving the
// table. Observability lands on fr (retries, breaker skips, the
// failover target); health outcomes land on the tracker.
func (e *Executor) scanFragment(ctx context.Context, f Fragment, fr *FragmentRun) (Result, error) {
	b := e.backend(f.Backend)
	if b == nil {
		return Result{}, fmt.Errorf("%w: backend %s for table %s", errStaleRegistry, f.Backend, f.Table)
	}

	var primaryErr error
	var cands []Backend
	skipPrimary := false
	if e.health.isOpen(f.Backend) {
		// Breaker open: skip straight to failover when an alternative
		// exists. With no alternative the scan proceeds anyway — a
		// forced probe beats failing a query the backend might serve.
		cands = e.failoverCandidates(f)
		if len(cands) > 0 {
			skipPrimary = true
			fr.BreakerSkip = true
			e.opts.Counters.Inc("scan.breaker_skip")
		}
	}

	if !skipPrimary {
		res, err := e.scanRetrying(ctx, b, f, fr)
		if err == nil {
			return res, nil
		}
		if isCancellation(err) {
			return Result{}, err
		}
		primaryErr = err
		cands = e.failoverCandidates(f)
	}

	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if e.health.isOpen(c.Name()) {
			continue
		}
		nf, rest, ok := e.refragment(c, f)
		if !ok {
			continue
		}
		res, err := e.scanRetrying(ctx, c, nf, fr)
		if err != nil {
			if isCancellation(err) {
				return Result{}, err
			}
			if primaryErr == nil {
				primaryErr = err
			}
			continue
		}
		res, err = compensate(res, f, nf, rest)
		if err != nil {
			return Result{}, err
		}
		fr.FailedOver = c.Name()
		e.opts.Counters.Inc("scan.failover")
		return res, nil
	}
	if primaryErr == nil {
		primaryErr = fmt.Errorf("federate: breaker open for %s and no failover candidate serves %s", f.Backend, f.Table)
	}
	return Result{}, primaryErr
}

// scanRetrying runs the fragment on one backend under the retry
// policy: transient failures back off (through the injectable clock)
// and retry up to the budget; permanent failures and cancellations
// return immediately. The scan outcome — success, or the final
// failure — is reported to the health tracker exactly once.
func (e *Executor) scanRetrying(ctx context.Context, b Backend, f Fragment, fr *FragmentRun) (Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := scanWithContext(ctx, b, f)
		if err == nil {
			e.reportScanSuccess(b.Name())
			return res, nil
		}
		if isCancellation(err) {
			// The query is over, not the backend: no health verdict.
			return Result{}, err
		}
		if !fault.IsTransient(err) || attempt >= e.opts.Retry.MaxRetries {
			e.reportScanFailure(b.Name())
			return Result{}, err
		}
		fr.Retries++
		e.opts.Counters.Inc("scan.retry")
		e.opts.Clock.Sleep(e.opts.Retry.Backoff(attempt))
	}
}

// failoverCandidates lists every other backend serving f.Table,
// cheapest first (by the same cost model route uses, with open
// breakers pushed to the back), name-ordered on ties so the failover
// sequence is deterministic.
func (e *Executor) failoverCandidates(f Fragment) []Backend {
	e.mu.RLock()
	backends := append([]Backend(nil), e.backends...)
	e.mu.RUnlock()

	type cand struct {
		b    Backend
		cost float64
	}
	var cands []cand
	for _, b := range backends {
		if b.Name() == f.Backend {
			continue
		}
		push, rest := splitPush(b, f.Table, f.Preds)
		est, ok := b.Estimate(f.Table, push)
		if !ok {
			continue
		}
		cost := est.Cost + float64(est.Out)*0.25*float64(len(rest))
		if e.health.isOpen(b.Name()) {
			cost += breakerPenalty
		}
		cands = append(cands, cand{b, cost})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].b.Name() < cands[j].b.Name()
	})
	out := make([]Backend, len(cands))
	for i, c := range cands {
		out[i] = c.b
	}
	return out
}

// refragment re-plans fragment f for failover candidate c: the pushed
// predicate set is re-split against c's capabilities, zone pruning and
// any explicit row slice are re-derived from c's own zone maps, and
// aggregation/projection ride along only when c absorbs them with zero
// predicate residue. Whatever c cannot absorb, compensate applies
// federation-side, so the fragment's output is bit-identical to the
// planned backend's. ok is false when c cannot serve the fragment at
// all (a row-sliced scan on a backend without range support).
func (e *Executor) refragment(c Backend, f Fragment) (nf Fragment, rest []table.Pred, ok bool) {
	var push []table.Pred
	push, rest = splitPush(c, f.Table, f.Preds)
	nf = Fragment{Backend: c.Name(), Table: f.Table, Preds: push}
	scan := &logical.Node{Op: logical.OpScan, Table: f.Table, RowStart: f.SliceStart, RowEnd: f.SliceEnd}
	if err := e.pruneFragment(&nf, scan); err != nil {
		return Fragment{}, nil, false
	}
	if len(f.Aggs) > 0 {
		if len(rest) == 0 && c.Caps().Has(CapAggregate) && aggsPushable(c, f.Aggs) {
			nf.GroupBy = append([]string(nil), f.GroupBy...)
			nf.Aggs = append([]table.Agg(nil), f.Aggs...)
		}
	} else if len(f.Columns) > 0 && c.Caps().Has(CapProject) {
		nf.Columns = append([]string(nil), f.Columns...)
	}
	return nf, rest, true
}

// compensate applies federation-side whatever the failover backend
// could not absorb, in the same operator order every backend's Scan
// uses — filter, then aggregate, then project — so the compensated
// output is bit-identical to the planned fragment's.
func compensate(res Result, f, nf Fragment, rest []table.Pred) (Result, error) {
	cur := res.Table
	if len(rest) > 0 {
		out := table.New(cur.Name, cur.Schema)
		for _, row := range cur.Rows {
			keep := true
			for _, p := range rest {
				ok, err := p.Eval(cur.Schema, row)
				if err != nil {
					return Result{}, err
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				out.Rows = append(out.Rows, row)
			}
		}
		cur = out
	}
	if len(f.Aggs) > 0 && len(nf.Aggs) == 0 {
		var err error
		cur, err = table.Aggregate(cur, f.GroupBy, f.Aggs)
		if err != nil {
			return Result{}, err
		}
	}
	if len(f.Columns) > 0 && len(nf.Columns) == 0 {
		var err error
		cur, err = table.Project(cur, f.Columns...)
		if err != nil {
			return Result{}, err
		}
	}
	if cur != res.Table {
		// The cached columnar fragments covered the backend's raw
		// output, not the compensated table.
		res.Frags = nil
	}
	res.Table = cur
	return res, nil
}

// firstScanError picks the deterministic query error from per-fragment
// scan errors: the lowest-index real failure wins; deadline expiry
// outranks sibling cancellation (which fragment got cancelled is
// scheduling noise, the deadline is the cause); cancellation only
// surfaces when nothing else explains the abort.
func firstScanError(errs []error) error {
	var deadlineErr, cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.DeadlineExceeded) {
			if deadlineErr == nil {
				deadlineErr = err
			}
			continue
		}
		if errors.Is(err, context.Canceled) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return err
	}
	if deadlineErr != nil {
		return deadlineErr
	}
	return cancelErr
}
