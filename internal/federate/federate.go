// Package federate is the multi-backend execution layer of the unified
// query system. It lowers an optimized logical-plan tree
// (internal/logical) into per-backend scan fragments with predicate
// and projection pushdown, routes every fragment to the cheapest
// capable Backend through a cost-based physical planner, interprets
// the residual tree over the fragment outputs (cross-backend joins
// run with bounded parallelism via internal/par), and renders a
// deterministic EXPLAIN of the logical → rules → physical lowering
// with the optimizer trace and estimated vs actual row counts.
// Physical plans cache by the canonical IR fingerprint and the data
// epoch, so the NL and SQL compilations of one question share a
// single cached plan and no plan outlives the catalog state it was
// derived from.
//
// The residual tree executes through either of internal/logical's
// bit-identical engines: the vectorized columnar executor when every
// residual operator has a kernel and the estimates promise enough
// boundary-crossing rows to amortize column extraction, the row
// interpreter otherwise. The dispatch is decided once at plan time
// (PhysicalPlan.VecResidual) and reported on EXPLAIN's "exec:" line.
//
// Three backends ship with the system: the in-memory catalog (with
// lazy per-column equality indexes), a SQL backend that round-trips
// fragments through internal/sql's dialect as text — the template for
// federating an external SQL store — and a graph-evidence backend that
// exposes the heterogeneous graph index as relational tables. New
// stores implement Backend and register through unisem.RegisterBackend.
package federate

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/table"
)

// ErrNoBackend is returned when no registered backend serves a table
// the plan scans.
var ErrNoBackend = errors.New("federate: no backend serves table")

// Caps is the capability bitmask a backend advertises. The planner
// pushes an operation down only when the serving backend has the
// capability; everything else executes in the federation layer.
type Caps uint32

// Backend capabilities.
const (
	CapFilter    Caps = 1 << iota // applies pushed predicates during the scan
	CapProject                    // applies pushed column projections
	CapAggregate                  // computes pushed group-by/aggregates
)

// Has reports whether all capabilities in x are present.
func (c Caps) Has(x Caps) bool { return c&x == x }

// String renders the capability set, e.g. "filter+project+aggregate".
func (c Caps) String() string {
	var parts []string
	if c.Has(CapFilter) {
		parts = append(parts, "filter")
	}
	if c.Has(CapProject) {
		parts = append(parts, "project")
	}
	if c.Has(CapAggregate) {
		parts = append(parts, "aggregate")
	}
	if len(parts) == 0 {
		return "scan-only"
	}
	return strings.Join(parts, "+")
}

// Estimate is a backend's deterministic cost guess for one fragment.
// Cost is the scalar the planner minimizes across candidate backends;
// the row counts feed EXPLAIN's estimated-vs-actual report.
type Estimate struct {
	Total   int     // rows in the base table
	Scanned int     // rows the backend expects to read
	Out     int     // rows expected to cross the federation boundary
	Cost    float64 // fixed overhead + per-row scan cost
}

// Fragment is the unit of work the planner hands to one backend: a
// scan of a single table carrying whatever predicates, projection and
// aggregation the backend advertised it can absorb, plus the surviving
// row ranges after zone-map fragment pruning.
type Fragment struct {
	Backend string       // chosen backend name (filled by the planner)
	Table   string       // base table to scan
	Preds   []table.Pred // pushed-down filters (conjunction)
	Columns []string     // pushed-down projection (nil = all columns)
	GroupBy []string     // pushed-down aggregation group keys
	Aggs    []table.Agg  // pushed-down aggregates
	Est     Estimate     // planning-time estimate for this fragment

	// Ranges are the ascending surviving row ranges after the planner
	// pruned fragments whose zone maps refute the pushed conjunction.
	// nil means scan everything; an empty non-nil slice means every
	// fragment was refuted and the backend must read zero rows. Set
	// only for backends implementing ZoneMapped (which thereby declare
	// they honor ranges).
	Ranges []table.RowRange
	// ZonePruned/ZoneTotal report the pruning decision for EXPLAIN's
	// "pruned:" line: ZonePruned of ZoneTotal fragments were refuted.
	// ZoneTotal is 0 when the serving backend exposes no zone maps.
	ZonePruned, ZoneTotal int

	// SliceStart/SliceEnd record the scan's explicit row window (the
	// SQL dialect's ROWS clause) when one exists; SliceEnd 0 means no
	// slice. Unlike Ranges — which are derived from the serving
	// backend's zone maps and are advisory — the slice is semantic, so
	// failover re-routing must re-derive it on the new backend rather
	// than drop it.
	SliceStart, SliceEnd int
}

// AggPushable is the optional Backend extension for per-aggregate
// pushdown vetting: a CapAggregate backend that cannot evaluate every
// aggregate function (a SQL dialect without COUNT_MERGE, say) reports
// which ones it absorbs. Backends not implementing it are assumed to
// absorb any aggregate their CapAggregate advertises.
type AggPushable interface {
	CanPushAgg(a table.Agg) bool
}

// aggsPushable reports whether backend b absorbs every aggregate in
// aggs, consulting AggPushable when implemented.
func aggsPushable(b Backend, aggs []table.Agg) bool {
	ap, ok := b.(AggPushable)
	if !ok {
		return true
	}
	for _, a := range aggs {
		if !ap.CanPushAgg(a) {
			return false
		}
	}
	return true
}

// ZoneMapped is the optional Backend extension for zone-map fragment
// pruning: a backend that exposes per-fragment zone maps for its
// tables (nil when the table has none) and honors Fragment.Ranges in
// Scan — reading only the surviving row ranges, in ascending order, so
// results stay bit-identical to an unpruned scan. All three built-in
// backends implement it.
type ZoneMapped interface {
	Zones(tbl string) *table.Zones
}

// Result is a fragment's output plus scan accounting: Scanned counts
// the base-table rows the backend actually read (the number pushdown
// exists to minimize), Table holds the rows that crossed the boundary.
type Result struct {
	Table   *table.Table
	Scanned int
	// Frags optionally carries columnar fragments covering exactly
	// Table (a pass-through scan returning a cached base table), so
	// the vectorized residual executor reuses them instead of
	// re-extracting columns. Nil is always valid.
	Frags *table.Frags
}

// Backend is one executor in the federation: a store that can scan its
// tables and absorb whatever plan operations it has capabilities for.
// Implementations must be safe for concurrent Scan/Estimate calls and
// must produce deterministic results — same fragment, same rows, same
// row order — regardless of how many fragments run in parallel.
type Backend interface {
	// Name identifies the backend in plans and EXPLAIN output.
	Name() string
	// Tables lists the tables this backend serves, sorted.
	Tables() []string
	// Caps advertises which plan operations the backend absorbs.
	Caps() Caps
	// CanPush reports whether one specific predicate on tbl can be
	// pushed down (dialects may not support every operator).
	CanPush(tbl string, p table.Pred) bool
	// Estimate returns deterministic row/cost estimates for scanning
	// tbl under the pushed preds; ok is false when tbl is not served.
	Estimate(tbl string, preds []table.Pred) (est Estimate, ok bool)
	// Scan executes the fragment.
	Scan(f Fragment) (Result, error)
}

// estimateFromStats derives a backend's Estimate from shared
// per-column table statistics: a full scan of the table, an output
// estimated per predicate through SelectivityWith (exact value
// counts, NDV division, histogram interpolation — heuristic fallback
// for columns without stats), and a linear fixed + per-row cost.
// Backends with a smarter access path (the memory backend's equality
// indexes) refine Scanned/Out/Cost on top of it.
func estimateFromStats(ts *table.TableStats, total int, preds []table.Pred, fixed, perRow float64) Estimate {
	return Estimate{
		Total:   total,
		Scanned: total,
		Out:     ts.EstimateRows(total, preds),
		Cost:    fixed + perRow*float64(total),
	}
}

// predsString renders a predicate conjunction for EXPLAIN.
func predsString(preds []table.Pred) string {
	if len(preds) == 0 {
		return "[]"
	}
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return "[" + strings.Join(parts, " AND ") + "]"
}

// aggsString renders pushed aggregates for EXPLAIN.
func aggsString(groupBy []string, aggs []table.Agg) string {
	names := make([]string, len(aggs))
	for i, a := range aggs {
		names[i] = fmt.Sprintf("%s(%s)", a.Func, a.Col)
	}
	return fmt.Sprintf("group=%v %s", groupBy, strings.Join(names, ","))
}
