package federate

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/logical"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/table"
	"repro/internal/workload"
)

// prunableCatalog builds a catalog whose events table spans several
// fragments with zone-friendly layout: seq is monotone (disjoint
// per-fragment ranges), region is constant per fragment (equality
// pruning), and amount stays bounded (out-of-range refutation).
func prunableCatalog(rows int) *table.Catalog {
	c := table.NewCatalog()
	events := table.New("events", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "seq", Type: table.TypeInt},
		{Name: "amount", Type: table.TypeFloat},
	})
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < rows; i++ {
		events.MustAppend([]table.Value{
			table.S(regions[(i/table.FragmentRows)%len(regions)]),
			table.I(int64(i)),
			table.F(float64(i % 500)),
		})
	}
	c.Put(events)
	return c
}

// runPruned executes the tree federated (pruned) and against the bare
// catalog (the unpruned reference) and asserts bit-identical results.
func runPruned(t *testing.T, e *Executor, c *table.Catalog, root *logical.Node) *Run {
	t.Helper()
	opt := logical.Optimize(root, logical.CatalogStats(c))
	got, run, err := e.ExecuteIR(opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := logical.Exec(opt.Root, c)
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(want) {
		t.Fatalf("pruned execution diverges from unpruned:\n%s\nvs\n%s", render(got), render(want))
	}
	return run
}

func filterScan(tbl string, preds ...table.Pred) *logical.Node {
	return &logical.Node{Op: logical.OpFilter, Preds: preds,
		In: []*logical.Node{{Op: logical.OpScan, Table: tbl}}}
}

// TestZonePruneSkipsRefutedFragments drives the memory backend through
// full, partial and no pruning, pinning rows actually scanned.
func TestZonePruneSkipsRefutedFragments(t *testing.T) {
	rows := 3*table.FragmentRows + 50
	c := prunableCatalog(rows)
	e := New(c.Epoch, Options{}, NewMemory(c))

	// Out-of-bounds range predicate: table-wide statistics refute it, so
	// emptyfold collapses the scan at plan time — no fragment is even
	// routed to a backend, and the run returns an empty result.
	opt := logical.Optimize(filterScan("events", table.Pred{Col: "amount", Op: table.OpGt, Val: table.F(1e9)}), logical.CatalogStats(c))
	if opt.Root.Op != logical.OpEmpty {
		t.Fatalf("statistically refuted scan not folded: %s", opt.Root)
	}
	got, run, err := e.ExecuteIR(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Fragments) != 0 || got.Len() != 0 || run.RowsOut != 0 {
		t.Errorf("folded scan routed %d fragments, returned %d rows; want 0/0", len(run.Fragments), got.Len())
	}

	// Cross-column conjunction: no single column's table-wide statistics
	// refute it (east exists; seq >= FragmentRows is in bounds), so the
	// scan survives to the planner — but every fragment's zones refute
	// one conjunct (fragment 0 is the only east fragment and holds
	// exactly seq < FragmentRows), so zone pruning skips all four.
	run = runPruned(t, e, c, filterScan("events",
		table.Pred{Col: "region", Op: table.OpEq, Val: table.S("east")},
		table.Pred{Col: "seq", Op: table.OpGe, Val: table.I(int64(table.FragmentRows))}))
	fr := run.Fragments[0]
	if fr.ActScanned != 0 {
		t.Errorf("zone-refuted conjunction scanned %d rows, want 0", fr.ActScanned)
	}
	if fr.ZonePruned != 4 || fr.ZoneTotal != 4 {
		t.Errorf("pruned %d/%d fragments, want 4/4", fr.ZonePruned, fr.ZoneTotal)
	}

	// Range hitting one fragment: the others are refuted by seq bounds.
	lo := int64(2 * table.FragmentRows)
	run = runPruned(t, e, c, filterScan("events",
		table.Pred{Col: "seq", Op: table.OpGe, Val: table.I(lo)},
		table.Pred{Col: "seq", Op: table.OpLt, Val: table.I(lo + 10)}))
	fr = run.Fragments[0]
	if fr.ActScanned != table.FragmentRows {
		t.Errorf("one-fragment range scanned %d rows, want %d", fr.ActScanned, table.FragmentRows)
	}
	if fr.ZonePruned != 3 {
		t.Errorf("pruned %d fragments, want 3", fr.ZonePruned)
	}

	// Per-fragment-constant equality: only the matching fragment scans.
	run = runPruned(t, e, c, filterScan("events", table.Pred{Col: "region", Op: table.OpEq, Val: table.S("west")}))
	if fr = run.Fragments[0]; fr.ActScanned != table.FragmentRows {
		t.Errorf("region equality scanned %d rows, want %d", fr.ActScanned, table.FragmentRows)
	}

	// Matching-everything predicate: nothing pruned, full scan.
	run = runPruned(t, e, c, filterScan("events", table.Pred{Col: "seq", Op: table.OpGe, Val: table.I(0)}))
	if fr = run.Fragments[0]; fr.ActScanned != rows || fr.ZonePruned != 0 {
		t.Errorf("unprunable predicate scanned %d (pruned %d), want full %d / 0", fr.ActScanned, fr.ZonePruned, rows)
	}

	// EXPLAIN carries the pruning decision.
	run = runPruned(t, e, c, filterScan("events",
		table.Pred{Col: "region", Op: table.OpEq, Val: table.S("east")},
		table.Pred{Col: "seq", Op: table.OpGe, Val: table.I(int64(table.FragmentRows))}))
	if !strings.Contains(Explain(run), "pruned:   scan[0] 4/4 fragments") {
		t.Errorf("EXPLAIN misses the pruned line:\n%s", Explain(run))
	}
}

// TestZonePruneWithEqualityIndex pins the interplay of the equality
// index and fragment pruning: the bucket is intersected with the
// surviving ranges, never scanning outside them.
func TestZonePruneWithEqualityIndex(t *testing.T) {
	c := prunableCatalog(4 * table.FragmentRows)
	e := New(c.Epoch, Options{}, NewMemory(c))
	// region = west lives only in fragment 1; seq < FragmentRows refutes
	// it, so bucket ∩ ranges is empty even though the bucket has rows.
	run := runPruned(t, e, c, filterScan("events",
		table.Pred{Col: "region", Op: table.OpEq, Val: table.S("west")},
		table.Pred{Col: "seq", Op: table.OpLt, Val: table.I(int64(table.FragmentRows))}))
	if fr := run.Fragments[0]; fr.ActScanned != 0 {
		t.Errorf("contradictory conjunction scanned %d rows, want 0", fr.ActScanned)
	}
}

// TestSQLBackendFragmentRangedSelects routes a pruned scan to the SQL
// backend, which must express the surviving fragments as ranged
// SELECT text (ROWS a TO b) — including the locally-reassembled
// aggregate — and still match the unpruned reference bit-exactly.
func TestSQLBackendFragmentRangedSelects(t *testing.T) {
	rows := 3*table.FragmentRows + 50
	c := prunableCatalog(rows)
	e := New(c.Epoch, Options{}, NewSQL(c)) // sole provider: everything routes to sql

	lo := int64(table.FragmentRows)
	pred := table.Pred{Col: "seq", Op: table.OpGe, Val: table.I(lo)}
	hi := table.Pred{Col: "seq", Op: table.OpLt, Val: table.I(lo + 20)}

	run := runPruned(t, e, c, filterScan("events", pred, hi))
	if fr := run.Fragments[0]; fr.ActScanned != table.FragmentRows || fr.Backend != "sql" {
		t.Errorf("sql ranged scan read %d rows via %s, want %d via sql", fr.ActScanned, fr.Backend, table.FragmentRows)
	}

	// Pushed group-by aggregate over a pruned scan: the backend runs
	// ranged filter SELECTs and aggregates the assembly locally.
	agg := &logical.Node{Op: logical.OpAggregate,
		GroupBy: []string{"region"},
		Aggs:    []table.Agg{{Func: table.AggSum, Col: "amount", As: "total"}},
		In:      []*logical.Node{filterScan("events", table.Pred{Col: "seq", Op: table.OpGe, Val: table.I(int64(2 * table.FragmentRows))})}}
	run = runPruned(t, e, c, agg)
	if !run.Plan.AggPushed {
		t.Error("aggregate not pushed into the pruned sql fragment")
	}
	if fr := run.Fragments[0]; fr.ActScanned != rows-2*table.FragmentRows {
		t.Errorf("pruned agg scan read %d rows, want %d", fr.ActScanned, rows-2*table.FragmentRows)
	}

	// All fragments zone-refuted: zero SELECTs, empty aggregate, zero
	// rows. The conjunction must dodge table-wide refutation (west
	// exists, seq < FragmentRows is in bounds) or emptyfold would
	// collapse the scan before the SQL backend ever saw it.
	run = runPruned(t, e, c, &logical.Node{Op: logical.OpAggregate,
		Aggs: []table.Agg{{Func: table.AggSum, Col: "amount", As: "total"}},
		In: []*logical.Node{filterScan("events",
			table.Pred{Col: "region", Op: table.OpEq, Val: table.S("west")},
			table.Pred{Col: "seq", Op: table.OpLt, Val: table.I(int64(table.FragmentRows))})}})
	if fr := run.Fragments[0]; fr.ActScanned != 0 {
		t.Errorf("fully-pruned sql scan read %d rows, want 0", fr.ActScanned)
	}
}

// TestGraphBackendPrunesViews pins zone pruning on the materialized
// graph views: a per-fragment-refuted conjunction reads zero rows,
// and a statistically impossible predicate folds before routing.
func TestGraphBackendPrunesViews(t *testing.T) {
	g := graph.New()
	for i := 0; i < 2*table.FragmentRows; i++ {
		etype := "drug"
		if i >= table.FragmentRows {
			etype = "gene"
		}
		if err := g.AddNode(graph.Node{ID: fmt.Sprintf("entity:%04d", i), Type: graph.NodeEntity,
			Label: fmt.Sprintf("E%04d", i), Attrs: map[string]string{"etype": etype}}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(func() uint64 { return 1 }, Options{}, NewGraphEvidence(g, func() uint64 { return 1 }))

	// No single column refutes this conjunction over the whole view
	// (drugs exist; the label bound is inside the entity range), so the
	// scan reaches the backend — but each fragment's zones refute one
	// conjunct: fragment 0 holds every drug yet only labels below the
	// bound, fragment 1 the reverse.
	root := filterScan(GraphEntitiesTable,
		table.Pred{Col: "etype", Op: table.OpEq, Val: table.S("drug")},
		table.Pred{Col: "entity", Op: table.OpGe, Val: table.S(fmt.Sprintf("E%04d", table.FragmentRows))})
	opt := logical.Optimize(root, e.Stats())
	res, run, err := e.ExecuteIR(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("contradictory conjunction returned %d rows", res.Len())
	}
	if fr := run.Fragments[0]; fr.ActScanned != 0 || fr.ZonePruned != fr.ZoneTotal || fr.ZoneTotal == 0 {
		t.Errorf("graph view scan = %d rows, pruned %d/%d; want 0 rows, all fragments pruned",
			fr.ActScanned, fr.ZonePruned, fr.ZoneTotal)
	}

	// An impossible degree bound is refuted by the view's table-wide
	// statistics: emptyfold collapses the scan and no fragment is routed.
	opt = logical.Optimize(filterScan(GraphEntitiesTable,
		table.Pred{Col: "degree", Op: table.OpGt, Val: table.I(1 << 40)}), e.Stats())
	res, run, err = e.ExecuteIR(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Fragments) != 0 || res.Len() != 0 {
		t.Errorf("folded graph scan routed %d fragments, returned %d rows; want 0/0",
			len(run.Fragments), res.Len())
	}
}

// TestGraphViewsRematerializeOncePerEpoch pins the epoch guard: any
// number of plans against an unchanged epoch materializes the views
// exactly once; an epoch move rebuilds exactly once more.
func TestGraphViewsRematerializeOncePerEpoch(t *testing.T) {
	g := graph.New()
	if err := g.AddNode(graph.Node{ID: "entity:0", Type: graph.NodeEntity, Label: "Drug A",
		Attrs: map[string]string{"etype": "drug"}}); err != nil {
		t.Fatal(err)
	}
	epoch := uint64(1)
	ge := NewGraphEvidence(g, func() uint64 { return epoch })
	e := New(func() uint64 { return epoch }, Options{}, ge)

	root := filterScan(GraphEntitiesTable, table.Pred{Col: "etype", Op: table.OpEq, Val: table.S("drug")})
	for i := 0; i < 5; i++ {
		if _, _, err := e.ExecuteIR(logical.Optimize(root, e.Stats())); err != nil {
			t.Fatal(err)
		}
	}
	if got := ge.Remats(); got != 1 {
		t.Fatalf("views materialized %d times at one epoch, want 1", got)
	}
	epoch++
	if _, _, err := e.ExecuteIR(logical.Optimize(root, e.Stats())); err != nil {
		t.Fatal(err)
	}
	if got := ge.Remats(); got != 2 {
		t.Fatalf("views materialized %d times after one epoch move, want 2", got)
	}
}

// TestPrunedExecutionMatchesUnprunedWorkload is the pruning-parity
// harness: every bindable workload question of both domains executes
// through the zone-pruning federated planner and must return exactly
// the rows the unpruned single-store executor returns.
func TestPrunedExecutionMatchesUnprunedWorkload(t *testing.T) {
	corpora := []*workload.Corpus{
		workload.ECommerce(workload.DefaultECommerceOptions()),
		workload.Healthcare(workload.DefaultHealthcareOptions()),
	}
	bound := 0
	for _, c := range corpora {
		ner := slm.NewNER()
		c.Register(ner)
		cat := workloadCatalog(t, c, ner)
		e := New(cat.Epoch, Options{}, NewMemory(cat), NewSQL(cat))
		for _, q := range c.Queries {
			plan, err := semop.Bind(semop.Parse(q.Text, ner), cat)
			if err != nil {
				continue
			}
			bound++
			got, _, err := e.Execute(plan)
			if err != nil {
				t.Fatalf("%s: %q: %v", c.Name, q.Text, err)
			}
			want, err := semop.Exec(plan, cat)
			if err != nil {
				t.Fatalf("%s: %q: unpruned reference: %v", c.Name, q.Text, err)
			}
			if render(got) != render(want) {
				t.Errorf("%s: %q: pruned execution diverges:\n%s\nvs\n%s", c.Name, q.Text, render(got), render(want))
			}
		}
	}
	if bound == 0 {
		t.Fatal("no workload question bound — parity harness vacuous")
	}
}
