package federate

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/table"
)

// Options configures an Executor.
type Options struct {
	// Workers bounds fragment-level parallelism (cross-backend scans of
	// one query run concurrently). 0 means GOMAXPROCS, 1 sequential.
	Workers int
	// PlanCacheSize caps the physical-plan cache (default 256).
	PlanCacheSize int
	// Timeout bounds each query execution; fragment scans observe the
	// deadline through their context. 0 means no deadline.
	Timeout time.Duration
	// Retry schedules per-fragment retries of transient scan failures.
	// The zero value selects fault.DefaultPolicy(); MaxRetries -1
	// disables retrying.
	Retry fault.Policy
	// Breaker tunes per-backend circuit breaking. Zero-value fields
	// select the defaults (threshold 3, cooldown 8); FailThreshold -1
	// disables breaking.
	Breaker BreakerConfig
	// Clock drives retry-backoff sleeps; nil selects the wall clock.
	// Tests inject fault.NewFakeClock so they never sleep for real.
	Clock fault.Clock
	// Counters receives resilience instrumentation (scan.retry,
	// scan.failover, breaker.open, plan.replan, ...). Nil disables
	// instrumentation; *metrics.CounterSet methods are nil-safe.
	Counters *metrics.CounterSet
}

// Executor is the federation engine: it owns the backend registry, the
// cost-based physical planner, and the epoch-keyed plan cache. Safe
// for concurrent use; Register may interleave with Execute.
type Executor struct {
	opts    Options
	epochFn func() uint64

	mu       sync.RWMutex
	backends []Backend // guarded by mu; sorted by name; ties in cost resolve by order
	regGen   uint64    // guarded by mu; bumped by Register; versions routing decisions

	plans  *planCache
	health *healthTracker

	bindMu    sync.Mutex
	bindEpoch uint64         // guarded by bindMu
	bindGen   uint64         // guarded by bindMu
	binding   *table.Catalog // guarded by bindMu
}

// New returns an executor over the given backends. epochFn versions
// the underlying data: cached physical plans and binding catalogs are
// reused only while it is unchanged. A nil epochFn pins epoch 0
// (static data).
func New(epochFn func() uint64, opts Options, backends ...Backend) *Executor {
	if epochFn == nil {
		epochFn = func() uint64 { return 0 }
	}
	if opts.PlanCacheSize <= 0 {
		opts.PlanCacheSize = 256
	}
	if opts.Retry == (fault.Policy{}) {
		opts.Retry = fault.DefaultPolicy()
	}
	if opts.Retry.MaxRetries < 0 {
		opts.Retry.MaxRetries = 0
	}
	if opts.Breaker.FailThreshold == 0 {
		opts.Breaker.FailThreshold = 3
	}
	if opts.Breaker.Cooldown <= 0 {
		opts.Breaker.Cooldown = 8
	}
	if opts.Clock == nil {
		opts.Clock = fault.RealClock()
	}
	e := &Executor{opts: opts, epochFn: epochFn, plans: newPlanCache(opts.PlanCacheSize), health: newHealthTracker()}
	for _, b := range backends {
		e.Register(b)
	}
	return e
}

// Register adds a backend (replacing any with the same name) and
// flushes plan and binding caches, since routing decisions may change.
// The registry generation bump also invalidates any plan an in-flight
// Execute computed against the old registry but has not cached yet.
func (e *Executor) Register(b Backend) {
	e.mu.Lock()
	kept := e.backends[:0]
	for _, x := range e.backends {
		if x.Name() != b.Name() {
			kept = append(kept, x)
		}
	}
	e.backends = append(kept, b)
	sort.Slice(e.backends, func(i, j int) bool { return e.backends[i].Name() < e.backends[j].Name() })
	e.regGen++
	e.mu.Unlock()

	e.plans.flush()
	e.bindMu.Lock()
	e.binding = nil
	e.bindMu.Unlock()
}

// Unregister removes the named backend (simulating a store taken out
// of service) and flushes plan and binding caches exactly as Register
// does. Reports whether the backend was present. In-flight queries
// planned against the old registry observe the generation bump and
// re-plan rather than failing with a stale-routing error.
func (e *Executor) Unregister(name string) bool {
	e.mu.Lock()
	kept := e.backends[:0]
	found := false
	for _, x := range e.backends {
		if x.Name() == name {
			found = true
			continue
		}
		kept = append(kept, x)
	}
	e.backends = kept
	if !found {
		e.mu.Unlock()
		return false
	}
	e.regGen++
	e.mu.Unlock()

	e.plans.flush()
	e.bindMu.Lock()
	e.binding = nil
	e.bindMu.Unlock()
	return true
}

// generation returns the registry version; plans and binding catalogs
// are valid only for the generation they were computed at.
func (e *Executor) generation() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.regGen
}

// Backends lists registered backend names, sorted.
func (e *Executor) Backends() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.backends))
	for i, b := range e.backends {
		out[i] = b.Name()
	}
	return out
}

func (e *Executor) backend(name string) Backend {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, b := range e.backends {
		if b.Name() == name {
			return b
		}
	}
	return nil
}

// PlanCacheStats reports physical-plan cache hits, misses and size.
func (e *Executor) PlanCacheStats() (hits, misses int64, size int) {
	return e.plans.stats()
}

// BindingCatalog returns a catalog spanning every backend's tables —
// the schema surface semantic-operator binding sees when the primary
// catalog cannot answer a query, and the statistics source for the
// logical optimizer when the executor plans a bare semop.Plan.
// Materialized once per epoch; when two backends serve the same table
// name, the first in name order wins.
func (e *Executor) BindingCatalog() *table.Catalog {
	epoch := e.epochFn()
	gen := e.generation()
	e.bindMu.Lock()
	defer e.bindMu.Unlock()
	if e.binding != nil && e.bindEpoch == epoch && e.bindGen == gen {
		return e.binding
	}
	c := table.NewCatalog()
	e.mu.RLock()
	backends := append([]Backend(nil), e.backends...)
	e.mu.RUnlock()
	for _, b := range backends {
		for _, name := range b.Tables() {
			if _, err := c.Get(name); err == nil {
				continue
			}
			res, err := b.Scan(Fragment{Backend: b.Name(), Table: name})
			if err != nil {
				continue
			}
			c.Put(res.Table)
		}
	}
	e.binding, e.bindEpoch, e.bindGen = c, epoch, gen
	return c
}

// Stats exposes the federated schema surface as the logical
// optimizer's statistics source.
func (e *Executor) Stats() logical.Stats {
	return logical.CatalogStats(e.BindingCatalog())
}

// PhysicalPlan is an optimized logical tree lowered onto backends: one
// fragment per Scan leaf plus the residual tree the federation layer
// interprets over the fragment outputs. Physical plans are immutable
// once planned and cached by (IR fingerprint, epoch); per-run row
// counts live in Run, not here.
type PhysicalPlan struct {
	Root     *logical.Node // optimized logical plan (EXPLAIN "logical:")
	Residual *logical.Node // Scan leaves replaced by Inputs, absorbed ops removed
	Trace    []string      // optimizer rule trace (EXPLAIN "rules:")
	Rollups  []string      // rollup routings (EXPLAIN "rollup:"), empty when none
	Frags    []Fragment    // scan fragments in left-to-right tree order

	// PostFilters are the driving fragment's non-pushable predicate
	// residue, evaluated in the federation layer. Main-side filters of
	// join plans never reach the fragment at all: they stay above the
	// join in the residual tree, preserving the unfederated operator
	// order (join, then filter) so row order and results are identical.
	PostFilters []table.Pred
	JoinRes     []table.Pred // join-side residue (EXPLAIN "residual=")
	AggPushed   bool         // aggregation absorbed by the driving fragment's backend

	// VecResidual records the executor dispatch decision, made once at
	// plan time: true when every residual operator has a vectorized
	// kernel (logical.Vectorizable) AND at least one fragment is
	// estimated to deliver vecResidualMinRows rows across the boundary
	// — below that, column extraction cannot amortize and the row
	// interpreter is cheaper. Both executors are bit-identical, so the
	// dispatch never changes results; EXPLAIN renders it as
	// "exec: vectorized|row".
	VecResidual bool

	Epoch uint64
	gen   uint64 // registry generation the routing was decided at
	hver  uint64 // breaker-state version the routing was decided at
	key   string
}

// splitPush partitions preds into the subset backend b absorbs and the
// residue the federation layer must evaluate.
func splitPush(b Backend, tbl string, preds []table.Pred) (push, rest []table.Pred) {
	if !b.Caps().Has(CapFilter) {
		return nil, preds
	}
	for _, p := range preds {
		if b.CanPush(tbl, p) {
			push = append(push, p)
		} else {
			rest = append(rest, p)
		}
	}
	return push, rest
}

// route picks the cheapest backend serving tbl, offering preds for
// pushdown. Ties resolve to the first backend in name order.
func (e *Executor) route(tbl string, preds []table.Pred) (Fragment, []table.Pred, error) {
	e.mu.RLock()
	backends := append([]Backend(nil), e.backends...)
	e.mu.RUnlock()

	var (
		best     Backend
		bestPush []table.Pred
		bestRest []table.Pred
		bestEst  Estimate
	)
	for _, b := range backends {
		push, rest := splitPush(b, tbl, preds)
		est, ok := b.Estimate(tbl, push)
		if !ok {
			continue
		}
		// Residual predicates cost the federation layer one evaluation
		// per returned row; fold that into the comparable cost.
		cost := est.Cost + float64(est.Out)*0.25*float64(len(rest))
		// An open breaker deprioritizes the backend without excluding
		// it: health is a planning input, exactly like cost. The plan
		// cache keys on the breaker-state version, so a transition
		// re-routes on the next plan rather than serving a stale choice.
		if e.health.isOpen(b.Name()) {
			cost += breakerPenalty
		}
		if best == nil || cost < bestEst.Cost {
			best, bestPush, bestRest, bestEst = b, push, rest, est
			bestEst.Cost = cost
		}
	}
	if best == nil {
		return Fragment{}, nil, fmt.Errorf("%w: %s", ErrNoBackend, tbl)
	}
	return Fragment{Backend: best.Name(), Table: tbl, Preds: bestPush, Est: bestEst}, bestRest, nil
}

// plan lowers the optimized tree, consulting the epoch-keyed cache.
// key is the tree's canonical fingerprint (computed by the caller so
// prepared plans amortize it).
// vecResidualMinRows is the plan-time vectorization threshold: the
// residual runs the columnar executor only when some fragment is
// estimated to deliver at least this many rows across the federation
// boundary. The fixed cost of column extraction and batch setup is on
// the order of a few dozen row visits, so smaller residual inputs are
// cheaper through the row interpreter.
const vecResidualMinRows = 32

// maxEstOut returns the largest estimated boundary-crossing row count
// across the plan's fragments — the size of the biggest residual
// input, which drives the executor dispatch decision.
func maxEstOut(frags []Fragment) int {
	m := 0
	for _, f := range frags {
		if f.Est.Out > m {
			m = f.Est.Out
		}
	}
	return m
}

func (e *Executor) plan(opt *logical.Optimized, key string) (*PhysicalPlan, bool, error) {
	epoch := e.epochFn()
	// Snapshot the registry generation before routing: if a Register
	// lands mid-plan, the generation mismatch keeps the stale plan out
	// of the cache (put drops it) and out of future lookups. Breaker
	// states are versioned the same way: route() reads them, so a plan
	// is valid only for the breaker-state version it was decided at.
	gen := e.generation()
	e.health.sync(gen)
	hver := e.health.version()
	if pp := e.plans.get(key, epoch, gen, hver); pp != nil {
		return pp, true, nil
	}

	pp := &PhysicalPlan{Root: opt.Root, Trace: opt.Trace, Rollups: opt.Rollups, Epoch: epoch, gen: gen, hver: hver, key: key}
	residual, err := e.lower(opt.Root, pp)
	if err != nil {
		return nil, false, err
	}
	pp.Residual = residual
	pp.VecResidual = logical.Vectorizable(residual) && maxEstOut(pp.Frags) >= vecResidualMinRows

	e.plans.put(key, pp, e.generation(), e.health.version())
	return pp, false, nil
}

// lower recursively rewrites the tree: every Scan leaf becomes a
// routed fragment plus an Input node, and the operators a fragment's
// backend absorbs — pushable predicates, pruned or explicitly
// projected columns, a whole directly-stacked aggregation — disappear
// from the residual the federation layer interprets.
func (e *Executor) lower(n *logical.Node, pp *PhysicalPlan) (*logical.Node, error) {
	switch n.Op {
	case logical.OpScan:
		input, _, rest, err := e.lowerScan(n, nil, pp)
		if err != nil {
			return nil, err
		}
		return wrapFilter(input, rest), nil

	case logical.OpFilter:
		if scan := directScan(n); scan != nil {
			input, _, rest, err := e.lowerScan(scan, n.Preds, pp)
			if err != nil {
				return nil, err
			}
			return wrapFilter(input, rest), nil
		}

	case logical.OpAggregate:
		// A group-by stacked directly on a (possibly filtered) scan can
		// evaluate entirely inside a capable backend — but only when
		// every predicate pushed and the scan's column set did too, so
		// the fragment output is exactly the aggregate.
		if scan, filter := chainScan(n.Child()); scan != nil {
			var offer []table.Pred
			if filter != nil {
				offer = filter.Preds
			}
			input, frag, rest, err := e.lowerScan(scan, offer, pp)
			if err != nil {
				return nil, err
			}
			if len(rest) == 0 && input.Op == logical.OpInput {
				if b := e.backend(frag.Backend); b != nil && b.Caps().Has(CapAggregate) && aggsPushable(b, n.Aggs) {
					frag.GroupBy = n.GroupBy
					frag.Aggs = n.Aggs
					frag.Columns = nil // aggregation already minimizes the output
					// The fragment now returns group rows, not filtered
					// rows: re-estimate its output from the group keys'
					// distinct counts.
					frag.Est.Out = logical.EstimateGroupRows(e.Stats().TableStats(frag.Table), frag.Est.Out, n.GroupBy)
					pp.AggPushed = true
					return input, nil
				}
			}
			out := n.Clone()
			out.In = []*logical.Node{wrapFilter(input, rest)}
			return out, nil
		}

	case logical.OpProject:
		// An alias-free projection over a fully-pushed scan (the
		// semi-join key projection, or a plain SQL SELECT list) rides
		// into the fragment: only the projected columns cross the wire.
		if scan, filter := chainScan(n.Child()); scan != nil && len(n.Aliases) == 0 {
			var offer []table.Pred
			if filter != nil {
				offer = filter.Preds
			}
			input, frag, rest, err := e.lowerScan(scan, offer, pp)
			if err != nil {
				return nil, err
			}
			if len(rest) == 0 && input.Op == logical.OpInput {
				if b := e.backend(frag.Backend); b != nil && b.Caps().Has(CapProject) {
					frag.Columns = append([]string(nil), n.Proj...)
					return input, nil
				}
			}
			out := n.Clone()
			out.In = []*logical.Node{wrapFilter(input, rest)}
			return out, nil
		}

	case logical.OpCompare:
		// The comparison's common predicates are the pushdown offer;
		// the residue stays inside the residual Compare node, applied
		// per branch exactly as the single-store executor applies it.
		if scan := directScanNode(n.Child()); scan != nil {
			input, _, rest, err := e.lowerScan(scan, n.Preds, pp)
			if err != nil {
				return nil, err
			}
			out := n.Clone()
			out.Preds = rest
			out.In = []*logical.Node{input}
			return out, nil
		}
	}

	out := n.Clone()
	out.In = make([]*logical.Node, len(n.In))
	for i, in := range n.In {
		low, err := e.lower(in, pp)
		if err != nil {
			return nil, err
		}
		out.In[i] = low
	}
	return out, nil
}

// lowerScan routes one Scan leaf: offer preds for pushdown, push the
// scan's pruned column set when the chosen backend projects, and
// return the Input leaf (wrapped in a federation-side projection when
// the backend could not absorb the pruned columns), the fragment, and
// the predicate residue. The residue is also recorded on the plan —
// driving fragment (index 0) as PostFilters, joined side as JoinRes —
// for EXPLAIN's residual annotation and diagnostics.
func (e *Executor) lowerScan(scan *logical.Node, offer []table.Pred, pp *PhysicalPlan) (*logical.Node, *Fragment, []table.Pred, error) {
	frag, rest, err := e.route(scan.Table, offer)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := e.pruneFragment(&frag, scan); err != nil {
		return nil, nil, nil, err
	}
	colsPushed := false
	if len(scan.Cols) > 0 {
		if b := e.backend(frag.Backend); b != nil && b.Caps().Has(CapProject) {
			frag.Columns = append([]string(nil), scan.Cols...)
			colsPushed = true
		}
	}
	pp.Frags = append(pp.Frags, frag)
	if len(pp.Frags) == 1 {
		pp.PostFilters = rest
	} else {
		pp.JoinRes = rest
	}
	input := &logical.Node{Op: logical.OpInput, Index: len(pp.Frags) - 1, Table: scan.Table}
	if len(scan.Cols) > 0 && !colsPushed {
		input = &logical.Node{Op: logical.OpProject,
			Proj: append([]string(nil), scan.Cols...), In: []*logical.Node{input}}
	}
	return input, &pp.Frags[len(pp.Frags)-1], rest, nil
}

// pruneFragment consults the chosen backend's zone maps (when it
// implements ZoneMapped) and restricts the fragment to the row ranges
// its pushed conjunction cannot be refuted on. Pruning happens at plan
// time — zone maps are a pure function of the data epoch the plan
// caches under — so the decision (and EXPLAIN's "pruned:" line) is
// deterministic at any worker count. A scan carrying an explicit row
// range (the SQL dialect's ROWS clause) intersects it with the
// survivors; such a scan requires a range-honoring backend.
func (e *Executor) pruneFragment(frag *Fragment, scan *logical.Node) error {
	if scan.RowEnd > 0 {
		frag.SliceStart, frag.SliceEnd = scan.RowStart, scan.RowEnd
	}
	zb, _ := e.backend(frag.Backend).(ZoneMapped)
	if zb == nil {
		if scan.RowEnd > 0 {
			return fmt.Errorf("federate: backend %s cannot serve row-ranged scan of %s", frag.Backend, scan.Table)
		}
		return nil
	}
	z := zb.Zones(frag.Table)
	if z == nil || len(z.Maps) == 0 {
		if scan.RowEnd > 0 {
			frag.Ranges = []table.RowRange{{Start: scan.RowStart, End: scan.RowEnd}}
		}
		return nil
	}
	keep, pruned := z.Prune(frag.Preds)
	frag.ZoneTotal = len(z.Maps)
	frag.ZonePruned = pruned
	if scan.RowEnd > 0 {
		keep = table.IntersectRanges(keep, []table.RowRange{{Start: scan.RowStart, End: scan.RowEnd}})
	} else if pruned == 0 {
		return nil // nothing refuted: plain full scan, no range plumbing
	}
	frag.Ranges = keep
	surv := table.RangesLen(keep)
	if surv < frag.Est.Scanned {
		frag.Est.Scanned = surv
	}
	if surv < frag.Est.Out {
		frag.Est.Out = surv
	}
	return nil
}

func wrapFilter(in *logical.Node, preds []table.Pred) *logical.Node {
	if len(preds) == 0 {
		return in
	}
	return &logical.Node{Op: logical.OpFilter, Preds: preds, In: []*logical.Node{in}}
}

// directScan returns the Scan directly under a Filter node, nil
// otherwise.
func directScan(filter *logical.Node) *logical.Node {
	if c := filter.Child(); c != nil && c.Op == logical.OpScan {
		return c
	}
	return nil
}

func directScanNode(n *logical.Node) *logical.Node {
	if n != nil && n.Op == logical.OpScan {
		return n
	}
	return nil
}

// chainScan matches the (Filter →) Scan tail of a pushable chain.
func chainScan(n *logical.Node) (scan, filter *logical.Node) {
	if n == nil {
		return nil, nil
	}
	if n.Op == logical.OpScan {
		return n, nil
	}
	if n.Op == logical.OpFilter {
		if s := directScan(n); s != nil {
			return s, n
		}
	}
	return nil, nil
}

// planCache is a bounded map of physical plans keyed by the canonical
// IR fingerprint. Entries carry the epoch they were planned at; a
// stale hit is treated as a miss and overwritten, so an epoch bump
// (ingest, backend registration) invalidates everything without a
// sweep.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*PhysicalPlan // guarded by mu
	hits    int64                    // guarded by mu
	misses  int64                    // guarded by mu
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, entries: make(map[string]*PhysicalPlan, capacity)}
}

func (c *planCache) get(key string, epoch, gen, hver uint64) *PhysicalPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	pp := c.entries[key]
	if pp == nil || pp.Epoch != epoch || pp.gen != gen || pp.hver != hver {
		c.misses++
		return nil
	}
	c.hits++
	return pp
}

// put caches the plan unless the registry generation or the breaker
// state moved while it was being computed — a concurrent Register
// already flushed the cache, and re-inserting a plan routed against
// the old registry (or old backend health) would undo that flush.
func (c *planCache) put(key string, pp *PhysicalPlan, gen, hver uint64) {
	if pp.gen != gen || pp.hver != hver {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		if _, ok := c.entries[key]; !ok {
			// Wholesale flush at capacity: plans are cheap to rebuild and
			// a deterministic full reset beats tracking recency.
			c.entries = make(map[string]*PhysicalPlan, c.cap)
		}
	}
	c.entries[key] = pp
}

func (c *planCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*PhysicalPlan, c.cap)
}

func (c *planCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
