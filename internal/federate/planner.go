package federate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/semop"
	"repro/internal/table"
)

// Options configures an Executor.
type Options struct {
	// Workers bounds fragment-level parallelism (cross-backend scans of
	// one query run concurrently). 0 means GOMAXPROCS, 1 sequential.
	Workers int
	// PlanCacheSize caps the physical-plan cache (default 256).
	PlanCacheSize int
}

// Executor is the federation engine: it owns the backend registry, the
// cost-based physical planner, and the epoch-keyed plan cache. Safe
// for concurrent use; Register may interleave with Execute.
type Executor struct {
	opts    Options
	epochFn func() uint64

	mu       sync.RWMutex
	backends []Backend // sorted by name; ties in cost resolve by order
	regGen   uint64    // bumped by Register; versions routing decisions

	plans *planCache

	bindMu    sync.Mutex
	bindEpoch uint64
	bindGen   uint64
	binding   *table.Catalog
}

// New returns an executor over the given backends. epochFn versions
// the underlying data: cached physical plans and binding catalogs are
// reused only while it is unchanged. A nil epochFn pins epoch 0
// (static data).
func New(epochFn func() uint64, opts Options, backends ...Backend) *Executor {
	if epochFn == nil {
		epochFn = func() uint64 { return 0 }
	}
	if opts.PlanCacheSize <= 0 {
		opts.PlanCacheSize = 256
	}
	e := &Executor{opts: opts, epochFn: epochFn, plans: newPlanCache(opts.PlanCacheSize)}
	for _, b := range backends {
		e.Register(b)
	}
	return e
}

// Register adds a backend (replacing any with the same name) and
// flushes plan and binding caches, since routing decisions may change.
// The registry generation bump also invalidates any plan an in-flight
// Execute computed against the old registry but has not cached yet.
func (e *Executor) Register(b Backend) {
	e.mu.Lock()
	kept := e.backends[:0]
	for _, x := range e.backends {
		if x.Name() != b.Name() {
			kept = append(kept, x)
		}
	}
	e.backends = append(kept, b)
	sort.Slice(e.backends, func(i, j int) bool { return e.backends[i].Name() < e.backends[j].Name() })
	e.regGen++
	e.mu.Unlock()

	e.plans.flush()
	e.bindMu.Lock()
	e.binding = nil
	e.bindMu.Unlock()
}

// generation returns the registry version; plans and binding catalogs
// are valid only for the generation they were computed at.
func (e *Executor) generation() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.regGen
}

// Backends lists registered backend names, sorted.
func (e *Executor) Backends() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.backends))
	for i, b := range e.backends {
		out[i] = b.Name()
	}
	return out
}

func (e *Executor) backend(name string) Backend {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, b := range e.backends {
		if b.Name() == name {
			return b
		}
	}
	return nil
}

// PlanCacheStats reports physical-plan cache hits, misses and size.
func (e *Executor) PlanCacheStats() (hits, misses int64, size int) {
	return e.plans.stats()
}

// BindingCatalog returns a catalog spanning every backend's tables —
// the schema surface semantic-operator binding sees when the primary
// catalog cannot answer a query. Materialized once per epoch; when two
// backends serve the same table name, the first in name order wins.
func (e *Executor) BindingCatalog() *table.Catalog {
	epoch := e.epochFn()
	gen := e.generation()
	e.bindMu.Lock()
	defer e.bindMu.Unlock()
	if e.binding != nil && e.bindEpoch == epoch && e.bindGen == gen {
		return e.binding
	}
	c := table.NewCatalog()
	e.mu.RLock()
	backends := append([]Backend(nil), e.backends...)
	e.mu.RUnlock()
	for _, b := range backends {
		for _, name := range b.Tables() {
			if _, err := c.Get(name); err == nil {
				continue
			}
			res, err := b.Scan(Fragment{Backend: b.Name(), Table: name})
			if err != nil {
				continue
			}
			c.Put(res.Table)
		}
	}
	e.binding, e.bindEpoch, e.bindGen = c, epoch, gen
	return c
}

// PhysicalPlan is a logical plan lowered onto backends: one fragment
// per base table plus the operations left for the federation layer.
// Physical plans are immutable once planned and cached by
// (fingerprint, epoch); per-run row counts live in Run, not here.
type PhysicalPlan struct {
	Logical *semop.Plan
	Main    Fragment
	Join    *Fragment    // nil when the plan has no join
	JoinRes []table.Pred // join-side predicates the backend could not absorb

	// PostFilters are main-side predicates evaluated in the federation
	// layer: the non-pushable residue, or — for join plans — every
	// main-side filter, preserving the unfederated operator order
	// (join, then filter) so row order and results stay identical.
	PostFilters []table.Pred
	AggPushed   bool // aggregation absorbed by the main fragment's backend

	Epoch uint64
	gen   uint64 // registry generation the routing was decided at
	key   string
}

// fingerprint serializes every field of the logical plan that affects
// lowering, so equal plans share one cache slot and different plans
// never collide in practice. This runs on every Execute (cache lookups
// are keyed by it), so it avoids fmt and keeps allocations to the one
// output string.
func fingerprint(p *semop.Plan) string {
	var b strings.Builder
	b.Grow(160)
	sep := func() { b.WriteByte('\x1f') }
	str := func(s string) { b.WriteString(s); sep() }
	num := func(n int) { b.WriteString(strconv.Itoa(n)); sep() }
	pred := func(f table.Pred) {
		b.WriteString(f.Col)
		b.WriteByte('\x1e')
		num(int(f.Op))
		b.WriteString(f.Val.Key())
		sep()
	}
	str(p.Table)
	str(p.MetricCol)
	for _, f := range p.Filters {
		pred(f)
	}
	sep()
	for _, g := range p.GroupBy {
		str(g)
	}
	sep()
	for _, a := range p.Aggs {
		num(int(a.Func))
		str(a.Col)
		str(a.As)
	}
	sep()
	for _, k := range p.OrderBy {
		str(k.Col)
		if k.Desc {
			b.WriteByte('-')
		}
	}
	sep()
	num(p.LimitRows)
	for _, c := range p.Columns {
		str(c)
	}
	sep()
	for _, c := range p.Comparison {
		str(c)
	}
	sep()
	str(p.CompareCol)
	str(p.JoinTable)
	str(p.JoinLeftCol)
	str(p.JoinRightCol)
	for _, f := range p.JoinFilters {
		pred(f)
	}
	return b.String()
}

// splitPush partitions preds into the subset backend b absorbs and the
// residue the federation layer must evaluate.
func splitPush(b Backend, tbl string, preds []table.Pred) (push, rest []table.Pred) {
	if !b.Caps().Has(CapFilter) {
		return nil, preds
	}
	for _, p := range preds {
		if b.CanPush(tbl, p) {
			push = append(push, p)
		} else {
			rest = append(rest, p)
		}
	}
	return push, rest
}

// route picks the cheapest backend serving tbl, offering preds for
// pushdown. Ties resolve to the first backend in name order.
func (e *Executor) route(tbl string, preds []table.Pred) (Fragment, []table.Pred, error) {
	e.mu.RLock()
	backends := append([]Backend(nil), e.backends...)
	e.mu.RUnlock()

	var (
		best     Backend
		bestPush []table.Pred
		bestRest []table.Pred
		bestEst  Estimate
	)
	for _, b := range backends {
		push, rest := splitPush(b, tbl, preds)
		est, ok := b.Estimate(tbl, push)
		if !ok {
			continue
		}
		// Residual predicates cost the federation layer one evaluation
		// per returned row; fold that into the comparable cost.
		cost := est.Cost + float64(est.Out)*0.25*float64(len(rest))
		if best == nil || cost < bestEst.Cost {
			best, bestPush, bestRest, bestEst = b, push, rest, est
			bestEst.Cost = cost
		}
	}
	if best == nil {
		return Fragment{}, nil, fmt.Errorf("%w: %s", ErrNoBackend, tbl)
	}
	return Fragment{Backend: best.Name(), Table: tbl, Preds: bestPush, Est: bestEst}, bestRest, nil
}

// plan lowers the logical plan, consulting the epoch-keyed cache. key
// is the plan's fingerprint (computed by the caller so prepared plans
// amortize it).
func (e *Executor) plan(p *semop.Plan, key string) (*PhysicalPlan, bool, error) {
	epoch := e.epochFn()
	// Snapshot the registry generation before routing: if a Register
	// lands mid-plan, the generation mismatch keeps the stale plan out
	// of the cache (put drops it) and out of future lookups.
	gen := e.generation()
	if pp := e.plans.get(key, epoch, gen); pp != nil {
		return pp, true, nil
	}

	pp := &PhysicalPlan{Logical: p, Epoch: epoch, gen: gen, key: key}

	// Main fragment. Join plans keep every main-side filter in the
	// federation layer so the operator order (join, then filter) — and
	// with it row order, float accumulation order, and first-row
	// lookups — matches the unfederated executor exactly.
	var offer []table.Pred
	if p.JoinTable == "" {
		offer = p.Filters
	}
	main, rest, err := e.route(p.Table, offer)
	if err != nil {
		return nil, false, err
	}
	pp.Main = main
	pp.PostFilters = rest
	if p.JoinTable != "" {
		pp.PostFilters = p.Filters
	}

	// Aggregate pushdown: single-fragment plans whose filters were all
	// absorbed can evaluate the whole aggregate inside the backend.
	if p.JoinTable == "" && len(p.Comparison) == 0 && len(p.Aggs) > 0 && len(pp.PostFilters) == 0 {
		if b := e.backend(main.Backend); b != nil && b.Caps().Has(CapAggregate) {
			pp.Main.GroupBy = p.GroupBy
			pp.Main.Aggs = p.Aggs
			pp.AggPushed = true
		}
	}

	// Join fragment: predicates push down, and when they all did, the
	// key column projection does too — only join keys cross the wire.
	if p.JoinTable != "" {
		jf, jrest, err := e.route(p.JoinTable, p.JoinFilters)
		if err != nil {
			return nil, false, err
		}
		if len(jrest) == 0 {
			if b := e.backend(jf.Backend); b != nil && b.Caps().Has(CapProject) {
				jf.Columns = []string{p.JoinRightCol}
			}
		}
		pp.Join = &jf
		pp.JoinRes = jrest
	}

	e.plans.put(key, pp, e.generation())
	return pp, false, nil
}

// planCache is a bounded map of physical plans keyed by logical-plan
// fingerprint. Entries carry the epoch they were planned at; a stale
// hit is treated as a miss and overwritten, so an epoch bump (ingest,
// backend registration) invalidates everything without a sweep.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*PhysicalPlan
	hits    int64
	misses  int64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, entries: make(map[string]*PhysicalPlan, capacity)}
}

func (c *planCache) get(key string, epoch, gen uint64) *PhysicalPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	pp := c.entries[key]
	if pp == nil || pp.Epoch != epoch || pp.gen != gen {
		c.misses++
		return nil
	}
	c.hits++
	return pp
}

// put caches the plan unless the registry generation moved while it
// was being computed — a concurrent Register already flushed the
// cache, and re-inserting a plan routed against the old registry would
// undo that flush.
func (c *planCache) put(key string, pp *PhysicalPlan, gen uint64) {
	if pp.gen != gen {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		if _, ok := c.entries[key]; !ok {
			// Wholesale flush at capacity: plans are cheap to rebuild and
			// a deterministic full reset beats tracking recency.
			c.entries = make(map[string]*PhysicalPlan, c.cap)
		}
	}
	c.entries[key] = pp
}

func (c *planCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*PhysicalPlan, c.cap)
}

func (c *planCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
