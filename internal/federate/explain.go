package federate

import (
	"fmt"
	"strings"

	"repro/internal/logical"
)

// Explain renders the run as a deterministic logical → rules →
// physical report. Every number in it is reproducible for a fixed
// corpus and epoch at any worker count: estimates come from the cost
// model, actuals from deterministic scans, the rule trace from the
// fixed-order optimizer passes, and nothing scheduling-dependent
// (timings, cache hits) is included.
//
//	logical:  Scan(ratings[product,stars]) -> Join(...) -> Aggregate(group=[], AVG(stars))
//	rules:    prune(ratings -> product,stars)
//	stats:    scan[0] ratings est 96 act 96 q=1.00; scan[1] metric_changes est 12 act 12 q=1.00
//	physical:
//	  scan[0]: backend=memory table=ratings push=[] project=[product,stars] est: scan 96/96 out 96; actual: scan 96 out 96
//	  scan[1]: backend=memory table=metric_changes push=[change_pct > 15] project=[product] est: scan 12/48 out 12; actual: scan 12 out 12
//	  join: hash(product = product)
//	  post: Aggregate(group=[] AVG(stars))
//	  result: 1 rows
func Explain(run *Run) string {
	if run == nil || run.Plan == nil {
		return ""
	}
	pp := run.Plan
	var b strings.Builder
	fmt.Fprintf(&b, "logical:  %s\n", pp.Root.String())
	if len(pp.Trace) > 0 {
		fmt.Fprintf(&b, "rules:    %s\n", strings.Join(pp.Trace, "; "))
	} else {
		b.WriteString("rules:    none\n")
	}
	b.WriteString("stats:    ")
	for i, fr := range run.Fragments {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "scan[%d] %s est %d act %d q=%.2f",
			i, fr.Table, fr.Est.Out, fr.ActOut, QError(fr.Est.Out, fr.ActOut))
	}
	b.WriteByte('\n')
	if line := prunedLine(run); line != "" {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if len(pp.Rollups) > 0 {
		fmt.Fprintf(&b, "rollup:   %s\n", strings.Join(pp.Rollups, "; "))
	}
	if line := resilienceLine(run); line != "" {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	exec := "row"
	if run.Plan.VecResidual {
		exec = "vectorized"
	}
	fmt.Fprintf(&b, "exec:     %s\n", exec)
	b.WriteString("physical:\n")
	for i, fr := range run.Fragments {
		fmt.Fprintf(&b, "  scan[%d]: backend=%s table=%s push=%s",
			i, fr.Backend, fr.Table, predsString(fr.Preds))
		if len(fr.Columns) > 0 {
			fmt.Fprintf(&b, " project=[%s]", strings.Join(fr.Columns, ","))
		}
		if len(fr.Aggs) > 0 {
			fmt.Fprintf(&b, " agg=(%s)", aggsString(fr.GroupBy, fr.Aggs))
		}
		fmt.Fprintf(&b, " est: scan %d/%d out %d; actual: scan %d out %d\n",
			fr.Est.Scanned, fr.Est.Total, fr.Est.Out, fr.ActScanned, fr.ActOut)
	}
	if join := findJoin(pp.Residual); join != nil {
		fmt.Fprintf(&b, "  join: hash(%s = %s)", join.LeftCol, join.RightCol)
		if len(pp.JoinRes) > 0 {
			fmt.Fprintf(&b, " residual=%s", predsString(pp.JoinRes))
		}
		b.WriteByte('\n')
	}
	if post := postOps(pp.Residual); len(post) > 0 {
		fmt.Fprintf(&b, "  post: %s\n", strings.Join(post, " -> "))
	}
	fmt.Fprintf(&b, "  result: %d rows", run.RowsOut)
	return b.String()
}

// prunedLine renders the zone-map pruning decisions: per scan, how
// many of the table's fragments the pushed conjunction provably
// refuted. Pruning is decided at plan time from the epoch's zone maps,
// so the line is deterministic at any worker count. Scans routed to
// backends without zone maps are omitted; the line disappears entirely
// when no scan had zone maps to consult.
func prunedLine(run *Run) string {
	var b strings.Builder
	for i, fr := range run.Fragments {
		if fr.ZoneTotal == 0 {
			continue
		}
		if b.Len() == 0 {
			b.WriteString("pruned:   ")
		} else {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "scan[%d] %d/%d fragments", i, fr.ZonePruned, fr.ZoneTotal)
	}
	return b.String()
}

// resilienceLine renders the run's resilience events — per-scan
// retries, breaker skips and failover targets, plus stale-registry
// re-plans — and returns "" for the fault-free run, so every EXPLAIN
// golden recorded before fault injection existed stays byte-identical.
// Under seeded fault injection the counts are a pure function of the
// fault schedule, making the line golden-stable like every other.
func resilienceLine(run *Run) string {
	var b strings.Builder
	item := func() {
		if b.Len() == 0 {
			b.WriteString("resilience: ")
		} else {
			b.WriteString("; ")
		}
	}
	for i, fr := range run.Fragments {
		if fr.Retries == 0 && fr.FailedOver == "" && !fr.BreakerSkip {
			continue
		}
		item()
		fmt.Fprintf(&b, "scan[%d]", i)
		if fr.Retries > 0 {
			fmt.Fprintf(&b, " retries %d", fr.Retries)
		}
		if fr.BreakerSkip {
			b.WriteString(" breaker-skip")
		}
		if fr.FailedOver != "" {
			fmt.Fprintf(&b, " failover %s->%s", fr.Backend, fr.FailedOver)
		}
	}
	if run.Replans > 0 {
		item()
		fmt.Fprintf(&b, "replans %d", run.Replans)
	}
	return b.String()
}

// QError is the symmetric estimation-accuracy ratio max(e/a, a/e) of
// an estimated vs actual row count, both floored at one row so empty
// fragments compare finitely. 1.0 is a perfect estimate. It is the
// one definition behind EXPLAIN's stats line, the estimate-accuracy
// harness, and the benchguard-gated q_error_max metric.
func QError(est, act int) float64 {
	e, a := float64(max(est, 1)), float64(max(act, 1))
	if e > a {
		return e / a
	}
	return a / e
}

// findJoin locates the join of the residual tree (at most one in the
// plan shapes the compilers emit).
func findJoin(n *logical.Node) *logical.Node {
	if n == nil {
		return nil
	}
	if n.Op == logical.OpJoin {
		return n
	}
	for _, in := range n.In {
		if j := findJoin(in); j != nil {
			return j
		}
	}
	return nil
}

// postOps renders the federation-side operators above the join (or
// above the driving fragment when there is no join), bottom-up along
// the driving chain.
func postOps(n *logical.Node) []string {
	if n == nil || n.Op == logical.OpJoin || n.Op == logical.OpInput {
		return nil
	}
	ops := postOps(n.Child())
	switch n.Op {
	case logical.OpFilter:
		ops = append(ops, "Filter"+predsString(n.Preds))
	case logical.OpCompare:
		if len(n.Preds) > 0 {
			ops = append(ops, "Filter"+predsString(n.Preds))
		}
		items := append([]string(nil), n.Items...)
		ops = append(ops, fmt.Sprintf("Compare(%s in [%s] -> %s)",
			n.CompareCol, strings.Join(items, ","), aggsString([]string{n.CompareCol}, n.Aggs)))
	case logical.OpAggregate:
		ops = append(ops, fmt.Sprintf("Aggregate(%s)", aggsString(n.GroupBy, n.Aggs)))
	case logical.OpSort:
		cols := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			cols[i] = k.Col
			if k.Desc {
				cols[i] += " desc"
			}
		}
		ops = append(ops, fmt.Sprintf("Sort(%s)", strings.Join(cols, ",")))
	case logical.OpLimit:
		ops = append(ops, fmt.Sprintf("Limit(%d)", n.N))
	case logical.OpProject:
		ops = append(ops, fmt.Sprintf("Project(%s)", strings.Join(n.Proj, ",")))
	case logical.OpDistinct:
		ops = append(ops, "Distinct")
	}
	return ops
}
