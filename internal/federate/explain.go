package federate

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the run as a deterministic logical → physical
// report. Every number in it is reproducible for a fixed corpus and
// epoch at any worker count: estimates come from the cost model,
// actuals from deterministic scans, and nothing scheduling-dependent
// (timings, cache hits) is included.
//
//	logical:  Scan(ratings) -> Join(metric_changes on product=product) -> ...
//	physical:
//	  scan[0]: backend=memory table=ratings push=[] est: scan 96/96 out 96; actual: scan 96 out 96
//	  scan[1]: backend=memory table=metric_changes push=[change_pct > 15] project=[product] est: scan 12/48 out 12; actual: scan 12 out 12
//	  join: hash(product = product)
//	  post: Filter(quarter = Q4) -> Aggregate(group=[] AVG(stars))
//	  result: 1 rows
func Explain(run *Run) string {
	if run == nil || run.Plan == nil {
		return ""
	}
	pp := run.Plan
	p := pp.Logical
	var b strings.Builder
	fmt.Fprintf(&b, "logical:  %s\n", p.String())
	b.WriteString("physical:\n")
	for i, fr := range run.Fragments {
		fmt.Fprintf(&b, "  scan[%d]: backend=%s table=%s push=%s",
			i, fr.Backend, fr.Table, predsString(fr.Preds))
		if len(fr.Columns) > 0 {
			fmt.Fprintf(&b, " project=[%s]", strings.Join(fr.Columns, ","))
		}
		if len(fr.Aggs) > 0 {
			fmt.Fprintf(&b, " agg=(%s)", aggsString(fr.GroupBy, fr.Aggs))
		}
		fmt.Fprintf(&b, " est: scan %d/%d out %d; actual: scan %d out %d\n",
			fr.Est.Scanned, fr.Est.Total, fr.Est.Out, fr.ActScanned, fr.ActOut)
	}
	if pp.Join != nil {
		fmt.Fprintf(&b, "  join: hash(%s = %s)", p.JoinLeftCol, p.JoinRightCol)
		if len(pp.JoinRes) > 0 {
			fmt.Fprintf(&b, " residual=%s", predsString(pp.JoinRes))
		}
		b.WriteByte('\n')
	}
	var post []string
	if len(p.Comparison) > 0 && p.CompareCol != "" {
		items := append([]string(nil), p.Comparison...)
		sort.Strings(items)
		if len(pp.PostFilters) > 0 {
			post = append(post, fmt.Sprintf("Filter%s", predsString(pp.PostFilters)))
		}
		post = append(post, fmt.Sprintf("Compare(%s in [%s] -> %s)",
			p.CompareCol, strings.Join(items, ","), aggsString([]string{p.CompareCol}, p.Aggs)))
	} else {
		if len(pp.PostFilters) > 0 {
			post = append(post, fmt.Sprintf("Filter%s", predsString(pp.PostFilters)))
		}
		if len(p.Aggs) > 0 && !pp.AggPushed {
			post = append(post, fmt.Sprintf("Aggregate(%s)", aggsString(p.GroupBy, p.Aggs)))
		}
		if len(p.OrderBy) > 0 {
			post = append(post, fmt.Sprintf("Sort(%s)", p.OrderBy[0].Col))
		}
		if p.LimitRows > 0 {
			post = append(post, fmt.Sprintf("Limit(%d)", p.LimitRows))
		}
		if len(p.Columns) > 0 {
			post = append(post, fmt.Sprintf("Project(%s)", strings.Join(p.Columns, ",")))
		}
	}
	if len(post) > 0 {
		fmt.Fprintf(&b, "  post: %s\n", strings.Join(post, " -> "))
	}
	fmt.Fprintf(&b, "  result: %d rows", run.RowsOut)
	return b.String()
}
