package federate

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/semop"
	"repro/internal/table"
)

// resilienceTestPlans are the five physical-plan shapes the compilers
// emit, reused across the chaos tests.
func resilienceTestPlans() map[string]*semop.Plan {
	return map[string]*semop.Plan{
		"filtered aggregate": {
			Table: "sales", MetricCol: "units",
			Filters: []table.Pred{{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}},
			Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
		},
		"group by": {
			Table: "sales", MetricCol: "units",
			GroupBy: []string{"product"},
			Aggs:    []table.Agg{{Func: table.AggAvg, Col: "units", As: "result"}},
		},
		"join": {
			Table: "sales", MetricCol: "units",
			Filters:   []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q2")}},
			Aggs:      []table.Agg{{Func: table.AggAvg, Col: "units", As: "result"}},
			JoinTable: "metric_changes", JoinLeftCol: "product", JoinRightCol: "product",
			JoinFilters: []table.Pred{{Col: "change_pct", Op: table.OpGt, Val: table.F(15)}},
		},
		"compare": {
			Table: "sales", MetricCol: "units",
			Comparison: []string{"Alpha", "Beta"}, CompareCol: "product",
			GroupBy: []string{"product"},
			Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
		},
		"list": {
			Table: "sales", MetricCol: "units",
			Filters:   []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q3")}},
			LimitRows: 50,
		},
	}
}

// TestTransientFaultsRetryToParity injects seeded transient failures
// on both backends and asserts every plan still returns results
// bit-identical to the fault-free single-store execution — through
// retries, without a single real sleep.
func TestTransientFaultsRetryToParity(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c := testCatalog()
		clock := fault.NewFakeClock()
		counters := metrics.NewCounterSet()
		e := New(c.Epoch, Options{Workers: workers, Clock: clock, Counters: counters},
			NewChaos(NewMemory(c), ChaosOptions{Seed: 42, MaxTransient: 3, Latency: time.Millisecond, Clock: clock}),
			NewChaos(NewSQL(c), ChaosOptions{Seed: 43, MaxTransient: 3, Latency: time.Millisecond, Clock: clock}),
		)
		for name, p := range resilienceTestPlans() {
			got, run, err := e.Execute(p)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, name, err)
			}
			want, err := semop.Exec(p, c)
			if err != nil {
				t.Fatal(err)
			}
			if render(got) != render(want) {
				t.Errorf("workers=%d %s: chaos result diverges:\n%s\nvs\n%s",
					workers, name, render(got), render(want))
			}
			if run.RowsOut != want.Len() {
				t.Errorf("workers=%d %s: RowsOut = %d, want %d", workers, name, run.RowsOut, want.Len())
			}
		}
		if counters.Get("scan.retry") == 0 {
			t.Errorf("workers=%d: no retries recorded under seeded transient faults", workers)
		}
		if clock.Total() == 0 {
			t.Errorf("workers=%d: no backoff or latency recorded on the fake clock", workers)
		}
	}
}

// TestDownBackendFailsOver downs the memory backend entirely: every
// fragment planned onto it must fail over to the SQL backend with
// bit-identical results, and once the breaker opens the planner must
// route around the dead backend up front.
func TestDownBackendFailsOver(t *testing.T) {
	c := testCatalog()
	counters := metrics.NewCounterSet()
	e := New(c.Epoch, Options{Workers: 1, Counters: counters},
		NewChaos(NewMemory(c), ChaosOptions{Down: true}),
		NewSQL(c),
	)
	p := resilienceTestPlans()["filtered aggregate"]
	want, err := semop.Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}

	sawFailover, sawRerouted := false, false
	for q := 0; q < 6; q++ {
		got, run, err := e.Execute(p)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		if render(got) != render(want) {
			t.Fatalf("query %d: failover result diverges:\n%s\nvs\n%s", q, render(got), render(want))
		}
		fr := run.Fragments[0]
		switch {
		case fr.Backend == "memory" && fr.FailedOver == "sql":
			sawFailover = true
			if !strings.Contains(Explain(run), "resilience: scan[0] failover memory->sql") {
				t.Errorf("query %d: explain missing failover line:\n%s", q, Explain(run))
			}
		case fr.Backend == "sql" && fr.FailedOver == "":
			sawRerouted = true
		default:
			t.Errorf("query %d: unexpected routing backend=%s failedOver=%q", q, fr.Backend, fr.FailedOver)
		}
	}
	if !sawFailover {
		t.Error("no query served through scan-time failover")
	}
	if !sawRerouted {
		t.Error("breaker never re-routed planning away from the dead backend")
	}
	if counters.Get("scan.failover") == 0 || counters.Get("breaker.open") == 0 {
		t.Errorf("counters missing failover/breaker events: %s", counters)
	}
}

// TestFailoverCompensation forces failover of a fragment whose pushed
// predicate and aggregate the fallback backend cannot absorb: the
// federation layer must re-apply them (filter, then aggregate) so the
// result is still bit-identical.
func TestFailoverCompensation(t *testing.T) {
	c := testCatalog()
	e := New(c.Epoch, Options{Workers: 1},
		NewChaos(NewMemory(c), ChaosOptions{Down: true}),
		NewSQL(c),
	)
	// 1e6 renders as "1e+06", which the SQL dialect cannot lex: the
	// predicate pushes to memory but not to SQL.
	p := &semop.Plan{
		Table: "sales", MetricCol: "units",
		Filters: []table.Pred{{Col: "units", Op: table.OpLt, Val: table.F(1e6)}},
		Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
	}
	got, run, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := semop.Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(want) {
		t.Errorf("compensated failover diverges:\n%s\nvs\n%s", render(got), render(want))
	}
	fr := run.Fragments[0]
	if fr.FailedOver != "sql" {
		t.Fatalf("fragment not failed over to sql: %+v", fr)
	}
	if len(fr.Aggs) == 0 {
		t.Error("planned fragment should carry the pushed aggregate")
	}
}

// flakyBackend fails permanently while failing is set, to exercise
// breaker open/half-open/close transitions.
type flakyBackend struct {
	Backend
	name    string
	cost    float64
	failing atomic.Bool
}

func (f *flakyBackend) Name() string { return f.name }
func (f *flakyBackend) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	est, ok := f.Backend.Estimate(tbl, preds)
	est.Cost = f.cost
	return est, ok
}
func (f *flakyBackend) Scan(fr Fragment) (Result, error) {
	if f.failing.Load() {
		return Result{}, fault.Permanent(errors.New("flaky: store offline"))
	}
	return f.Backend.Scan(fr)
}

// TestBreakerOpensAndRecovers walks the full breaker state machine:
// consecutive failures open it, routing shifts to the healthy backend,
// the cooldown (counted in queries) half-opens it, and a successful
// probe closes it and restores the cheap routing.
func TestBreakerOpensAndRecovers(t *testing.T) {
	c := testCatalog()
	counters := metrics.NewCounterSet()
	flaky := &flakyBackend{Backend: NewMemory(c), name: "aflaky", cost: 1}
	flaky.failing.Store(true)
	e := New(c.Epoch, Options{
		Workers:  1,
		Breaker:  BreakerConfig{FailThreshold: 2, Cooldown: 3},
		Counters: counters,
	},
		flaky,
		costBackend{Backend: NewSQL(c), name: "healthy", cost: 1000},
	)
	p := resilienceTestPlans()["list"]
	exec := func(q int) FragmentRun {
		t.Helper()
		_, run, err := e.Execute(p)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		return run.Fragments[0]
	}

	// Queries 1-2: routed to the cheap flaky backend, served by
	// failover; the second failure crosses FailThreshold.
	for q := 1; q <= 2; q++ {
		fr := exec(q)
		if fr.Backend != "aflaky" || fr.FailedOver != "healthy" {
			t.Fatalf("query %d: backend=%s failedOver=%q, want aflaky->healthy", q, fr.Backend, fr.FailedOver)
		}
	}
	if counters.Get("breaker.open") != 1 {
		t.Fatalf("breaker.open = %d after threshold failures, want 1", counters.Get("breaker.open"))
	}

	// Queries 3-4: breaker open — planning routes straight to healthy.
	flaky.failing.Store(false) // backend recovers, breaker still open
	for q := 3; q <= 4; q++ {
		if fr := exec(q); fr.Backend != "healthy" || fr.FailedOver != "" {
			t.Fatalf("query %d: backend=%s failedOver=%q, want direct healthy routing", q, fr.Backend, fr.FailedOver)
		}
	}

	// Query 5: cooldown (3 queries since opening) expired — half-open;
	// the probe succeeds and closes the breaker, restoring the cheap
	// route.
	if fr := exec(5); fr.Backend != "aflaky" || fr.FailedOver != "" {
		t.Fatalf("query 5: backend=%s failedOver=%q, want recovered aflaky", fr.Backend, fr.FailedOver)
	}
	if counters.Get("breaker.close") != 1 {
		t.Errorf("breaker.close = %d, want 1", counters.Get("breaker.close"))
	}
}

// TestBreakerHalfOpenProbeFailureReopens pins the half-open → open
// edge: a failed probe re-opens the breaker for a fresh cooldown.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	h := newHealthTracker()
	cfg := BreakerConfig{FailThreshold: 1, Cooldown: 2}
	if h.reportFailure("b", cfg.FailThreshold) != true {
		t.Fatal("first failure at threshold 1 must open")
	}
	if !h.isOpen("b") {
		t.Fatal("breaker not open")
	}
	v := h.version()
	h.tick(cfg)
	h.tick(cfg) // cooldown expires: half-open
	if h.isOpen("b") {
		t.Fatal("breaker still open after cooldown, want half-open")
	}
	if h.version() == v {
		t.Error("half-open transition must bump the routing version")
	}
	if h.reportFailure("b", cfg.FailThreshold) != true {
		t.Error("failed half-open probe must re-open")
	}
	if !h.isOpen("b") {
		t.Error("breaker not re-opened after failed probe")
	}
	if h.reportSuccess("b") != true {
		t.Error("success on a non-closed breaker must close it")
	}
	if h.isOpen("b") {
		t.Error("breaker open after success")
	}
}

// TestBreakerSkipWithFailover pins scan-time breaker avoidance: a
// fragment planned onto a backend whose breaker opened mid-query skips
// it and fails over without ever touching the sick backend.
func TestBreakerSkipWithFailover(t *testing.T) {
	c := testCatalog()
	counters := metrics.NewCounterSet()
	e := New(c.Epoch, Options{Workers: 1, Counters: counters}, NewMemory(c), NewSQL(c))
	// Open memory's breaker directly, simulating a transition after the
	// fragment was planned. Sync to the live registry generation first,
	// or the tracker forgives the manual state on its next sync.
	e.health.sync(e.generation())
	e.health.reportFailure("memory", 1)
	var fr FragmentRun
	fr.Fragment = Fragment{Backend: "memory", Table: "sales"}
	res, err := e.scanFragment(context.Background(), fr.Fragment, &fr)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.BreakerSkip || fr.FailedOver != "sql" {
		t.Errorf("breakerSkip=%v failedOver=%q, want skip to sql", fr.BreakerSkip, fr.FailedOver)
	}
	if res.Table.Len() != 48 {
		t.Errorf("failover scan returned %d rows, want 48", res.Table.Len())
	}
	if counters.Get("scan.breaker_skip") != 1 {
		t.Errorf("scan.breaker_skip = %d, want 1", counters.Get("scan.breaker_skip"))
	}
}

// TestOpenBreakerSoleProviderForcesProbe: when the open-breaker
// backend is the only one serving the table, the scan proceeds as a
// forced probe instead of failing the query.
func TestOpenBreakerSoleProviderForcesProbe(t *testing.T) {
	c := testCatalog()
	counters := metrics.NewCounterSet()
	e := New(c.Epoch, Options{Workers: 1, Counters: counters}, NewMemory(c))
	e.health.sync(e.generation())
	e.health.reportFailure("memory", 1)
	got, run, err := e.Execute(resilienceTestPlans()["list"])
	if err != nil {
		t.Fatalf("sole-provider query failed with open breaker: %v", err)
	}
	if got.Len() == 0 {
		t.Error("probe returned no rows")
	}
	if run.Fragments[0].BreakerSkip {
		t.Error("sole provider must not be skipped")
	}
	if counters.Get("breaker.close") != 1 {
		t.Errorf("successful forced probe should close the breaker: %s", counters)
	}
}

// TestQueryDeadlineCancelsHangingScan: a hung backend scan is bounded
// by the executor timeout and surfaces DeadlineExceeded.
func TestQueryDeadlineCancelsHangingScan(t *testing.T) {
	c := testCatalog()
	e := New(c.Epoch, Options{Workers: 1, Timeout: 30 * time.Millisecond},
		NewChaos(NewMemory(c), ChaosOptions{Hang: true}),
	)
	start := time.Now()
	_, _, err := e.Execute(resilienceTestPlans()["list"])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

// TestSiblingCancellationOnPermanentError: in a join, a fragment whose
// table is down on every backend fails permanently and must cancel the
// sibling fragment hung on another backend — the query returns the
// real error, deterministically, instead of deadlocking.
func TestSiblingCancellationOnPermanentError(t *testing.T) {
	c := testCatalog()
	e := New(c.Epoch, Options{Workers: 2},
		NewChaos(
			NewChaos(NewMemory(c), ChaosOptions{Hang: true, Tables: []string{"sales"}}),
			ChaosOptions{Down: true, Tables: []string{"metric_changes"}},
		),
		NewChaos(NewSQL(c), ChaosOptions{Down: true, Tables: []string{"metric_changes"}}),
	)
	done := make(chan error, 1)
	go func() {
		_, _, err := e.Execute(resilienceTestPlans()["join"])
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("query succeeded with a table down on every backend")
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("surfaced the schedule-dependent cancellation, want the real error: %v", err)
		}
		if !strings.Contains(err.Error(), "metric_changes") {
			t.Errorf("err = %v, want the metric_changes failure", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sibling cancellation never fired: hung scan leaked")
	}
}

// TestDeterministicErrorSelection: when several fragments fail, the
// lowest-index real error wins at any worker count.
func TestDeterministicErrorSelection(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		c := testCatalog()
		e := New(c.Epoch, Options{Workers: workers},
			NewChaos(NewMemory(c), ChaosOptions{Down: true}),
			NewChaos(NewSQL(c), ChaosOptions{Down: true}),
		)
		_, _, err := e.Execute(resilienceTestPlans()["join"])
		if err == nil {
			t.Fatalf("workers=%d: query succeeded with every backend down", workers)
		}
		if !strings.Contains(err.Error(), "(scan sales)") {
			t.Errorf("workers=%d: err = %v, want the driving fragment's (index 0) sales error", workers, err)
		}
	}
}

// unregisterOnEstimate unregisters itself from the executor on the
// first Estimate call, simulating a backend vanishing between routing
// and execution.
type unregisterOnEstimate struct {
	Backend
	name string
	e    *Executor
	once atomic.Bool
}

func (u *unregisterOnEstimate) Name() string { return u.name }
func (u *unregisterOnEstimate) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	est, ok := u.Backend.Estimate(tbl, preds)
	est.Cost = 0.5 // cheapest: routing will pick it
	if u.once.CompareAndSwap(false, true) {
		u.e.Unregister(u.name)
	}
	return est, ok
}

// TestStaleRegistryReplans: a plan routed to a backend that vanished
// before execution re-plans against the live registry instead of
// failing, and the run records the replan.
func TestStaleRegistryReplans(t *testing.T) {
	c := testCatalog()
	counters := metrics.NewCounterSet()
	e := New(c.Epoch, Options{Workers: 1, Counters: counters}, NewMemory(c))
	u := &unregisterOnEstimate{Backend: NewMemory(c), name: "vanishing", e: e}
	e.Register(u)

	p := resilienceTestPlans()["list"]
	got, run, err := e.Execute(p)
	if err != nil {
		t.Fatalf("stale-registry execute: %v", err)
	}
	want, err := semop.Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(want) {
		t.Errorf("replanned result diverges:\n%s\nvs\n%s", render(got), render(want))
	}
	if run.Replans != 1 {
		t.Errorf("run.Replans = %d, want 1", run.Replans)
	}
	if run.Fragments[0].Backend != "memory" {
		t.Errorf("replanned fragment backend = %s, want memory", run.Fragments[0].Backend)
	}
	if counters.Get("plan.replan") != 1 {
		t.Errorf("plan.replan = %d, want 1", counters.Get("plan.replan"))
	}
	if !strings.Contains(Explain(run), "resilience: replans 1") {
		t.Errorf("explain missing replans line:\n%s", Explain(run))
	}
}

// TestUnregisterRemovesBackend pins the registry-removal surface.
func TestUnregisterRemovesBackend(t *testing.T) {
	c := testCatalog()
	e := newTestExecutor(c, 1)
	if !e.Unregister("sql") {
		t.Fatal("Unregister(sql) = false, want true")
	}
	if e.Unregister("sql") {
		t.Error("second Unregister(sql) = true, want false")
	}
	if got := e.Backends(); len(got) != 1 || got[0] != "memory" {
		t.Errorf("Backends() = %v, want [memory]", got)
	}
	// Queries keep working against the remaining backend.
	if _, _, err := e.Execute(resilienceTestPlans()["list"]); err != nil {
		t.Fatal(err)
	}
}

// TestRowSlicedFailoverRequiresRangeBackend: an explicit ROWS slice is
// semantic, so failover re-derives it on the fallback backend's zone
// maps rather than dropping it.
func TestRowSlicedFailoverPreservesSlice(t *testing.T) {
	c := testCatalog()
	tbl, _ := c.Get("sales")
	want := render(mustSlice(t, tbl, 4, 9))

	e := New(c.Epoch, Options{Workers: 1},
		NewChaos(NewMemory(c), ChaosOptions{Down: true}),
		NewSQL(c),
	)
	var fr FragmentRun
	f := Fragment{Backend: "memory", Table: "sales", SliceStart: 4, SliceEnd: 9,
		Ranges: []table.RowRange{{Start: 4, End: 9}}}
	fr.Fragment = f
	res, err := e.scanFragment(context.Background(), f, &fr)
	if err != nil {
		t.Fatal(err)
	}
	if fr.FailedOver != "sql" {
		t.Fatalf("failedOver = %q, want sql", fr.FailedOver)
	}
	if render(res.Table) != want {
		t.Errorf("sliced failover rows diverge:\n%s\nvs\n%s", render(res.Table), want)
	}
}

func mustSlice(t *testing.T, tbl *table.Table, start, end int) *table.Table {
	t.Helper()
	out := table.New(tbl.Name, tbl.Schema)
	out.Rows = append(out.Rows, tbl.Rows[start:end]...)
	return out
}

// TestChaosScheduleDeterministic: the injected fault schedule is a
// pure function of (seed, identity) — two wrappers with the same seed
// inject identical faults, a different seed diverges somewhere.
func TestChaosScheduleDeterministic(t *testing.T) {
	budgets := func(seed uint64) []int {
		c := testCatalog()
		ch := NewChaos(NewMemory(c), ChaosOptions{Seed: seed, MaxTransient: 5})
		var out []int
		for _, f := range []Fragment{
			{Table: "sales"},
			{Table: "sales", Preds: []table.Pred{{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}}},
			{Table: "metric_changes", Columns: []string{"product"}},
		} {
			n := 0
			for {
				_, err := ch.Scan(f)
				if err == nil {
					break
				}
				if !fault.IsTransient(err) {
					t.Fatalf("injected error not transient: %v", err)
				}
				n++
			}
			out = append(out, n)
		}
		return out
	}
	a, b := budgets(7), budgets(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules: %v vs %v", a, b)
		}
	}
	c1, c2 := budgets(7), budgets(8)
	same := true
	for i := range c1 {
		if c1[i] != c2[i] {
			same = false
		}
	}
	if same {
		t.Errorf("seeds 7 and 8 injected identical schedules %v — seed not mixed in", c1)
	}
}
