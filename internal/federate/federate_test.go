package federate

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/semop"
	"repro/internal/table"
)

// testCatalog builds a two-table catalog with enough rows that index
// scans are distinguishable from full scans.
func testCatalog() *table.Catalog {
	c := table.NewCatalog()
	sales := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "quarter", Type: table.TypeString},
		{Name: "units", Type: table.TypeInt},
	})
	products := []string{"Alpha", "Beta", "Gamma", "Delta"}
	for i := 0; i < 48; i++ {
		sales.MustAppend([]table.Value{
			table.S(products[i%len(products)]),
			table.S(fmt.Sprintf("Q%d", i%4+1)),
			table.I(int64(10 + i)),
		})
	}
	c.Put(sales)
	changes := table.New("metric_changes", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "change_pct", Type: table.TypeFloat},
	})
	for i := 0; i < 16; i++ {
		changes.MustAppend([]table.Value{
			table.S(products[i%len(products)]),
			table.F(float64(i*5 - 20)),
		})
	}
	c.Put(changes)
	return c
}

// render flattens a table to a comparable string (schema + all rows).
func render(t *table.Table) string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), ","))
	for _, row := range t.Rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(table.FormatValue(v))
		}
	}
	return b.String()
}

func newTestExecutor(c *table.Catalog, workers int) *Executor {
	return New(c.Epoch, Options{Workers: workers}, NewMemory(c), NewSQL(c))
}

func TestMemoryIndexScanMatchesFilter(t *testing.T) {
	c := testCatalog()
	m := NewMemory(c)
	tbl, _ := c.Get("sales")
	preds := []table.Pred{
		{Col: "product", Op: table.OpEq, Val: table.S("Beta")},
		{Col: "units", Op: table.OpGt, Val: table.I(20)},
	}
	res, err := m.Scan(Fragment{Table: "sales", Preds: preds})
	if err != nil {
		t.Fatal(err)
	}
	want, err := table.Filter(tbl, preds...)
	if err != nil {
		t.Fatal(err)
	}
	if render(res.Table) != render(want) {
		t.Errorf("index scan diverges from filter:\n%s\nvs\n%s", render(res.Table), render(want))
	}
	if res.Scanned >= tbl.Len() {
		t.Errorf("scanned %d rows, want fewer than %d (index not used)", res.Scanned, tbl.Len())
	}
	if res.Scanned != 12 { // 48 rows / 4 products
		t.Errorf("scanned = %d, want the 12-row Beta bucket", res.Scanned)
	}
}

func TestMemoryIndexInvalidatesOnEpoch(t *testing.T) {
	c := testCatalog()
	m := NewMemory(c)
	pred := []table.Pred{{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}}
	res, err := m.Scan(Fragment{Table: "sales", Preds: pred})
	if err != nil {
		t.Fatal(err)
	}
	before := res.Table.Len()

	tbl, _ := c.Get("sales")
	tbl.MustAppend([]table.Value{table.S("Alpha"), table.S("Q1"), table.I(99)})
	c.Put(tbl) // epoch bump: index must rebuild

	res, err = m.Scan(Fragment{Table: "sales", Preds: pred})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != before+1 {
		t.Errorf("post-mutation rows = %d, want %d (stale index)", res.Table.Len(), before+1)
	}
}

func TestExecuteMatchesSemopExec(t *testing.T) {
	c := testCatalog()
	e := newTestExecutor(c, 0)
	plans := map[string]*semop.Plan{
		"filtered aggregate": {
			Table: "sales", MetricCol: "units",
			Filters: []table.Pred{{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}},
			Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
		},
		"group by": {
			Table: "sales", MetricCol: "units",
			GroupBy: []string{"product"},
			Aggs:    []table.Agg{{Func: table.AggAvg, Col: "units", As: "result"}},
		},
		"join": {
			Table: "sales", MetricCol: "units",
			Filters:   []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q2")}},
			Aggs:      []table.Agg{{Func: table.AggAvg, Col: "units", As: "result"}},
			JoinTable: "metric_changes", JoinLeftCol: "product", JoinRightCol: "product",
			JoinFilters: []table.Pred{{Col: "change_pct", Op: table.OpGt, Val: table.F(15)}},
		},
		"compare": {
			Table: "sales", MetricCol: "units",
			Comparison: []string{"Alpha", "Beta"}, CompareCol: "product",
			GroupBy: []string{"product"},
			Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
		},
		"list": {
			Table: "sales", MetricCol: "units",
			Filters:   []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q3")}},
			LimitRows: 50,
		},
	}
	for name, p := range plans {
		got, run, err := e.Execute(p)
		if err != nil {
			t.Fatalf("%s: execute: %v", name, err)
		}
		want, err := semop.Exec(p, c)
		if err != nil {
			t.Fatalf("%s: semop exec: %v", name, err)
		}
		if render(got) != render(want) {
			t.Errorf("%s: federated result diverges:\n%s\nvs\n%s", name, render(got), render(want))
		}
		if run.RowsOut != got.Len() {
			t.Errorf("%s: run.RowsOut = %d, want %d", name, run.RowsOut, got.Len())
		}
	}
}

func TestAggregatePushdownScansBucketOnly(t *testing.T) {
	c := testCatalog()
	e := newTestExecutor(c, 1)
	p := &semop.Plan{
		Table: "sales", MetricCol: "units",
		Filters: []table.Pred{{Col: "product", Op: table.OpEq, Val: table.S("Gamma")}},
		Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
	}
	_, run, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	fr := run.Fragments[0]
	if fr.Backend != "memory" {
		t.Errorf("backend = %s, want memory (cheapest)", fr.Backend)
	}
	if len(fr.Aggs) == 0 || !run.Plan.AggPushed {
		t.Error("aggregate was not pushed down")
	}
	if fr.ActScanned != 12 {
		t.Errorf("scanned %d rows, want the 12-row Gamma bucket", fr.ActScanned)
	}
	if fr.Est.Scanned != fr.ActScanned {
		t.Errorf("est scan %d != actual %d (index estimate should be exact)", fr.Est.Scanned, fr.ActScanned)
	}
}

// costBackend wraps another backend under a new name with a fixed
// planner cost, to steer routing in tests.
type costBackend struct {
	Backend
	name string
	cost float64
}

func (cb costBackend) Name() string { return cb.name }
func (cb costBackend) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	est, ok := cb.Backend.Estimate(tbl, preds)
	est.Cost = cb.cost
	return est, ok
}

func TestPlannerRoutesToCheapestBackend(t *testing.T) {
	c := testCatalog()
	e := New(c.Epoch, Options{},
		costBackend{Backend: NewMemory(c), name: "pricey", cost: 1e6},
		costBackend{Backend: NewSQL(c), name: "bargain", cost: 1},
	)
	p := &semop.Plan{Table: "sales", MetricCol: "units", LimitRows: 10}
	_, run, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Fragments[0].Backend; got != "bargain" {
		t.Errorf("planner chose %s, want bargain", got)
	}

	// Re-registering the expensive backend as cheap must flush cached
	// plans and flip the routing.
	e.Register(costBackend{Backend: NewMemory(c), name: "pricey", cost: 0.5})
	_, run, err = e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := run.Fragments[0].Backend; got != "pricey" {
		t.Errorf("after re-registration planner chose %s, want pricey", got)
	}
}

func TestPlanCacheHitsAndEpochInvalidation(t *testing.T) {
	c := testCatalog()
	e := newTestExecutor(c, 1)
	p := &semop.Plan{
		Table: "sales", MetricCol: "units",
		Filters: []table.Pred{{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}},
		Aggs:    []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
	}
	if _, _, err := e.Execute(p); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Execute(p); err != nil {
		t.Fatal(err)
	}
	hits, misses, size := e.PlanCacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("cache stats = %d hits %d misses %d entries, want 1/1/1", hits, misses, size)
	}

	tbl, _ := c.Get("sales")
	c.Put(tbl) // epoch bump invalidates the cached physical plan
	if _, _, err := e.Execute(p); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ = e.PlanCacheStats()
	if hits != 1 || misses != 2 {
		t.Errorf("post-epoch stats = %d hits %d misses, want 1 hit 2 misses", hits, misses)
	}
}

func TestSQLBackendParityWithMemory(t *testing.T) {
	c := testCatalog()
	s := NewSQL(c)
	m := NewMemory(c)
	frags := []Fragment{
		{Table: "sales", Preds: []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")}}},
		{Table: "sales",
			Preds:   []table.Pred{{Col: "units", Op: table.OpGe, Val: table.I(30)}},
			GroupBy: []string{"product"},
			Aggs:    []table.Agg{{Func: table.AggAvg, Col: "units", As: "result"}}},
		{Table: "metric_changes", Columns: []string{"product"}},
	}
	for i, f := range frags {
		sr, err := s.Scan(f)
		if err != nil {
			t.Fatalf("frag %d: sql scan: %v (stmt %q)", i, err, s.Render(f))
		}
		mr, err := m.Scan(f)
		if err != nil {
			t.Fatalf("frag %d: memory scan: %v", i, err)
		}
		if render(sr.Table) != render(mr.Table) {
			t.Errorf("frag %d: sql and memory disagree:\n%s\nvs\n%s", i, render(sr.Table), render(mr.Table))
		}
	}
}

func TestSQLCanPushRejectsUnlexableLiterals(t *testing.T) {
	s := NewSQL(testCatalog())
	reject := []table.Pred{
		{Col: "units", Op: table.OpGt, Val: table.F(1e6)},    // renders "1e+06"
		{Col: "units", Op: table.OpGt, Val: table.F(2.5e-7)}, // exponent form
		{Col: "bad col", Op: table.OpEq, Val: table.I(1)},    // non-identifier column
		{Col: "product", Op: table.OpEq, Val: table.S("a\nb")},
		{Col: "units", Op: table.OpEq, Val: table.Null(table.TypeInt)},
	}
	for _, p := range reject {
		if s.CanPush("sales", p) {
			t.Errorf("CanPush accepted unlexable predicate %v", p)
		}
	}
	accept := []table.Pred{
		{Col: "units", Op: table.OpGt, Val: table.F(15.5)},
		{Col: "units", Op: table.OpLt, Val: table.F(-3)},
		{Col: "product", Op: table.OpContains, Val: table.S("Al'pha")},
	}
	for _, p := range accept {
		if !s.CanPush("sales", p) {
			t.Errorf("CanPush rejected lexable predicate %v", p)
		}
	}
	// The planner must fall back to federation-side filtering, not fail.
	e := New(nil, Options{}, NewSQL(testCatalog()))
	p := &semop.Plan{
		Table: "sales", MetricCol: "units",
		Filters:   []table.Pred{{Col: "units", Op: table.OpLt, Val: table.F(1e6)}},
		LimitRows: 50,
	}
	res, run, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 48 {
		t.Errorf("rows = %d, want all 48 under the huge threshold", res.Len())
	}
	if len(run.Fragments[0].Preds) != 0 || len(run.Plan.PostFilters) != 1 {
		t.Errorf("unpushable predicate not kept federation-side: push=%v post=%v",
			run.Fragments[0].Preds, run.Plan.PostFilters)
	}
}

func TestGraphEvidenceBackend(t *testing.T) {
	g := graph.New()
	for i, name := range []string{"Drug A", "Drug B", "nausea"} {
		id := fmt.Sprintf("entity:%d", i)
		if err := g.AddNode(graph.Node{ID: id, Type: graph.NodeEntity, Label: name,
			Attrs: map[string]string{"etype": "drug"}}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := uint64(1)
	ge := NewGraphEvidence(g, func() uint64 { return epoch })
	e := New(func() uint64 { return epoch }, Options{}, ge)

	p := &semop.Plan{
		Table: GraphEntitiesTable, MetricCol: "degree",
		Filters: []table.Pred{{Col: "etype", Op: table.OpEq, Val: table.S("drug")}},
		Aggs:    []table.Agg{{Func: table.AggCount, Col: "", As: "result"}},
	}
	res, run, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || table.FormatValue(res.Rows[0][0]) != "3" {
		t.Errorf("count over graph_entities = %s, want 3", render(res))
	}
	// The graph backend is scan+filter only: the planner must keep the
	// aggregate in the federation layer.
	if run.Plan.AggPushed {
		t.Error("aggregate pushed to a CapFilter-only backend")
	}
	if len(run.Fragments[0].Preds) == 0 {
		t.Error("filter was not pushed down to the graph backend")
	}

	// Epoch move re-materializes the views.
	if err := g.AddNode(graph.Node{ID: "entity:3", Type: graph.NodeEntity, Label: "Drug C",
		Attrs: map[string]string{"etype": "drug"}}); err != nil {
		t.Fatal(err)
	}
	epoch++
	res, _, err = e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if table.FormatValue(res.Rows[0][0]) != "4" {
		t.Errorf("post-ingest count = %s, want 4", table.FormatValue(res.Rows[0][0]))
	}
}

func TestBindingCatalogSpansBackends(t *testing.T) {
	c := testCatalog()
	g := graph.New()
	e := New(c.Epoch, Options{}, NewMemory(c), NewGraphEvidence(g, c.Epoch))
	bc := e.BindingCatalog()
	for _, want := range []string{"sales", "metric_changes", GraphEntitiesTable, GraphTriplesTable} {
		if _, err := bc.Get(want); err != nil {
			t.Errorf("binding catalog misses %s: %v", want, err)
		}
	}
	// Cached per epoch: same pointer until the epoch moves.
	if e.BindingCatalog() != bc {
		t.Error("binding catalog rebuilt without an epoch move")
	}
	tbl, _ := c.Get("sales")
	c.Put(tbl)
	if e.BindingCatalog() == bc {
		t.Error("binding catalog not rebuilt after epoch move")
	}
}

func TestNoBackendServesTable(t *testing.T) {
	e := New(nil, Options{}, NewMemory(table.NewCatalog()))
	_, _, err := e.Execute(&semop.Plan{Table: "missing"})
	if !errors.Is(err, ErrNoBackend) {
		t.Errorf("err = %v, want ErrNoBackend", err)
	}
	if _, _, err := e.Execute(nil); !errors.Is(err, semop.ErrEmptyPlan) {
		t.Errorf("nil plan err = %v, want ErrEmptyPlan", err)
	}
}

func TestExplainDeterministicAcrossWorkers(t *testing.T) {
	p := &semop.Plan{
		Table: "sales", MetricCol: "units",
		Filters:   []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q2")}},
		Aggs:      []table.Agg{{Func: table.AggAvg, Col: "units", As: "result"}},
		JoinTable: "metric_changes", JoinLeftCol: "product", JoinRightCol: "product",
		JoinFilters: []table.Pred{{Col: "change_pct", Op: table.OpGt, Val: table.F(0)}},
	}
	var explains []string
	for _, workers := range []int{1, 2, 8} {
		c := testCatalog()
		e := newTestExecutor(c, workers)
		_, run, err := e.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		explains = append(explains, Explain(run))
	}
	for i := 1; i < len(explains); i++ {
		if explains[i] != explains[0] {
			t.Errorf("explain differs at workers set %d:\n%s\nvs\n%s", i, explains[i], explains[0])
		}
	}
	if !strings.Contains(explains[0], "backend=memory") || !strings.Contains(explains[0], "est: scan") {
		t.Errorf("explain missing physical details:\n%s", explains[0])
	}
}
