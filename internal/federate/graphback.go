package federate

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/table"
)

// Graph-evidence table names.
const (
	GraphEntitiesTable = "graph_entities"
	GraphTriplesTable  = "graph_triples"
)

// GraphEvidence exposes the heterogeneous graph index as relational
// evidence tables, so questions that bind to no catalog table can
// still execute structurally:
//
//	graph_entities(entity, etype, degree)   one row per entity node
//	graph_triples(subject, verb, object, sources)   the cue layer
//
// Tables materialize lazily, sorted for determinism, and are
// invalidated whenever the owner-supplied epoch moves (the hybrid
// system bumps it on every Ingest). The backend is deliberately
// scan+filter only — no aggregate or projection pushdown — so the
// planner must compensate in the federation layer, exercising the
// capability-aware lowering path real external stores need.
type GraphEvidence struct {
	g       *graph.Graph
	epochFn func() uint64

	mu     sync.Mutex
	epoch  uint64
	fresh  bool
	tables map[string]*table.Table
	stats  map[string]*table.TableStats
}

// NewGraphEvidence returns a backend over g. epochFn versions the
// graph: materialized tables are reused only while it is unchanged.
func NewGraphEvidence(g *graph.Graph, epochFn func() uint64) *GraphEvidence {
	return &GraphEvidence{g: g, epochFn: epochFn, tables: make(map[string]*table.Table)}
}

// Name implements Backend.
func (ge *GraphEvidence) Name() string { return "graph" }

// Tables implements Backend.
func (ge *GraphEvidence) Tables() []string {
	return []string{GraphEntitiesTable, GraphTriplesTable}
}

// Caps implements Backend: filters only.
func (ge *GraphEvidence) Caps() Caps { return CapFilter }

// CanPush implements Backend.
func (ge *GraphEvidence) CanPush(string, table.Pred) bool { return true }

// materialize returns the named evidence table and its per-column
// statistics, rebuilding the set when the graph epoch has moved.
// Unserved names return immediately — the planner probes every
// backend for every table, and a miss must not trigger an O(graph)
// rebuild on the answer hot path. Statistics are built with the same
// table.BuildStats the catalog uses, so graph-view estimates share
// the one cost model.
func (ge *GraphEvidence) materialize(name string) (*table.Table, *table.TableStats, bool) {
	name = strings.ToLower(name)
	if name != GraphEntitiesTable && name != GraphTriplesTable {
		return nil, nil, false
	}
	ge.mu.Lock()
	defer ge.mu.Unlock()
	if e := ge.epochFn(); !ge.fresh || e != ge.epoch {
		ge.epoch = e
		ge.fresh = true
		ge.tables = map[string]*table.Table{
			GraphEntitiesTable: ge.buildEntities(),
			GraphTriplesTable:  ge.buildTriples(),
		}
		ge.stats = make(map[string]*table.TableStats, len(ge.tables))
		for n, t := range ge.tables {
			ge.stats[n] = table.BuildStats(t)
		}
	}
	t, ok := ge.tables[name]
	return t, ge.stats[name], ok
}

func (ge *GraphEvidence) buildEntities() *table.Table {
	t := table.New(GraphEntitiesTable, table.Schema{
		{Name: "entity", Type: table.TypeString},
		{Name: "etype", Type: table.TypeString},
		{Name: "degree", Type: table.TypeInt},
	})
	nodes := ge.g.NodesOfType(graph.NodeEntity)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		t.MustAppend([]table.Value{
			table.S(n.Label),
			table.S(n.Attrs["etype"]),
			table.I(int64(ge.g.Degree(n.ID))),
		})
	}
	return t
}

func (ge *GraphEvidence) buildTriples() *table.Table {
	t := table.New(GraphTriplesTable, table.Schema{
		{Name: "subject", Type: table.TypeString},
		{Name: "verb", Type: table.TypeString},
		{Name: "object", Type: table.TypeString},
		{Name: "sources", Type: table.TypeString},
	})
	for _, tr := range index.Triples(ge.g) {
		t.MustAppend([]table.Value{
			table.S(tr.Subject),
			table.S(tr.Predicate),
			table.S(tr.Object),
			table.S(strings.Join(tr.Sources, ";")),
		})
	}
	return t
}

// Estimate implements Backend: full scan of the materialized view,
// output estimated from the view's per-column statistics through the
// shared estimator.
func (ge *GraphEvidence) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	t, ts, ok := ge.materialize(tbl)
	if !ok {
		return Estimate{}, false
	}
	return estimateFromStats(ts, t.Len(), preds, 16, 1), true
}

// Scan implements Backend.
func (ge *GraphEvidence) Scan(f Fragment) (Result, error) {
	t, _, ok := ge.materialize(f.Table)
	if !ok {
		return Result{}, ErrNoBackend
	}
	cur := t
	if len(f.Preds) > 0 {
		var err error
		cur, err = table.Filter(t, f.Preds...)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Table: cur, Scanned: t.Len()}, nil
}
