package federate

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/table"
)

// Graph-evidence table names.
const (
	GraphEntitiesTable = "graph_entities"
	GraphTriplesTable  = "graph_triples"
)

// GraphEvidence exposes the heterogeneous graph index as relational
// evidence tables, so questions that bind to no catalog table can
// still execute structurally:
//
//	graph_entities(entity, etype, degree)   one row per entity node
//	graph_triples(subject, verb, object, sources)   the cue layer
//
// Tables materialize lazily, sorted for determinism, and are
// invalidated whenever the owner-supplied epoch moves (the hybrid
// system bumps it on every Ingest). The backend is deliberately
// scan+filter only — no aggregate or projection pushdown — so the
// planner must compensate in the federation layer, exercising the
// capability-aware lowering path real external stores need.
type GraphEvidence struct {
	g       *graph.Graph
	epochFn func() uint64

	mu     sync.Mutex
	epoch  uint64                       // guarded by mu
	fresh  bool                         // guarded by mu
	remats int                          // guarded by mu; materialization count, for the epoch-guard tests
	tables map[string]*table.Table      // guarded by mu
	stats  map[string]*table.TableStats // guarded by mu
	zones  map[string]*table.Zones      // guarded by mu
}

// NewGraphEvidence returns a backend over g. epochFn versions the
// graph: materialized tables are reused only while it is unchanged.
func NewGraphEvidence(g *graph.Graph, epochFn func() uint64) *GraphEvidence {
	return &GraphEvidence{g: g, epochFn: epochFn, tables: make(map[string]*table.Table)}
}

// Name implements Backend.
func (ge *GraphEvidence) Name() string { return "graph" }

// Tables implements Backend.
func (ge *GraphEvidence) Tables() []string {
	return []string{GraphEntitiesTable, GraphTriplesTable}
}

// Caps implements Backend: filters only.
func (ge *GraphEvidence) Caps() Caps { return CapFilter }

// CanPush implements Backend.
func (ge *GraphEvidence) CanPush(string, table.Pred) bool { return true }

// materialize returns the named evidence table and its per-column
// statistics, rebuilding the set only when the supplied epoch has
// moved since the last build — consecutive plans over an unchanged
// graph reuse the same views, stats and zone maps (Remats counts
// rebuilds so tests can pin that). Unserved names return immediately —
// the planner probes every backend for every table, and a miss must
// not trigger an O(graph) rebuild on the answer hot path. Statistics
// and zone maps are built with the same table.BuildStats/BuildZones
// the catalog uses, so graph-view estimates and pruning share the one
// cost model.
func (ge *GraphEvidence) materialize(name string) (*table.Table, *table.TableStats, bool) {
	name = strings.ToLower(name)
	if name != GraphEntitiesTable && name != GraphTriplesTable {
		return nil, nil, false
	}
	ge.mu.Lock()
	defer ge.mu.Unlock()
	if e := ge.epochFn(); !ge.fresh || e != ge.epoch {
		ge.epoch = e
		ge.fresh = true
		ge.remats++
		ge.tables = map[string]*table.Table{
			GraphEntitiesTable: ge.buildEntities(),
			GraphTriplesTable:  ge.buildTriples(),
		}
		ge.stats = make(map[string]*table.TableStats, len(ge.tables))
		ge.zones = make(map[string]*table.Zones, len(ge.tables))
		for n, t := range ge.tables {
			ge.stats[n] = table.BuildStats(t)
			ge.zones[n] = table.BuildZones(t)
		}
	}
	t, ok := ge.tables[name]
	return t, ge.stats[name], ok
}

// Remats reports how many times the evidence views have been
// materialized — exactly once per distinct epoch value observed.
func (ge *GraphEvidence) Remats() int {
	ge.mu.Lock()
	defer ge.mu.Unlock()
	return ge.remats
}

// Zones implements ZoneMapped: the materialized view's fragment zone
// maps, built alongside the view at the current epoch.
func (ge *GraphEvidence) Zones(tbl string) *table.Zones {
	if _, _, ok := ge.materialize(tbl); !ok {
		return nil
	}
	ge.mu.Lock()
	defer ge.mu.Unlock()
	return ge.zones[strings.ToLower(tbl)]
}

func (ge *GraphEvidence) buildEntities() *table.Table {
	t := table.New(GraphEntitiesTable, table.Schema{
		{Name: "entity", Type: table.TypeString},
		{Name: "etype", Type: table.TypeString},
		{Name: "degree", Type: table.TypeInt},
	})
	nodes := ge.g.NodesOfType(graph.NodeEntity)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		t.MustAppend([]table.Value{
			table.S(n.Label),
			table.S(n.Attrs["etype"]),
			table.I(int64(ge.g.Degree(n.ID))),
		})
	}
	return t
}

func (ge *GraphEvidence) buildTriples() *table.Table {
	t := table.New(GraphTriplesTable, table.Schema{
		{Name: "subject", Type: table.TypeString},
		{Name: "verb", Type: table.TypeString},
		{Name: "object", Type: table.TypeString},
		{Name: "sources", Type: table.TypeString},
	})
	for _, tr := range index.Triples(ge.g) {
		t.MustAppend([]table.Value{
			table.S(tr.Subject),
			table.S(tr.Predicate),
			table.S(tr.Object),
			table.S(strings.Join(tr.Sources, ";")),
		})
	}
	return t
}

// Estimate implements Backend: full scan of the materialized view,
// output estimated from the view's per-column statistics through the
// shared estimator.
func (ge *GraphEvidence) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	t, ts, ok := ge.materialize(tbl)
	if !ok {
		return Estimate{}, false
	}
	return estimateFromStats(ts, t.Len(), preds, 16, 1), true
}

// Scan implements Backend. Zone-pruned fragments read only the
// surviving row ranges of the materialized view, in ascending order —
// identical rows to a full filtered scan, fewer rows visited.
func (ge *GraphEvidence) Scan(f Fragment) (Result, error) {
	t, _, ok := ge.materialize(f.Table)
	if !ok {
		return Result{}, ErrNoBackend
	}
	if f.Ranges != nil {
		cur, scanned, err := table.FilterRanges(t, f.Ranges, f.Preds...)
		if err != nil {
			return Result{}, err
		}
		return Result{Table: cur, Scanned: scanned}, nil
	}
	cur := t
	if len(f.Preds) > 0 {
		var err error
		cur, err = table.Filter(t, f.Preds...)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Table: cur, Scanned: t.Len()}, nil
}
