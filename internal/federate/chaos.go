package federate

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/table"
)

// ChaosOptions configures a Chaos wrapper. Every injected fault is a
// pure function of (Seed, fragment identity, attempt number): the same
// wrapped system replays the same fault schedule on every run, on any
// machine, at any worker count — which is what lets the chaos-parity
// suite assert bit-identical results under injection.
type ChaosOptions struct {
	// Seed selects the fault schedule.
	Seed uint64
	// MaxTransient caps injected transient failures per fragment
	// identity: the schedule injects k = Hash64(Seed, identity) mod
	// (MaxTransient+1) transient errors before letting the scan
	// through. Keeping MaxTransient at or below the executor's retry
	// budget guarantees every scan eventually succeeds.
	MaxTransient int
	// Latency is sleep injected before every scan (through Clock, so
	// tests record it instead of waiting).
	Latency time.Duration
	// Down fails every scan with a permanent error — the
	// backend-fully-down scenario that exercises failover.
	Down bool
	// Hang blocks scans until the query context is cancelled; it
	// requires a deadline or sibling cancellation to ever return. On a
	// context that cannot be cancelled the scan fails permanently
	// instead of deadlocking.
	Hang bool
	// Tables restricts injection to the named tables; nil injects on
	// all.
	Tables []string
	// Clock receives latency sleeps; nil uses the wall clock.
	Clock fault.Clock
}

// Chaos is a fault-injecting Backend wrapper: it delegates everything
// to the wrapped backend but injects deterministic, seeded faults per
// Scan. It keeps the wrapped backend's name, so registering a
// chaos-wrapped built-in replaces the healthy one — routing, EXPLAIN
// and goldens all see the usual backend names.
//
// Chaos forwards the optional planner interfaces (ZoneMapped,
// AggPushable, ContextScanner) to the wrapped backend, so pushdown,
// zone pruning and row-sliced scans plan exactly as without the
// wrapper; only Scan outcomes change.
type Chaos struct {
	inner Backend
	opts  ChaosOptions

	mu       sync.Mutex
	attempts map[string]int // guarded by mu; scan attempts seen per fragment identity
}

// NewChaos wraps b with fault injection.
func NewChaos(b Backend, opts ChaosOptions) *Chaos {
	if opts.Clock == nil {
		opts.Clock = fault.RealClock()
	}
	return &Chaos{inner: b, opts: opts, attempts: make(map[string]int)}
}

// Name implements Backend, keeping the wrapped backend's identity.
func (c *Chaos) Name() string { return c.inner.Name() }

// Tables implements Backend.
func (c *Chaos) Tables() []string { return c.inner.Tables() }

// Caps implements Backend.
func (c *Chaos) Caps() Caps { return c.inner.Caps() }

// CanPush implements Backend.
func (c *Chaos) CanPush(tbl string, p table.Pred) bool { return c.inner.CanPush(tbl, p) }

// Estimate implements Backend. Estimates stay fault-free: chaos
// attacks execution, not planning, so routing decisions are identical
// to the healthy system's.
func (c *Chaos) Estimate(tbl string, preds []table.Pred) (Estimate, bool) {
	return c.inner.Estimate(tbl, preds)
}

// Zones implements ZoneMapped by forwarding to the wrapped backend
// (nil when it has no zone maps). All built-in backends are
// ZoneMapped; wrapping a backend that is not forfeits row-sliced
// scans, exactly as registering it directly would.
func (c *Chaos) Zones(tbl string) *table.Zones {
	if zb, ok := c.inner.(ZoneMapped); ok {
		return zb.Zones(tbl)
	}
	return nil
}

// CanPushAgg implements AggPushable by forwarding; a wrapped backend
// without the interface absorbs any aggregate its CapAggregate
// advertises, matching the planner's default.
func (c *Chaos) CanPushAgg(a table.Agg) bool {
	if ap, ok := c.inner.(AggPushable); ok {
		return ap.CanPushAgg(a)
	}
	return true
}

// identity canonicalizes the fragment for the fault schedule: the
// parts that define what is being scanned (table, predicates,
// projection, aggregation, ranges) — not the estimates, which may
// drift with statistics without changing the scan's meaning.
func (c *Chaos) identity(f Fragment) string {
	var b strings.Builder
	b.WriteString(f.Table)
	b.WriteByte('|')
	b.WriteString(predsString(f.Preds))
	b.WriteByte('|')
	b.WriteString(strings.Join(f.Columns, ","))
	if len(f.Aggs) > 0 {
		b.WriteByte('|')
		b.WriteString(aggsString(f.GroupBy, f.Aggs))
	}
	for _, r := range f.Ranges {
		fmt.Fprintf(&b, "|%d-%d", r.Start, r.End)
	}
	return b.String()
}

// targeted reports whether injection applies to this table.
func (c *Chaos) targeted(tbl string) bool {
	if len(c.opts.Tables) == 0 {
		return true
	}
	for _, t := range c.opts.Tables {
		if t == tbl {
			return true
		}
	}
	return false
}

// Scan implements Backend: inject, then delegate. Injection precedes
// delegation so a scan that survives injection returns exactly the
// fault-free Result — row counts, order and scan accounting included —
// which is why EXPLAIN's stats and pruned lines are byte-identical
// under chaos and only the resilience line differs.
func (c *Chaos) Scan(f Fragment) (Result, error) {
	return c.ScanContext(context.Background(), f)
}

// ScanContext implements ContextScanner: like Scan, but hang injection
// blocks on the context so deadline expiry or sibling cancellation
// unblocks it.
func (c *Chaos) ScanContext(ctx context.Context, f Fragment) (Result, error) {
	if c.targeted(f.Table) {
		if err := c.inject(ctx, f); err != nil {
			return Result{}, err
		}
	}
	return scanWithContext(ctx, c.inner, f)
}

// inject applies the configured faults for this scan attempt.
func (c *Chaos) inject(ctx context.Context, f Fragment) error {
	if c.opts.Latency > 0 {
		c.opts.Clock.Sleep(c.opts.Latency)
	}
	if c.opts.Down {
		return fault.Permanent(fmt.Errorf("chaos: backend %s is down (scan %s)", c.Name(), f.Table))
	}
	if c.opts.Hang {
		if ctx.Done() == nil {
			return fault.Permanent(fmt.Errorf("chaos: hang on %s without cancellable context", c.Name()))
		}
		<-ctx.Done()
		return ctx.Err()
	}
	if c.opts.MaxTransient > 0 {
		id := c.identity(f)
		budget := int(fault.Hash64(c.opts.Seed, c.Name()+"\x00"+id) % uint64(c.opts.MaxTransient+1))
		c.mu.Lock()
		attempt := c.attempts[id]
		if attempt < budget {
			c.attempts[id] = attempt + 1
		}
		c.mu.Unlock()
		if attempt < budget {
			return fault.Transient(fmt.Errorf("chaos: injected fault %d/%d on %s %s", attempt+1, budget, c.Name(), f.Table))
		}
	}
	return nil
}
