package entropy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/slm"
)

func gen(text string, prob float64) slm.Generation {
	return slm.Generation{Text: text, Canonical: text, Prob: prob}
}

func testClusterer() *Clusterer {
	return NewClusterer(slm.NewEmbedder(slm.DefaultEmbeddingDim))
}

func TestIdenticalAnswersZeroEntropy(t *testing.T) {
	gens := []slm.Generation{
		gen("Fever, cough, fatigue", 0.5),
		gen("Fever, cough, fatigue", 0.3),
		gen("Fever, cough, fatigue", 0.2),
	}
	r := Assess(gens, testClusterer())
	if r.SemanticH != 0 || r.DiscreteH != 0 {
		t.Errorf("entropy = %v / %v, want 0", r.SemanticH, r.DiscreteH)
	}
	if len(r.Clusters) != 1 {
		t.Errorf("clusters = %d", len(r.Clusters))
	}
}

func TestParaphrasesCollapseToOneCluster(t *testing.T) {
	// The paper's influenza example: same meaning, different surface.
	gens := []slm.Generation{
		gen("20%", 0.4),
		gen("The answer is 20%.", 0.3),
		gen("Based on the data, 20%.", 0.2),
		gen("20%, according to the records.", 0.1),
	}
	r := Assess(gens, testClusterer())
	if len(r.Clusters) != 1 {
		t.Fatalf("clusters = %d: %+v", len(r.Clusters), r.Clusters)
	}
	if r.SemanticH != 0 {
		t.Errorf("semantic entropy = %v, want 0", r.SemanticH)
	}
	// Lexical entropy is fooled by surface variation — this is exactly
	// why semantic entropy is the better metric.
	if r.LexicalH == 0 {
		t.Error("lexical entropy should be > 0 for distinct strings")
	}
}

func TestConflictingAnswersHighEntropy(t *testing.T) {
	// The paper's legal example: yes / no / it depends.
	gens := []slm.Generation{
		gen("Yes, if copyrighted", 0.34),
		gen("No, unless consent is violated", 0.33),
		gen("It depends on jurisdiction", 0.33),
	}
	r := Assess(gens, testClusterer())
	if len(r.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(r.Clusters))
	}
	if r.SemanticH < 1.0 {
		t.Errorf("semantic entropy = %v, want ~ln(3)", r.SemanticH)
	}
	if !r.Flagged(0.5) {
		t.Error("conflicting answers should be flagged")
	}
}

func TestMajorityAnswer(t *testing.T) {
	gens := []slm.Generation{
		gen("42 units", 0.4),
		gen("42 units", 0.3),
		gen("17 units", 0.3),
	}
	r := Assess(gens, testClusterer())
	if r.MajorityAnswer != "42 units" {
		t.Errorf("majority = %q", r.MajorityAnswer)
	}
}

func TestEmptySample(t *testing.T) {
	r := Assess(nil, testClusterer())
	if r.Samples != 0 || r.SemanticH != 0 || len(r.Clusters) != 0 {
		t.Errorf("empty report: %+v", r)
	}
}

func TestEntropyBoundsProperty(t *testing.T) {
	c := testClusterer()
	answers := []string{"alpha", "beta", "gamma", "delta"}
	f := func(seed uint64, m uint8) bool {
		rng := slm.NewRNG(seed)
		count := int(m%8) + 1
		gens := make([]slm.Generation, count)
		for i := range gens {
			a := answers[rng.Intn(len(answers))]
			gens[i] = gen(a, rng.Float64())
		}
		r := Assess(gens, c)
		bound := MaxEntropy(count) + 1e-9
		return r.SemanticH >= -1e-9 && r.SemanticH <= bound &&
			r.DiscreteH >= -1e-9 && r.DiscreteH <= bound &&
			!math.IsNaN(r.SemanticH)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntropyPermutationInvariance(t *testing.T) {
	gens := []slm.Generation{
		gen("yes", 0.5), gen("no", 0.3), gen("maybe", 0.2),
	}
	r1 := Assess(gens, testClusterer())
	rev := []slm.Generation{gens[2], gens[1], gens[0]}
	r2 := Assess(rev, testClusterer())
	if math.Abs(r1.SemanticH-r2.SemanticH) > 1e-12 {
		t.Errorf("entropy not permutation invariant: %v vs %v", r1.SemanticH, r2.SemanticH)
	}
}

func TestDiscreteVsWeighted(t *testing.T) {
	// Two clusters with unequal mass: weighted entropy below discrete
	// when the dominant cluster also has dominant probability.
	gens := []slm.Generation{
		gen("yes", 0.9), gen("no", 0.05), gen("yes", 0.9), gen("yes", 0.9),
	}
	r := Assess(gens, testClusterer())
	if r.SemanticH >= r.DiscreteH {
		t.Errorf("weighted %v should be < discrete %v here", r.SemanticH, r.DiscreteH)
	}
}

func TestMaxEntropy(t *testing.T) {
	if MaxEntropy(1) != 0 || MaxEntropy(0) != 0 {
		t.Error("degenerate MaxEntropy")
	}
	if math.Abs(MaxEntropy(4)-math.Log(4)) > 1e-12 {
		t.Error("MaxEntropy(4)")
	}
}

func TestAUROCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUROC(scores, labels); got != 1.0 {
		t.Errorf("AUROC = %v, want 1", got)
	}
}

func TestAUROCInverted(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if got := AUROC(scores, labels); got != 0.0 {
		t.Errorf("AUROC = %v, want 0", got)
	}
}

func TestAUROCChanceAndDegenerate(t *testing.T) {
	if got := AUROC([]float64{0.5, 0.5}, []bool{true, false}); got != 0.5 {
		t.Errorf("tie AUROC = %v", got)
	}
	if got := AUROC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Errorf("single-class AUROC = %v", got)
	}
	if got := AUROC([]float64{1}, []bool{true, false}); got != 0.5 {
		t.Errorf("mismatched AUROC = %v", got)
	}
}

func TestAUROCBoundsProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := slm.NewRNG(seed)
		count := int(n%20) + 2
		scores := make([]float64, count)
		labels := make([]bool, count)
		for i := range scores {
			scores[i] = rng.Float64()
			labels[i] = rng.Float64() < 0.5
		}
		a := AUROC(scores, labels)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEndToEndWithGenerator(t *testing.T) {
	// Confident generator: low entropy. Uncertain: high entropy.
	rng := slm.NewRNG(11)
	confident := []slm.Candidate{{Text: "42 units", Weight: 10}, {Text: "7 units", Weight: 0.1}}
	uncertain := []slm.Candidate{{Text: "42 units", Weight: 1}, {Text: "7 units", Weight: 1}, {Text: "99 units", Weight: 1}}
	g := slm.NewGenerator()
	c := testClusterer()

	rConf := Assess(g.Sample(confident, 10, rng), c)
	rUnc := Assess(g.Sample(uncertain, 10, rng), c)
	if rConf.SemanticH >= rUnc.SemanticH {
		t.Errorf("confident %v >= uncertain %v", rConf.SemanticH, rUnc.SemanticH)
	}
}

func TestSignatureStripsTemplates(t *testing.T) {
	if signature("The answer is 20%.") != signature("20%") {
		t.Errorf("%q vs %q", signature("The answer is 20%."), signature("20%"))
	}
	if signature("yes") == signature("no") {
		t.Error("distinct answers share a signature")
	}
}

func TestClusterProbAggregation(t *testing.T) {
	gens := []slm.Generation{gen("x", 0.25), gen("x", 0.25), gen("y", 0.5)}
	clusters := testClusterer().Cluster(gens)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	if math.Abs(clusters[0].Prob-0.5) > 1e-12 {
		t.Errorf("cluster prob = %v", clusters[0].Prob)
	}
}
