// Package entropy implements semantic entropy (paper Section III.D,
// after Kuhn et al. 2023): an unsupervised uncertainty measure that
// samples M answers to the same question, clusters them by semantic
// equivalence, and computes the entropy of the cluster distribution.
// Low entropy = the model converges on one meaning (reliable); high
// entropy = conflicting interpretations (flag for review).
//
// Two baselines from the uncertainty literature are included for the
// calibration experiment (E6): lexical entropy over surface strings and
// mean negative log-likelihood.
package entropy

import (
	"math"
	"sort"
	"strings"

	"repro/internal/slm"
)

// Cluster is one group of semantically equivalent answers.
type Cluster struct {
	Representative string   // first member's canonical content
	Members        []int    // indices into the sampled generations
	Prob           float64  // aggregated probability mass
	Texts          []string // member surface forms
}

// Report is the uncertainty assessment of one question.
type Report struct {
	Samples        int
	Clusters       []Cluster
	SemanticH      float64 // likelihood-weighted semantic entropy
	DiscreteH      float64 // count-based ("discrete") semantic entropy
	LexicalH       float64 // baseline: entropy over distinct strings
	MeanNLL        float64 // baseline: mean negative log-likelihood
	MajorityAnswer string  // representative of the largest cluster
}

// Flagged reports whether the entropy exceeds threshold — the paper's
// "prompt systems to flag such outputs for human review".
func (r Report) Flagged(threshold float64) bool { return r.SemanticH > threshold }

// Clusterer groups generations by meaning. Equivalence is an
// approximation of bidirectional entailment: two answers are equivalent
// when their content signatures match, or when their embeddings are
// nearly parallel and one's content words contain the other's.
type Clusterer struct {
	embedder  *slm.Embedder
	threshold float64 // cosine threshold for the embedding check
}

// NewClusterer returns a clusterer with the given embedder. A nil
// embedder uses signatures only.
func NewClusterer(embedder *slm.Embedder) *Clusterer {
	return &Clusterer{embedder: embedder, threshold: 0.92}
}

// templateWords are surface noise added by answer phrasing that must
// not affect semantic identity ("The answer is X.", "Based on the
// data, X.").
var templateWords = map[string]bool{
	"answer": true, "records": true, "record": true, "data": true,
	"based": true, "according": true, "indicate": true, "indicates": true,
}

// signature returns the canonical content-word signature of an answer.
func signature(text string) string {
	words := slm.Words(slm.Tokenize(text))
	content := make([]string, 0, len(words))
	for _, w := range words {
		if slm.IsStopword(w) || templateWords[w] {
			continue
		}
		content = append(content, w)
	}
	sort.Strings(content)
	return strings.Join(content, " ")
}

// Cluster groups the generations. Order of output clusters follows
// first appearance, so results are deterministic.
func (c *Clusterer) Cluster(gens []slm.Generation) []Cluster {
	var clusters []Cluster
	sigs := make([]string, 0, len(gens))
	var vecs [][]float32
	if c.embedder != nil {
		vecs = make([][]float32, len(gens))
	}
	for i, g := range gens {
		sig := signature(g.Text)
		var vec []float32
		if c.embedder != nil {
			vec = c.embedder.Embed(g.Text)
			vecs[i] = vec
		}
		assigned := false
		for ci := range clusters {
			rep := clusters[ci].Members[0]
			if sigs[rep] == sig || c.embeddingEquivalent(vecs, rep, i, sigs[rep], sig) {
				clusters[ci].Members = append(clusters[ci].Members, i)
				clusters[ci].Prob += g.Prob
				clusters[ci].Texts = append(clusters[ci].Texts, g.Text)
				assigned = true
				break
			}
		}
		sigs = append(sigs, sig)
		if !assigned {
			clusters = append(clusters, Cluster{
				Representative: g.Canonical,
				Members:        []int{i},
				Prob:           g.Prob,
				Texts:          []string{g.Text},
			})
		}
	}
	return clusters
}

func (c *Clusterer) embeddingEquivalent(vecs [][]float32, a, b int, sigA, sigB string) bool {
	if c.embedder == nil || vecs == nil {
		return false
	}
	if slm.Cosine(vecs[a], vecs[b]) < c.threshold {
		return false
	}
	return containsAll(sigA, sigB) || containsAll(sigB, sigA)
}

// containsAll reports whether every word of inner appears in outer.
func containsAll(outer, inner string) bool {
	if inner == "" {
		return true
	}
	set := map[string]bool{}
	for _, w := range strings.Fields(outer) {
		set[w] = true
	}
	for _, w := range strings.Fields(inner) {
		if !set[w] {
			return false
		}
	}
	return true
}

// Assess computes the full uncertainty report for sampled generations.
// An empty sample yields a zero report.
func Assess(gens []slm.Generation, clusterer *Clusterer) Report {
	r := Report{Samples: len(gens)}
	if len(gens) == 0 {
		return r
	}
	r.Clusters = clusterer.Cluster(gens)

	// Likelihood-weighted semantic entropy: p(c) proportional to the
	// probability mass of the cluster's members.
	var mass float64
	for _, c := range r.Clusters {
		mass += c.Prob
	}
	if mass > 0 {
		for _, c := range r.Clusters {
			p := c.Prob / mass
			if p > 0 {
				r.SemanticH -= p * math.Log(p)
			}
		}
	}

	// Discrete semantic entropy: p(c) = |c| / M.
	m := float64(len(gens))
	best := 0
	for i, c := range r.Clusters {
		p := float64(len(c.Members)) / m
		r.DiscreteH -= p * math.Log(p)
		if len(c.Members) > len(r.Clusters[best].Members) {
			best = i
		}
	}
	r.MajorityAnswer = r.Clusters[best].Representative

	// Lexical entropy baseline: distribution over exact strings.
	counts := map[string]int{}
	for _, g := range gens {
		counts[g.Text]++
	}
	for _, n := range counts {
		p := float64(n) / m
		r.LexicalH -= p * math.Log(p)
	}

	// Mean NLL baseline.
	var nll float64
	for _, g := range gens {
		p := g.Prob
		if p <= 0 {
			p = 1e-12
		}
		nll -= math.Log(p)
	}
	r.MeanNLL = nll / m

	return r
}

// MaxEntropy returns the maximum possible entropy for m samples
// (log m), the bound used by property tests and normalization.
func MaxEntropy(m int) float64 {
	if m <= 1 {
		return 0
	}
	return math.Log(float64(m))
}

// AUROC computes the area under the ROC curve for scores predicting
// the positive class (labels true = positive, conventionally
// "incorrect answer" in E6). Ties receive half credit. It returns 0.5
// when either class is empty.
func AUROC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		return 0.5
	}
	var pos, neg []float64
	for i, s := range scores {
		if labels[i] {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0.5
	}
	var wins float64
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / (float64(len(pos)) * float64(len(neg)))
}
