package experiments

import (
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/retrieval"
	"repro/internal/slm"
	"repro/internal/vector"
	"repro/internal/workload"
)

// TableS1ChunkSize sweeps the chunk token budget — the main free
// parameter of the index layer (DESIGN.md design-choice ablation).
// Small chunks give precise anchors but fragment context; large chunks
// blur entity locality.
func TableS1ChunkSize(budgets []int) *metrics.ResultTable {
	t := metrics.NewResultTable("Table S1 — Chunk size ablation (long-document corpus)",
		"max_tokens", "chunks", "index_KB", "recall@5", "MRR", "overall_EM")
	opts := workload.DefaultECommerceOptions()
	opts.LongDocs = true // short documents never hit the budget
	c := workload.ECommerce(opts)
	for _, budget := range budgets {
		ner := newNER(c)
		opts := core.DefaultHybridOptions()
		opts.Index.Chunk = chunk.Options{MaxTokens: budget, OverlapSentence: 1}
		h, err := core.NewHybrid(c.Sources, ner, opts)
		if err != nil {
			panic(fmt.Sprintf("experiments: s1: %v", err))
		}
		ret := core.EvaluateRetrieval(h.Retriever(), c.Queries, []int{5})
		qa := core.EvaluateQA(h, c.Queries)
		t.AddRow(budget, h.IndexStats.Chunks, h.IndexStats.SizeBytes/1024,
			ret.RecallAt[5], ret.MRR, qa[workload.Class("overall")].EM)
	}
	return t
}

// TableS2VectorIndex compares the dense baseline's exact flat scan
// against IVF at several probe widths: the recall/latency tradeoff
// that conventional RAG pipelines tune and the graph index sidesteps.
func TableS2VectorIndex(nprobes []int) *metrics.ResultTable {
	t := metrics.NewResultTable("Table S2 — Vector index tradeoff (dense baseline)",
		"index", "recall@5_vs_flat", "avg_search_us")
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := newNER(c)
	g, _, err := index.NewBuilder(ner, index.DefaultOptions()).Build(c.Sources)
	if err != nil {
		panic(fmt.Sprintf("experiments: s2: %v", err))
	}
	embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim)

	flat, err := retrieval.NewDense(g, embedder, vector.NewFlat(embedder.Dim()))
	if err != nil {
		panic(fmt.Sprintf("experiments: s2 flat: %v", err))
	}
	// Flat's own top-5 sets are the recall reference.
	reference := map[string]map[string]bool{}
	for _, q := range c.Queries {
		set := map[string]bool{}
		for _, ev := range flat.Retrieve(q.Text, 5) {
			set[ev.NodeID] = true
		}
		reference[q.ID] = set
	}
	measure := func(name string, d *retrieval.Dense) {
		var recall float64
		start := time.Now()
		for _, q := range c.Queries {
			hits := d.Retrieve(q.Text, 5)
			match := 0
			for _, h := range hits {
				if reference[q.ID][h.NodeID] {
					match++
				}
			}
			if len(reference[q.ID]) > 0 {
				recall += float64(match) / float64(len(reference[q.ID]))
			}
		}
		elapsed := time.Since(start)
		n := float64(len(c.Queries))
		t.AddRow(name, recall/n, float64(elapsed.Microseconds())/n)
	}
	measure("flat", flat)
	for _, np := range nprobes {
		ivf, err := retrieval.NewDense(g, embedder, vector.NewIVF(embedder.Dim(), 16, np))
		if err != nil {
			panic(fmt.Sprintf("experiments: s2 ivf: %v", err))
		}
		measure(fmt.Sprintf("ivf_nprobe=%d", np), ivf)
	}
	return t
}
