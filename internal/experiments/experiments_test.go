package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is exercised end-to-end here at small scale; the
// root bench_test.go runs the full parameterizations.

func TestTable1Shape(t *testing.T) {
	tbl := Table1IndexConstruction([]int{40, 80})
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d", tbl.Rows())
	}
	if !strings.Contains(tbl.String(), "graph_build_ms") {
		t.Error("missing header")
	}
}

func TestTable2ShapeAndOrdering(t *testing.T) {
	tbl := Table2RetrievalQuality()
	s := tbl.String()
	for _, want := range []string{"topology", "dense", "bm25", "rrf_fusion", "ecommerce", "healthcare"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
	if tbl.Rows() != 8 {
		t.Errorf("rows = %d", tbl.Rows())
	}
}

func TestTable3IncludesAllPipelines(t *testing.T) {
	tbl := Table3MultiEntityQA()
	s := tbl.String()
	for _, want := range []string{"hybrid", "rag", "text_to_sql", "cross_modal", "overall"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	tbl := Figure2LatencyScaling([]int{40})
	if tbl.Rows() != 3 { // three pipelines at one size
		t.Errorf("rows = %d", tbl.Rows())
	}
}

func TestTable4NoiseSweep(t *testing.T) {
	tbl := Table4Extraction([]float64{0, 0.5})
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d", tbl.Rows())
	}
}

func TestFigure3Calibration(t *testing.T) {
	tbl := Figure3EntropyCalibration([]int{3, 5})
	if tbl.Rows() != 2 {
		t.Errorf("rows = %d", tbl.Rows())
	}
}

func TestTable5Variants(t *testing.T) {
	tbl := Table5Ablations()
	s := tbl.String()
	for _, want := range []string{"full", "no_cues", "no_centrality", "no_entity_nodes", "no_extraction"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 5 missing %q", want)
		}
	}
}

func TestTable6Profiles(t *testing.T) {
	tbl := Table6CostProfile()
	s := tbl.String()
	if !strings.Contains(s, "slm-350m") || !strings.Contains(s, "llm-70b") {
		t.Errorf("table 6 missing profiles:\n%s", s)
	}
}
