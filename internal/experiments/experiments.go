// Package experiments implements the full evaluation suite of
// DESIGN.md §4 — one function per experiment, each returning the
// Markdown table that EXPERIMENTS.md records and cmd/benchrunner
// prints. The same functions back the testing.B benchmarks in the
// repository root, so `go test -bench` regenerates every table and
// figure series.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/entropy"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/retrieval"
	"repro/internal/slm"
	"repro/internal/vector"
	"repro/internal/workload"
)

// newNER returns a recognizer carrying both domain gazetteers.
func newNER(corpora ...*workload.Corpus) *slm.NER {
	ner := slm.NewNER()
	for _, c := range corpora {
		c.Register(ner)
	}
	return ner
}

// ecommerceAt scales the e-commerce corpus to roughly n documents.
func ecommerceAt(n int) *workload.Corpus {
	opts := workload.DefaultECommerceOptions()
	// Each product yields ~3 report docs + ReviewsPerProduct reviews.
	products := n / (3 + opts.ReviewsPerProduct)
	if products < 2 {
		products = 2
	}
	opts.Products = products
	return workload.ECommerce(opts)
}

// Table1IndexConstruction measures graph-index vs dense-index build
// cost and size over a corpus sweep (claim: the graph index avoids
// "large-scale vector indexing" and "repeated LLM inference passes").
func Table1IndexConstruction(sizes []int) *metrics.ResultTable {
	t := metrics.NewResultTable("Table 1 — Index construction cost (graph vs dense)",
		"docs", "graph_build_ms", "graph_KB", "graph_slm_calls", "dense_build_ms", "dense_KB", "dense_embed_calls")
	for _, n := range sizes {
		c := ecommerceAt(n)

		gCost := slm.NewCostModel(slm.SLMProfile())
		gNER := newNER(c).WithCost(gCost)
		gStart := time.Now()
		builder := index.NewBuilder(gNER, index.DefaultOptions()).WithCost(gCost)
		g, stats, err := builder.Build(c.Sources)
		if err != nil {
			panic(fmt.Sprintf("experiments: table1 graph build: %v", err))
		}
		gDur := time.Since(gStart)
		_ = g

		dCost := slm.NewCostModel(slm.SLMProfile())
		embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim).WithCost(dCost)
		dStart := time.Now()
		dense, err := retrieval.NewDenseFromRecords(c.Sources.Records(),
			chunk.New(chunk.DefaultOptions()), embedder, vector.NewFlat(embedder.Dim()))
		if err != nil {
			panic(fmt.Sprintf("experiments: table1 dense build: %v", err))
		}
		dDur := time.Since(dStart)

		t.AddRow(c.Sources.Len(),
			float64(gDur.Microseconds())/1000, stats.SizeBytes/1024, gCost.TotalCalls(),
			float64(dDur.Microseconds())/1000, dense.IndexSizeBytes()/1024, dCost.Calls(slm.OpEmbed))
	}
	return t
}

// Table2RetrievalQuality compares topology vs dense vs BM25 retrieval
// on gold evidence (claim: topology-guided traversal "enhances query
// precision").
func Table2RetrievalQuality() *metrics.ResultTable {
	t := metrics.NewResultTable("Table 2 — Retrieval quality",
		"retriever", "corpus", "recall@1", "recall@5", "recall@10", "MRR")
	for _, c := range []*workload.Corpus{
		workload.ECommerce(workload.DefaultECommerceOptions()),
		workload.Healthcare(workload.DefaultHealthcareOptions()),
	} {
		ner := newNER(c)
		g, _, err := index.NewBuilder(ner, index.DefaultOptions()).Build(c.Sources)
		if err != nil {
			panic(fmt.Sprintf("experiments: table2 build: %v", err))
		}
		embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim)
		dense, err := retrieval.NewDense(g, embedder, vector.NewFlat(embedder.Dim()))
		if err != nil {
			panic(fmt.Sprintf("experiments: table2 dense: %v", err))
		}
		topo := retrieval.NewTopology(g, ner, retrieval.DefaultTopologyOptions())
		bm := retrieval.NewBM25(g)
		retrievers := []retrieval.Retriever{
			topo,
			dense,
			bm,
			retrieval.NewFusion(topo, dense, bm), // ensemble upper baseline
		}
		for _, r := range retrievers {
			stats := core.EvaluateRetrieval(r, c.Queries, []int{1, 5, 10})
			t.AddRow(r.Name(), c.Name,
				stats.RecallAt[1], stats.RecallAt[5], stats.RecallAt[10], stats.MRR)
		}
	}
	return t
}

// Table3MultiEntityQA compares end-to-end answer accuracy by query
// class for the three pipelines (claims: Text-to-SQL fails on
// unstructured components; RAG produces ungrounded comparisons; the
// hybrid handles both).
func Table3MultiEntityQA() *metrics.ResultTable {
	t := metrics.NewResultTable("Table 3 — Multi-Entity QA accuracy (EM / F1)",
		"pipeline", "corpus", "class", "N", "EM", "F1", "answered")
	for _, c := range []*workload.Corpus{
		workload.ECommerce(workload.DefaultECommerceOptions()),
		workload.Healthcare(workload.DefaultHealthcareOptions()),
	} {
		for _, p := range buildPipelines(c) {
			stats := core.EvaluateQA(p, c.Queries)
			for _, class := range []workload.Class{
				workload.ClassSingleLookup, workload.ClassAggregate,
				workload.ClassComparative, workload.ClassCrossModal,
				workload.ClassCrossModalJoin, workload.Class("overall"),
			} {
				s, ok := stats[class]
				if !ok || s.N == 0 {
					continue
				}
				t.AddRow(p.Name(), c.Name, string(class), s.N, s.EM, s.F1, s.Answered)
			}
		}
	}
	return t
}

// buildPipelines constructs the three systems over one corpus.
func buildPipelines(c *workload.Corpus) []core.Pipeline {
	ner := newNER(c)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		panic(fmt.Sprintf("experiments: hybrid: %v", err))
	}
	r, err := core.NewRAG(c.Sources, ner, core.DefaultRAGOptions())
	if err != nil {
		panic(fmt.Sprintf("experiments: rag: %v", err))
	}
	ts := core.NewTextToSQL(c.NativeCatalog(), ner)
	return []core.Pipeline{h, r, ts}
}

// Figure2LatencyScaling measures p50/p95 answer latency as the corpus
// grows (claim: suitability for "low-latency responses" in
// resource-constrained environments).
func Figure2LatencyScaling(sizes []int) *metrics.ResultTable {
	t := metrics.NewResultTable("Figure 2 — Query latency vs corpus size (series)",
		"docs", "pipeline", "p50_ms", "p95_ms", "mean_ms")
	for _, n := range sizes {
		c := ecommerceAt(n)
		for _, p := range buildPipelines(c) {
			var lat metrics.Latencies
			for _, q := range c.Queries {
				ans := p.Answer(q.Text)
				lat.Record(ans.Latency)
			}
			t.AddRow(c.Sources.Len(), p.Name(),
				float64(lat.Percentile(50).Microseconds())/1000,
				float64(lat.Percentile(95).Microseconds())/1000,
				float64(lat.Mean().Microseconds())/1000)
		}
	}
	return t
}

// Table4Extraction measures Relational Table Generation quality under
// a noise sweep (Section III.C task 1).
func Table4Extraction(noises []float64) *metrics.ResultTable {
	t := metrics.NewResultTable("Table 4 — Relational Table Generation quality",
		"noise", "gold_facts", "extracted_rows", "precision", "recall", "F1")
	for _, noise := range noises {
		opts := workload.DefaultECommerceOptions()
		opts.Noise = noise
		c := workload.ECommerce(opts)
		ner := newNER(c)
		h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
		if err != nil {
			panic(fmt.Sprintf("experiments: table4: %v", err))
		}
		stats := core.EvaluateExtraction(h.Catalog(), c.GoldFacts)
		t.AddRow(noise, stats.GoldFacts, stats.Extracted, stats.Precision, stats.Recall, stats.F1)
	}
	return t
}

// Figure3EntropyCalibration measures how well each uncertainty score
// predicts incorrect answers (AUROC), by sample count M (claim:
// semantic entropy is "more predictive of model accuracy compared to
// traditional baselines").
func Figure3EntropyCalibration(ms []int) *metrics.ResultTable {
	t := metrics.NewResultTable("Figure 3 — Uncertainty calibration AUROC (series)",
		"M", "semantic", "discrete", "lexical", "meanNLL")
	items := workload.Calibration(workload.DefaultCalibrationOptions())
	clusterer := entropy.NewClusterer(slm.NewEmbedder(slm.DefaultEmbeddingDim))
	for _, m := range ms {
		gen := &slm.Generator{Temperature: 0.8, Paraphrase: true, ErrorRate: 0.05}
		rng := slm.NewRNG(7)
		var sem, disc, lex, nll []float64
		var wrong []bool
		for _, item := range items {
			gens := gen.Sample(item.Candidates, m, rng)
			rep := entropy.Assess(gens, clusterer)
			sem = append(sem, rep.SemanticH)
			disc = append(disc, rep.DiscreteH)
			lex = append(lex, rep.LexicalH)
			nll = append(nll, rep.MeanNLL)
			wrong = append(wrong, !metrics.ExactMatch(rep.MajorityAnswer, item.Gold))
		}
		t.AddRow(m,
			entropy.AUROC(sem, wrong), entropy.AUROC(disc, wrong),
			entropy.AUROC(lex, wrong), entropy.AUROC(nll, wrong))
	}
	return t
}

// Table5Ablations removes one design component at a time and measures
// cross-modal QA accuracy and retrieval recall (DESIGN.md's index,
// cue, and centrality claims).
func Table5Ablations() *metrics.ResultTable {
	t := metrics.NewResultTable("Table 5 — Ablations",
		"variant", "crossmodal_EM", "overall_EM", "recall@5", "MRR")
	c := workload.ECommerce(workload.DefaultECommerceOptions())

	type variant struct {
		name string
		opts core.HybridOptions
	}
	variants := []variant{
		{"full", core.DefaultHybridOptions()},
		{"no_cues", func() core.HybridOptions {
			o := core.DefaultHybridOptions()
			o.Index.DisableCues = true
			return o
		}()},
		{"no_centrality", func() core.HybridOptions {
			o := core.DefaultHybridOptions()
			o.Topology.DisableCentral = true
			return o
		}()},
		{"no_entity_nodes", func() core.HybridOptions {
			o := core.DefaultHybridOptions()
			o.Index.DisableEntityNodes = true
			return o
		}()},
		{"no_extraction", func() core.HybridOptions {
			o := core.DefaultHybridOptions()
			o.DisableExtraction = true
			return o
		}()},
	}
	for _, v := range variants {
		ner := newNER(c)
		h, err := core.NewHybrid(c.Sources, ner, v.opts)
		if err != nil {
			panic(fmt.Sprintf("experiments: table5 %s: %v", v.name, err))
		}
		qa := core.EvaluateQA(h, c.Queries)
		ret := core.EvaluateRetrieval(h.Retriever(), c.Queries, []int{5})
		cross := qa[workload.ClassCrossModal]
		overall := qa[workload.Class("overall")]
		t.AddRow(v.name, cross.EM, overall.EM, ret.RecallAt[5], ret.MRR)
	}
	return t
}

// Table6CostProfile compares simulated SLM vs LLM inference cost on
// the E3 workload (claim: LLM pipelines are "impractical for ...
// low-latency responses or deployment on devices with limited
// memory").
func Table6CostProfile() *metrics.ResultTable {
	t := metrics.NewResultTable("Table 6 — SLM vs LLM resource profile",
		"profile", "model_calls", "tokens", "sim_latency_ms", "resident_MiB")
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	for _, profile := range []slm.Profile{slm.SLMProfile(), slm.LLMProfile()} {
		cost := slm.NewCostModel(profile)
		ner := newNER(c).WithCost(cost)
		h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
		if err != nil {
			panic(fmt.Sprintf("experiments: table6: %v", err))
		}
		h.WithCost(cost)
		for _, q := range c.Queries {
			h.Answer(q.Text)
		}
		t.AddRow(profile.Name, cost.TotalCalls(), cost.TotalTokens(),
			float64(cost.SimulatedLatency().Microseconds())/1000, cost.MemoryBytes()>>20)
	}
	return t
}

// All runs every experiment with default parameters, in order.
func All() []*metrics.ResultTable {
	return []*metrics.ResultTable{
		Table1IndexConstruction([]int{100, 400, 1600}),
		Table2RetrievalQuality(),
		Table3MultiEntityQA(),
		Figure2LatencyScaling([]int{100, 400, 1600}),
		Table4Extraction([]float64{0, 0.3, 0.6, 0.9}),
		Figure3EntropyCalibration([]int{3, 5, 10}),
		Table5Ablations(),
		Table6CostProfile(),
		TableS1ChunkSize([]int{32, 64, 128, 256}),
		TableS2VectorIndex([]int{1, 2, 4, 8}),
	}
}
