package workload

import "fmt"

// productNames is the deterministic pool of product names; beyond the
// pool, names are synthesized as "Product X<n>".
var productNames = []string{
	"Product Alpha", "Product Beta", "Product Gamma", "Product Delta",
	"Product Epsilon", "Product Zeta", "Product Eta", "Product Theta",
	"Product Iota", "Product Kappa", "Product Lambda", "Product Sigma",
	"Product Omega", "Product Orion", "Product Vega", "Product Nova",
	"Product Atlas", "Product Titan", "Product Comet", "Product Zephyr",
}

var manufacturerNames = []string{
	"Acme Corp", "Globex", "Initech", "Umbrella Labs", "Stark Industries",
	"Wayne Enterprises", "Tyrell Systems", "Cyberdyne Works",
}

var drugNames = []string{
	"Drug A", "Drug B", "Drug C", "Drug D", "Drug E", "Drug F",
	"Drug G", "Drug H",
}

var sideEffectNames = []string{
	"nausea", "headache", "fatigue", "dizziness", "insomnia",
	"rash", "fever", "anxiety",
}

var reviewAspects = []string{
	"The battery life was excellent",
	"Shipping was slower than expected",
	"Build quality felt premium",
	"The setup process was confusing",
	"Customer support resolved the issue quickly",
	"The screen scratched within a week",
	"Performance exceeded expectations",
	"The manual was missing pages",
}

var noiseSentences = []string{
	"The weather that week was unusually mild",
	"Office renovations continued through the month",
	"A local festival drew large crowds downtown",
	"The cafeteria introduced a new lunch menu",
	"Parking remained difficult near the warehouse",
	"Several staff attended an industry conference",
}

func productName(i int) string {
	if i < len(productNames) {
		return productNames[i]
	}
	return fmt.Sprintf("Product X%d", i+1)
}

func manufacturerName(i int) string {
	if i < len(manufacturerNames) {
		return manufacturerNames[i]
	}
	return fmt.Sprintf("Vendor V%d", i+1)
}

func drugName(i int) string {
	if i < len(drugNames) {
		return drugNames[i]
	}
	return fmt.Sprintf("Drug Z%d", i+1)
}
