package workload

import (
	"fmt"
	"strings"

	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
)

// OpsOptions sizes the operations/observability corpus — the
// "JSON logs, XML configurations" modality of the paper's introduction,
// exercised as a first-class query target (logs materialize into typed
// tables the semantic operators aggregate over).
type OpsOptions struct {
	Services     int // number of services (>= 2)
	EventsPer    int // log events per service (>= 2)
	IncidentDocs int // unstructured incident reports
	Seed         uint64
}

// DefaultOpsOptions returns a laptop-scale corpus.
func DefaultOpsOptions() OpsOptions {
	return OpsOptions{Services: 4, EventsPer: 12, IncidentDocs: 3, Seed: 123}
}

// Ops generates the operations corpus: JSON log events with latencies
// and levels, an XML deployment config, and unstructured incident
// reports, plus a query workload with gold.
func Ops(opts OpsOptions) *Corpus {
	if opts.Services < 2 {
		opts.Services = 2
	}
	if opts.EventsPer < 2 {
		opts.EventsPer = 2
	}
	rng := slm.NewRNG(opts.Seed)
	c := &Corpus{Name: "ops"}

	logs := store.NewJSONStore("logs")
	incidents := store.NewTextStore("incidents")

	type service struct {
		name       string
		latencies  []int64
		errorCount int64
	}
	services := make([]*service, opts.Services)
	eventID := 0
	for i := range services {
		s := &service{name: fmt.Sprintf("SVC-%d", i+1)}
		services[i] = s
		for e := 0; e < opts.EventsPer; e++ {
			eventID++
			lat := int64(20 + rng.Intn(400))
			s.latencies = append(s.latencies, lat)
			level := "info"
			if rng.Float64() < 0.25 {
				level = "error"
				s.errorCount++
			}
			logs.AddObject(map[string]interface{}{
				"id":         fmt.Sprintf("e%d", eventID),
				"service":    s.name,
				"level":      level,
				"latency_ms": float64(lat),
			})
		}
	}

	// XML deployment configuration.
	xmlStore := store.NewXMLStore("deploy")
	var xb strings.Builder
	xb.WriteString("<deployments>")
	for i, s := range services {
		fmt.Fprintf(&xb, `<deployment id="%s"><replicas>%d</replicas><region>region-%d</region></deployment>`,
			s.name, 2+i, i%2)
	}
	xb.WriteString("</deployments>")
	if err := xmlStore.Load(strings.NewReader(xb.String())); err != nil {
		panic(fmt.Sprintf("workload: ops xml fixture: %v", err)) // static fixture; cannot fail
	}

	// Unstructured incident reports.
	for k := 0; k < opts.IncidentDocs; k++ {
		s := services[k%len(services)]
		incidents.Add(fmt.Sprintf("incident-%d", k),
			fmt.Sprintf("An incident affected %s on 2024-0%d-15. Latency spiked during the deploy window.",
				s.name, 1+k%9))
	}

	c.Sources = store.NewMulti().Add(logs).Add(xmlStore).Add(incidents)

	// --- queries with gold ---
	qn := 0
	addQuery := func(class Class, text, gold string, evidence []string) {
		qn++
		c.Queries = append(c.Queries, Query{
			ID: fmt.Sprintf("op-%02d", qn), Text: text, Class: class,
			Gold: gold, GoldEvidence: evidence,
		})
	}

	// Aggregate over materialized JSON: mean latency per service.
	for i, s := range services {
		if i >= 3 {
			break
		}
		var sum int64
		for _, l := range s.latencies {
			sum += l
		}
		// Evidence: the service's log rows; event ids are sequential
		// across services.
		evidence := []string{}
		for e := i*opts.EventsPer + 1; e <= (i+1)*opts.EventsPer; e++ {
			evidence = append(evidence, fmt.Sprintf("logs/e%d", e))
		}
		avg := float64(sum) / float64(len(s.latencies))
		addQuery(ClassAggregate,
			fmt.Sprintf("What is the average latency of %s?", s.name),
			table.FormatNumber(avg), evidence)

		addQuery(ClassAggregate,
			fmt.Sprintf("How many error events did %s have?", s.name),
			fmt.Sprintf("%d", s.errorCount), evidence)
	}

	return c
}
