package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
)

// HealthcareOptions sizes the healthcare corpus (the paper's intro
// scenario: clinical trial tables plus unstructured patient notes and
// forum posts).
type HealthcareOptions struct {
	Drugs             int     // number of drugs (>= 2)
	PatientsPerDrug   int     // treated patients per drug (>= 1)
	EffectsPerDrug    int     // distinct side effects per drug, 1..4
	ForumPostsPerDrug int     // forum documents per drug
	Noise             float64 // [0,1] distractor fraction
	Seed              uint64
}

// DefaultHealthcareOptions returns a laptop-scale corpus.
func DefaultHealthcareOptions() HealthcareOptions {
	return HealthcareOptions{Drugs: 4, PatientsPerDrug: 5, EffectsPerDrug: 2, ForumPostsPerDrug: 2, Noise: 0.2, Seed: 77}
}

// Healthcare generates the clinical corpus: a native trial-results
// table, unstructured clinical notes ("Patient P-7 received Drug B on
// 2024-03-05") and patient forums ("Patients on Drug B reported
// dizziness and fatigue"), XML facility configs, and a query workload.
func Healthcare(opts HealthcareOptions) *Corpus {
	if opts.Drugs < 2 {
		opts.Drugs = 2
	}
	if opts.PatientsPerDrug < 1 {
		opts.PatientsPerDrug = 1
	}
	if opts.EffectsPerDrug < 1 {
		opts.EffectsPerDrug = 1
	}
	if opts.EffectsPerDrug > 4 {
		opts.EffectsPerDrug = 4
	}
	rng := slm.NewRNG(opts.Seed)
	c := &Corpus{Name: "healthcare"}

	cat := table.NewCatalog()
	trials := table.New("trial_results", table.Schema{
		{Name: "drug", Type: table.TypeString},
		{Name: "efficacy_pct", Type: table.TypeFloat},
		{Name: "enrolled", Type: table.TypeInt},
	})
	cat.Put(trials)

	notes := store.NewTextStore("notes")
	forums := store.NewTextStore("forums")

	type drug struct {
		name     string
		efficacy float64
		patients []string
		effects  []string
		trialRow int
	}
	drugs := make([]*drug, opts.Drugs)
	patientCounter := 0

	for i := range drugs {
		d := &drug{
			name:     drugName(i),
			efficacy: float64(40 + rng.Intn(55)),
			trialRow: i,
		}
		drugs[i] = d
		c.drugs = append(c.drugs, d.name)
		trials.MustAppend([]table.Value{
			table.S(d.name), table.F(d.efficacy), table.I(int64(opts.PatientsPerDrug)),
		})

		// Assign side effects deterministically.
		for e := 0; e < opts.EffectsPerDrug; e++ {
			d.effects = append(d.effects, sideEffectNames[(i*3+e)%len(sideEffectNames)])
		}

		// Clinical notes: one per patient, treatment + reported effect.
		for p := 0; p < opts.PatientsPerDrug; p++ {
			patientCounter++
			pid := fmt.Sprintf("P-%d", patientCounter)
			d.patients = append(d.patients, pid)
			date := fmt.Sprintf("2024-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))
			text := fmt.Sprintf("Patient %s received %s on %s.", pid, d.name, date)
			effect := d.effects[p%len(d.effects)]
			text += fmt.Sprintf(" Patient %s reported %s.", pid, effect)
			if rng.Float64() < opts.Noise {
				text += " " + noiseSentences[rng.Intn(len(noiseSentences))] + "."
			}
			notes.Add(fmt.Sprintf("note-%d-%d", i, p), text)
			c.GoldFacts = append(c.GoldFacts,
				GoldFact{Table: "treatments", Cells: map[string]string{
					"patient": pid, "drug": d.name, "date": date,
				}},
				GoldFact{Table: "side_effects", Cells: map[string]string{
					"patient": pid, "effect": effect,
				}})
		}

		// Forum posts: aggregate side-effect mentions without patient
		// ids. At least one post per distinct effect so the forum rows
		// cover the drug's full effect profile.
		numForum := opts.ForumPostsPerDrug
		if numForum < len(d.effects) {
			numForum = len(d.effects)
		}
		for f := 0; f < numForum; f++ {
			eff := d.effects[f%len(d.effects)]
			text := fmt.Sprintf("Patients on %s reported %s.", d.name, eff)
			forums.Add(fmt.Sprintf("forum-%d-%d", i, f), text)
			c.GoldFacts = append(c.GoldFacts, GoldFact{
				Table: "side_effects", Cells: map[string]string{
					"drug": d.name, "effect": eff,
				}})
		}
	}
	c.effects = append(c.effects, sideEffectNames...)

	// XML facility configuration (semi-structured source).
	xmlStore := store.NewXMLStore("facilities")
	var xb strings.Builder
	xb.WriteString("<facilities>")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&xb, `<site id="site%d"><city>City %d</city><beds>%d</beds></site>`, i+1, i+1, 40+10*i)
	}
	xb.WriteString("</facilities>")
	if err := xmlStore.Load(strings.NewReader(xb.String())); err != nil {
		panic(fmt.Sprintf("workload: xml fixture: %v", err)) // static fixture; cannot fail
	}

	// Re-register the populated trials table: the initial Put built
	// statistics over zero rows, and refutation proofs act on stats.
	cat.Put(trials)

	c.Sources = store.NewMulti().
		Add(store.NewRelationalStore("clinic", cat)).
		Add(notes).
		Add(forums).
		Add(xmlStore)

	// --- queries with gold ---
	qn := 0
	addQuery := func(class Class, text, gold string, evidence []string) {
		qn++
		c.Queries = append(c.Queries, Query{
			ID: fmt.Sprintf("hc-%02d", qn), Text: text, Class: class,
			Gold: gold, GoldEvidence: evidence,
		})
	}

	for i, d := range drugs {
		if i >= 4 {
			break
		}
		// Single lookup: trial efficacy (structured only).
		addQuery(ClassSingleLookup,
			fmt.Sprintf("What is the efficacy of %s?", d.name),
			table.FormatNumber(d.efficacy),
			[]string{fmt.Sprintf("clinic/trial_results/%d", d.trialRow)})

		// Cross-modal: side effects live only in notes/forums.
		effects := append([]string(nil), d.effects...)
		sort.Strings(effects)
		evidence := []string{}
		for p := 0; p < len(d.patients); p++ {
			evidence = append(evidence, fmt.Sprintf("note-%d-%d", i, p))
		}
		numForum := opts.ForumPostsPerDrug
		if numForum < len(d.effects) {
			numForum = len(d.effects)
		}
		for f := 0; f < numForum; f++ {
			evidence = append(evidence, fmt.Sprintf("forum-%d-%d", i, f))
		}
		addQuery(ClassCrossModal,
			fmt.Sprintf("Which side effects were reported for %s?", d.name),
			strings.Join(effects, ", "), evidence)

		// Aggregate: patient count from extracted treatments.
		addQuery(ClassAggregate,
			fmt.Sprintf("How many patients received %s?", d.name),
			fmt.Sprintf("%d", len(d.patients)),
			evidence[:len(d.patients)])
	}

	// Comparative: efficacy of the first two drugs (the paper's intro
	// query, made quantitative).
	a, b := drugs[0], drugs[1]
	first, second := a, b
	if first.name > second.name {
		first, second = second, first
	}
	addQuery(ClassComparative,
		fmt.Sprintf("Compare the efficacy of %s and %s", a.name, b.name),
		fmt.Sprintf("%s: %s, %s: %s",
			first.name, table.FormatNumber(first.efficacy),
			second.name, table.FormatNumber(second.efficacy)),
		[]string{
			fmt.Sprintf("clinic/trial_results/%d", a.trialRow),
			fmt.Sprintf("clinic/trial_results/%d", b.trialRow),
		})

	return c
}
