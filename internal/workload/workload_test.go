package workload

import (
	"strings"
	"testing"

	"repro/internal/slm"
	"repro/internal/store"
)

func TestECommerceDeterministic(t *testing.T) {
	a := ECommerce(DefaultECommerceOptions())
	b := ECommerce(DefaultECommerceOptions())
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		if a.Queries[i].Text != b.Queries[i].Text || a.Queries[i].Gold != b.Queries[i].Gold {
			t.Fatalf("query %d differs", i)
		}
	}
	if a.Sources.Len() != b.Sources.Len() {
		t.Error("source sizes differ")
	}
}

func TestECommerceShape(t *testing.T) {
	c := ECommerce(DefaultECommerceOptions())
	if c.Sources.Len() == 0 {
		t.Fatal("no records")
	}
	kinds := map[store.Kind]bool{}
	for _, s := range c.Sources.Sources() {
		kinds[s.Kind()] = true
	}
	for _, k := range []store.Kind{store.KindText, store.KindJSON, store.KindRelational} {
		if !kinds[k] {
			t.Errorf("missing source kind %s", k)
		}
	}
	classes := map[Class]int{}
	for _, q := range c.Queries {
		classes[q.Class]++
		if q.Gold == "" || q.Text == "" || len(q.GoldEvidence) == 0 {
			t.Errorf("incomplete query %+v", q)
		}
	}
	for _, cl := range []Class{ClassSingleLookup, ClassAggregate, ClassComparative, ClassCrossModal} {
		if classes[cl] == 0 {
			t.Errorf("no queries of class %s", cl)
		}
	}
	if len(c.GoldFacts) == 0 {
		t.Error("no gold facts")
	}
}

func TestECommerceGoldConsistency(t *testing.T) {
	c := ECommerce(DefaultECommerceOptions())
	// The native sales table must contain the revenue every
	// single-lookup query asks about.
	cat := c.NativeCatalog()
	sales, err := cat.Get("sales")
	if err != nil {
		t.Fatal(err)
	}
	if sales.Len() == 0 {
		t.Fatal("empty sales table")
	}
	for _, q := range c.QueriesOf(ClassSingleLookup) {
		if !strings.Contains(q.Text, "revenue") {
			t.Errorf("unexpected lookup text %q", q.Text)
		}
	}
}

func TestECommerceMinimumSizes(t *testing.T) {
	c := ECommerce(ECommerceOptions{Products: 0, ReviewsPerProduct: 0, Quarters: 9, Seed: 1})
	if len(c.Queries) == 0 || c.Sources.Len() == 0 {
		t.Error("degenerate options not normalized")
	}
}

func TestECommerceLongDocs(t *testing.T) {
	opts := DefaultECommerceOptions()
	opts.LongDocs = true
	c := ECommerce(opts)
	// One combined document per product, named pdoc-<i>.
	pdocs := 0
	for _, rec := range c.UnstructuredDocs() {
		if strings.HasPrefix(rec.ID, "pdoc-") {
			pdocs++
			if len(strings.Fields(rec.Text)) < 20 {
				t.Errorf("long doc %s too short: %q", rec.ID, rec.Text)
			}
		}
		if strings.HasPrefix(rec.ID, "review-") || strings.HasPrefix(rec.ID, "report-") {
			t.Errorf("per-item doc %s present in LongDocs mode", rec.ID)
		}
	}
	if pdocs != opts.Products {
		t.Errorf("pdocs = %d, want %d", pdocs, opts.Products)
	}
	// Gold evidence references the combined docs, deduplicated.
	for _, q := range c.QueriesOf(ClassCrossModal) {
		seen := map[string]bool{}
		for _, e := range q.GoldEvidence {
			if seen[e] {
				t.Errorf("duplicate evidence %s in %s", e, q.ID)
			}
			seen[e] = true
			if !strings.HasPrefix(e, "pdoc-") {
				t.Errorf("evidence %s should be a pdoc", e)
			}
		}
	}
	// Gold answers are unchanged by document layout.
	plain := ECommerce(DefaultECommerceOptions())
	if len(plain.Queries) != len(c.Queries) {
		t.Fatal("query counts differ between layouts")
	}
	for i := range plain.Queries {
		if plain.Queries[i].Gold != c.Queries[i].Gold {
			t.Errorf("gold differs for %s: %q vs %q",
				plain.Queries[i].ID, plain.Queries[i].Gold, c.Queries[i].Gold)
		}
	}
}

func TestHealthcareShape(t *testing.T) {
	c := Healthcare(DefaultHealthcareOptions())
	classes := map[Class]int{}
	for _, q := range c.Queries {
		classes[q.Class]++
	}
	for _, cl := range []Class{ClassSingleLookup, ClassAggregate, ClassComparative, ClassCrossModal} {
		if classes[cl] == 0 {
			t.Errorf("no queries of class %s", cl)
		}
	}
	// Gold side-effect answers are sorted, comma-joined.
	for _, q := range c.QueriesOf(ClassCrossModal) {
		parts := strings.Split(q.Gold, ", ")
		for i := 1; i < len(parts); i++ {
			if parts[i] < parts[i-1] {
				t.Errorf("gold not sorted: %q", q.Gold)
			}
		}
	}
}

func TestHealthcareGoldFactsCoverTreatments(t *testing.T) {
	c := Healthcare(DefaultHealthcareOptions())
	tables := map[string]int{}
	for _, f := range c.GoldFacts {
		tables[f.Table]++
	}
	if tables["treatments"] == 0 || tables["side_effects"] == 0 {
		t.Errorf("gold fact tables: %v", tables)
	}
}

func TestRegisterGazetteer(t *testing.T) {
	ner := slm.NewNER()
	ECommerce(DefaultECommerceOptions()).Register(ner)
	Healthcare(DefaultHealthcareOptions()).Register(ner)
	if ner.GazetteerSize() == 0 {
		t.Fatal("nothing registered")
	}
	ents := ner.Recognize("Product Alpha and Drug A caused nausea")
	types := map[slm.EntityType]bool{}
	for _, e := range ents {
		types[e.Type] = true
	}
	if !types[slm.EntProduct] || !types[slm.EntDrug] || !types[slm.EntSideEffect] {
		t.Errorf("gazetteer incomplete: %v", ents)
	}
}

func TestDocOfAndNormalize(t *testing.T) {
	if DocOf("review-1-2#3") != "review-1-2" {
		t.Errorf("DocOf = %q", DocOf("review-1-2#3"))
	}
	if DocOf("shop/sales/4") != "shop/sales/4" {
		t.Errorf("DocOf row = %q", DocOf("shop/sales/4"))
	}
	got := NormalizeEvidence([]string{"a#0", "a#1", "b#0"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("NormalizeEvidence = %v", got)
	}
}

func TestCalibrationShape(t *testing.T) {
	items := Calibration(DefaultCalibrationOptions())
	if len(items) != DefaultCalibrationOptions().Items {
		t.Fatalf("items = %d", len(items))
	}
	nAmb := 0
	for _, it := range items {
		if len(it.Candidates) < 2 || it.Gold == "" {
			t.Errorf("bad item %+v", it)
		}
		if it.Candidates[0].Text != it.Gold {
			t.Errorf("gold must be candidate 0: %+v", it)
		}
		if it.Ambiguous {
			nAmb++
			// Flat support.
			for _, cd := range it.Candidates {
				if cd.Weight != 1 {
					t.Errorf("ambiguous item with non-flat weights: %+v", it)
				}
			}
		} else if it.Candidates[0].Weight <= it.Candidates[1].Weight {
			t.Errorf("easy item without dominant gold: %+v", it)
		}
	}
	frac := float64(nAmb) / float64(len(items))
	if frac < 0.2 || frac > 0.6 {
		t.Errorf("ambiguous fraction = %v", frac)
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	a := Calibration(DefaultCalibrationOptions())
	b := Calibration(DefaultCalibrationOptions())
	for i := range a {
		if a[i].Gold != b[i].Gold || a[i].Ambiguous != b[i].Ambiguous {
			t.Fatal("calibration not deterministic")
		}
	}
}

func TestUnstructuredDocs(t *testing.T) {
	c := ECommerce(DefaultECommerceOptions())
	docs := c.UnstructuredDocs()
	if len(docs) == 0 {
		t.Fatal("no unstructured docs")
	}
	for _, d := range docs {
		if d.Kind != store.KindText {
			t.Errorf("non-text doc %v", d.Kind)
		}
	}
}

func TestHasNoiseDoc(t *testing.T) {
	if !HasNoiseDoc("noise-1") || HasNoiseDoc("review-0-0") {
		t.Error("HasNoiseDoc broken")
	}
}
