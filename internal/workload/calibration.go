package workload

import (
	"fmt"

	"repro/internal/slm"
)

// CalibrationItem is one question for the semantic-entropy calibration
// experiment (E6): answer candidates with support weights, the gold
// answer, and whether the question is intrinsically ambiguous (flat
// support — the paper's "Can I be sued for sharing a photo?" case).
type CalibrationItem struct {
	ID         string
	Question   string
	Candidates []slm.Candidate
	Gold       string
	Ambiguous  bool
}

// CalibrationOptions sizes the calibration workload.
type CalibrationOptions struct {
	Items         int     // total questions
	AmbiguousFrac float64 // fraction with flat candidate support
	CandidatesPer int     // competing answers per question (>= 2)
	Seed          uint64
}

// DefaultCalibrationOptions returns the standard setting.
func DefaultCalibrationOptions() CalibrationOptions {
	return CalibrationOptions{Items: 120, AmbiguousFrac: 0.4, CandidatesPer: 4, Seed: 99}
}

// Calibration generates questions whose difficulty is controlled: easy
// items give the gold answer dominant support (a confident model),
// ambiguous items spread support evenly (an uncertain model). Sampling
// from these with a Generator produces exactly the low/high-entropy
// regimes of paper Section III.D.
func Calibration(opts CalibrationOptions) []CalibrationItem {
	if opts.Items < 1 {
		opts.Items = 1
	}
	if opts.CandidatesPer < 2 {
		opts.CandidatesPer = 2
	}
	rng := slm.NewRNG(opts.Seed)
	items := make([]CalibrationItem, 0, opts.Items)
	for i := 0; i < opts.Items; i++ {
		ambiguous := rng.Float64() < opts.AmbiguousFrac
		gold := fmt.Sprintf("%d units", 10+rng.Intn(90))
		cands := make([]slm.Candidate, 0, opts.CandidatesPer)
		if ambiguous {
			// Flat support: the model genuinely does not know.
			for c := 0; c < opts.CandidatesPer; c++ {
				text := gold
				if c > 0 {
					text = fmt.Sprintf("%d units", 10+rng.Intn(90))
				}
				cands = append(cands, slm.Candidate{Text: text, Weight: 1})
			}
		} else {
			cands = append(cands, slm.Candidate{Text: gold, Weight: 6})
			for c := 1; c < opts.CandidatesPer; c++ {
				cands = append(cands, slm.Candidate{
					Text:   fmt.Sprintf("%d units", 10+rng.Intn(90)),
					Weight: 0.4,
				})
			}
		}
		items = append(items, CalibrationItem{
			ID:         fmt.Sprintf("cal-%03d", i),
			Question:   fmt.Sprintf("How many units did Product X%d sell?", i),
			Candidates: cands,
			Gold:       gold,
			Ambiguous:  ambiguous,
		})
	}
	return items
}
