package workload

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
)

// ECommerceOptions sizes the e-commerce corpus (paper Section III.C's
// "large-scale e-commerce data lake with unstructured customer
// reviews, product descriptions, and sales records").
type ECommerceOptions struct {
	Products          int     // number of products (>= 2)
	ReviewsPerProduct int     // review documents per product (>= 1)
	Quarters          int     // quarters of sales history, 2..4
	Noise             float64 // [0,1] fraction of distractor content
	LongDocs          bool    // one long document per product instead of one per report/review
	Seed              uint64
}

// DefaultECommerceOptions returns a laptop-scale corpus.
func DefaultECommerceOptions() ECommerceOptions {
	return ECommerceOptions{Products: 8, ReviewsPerProduct: 4, Quarters: 4, Noise: 0.3, Seed: 42}
}

// ECommerce generates the e-commerce corpus: a native relational
// catalog (products, sales), unstructured sales reports and customer
// reviews, JSON order-event logs, and a query workload with gold.
func ECommerce(opts ECommerceOptions) *Corpus {
	if opts.Products < 2 {
		opts.Products = 2
	}
	if opts.ReviewsPerProduct < 1 {
		opts.ReviewsPerProduct = 1
	}
	if opts.Quarters < 2 {
		opts.Quarters = 2
	}
	if opts.Quarters > 4 {
		opts.Quarters = 4
	}
	rng := slm.NewRNG(opts.Seed)
	c := &Corpus{Name: "ecommerce"}

	type product struct {
		name     string
		maker    string
		price    int64
		revenue  []float64 // per quarter
		pct      []int     // change vs previous quarter (index aligns with revenue; pct[0] unused)
		stars    []int64   // review stars
		saleRow  []int     // row index in sales table per quarter
		firstRev int       // first review index (for doc ids)
	}
	products := make([]*product, opts.Products)

	cat := table.NewCatalog()
	productsTbl := table.New("products", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "manufacturer", Type: table.TypeString},
		{Name: "price", Type: table.TypeFloat},
	})
	salesTbl := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "quarter", Type: table.TypeString},
		{Name: "revenue", Type: table.TypeFloat},
	})
	cat.Put(productsTbl)
	cat.Put(salesTbl)

	reports := store.NewTextStore("reports")
	reviews := store.NewTextStore("reviews")
	logs := store.NewJSONStore("events")

	// In LongDocs mode, each product's report and review sentences
	// accumulate into one document ("pdoc-<i>") so the chunker has
	// something to split — the chunk-size ablation corpus.
	longDoc := make([]string, opts.Products)
	reportDocID := func(i int, q string) string {
		if opts.LongDocs {
			return fmt.Sprintf("pdoc-%d", i)
		}
		return fmt.Sprintf("report-%d-%s", i, q)
	}
	reviewDocID := func(i, k int) string {
		if opts.LongDocs {
			return fmt.Sprintf("pdoc-%d", i)
		}
		return fmt.Sprintf("review-%d-%d", i, k)
	}

	salesRow := 0
	for i := range products {
		p := &product{
			name:  productName(i),
			maker: manufacturerName(i % len(manufacturerNames)),
			price: int64(10 + rng.Intn(90)),
		}
		products[i] = p
		c.products = append(c.products, p.name)
		productsTbl.MustAppend([]table.Value{table.S(p.name), table.S(p.maker), table.F(float64(p.price))})

		// Quarterly revenue: integer-valued floats so sums are exact.
		units := int64(20 + rng.Intn(80))
		for q := 0; q < opts.Quarters; q++ {
			if q > 0 {
				delta := int64(rng.Intn(41)) - 18 // -18..+22 units drift
				units += delta
				if units < 5 {
					units = 5
				}
			}
			rev := float64(units * p.price)
			p.revenue = append(p.revenue, rev)
			p.saleRow = append(p.saleRow, salesRow)
			salesRow++
			salesTbl.MustAppend([]table.Value{
				table.S(p.name), table.S(quarterName(q)), table.F(rev),
			})
		}

		// Sales report docs: one per quarter transition with a nonzero
		// change, phrased exactly as the paper's example.
		p.pct = make([]int, opts.Quarters)
		for q := 1; q < opts.Quarters; q++ {
			prev, cur := p.revenue[q-1], p.revenue[q]
			pct := int(math.Round((cur - prev) / prev * 100))
			p.pct[q] = pct
			if pct == 0 {
				continue
			}
			verb := "increased"
			if pct < 0 {
				verb = "decreased"
			}
			sentence := fmt.Sprintf("%s sales %s %d%% in %s.", p.name, verb, abs(pct), quarterName(q))
			doc := sentence
			if rng.Float64() < opts.Noise {
				doc += " " + noiseSentences[rng.Intn(len(noiseSentences))] + "."
			}
			if opts.LongDocs {
				longDoc[i] += doc + " "
			} else {
				reports.Add(reportDocID(i, quarterName(q)), doc)
			}
			dir := "up"
			if pct < 0 {
				dir = "down"
			}
			c.GoldFacts = append(c.GoldFacts, GoldFact{
				Table: "metric_changes",
				Cells: map[string]string{
					"product":    p.name,
					"quarter":    quarterName(q),
					"metric":     "sales",
					"direction":  dir,
					"change_pct": fmt.Sprintf("%d", pct), // signed
				},
			})
		}

		// Review docs.
		p.firstRev = i * opts.ReviewsPerProduct
		for k := 0; k < opts.ReviewsPerProduct; k++ {
			stars := int64(1 + rng.Intn(5))
			p.stars = append(p.stars, stars)
			sentence := fmt.Sprintf("Customer C-%d rated %s %d stars.", p.firstRev+k+1, p.name, stars)
			doc := sentence + " " + reviewAspects[rng.Intn(len(reviewAspects))] + "."
			if rng.Float64() < opts.Noise {
				doc += " " + noiseSentences[rng.Intn(len(noiseSentences))] + "."
			}
			if opts.LongDocs {
				longDoc[i] += doc + " "
			} else {
				reviews.Add(reviewDocID(i, k), doc)
			}
			c.GoldFacts = append(c.GoldFacts, GoldFact{
				Table: "ratings",
				Cells: map[string]string{
					"product": p.name,
					"stars":   fmt.Sprintf("%d", stars),
				},
			})
		}

		if opts.LongDocs && longDoc[i] != "" {
			reports.Add(fmt.Sprintf("pdoc-%d", i), strings.TrimSpace(longDoc[i]))
		}

		// JSON order events.
		logs.AddObject(map[string]interface{}{
			"id": fmt.Sprintf("o%d", i), "product": p.name,
			"event": "order", "latency_ms": float64(50 + rng.Intn(200)),
		})
	}

	// Pure-noise documents.
	for k := 0; k < int(opts.Noise*float64(opts.Products)); k++ {
		reports.Add(fmt.Sprintf("noise-%d", k),
			noiseSentences[k%len(noiseSentences)]+". "+noiseSentences[(k+1)%len(noiseSentences)]+".")
	}
	// Extraction traps: speculative claims that surface-pattern rules
	// wrongly extract (they are NOT gold facts), so extraction
	// precision degrades as noise rises — the realistic failure mode
	// of rule-driven table generation. Traps carry no product or
	// quarter, so they cannot corrupt the QA gold answers.
	for k := 0; k < int(opts.Noise*float64(opts.Products)); k++ {
		reports.Add(fmt.Sprintf("trap-%d", k),
			fmt.Sprintf("Rumors claimed sales rose %d%% last year.", 5+k))
	}

	// Re-register the fully-populated tables: the first Put (empty,
	// schema registration) built statistics and zone maps over zero
	// rows, and rows appended in place since are invisible to them.
	// Stats must describe the final data — refutation proofs
	// (emptyfold, zone pruning) act on them, not just estimates.
	cat.Put(productsTbl)
	cat.Put(salesTbl)

	c.Sources = store.NewMulti().
		Add(store.NewRelationalStore("shop", cat)).
		Add(reports).
		Add(reviews).
		Add(logs)

	c.manufacturers = append(c.manufacturers, manufacturerNames...)

	// --- queries with gold ---
	qn := 0
	addQuery := func(class Class, text, gold string, evidence []string) {
		qn++
		c.Queries = append(c.Queries, Query{
			ID: fmt.Sprintf("ec-%02d", qn), Text: text, Class: class,
			Gold: gold, GoldEvidence: evidence,
		})
	}

	lastQ := quarterName(opts.Quarters - 1)
	for i, p := range products {
		if i >= 6 { // bound workload size; corpus can be larger
			break
		}
		q := opts.Quarters - 1
		// Single lookup.
		addQuery(ClassSingleLookup,
			fmt.Sprintf("What was the revenue of %s in %s?", p.name, lastQ),
			table.FormatNumber(p.revenue[q]),
			[]string{fmt.Sprintf("shop/sales/%d", p.saleRow[q])})
		// Cross-modal rating.
		var starSum int64
		evidence := make([]string, 0, len(p.stars))
		for k, s := range p.stars {
			starSum += s
			evidence = appendUnique(evidence, reviewDocID(i, k))
		}
		avg := float64(starSum) / float64(len(p.stars))
		addQuery(ClassCrossModal,
			fmt.Sprintf("What is the average rating of %s?", p.name),
			table.FormatNumber(avg), evidence)
	}

	// Aggregate: total revenue in the last quarter.
	var total float64
	aggEvidence := make([]string, 0, len(products))
	for _, p := range products {
		total += p.revenue[opts.Quarters-1]
		aggEvidence = append(aggEvidence, fmt.Sprintf("shop/sales/%d", p.saleRow[opts.Quarters-1]))
	}
	addQuery(ClassAggregate,
		fmt.Sprintf("Find the total revenue of all products in %s", lastQ),
		table.FormatNumber(total), aggEvidence)

	// Comparative: first two products, last quarter.
	a, b := products[0], products[1]
	q := opts.Quarters - 1
	pair := []*struct {
		name string
		rev  float64
	}{{a.name, a.revenue[q]}, {b.name, b.revenue[q]}}
	if pair[0].name > pair[1].name {
		pair[0], pair[1] = pair[1], pair[0]
	}
	addQuery(ClassComparative,
		fmt.Sprintf("Compare total revenue for %s and %s in %s", a.name, b.name, lastQ),
		fmt.Sprintf("%s: %s, %s: %s",
			pair[0].name, table.FormatNumber(pair[0].rev),
			pair[1].name, table.FormatNumber(pair[1].rev)),
		[]string{
			fmt.Sprintf("shop/sales/%d", a.saleRow[q]),
			fmt.Sprintf("shop/sales/%d", b.saleRow[q]),
		})

	// Cross-modal join: average rating of products whose sales rose
	// more than 15% in the last quarter (the paper's flagship query).
	var joinStars []int64
	var joinEvidence []string
	for i, p := range products {
		if p.pct[q] <= 15 {
			continue
		}
		joinStars = append(joinStars, p.stars...)
		joinEvidence = appendUnique(joinEvidence, reportDocID(i, lastQ))
		for k := range p.stars {
			joinEvidence = appendUnique(joinEvidence, reviewDocID(i, k))
		}
	}
	if len(joinStars) > 0 {
		var sum int64
		for _, s := range joinStars {
			sum += s
		}
		addQuery(ClassCrossModalJoin,
			fmt.Sprintf("What is the average rating of products with a sales increase of more than 15%% in %s?", lastQ),
			table.FormatNumber(float64(sum)/float64(len(joinStars))),
			joinEvidence)
	}

	return c
}

func quarterName(q int) string { return fmt.Sprintf("Q%d", q+1) }

// appendUnique appends s unless already present (gold evidence lists
// collapse when LongDocs merges documents).
func appendUnique(xs []string, s string) []string {
	for _, x := range xs {
		if x == s {
			return xs
		}
	}
	return append(xs, s)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NativeCatalog returns the corpus's native relational catalog (the
// tables that exist without extraction), for the Text-to-SQL baseline.
func (c *Corpus) NativeCatalog() *table.Catalog {
	for _, s := range c.Sources.Sources() {
		if rs, ok := s.(*store.RelationalStore); ok {
			return rs.Catalog()
		}
	}
	return table.NewCatalog()
}

// UnstructuredDocs returns all unstructured document records, the
// input to extraction quality evaluation.
func (c *Corpus) UnstructuredDocs() []store.Record {
	var out []store.Record
	for _, s := range c.Sources.Sources() {
		if s.Kind() == store.KindText {
			out = append(out, s.Records()...)
		}
	}
	return out
}

// HasNoiseDoc reports whether the record id is a pure-noise document —
// used to verify retrieval avoids distractors.
func HasNoiseDoc(id string) bool { return strings.HasPrefix(id, "noise-") }
