// Package workload generates the synthetic corpora and query workloads
// the experiment suite runs on. The paper evaluates on proprietary
// e-commerce and healthcare data it does not publish; these generators
// produce the same *shapes* — structured tables, semi-structured logs,
// unstructured reviews/notes — with exact ground truth attached to
// every query, which the paper's unsupervised setting lacks (see
// DESIGN.md §2 for the substitution rationale).
//
// All generation is deterministic under a seed.
package workload

import (
	"strings"

	"repro/internal/slm"
	"repro/internal/store"
)

// Class buckets queries by the capability they exercise — the rows of
// the Multi-Entity QA accuracy table (experiment E3).
type Class string

// Query classes.
const (
	ClassSingleLookup   Class = "single_lookup"    // one entity, structured answer
	ClassAggregate      Class = "aggregate"        // SUM/AVG/COUNT over structured data
	ClassComparative    Class = "comparative"      // compare metric across entities
	ClassCrossModal     Class = "cross_modal"      // answer only in unstructured text
	ClassCrossModalJoin Class = "cross_modal_join" // join extracted + structured facts
)

// Query is one evaluation item with its gold answer and gold evidence.
type Query struct {
	ID           string
	Text         string
	Class        Class
	Gold         string   // exact expected answer string
	GoldEvidence []string // record-level ids containing the answer
}

// GoldFact is one gold extraction row for the table-generation
// experiment (E5): the table it belongs to and its expected cells.
type GoldFact struct {
	Table string
	Cells map[string]string
}

// Corpus bundles generated sources, queries, and gold extraction facts.
type Corpus struct {
	Name      string
	Sources   *store.Multi
	Queries   []Query
	GoldFacts []GoldFact
	// Vocabulary registered into a NER gazetteer by Register.
	products      []string
	manufacturers []string
	drugs         []string
	effects       []string
}

// Register adds the corpus's domain vocabulary to the recognizer — the
// lightweight domain adaptation step a real deployment would do with a
// fine-tuned tagger.
func (c *Corpus) Register(ner *slm.NER) {
	if len(c.products) > 0 {
		ner.AddGazetteer(slm.EntProduct, c.products...)
	}
	if len(c.manufacturers) > 0 {
		ner.AddGazetteer(slm.EntManufacturer, c.manufacturers...)
	}
	if len(c.drugs) > 0 {
		ner.AddGazetteer(slm.EntDrug, c.drugs...)
	}
	if len(c.effects) > 0 {
		ner.AddGazetteer(slm.EntSideEffect, c.effects...)
	}
}

// Vocab returns the corpus's domain vocabulary keyed by kind
// ("product", "manufacturer", "drug", "side_effect") — the public-API
// counterpart of Register for callers using unisem.System.
func (c *Corpus) Vocab() map[string][]string {
	out := map[string][]string{}
	if len(c.products) > 0 {
		out["product"] = append([]string(nil), c.products...)
	}
	if len(c.manufacturers) > 0 {
		out["manufacturer"] = append([]string(nil), c.manufacturers...)
	}
	if len(c.drugs) > 0 {
		out["drug"] = append([]string(nil), c.drugs...)
	}
	if len(c.effects) > 0 {
		out["side_effect"] = append([]string(nil), c.effects...)
	}
	return out
}

// QueriesOf returns the corpus queries of one class.
func (c *Corpus) QueriesOf(class Class) []Query {
	var out []Query
	for _, q := range c.Queries {
		if q.Class == class {
			out = append(out, q)
		}
	}
	return out
}

// DocOf normalizes a retrieved evidence id to record granularity:
// chunk ids "doc-3#2" become "doc-3"; row ids pass through.
func DocOf(id string) string {
	if idx := strings.IndexByte(id, '#'); idx >= 0 {
		return id[:idx]
	}
	return id
}

// NormalizeEvidence maps retrieved ids to record granularity and
// deduplicates, preserving order — the form gold evidence uses.
func NormalizeEvidence(ids []string) []string {
	seen := make(map[string]bool, len(ids))
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		d := DocOf(id)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}
