package extract

import (
	"testing"

	"repro/internal/slm"
	"repro/internal/table"
)

func testNER() *slm.NER {
	n := slm.NewNER()
	n.AddGazetteer(slm.EntProduct, "Product Alpha", "Product Beta", "Widget Pro")
	n.AddGazetteer(slm.EntDrug, "Drug A", "Drug B")
	n.AddGazetteer(slm.EntSideEffect, "nausea", "fatigue", "headache", "dizziness")
	return n
}

func testEngine() *Engine {
	return NewEngine(testNER(), Rules()...)
}

func cellsOf(t *testing.T, xs []Extraction, tableName string) []map[string]table.Value {
	t.Helper()
	var out []map[string]table.Value
	for _, x := range xs {
		if x.Table == tableName {
			out = append(out, x.Cells)
		}
	}
	return out
}

func TestMetricChangeExtraction(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Q2 sales increased 20%.")
	rows := cellsOf(t, xs, "metric_changes")
	if len(rows) != 1 {
		t.Fatalf("extractions = %v", xs)
	}
	c := rows[0]
	if c["quarter"].Str() != "Q2" || c["metric"].Str() != "sales" ||
		c["direction"].Str() != "up" || c["change_pct"].Float() != 20 {
		t.Errorf("cells = %v", c)
	}
}

func TestMetricChangeDown(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Customer satisfaction fell 12% in Q3.")
	rows := cellsOf(t, xs, "metric_changes")
	if len(rows) != 1 {
		t.Fatalf("extractions = %v", xs)
	}
	if rows[0]["direction"].Str() != "down" || rows[0]["metric"].Str() != "satisfaction" {
		t.Errorf("cells = %v", rows[0])
	}
}

func TestMetricChangeRequiresPercent(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Sales increased dramatically in Q2.")
	if rows := cellsOf(t, xs, "metric_changes"); len(rows) != 0 {
		t.Errorf("should not extract without a percent: %v", rows)
	}
}

func TestProductSalesExtraction(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Product Alpha sold 42 units in Q2.")
	rows := cellsOf(t, xs, "product_sales")
	if len(rows) != 1 {
		t.Fatalf("extractions = %v", xs)
	}
	c := rows[0]
	if c["product"].Str() != "Product Alpha" || c["units"].Int() != 42 || c["quarter"].Str() != "Q2" {
		t.Errorf("cells = %v", c)
	}
}

func TestRevenueExtraction(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Revenue reached $2.5 million in Q3.")
	rows := cellsOf(t, xs, "revenues")
	if len(rows) != 1 {
		t.Fatalf("extractions = %v", xs)
	}
	if rows[0]["amount_usd"].Float() != 2.5e6 || rows[0]["quarter"].Str() != "Q3" {
		t.Errorf("cells = %v", rows[0])
	}
}

func TestRatingExtraction(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Product Beta was rated 4.5 stars by reviewers.")
	rows := cellsOf(t, xs, "ratings")
	if len(rows) != 1 {
		t.Fatalf("extractions = %v", xs)
	}
	if rows[0]["product"].Str() != "Product Beta" || rows[0]["stars"].Float() != 4.5 {
		t.Errorf("cells = %v", rows[0])
	}
}

func TestTreatmentExtraction(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Patient P-12 received Drug A on 2024-05-01.")
	rows := cellsOf(t, xs, "treatments")
	if len(rows) != 1 {
		t.Fatalf("extractions = %v", xs)
	}
	c := rows[0]
	if c["patient"].Str() != "P-12" || c["drug"].Str() != "Drug A" || c["date"].Str() != "2024-05-01" {
		t.Errorf("cells = %v", c)
	}
}

func TestSideEffectMultiple(t *testing.T) {
	xs := testEngine().ExtractDoc("d1", "Patient P-12 reported nausea and fatigue after Drug A.")
	rows := cellsOf(t, xs, "side_effects")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	effects := map[string]bool{}
	for _, r := range rows {
		effects[r["effect"].Str()] = true
		if r["patient"].Str() != "P-12" || r["drug"].Str() != "Drug A" {
			t.Errorf("cells = %v", r)
		}
	}
	if !effects["nausea"] || !effects["fatigue"] {
		t.Errorf("effects = %v", effects)
	}
}

func TestMultiSentenceDoc(t *testing.T) {
	doc := "Q1 revenue grew 5%. Product Alpha sold 10 units in Q1. Patient P-1 received Drug B on 2024-01-02."
	xs := testEngine().ExtractDoc("d", doc)
	tables := map[string]bool{}
	for _, x := range xs {
		tables[x.Table] = true
	}
	for _, want := range []string{"metric_changes", "product_sales", "treatments"} {
		if !tables[want] {
			t.Errorf("missing table %s in %v", want, tables)
		}
	}
}

func TestNoFalsePositivesOnPlainText(t *testing.T) {
	xs := testEngine().ExtractDoc("d", "The weather was pleasant. Nothing else happened today.")
	if len(xs) != 0 {
		t.Errorf("spurious extractions: %v", xs)
	}
}

func TestMergeCreatesTables(t *testing.T) {
	c := table.NewCatalog()
	xs := testEngine().ExtractDoc("d", "Q2 sales increased 20%. Q3 sales decreased 5%.")
	if err := Merge(c, xs); err != nil {
		t.Fatal(err)
	}
	tbl, err := c.Get("metric_changes")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("rows = %d", tbl.Len())
	}
	if tbl.Schema.ColIndex("change_pct") < 0 {
		t.Errorf("schema = %v", tbl.Schema.Names())
	}
}

func TestMergeDeduplicates(t *testing.T) {
	c := table.NewCatalog()
	xs := testEngine().ExtractDoc("d", "Q2 sales increased 20%.")
	xs = append(xs, xs...) // duplicate
	if err := Merge(c, xs); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Get("metric_changes")
	if tbl.Len() != 1 {
		t.Errorf("dedup failed: %d rows", tbl.Len())
	}
	// Second merge of the same extraction is also a no-op.
	if err := Merge(c, xs[:1]); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("re-merge duplicated: %d rows", tbl.Len())
	}
}

func TestMergeSchemaExtension(t *testing.T) {
	c := table.NewCatalog()
	// First extraction without quarter column.
	x1 := Extraction{Table: "t", Cells: map[string]table.Value{"a": table.S("x")}}
	if err := Merge(c, []Extraction{x1}); err != nil {
		t.Fatal(err)
	}
	// Second with a new column.
	x2 := Extraction{Table: "t", Cells: map[string]table.Value{"a": table.S("y"), "b": table.I(1)}}
	if err := Merge(c, []Extraction{x2}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Get("t")
	if tbl.Schema.ColIndex("b") < 0 {
		t.Fatalf("schema not extended: %v", tbl.Schema.Names())
	}
	if !tbl.Rows[0][tbl.Schema.ColIndex("b")].IsNull() {
		t.Error("backfill should be NULL")
	}
}

func TestMergeMixedNumericWidensToFloat(t *testing.T) {
	c := table.NewCatalog()
	xs := []Extraction{
		{Table: "m", Cells: map[string]table.Value{"v": table.I(1)}},
		{Table: "m", Cells: map[string]table.Value{"v": table.F(2.5)}},
	}
	if err := Merge(c, xs); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Get("m")
	if tbl.Schema[0].Type != table.TypeFloat {
		t.Errorf("type = %v", tbl.Schema[0].Type)
	}
}

func TestParseMoney(t *testing.T) {
	tests := map[string]float64{
		"$2.5 million": 2.5e6,
		"$1,200":       1200,
		"900 dollars":  900,
		"$3 billion":   3e9,
		"garbage":      0,
	}
	for in, want := range tests {
		if got := parseMoney(in); got != want {
			t.Errorf("parseMoney(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestEngineCostAccounting(t *testing.T) {
	cost := slm.NewCostModel(slm.SLMProfile())
	e := NewEngine(testNER(), Rules()...).WithCost(cost)
	e.ExtractDoc("d", "One sentence. Two sentences.")
	if cost.Calls(slm.OpGenerate) != 2 {
		t.Errorf("calls = %d, want 2", cost.Calls(slm.OpGenerate))
	}
}

func TestRuleNames(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if r.Name() == "" || seen[r.Name()] {
			t.Errorf("bad rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
}
