// Package extract implements SLM-driven Relational Table Generation
// (paper Section III.C, task 1): converting free text like "Q2 sales
// increased 20%" into typed relational rows ("Quarter | Metric |
// Change"), which then feed the TableQA engine.
//
// Extraction is rule-driven over the simulated SLM's NER output: each
// Rule matches a configuration of entity types and trigger verbs
// within one sentence and emits a row for a target table. The Engine
// runs all rules over all sentences and merges the rows into a
// table.Catalog with induced schemas.
package extract

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/par"
	"repro/internal/slm"
	"repro/internal/table"
)

// Extraction is one extracted row before merging: the target table,
// the cells by column name, and provenance.
type Extraction struct {
	Table  string
	Cells  map[string]table.Value
	DocID  string
	Source string // sentence the row came from
}

// Rule matches one relational pattern in a tagged sentence.
type Rule interface {
	// Name identifies the rule for diagnostics.
	Name() string
	// Apply returns extractions found in the sentence. ents are the
	// sentence's recognized entities in offset order.
	Apply(docID, sentence string, ents []slm.Entity) []Extraction
}

// Engine runs rules over documents and accumulates typed tables.
type Engine struct {
	ner   *slm.NER
	rules []Rule
	cost  *slm.CostModel
}

// NewEngine returns an engine with the given recognizer and rules.
// Pass Rules() for the built-in set.
func NewEngine(ner *slm.NER, rules ...Rule) *Engine {
	return &Engine{ner: ner, rules: rules}
}

// WithCost attaches a cost model accounting each sentence pass as one
// simulated SLM call. It returns e.
func (e *Engine) WithCost(c *slm.CostModel) *Engine {
	e.cost = c
	return e
}

// ExtractDoc runs every rule over every sentence of the document. It is
// safe to call from multiple goroutines: the engine's recognizer, rules
// and cost model are all read-only or internally synchronized.
func (e *Engine) ExtractDoc(docID, text string) []Extraction {
	var out []Extraction
	for _, sent := range slm.SplitSentences(text) {
		ents := e.ner.Recognize(sent.Text)
		if e.cost != nil {
			e.cost.Record(slm.OpGenerate, len(slm.Tokenize(sent.Text)))
		}
		for _, r := range e.rules {
			out = append(out, r.Apply(docID, sent.Text, ents)...)
		}
	}
	return out
}

// Doc is one unstructured document queued for batch extraction.
type Doc struct {
	ID   string
	Text string
}

// ExtractDocs runs ExtractDoc over every document with up to workers
// goroutines (<= 0 means GOMAXPROCS) and concatenates the results in
// document order, so the output is identical to a sequential loop over
// ExtractDoc regardless of scheduling.
func (e *Engine) ExtractDocs(docs []Doc, workers int) []Extraction {
	perDoc := make([][]Extraction, len(docs))
	par.ForEach(len(docs), workers, func(i int) {
		perDoc[i] = e.ExtractDoc(docs[i].ID, docs[i].Text)
	})
	var out []Extraction
	for _, xs := range perDoc {
		out = append(out, xs...)
	}
	return out
}

// Merge folds extractions into the catalog, creating tables with
// induced schemas on first sight and appending rows thereafter. Rows
// are deduplicated per table on their full cell content. Columns added
// by later extractions extend the schema with NULL backfill.
func Merge(c *table.Catalog, extractions []Extraction) error {
	// Group by table, collect the union of columns per table.
	byTable := make(map[string][]Extraction)
	var order []string
	for _, x := range extractions {
		if _, ok := byTable[x.Table]; !ok {
			order = append(order, x.Table)
		}
		byTable[x.Table] = append(byTable[x.Table], x)
	}
	sort.Strings(order)
	for _, name := range order {
		xs := byTable[name]
		cols, types := unionColumns(xs)
		tbl, err := c.Get(name)
		if err != nil {
			schema := make(table.Schema, len(cols))
			for i, col := range cols {
				schema[i] = table.Column{Name: col, Type: types[col]}
			}
			tbl = table.New(name, schema)
			c.Put(tbl)
		} else {
			for _, col := range cols {
				if tbl.Schema.ColIndex(col) < 0 {
					tbl.Schema = append(tbl.Schema, table.Column{Name: col, Type: types[col]})
					for i := range tbl.Rows {
						tbl.Rows[i] = append(tbl.Rows[i], table.Null(types[col]))
					}
				}
			}
		}
		seen := make(map[string]bool, tbl.Len())
		for _, row := range tbl.Rows {
			seen[rowKey(row)] = true
		}
		for _, x := range xs {
			row := make([]table.Value, len(tbl.Schema))
			for i, col := range tbl.Schema {
				if v, ok := x.Cells[col.Name]; ok {
					row[i] = coerce(v, col.Type)
				} else {
					row[i] = table.Null(col.Type)
				}
			}
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			if err := tbl.Append(row); err != nil {
				return fmt.Errorf("extract: merge into %s: %w", name, err)
			}
		}
		// Re-register even when mutated in place so the catalog epoch
		// advances and epoch-keyed plan/index caches invalidate.
		c.Put(tbl)
	}
	return nil
}

// unionColumns returns the sorted union of column names over the
// extractions and the dominant type per column.
func unionColumns(xs []Extraction) ([]string, map[string]table.ColType) {
	types := make(map[string]table.ColType)
	counts := make(map[string]map[table.ColType]int)
	for _, x := range xs {
		for col, v := range x.Cells {
			if counts[col] == nil {
				counts[col] = make(map[table.ColType]int)
			}
			counts[col][v.Kind()]++
		}
	}
	cols := make([]string, 0, len(counts))
	for col, byType := range counts {
		cols = append(cols, col)
		best, bestN := table.TypeString, -1
		// Deterministic winner: highest count, then widest type wins
		// ties via fixed preference order.
		for _, t := range []table.ColType{table.TypeFloat, table.TypeInt, table.TypeDate, table.TypeBool, table.TypeString} {
			if n := byType[t]; n > bestN {
				best, bestN = t, n
			}
		}
		// Mixed int/float columns widen to float.
		if byType[table.TypeInt] > 0 && byType[table.TypeFloat] > 0 {
			best = table.TypeFloat
		}
		types[col] = best
	}
	sort.Strings(cols)
	return cols, types
}

func coerce(v table.Value, t table.ColType) table.Value {
	if v.IsNull() || v.Kind() == t {
		return v
	}
	switch {
	case t == table.TypeFloat && v.Kind() == table.TypeInt:
		return table.F(v.Float())
	case t == table.TypeString:
		return table.S(v.String())
	default:
		parsed, err := table.Parse(t, v.String())
		if err != nil {
			return table.Null(t)
		}
		return parsed
	}
}

func rowKey(row []table.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}
