package extract

import (
	"strconv"
	"strings"

	"repro/internal/slm"
	"repro/internal/table"
)

// Rules returns the built-in rule set covering the paper's running
// examples: business metric changes, product sales, revenues, ratings,
// clinical treatments and patient-reported side effects.
func Rules() []Rule {
	return []Rule{
		MetricChangeRule{},
		ProductSalesRule{},
		RevenueRule{},
		RatingRule{},
		TreatmentRule{},
		SideEffectRule{},
	}
}

// verbDirection maps trigger verbs to a change direction.
var verbDirection = map[string]string{
	"increased": "up", "rose": "up", "grew": "up", "climbed": "up",
	"improved": "up", "gained": "up",
	"decreased": "down", "fell": "down", "dropped": "down",
	"declined": "down", "worsened": "down", "lost": "down",
}

// metricWords are the business metrics the change rule recognizes.
var metricWords = map[string]string{
	"sales": "sales", "revenue": "revenue", "satisfaction": "satisfaction",
	"returns": "returns", "orders": "orders", "enrollment": "enrollment",
	"traffic": "traffic", "margin": "margin",
}

// MetricChangeRule extracts "Q2 sales increased 20%" style sentences
// into metric_changes(quarter, metric, direction, change_pct) — the
// paper's own worked example of Relational Table Generation.
type MetricChangeRule struct{}

// Name implements Rule.
func (MetricChangeRule) Name() string { return "metric_change" }

// Apply implements Rule.
func (MetricChangeRule) Apply(docID, sentence string, ents []slm.Entity) []Extraction {
	words := lowerWords(sentence)
	var metric, direction string
	for _, w := range words {
		if m, ok := metricWords[w]; ok && metric == "" {
			metric = m
		}
		if d, ok := verbDirection[w]; ok && direction == "" {
			direction = d
		}
	}
	if metric == "" || direction == "" {
		return nil
	}
	pct, pctOK := firstEntity(ents, slm.EntPercent)
	if !pctOK {
		return nil
	}
	// change_pct is signed: "decreased 12%" stores -12, so threshold
	// queries ("increase of more than 15%") filter correctly.
	change := parsePercent(pct.Canonical)
	if direction == "down" {
		change = -change
	}
	cells := map[string]table.Value{
		"metric":     table.S(metric),
		"direction":  table.S(direction),
		"change_pct": table.F(change),
	}
	if q, ok := firstEntity(ents, slm.EntQuarter); ok {
		cells["quarter"] = table.S(normalizeQuarter(q.Canonical))
	}
	if p, ok := firstEntity(ents, slm.EntProduct); ok {
		cells["product"] = table.S(titleCase(p.Canonical))
	}
	return []Extraction{{Table: "metric_changes", Cells: cells, DocID: docID, Source: sentence}}
}

// ProductSalesRule extracts "Product Alpha sold 42 units in Q2" into
// product_sales(product, units, quarter).
type ProductSalesRule struct{}

// Name implements Rule.
func (ProductSalesRule) Name() string { return "product_sales" }

// Apply implements Rule.
func (ProductSalesRule) Apply(docID, sentence string, ents []slm.Entity) []Extraction {
	if !containsAny(sentence, "sold", "shipped", "moved") {
		return nil
	}
	prod, ok := firstEntity(ents, slm.EntProduct)
	if !ok {
		return nil
	}
	qty, ok := firstEntity(ents, slm.EntQuantity)
	if !ok {
		return nil
	}
	cells := map[string]table.Value{
		"product": table.S(titleCase(prod.Canonical)),
		"units":   table.I(parseLeadingInt(qty.Canonical)),
	}
	if q, ok := firstEntity(ents, slm.EntQuarter); ok {
		cells["quarter"] = table.S(normalizeQuarter(q.Canonical))
	}
	return []Extraction{{Table: "product_sales", Cells: cells, DocID: docID, Source: sentence}}
}

// RevenueRule extracts "Revenue reached $2.5 million in Q3" into
// revenues(quarter, amount_usd).
type RevenueRule struct{}

// Name implements Rule.
func (RevenueRule) Name() string { return "revenue" }

// Apply implements Rule.
func (RevenueRule) Apply(docID, sentence string, ents []slm.Entity) []Extraction {
	if !containsAny(sentence, "revenue", "sales") ||
		!containsAny(sentence, "reached", "totaled", "totalled", "recorded", "hit", "was") {
		return nil
	}
	money, ok := firstEntity(ents, slm.EntMoney)
	if !ok {
		return nil
	}
	cells := map[string]table.Value{
		"amount_usd": table.F(parseMoney(money.Text)),
	}
	if q, ok := firstEntity(ents, slm.EntQuarter); ok {
		cells["quarter"] = table.S(normalizeQuarter(q.Canonical))
	}
	if p, ok := firstEntity(ents, slm.EntProduct); ok {
		cells["product"] = table.S(titleCase(p.Canonical))
	}
	return []Extraction{{Table: "revenues", Cells: cells, DocID: docID, Source: sentence}}
}

// RatingRule extracts "Product Alpha was rated 4.5 stars" into
// ratings(product, stars).
type RatingRule struct{}

// Name implements Rule.
func (RatingRule) Name() string { return "rating" }

// Apply implements Rule.
func (RatingRule) Apply(docID, sentence string, ents []slm.Entity) []Extraction {
	rating, ok := firstEntity(ents, slm.EntRating)
	if !ok {
		return nil
	}
	prod, ok := firstEntity(ents, slm.EntProduct)
	if !ok {
		// Fall back to a proper-noun subject.
		if prod, ok = firstEntity(ents, slm.EntMisc); !ok {
			return nil
		}
	}
	stars, err := strconv.ParseFloat(rating.Canonical, 64)
	if err != nil {
		return nil
	}
	cells := map[string]table.Value{
		"product": table.S(titleCase(prod.Canonical)),
		"stars":   table.F(stars),
	}
	// Keep the reviewer id when present: distinct reviews awarding the
	// same stars must stay distinct rows, or averages skew.
	if reviewer, ok := firstEntity(ents, slm.EntID); ok {
		cells["reviewer"] = table.S(strings.ToUpper(reviewer.Canonical))
	}
	return []Extraction{{
		Table:  "ratings",
		Cells:  cells,
		DocID:  docID,
		Source: sentence,
	}}
}

// TreatmentRule extracts "Patient P-12 received Drug A on 2024-05-01"
// into treatments(patient, drug, date) — the paper's healthcare edge
// example ("Patient X received Drug Y on Date Z").
type TreatmentRule struct{}

// Name implements Rule.
func (TreatmentRule) Name() string { return "treatment" }

// Apply implements Rule.
func (TreatmentRule) Apply(docID, sentence string, ents []slm.Entity) []Extraction {
	if !containsAny(sentence, "received", "prescribed", "administered", "took", "given") {
		return nil
	}
	patient, ok := firstEntity(ents, slm.EntID)
	if !ok {
		return nil
	}
	drug, ok := firstEntity(ents, slm.EntDrug)
	if !ok {
		return nil
	}
	cells := map[string]table.Value{
		"patient": table.S(strings.ToUpper(patient.Canonical)),
		"drug":    table.S(titleCase(drug.Canonical)),
	}
	if d, ok := firstEntity(ents, slm.EntDate); ok {
		cells["date"] = table.D(d.Canonical)
	}
	return []Extraction{{Table: "treatments", Cells: cells, DocID: docID, Source: sentence}}
}

// SideEffectRule extracts "Patient P-12 reported nausea and fatigue"
// into side_effects(patient, effect), one row per effect.
type SideEffectRule struct{}

// Name implements Rule.
func (SideEffectRule) Name() string { return "side_effect" }

// Apply implements Rule.
func (SideEffectRule) Apply(docID, sentence string, ents []slm.Entity) []Extraction {
	if !containsAny(sentence, "reported", "experienced", "developed", "complained") {
		return nil
	}
	var out []Extraction
	patient, hasPatient := firstEntity(ents, slm.EntID)
	drug, hasDrug := firstEntity(ents, slm.EntDrug)
	for _, e := range ents {
		if e.Type != slm.EntSideEffect {
			continue
		}
		cells := map[string]table.Value{"effect": table.S(e.Canonical)}
		if hasPatient {
			cells["patient"] = table.S(strings.ToUpper(patient.Canonical))
		}
		if hasDrug {
			cells["drug"] = table.S(titleCase(drug.Canonical))
		}
		out = append(out, Extraction{Table: "side_effects", Cells: cells, DocID: docID, Source: sentence})
	}
	return out
}

// --- helpers ---

func firstEntity(ents []slm.Entity, t slm.EntityType) (slm.Entity, bool) {
	for _, e := range ents {
		if e.Type == t {
			return e, true
		}
	}
	return slm.Entity{}, false
}

func lowerWords(s string) []string {
	return slm.Words(slm.Tokenize(s))
}

func containsAny(sentence string, words ...string) bool {
	lower := strings.ToLower(sentence)
	for _, w := range words {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

func parsePercent(canonical string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSuffix(canonical, "%"), 64)
	if err != nil {
		return 0
	}
	return f
}

func parseLeadingInt(s string) int64 {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0
	}
	n, err := strconv.ParseInt(strings.ReplaceAll(fields[0], ",", ""), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// parseMoney converts "$2.5 million" / "$1,200" / "900 dollars" to a
// plain USD amount.
func parseMoney(s string) float64 {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := 1.0
	switch {
	case strings.Contains(s, "billion") || strings.HasSuffix(s, "bn"):
		mult = 1e9
	case strings.Contains(s, "million") || strings.HasSuffix(s, " m"):
		mult = 1e6
	case strings.Contains(s, "thousand") || strings.HasSuffix(s, " k"):
		mult = 1e3
	}
	num := strings.NewReplacer("$", "", ",", "", "million", "", "billion", "", "thousand", "", "dollars", "", "dollar", "", "usd", "").Replace(s)
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0
	}
	return f * mult
}

func normalizeQuarter(canonical string) string {
	fields := strings.Fields(canonical)
	if len(fields) == 0 {
		return canonical
	}
	return strings.ToUpper(fields[0])
}

func titleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if len(f) > 0 {
			fields[i] = strings.ToUpper(f[:1]) + f[1:]
		}
	}
	return strings.Join(fields, " ")
}
