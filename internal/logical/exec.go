package logical

import (
	"fmt"

	"repro/internal/table"
)

// Source resolves a leaf node (Scan or Input) to its rows. The
// single-store executor resolves Scans from a catalog; the federation
// layer resolves Inputs from fragment results.
type Source func(leaf *Node) (*table.Table, error)

// Run interprets the tree, resolving leaves through src. This is the
// one operator loop of the system: semop.Exec, sql.ExecStmt and the
// federated executor's post-fragment processing all run through it, so
// an operator's semantics cannot diverge between entry paths.
func Run(n *Node, src Source) (*table.Table, error) {
	if n == nil {
		return nil, ErrEmptyPlan
	}
	switch n.Op {
	case OpScan, OpInput, OpEmpty:
		return src(n)
	case OpJoin:
		left, err := Run(n.In[0], src)
		if err != nil {
			return nil, err
		}
		right, err := Run(n.In[1], src)
		if err != nil {
			return nil, err
		}
		return table.HashJoinHint(left, right, n.LeftCol, n.RightCol, n.EstOut)
	}
	in, err := Run(n.Child(), src)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpFilter:
		return table.FilterHint(in, n.EstOut, n.Preds...)
	case OpProject:
		out, err := table.Project(in, n.Proj...)
		if err != nil {
			return nil, err
		}
		for i, alias := range n.Aliases {
			if alias != "" && i < len(out.Schema) {
				out.Schema[i].Name = alias
			}
		}
		return out, nil
	case OpAggregate:
		return table.AggregateHint(in, n.GroupBy, n.Aggs, n.EstOut)
	case OpSort:
		return table.Sort(in, n.Keys...)
	case OpLimit:
		return table.Limit(in, n.N), nil
	case OpDistinct:
		return table.Distinct(in), nil
	case OpCompare:
		return runCompare(n, in)
	default:
		return nil, fmt.Errorf("logical: cannot execute %v node", n.Op)
	}
}

// runCompare executes the comparison tail: one filtered grouped
// aggregate per compared item, unioned in sorted item order. Branches
// come from CompareBranches, the same rewrite ToSQL renders.
func runCompare(n *Node, in *table.Table) (*table.Table, error) {
	var out *table.Table
	for _, br := range CompareBranches(n) {
		filtered, err := table.Filter(in, br.Preds...)
		if err != nil {
			return nil, err
		}
		agged, err := table.Aggregate(filtered, br.GroupBy, n.Aggs)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New("comparison", agged.Schema)
		}
		out.Rows = append(out.Rows, agged.Rows...)
	}
	if out == nil {
		return nil, ErrEmptyCompare
	}
	return out, nil
}

// Exec runs the tree against a single catalog: every Scan resolves to
// a catalog table, with the node's row range (the SQL dialect's ROWS
// clause) applied before its pruned column set.
func Exec(n *Node, c *table.Catalog) (*table.Table, error) {
	return Run(n, func(leaf *Node) (*table.Table, error) {
		switch leaf.Op {
		case OpScan:
			t, err := c.Get(leaf.Table)
			if err != nil {
				return nil, err
			}
			if leaf.RowEnd > 0 {
				t = sliceRows(t, leaf.RowStart, leaf.RowEnd)
			}
			if len(leaf.Cols) > 0 {
				return table.Project(t, leaf.Cols...)
			}
			return t, nil
		case OpEmpty:
			// The folded scan's table supplies the schema; the proof that
			// no rows survive already happened at plan time.
			t, err := c.Get(leaf.Table)
			if err != nil {
				return nil, err
			}
			empty := table.New(t.Name, t.Schema)
			if len(leaf.Cols) > 0 {
				return table.Project(empty, leaf.Cols...)
			}
			return empty, nil
		default:
			return nil, fmt.Errorf("logical: unresolved %v leaf", leaf.Op)
		}
	})
}

// sliceRows views the physical row range [start, end) of a table,
// clamped to its bounds.
func sliceRows(t *table.Table, start, end int) *table.Table {
	if end > t.Len() {
		end = t.Len()
	}
	if start > end {
		start = end
	}
	out := table.New(t.Name, t.Schema)
	out.Rows = t.Rows[start:end]
	return out
}
