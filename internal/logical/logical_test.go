package logical

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/table"
)

func testCatalog() *table.Catalog {
	c := table.NewCatalog()
	sales := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "quarter", Type: table.TypeString},
		{Name: "revenue", Type: table.TypeFloat},
		{Name: "units", Type: table.TypeInt},
	})
	rows := []struct {
		p, q string
		r    float64
		u    int64
	}{
		{"Alpha", "Q1", 100, 10}, {"Alpha", "Q2", 120, 12},
		{"Beta", "Q1", 80, 8}, {"Beta", "Q2", 60, 6},
		{"Gamma", "Q1", 200, 20}, {"Gamma", "Q2", 240, 24},
	}
	for _, r := range rows {
		sales.MustAppend([]table.Value{table.S(r.p), table.S(r.q), table.F(r.r), table.I(r.u)})
	}
	c.Put(sales)

	changes := table.New("metric_changes", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "change_pct", Type: table.TypeFloat},
		{Name: "quarter", Type: table.TypeString}, // collides with sales.quarter
		{Name: "note", Type: table.TypeString},
	})
	for i, p := range []string{"Alpha", "Beta", "Gamma", "Alpha", "Beta"} {
		changes.MustAppend([]table.Value{
			table.S(p), table.F(float64(i*10 - 10)), table.S("Q" + string(rune('1'+i%2))), table.S("n")})
	}
	c.Put(changes)
	return c
}

func render(t *table.Table) string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), ","))
	for _, row := range t.Rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.Key())
		}
	}
	return b.String()
}

func scan(tbl string) *Node { return &Node{Op: OpScan, Table: tbl} }

func filter(in *Node, preds ...table.Pred) *Node {
	return &Node{Op: OpFilter, Preds: preds, In: []*Node{in}}
}

func traced(t *testing.T, o *Optimized, rule string) bool {
	t.Helper()
	for _, tr := range o.Trace {
		if strings.HasPrefix(tr, rule+"(") {
			return true
		}
	}
	return false
}

// execBoth runs the tree optimized and unoptimized and asserts equal
// results (for trees whose semantics the rules must preserve exactly).
func execBoth(t *testing.T, root *Node, c *table.Catalog) (*table.Table, *Optimized) {
	t.Helper()
	plain, err := Exec(root.Clone(), c)
	if err != nil {
		t.Fatalf("unoptimized exec: %v", err)
	}
	opt := Optimize(root, CatalogStats(c))
	out, err := Exec(opt.Root, c)
	if err != nil {
		t.Fatalf("optimized exec: %v", err)
	}
	if render(out) != render(plain) {
		t.Fatalf("optimizer changed results:\n%s\nvs\n%s\ntrace: %v", render(out), render(plain), opt.Trace)
	}
	return out, opt
}

func TestFoldMergesAndDedupes(t *testing.T) {
	c := testCatalog()
	pred := table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}
	root := filter(filter(scan("sales"), pred), pred,
		table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")})
	out, opt := execBoth(t, root, c)
	if !traced(t, opt, "fold") {
		t.Errorf("fold did not fire: %v", opt.Trace)
	}
	if opt.Root.Op != OpFilter || opt.Root.Child().Op != OpScan {
		t.Errorf("filters not merged: %s", opt.Root)
	}
	if len(opt.Root.Preds) != 2 {
		t.Errorf("duplicate predicate survived: %v", opt.Root.Preds)
	}
	if out.Len() != 1 {
		t.Errorf("rows = %d, want 1", out.Len())
	}
}

func TestRetypeCoercesLiteralToColumnType(t *testing.T) {
	c := testCatalog()
	// String "90" on a float column: lexically "100" < "90", numerically
	// 100 > 90 — the coerced plan must filter numerically.
	root := filter(scan("sales"), table.Pred{Col: "revenue", Op: table.OpGt, Val: table.S("90")})
	opt := Optimize(root, CatalogStats(c))
	if !traced(t, opt, "retype") {
		t.Fatalf("retype did not fire: %v", opt.Trace)
	}
	out, err := Exec(opt.Root, c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // 100, 120, 200, 240
		t.Errorf("rows = %d, want 4 (numeric comparison)\n%s", out.Len(), out)
	}
}

func TestPushdownSinksFilterBelowSort(t *testing.T) {
	c := testCatalog()
	root := filter(
		&Node{Op: OpSort, Keys: []table.SortKey{{Col: "revenue", Desc: true}}, In: []*Node{scan("sales")}},
		table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q2")})
	out, opt := execBoth(t, root, c)
	if !traced(t, opt, "pushdown") {
		t.Errorf("pushdown did not fire: %v", opt.Trace)
	}
	if opt.Root.Op != OpSort || opt.Root.Child().Op != OpFilter {
		t.Errorf("filter did not sink below sort: %s", opt.Root)
	}
	if out.Len() != 3 || out.Rows[0][2].Float() != 240 {
		t.Errorf("unexpected result:\n%s", out)
	}
}

func TestPruneNarrowsBoundedScans(t *testing.T) {
	c := testCatalog()
	root := &Node{Op: OpAggregate, GroupBy: []string{"product"},
		Aggs: []table.Agg{{Func: table.AggSum, Col: "units", As: "result"}},
		In:   []*Node{scan("sales")}}
	_, opt := execBoth(t, root, c)
	if !traced(t, opt, "prune") {
		t.Fatalf("prune did not fire: %v", opt.Trace)
	}
	s := opt.Root.Child()
	if s.Op != OpScan || strings.Join(s.Cols, ",") != "product,units" {
		t.Errorf("scan not pruned to [product units]: %s", opt.Root)
	}
}

func TestPruneKeepsSortKeyColumns(t *testing.T) {
	c := testCatalog()
	// The projection references only product, but the Sort below orders
	// by revenue: the narrowed scan must still carry the sort key, and
	// both executors must order identically over the pruned plan.
	root := &Node{Op: OpProject, Proj: []string{"product"},
		In: []*Node{{Op: OpSort, Keys: []table.SortKey{{Col: "revenue", Desc: true}},
			In: []*Node{scan("sales")}}}}
	_, opt := execBoth(t, root, c)
	if !traced(t, opt, "prune") {
		t.Fatalf("prune did not fire: %v", opt.Trace)
	}
	var cols string
	walk(opt.Root, func(n *Node) {
		if n.Op == OpScan {
			cols = strings.Join(n.Cols, ",")
		}
	})
	if !strings.Contains(cols, "revenue") {
		t.Fatalf("pruned scan dropped the sort key: cols=[%s]\n%s", cols, opt.Root)
	}
	vec, err := ExecVec(opt.Root, c, 2)
	if err != nil {
		t.Fatalf("vectorized exec over pruned sort plan: %v", err)
	}
	row, err := Exec(opt.Root, c)
	if err != nil {
		t.Fatal(err)
	}
	if render(vec) != render(row) {
		t.Fatalf("vectorized pruned sort diverges:\n%s\nvs\n%s", render(vec), render(row))
	}
}

func TestPruneSkipsUnboundedOutput(t *testing.T) {
	c := testCatalog()
	// A list query returns whole rows; pruning would change the output.
	root := &Node{Op: OpLimit, N: 10,
		In: []*Node{filter(scan("sales"), table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")})}}
	_, opt := execBoth(t, root, c)
	if traced(t, opt, "prune") {
		t.Errorf("prune fired on an unbounded plan: %v", opt.Trace)
	}
}

// semiJoin builds the NL-entry join shape: driving scan, joined side
// filtered, key-projected and deduplicated.
func semiJoin(mainTbl, joinTbl, key string, joinPreds []table.Pred) *Node {
	right := scan(joinTbl)
	if len(joinPreds) > 0 {
		right = filter(right, joinPreds...)
	}
	right = &Node{Op: OpProject, Proj: []string{key}, In: []*Node{right}}
	right = &Node{Op: OpDistinct, In: []*Node{right}}
	return &Node{Op: OpJoin, LeftCol: key, RightCol: key, In: []*Node{scan(mainTbl), right}}
}

func TestReorderSeedsJoinSide(t *testing.T) {
	c := testCatalog()
	join := semiJoin("sales", "metric_changes", "product",
		[]table.Pred{{Col: "change_pct", Op: table.OpGt, Val: table.F(0)}})
	root := &Node{Op: OpAggregate, GroupBy: nil,
		Aggs: []table.Agg{{Func: table.AggAvg, Col: "revenue", As: "result"}},
		In: []*Node{filter(join,
			table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")})}}
	_, opt := execBoth(t, root, c)
	if !traced(t, opt, "reorder") {
		t.Fatalf("reorder did not fire: %v", opt.Trace)
	}
	// The seeded equality must land on the joined side's filter.
	var seeded bool
	walk(opt.Root, func(n *Node) {
		if n.Op != OpFilter {
			return
		}
		for _, p := range n.Preds {
			if p.Col == "product" && p.Op == table.OpEq {
				if c := n.Child(); c != nil && c.Op == OpScan && c.Table == "metric_changes" {
					seeded = true
				}
			}
		}
	})
	if !seeded {
		t.Errorf("join side not seeded:\n%s", opt.Root)
	}
}

func TestPruneKeepsCollisionRenameColumns(t *testing.T) {
	// "metric_changes.quarter" exists only because sales.quarter
	// collides with it in the joined schema. Pruning sales down to the
	// aggregate's needs would drop sales.quarter, un-rename the right
	// column, and break the compiled reference — prune must keep the
	// colliding left column.
	c := testCatalog()
	join := &Node{Op: OpJoin, LeftCol: "product", RightCol: "product",
		In: []*Node{scan("sales"), scan("metric_changes")}}
	root := &Node{Op: OpAggregate,
		GroupBy: []string{"metric_changes.quarter"},
		Aggs:    []table.Agg{{Func: table.AggSum, Col: "revenue", As: "r"}},
		In:      []*Node{join}}
	out, opt := execBoth(t, root, c)
	if out.Len() == 0 {
		t.Fatal("empty result")
	}
	if s := opt.Root.Child().In[0]; s.Op == OpScan && len(s.Cols) > 0 {
		found := false
		for _, col := range s.Cols {
			if col == "quarter" {
				found = true
			}
		}
		if !found {
			t.Errorf("pruned left scan dropped the collision column: %v", s.Cols)
		}
	}
}

func TestReorderSkipsEqualCardinalities(t *testing.T) {
	// Equal table sizes: seeding could shrink the right input below the
	// left and flip HashJoin's build side, reordering join output rows.
	// The gate must be strict.
	c := table.NewCatalog()
	for _, name := range []string{"a", "b"} {
		tb := table.New(name, table.Schema{
			{Name: "key", Type: table.TypeString},
			{Name: "v", Type: table.TypeInt},
		})
		for i, k := range []string{"k1", "k1", "k2", "k2"} {
			tb.MustAppend([]table.Value{table.S(k), table.I(int64(i))})
		}
		c.Put(tb)
	}
	root := filter(
		&Node{Op: OpJoin, LeftCol: "key", RightCol: "key",
			In: []*Node{scan("a"), scan("b")}},
		table.Pred{Col: "key", Op: table.OpEq, Val: table.S("k1")})
	_, opt := execBoth(t, root, c)
	if traced(t, opt, "reorder") {
		t.Errorf("reorder fired at equal cardinalities: %v", opt.Trace)
	}
}

func TestReorderSkipsLimitedDrivingSide(t *testing.T) {
	// A Limit shrinks the driving side's runtime size below its catalog
	// cardinality, so the build-side argument no longer holds.
	c := testCatalog()
	limited := &Node{Op: OpLimit, N: 1, In: []*Node{scan("sales")}}
	right := &Node{Op: OpDistinct, In: []*Node{
		{Op: OpProject, Proj: []string{"product"}, In: []*Node{scan("metric_changes")}}}}
	root := filter(
		&Node{Op: OpJoin, LeftCol: "product", RightCol: "product",
			In: []*Node{limited, right}},
		table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")})
	_, opt := execBoth(t, root, c)
	if traced(t, opt, "reorder") {
		t.Errorf("reorder fired through a Limit: %v", opt.Trace)
	}
}

func TestReorderSkipsSmallerDrivingSide(t *testing.T) {
	c := testCatalog()
	// Driving side smaller than the joined side: seeding could flip the
	// hash-join build side and perturb row order, so the rule must not
	// fire.
	join := semiJoin("metric_changes", "sales", "product", nil)
	root := filter(join, table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")})
	_, opt := execBoth(t, root, c)
	if traced(t, opt, "reorder") {
		t.Errorf("reorder fired with a smaller driving side: %v", opt.Trace)
	}
}

// skewCatalog builds the statistics-sensitive reorder scenario: the
// driving table is raw-larger than the joined side (the fixed
// heuristic's only gate), but its join-key values are spread thin
// while the joined side is heavily skewed toward one key.
func skewCatalog() *table.Catalog {
	c := table.NewCatalog()
	events := table.New("events", table.Schema{
		{Name: "key", Type: table.TypeString},
		{Name: "amount", Type: table.TypeInt},
	})
	for i := 0; i < 40; i++ { // 20 distinct keys, 2 rows each
		events.MustAppend([]table.Value{table.S(fmt.Sprintf("k%02d", i%20)), table.I(int64(i))})
	}
	c.Put(events)
	dims := table.New("dims", table.Schema{
		{Name: "key", Type: table.TypeString},
		{Name: "weight", Type: table.TypeInt},
	})
	for i := 0; i < 30; i++ { // 25 rows of the hot key, 5 singleton keys
		k := "k00"
		if i >= 25 {
			k = fmt.Sprintf("k%02d", i-24)
		}
		dims.MustAppend([]table.Value{table.S(k), table.I(int64(i))})
	}
	c.Put(dims)
	return c
}

// TestReorderSkipsWhenDrivingFiltersBelowSeededSide pins the rule
// interaction the fixed heuristic got wrong: the driving table is
// raw-larger (40 vs 30 rows), so the pre-statistics gate always
// seeded, but the per-column statistics show the key equality filters
// the driving side down to ~2 rows while the seeded joined side would
// still hold ~25 rows of the skewed key. The seed must be skipped
// (with a trace note) and results stay bit-identical.
func TestReorderSkipsWhenDrivingFiltersBelowSeededSide(t *testing.T) {
	c := skewCatalog()
	join := semiJoin("events", "dims", "key", nil)
	root := filter(join, table.Pred{Col: "key", Op: table.OpEq, Val: table.S("k00")})
	_, opt := execBoth(t, root, c)
	skipped := false
	for _, tr := range opt.Trace {
		if strings.Contains(tr, "skip seed dims") {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("expected a skip-seed trace note, got %v", opt.Trace)
	}
	walk(opt.Root, func(n *Node) {
		if n.Op == OpFilter {
			if ch := n.Child(); ch != nil && ch.Op == OpScan && ch.Table == "dims" {
				t.Errorf("seed landed on the joined side despite the skip gate:\n%s", opt.Root)
			}
		}
	})
}

// TestReorderSeedGateIsPerValue shows the same plan shape firing for a
// rare key: exact per-value counts make the gate data-dependent, not
// shape-dependent. "k05" holds one row of dims, so the seeded side
// estimates below the filtered driving side and seeding pays.
func TestReorderSeedGateIsPerValue(t *testing.T) {
	c := skewCatalog()
	join := semiJoin("events", "dims", "key", nil)
	root := filter(join, table.Pred{Col: "key", Op: table.OpEq, Val: table.S("k05")})
	_, opt := execBoth(t, root, c)
	if !traced(t, opt, "reorder") {
		t.Fatalf("reorder did not fire for the rare key: %v", opt.Trace)
	}
	seeded := false
	walk(opt.Root, func(n *Node) {
		if n.Op == OpFilter {
			if ch := n.Child(); ch != nil && ch.Op == OpScan && ch.Table == "dims" {
				seeded = true
			}
		}
	})
	if !seeded {
		t.Errorf("rare-key seed did not land on the joined side:\n%s", opt.Root)
	}
}

// TestSelectivityWithFallsBackToHeuristic pins the estimator contract:
// statistics answer when they can, and degrade to the fixed heuristic
// for unknown columns or nil statistics.
func TestSelectivityWithFallsBackToHeuristic(t *testing.T) {
	c := testCatalog()
	ts := c.StatsOf("sales")
	eq := table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}
	if got := SelectivityWith(ts, eq); got != 2.0/6 {
		t.Errorf("stats equality selectivity = %v, want 2/6 (exact count)", got)
	}
	unknown := table.Pred{Col: "no_such_col", Op: table.OpEq, Val: table.S("x")}
	if got := SelectivityWith(ts, unknown); got != Selectivity(unknown) {
		t.Errorf("unknown column selectivity = %v, want heuristic %v", got, Selectivity(unknown))
	}
	if got := SelectivityWith(nil, eq); got != Selectivity(eq) {
		t.Errorf("nil stats selectivity = %v, want heuristic %v", got, Selectivity(eq))
	}
}

func TestCompareBranchesSortedAndShared(t *testing.T) {
	n := &Node{Op: OpCompare, CompareCol: "product",
		Items: []string{"Beta", "Alpha"},
		Preds: []table.Pred{{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")}},
		Aggs:  []table.Agg{{Func: table.AggSum, Col: "revenue", As: "result"}},
		In:    []*Node{scan("sales")}}
	branches := CompareBranches(n)
	if len(branches) != 2 || branches[0].Item != "Alpha" || branches[1].Item != "Beta" {
		t.Fatalf("branches not in sorted item order: %+v", branches)
	}
	for _, br := range branches {
		if len(br.Preds) != 2 || br.Preds[0].Col != "quarter" || br.Preds[1].Op != table.OpContains {
			t.Errorf("branch predicates wrong: %v", br.Preds)
		}
		if len(br.GroupBy) != 1 || br.GroupBy[0] != "product" {
			t.Errorf("branch group-by wrong: %v", br.GroupBy)
		}
	}

	out, err := Exec(n, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Rows[0][0].Str() != "Alpha" || out.Rows[1][0].Str() != "Beta" {
		t.Errorf("compare result wrong:\n%s", out)
	}
}

func TestFingerprintCanonicalizesPredicateOrder(t *testing.T) {
	a := table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}
	b := table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")}
	fp1 := Fingerprint(filter(scan("sales"), a, b))
	fp2 := Fingerprint(filter(scan("sales"), b, a))
	if fp1 != fp2 {
		t.Error("conjunction order changed the fingerprint")
	}
	fp3 := Fingerprint(filter(scan("sales"), a))
	if fp3 == fp1 {
		t.Error("different plans share a fingerprint")
	}
	if Fingerprint(scan("sales")) == Fingerprint(scan("metric_changes")) {
		t.Error("different tables share a fingerprint")
	}
}

func TestOptimizeIsDeterministic(t *testing.T) {
	c := testCatalog()
	build := func() *Node {
		join := semiJoin("sales", "metric_changes", "product",
			[]table.Pred{{Col: "change_pct", Op: table.OpGt, Val: table.S("0")}})
		return &Node{Op: OpAggregate,
			Aggs: []table.Agg{{Func: table.AggAvg, Col: "revenue", As: "result"}},
			In: []*Node{filter(join,
				table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")})}}
	}
	o1 := Optimize(build(), CatalogStats(c))
	o2 := Optimize(build(), CatalogStats(c))
	if strings.Join(o1.Trace, ";") != strings.Join(o2.Trace, ";") {
		t.Errorf("trace not deterministic:\n%v\nvs\n%v", o1.Trace, o2.Trace)
	}
	if Fingerprint(o1.Root) != Fingerprint(o2.Root) {
		t.Error("optimized fingerprint not deterministic")
	}
}

func TestExecNilPlan(t *testing.T) {
	if _, err := Exec(nil, testCatalog()); err == nil {
		t.Error("nil plan executed without error")
	}
}

// TestEstimatePassStampsHints pins the estimate pass: EstOut hints
// follow the statistics (scan cardinality, filter selectivity, group
// NDVs), never surface in the rule trace, and never change results.
func TestEstimatePassStampsHints(t *testing.T) {
	c := table.NewCatalog()
	tb := table.New("wide", table.Schema{
		{Name: "k", Type: table.TypeString},
		{Name: "n", Type: table.TypeInt},
	})
	for i := 0; i < 1000; i++ {
		tb.MustAppend([]table.Value{table.S(fmt.Sprintf("k%d", i%10)), table.I(int64(i))})
	}
	c.Put(tb)

	root := &Node{Op: OpAggregate, GroupBy: []string{"k"},
		Aggs: []table.Agg{{Func: table.AggSum, Col: "n", As: "total"}},
		In: []*Node{{Op: OpFilter,
			Preds: []table.Pred{{Col: "n", Op: table.OpLt, Val: table.I(500)}},
			In:    []*Node{{Op: OpScan, Table: "wide"}}}}}
	opt := Optimize(root, CatalogStats(c))
	for _, note := range opt.Trace {
		if strings.Contains(note, "estimate") {
			t.Errorf("estimate pass leaked into the rule trace: %q", note)
		}
	}
	filter := opt.Root.Child()
	scan := filter.Child()
	if scan.EstOut != 1000 {
		t.Errorf("scan EstOut = %d, want 1000", scan.EstOut)
	}
	if filter.EstOut < 300 || filter.EstOut > 700 {
		t.Errorf("filter EstOut = %d, want ≈500 from the histogram", filter.EstOut)
	}
	if opt.Root.EstOut != 10 {
		t.Errorf("aggregate EstOut = %d, want group-key NDV 10", opt.Root.EstOut)
	}

	// Hints must not change results.
	withHints, err := Exec(opt.Root, c)
	if err != nil {
		t.Fatal(err)
	}
	stripped := opt.Root.Clone()
	walk(stripped, func(n *Node) { n.EstOut = 0 })
	withoutHints, err := Exec(stripped, c)
	if err != nil {
		t.Fatal(err)
	}
	if withHints.String() != withoutHints.String() {
		t.Fatalf("EstOut hints changed results:\n%s\nvs\n%s", withHints, withoutHints)
	}

	// And they must pay: the presized interpreter allocates strictly
	// less than the same tree with hints stripped.
	hinted := testing.AllocsPerRun(20, func() {
		if _, err := Exec(opt.Root, c); err != nil {
			t.Fatal(err)
		}
	})
	bare := testing.AllocsPerRun(20, func() {
		if _, err := Exec(stripped, c); err != nil {
			t.Fatal(err)
		}
	})
	if hinted >= bare {
		t.Errorf("presizing does not cut allocations: %v with hints vs %v without", hinted, bare)
	}
}

// TestProvablyEmpty pins the optimizer-facing proof surface.
func TestProvablyEmpty(t *testing.T) {
	c := testCatalog()
	ts := c.StatsOf("sales") // revenue in [60,240]
	if !ProvablyEmpty(ts, []table.Pred{{Col: "revenue", Op: table.OpGt, Val: table.F(240)}}) {
		t.Error("out-of-bounds range not proven empty")
	}
	if ProvablyEmpty(ts, []table.Pred{{Col: "revenue", Op: table.OpGe, Val: table.F(240)}}) {
		t.Error("boundary range wrongly proven empty")
	}
	if ProvablyEmpty(nil, []table.Pred{{Col: "revenue", Op: table.OpGt, Val: table.F(1e9)}}) {
		t.Error("nil statistics cannot prove anything")
	}
	// SelectivityWith surfaces the proof as an exact zero.
	if f := SelectivityWith(ts, table.Pred{Col: "revenue", Op: table.OpGt, Val: table.F(240)}); f != 0 {
		t.Errorf("refuted predicate selectivity = %v, want 0", f)
	}
}

// TestEmptyfoldCollapsesRefutedScan pins the emptyfold pass end to
// end: a statistically refuted filtered scan becomes a constant-empty
// leaf, the fold is traced, the plan renders as Empty, and execution
// returns the schema with zero rows — bit-identical to the unfolded
// plan.
func TestEmptyfoldCollapsesRefutedScan(t *testing.T) {
	c := testCatalog()
	root := &Node{Op: OpSort, Keys: []table.SortKey{{Col: "product"}},
		In: []*Node{filter(scan("sales"),
			table.Pred{Col: "revenue", Op: table.OpGt, Val: table.F(240)})}}
	out, opt := execBoth(t, root, c)
	if !traced(t, opt, "emptyfold") {
		t.Fatalf("emptyfold did not fire: %v", opt.Trace)
	}
	// Both the fold and the sort-over-empty collapse must be traced.
	want := []string{
		"emptyfold(sales: statistics refute revenue > 240)",
		"emptyfold(collapsed sort over empty sales)",
	}
	for _, w := range want {
		found := false
		for _, tr := range opt.Trace {
			if tr == w {
				found = true
			}
		}
		if !found {
			t.Errorf("trace misses %q: %v", w, opt.Trace)
		}
	}
	if opt.Root.Op != OpEmpty {
		t.Fatalf("plan = %s, want constant-empty leaf", opt.Root)
	}
	if got := opt.Root.String(); got != "Empty(sales)" {
		t.Errorf("plan renders %q, want %q", got, "Empty(sales)")
	}
	if out.Len() != 0 {
		t.Errorf("empty plan returned %d rows", out.Len())
	}
	if got := strings.Join(out.Schema.Names(), ","); got != "product,quarter,revenue,units" {
		t.Errorf("empty result schema = %s", got)
	}
}

// TestEmptyfoldNeverFoldsAggregates pins the semantic guard: an
// aggregate changes the output schema (and, in general dialects, a
// global aggregate over zero rows can still yield a row), so the fold
// must stop below it — the empty leaf feeds the aggregate, which runs.
func TestEmptyfoldNeverFoldsAggregates(t *testing.T) {
	c := testCatalog()
	root := &Node{Op: OpAggregate,
		Aggs: []table.Agg{{Func: table.AggCount, As: "n"}},
		In: []*Node{filter(scan("sales"),
			table.Pred{Col: "revenue", Op: table.OpGt, Val: table.F(240)})}}
	out, opt := execBoth(t, root, c)
	if opt.Root.Op != OpAggregate || opt.Root.Child().Op != OpEmpty {
		t.Fatalf("plan = %s, want aggregate over empty leaf", opt.Root)
	}
	if got := strings.Join(out.Schema.Names(), ","); got != "n" {
		t.Errorf("aggregate schema = %s, want n", got)
	}
}

// TestEmptyfoldLeavesUnrefutedScans pins the negative: a satisfiable
// predicate must not fold, whatever the pass's enthusiasm.
func TestEmptyfoldLeavesUnrefutedScans(t *testing.T) {
	c := testCatalog()
	root := filter(scan("sales"), table.Pred{Col: "revenue", Op: table.OpGe, Val: table.F(240)})
	out, opt := execBoth(t, root, c)
	if traced(t, opt, "emptyfold") {
		t.Errorf("emptyfold fired on a satisfiable predicate: %v", opt.Trace)
	}
	if out.Len() != 1 { // Gamma Q2, revenue 240
		t.Errorf("rows = %d, want 1", out.Len())
	}
}
