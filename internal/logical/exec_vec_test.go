package logical

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

// nullCatalog builds a catalog exercising every NULL shape the
// vectorized kernels must handle bit-identically to the row
// interpreter: scattered NULLs in every column type, an entire
// all-NULL fragment (rows 256..511 of a 640-row table, so the table
// spans three 256-row fragments), and a small dimension table with
// NULL join keys on both sides.
func nullCatalog() *table.Catalog {
	c := table.NewCatalog()
	facts := table.New("facts", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "units", Type: table.TypeInt},
		{Name: "revenue", Type: table.TypeFloat},
		{Name: "active", Type: table.TypeBool},
	})
	for i := 0; i < 640; i++ {
		row := []table.Value{
			table.S(fmt.Sprintf("region-%d", i%5)),
			table.I(int64(i % 97)),
			table.F(float64(i%13) * 1.5),
			table.B(i%2 == 0),
		}
		// Scattered NULLs in each column on different strides.
		if i%7 == 0 {
			row[0] = table.Null(table.TypeString)
		}
		if i%11 == 0 {
			row[1] = table.Null(table.TypeInt)
		}
		if i%5 == 0 {
			row[2] = table.Null(table.TypeFloat)
		}
		if i%17 == 0 {
			row[3] = table.Null(table.TypeBool)
		}
		// The second fragment is entirely NULL in every column.
		if i >= table.FragmentRows && i < 2*table.FragmentRows {
			for j, col := range facts.Schema {
				_ = col
				row[j] = table.Null(facts.Schema[j].Type)
			}
		}
		facts.MustAppend(row)
	}
	c.Put(facts)

	dims := table.New("dims", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "mgr", Type: table.TypeString},
	})
	for i := 0; i < 8; i++ {
		key := table.S(fmt.Sprintf("region-%d", i%6))
		if i%3 == 0 {
			key = table.Null(table.TypeString)
		}
		dims.MustAppend([]table.Value{key, table.S(fmt.Sprintf("mgr-%d", i))})
	}
	c.Put(dims)
	return c
}

// assertVecParity executes the tree through both executors (the
// vectorized one at 1 and 4 workers) and requires bit-identical
// schema, row order and cell values — or the identical error outcome.
func assertVecParity(t *testing.T, root *Node, c *table.Catalog) {
	t.Helper()
	if !Vectorizable(root) {
		t.Fatalf("plan unexpectedly not vectorizable: %s", root.String())
	}
	want, wantErr := Exec(root, c)
	for _, workers := range []int{1, 4} {
		got, err := ExecVec(root, c, workers)
		if wantErr != nil {
			if err == nil {
				t.Fatalf("workers=%d: row executor errored (%v) but vectorized succeeded", workers, wantErr)
			}
			if err.Error() != wantErr.Error() {
				t.Fatalf("workers=%d: error diverges: %q vs %q", workers, err, wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("workers=%d: vectorized exec: %v", workers, err)
		}
		if render(got) != render(want) {
			t.Fatalf("workers=%d: vectorized result diverges from row executor:\n%s\nvs\n%s",
				workers, render(got), render(want))
		}
	}
}

func TestVecFilterNulls(t *testing.T) {
	c := nullCatalog()
	cases := map[string][]table.Pred{
		"int_gt":        {{Col: "units", Op: table.OpGt, Val: table.I(50)}},
		"float_lt":      {{Col: "revenue", Op: table.OpLt, Val: table.F(9)}},
		"string_eq":     {{Col: "region", Op: table.OpEq, Val: table.S("region-2")}},
		"contains":      {{Col: "region", Op: table.OpContains, Val: table.S("GION-3")}},
		"bool_eq":       {{Col: "active", Op: table.OpEq, Val: table.B(true)}},
		"null_literal":  {{Col: "units", Op: table.OpEq, Val: table.Null(table.TypeInt)}},
		"cross_numeric": {{Col: "units", Op: table.OpGe, Val: table.F(33.5)}},
		"conjunction": {
			{Col: "units", Op: table.OpGt, Val: table.I(10)},
			{Col: "revenue", Op: table.OpNe, Val: table.F(4.5)},
			{Col: "active", Op: table.OpEq, Val: table.B(false)},
		},
	}
	for name, preds := range cases {
		t.Run(name, func(t *testing.T) {
			assertVecParity(t, filter(scan("facts"), preds...), c)
		})
	}
}

func TestVecAggregateNulls(t *testing.T) {
	c := nullCatalog()
	aggs := []table.Agg{
		{Func: table.AggSum, Col: "revenue"},
		{Func: table.AggAvg, Col: "revenue"},
		{Func: table.AggCount, Col: "units"},
		{Func: table.AggMin, Col: "units"},
		{Func: table.AggMax, Col: "units"},
	}
	t.Run("grouped_null_keys", func(t *testing.T) {
		// Group keys include NULL region values (their own group).
		assertVecParity(t, &Node{Op: OpAggregate, GroupBy: []string{"region"}, Aggs: aggs,
			In: []*Node{scan("facts")}}, c)
	})
	t.Run("global", func(t *testing.T) {
		assertVecParity(t, &Node{Op: OpAggregate, Aggs: aggs, In: []*Node{scan("facts")}}, c)
	})
	t.Run("global_over_all_null_fragment", func(t *testing.T) {
		// Restrict the scan to the all-NULL fragment: COUNT is 0, the
		// others are NULL — both executors must agree exactly.
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = table.FragmentRows, 2*table.FragmentRows
		assertVecParity(t, &Node{Op: OpAggregate, Aggs: aggs, In: []*Node{sc}}, c)
	})
	t.Run("filtered_grouped", func(t *testing.T) {
		assertVecParity(t, &Node{Op: OpAggregate, GroupBy: []string{"region"}, Aggs: aggs,
			In: []*Node{filter(scan("facts"), table.Pred{Col: "units", Op: table.OpLt, Val: table.I(60)})}}, c)
	})
}

func TestVecJoinNulls(t *testing.T) {
	c := nullCatalog()
	join := &Node{Op: OpJoin, LeftCol: "region", RightCol: "region",
		In: []*Node{scan("facts"), scan("dims")}}
	// NULL keys on either side never match; build/probe side choice and
	// output row order must match the row executor's exactly.
	assertVecParity(t, join, c)

	t.Run("aggregated", func(t *testing.T) {
		assertVecParity(t, &Node{Op: OpAggregate, GroupBy: []string{"mgr"},
			Aggs: []table.Agg{{Func: table.AggSum, Col: "revenue"}},
			In:   []*Node{join}}, c)
	})
	t.Run("all_null_probe", func(t *testing.T) {
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = table.FragmentRows, 2*table.FragmentRows
		assertVecParity(t, &Node{Op: OpJoin, LeftCol: "region", RightCol: "region",
			In: []*Node{sc, scan("dims")}}, c)
	})
}

func TestVecDistinctLimitNulls(t *testing.T) {
	c := nullCatalog()
	proj := &Node{Op: OpProject, Proj: []string{"region"}, In: []*Node{scan("facts")}}
	assertVecParity(t, &Node{Op: OpDistinct, In: []*Node{proj}}, c)
	assertVecParity(t, &Node{Op: OpLimit, N: 300, In: []*Node{proj}}, c)
}

// TestVecLazyColumnError pins the error-laziness contract: a filter
// over an unresolved column errors only when a row actually reaches
// the predicate, so filtering an empty range succeeds in both
// executors while a populated one fails with the identical message.
func TestVecLazyColumnError(t *testing.T) {
	c := nullCatalog()
	t.Run("empty_input_no_error", func(t *testing.T) {
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = 0, 0
		assertVecParity(t, filter(sc, table.Pred{Col: "nope", Op: table.OpEq, Val: table.I(1)}), c)
	})
	t.Run("rows_reach_pred_error", func(t *testing.T) {
		assertVecParity(t, filter(scan("facts"), table.Pred{Col: "nope", Op: table.OpEq, Val: table.I(1)}), c)
	})
}
