package logical

import (
	"fmt"
	"testing"

	"repro/internal/table"
)

// nullCatalog builds a catalog exercising every NULL shape the
// vectorized kernels must handle bit-identically to the row
// interpreter: scattered NULLs in every column type, an entire
// all-NULL fragment (rows 256..511 of a 640-row table, so the table
// spans three 256-row fragments), and a small dimension table with
// NULL join keys on both sides.
func nullCatalog() *table.Catalog {
	c := table.NewCatalog()
	facts := table.New("facts", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "units", Type: table.TypeInt},
		{Name: "revenue", Type: table.TypeFloat},
		{Name: "active", Type: table.TypeBool},
	})
	for i := 0; i < 640; i++ {
		row := []table.Value{
			table.S(fmt.Sprintf("region-%d", i%5)),
			table.I(int64(i % 97)),
			table.F(float64(i%13) * 1.5),
			table.B(i%2 == 0),
		}
		// Scattered NULLs in each column on different strides.
		if i%7 == 0 {
			row[0] = table.Null(table.TypeString)
		}
		if i%11 == 0 {
			row[1] = table.Null(table.TypeInt)
		}
		if i%5 == 0 {
			row[2] = table.Null(table.TypeFloat)
		}
		if i%17 == 0 {
			row[3] = table.Null(table.TypeBool)
		}
		// The second fragment is entirely NULL in every column.
		if i >= table.FragmentRows && i < 2*table.FragmentRows {
			for j, col := range facts.Schema {
				_ = col
				row[j] = table.Null(facts.Schema[j].Type)
			}
		}
		facts.MustAppend(row)
	}
	c.Put(facts)

	dims := table.New("dims", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "mgr", Type: table.TypeString},
	})
	for i := 0; i < 8; i++ {
		key := table.S(fmt.Sprintf("region-%d", i%6))
		if i%3 == 0 {
			key = table.Null(table.TypeString)
		}
		dims.MustAppend([]table.Value{key, table.S(fmt.Sprintf("mgr-%d", i))})
	}
	c.Put(dims)
	return c
}

// assertVecParity executes the tree through both executors (the
// vectorized one at 1 and 4 workers) and requires bit-identical
// schema, row order and cell values — or the identical error outcome.
func assertVecParity(t *testing.T, root *Node, c *table.Catalog) {
	t.Helper()
	if !Vectorizable(root) {
		t.Fatalf("plan unexpectedly not vectorizable: %s", root.String())
	}
	want, wantErr := Exec(root, c)
	for _, workers := range []int{1, 4} {
		got, err := ExecVec(root, c, workers)
		if wantErr != nil {
			if err == nil {
				t.Fatalf("workers=%d: row executor errored (%v) but vectorized succeeded", workers, wantErr)
			}
			if err.Error() != wantErr.Error() {
				t.Fatalf("workers=%d: error diverges: %q vs %q", workers, err, wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("workers=%d: vectorized exec: %v", workers, err)
		}
		if render(got) != render(want) {
			t.Fatalf("workers=%d: vectorized result diverges from row executor:\n%s\nvs\n%s",
				workers, render(got), render(want))
		}
	}
}

func TestVecFilterNulls(t *testing.T) {
	c := nullCatalog()
	cases := map[string][]table.Pred{
		"int_gt":        {{Col: "units", Op: table.OpGt, Val: table.I(50)}},
		"float_lt":      {{Col: "revenue", Op: table.OpLt, Val: table.F(9)}},
		"string_eq":     {{Col: "region", Op: table.OpEq, Val: table.S("region-2")}},
		"contains":      {{Col: "region", Op: table.OpContains, Val: table.S("GION-3")}},
		"bool_eq":       {{Col: "active", Op: table.OpEq, Val: table.B(true)}},
		"null_literal":  {{Col: "units", Op: table.OpEq, Val: table.Null(table.TypeInt)}},
		"cross_numeric": {{Col: "units", Op: table.OpGe, Val: table.F(33.5)}},
		"conjunction": {
			{Col: "units", Op: table.OpGt, Val: table.I(10)},
			{Col: "revenue", Op: table.OpNe, Val: table.F(4.5)},
			{Col: "active", Op: table.OpEq, Val: table.B(false)},
		},
	}
	for name, preds := range cases {
		t.Run(name, func(t *testing.T) {
			assertVecParity(t, filter(scan("facts"), preds...), c)
		})
	}
}

func TestVecAggregateNulls(t *testing.T) {
	c := nullCatalog()
	aggs := []table.Agg{
		{Func: table.AggSum, Col: "revenue"},
		{Func: table.AggAvg, Col: "revenue"},
		{Func: table.AggCount, Col: "units"},
		{Func: table.AggMin, Col: "units"},
		{Func: table.AggMax, Col: "units"},
	}
	t.Run("grouped_null_keys", func(t *testing.T) {
		// Group keys include NULL region values (their own group).
		assertVecParity(t, &Node{Op: OpAggregate, GroupBy: []string{"region"}, Aggs: aggs,
			In: []*Node{scan("facts")}}, c)
	})
	t.Run("global", func(t *testing.T) {
		assertVecParity(t, &Node{Op: OpAggregate, Aggs: aggs, In: []*Node{scan("facts")}}, c)
	})
	t.Run("global_over_all_null_fragment", func(t *testing.T) {
		// Restrict the scan to the all-NULL fragment: COUNT is 0, the
		// others are NULL — both executors must agree exactly.
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = table.FragmentRows, 2*table.FragmentRows
		assertVecParity(t, &Node{Op: OpAggregate, Aggs: aggs, In: []*Node{sc}}, c)
	})
	t.Run("filtered_grouped", func(t *testing.T) {
		assertVecParity(t, &Node{Op: OpAggregate, GroupBy: []string{"region"}, Aggs: aggs,
			In: []*Node{filter(scan("facts"), table.Pred{Col: "units", Op: table.OpLt, Val: table.I(60)})}}, c)
	})
}

func TestVecJoinNulls(t *testing.T) {
	c := nullCatalog()
	join := &Node{Op: OpJoin, LeftCol: "region", RightCol: "region",
		In: []*Node{scan("facts"), scan("dims")}}
	// NULL keys on either side never match; build/probe side choice and
	// output row order must match the row executor's exactly.
	assertVecParity(t, join, c)

	t.Run("aggregated", func(t *testing.T) {
		assertVecParity(t, &Node{Op: OpAggregate, GroupBy: []string{"mgr"},
			Aggs: []table.Agg{{Func: table.AggSum, Col: "revenue"}},
			In:   []*Node{join}}, c)
	})
	t.Run("all_null_probe", func(t *testing.T) {
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = table.FragmentRows, 2*table.FragmentRows
		assertVecParity(t, &Node{Op: OpJoin, LeftCol: "region", RightCol: "region",
			In: []*Node{sc, scan("dims")}}, c)
	})
}

func TestVecDistinctLimitNulls(t *testing.T) {
	c := nullCatalog()
	proj := &Node{Op: OpProject, Proj: []string{"region"}, In: []*Node{scan("facts")}}
	assertVecParity(t, &Node{Op: OpDistinct, In: []*Node{proj}}, c)
	assertVecParity(t, &Node{Op: OpLimit, N: 300, In: []*Node{proj}}, c)
}

func sortNode(in *Node, keys ...table.SortKey) *Node {
	return &Node{Op: OpSort, Keys: keys, In: []*Node{in}}
}

func TestVecSortNulls(t *testing.T) {
	c := nullCatalog()
	t.Run("scattered_nulls_three_fragments", func(t *testing.T) {
		// revenue is NULL every 5th row across all three fragments;
		// NULLs must sort first in the exact relative order they appear.
		assertVecParity(t, sortNode(scan("facts"), table.SortKey{Col: "revenue"}), c)
	})
	t.Run("desc_nulls_last", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("facts"), table.SortKey{Col: "units", Desc: true}), c)
	})
	t.Run("multi_key", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("facts"),
			table.SortKey{Col: "region"}, table.SortKey{Col: "units", Desc: true},
			table.SortKey{Col: "revenue"}), c)
	})
	t.Run("bool_key", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("facts"), table.SortKey{Col: "active"}), c)
	})
	t.Run("all_null_key_fragment", func(t *testing.T) {
		// Restrict the scan to the fragment whose every cell is NULL:
		// all keys tie, so the output must be the input order exactly.
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = table.FragmentRows, 2*table.FragmentRows
		assertVecParity(t, sortNode(sc, table.SortKey{Col: "revenue", Desc: true}), c)
	})
	t.Run("duplicate_keys_stable_under_limit", func(t *testing.T) {
		// region has 5 distinct values over 640 rows; Limit over the
		// sort exposes any tie-order instability in the first rows.
		assertVecParity(t, &Node{Op: OpLimit, N: 40,
			In: []*Node{sortNode(scan("facts"), table.SortKey{Col: "region"})}}, c)
	})
	t.Run("filtered_then_sorted", func(t *testing.T) {
		assertVecParity(t, sortNode(
			filter(scan("facts"), table.Pred{Col: "units", Op: table.OpGt, Val: table.I(40)}),
			table.SortKey{Col: "revenue", Desc: true}, table.SortKey{Col: "region"}), c)
	})
	t.Run("sort_above_project", func(t *testing.T) {
		// The SQL compiler places Sort above Project; the key resolves
		// against the projected schema.
		proj := &Node{Op: OpProject, Proj: []string{"region", "units"}, In: []*Node{scan("facts")}}
		assertVecParity(t, sortNode(proj, table.SortKey{Col: "units"}), c)
	})
	t.Run("unknown_key_error", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("facts"), table.SortKey{Col: "nope"}), c)
	})
}

// TestVecSortCrossKind pins sort-kernel parity on columns whose cells
// mix kinds (possible through direct row construction and through
// untyped extraction): int/float mixtures compare numerically through
// float64, and any other mixture falls back to table.Compare's
// rendered-string ordering — both identically to the row path.
func TestVecSortCrossKind(t *testing.T) {
	c := table.NewCatalog()
	mixed := table.New("mixed", table.Schema{
		{Name: "k", Type: table.TypeString},
		{Name: "tag", Type: table.TypeString},
	})
	for i := 0; i < 600; i++ {
		var k table.Value
		switch i % 4 {
		case 0:
			k = table.I(int64(i % 29))
		case 1:
			k = table.F(float64(i%31) + 0.5)
		case 2:
			k = table.S(fmt.Sprintf("s-%02d", i%23))
		default:
			k = table.Null(table.TypeString)
		}
		// Mixed-kind cells bypass MustAppend's kind check on purpose:
		// the columnar layer keeps such columns boxed.
		mixed.Rows = append(mixed.Rows, []table.Value{k, table.S(fmt.Sprintf("t-%d", i))})
	}
	c.Put(mixed)
	t.Run("mixed_kinds", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("mixed"), table.SortKey{Col: "k"}), c)
	})
	t.Run("mixed_kinds_desc", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("mixed"), table.SortKey{Col: "k", Desc: true}), c)
	})

	// A numeric-only mixture (int and float cells in one column) stays
	// on the typed float64 path rather than demoting to generic.
	num := table.New("num", table.Schema{
		{Name: "n", Type: table.TypeFloat},
		{Name: "tag", Type: table.TypeString},
	})
	for i := 0; i < 600; i++ {
		var n table.Value
		switch i % 3 {
		case 0:
			n = table.I(int64(50 - i%100))
		case 1:
			n = table.F(float64(50-i%100) + 0.25)
		default:
			n = table.Null(table.TypeFloat)
		}
		num.Rows = append(num.Rows, []table.Value{n, table.S(fmt.Sprintf("t-%d", i))})
	}
	c.Put(num)
	t.Run("int_float_numeric", func(t *testing.T) {
		assertVecParity(t, sortNode(scan("num"), table.SortKey{Col: "n"}), c)
	})
}

func TestVecCompare(t *testing.T) {
	c := nullCatalog()
	aggs := []table.Agg{
		{Func: table.AggSum, Col: "revenue"},
		{Func: table.AggCount, Col: "units"},
	}
	compare := func(items ...string) *Node {
		return &Node{Op: OpCompare, CompareCol: "region", Items: items, Aggs: aggs,
			In: []*Node{scan("facts")}}
	}
	t.Run("two_items", func(t *testing.T) {
		assertVecParity(t, compare("region-1", "region-3"), c)
	})
	t.Run("branch_order_not_item_order", func(t *testing.T) {
		// Items are compared in sorted order regardless of spelling
		// order; the vectorized path must reassemble identically.
		assertVecParity(t, compare("region-4", "region-0", "region-2"), c)
	})
	t.Run("empty_branch_results", func(t *testing.T) {
		// One arm matches nothing: its aggregate contributes zero rows
		// and the surviving arm's rows appear alone.
		assertVecParity(t, compare("region-1", "no-such-region"), c)
	})
	t.Run("all_branches_empty", func(t *testing.T) {
		assertVecParity(t, compare("no-such-a", "no-such-b"), c)
	})
	t.Run("no_items_error", func(t *testing.T) {
		assertVecParity(t, compare(), c)
	})
	t.Run("with_base_predicate", func(t *testing.T) {
		n := compare("region-1", "region-2")
		n.Preds = []table.Pred{{Col: "active", Op: table.OpEq, Val: table.B(true)}}
		assertVecParity(t, n, c)
	})
	t.Run("sorted_comparison", func(t *testing.T) {
		assertVecParity(t, sortNode(compare("region-0", "region-1", "region-2"),
			table.SortKey{Col: "region", Desc: true}), c)
	})
}

// TestVecLazyColumnError pins the error-laziness contract: a filter
// over an unresolved column errors only when a row actually reaches
// the predicate, so filtering an empty range succeeds in both
// executors while a populated one fails with the identical message.
func TestVecLazyColumnError(t *testing.T) {
	c := nullCatalog()
	t.Run("empty_input_no_error", func(t *testing.T) {
		sc := scan("facts")
		sc.RowStart, sc.RowEnd = 0, 0
		assertVecParity(t, filter(sc, table.Pred{Col: "nope", Op: table.OpEq, Val: table.I(1)}), c)
	})
	t.Run("rows_reach_pred_error", func(t *testing.T) {
		assertVecParity(t, filter(scan("facts"), table.Pred{Col: "nope", Op: table.OpEq, Val: table.I(1)}), c)
	})
}
