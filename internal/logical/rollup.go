package logical

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// RollupStats is the optional Stats extension the rollup routing pass
// consults: the registered rollup definitions over a base table, in
// sorted name order (the pass's deterministic candidate order). A Stats
// that does not implement it disables routing; CatalogStats implements
// it.
type RollupStats interface {
	RollupsFor(base string) []table.RollupDef
}

func (s catalogStats) RollupsFor(base string) []table.RollupDef {
	return s.c.RollupsFor(base)
}

// rollupPass rewrites Aggregate subtrees onto registered rollup
// materializations. It matches the post-pushdown dashboard shape —
// Aggregate over an optional Filter over a full (possibly
// column-narrowed, never row-ranged) Scan — and requires every filter
// column to be a rollup group-key column, so the filter removes whole
// groups and commutes exactly with the materialized aggregation. Three
// grains route:
//
//   - exact: the query's group-key sequence equals the rollup's and
//     every aggregate is materialized — the subtree becomes a Scan of
//     the rollup with the residual filter re-applied and a Project
//     renaming materialized columns to the query's output names.
//   - pinned: the query is a global aggregate (no group keys) whose
//     filter pins every rollup group key with an equality — at most one
//     complete group survives, so its materialized aggregates (any
//     function, AVG included) are the query's answer verbatim.
//   - reaggregated: the query groups by a subset (or reordering) of the
//     rollup keys — the subtree re-aggregates the rollup's partial
//     states (COUNT via COUNT_MERGE over partial counts, SUM over
//     integer partial sums, MIN/MAX over partial extrema; AVG never
//     re-aggregates, and float SUM stays on the base table because
//     reassociating float additions is not bit-exact).
//
// All rewrites are result-preserving bit-for-bit: the materialization
// is maintained synchronously inside Catalog.Put by the same
// accumulation sequence the direct plan would run, group emission is
// key-sorted on both paths, the remaining re-aggregations are exact
// integer or order-free extrema folds, and a pinned filter matching no
// group yields zero rows on both paths (a global aggregate of zero rows
// emits none). Exact routing is preferred over pinned, pinned over
// reaggregation; candidates are tried in sorted rollup-name order.
func rollupPass(o *Optimized, st Stats) []string {
	rs, ok := st.(RollupStats)
	if !ok {
		return nil
	}
	var notes []string
	o.Root = rewrite(o.Root, func(n *Node) *Node {
		if n.Op != OpAggregate {
			return n
		}
		scan, filter := aggScanShape(n)
		if scan == nil || !scanColsCover(scan, filter, n) {
			return n
		}
		defs := rs.RollupsFor(scan.Table)
		route := func(mode string, try func(RollupCandidate) *Node) *Node {
			for _, def := range defs {
				if !rollupFilterCovered(filter, def) {
					continue
				}
				cand := RollupCandidate{Def: def, Query: n, Filter: filter, Scan: scan, Stats: st}
				if repl := try(cand); repl != nil {
					notes = append(notes, fmt.Sprintf("%s -> %s (%s)", scan.Table, def.Name, mode))
					o.Rollups = append(o.Rollups, fmt.Sprintf("%s -> %s (%s)", scan.Table, def.Name, mode))
					return repl
				}
			}
			return nil
		}
		if repl := route("exact", tryExactRollup); repl != nil {
			return repl
		}
		if repl := route("pinned", tryPinnedRollup); repl != nil {
			return repl
		}
		if repl := route("reaggregated", tryCoarseRollup); repl != nil {
			return repl
		}
		return n
	})
	return notes
}

// RollupCandidate bundles one (query subtree, rollup definition) pair
// the routing pass evaluates.
type RollupCandidate struct {
	// Def is the registered rollup under consideration.
	Def table.RollupDef
	// Query is the Aggregate node being routed.
	Query *Node
	// Filter is the residual filter between Query and Scan, nil when
	// the aggregation is unfiltered.
	Filter *Node
	// Scan is the full-table scan of the rollup's base table.
	Scan *Node
	// Stats resolves base-table schemas for the integer-SUM gate.
	Stats Stats
}

// aggScanShape matches the routable subtree under an Aggregate node: an
// optional single Filter over an un-ranged Scan. Column narrowing is
// allowed (it drops no rows); row ranges are not. Returns (nil, nil)
// for any other shape.
func aggScanShape(n *Node) (scan, filter *Node) {
	c := n.Child()
	if c != nil && c.Op == OpFilter {
		filter = c
		c = c.Child()
	}
	if c == nil || c.Op != OpScan || c.RowStart != 0 || c.RowEnd != 0 {
		return nil, nil
	}
	return c, filter
}

// scanColsCover reports whether a column-narrowed scan still exposes
// every column the filter and aggregate reference. When it does not,
// the direct plan errors on the missing column and routing must not
// paper over that; an un-narrowed scan always covers.
func scanColsCover(scan, filter *Node, q *Node) bool {
	if len(scan.Cols) == 0 {
		return true
	}
	has := func(col string) bool {
		for _, c := range scan.Cols {
			if strings.EqualFold(c, col) {
				return true
			}
		}
		return false
	}
	if filter != nil {
		for _, p := range filter.Preds {
			if !has(p.Col) {
				return false
			}
		}
	}
	for _, g := range q.GroupBy {
		if !has(g) {
			return false
		}
	}
	for _, a := range q.Aggs {
		if a.Col != "" && !has(a.Col) {
			return false
		}
	}
	return true
}

// rollupFilterCovered reports whether every residual filter column is a
// rollup group-key column — the condition under which filtering before
// aggregation (the direct plan) and after materialization (the routed
// plan) keep exactly the same groups, because every row of a group
// shares its key values.
func rollupFilterCovered(filter *Node, def table.RollupDef) bool {
	if filter == nil {
		return true
	}
	return predsCovered(filter.Preds, def.GroupBy)
}

// aggOutName is the output column name an aggregate produces, mirroring
// table.AggregateSchema's default-naming rule.
func aggOutName(a table.Agg) string {
	if a.As != "" {
		return a.As
	}
	return strings.ToLower(a.Func.String()) + "_" + a.Col
}

// findRollupAgg returns the rollup's materialized column name for an
// aggregate with the given function and source column, or false when
// the rollup does not materialize it.
func findRollupAgg(def table.RollupDef, fn table.AggFunc, col string) (string, bool) {
	for _, ra := range def.Aggs {
		if ra.Func == fn && strings.EqualFold(ra.Col, col) {
			return aggOutName(ra), true
		}
	}
	return "", false
}

// tryExactRollup routes a query whose group-key sequence equals the
// rollup's and whose every aggregate is materialized: the subtree
// becomes Project(rename) over [Filter(residual) over] Scan(rollup).
func tryExactRollup(c RollupCandidate) *Node {
	q, def := c.Query, c.Def
	if len(q.GroupBy) != len(def.GroupBy) {
		return nil
	}
	for i, g := range q.GroupBy {
		if !strings.EqualFold(g, def.GroupBy[i]) {
			return nil
		}
	}
	proj := make([]string, 0, len(q.GroupBy)+len(q.Aggs))
	aliases := make([]string, 0, len(q.GroupBy)+len(q.Aggs))
	for i, g := range q.GroupBy {
		proj = append(proj, def.GroupBy[i])
		aliases = append(aliases, g)
	}
	for _, a := range q.Aggs {
		rcol, ok := findRollupAgg(def, a.Func, a.Col)
		if !ok {
			return nil
		}
		proj = append(proj, rcol)
		aliases = append(aliases, aggOutName(a))
	}
	return &Node{Op: OpProject, Proj: proj, Aliases: aliases, In: []*Node{rollupInput(c)}}
}

// tryPinnedRollup routes a global aggregate (no group keys) whose
// filter pins every rollup group key with an equality predicate. All
// surviving base rows then share one group-key tuple, so the direct
// plan aggregates exactly one complete group — the group the rollup
// already materialized. The subtree becomes Project(agg columns) over
// Filter over Scan(rollup): one row when the pinned group exists, zero
// when it does not, matching the row executor's empty-input global
// aggregate on both counts. Because the materialized row holds final
// (not partial) states of a complete group, every aggregate function
// routes, AVG included.
func tryPinnedRollup(c RollupCandidate) *Node {
	q, def := c.Query, c.Def
	if len(q.GroupBy) != 0 || c.Filter == nil {
		return nil
	}
	for _, k := range def.GroupBy {
		pinned := false
		for _, p := range c.Filter.Preds {
			if p.Op == table.OpEq && strings.EqualFold(p.Col, k) {
				pinned = true
				break
			}
		}
		if !pinned {
			return nil
		}
	}
	proj := make([]string, 0, len(q.Aggs))
	aliases := make([]string, 0, len(q.Aggs))
	for _, a := range q.Aggs {
		rcol, ok := findRollupAgg(def, a.Func, a.Col)
		if !ok {
			return nil
		}
		proj = append(proj, rcol)
		aliases = append(aliases, aggOutName(a))
	}
	return &Node{Op: OpProject, Proj: proj, Aliases: aliases, In: []*Node{rollupInput(c)}}
}

// tryCoarseRollup routes a query whose group keys are a subset (or
// reordering) of the rollup's by re-aggregating the materialized
// partial states. Only exactly-mergeable aggregates route: COUNT merges
// partial counts through COUNT_MERGE, SUM re-sums only integer-typed
// base columns (integer float64 sums below 2^53 are exact under any
// association), MIN/MAX fold partial extrema; AVG never routes coarser.
func tryCoarseRollup(c RollupCandidate) *Node {
	q, def := c.Query, c.Def
	for _, g := range q.GroupBy {
		found := false
		for _, k := range def.GroupBy {
			if strings.EqualFold(g, k) {
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	baseSchema, ok := c.Stats.Schema(c.Scan.Table)
	if !ok {
		return nil
	}
	remapped := make([]table.Agg, 0, len(q.Aggs))
	for _, a := range q.Aggs {
		rcol, found := findRollupAgg(def, a.Func, a.Col)
		if !found {
			return nil
		}
		out := table.Agg{Col: rcol, As: aggOutName(a)}
		switch a.Func {
		case table.AggCount:
			out.Func = table.AggCountMerge
		case table.AggSum:
			idx := baseSchema.ColIndex(a.Col)
			if idx < 0 || baseSchema[idx].Type != table.TypeInt {
				return nil
			}
			out.Func = table.AggSum
		case table.AggMin:
			out.Func = table.AggMin
		case table.AggMax:
			out.Func = table.AggMax
		default: // AVG (and anything else) cannot re-aggregate
			return nil
		}
		remapped = append(remapped, out)
	}
	return &Node{
		Op:      OpAggregate,
		GroupBy: append([]string(nil), q.GroupBy...),
		Aggs:    remapped,
		In:      []*Node{rollupInput(c)},
	}
}

// rollupInput builds the routed subtree's input: a Scan of the rollup
// materialization, wrapped in the residual filter when one exists.
func rollupInput(c RollupCandidate) *Node {
	scan := &Node{Op: OpScan, Table: c.Def.Name}
	if c.Filter == nil {
		return scan
	}
	return &Node{
		Op:    OpFilter,
		Preds: append([]table.Pred(nil), c.Filter.Preds...),
		In:    []*Node{scan},
	}
}
