package logical

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Fingerprint serializes the canonicalized tree: every field that
// affects execution, with predicate conjunctions sorted (evaluation
// order inside a conjunction cannot change results) and compare items
// sorted. Plans that fingerprint equally execute identically, so the
// NL and SQL compilations of the same question share one physical-plan
// cache slot. The encoding avoids fmt and allocates only the output
// string — it runs on every federated execution.
func Fingerprint(n *Node) string {
	var b strings.Builder
	b.Grow(192)
	fingerprintNode(&b, n)
	return b.String()
}

func fingerprintNode(b *strings.Builder, n *Node) {
	if n == nil {
		b.WriteString("_\x1f")
		return
	}
	b.WriteString(strconv.Itoa(int(n.Op)))
	b.WriteByte('\x1f')
	str := func(s string) { b.WriteString(s); b.WriteByte('\x1f') }
	strs := func(xs []string) {
		for _, s := range xs {
			str(s)
		}
		b.WriteByte('\x1d')
	}
	switch n.Op {
	case OpScan, OpInput, OpEmpty:
		str(strings.ToLower(n.Table))
		if n.RowEnd > 0 {
			str("@" + strconv.Itoa(n.RowStart) + ":" + strconv.Itoa(n.RowEnd))
		}
		strs(n.Cols)
	case OpFilter:
		fingerprintPreds(b, n.Preds)
	case OpProject:
		strs(n.Proj)
		strs(n.Aliases)
	case OpJoin:
		str(strings.ToLower(n.LeftCol))
		str(strings.ToLower(n.RightCol))
	case OpAggregate:
		strs(n.GroupBy)
		fingerprintAggs(b, n.Aggs)
	case OpSort:
		for _, k := range n.Keys {
			str(k.Col)
			if k.Desc {
				b.WriteByte('-')
			}
		}
		b.WriteByte('\x1d')
	case OpLimit:
		str(strconv.Itoa(n.N))
	case OpCompare:
		str(strings.ToLower(n.CompareCol))
		strs(sortedItems(n.Items))
		fingerprintPreds(b, n.Preds)
		fingerprintAggs(b, n.Aggs)
	}
	for _, in := range n.In {
		fingerprintNode(b, in)
	}
	b.WriteByte('\x1c')
}

// fingerprintPreds encodes a conjunction order-insensitively: the
// rendered predicates are sorted before writing, since conjunctive
// evaluation order never changes which rows pass.
func fingerprintPreds(b *strings.Builder, preds []table.Pred) {
	keys := make([]string, len(preds))
	for i, p := range preds {
		keys[i] = predKey(p)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\x1f')
	}
	b.WriteByte('\x1d')
}

func fingerprintAggs(b *strings.Builder, aggs []table.Agg) {
	for _, a := range aggs {
		b.WriteString(strconv.Itoa(int(a.Func)))
		b.WriteByte('\x1e')
		b.WriteString(strings.ToLower(a.Col))
		b.WriteByte('\x1e')
		b.WriteString(a.As)
		b.WriteByte('\x1f')
	}
	b.WriteByte('\x1d')
}
