// Package logical is the shared logical-plan IR of the unified query
// system. Both entry languages compile into it — natural-language
// questions through semop.Compile (parse → bind → compile) and SQL
// text through sql.Compile (parse → resolve → compile) — and every
// executor consumes it: the row interpreter (Run/Exec), the
// vectorized columnar executor (RunVec/ExecVec), the federated
// physical planner (internal/federate lowers an optimized tree into
// backend fragments), and the text→SQL renderer (semop's ToSQL reuses
// the comparison rewrite). The rule-based optimizer (Optimize) runs
// the same passes over every entry path, so predicate re-typing,
// pushdown, projection pruning, join-input reordering and the
// compare-to-grouped-filter rewrite cannot drift between the NL and
// SQL pipelines.
//
// The two executors are interchangeable: RunVec evaluates typed
// kernels over the catalog's cached 256-row columnar fragments
// (filters to selection vectors, hash joins over key arrays,
// aggregates over grouped columns, sorts via a stable permutation
// over typed key arrays, morsel-parallel via internal/par) and is
// bit-identical to Run — same schema, row order, cell values and
// errors, at any worker count. Every current operator has a columnar
// kernel; Vectorizable guards only operators added in the future, and
// callers choose an executor per plan knowing results never depend on
// the choice.
package logical

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
)

// Op identifies a plan node's operator.
type Op int

// Plan operators. The tree is left-deep: In[0] is the driving input of
// every non-leaf node; Join's In[1] is the joined side.
const (
	OpScan      Op = iota // leaf: base-table scan (Cols prunes columns)
	OpInput               // leaf: materialized input (federated fragment output)
	OpFilter              // conjunctive predicate filter
	OpProject             // column projection with optional output renames
	OpJoin                // inner hash equi-join on LeftCol = RightCol
	OpAggregate           // group-by aggregation
	OpSort                // stable multi-key sort
	OpLimit               // first-N rows
	OpDistinct            // duplicate-row elimination, first occurrence kept
	OpCompare             // per-item grouped filter union (NL comparison intent)
	// OpEmpty is a constant-empty leaf: the emptyfold pass proves a
	// filtered scan selects no rows and replaces the subtree with this
	// node, which executes as the table's schema with zero rows. New
	// operators append here — the fingerprint encodes Op ordinals, so
	// renumbering would silently split the plan cache.
	OpEmpty
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpInput:
		return "Input"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpJoin:
		return "Join"
	case OpAggregate:
		return "Aggregate"
	case OpSort:
		return "Sort"
	case OpLimit:
		return "Limit"
	case OpDistinct:
		return "Distinct"
	case OpCompare:
		return "Compare"
	case OpEmpty:
		return "Empty"
	default:
		return "?"
	}
}

// Sentinel errors.
var (
	// ErrEmptyPlan is returned when executing a nil tree.
	ErrEmptyPlan = errors.New("logical: empty plan")
	// ErrEmptyCompare is returned when a Compare node has no items.
	ErrEmptyCompare = errors.New("logical: comparison with no items")
)

// Node is one operator of a logical plan tree. Only the fields of the
// node's Op are meaningful; everything else is zero.
type Node struct {
	Op Op
	In []*Node // inputs: none for Scan/Input, one for unary ops, two for Join

	// Scan / Input
	Table string   // base table (Scan) or display name (Input)
	Index int      // fragment index (Input)
	Cols  []string // Scan: pruned column set in schema order (nil = all)
	// Scan row range [RowStart, RowEnd): the physical-row slice the
	// scan reads (the SQL dialect's ROWS a TO b clause — how the
	// federated SQL backend expresses fragment-ranged scans as text).
	// RowEnd == 0 means the whole table.
	RowStart, RowEnd int

	// EstOut is the optimizer's estimated output cardinality (rows),
	// stamped by the estimate pass and consumed as an allocation
	// pre-sizing hint by the interpreter. 0 means unknown. Never part
	// of the fingerprint — it cannot change results.
	EstOut int

	// Filter, and the common predicates of Compare
	Preds []table.Pred

	// Project
	Proj    []string // projected columns, output order
	Aliases []string // optional output renames, parallel to Proj ("" keeps)

	// Join
	LeftCol, RightCol string

	// Aggregate, and the per-branch aggregates of Compare
	GroupBy []string
	Aggs    []table.Agg

	// Sort
	Keys []table.SortKey

	// Limit
	N int

	// Compare
	CompareCol string
	Items      []string
}

// Child returns the node's driving input, nil for leaves.
func (n *Node) Child() *Node {
	if len(n.In) == 0 {
		return nil
	}
	return n.In[0]
}

// Clone deep-copies the tree. Optimizer passes mutate in place, so
// callers that keep the original must clone first.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.In = make([]*Node, len(n.In))
	for i, in := range n.In {
		c.In[i] = in.Clone()
	}
	c.Cols = append([]string(nil), n.Cols...)
	c.Preds = append([]table.Pred(nil), n.Preds...)
	c.Proj = append([]string(nil), n.Proj...)
	c.Aliases = append([]string(nil), n.Aliases...)
	c.GroupBy = append([]string(nil), n.GroupBy...)
	c.Aggs = append([]table.Agg(nil), n.Aggs...)
	c.Keys = append([]table.SortKey(nil), n.Keys...)
	c.Items = append([]string(nil), n.Items...)
	return &c
}

// String renders the tree as a readable operator pipeline — the
// "logical:" line of EXPLAIN. The driving chain renders left to right;
// a join's right side renders inline inside the Join operator.
func (n *Node) String() string {
	if n == nil {
		return "<empty>"
	}
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	if c := n.Child(); c != nil {
		c.render(b)
		b.WriteString(" -> ")
	}
	switch n.Op {
	case OpScan:
		if len(n.Cols) > 0 {
			fmt.Fprintf(b, "Scan(%s[%s]", n.Table, strings.Join(n.Cols, ","))
		} else {
			fmt.Fprintf(b, "Scan(%s", n.Table)
		}
		if n.RowEnd > 0 {
			fmt.Fprintf(b, " rows[%d:%d]", n.RowStart, n.RowEnd)
		}
		b.WriteByte(')')
	case OpInput:
		fmt.Fprintf(b, "Input[%d](%s)", n.Index, n.Table)
	case OpEmpty:
		fmt.Fprintf(b, "Empty(%s)", n.Table)
	case OpFilter:
		fmt.Fprintf(b, "Filter(%s)", predList(n.Preds, " AND "))
	case OpProject:
		fmt.Fprintf(b, "Project(%s)", strings.Join(n.Proj, ","))
	case OpJoin:
		fmt.Fprintf(b, "Join(%s on %s=%s)", n.In[1].String(), n.LeftCol, n.RightCol)
	case OpAggregate:
		fmt.Fprintf(b, "Aggregate(group=%v, %s)", n.GroupBy, aggList(n.Aggs))
	case OpSort:
		parts := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			parts[i] = k.Col
			if k.Desc {
				parts[i] += " desc"
			}
		}
		fmt.Fprintf(b, "Sort(%s)", strings.Join(parts, ","))
	case OpLimit:
		fmt.Fprintf(b, "Limit(%d)", n.N)
	case OpDistinct:
		b.WriteString("Distinct")
	case OpCompare:
		fmt.Fprintf(b, "Compare(%s in [%s]", n.CompareCol, strings.Join(sortedItems(n.Items), ","))
		if len(n.Preds) > 0 {
			fmt.Fprintf(b, " filter=[%s]", predList(n.Preds, " AND "))
		}
		fmt.Fprintf(b, " -> group=[%s] %s)", n.CompareCol, aggList(n.Aggs))
	default:
		b.WriteString(n.Op.String())
	}
}

func predList(preds []table.Pred, sep string) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, sep)
}

func aggList(aggs []table.Agg) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = fmt.Sprintf("%s(%s)", a.Func, a.Col)
	}
	return strings.Join(parts, ",")
}

func sortedItems(items []string) []string {
	out := append([]string(nil), items...)
	sort.Strings(out)
	return out
}

// CompareBranch is one arm of the compare-to-grouped-filter rewrite: a
// filtered grouped aggregate over one compared item.
type CompareBranch struct {
	Item    string
	Preds   []table.Pred // common predicates plus the per-item match
	GroupBy []string
}

// CompareBranches materializes the compare-to-grouped-filter rewrite
// for a Compare node: one branch per item in sorted order, each
// carrying the node's common predicates plus a case-insensitive match
// on the compare column. The executor, the federated planner and
// semop's text→SQL renderer all consume this single function, so the
// three lowerings of a comparison cannot drift.
func CompareBranches(n *Node) []CompareBranch {
	items := sortedItems(n.Items)
	out := make([]CompareBranch, 0, len(items))
	for _, item := range items {
		preds := append(append([]table.Pred(nil), n.Preds...),
			table.Pred{Col: n.CompareCol, Op: table.OpContains, Val: table.S(item)})
		out = append(out, CompareBranch{
			Item:    item,
			Preds:   preds,
			GroupBy: []string{n.CompareCol},
		})
	}
	return out
}
