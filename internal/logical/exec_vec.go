package logical

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/par"
	"repro/internal/table"
)

// Vectorized executor. RunVec interprets the same trees Run does, but
// over typed column batches (table.Batch, one per 256-row fragment)
// instead of row-at-a-time Values: filters compile predicates once and
// emit selection vectors, hash joins build and probe on extracted key
// columns with typed map keys, and aggregates accumulate over grouped
// columns with an allocation-free group-key encoding. Batches are
// evaluated with morsel-style fragment parallelism through
// internal/par, while everything order-sensitive (float accumulation,
// result emission) stays in fragment order — so results are
// bit-identical to the row interpreter at any worker count.
//
// Sort runs as a columnar kernel too: the key columns are extracted
// to per-kind typed arrays over the selected rows (nulls first,
// cross-kind int/float via float64, generic Values only for
// mixed-kind columns) and a stable permutation sort reorders row
// references — the exact ordering and tie stability of table.Sort
// without boxing a Value per comparison. Compare reuses the filter
// and aggregate kernels, running each CompareBranches arm over the
// child stream and appending per-item results in branch order.
// Every operator of the IR has a columnar form; Vectorizable remains
// the dispatch gate for operators added in the future, and the
// federated executor records the plan-time decision in EXPLAIN as
// "exec: vectorized|row".

// Vectorizable reports whether the whole tree can run on the
// vectorized executor. Every current operator can; only a future
// operator without a columnar kernel forces the row interpreter.
func Vectorizable(n *Node) bool {
	if n == nil {
		return false
	}
	switch n.Op {
	case OpScan, OpInput, OpEmpty, OpFilter, OpProject, OpJoin,
		OpAggregate, OpSort, OpLimit, OpDistinct, OpCompare:
		for _, in := range n.In {
			if !Vectorizable(in) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// VecEnv supplies the vectorized executor's environment: how leaves
// resolve to tables, where cached columnar fragments for a leaf's
// table live, and the morsel parallelism budget.
type VecEnv struct {
	// Leaf resolves a leaf node to its table, with the same contract
	// as Run's Source: the returned table is the leaf's final output.
	Leaf Source
	// Scan, when set, resolves OpScan leaves to the raw base table
	// plus its columnar fragments; the executor then applies the
	// node's row range and column pruning natively (as selection
	// vectors and column index mappings) instead of copying rows.
	// When nil, OpScan leaves go through Leaf.
	Scan func(leaf *Node) (*table.Table, *table.Frags, error)
	// Frags, when set, returns cached columnar fragments covering
	// exactly the table Leaf returned for this leaf (or nil).
	Frags func(leaf *Node) *table.Frags
	// Workers bounds fragment parallelism (par.Workers convention).
	Workers int
}

// RunVec interprets the tree with the vectorized kernels. Trees must
// satisfy Vectorizable; other operators return an error. Results are
// bit-identical to Run over the same sources.
func RunVec(n *Node, env VecEnv) (*table.Table, error) {
	if n == nil {
		return nil, ErrEmptyPlan
	}
	v := &vecRun{env: env}
	s, err := v.eval(n)
	if err != nil {
		return nil, err
	}
	return s.materialize(), nil
}

// ExecVec runs the tree against a single catalog with the vectorized
// executor — the columnar counterpart of Exec, resolving Scan leaves
// to catalog tables and their cached fragment batches.
func ExecVec(n *Node, c *table.Catalog, workers int) (*table.Table, error) {
	return RunVec(n, VecEnv{
		Scan: func(leaf *Node) (*table.Table, *table.Frags, error) {
			t, err := c.Get(leaf.Table)
			if err != nil {
				return nil, nil, err
			}
			return t, c.FragsOf(leaf.Table), nil
		},
		Leaf: func(leaf *Node) (*table.Table, error) {
			if leaf.Op != OpEmpty {
				return nil, fmt.Errorf("logical: unresolved %v leaf", leaf.Op)
			}
			t, err := c.Get(leaf.Table)
			if err != nil {
				return nil, err
			}
			empty := table.New(t.Name, t.Schema)
			if len(leaf.Cols) > 0 {
				return table.Project(empty, leaf.Cols...)
			}
			return empty, nil
		},
		Workers: workers,
	})
}

// vecRun is one vectorized execution.
type vecRun struct {
	env VecEnv
}

// vstream is an operator's in-flight result: backing rows plus a lazy
// columnar view, an optional column projection (schema[i] reads base
// column cols[i]) and optional per-batch selection vectors. Streams
// defer row materialization so scan → filter → aggregate pipelines
// never copy rows at all.
type vstream struct {
	name   string
	schema table.Schema
	base   *table.Table
	fr     *table.Frags
	cols   []int          // nil = identity projection onto base columns
	bs     []*table.Batch // lazy columnar view of base, FragmentRows grid
	sels   [][]int32      // per-batch selections; nil slice = all rows; nil entry = whole batch
	mat    *table.Table   // cached materialization
}

func passthrough(t *table.Table, fr *table.Frags) *vstream {
	return &vstream{name: t.Name, schema: t.Schema, base: t, fr: fr}
}

// baseCol maps a stream-schema column index to its base column index.
func (s *vstream) baseCol(i int) int {
	if s.cols == nil {
		return i
	}
	return s.cols[i]
}

// selCount counts selected rows.
func (s *vstream) selCount() int {
	if s.sels == nil {
		return s.base.Len()
	}
	n := 0
	for bi, sel := range s.sels {
		if sel == nil {
			n += s.bs[bi].Len
		} else {
			n += len(sel)
		}
	}
	return n
}

// materialize renders the stream as a table: shared row slices when no
// projection is pending, projected copies otherwise — exactly the rows
// the row interpreter's Filter/Project chain would produce.
func (s *vstream) materialize() *table.Table {
	if s.mat != nil {
		return s.mat
	}
	if s.sels == nil && s.cols == nil {
		s.mat = s.base
		return s.mat
	}
	out := table.New(s.name, s.schema)
	out.Rows = make([][]Value, 0, s.selCount())
	emit := func(row []Value) {
		if s.cols == nil {
			out.Rows = append(out.Rows, row)
			return
		}
		nr := make([]Value, len(s.cols))
		for i, ci := range s.cols {
			nr[i] = row[ci]
		}
		out.Rows = append(out.Rows, nr)
	}
	if s.sels == nil {
		for _, row := range s.base.Rows {
			emit(row)
		}
	} else {
		for bi, sel := range s.sels {
			start := bi * table.FragmentRows
			if sel == nil {
				for ri := 0; ri < s.bs[bi].Len; ri++ {
					emit(s.base.Rows[start+ri])
				}
				continue
			}
			for _, ri := range sel {
				emit(s.base.Rows[start+int(ri)])
			}
		}
	}
	s.mat = out
	return s.mat
}

// Value is re-exported locally for brevity in row emission.
type Value = table.Value

// batches resolves the stream's columnar view, reusing catalog
// fragments when they cover the base table exactly and extracting
// fragment-aligned batches (in parallel) otherwise.
func (v *vecRun) batches(s *vstream) []*table.Batch {
	if s.bs != nil {
		return s.bs
	}
	if s.fr != nil && s.fr.Rows == s.base.Len() {
		s.bs = s.fr.Batches
		return s.bs
	}
	n := s.base.Len()
	nb := (n + table.FragmentRows - 1) / table.FragmentRows
	s.bs = make([]*table.Batch, nb)
	par.ForEach(nb, v.env.Workers, func(bi int) {
		start := bi * table.FragmentRows
		end := start + table.FragmentRows
		if end > n {
			end = n
		}
		s.bs[bi] = table.BatchRange(s.base, start, end)
	})
	return s.bs
}

// eval recursively evaluates the tree to a stream.
func (v *vecRun) eval(n *Node) (*vstream, error) {
	if n == nil {
		return nil, ErrEmptyPlan
	}
	switch n.Op {
	case OpScan:
		if v.env.Scan != nil {
			return v.scanStream(n)
		}
		return v.leafStream(n)
	case OpInput, OpEmpty:
		return v.leafStream(n)
	case OpJoin:
		ls, err := v.eval(n.In[0])
		if err != nil {
			return nil, err
		}
		rs, err := v.eval(n.In[1])
		if err != nil {
			return nil, err
		}
		out, err := v.hashJoin(ls.materialize(), rs.materialize(), n.LeftCol, n.RightCol, n.EstOut)
		if err != nil {
			return nil, err
		}
		return passthrough(out, nil), nil
	}
	s, err := v.eval(n.Child())
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case OpFilter:
		return v.filter(s, n.Preds)
	case OpProject:
		return v.project(s, n.Proj, n.Aliases)
	case OpAggregate:
		out, err := v.aggregate(s, n.GroupBy, n.Aggs, n.EstOut)
		if err != nil {
			return nil, err
		}
		return passthrough(out, nil), nil
	case OpSort:
		return v.sortStream(s, n.Keys)
	case OpLimit:
		return passthrough(table.Limit(s.materialize(), n.N), nil), nil
	case OpDistinct:
		return passthrough(table.Distinct(s.materialize()), nil), nil
	case OpCompare:
		return v.compareStream(n, s)
	default:
		return nil, fmt.Errorf("logical: %v is not vectorizable", n.Op)
	}
}

func (v *vecRun) leafStream(leaf *Node) (*vstream, error) {
	t, err := v.env.Leaf(leaf)
	if err != nil {
		return nil, err
	}
	var fr *table.Frags
	if v.env.Frags != nil {
		fr = v.env.Frags(leaf)
	}
	return passthrough(t, fr), nil
}

// scanStream resolves an OpScan leaf natively: the row range becomes
// per-batch selection vectors and the pruned column set becomes a
// column index mapping — no rows are sliced or copied.
func (v *vecRun) scanStream(leaf *Node) (*vstream, error) {
	t, fr, err := v.env.Scan(leaf)
	if err != nil {
		return nil, err
	}
	s := passthrough(t, fr)
	if len(leaf.Cols) > 0 {
		cols := make([]int, len(leaf.Cols))
		schema := make(table.Schema, len(leaf.Cols))
		for i, c := range leaf.Cols {
			idx := t.Schema.ColIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("%w: %s", table.ErrNoColumn, c)
			}
			cols[i] = idx
			schema[i] = t.Schema[idx]
		}
		s.cols, s.schema = cols, schema
	}
	if leaf.RowEnd > 0 {
		start, end := leaf.RowStart, leaf.RowEnd
		if end > t.Len() {
			end = t.Len()
		}
		if start > end {
			start = end
		}
		bs := v.batches(s)
		s.sels = rangeSels(bs, []table.RowRange{{Start: start, End: end}})
	}
	return s, nil
}

// rangeSels converts ascending disjoint row ranges into per-batch
// selection vectors on the FragmentRows grid: nil for fully covered
// batches, explicit indices for partially covered ones.
func rangeSels(bs []*table.Batch, ranges []table.RowRange) [][]int32 {
	sels := make([][]int32, len(bs))
	covered := make([]bool, len(bs))
	for bi := range bs {
		sels[bi] = []int32{}
	}
	for _, r := range ranges {
		for bi := range bs {
			start := bi * table.FragmentRows
			end := start + bs[bi].Len
			lo, hi := r.Start, r.End
			if lo < start {
				lo = start
			}
			if hi > end {
				hi = end
			}
			if lo >= hi {
				continue
			}
			if lo == start && hi == end && len(sels[bi]) == 0 && !covered[bi] {
				sels[bi] = nil
				covered[bi] = true
				continue
			}
			if covered[bi] {
				continue // already whole-batch
			}
			for ri := lo; ri < hi; ri++ {
				sels[bi] = append(sels[bi], int32(ri-start))
			}
		}
	}
	return sels
}

// ---- filter ----

// vecPred is a predicate compiled against a stream: the base column
// index is resolved once (lazily erroring, like the row path, only if
// a row actually reaches an unresolvable predicate) and the literal is
// pre-lowered for the typed fast paths.
type vecPred struct {
	p      table.Pred
	ci     int // base column index; -1 = unresolved
	f64    float64
	str    string
	b      bool
	needle string // lowered CONTAINS needle
	null   bool   // NULL literal: matches nothing
}

func compilePreds(s *vstream, preds []table.Pred) []vecPred {
	out := make([]vecPred, len(preds))
	for i, p := range preds {
		cp := vecPred{p: p, ci: -1, null: p.Val.IsNull()}
		if idx := s.schema.ColIndex(p.Col); idx >= 0 {
			cp.ci = s.baseCol(idx)
		}
		switch {
		case p.Op == table.OpContains:
			cp.needle = strings.ToLower(p.Val.String())
		case p.Val.IsNumeric():
			cp.f64 = p.Val.Float()
		case p.Val.Kind() == table.TypeString || p.Val.Kind() == table.TypeDate:
			cp.str = p.Val.Str()
		case p.Val.Kind() == table.TypeBool:
			cp.b = p.Val.Bool()
		}
		out[i] = cp
	}
	return out
}

// filter refines the stream's selection vectors, evaluating batches in
// parallel. Selection order within and across batches is row order, so
// results are worker-count independent.
func (v *vecRun) filter(s *vstream, preds []table.Pred) (*vstream, error) {
	bs := v.batches(s)
	cps := compilePreds(s, preds)
	nsels := make([][]int32, len(bs))
	errs := make([]error, len(bs))
	par.ForEach(len(bs), v.env.Workers, func(bi int) {
		var in []int32
		if s.sels != nil {
			in = s.sels[bi]
			if in != nil && len(in) == 0 {
				nsels[bi] = in
				return
			}
		}
		nsels[bi], errs[bi] = filterBatch(bs[bi], in, cps)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &vstream{
		name: s.name, schema: s.schema, base: s.base,
		fr: s.fr, cols: s.cols, bs: bs, sels: nsels,
	}, nil
}

// filterBatch applies the predicate conjunction to one batch,
// pipelining each predicate over the survivors of the previous one —
// the same short-circuit shape (and therefore the same lazy error
// semantics) as the row interpreter.
func filterBatch(b *table.Batch, in []int32, cps []vecPred) ([]int32, error) {
	cand := in
	for pi := range cps {
		cp := &cps[pi]
		if cand != nil && len(cand) == 0 {
			return cand, nil // no row reaches the remaining predicates
		}
		if b.Len == 0 {
			return []int32{}, nil
		}
		if cp.ci < 0 {
			return nil, fmt.Errorf("%w: %s", table.ErrNoColumn, cp.p.Col)
		}
		if cp.null {
			return []int32{}, nil // NULL literal matches nothing
		}
		next, err := evalPred(b, cand, cp)
		if err != nil {
			return nil, err
		}
		cand = next
	}
	if cand == nil {
		cand = fullSel(b.Len)
	}
	return cand, nil
}

func fullSel(n int) []int32 {
	sel := make([]int32, n)
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// evalPred evaluates one predicate over the candidate rows of a batch
// (nil = all rows), returning the passing indices in row order.
func evalPred(b *table.Batch, cand []int32, cp *vecPred) ([]int32, error) {
	col := &b.Cols[cp.ci]
	n := len(cand)
	if cand == nil {
		n = b.Len
	}
	out := make([]int32, 0, n)
	each := func(fn func(ri int) (bool, error)) error {
		if cand == nil {
			for ri := 0; ri < b.Len; ri++ {
				ok, err := fn(ri)
				if err != nil {
					return err
				}
				if ok {
					out = append(out, int32(ri))
				}
			}
			return nil
		}
		for _, ri := range cand {
			ok, err := fn(int(ri))
			if err != nil {
				return err
			}
			if ok {
				out = append(out, ri)
			}
		}
		return nil
	}

	generic := func() error {
		return each(func(ri int) (bool, error) { return cp.p.Match(col.ValueAt(ri)) })
	}

	op := cp.p.Op
	var err error
	switch {
	case col.Boxed != nil:
		err = generic()
	case op == table.OpContains:
		if col.Strs != nil {
			err = each(func(ri int) (bool, error) {
				if col.Nulls.Get(ri) {
					return false, nil
				}
				return containsFold(col.Strs[ri], cp.needle), nil
			})
		} else {
			err = generic()
		}
	case col.Ints != nil && cp.p.Val.IsNumeric():
		// Int cells compare through float64, exactly like Compare.
		err = each(func(ri int) (bool, error) {
			if col.Nulls.Get(ri) {
				return false, nil
			}
			return cmpOK(cmpFloat(float64(col.Ints[ri]), cp.f64), op)
		})
	case col.Floats != nil && cp.p.Val.IsNumeric():
		err = each(func(ri int) (bool, error) {
			if col.Nulls.Get(ri) {
				return false, nil
			}
			return cmpOK(cmpFloat(col.Floats[ri], cp.f64), op)
		})
	case col.Strs != nil && (cp.p.Val.Kind() == table.TypeString || cp.p.Val.Kind() == table.TypeDate):
		// String and date cells both compare lexically on the raw
		// string, whether kinds match or cross (table.Compare's
		// same-kind and rendered-string fallbacks coincide here).
		err = each(func(ri int) (bool, error) {
			if col.Nulls.Get(ri) {
				return false, nil
			}
			return cmpOK(strings.Compare(col.Strs[ri], cp.str), op)
		})
	case col.Bools != nil && cp.p.Val.Kind() == table.TypeBool:
		err = each(func(ri int) (bool, error) {
			if col.Nulls.Get(ri) {
				return false, nil
			}
			return cmpOK(cmpBool(col.Bools[ri], cp.b), op)
		})
	default:
		err = generic()
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	default:
		return 0
	}
}

func cmpOK(c int, op table.CmpOp) (bool, error) {
	switch op {
	case table.OpEq:
		return c == 0, nil
	case table.OpNe:
		return c != 0, nil
	case table.OpLt:
		return c < 0, nil
	case table.OpLe:
		return c <= 0, nil
	case table.OpGt:
		return c > 0, nil
	case table.OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("table: unknown operator %v", op)
	}
}

// containsFold reports case-insensitive substring containment,
// byte-folding pure-ASCII haystacks without allocating and deferring
// to the row interpreter's exact ToLower form otherwise. needle must
// already be lowered with strings.ToLower.
func containsFold(s, needle string) bool {
	if needle == "" {
		return true
	}
	if !asciiString(s) {
		return strings.Contains(strings.ToLower(s), needle)
	}
	// ASCII haystack: ToLower(s) folds bytes in place, so a direct
	// folded scan is equivalent. Non-ASCII needle bytes can never
	// match a folded ASCII byte, which Contains agrees with.
	n := len(needle)
	if n > len(s) {
		return false
	}
	for i := 0; i+n <= len(s); i++ {
		if foldedPrefix(s[i:i+n], needle) {
			return true
		}
	}
	return false
}

func foldedPrefix(s, needle string) bool {
	for i := 0; i < len(needle); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != needle[i] {
			return false
		}
	}
	return true
}

func asciiString(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// ---- project ----

// project composes a column selection onto the stream without copying
// any rows; materialization applies it exactly like table.Project.
func (v *vecRun) project(s *vstream, proj, aliases []string) (*vstream, error) {
	cols := make([]int, len(proj))
	schema := make(table.Schema, len(proj))
	for i, c := range proj {
		idx := s.schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", table.ErrNoColumn, c)
		}
		cols[i] = s.baseCol(idx)
		schema[i] = s.schema[idx]
	}
	for i, alias := range aliases {
		if alias != "" && i < len(schema) {
			schema[i].Name = alias
		}
	}
	return &vstream{
		name: s.name, schema: schema, base: s.base,
		fr: s.fr, cols: cols, bs: s.bs, sels: s.sels,
	}, nil
}

// ---- hash join ----

// Key-column classes for the typed join fast paths.
const (
	kcEmpty   = iota // no non-null keys: join output is empty
	kcNum            // int/float cells: float64 map keys (Compare crosses kinds via float64)
	kcStr            // string/date cells: raw-string map keys ("s:"-Key equivalence)
	kcBool           // bool cells
	kcGeneric        // mixed kinds or NaN: exact Value.Key() strings
)

// keyCol is one join key column extracted to a typed array.
type keyCol struct {
	class int
	nums  []float64
	strs  []string
	bools []bool
	vals  []Value
	nulls table.Bitmap
}

// extractKeyCol pulls column idx of t into typed form, demoting to the
// generic class on mixed kinds or NaN (whose typed map behavior would
// diverge from Value.Key equality).
func extractKeyCol(t *table.Table, idx int) *keyCol {
	n := t.Len()
	kc := &keyCol{class: kcEmpty, nulls: table.NewBitmap(n)}
	for i, row := range t.Rows {
		v := row[idx]
		if v.IsNull() {
			kc.nulls.Set(i)
			continue
		}
		class := kcGeneric
		switch {
		case v.IsNumeric():
			class = kcNum
		case v.Kind() == table.TypeString || v.Kind() == table.TypeDate:
			class = kcStr
		case v.Kind() == table.TypeBool:
			class = kcBool
		}
		if kc.class == kcEmpty {
			kc.class = class
			switch class {
			case kcNum:
				kc.nums = make([]float64, n)
			case kcStr:
				kc.strs = make([]string, n)
			case kcBool:
				kc.bools = make([]bool, n)
			}
		}
		if class != kc.class {
			return genericKeyCol(t, idx)
		}
		switch class {
		case kcNum:
			f := v.Float()
			if f != f { // NaN: typed map keys never match themselves
				return genericKeyCol(t, idx)
			}
			kc.nums[i] = f
		case kcStr:
			kc.strs[i] = v.Str()
		case kcBool:
			kc.bools[i] = v.Bool()
		default:
			return genericKeyCol(t, idx)
		}
	}
	return kc
}

func genericKeyCol(t *table.Table, idx int) *keyCol {
	n := t.Len()
	kc := &keyCol{class: kcGeneric, vals: make([]Value, n), nulls: table.NewBitmap(n)}
	for i, row := range t.Rows {
		kc.vals[i] = row[idx]
		if row[idx].IsNull() {
			kc.nulls.Set(i)
		}
	}
	return kc
}

// hashJoin is the vectorized inner equi-join: bit-identical to
// table.HashJoinHint (same build-side rule, same probe order, same
// emitted row layout) with typed key maps instead of per-row Key()
// strings, and probe partitioned across workers with in-order
// concatenation.
func (v *vecRun) hashJoin(left, right *table.Table, leftCol, rightCol string, hint int) (*table.Table, error) {
	li := left.Schema.ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("%w: %s.%s", table.ErrNoColumn, left.Name, leftCol)
	}
	ri := right.Schema.ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("%w: %s.%s", table.ErrNoColumn, right.Name, rightCol)
	}
	out := table.New(left.Name+"_join_"+right.Name, table.JoinedSchema(left.Schema, right.Name, right.Schema))
	if hint > 0 {
		out.Rows = make([][]Value, 0, hint)
	}

	lk, rk := extractKeyCol(left, li), extractKeyCol(right, ri)
	if lk.class == kcEmpty || rk.class == kcEmpty {
		return out, nil
	}
	if lk.class != rk.class {
		if lk.class == kcGeneric {
			rk = genericKeyCol(right, ri)
		} else if rk.class == kcGeneric {
			lk = genericKeyCol(left, li)
		} else {
			// Disjoint key classes: Value.Key prefixes differ, so no
			// pair can match.
			return out, nil
		}
	}

	// Build on the smaller input, probe with the larger — the row
	// path's exact rule, including the tie break.
	buildLeft := len(left.Rows) <= len(right.Rows)
	bt, bk, pt, pk := left, lk, right, rk
	if !buildLeft {
		bt, bk, pt, pk = right, rk, left, lk
	}

	buckets := buildBuckets(bt, bk)
	emit := func(pi, bi32 int32) []Value {
		if buildLeft {
			return concatJoinRow(bt.Rows[bi32], pt.Rows[pi])
		}
		return concatJoinRow(pt.Rows[pi], bt.Rows[bi32])
	}
	probe := func(lo, hi int, dst [][]Value) [][]Value {
		for pi := lo; pi < hi; pi++ {
			if pk.nulls.Get(pi) {
				continue
			}
			for _, bidx := range buckets.lookup(pk, pi) {
				dst = append(dst, emit(int32(pi), bidx))
			}
		}
		return dst
	}

	n := pt.Len()
	workers := par.Workers(v.env.Workers)
	if n < 4096 || workers <= 1 {
		out.Rows = probe(0, n, out.Rows)
		return out, nil
	}
	// Morsel-parallel probe: contiguous partitions emit into private
	// buffers concatenated in partition order, so the output order is
	// probe-row order at any worker count.
	stride := (n + workers - 1) / workers
	parts := (n + stride - 1) / stride
	bufs := make([][][]Value, parts)
	par.ForEach(parts, workers, func(p int) {
		lo := p * stride
		hi := lo + stride
		if hi > n {
			hi = n
		}
		bufs[p] = probe(lo, hi, nil)
	})
	for _, buf := range bufs {
		out.Rows = append(out.Rows, buf...)
	}
	return out, nil
}

func concatJoinRow(a, b []Value) []Value {
	out := make([]Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// joinBuckets maps typed keys to build-side row indices (in build row
// order, as the row path's map of appended slices does).
type joinBuckets struct {
	class int
	num   map[float64][]int32
	str   map[string][]int32
	boolB [2][]int32
	gen   map[string][]int32
}

func buildBuckets(t *table.Table, kc *keyCol) *joinBuckets {
	jb := &joinBuckets{class: kc.class}
	n := t.Len()
	switch kc.class {
	case kcNum:
		jb.num = make(map[float64][]int32, n)
		for i := 0; i < n; i++ {
			if !kc.nulls.Get(i) {
				jb.num[kc.nums[i]] = append(jb.num[kc.nums[i]], int32(i))
			}
		}
	case kcStr:
		jb.str = make(map[string][]int32, n)
		for i := 0; i < n; i++ {
			if !kc.nulls.Get(i) {
				jb.str[kc.strs[i]] = append(jb.str[kc.strs[i]], int32(i))
			}
		}
	case kcBool:
		for i := 0; i < n; i++ {
			if !kc.nulls.Get(i) {
				b := 0
				if kc.bools[i] {
					b = 1
				}
				jb.boolB[b] = append(jb.boolB[b], int32(i))
			}
		}
	default:
		jb.gen = make(map[string][]int32, n)
		for i := 0; i < n; i++ {
			if !kc.nulls.Get(i) {
				k := kc.vals[i].Key()
				jb.gen[k] = append(jb.gen[k], int32(i))
			}
		}
	}
	return jb
}

func (jb *joinBuckets) lookup(kc *keyCol, i int) []int32 {
	switch jb.class {
	case kcNum:
		return jb.num[kc.nums[i]]
	case kcStr:
		return jb.str[kc.strs[i]]
	case kcBool:
		b := 0
		if kc.bools[i] {
			b = 1
		}
		return jb.boolB[b]
	default:
		return jb.gen[kc.vals[i].Key()]
	}
}

// ---- sort ----

// sortCol is one sort key extracted to typed array form over the
// stream's selected rows, reusing the join kernels' key-column
// classes: uniform numeric columns compare through float64 (the
// cross-kind int/float rule of table.Compare), string and date cells
// compare lexically on the raw string (same-kind and rendered-string
// fallback coincide), bools order false < true, and mixed-kind
// columns demote to exact Values compared with table.Compare itself.
type sortCol struct {
	class int
	nums  []float64
	strs  []string
	bools []bool
	vals  []Value
	nulls table.Bitmap
}

// compare orders the selected rows a and b on this key with
// table.Compare's exact semantics: NULL sorts before every non-NULL
// value, two NULLs tie, and non-NULL cells dispatch on the column
// class. NaN floats tie with everything NaN-adjacent exactly as the
// row path's float comparison does.
func (sc *sortCol) compare(a, b int) int {
	an, bn := sc.nulls.Get(a), sc.nulls.Get(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	switch sc.class {
	case kcNum:
		return cmpFloat(sc.nums[a], sc.nums[b])
	case kcStr:
		return strings.Compare(sc.strs[a], sc.strs[b])
	case kcBool:
		return cmpBool(sc.bools[a], sc.bools[b])
	default:
		return table.Compare(sc.vals[a], sc.vals[b])
	}
}

// sortStream is the vectorized Sort kernel: it gathers the stream's
// selected rows in row order, extracts each key column into typed
// arrays, stable-sorts a row permutation, and emits the rows in
// sorted order (applying any pending projection) — bit-identical to
// table.Sort over the materialized stream, including tie stability,
// because the permutation starts in row order and the comparator
// reproduces table.Compare exactly.
func (v *vecRun) sortStream(s *vstream, keys []table.SortKey) (*vstream, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		idx := s.schema.ColIndex(k.Col)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", table.ErrNoColumn, k.Col)
		}
		keyIdx[i] = s.baseCol(idx)
	}
	bs := v.batches(s)
	n := s.selCount()
	// Row locators of every selected row, in row order: batch index
	// and in-batch row index.
	rowB := make([]int32, 0, n)
	rowR := make([]int32, 0, n)
	for bi, b := range bs {
		var sel []int32
		if s.sels != nil {
			sel = s.sels[bi]
			if sel != nil && len(sel) == 0 {
				continue
			}
		}
		forSel(b.Len, sel, func(ri int) {
			rowB = append(rowB, int32(bi))
			rowR = append(rowR, int32(ri))
		})
	}
	cols := make([]*sortCol, len(keys))
	for k := range keys {
		cols[k] = extractSortCol(bs, rowB, rowR, keyIdx[k])
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(i, j int) bool {
		a, b := int(perm[i]), int(perm[j])
		for k := range keys {
			c := cols[k].compare(a, b)
			if c == 0 {
				continue
			}
			if keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := table.New(s.name, s.schema)
	out.Rows = make([][]Value, 0, n)
	for _, pi := range perm {
		row := s.base.Rows[int(rowB[pi])*table.FragmentRows+int(rowR[pi])]
		if s.cols != nil {
			nr := make([]Value, len(s.cols))
			for i, ci := range s.cols {
				nr[i] = row[ci]
			}
			row = nr
		}
		out.Rows = append(out.Rows, row)
	}
	return passthrough(out, nil), nil
}

// extractSortCol pulls one key column of the selected rows into typed
// form. The first non-NULL cell fixes the column class; a later cell
// of a different class demotes the whole column to exact Values, whose
// pairwise table.Compare reproduces the row path on any kind mixture.
func extractSortCol(bs []*table.Batch, rowB, rowR []int32, ci int) *sortCol {
	n := len(rowB)
	sc := &sortCol{class: kcEmpty, nulls: table.NewBitmap(n)}
	ensure := func(class int) bool {
		if sc.class == kcEmpty {
			sc.class = class
			switch class {
			case kcNum:
				sc.nums = make([]float64, n)
			case kcStr:
				sc.strs = make([]string, n)
			case kcBool:
				sc.bools = make([]bool, n)
			}
		}
		return sc.class == class
	}
	for i := range rowB {
		col := &bs[rowB[i]].Cols[ci]
		ri := int(rowR[i])
		if col.Boxed == nil {
			if col.Nulls.Get(ri) {
				sc.nulls.Set(i)
				continue
			}
			switch {
			case col.Ints != nil:
				if !ensure(kcNum) {
					return genericSortCol(bs, rowB, rowR, ci)
				}
				sc.nums[i] = float64(col.Ints[ri])
			case col.Floats != nil:
				if !ensure(kcNum) {
					return genericSortCol(bs, rowB, rowR, ci)
				}
				sc.nums[i] = col.Floats[ri]
			case col.Bools != nil:
				if !ensure(kcBool) {
					return genericSortCol(bs, rowB, rowR, ci)
				}
				sc.bools[i] = col.Bools[ri]
			default:
				if !ensure(kcStr) {
					return genericSortCol(bs, rowB, rowR, ci)
				}
				sc.strs[i] = col.Strs[ri]
			}
			continue
		}
		bv := col.Boxed[ri]
		if bv.IsNull() {
			sc.nulls.Set(i)
			continue
		}
		switch {
		case bv.IsNumeric():
			if !ensure(kcNum) {
				return genericSortCol(bs, rowB, rowR, ci)
			}
			sc.nums[i] = bv.Float()
		case bv.Kind() == table.TypeString || bv.Kind() == table.TypeDate:
			if !ensure(kcStr) {
				return genericSortCol(bs, rowB, rowR, ci)
			}
			sc.strs[i] = bv.Str()
		case bv.Kind() == table.TypeBool:
			if !ensure(kcBool) {
				return genericSortCol(bs, rowB, rowR, ci)
			}
			sc.bools[i] = bv.Bool()
		default:
			return genericSortCol(bs, rowB, rowR, ci)
		}
	}
	return sc
}

func genericSortCol(bs []*table.Batch, rowB, rowR []int32, ci int) *sortCol {
	n := len(rowB)
	sc := &sortCol{class: kcGeneric, vals: make([]Value, n), nulls: table.NewBitmap(n)}
	for i := range rowB {
		bv := bs[rowB[i]].Cols[ci].ValueAt(int(rowR[i]))
		sc.vals[i] = bv
		if bv.IsNull() {
			sc.nulls.Set(i)
		}
	}
	return sc
}

// ---- compare ----

// compareStream is the vectorized Compare branch: each CompareBranches
// arm — the same rewrite the row path, the federated planner and
// text→SQL all consume — runs through the filter and aggregate
// kernels over the child stream, and per-item group rows are appended
// in branch order, reassembling runCompare's exact output. Branch
// filters only refine selection vectors, so the child stream is
// evaluated once no matter how many items are compared.
func (v *vecRun) compareStream(n *Node, s *vstream) (*vstream, error) {
	var out *table.Table
	for _, br := range CompareBranches(n) {
		fs, err := v.filter(s, br.Preds)
		if err != nil {
			return nil, err
		}
		agged, err := v.aggregate(fs, br.GroupBy, n.Aggs, n.EstOut)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New("comparison", agged.Schema)
		}
		out.Rows = append(out.Rows, agged.Rows...)
	}
	if out == nil {
		return nil, ErrEmptyCompare
	}
	return passthrough(out, nil), nil
}

// ---- aggregate ----

// aggregate accumulates over the stream's selected rows in fragment
// order — the row interpreter's exact accumulation order, so float
// sums agree bitwise — with an allocation-free group-key encoding
// (Value.Key bytes built into a reused buffer, interned only when a
// group is first seen).
func (v *vecRun) aggregate(s *vstream, groupBy []string, aggs []table.Agg, hint int) (*table.Table, error) {
	groupIdx := make([]int, len(groupBy))
	for i, c := range groupBy {
		idx := s.schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", table.ErrNoColumn, c)
		}
		groupIdx[i] = s.baseCol(idx)
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "" {
			if a.Func != table.AggCount {
				return nil, fmt.Errorf("table: %v requires a column", a.Func)
			}
			aggIdx[i] = -1
			continue
		}
		idx := s.schema.ColIndex(a.Col)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", table.ErrNoColumn, a.Col)
		}
		typ := s.schema[idx].Type
		if a.Func != table.AggCount && a.Func != table.AggMin && a.Func != table.AggMax &&
			typ != table.TypeInt && typ != table.TypeFloat {
			return nil, fmt.Errorf("table: %v over non-numeric column %s", a.Func, a.Col)
		}
		aggIdx[i] = s.baseCol(idx)
	}

	bs := v.batches(s)
	type accum struct {
		key    []Value
		sums   []float64
		counts []int64
		mins   []Value
		maxs   []Value
	}
	groups := make(map[string]*accum, hint)
	var order []string
	if hint > 0 {
		order = make([]string, 0, hint)
	}
	kb := make([]byte, 0, 64)
	var global *accum // the single group of a global aggregate

	for bi, b := range bs {
		var sel []int32
		if s.sels != nil {
			sel = s.sels[bi]
			if sel != nil && len(sel) == 0 {
				continue
			}
		}
		forSel(b.Len, sel, func(ri int) {
			var acc *accum
			if len(groupIdx) == 0 {
				if global == nil {
					global = &accum{
						key:    []Value{},
						sums:   make([]float64, len(aggs)),
						counts: make([]int64, len(aggs)),
						mins:   make([]Value, len(aggs)),
						maxs:   make([]Value, len(aggs)),
					}
					groups[""] = global
					order = append(order, "")
				}
				acc = global
			} else {
				kb = kb[:0]
				for _, gi := range groupIdx {
					kb = appendKeyBytes(kb, &b.Cols[gi], ri)
					kb = append(kb, '\x1f')
				}
				var ok bool
				acc, ok = groups[string(kb)]
				if !ok {
					ks := string(kb)
					key := make([]Value, len(groupIdx))
					for i, gi := range groupIdx {
						key[i] = b.Cols[gi].ValueAt(ri)
					}
					acc = &accum{
						key:    key,
						sums:   make([]float64, len(aggs)),
						counts: make([]int64, len(aggs)),
						mins:   make([]Value, len(aggs)),
						maxs:   make([]Value, len(aggs)),
					}
					groups[ks] = acc
					order = append(order, ks)
				}
			}
			for i := range aggs {
				if aggIdx[i] == -1 {
					acc.counts[i]++
					continue
				}
				col := &b.Cols[aggIdx[i]]
				if col.Boxed == nil && col.Nulls.Get(ri) {
					continue
				}
				// Typed fast path: unboxed numeric columns accumulate
				// without constructing a Value; min/max tracking is
				// needed only when a min/max aggregate reads them.
				switch {
				case col.Ints != nil:
					acc.counts[i]++
					x := float64(col.Ints[ri])
					acc.sums[i] += x
					if aggs[i].Func == table.AggMin || aggs[i].Func == table.AggMax {
						updateMinMax(acc.mins, acc.maxs, i, table.I(col.Ints[ri]))
					}
				case col.Floats != nil:
					acc.counts[i]++
					acc.sums[i] += col.Floats[ri]
					if aggs[i].Func == table.AggMin || aggs[i].Func == table.AggMax {
						updateMinMax(acc.mins, acc.maxs, i, table.F(col.Floats[ri]))
					}
				default:
					v := col.ValueAt(ri)
					if v.IsNull() {
						continue
					}
					acc.counts[i]++
					if v.IsNumeric() {
						acc.sums[i] += v.Float()
					}
					updateMinMax(acc.mins, acc.maxs, i, v)
				}
			}
		})
	}
	sort.Strings(order)

	out := table.New(s.name+"_agg", table.AggregateSchema(s.schema, groupBy, aggs))
	for _, ks := range order {
		acc := groups[ks]
		row := append([]Value(nil), acc.key...)
		for i, a := range aggs {
			switch a.Func {
			case table.AggSum:
				if acc.counts[i] == 0 {
					row = append(row, table.Null(table.TypeFloat))
				} else {
					row = append(row, table.F(acc.sums[i]))
				}
			case table.AggAvg:
				if acc.counts[i] == 0 {
					row = append(row, table.Null(table.TypeFloat))
				} else {
					row = append(row, table.F(acc.sums[i]/float64(acc.counts[i])))
				}
			case table.AggCount:
				row = append(row, table.I(acc.counts[i]))
			case table.AggMin:
				row = append(row, acc.mins[i])
			case table.AggMax:
				row = append(row, acc.maxs[i])
			case table.AggCountMerge:
				row = append(row, table.I(int64(acc.sums[i])))
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func updateMinMax(mins, maxs []Value, i int, v Value) {
	if mins[i].IsNull() || table.Compare(v, mins[i]) < 0 {
		mins[i] = v
	}
	if maxs[i].IsNull() || table.Compare(v, maxs[i]) > 0 {
		maxs[i] = v
	}
}

// forSel iterates the selected rows of a batch in row order.
func forSel(n int, sel []int32, fn func(ri int)) {
	if sel == nil {
		for ri := 0; ri < n; ri++ {
			fn(ri)
		}
		return
	}
	for _, ri := range sel {
		fn(int(ri))
	}
}

// appendKeyBytes appends the cell's Value.Key() encoding without
// constructing the Value or allocating a string.
func appendKeyBytes(kb []byte, col *table.ColVec, ri int) []byte {
	if col.Boxed != nil {
		return append(kb, col.Boxed[ri].Key()...)
	}
	if col.Nulls.Get(ri) {
		return append(kb, "\x00null"...)
	}
	switch {
	case col.Ints != nil:
		kb = append(kb, 'n', ':')
		return strconv.AppendFloat(kb, float64(col.Ints[ri]), 'g', -1, 64)
	case col.Floats != nil:
		kb = append(kb, 'n', ':')
		return strconv.AppendFloat(kb, col.Floats[ri], 'g', -1, 64)
	case col.Bools != nil:
		kb = append(kb, 'b', ':')
		return strconv.AppendBool(kb, col.Bools[ri])
	default:
		kb = append(kb, 's', ':')
		return append(kb, col.Strs[ri]...)
	}
}

// ---- table-level kernel entries (backend scans) ----

// VecFilterTable is the vectorized counterpart of table.Filter /
// table.FilterRanges for backend scans: it evaluates the predicate
// conjunction over the table's columnar fragments (fr may be nil to
// extract on the fly), restricted to the given row ranges (nil = all
// rows), and returns the surviving rows (shared slices, row order)
// plus the visited-row count — the same scanned accounting the row
// kernels report.
func VecFilterTable(t *table.Table, fr *table.Frags, ranges []table.RowRange, preds []table.Pred, workers int) (*table.Table, int, error) {
	v := &vecRun{env: VecEnv{Workers: workers}}
	s := passthrough(t, fr)
	scanned := t.Len()
	if ranges != nil {
		bs := v.batches(s)
		s.sels = rangeSels(bs, ranges)
		scanned = 0
		for _, r := range ranges {
			end := r.End
			if end > t.Len() {
				end = t.Len()
			}
			if end > r.Start {
				scanned += end - r.Start
			}
		}
	}
	fs, err := v.filter(s, preds)
	if err != nil {
		return nil, scanned, err
	}
	return fs.materialize(), scanned, nil
}

// VecAggregateTable is the vectorized counterpart of
// table.AggregateHint for backend scans that push aggregation down.
func VecAggregateTable(t *table.Table, fr *table.Frags, groupBy []string, aggs []table.Agg, hint, workers int) (*table.Table, error) {
	v := &vecRun{env: VecEnv{Workers: workers}}
	return v.aggregate(passthrough(t, fr), groupBy, aggs, hint)
}
