package logical

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Stats is the catalog surface the optimizer consults: base-table
// schemas for predicate re-typing and projection pruning, row counts
// and per-column statistics (NDV, histograms) for selectivity
// estimation and join-input reordering. A nil Stats disables the
// passes that need it; the structural passes still run.
type Stats interface {
	Schema(tbl string) (table.Schema, bool)
	Card(tbl string) (int, bool)
	// TableStats returns the per-column statistics of a base table, or
	// nil when none are kept (the caller falls back to the fixed
	// selectivity heuristic).
	TableStats(tbl string) *table.TableStats
}

type catalogStats struct{ c *table.Catalog }

func (s catalogStats) Schema(tbl string) (table.Schema, bool) {
	t, err := s.c.Get(tbl)
	if err != nil {
		return nil, false
	}
	return t.Schema, true
}

func (s catalogStats) Card(tbl string) (int, bool) {
	t, err := s.c.Get(tbl)
	if err != nil {
		return 0, false
	}
	return t.Len(), true
}

func (s catalogStats) TableStats(tbl string) *table.TableStats {
	return s.c.StatsOf(tbl)
}

// CatalogStats adapts a table.Catalog to the optimizer's Stats surface.
func CatalogStats(c *table.Catalog) Stats {
	if c == nil {
		return nil
	}
	return catalogStats{c}
}

// Optimized is a plan tree after the rule passes, carrying the
// deterministic trace of every rule that fired — the "rules:" section
// of EXPLAIN.
type Optimized struct {
	Root  *Node
	Trace []string
	// Rollups lists the rollup routings the rollup pass performed, one
	// preformatted "base -> rollup (mode)" line per rewrite — the
	// source of EXPLAIN's "rollup:" line. Empty when nothing routed.
	Rollups []string
}

// Unoptimized wraps a tree without running any pass; baselines and
// benchmarks use it to measure what the rules buy.
func Unoptimized(root *Node) *Optimized { return &Optimized{Root: root} }

// Optimize clones the tree and runs the rule passes in a fixed order:
//
//  1. fold — merge adjacent filters, drop empty ones, dedupe predicates
//  2. retype — coerce predicate literals to their column's type
//  3. pushdown — sink filters below order-safe operators toward scans
//  4. emptyfold — fold statistically refuted filtered scans into
//     constant-empty leaves
//  5. rollup — rewrite subsumed Aggregate subtrees onto materialized
//     rollup scans (exact grain, or re-aggregating a coarser grain)
//  6. prune — narrow scans to the columns the plan can reference
//  7. reorder — seed the cheaper join input with the driving side's
//     join-key equalities, by catalog cardinality
//  8. compare_rewrite — normalize comparisons to grouped-filter form
//
// Every pass preserves results bit-exactly: predicate evaluation order
// within a conjunction, the driving side's row order through joins,
// and float accumulation order through aggregates are all unchanged.
// The trace is deterministic for a fixed tree and catalog.
func Optimize(root *Node, st Stats) *Optimized {
	if root == nil {
		return &Optimized{}
	}
	o := &Optimized{Root: root.Clone()}
	passes := []struct {
		name string
		run  func(*Optimized, Stats) []string
	}{
		{"fold", foldPass},
		{"retype", retypePass},
		{"pushdown", pushdownPass},
		{"emptyfold", emptyfoldPass},
		{"rollup", rollupPass},
		{"prune", prunePass},
		{"reorder", reorderPass},
		{"compare_rewrite", comparePass},
		// estimate runs last, over the final tree shape: it only stamps
		// EstOut pre-sizing hints and never emits trace notes (hints
		// cannot change results, so they are not a "rule" in EXPLAIN).
		{"estimate", estimatePass},
	}
	for _, p := range passes {
		for _, note := range p.run(o, st) {
			o.Trace = append(o.Trace, fmt.Sprintf("%s(%s)", p.name, note))
		}
	}
	return o
}

// rewrite applies fn bottom-up over the tree, replacing each child
// pointer with fn's result.
func rewrite(n *Node, fn func(*Node) *Node) *Node {
	if n == nil {
		return nil
	}
	for i, in := range n.In {
		n.In[i] = rewrite(in, fn)
	}
	return fn(n)
}

// walk visits every node top-down.
func walk(n *Node, fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, in := range n.In {
		walk(in, fn)
	}
}

// foldPass merges adjacent Filter nodes into one conjunction, removes
// empty filters, and drops exact-duplicate predicates. All three keep
// the surviving predicates in first-seen order, so per-row evaluation
// matches the unfolded plan.
func foldPass(o *Optimized, _ Stats) []string {
	var notes []string
	o.Root = rewrite(o.Root, func(n *Node) *Node {
		if n.Op != OpFilter {
			return n
		}
		if c := n.Child(); c != nil && c.Op == OpFilter {
			n.Preds = append(append([]table.Pred(nil), c.Preds...), n.Preds...)
			n.In = c.In
			notes = append(notes, "merged adjacent filters")
		}
		seen := make(map[string]bool, len(n.Preds))
		kept := n.Preds[:0]
		for _, p := range n.Preds {
			key := predKey(p)
			if seen[key] {
				notes = append(notes, "dropped duplicate "+p.String())
				continue
			}
			seen[key] = true
			kept = append(kept, p)
		}
		n.Preds = kept
		if len(n.Preds) == 0 {
			notes = append(notes, "removed empty filter")
			return n.Child()
		}
		return n
	})
	return notes
}

func predKey(p table.Pred) string {
	return strings.ToLower(p.Col) + "\x1e" + fmt.Sprint(int(p.Op)) + "\x1e" + p.Val.Key()
}

// retypePass coerces every predicate literal to the type of the column
// it compares against (table.CoerceTo), so a string "20" filters a
// float column numerically on every entry path — the re-typing that
// used to live inline in the SQL interpreter.
func retypePass(o *Optimized, st Stats) []string {
	if st == nil {
		return nil
	}
	var notes []string
	coerce := func(schema table.Schema, preds []table.Pred) {
		for i, p := range preds {
			idx := schema.ColIndex(p.Col)
			if idx < 0 {
				continue
			}
			want := schema[idx].Type
			coerced := table.CoerceTo(want, p.Val)
			if coerced.Kind() != p.Val.Kind() {
				notes = append(notes, fmt.Sprintf("%s '%s' -> %v", p.Col, p.Val, want))
				preds[i].Val = coerced
			}
		}
	}
	walk(o.Root, func(n *Node) {
		if n.Op != OpFilter && n.Op != OpCompare {
			return
		}
		if schema, ok := inputSchema(n.Child(), st); ok {
			coerce(schema, n.Preds)
		}
	})
	return notes
}

// inputSchema derives the schema a node produces, tracking the exact
// renames the engine applies through joins, projections and
// aggregation. ok is false when a base table is unknown to Stats.
func inputSchema(n *Node, st Stats) (table.Schema, bool) {
	schema, _, ok := schemaAndName(n, st)
	return schema, ok
}

func schemaAndName(n *Node, st Stats) (table.Schema, string, bool) {
	if n == nil || st == nil {
		return nil, "", false
	}
	switch n.Op {
	case OpScan, OpEmpty:
		schema, ok := st.Schema(n.Table)
		if !ok {
			return nil, "", false
		}
		if len(n.Cols) > 0 {
			sub := make(table.Schema, 0, len(n.Cols))
			for _, c := range n.Cols {
				idx := schema.ColIndex(c)
				if idx < 0 {
					return nil, "", false
				}
				sub = append(sub, schema[idx])
			}
			schema = sub
		}
		return schema, n.Table, true
	case OpInput:
		return nil, "", false
	case OpFilter, OpSort, OpLimit, OpDistinct:
		return schemaAndName(n.Child(), st)
	case OpProject:
		in, name, ok := schemaAndName(n.Child(), st)
		if !ok {
			return nil, "", false
		}
		out := make(table.Schema, 0, len(n.Proj))
		for i, c := range n.Proj {
			idx := in.ColIndex(c)
			if idx < 0 {
				return nil, "", false
			}
			col := in[idx]
			if i < len(n.Aliases) && n.Aliases[i] != "" {
				col.Name = n.Aliases[i]
			}
			out = append(out, col)
		}
		return out, name, true
	case OpJoin:
		left, ln, ok := schemaAndName(n.In[0], st)
		if !ok {
			return nil, "", false
		}
		right, rn, ok := schemaAndName(n.In[1], st)
		if !ok {
			return nil, "", false
		}
		return table.JoinedSchema(left, rn, right), ln + "_join_" + rn, true
	case OpAggregate:
		in, name, ok := schemaAndName(n.Child(), st)
		if !ok {
			return nil, "", false
		}
		return table.AggregateSchema(in, n.GroupBy, n.Aggs), name + "_agg", true
	case OpCompare:
		in, _, ok := schemaAndName(n.Child(), st)
		if !ok {
			return nil, "", false
		}
		return table.AggregateSchema(in, []string{n.CompareCol}, n.Aggs), "comparison", true
	default:
		return nil, "", false
	}
}

// pushdownPass sinks Filter nodes toward the scans through operators
// that commute with them exactly: stable Sort (filtered-then-sorted
// equals sorted-then-filtered, including row order), Distinct
// (first-occurrence sets agree), and alias-free Project whose columns
// cover the predicates. Limit and Aggregate block the sink.
func pushdownPass(o *Optimized, _ Stats) []string {
	var notes []string
	var sink func(f *Node) *Node
	sink = func(f *Node) *Node {
		c := f.Child()
		if c == nil {
			return f
		}
		sinkable := false
		switch c.Op {
		case OpSort, OpDistinct:
			sinkable = true
		case OpProject:
			sinkable = len(c.Aliases) == 0 && predsCovered(f.Preds, c.Proj)
		}
		if !sinkable {
			return f
		}
		notes = append(notes, fmt.Sprintf("filter below %s", strings.ToLower(c.Op.String())))
		f.In = c.In
		c.In = []*Node{sink(f)}
		return c
	}
	o.Root = rewrite(o.Root, func(n *Node) *Node {
		if n.Op == OpFilter {
			return sink(n)
		}
		return n
	})
	return notes
}

// emptyfoldPass folds subtrees the statistics refute into a
// constant-empty leaf. It runs after pushdown, when predicates sit
// directly on their scans: a Filter over a Scan whose conjunction is
// ProvablyEmpty becomes an Empty leaf carrying the scan's table and
// column set (the execution-time schema source), and schema-preserving
// operators directly over an Empty leaf — Filter, Sort, Distinct,
// Limit — collapse into it. A proof over the whole table covers any
// row-ranged slice of it, so ranged scans fold too. Aggregate and
// Compare never fold: a global aggregate over zero rows still emits
// its one summary row. The proof is epoch-stable — statistics are a
// pure function of the catalog state the plan caches under — so a fold
// can never outlive the data that justified it.
func emptyfoldPass(o *Optimized, st Stats) []string {
	if st == nil {
		return nil
	}
	var notes []string
	o.Root = rewrite(o.Root, func(n *Node) *Node {
		switch n.Op {
		case OpFilter:
			c := n.Child()
			if c == nil {
				return n
			}
			if c.Op == OpEmpty {
				notes = append(notes, "collapsed filter over empty "+c.Table)
				return c
			}
			if c.Op != OpScan {
				return n
			}
			ts := st.TableStats(c.Table)
			if ts == nil || !ProvablyEmpty(ts, n.Preds) {
				return n
			}
			notes = append(notes, fmt.Sprintf("%s: statistics refute %s", c.Table, predList(n.Preds, " AND ")))
			return &Node{Op: OpEmpty, Table: c.Table, Cols: c.Cols}
		case OpSort, OpDistinct, OpLimit:
			if c := n.Child(); c != nil && c.Op == OpEmpty {
				notes = append(notes, "collapsed "+strings.ToLower(n.Op.String())+" over empty "+c.Table)
				return c
			}
		}
		return n
	})
	return notes
}

func predsCovered(preds []table.Pred, cols []string) bool {
	for _, p := range preds {
		found := false
		for _, c := range cols {
			if strings.EqualFold(c, p.Col) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// prunePass narrows each Scan to the columns the plan above it can
// reference. A scan is pruned only when every path to the root passes
// through a schema-bounding operator (Project, Aggregate or Compare),
// so unbounded outputs — list queries returning whole rows — keep
// their full schema and results stay bit-identical.
func prunePass(o *Optimized, st Stats) []string {
	if st == nil {
		return nil
	}
	var notes []string
	var visit func(n *Node, req map[string]bool)
	visit = func(n *Node, req map[string]bool) {
		if n == nil {
			return
		}
		switch n.Op {
		case OpScan:
			if req == nil || len(n.Cols) > 0 {
				return
			}
			schema, ok := st.Schema(n.Table)
			if !ok {
				return
			}
			cols := make([]string, 0, len(schema))
			for _, c := range schema {
				if req[strings.ToLower(c.Name)] {
					cols = append(cols, c.Name)
				}
			}
			if len(cols) == 0 || len(cols) == len(schema) {
				return
			}
			n.Cols = cols
			notes = append(notes, fmt.Sprintf("%s -> %s", n.Table, strings.Join(cols, ",")))
		case OpInput:
		case OpProject:
			visit(n.Child(), colSet(n.Proj))
		case OpAggregate:
			need := colSet(n.GroupBy)
			for _, a := range n.Aggs {
				if a.Col != "" {
					need[strings.ToLower(a.Col)] = true
				}
			}
			visit(n.Child(), need)
		case OpCompare:
			need := colSet([]string{n.CompareCol})
			for _, p := range n.Preds {
				need[strings.ToLower(p.Col)] = true
			}
			for _, a := range n.Aggs {
				if a.Col != "" {
					need[strings.ToLower(a.Col)] = true
				}
			}
			visit(n.Child(), need)
		case OpFilter:
			if req == nil {
				visit(n.Child(), nil)
				return
			}
			need := copySet(req)
			for _, p := range n.Preds {
				need[strings.ToLower(p.Col)] = true
			}
			visit(n.Child(), need)
		case OpSort:
			if req == nil {
				visit(n.Child(), nil)
				return
			}
			need := copySet(req)
			for _, k := range n.Keys {
				need[strings.ToLower(k.Col)] = true
			}
			visit(n.Child(), need)
		case OpLimit:
			visit(n.Child(), req)
		case OpDistinct:
			// Distinct keys on every input column; requirements cannot
			// narrow through it (a Project below re-bounds them).
			visit(n.Child(), nil)
		case OpJoin:
			if req == nil {
				visit(n.In[0], nil)
				visit(n.In[1], nil)
				return
			}
			ls, _, lok := schemaAndName(n.In[0], st)
			rs, rn, rok := schemaAndName(n.In[1], st)
			if !lok || !rok {
				visit(n.In[0], nil)
				visit(n.In[1], nil)
				return
			}
			leftNeed := colSet([]string{n.LeftCol})
			for _, c := range ls {
				if req[strings.ToLower(c.Name)] {
					leftNeed[strings.ToLower(c.Name)] = true
				}
			}
			rightNeed := colSet([]string{n.RightCol})
			joined := table.JoinedSchema(ls, rn, rs)
			for i, c := range rs {
				out := joined[len(ls)+i].Name
				if req[strings.ToLower(out)] || req[strings.ToLower(c.Name)] {
					rightNeed[strings.ToLower(c.Name)] = true
					if !strings.EqualFold(out, c.Name) {
						// The reference resolves through a collision rename
						// ("rn.col"), which exists only while the left side
						// keeps its same-named column — pruning it away
						// would un-rename the right column and break the
						// compiled reference.
						leftNeed[strings.ToLower(c.Name)] = true
					}
				}
			}
			visit(n.In[0], leftNeed)
			visit(n.In[1], rightNeed)
		default:
			visit(n.Child(), nil)
		}
	}
	visit(o.Root, nil)
	return notes
}

func colSet(cols []string) map[string]bool {
	out := make(map[string]bool, len(cols))
	for _, c := range cols {
		out[strings.ToLower(c)] = true
	}
	return out
}

func copySet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Selectivity is the deterministic per-predicate row-fraction
// heuristic used when no per-column statistics exist — the shared
// fallback of SelectivityWith.
func Selectivity(p table.Pred) float64 {
	return table.DefaultSelectivity(p)
}

// SelectivityWith estimates p's row fraction from per-column
// statistics (exact value counts, NDV, histogram interpolation, and
// the zone-bound refutation check that collapses provably-empty
// predicates to exactly zero) when they can judge the predicate,
// falling back to the fixed heuristic. It is the optimizer's name for
// table.TableStats.SelectivityOf — the same estimator the federated
// backends consult — so planning-time and lowering-time estimates
// agree.
func SelectivityWith(ts *table.TableStats, p table.Pred) float64 {
	return ts.SelectivityOf(p)
}

// ProvablyEmpty reports whether the table statistics prove that the
// predicate conjunction selects no rows: the literal falls outside the
// column's min/max zone bounds, an exact value set shows zero
// occurrences, or the table is empty. A true result is a proof (not an
// estimate): the fragment pruner and the planner may skip the scan
// entirely and return the empty result directly.
func ProvablyEmpty(ts *table.TableStats, preds []table.Pred) bool {
	return ts.Refutes(preds)
}

// EstimateGroupRows estimates how many group rows an aggregation over
// in input rows produces: one for a global aggregate, else the product
// of the group keys' distinct counts, capped at the input estimate
// (grouping cannot create rows). Shared by the federated planner's
// pushed-aggregate re-estimate and the estimate pass's pre-sizing
// hints.
func EstimateGroupRows(ts *table.TableStats, in int, groupBy []string) int {
	if in == 0 {
		return 0
	}
	if len(groupBy) == 0 {
		return 1
	}
	groups := 1
	for _, col := range groupBy {
		ndv := in // unknown column: assume no collapsing
		if cs := ts.Col(col); cs != nil && cs.NDV > 0 {
			ndv = cs.NDV
		}
		if groups >= (in+ndv-1)/ndv { // groups*ndv would overshoot in
			return in
		}
		groups *= ndv
	}
	if groups > in {
		return in
	}
	return groups
}

// estimatePass stamps every node's EstOut with a cardinality estimate
// derived from the catalog statistics — the interpreter's allocation
// pre-sizing hints. Estimates follow the planner's model (per-column
// selectivities with independence, group-key NDV products) but are
// hints only: they never change results and never appear in the trace.
func estimatePass(o *Optimized, st Stats) []string {
	if st == nil {
		return nil
	}
	estimateNode(o.Root, st)
	return nil
}

// estimateNode computes (and stamps) a node's output-cardinality
// estimate bottom-up. Predicates estimate against the statistics of
// the driving chain's base table; columns that resolve nowhere fall
// back to the fixed heuristic inside SelectivityOf.
func estimateNode(n *Node, st Stats) int {
	if n == nil {
		return 0
	}
	est := 0
	switch n.Op {
	case OpScan:
		if card, ok := st.Card(n.Table); ok {
			est = card
			if n.RowEnd > 0 && n.RowEnd-n.RowStart < est {
				est = n.RowEnd - n.RowStart
			}
		}
	case OpInput:
		est = 0 // fragment outputs are sized by the physical planner
	case OpEmpty:
		est = 0 // constant-empty by construction
	case OpFilter:
		in := estimateNode(n.Child(), st)
		est = baseStats(n.Child(), st).EstimateRows(in, n.Preds)
	case OpJoin:
		left := estimateNode(n.In[0], st)
		right := estimateNode(n.In[1], st)
		// Keyed joins rarely exceed the probe side, and the compilers'
		// join shapes (semi-join against a distinct key set) rarely
		// exceed the smaller input either; the smaller input is the
		// cheap, usually-sufficient pre-sizing cap — undershooting only
		// costs a slice growth, overshooting wastes real memory.
		est = left
		if right > 0 && (left == 0 || right < left) {
			est = right
		}
	case OpAggregate:
		in := estimateNode(n.Child(), st)
		est = EstimateGroupRows(baseStats(n.Child(), st), in, n.GroupBy)
	case OpCompare:
		in := estimateNode(n.Child(), st)
		est = EstimateGroupRows(baseStats(n.Child(), st), in, []string{n.CompareCol})
	case OpLimit:
		in := estimateNode(n.Child(), st)
		est = n.N
		if in > 0 && in < est {
			est = in
		}
	default:
		est = estimateNode(n.Child(), st)
		for _, in := range n.In[1:] {
			estimateNode(in, st)
		}
	}
	if est < 0 {
		est = 0
	}
	n.EstOut = est
	return est
}

// baseStats finds the statistics of the driving chain's base table —
// the table whose columns a predicate most plausibly references — or
// nil when the chain bottoms out at an Input or join.
func baseStats(n *Node, st Stats) *table.TableStats {
	for n != nil {
		if n.Op == OpScan {
			return st.TableStats(n.Table)
		}
		if n.Op == OpJoin || n.Op == OpInput {
			return nil
		}
		n = n.Child()
	}
	return nil
}

// reorderPass reorders join-input evaluation by estimated filtered
// cardinality: when the driving (left) side is the larger input and
// carries an equality predicate on the join key, that predicate is
// seeded into the smaller joined side's scan, so the join's lookup
// input shrinks before it is ever read. The driving side's row order
// is untouched — the larger side stays the hash-probe side before and
// after — so results are bit-identical; only the joined side's scan
// gets cheaper.
func reorderPass(o *Optimized, st Stats) []string {
	if st == nil {
		return nil
	}
	var notes []string
	var filters []*Node // Filter nodes on the path above the current node
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil {
			return
		}
		if n.Op == OpFilter {
			filters = append(filters, n)
			visit(n.Child())
			filters = filters[:len(filters)-1]
			return
		}
		if n.Op == OpJoin {
			notes = append(notes, seedJoin(n, filters, st)...)
			// Filters above a join constrain joined rows, not either
			// bare input: descend with a fresh path on both sides.
			saved := filters
			filters = nil
			visit(n.In[0])
			filters = nil
			visit(n.In[1])
			filters = saved
			return
		}
		for _, in := range n.In {
			visit(in)
		}
	}
	visit(o.Root)
	return notes
}

// seedJoin propagates key equalities from the filters above a join
// into its right input. Fires only when the left side is a clean scan
// (no local filters or limits, so its runtime size is its catalog
// cardinality) that is strictly larger than the right table: the right
// input — at most card(right) distinct keys before seeding, fewer
// after — is then smaller than the left side in both plans, so the
// hash join builds on the right and probes the left both before and
// after, and shrinking the right input cannot perturb row order. A
// non-strict gate would let equal cardinalities flip the build side.
//
// Within that safety gate, per-column statistics decide whether each
// seed pays: the driving side's cardinality as filtered by the
// predicates above the join must still exceed the seeded right side's
// estimate. When stats show the "larger" driving table filtering down
// below the lookup side, the seed is skipped (with a trace note) —
// the per-row predicate tax on the right scan would outweigh a join
// that is already probe-bound small.
func seedJoin(j *Node, above []*Node, st Stats) []string {
	left := j.In[0]
	for left != nil && left.Op == OpProject { // projection keeps row count
		left = left.Child()
	}
	if left == nil || left.Op != OpScan {
		return nil
	}
	rightScan := j.In[1]
	for rightScan != nil && rightScan.Op != OpScan {
		rightScan = rightScan.Child()
	}
	if rightScan == nil {
		return nil
	}
	leftCard, lok := st.Card(left.Table)
	rightCard, rok := st.Card(rightScan.Table)
	if !lok || !rok || leftCard <= rightCard || rightCard <= 1 {
		return nil
	}

	// Estimated driving-side cardinality after every above-join
	// predicate that resolves against its schema (the join keeps the
	// driving side's column names; renamed right-side collisions do
	// not resolve here).
	leftStats := st.TableStats(left.Table)
	leftSchema, _ := st.Schema(left.Table)
	estLeft := float64(leftCard)
	for _, f := range above {
		for _, p := range f.Preds {
			if leftSchema.ColIndex(p.Col) >= 0 {
				estLeft *= SelectivityWith(leftStats, p)
			}
		}
	}

	// Existing right-side predicates, to skip duplicates and estimate.
	rightStats := st.TableStats(rightScan.Table)
	var rightFilter *Node
	existing := make(map[string]bool)
	estBefore := float64(rightCard)
	for c := j.In[1]; c != nil; c = c.Child() {
		if c.Op != OpFilter {
			continue
		}
		if rightFilter == nil {
			rightFilter = c
		}
		for _, p := range c.Preds {
			existing[predKey(p)] = true
			estBefore *= SelectivityWith(rightStats, p)
		}
	}

	var notes []string
	for _, f := range above {
		for _, p := range f.Preds {
			if p.Op != table.OpEq || !strings.EqualFold(p.Col, j.LeftCol) {
				continue
			}
			seeded := table.Pred{Col: j.RightCol, Op: table.OpEq, Val: p.Val}
			if existing[predKey(seeded)] {
				continue
			}
			estAfter := estBefore * SelectivityWith(rightStats, seeded)
			if estLeft <= estAfter {
				notes = append(notes, fmt.Sprintf("skip seed %s with %s (driving est %d <= seeded est %d rows)",
					rightScan.Table, seeded, estRows(estLeft), estRows(estAfter)))
				continue
			}
			existing[predKey(seeded)] = true
			if rightFilter == nil {
				// Insert a Filter directly above the right scan.
				rightFilter = &Node{Op: OpFilter, In: []*Node{rightScan}}
				parent := j.In[1]
				if parent == rightScan {
					j.In[1] = rightFilter
				} else {
					for c := parent; c != nil; c = c.Child() {
						if c.Child() == rightScan {
							c.In[0] = rightFilter
							break
						}
					}
				}
			}
			rightFilter.Preds = append(rightFilter.Preds, seeded)
			notes = append(notes, fmt.Sprintf("seed %s with %s (est %d -> %d rows)",
				rightScan.Table, seeded, estRows(estBefore), estRows(estAfter)))
			estBefore = estAfter
		}
	}
	return notes
}

func estRows(f float64) int {
	n := int(f)
	if n < 1 {
		n = 1
	}
	return n
}

// comparePass normalizes Compare nodes to the grouped-filter form:
// items are sorted (the branch execution order) and the branch count
// is recorded in the trace. The branches themselves materialize
// through CompareBranches, shared with execution and text→SQL
// rendering.
func comparePass(o *Optimized, _ Stats) []string {
	var notes []string
	walk(o.Root, func(n *Node) {
		if n.Op != OpCompare || len(n.Items) == 0 {
			return
		}
		n.Items = sortedItems(n.Items)
		notes = append(notes, fmt.Sprintf("%s -> %d grouped filters", n.CompareCol, len(n.Items)))
	})
	return notes
}
