package logical

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/table"
)

func mustAddRollup(t *testing.T, c *table.Catalog, def table.RollupDef) {
	t.Helper()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}
}

func productRollup() table.RollupDef {
	return table.RollupDef{
		Name:    "sales_by_product",
		Base:    "sales",
		GroupBy: []string{"product"},
		Aggs: []table.Agg{
			{Func: table.AggSum, Col: "revenue"},
			{Func: table.AggCount, Col: "", As: "n"},
		},
	}
}

func pqRollup(name string) table.RollupDef {
	return table.RollupDef{
		Name:    name,
		Base:    "sales",
		GroupBy: []string{"product", "quarter"},
		Aggs: []table.Agg{
			{Func: table.AggCount, Col: "", As: "n"},
			{Func: table.AggSum, Col: "units"},
			{Func: table.AggSum, Col: "revenue"},
			{Func: table.AggAvg, Col: "revenue"},
			{Func: table.AggMin, Col: "units"},
			{Func: table.AggMax, Col: "units"},
		},
	}
}

func aggOver(in *Node, groupBy []string, aggs ...table.Agg) *Node {
	return &Node{Op: OpAggregate, GroupBy: groupBy, Aggs: aggs, In: []*Node{in}}
}

// scansTable reports whether any Scan in the tree reads the named table.
func scansTable(n *Node, tbl string) bool {
	if n == nil {
		return false
	}
	if n.Op == OpScan && strings.EqualFold(n.Table, tbl) {
		return true
	}
	for _, in := range n.In {
		if scansTable(in, tbl) {
			return true
		}
	}
	return false
}

func TestRollupExactRouting(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, productRollup())
	root := aggOver(scan("sales"), []string{"product"},
		table.Agg{Func: table.AggSum, Col: "revenue", As: "total"},
		table.Agg{Func: table.AggCount, Col: "", As: "cnt"})
	out, opt := execBoth(t, root, c)
	if !traced(t, opt, "rollup") {
		t.Fatalf("rollup did not fire: %v", opt.Trace)
	}
	if want := []string{"sales -> sales_by_product (exact)"}; len(opt.Rollups) != 1 || opt.Rollups[0] != want[0] {
		t.Fatalf("Rollups = %v, want %v", opt.Rollups, want)
	}
	if !scansTable(opt.Root, "sales_by_product") || scansTable(opt.Root, "sales") {
		t.Fatalf("routed plan still reads the base table: %s", opt.Root)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3 products", out.Len())
	}
	if got := out.Schema.Names(); got[1] != "total" || got[2] != "cnt" {
		t.Fatalf("query output names lost: %v", got)
	}
}

func TestRollupExactRoutingWithResidualFilter(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, productRollup())
	root := aggOver(
		filter(scan("sales"), table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}),
		[]string{"product"},
		table.Agg{Func: table.AggSum, Col: "revenue", As: "total"})
	out, opt := execBoth(t, root, c)
	if len(opt.Rollups) != 1 {
		t.Fatalf("rollup did not route: %v", opt.Trace)
	}
	if !scansTable(opt.Root, "sales_by_product") {
		t.Fatalf("routed plan misses the rollup: %s", opt.Root)
	}
	if out.Len() != 1 || out.Rows[0][1].Float() != 220 {
		t.Fatalf("unexpected result:\n%v", out)
	}
}

func TestRollupRoutesNarrowedScan(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, productRollup())
	// Column narrowing drops no rows; a narrowed scan that still covers
	// the referenced columns routes like a full scan.
	root := aggOver(&Node{Op: OpScan, Table: "sales", Cols: []string{"product", "revenue"}},
		[]string{"product"}, table.Agg{Func: table.AggSum, Col: "revenue", As: "total"})
	_, opt := execBoth(t, root, c)
	if len(opt.Rollups) != 1 {
		t.Fatalf("narrowed covering scan did not route: %v", opt.Trace)
	}
}

func TestRollupPinnedRouting(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, pqRollup("sales_by_pq"))
	// A global aggregate whose filter pins both rollup keys by equality
	// reads the one materialized group directly — AVG included.
	root := aggOver(
		filter(scan("sales"),
			table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")},
			table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")}),
		nil,
		table.Agg{Func: table.AggAvg, Col: "revenue", As: "avg_rev"},
		table.Agg{Func: table.AggCount, Col: "", As: "n"})
	out, opt := execBoth(t, root, c)
	if want := "sales -> sales_by_pq (pinned)"; len(opt.Rollups) != 1 || opt.Rollups[0] != want {
		t.Fatalf("Rollups = %v, want %q", opt.Rollups, want)
	}
	if out.Len() != 1 || out.Rows[0][0].Float() != 100 {
		t.Fatalf("unexpected result:\n%v", out)
	}

	// Pinning a value that matches no group yields zero rows on both
	// paths (a global aggregate of empty input emits none). The probe
	// value must survive emptyfold: past StatsMaxExact distinct keys the
	// statistics only keep min/max bounds, so an absent in-range key
	// reaches the rollup pass unrefuted.
	big := table.New("big", table.Schema{
		{Name: "k", Type: table.TypeString},
		{Name: "v", Type: table.TypeFloat},
	})
	for i := 0; i < table.StatsMaxExact+6; i++ {
		big.MustAppend([]table.Value{table.S(fmt.Sprintf("k%03d", i)), table.F(float64(i))})
	}
	bc := table.NewCatalog()
	bc.Put(big)
	mustAddRollup(t, bc, table.RollupDef{Name: "big_by_k", Base: "big", GroupBy: []string{"k"},
		Aggs: []table.Agg{{Func: table.AggAvg, Col: "v"}}})
	miss := aggOver(
		filter(scan("big"), table.Pred{Col: "k", Op: table.OpEq, Val: table.S("k010x")}),
		nil,
		table.Agg{Func: table.AggAvg, Col: "v", As: "avg_v"})
	out, opt = execBoth(t, miss, bc)
	if want := "big -> big_by_k (pinned)"; len(opt.Rollups) != 1 || opt.Rollups[0] != want {
		t.Fatalf("pinned miss did not route: %v (trace %v)", opt.Rollups, opt.Trace)
	}
	if out.Len() != 0 {
		t.Fatalf("pinned miss rows = %d, want 0", out.Len())
	}
}

func TestRollupPinnedRefusesPartialPin(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, pqRollup("sales_by_pq"))
	// Equality on only one of two keys leaves several groups in play: a
	// global AVG across them cannot read materialized rows.
	root := aggOver(
		filter(scan("sales"), table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Alpha")}),
		nil,
		table.Agg{Func: table.AggAvg, Col: "revenue", As: "avg_rev"})
	_, opt := execBoth(t, root, c)
	if len(opt.Rollups) != 0 {
		t.Fatalf("partial pin routed: %v", opt.Rollups)
	}
	// A range predicate pins nothing even on the right column.
	ranged := aggOver(
		filter(scan("sales"),
			table.Pred{Col: "product", Op: table.OpGt, Val: table.S("A")},
			table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")}),
		nil,
		table.Agg{Func: table.AggAvg, Col: "revenue", As: "avg_rev"})
	_, opt = execBoth(t, ranged, c)
	if len(opt.Rollups) != 0 {
		t.Fatalf("range pin routed: %v", opt.Rollups)
	}
}

func TestRollupRefusesFilterOffGroupKeys(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, productRollup())
	// quarter is not a group key of the rollup: filtering it does not
	// commute with the materialized aggregation, so routing must refuse.
	root := aggOver(
		filter(scan("sales"), table.Pred{Col: "quarter", Op: table.OpEq, Val: table.S("Q1")}),
		[]string{"product"},
		table.Agg{Func: table.AggSum, Col: "revenue", As: "total"})
	_, opt := execBoth(t, root, c)
	if len(opt.Rollups) != 0 || scansTable(opt.Root, "sales_by_product") {
		t.Fatalf("routed through a non-commuting filter: %v\n%s", opt.Rollups, opt.Root)
	}
}

func TestRollupCoarseReaggregation(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, pqRollup("sales_by_pq"))
	root := aggOver(scan("sales"), []string{"product"},
		table.Agg{Func: table.AggCount, Col: "", As: "n"},
		table.Agg{Func: table.AggSum, Col: "units", As: "u"},
		table.Agg{Func: table.AggMin, Col: "units", As: "lo"},
		table.Agg{Func: table.AggMax, Col: "units", As: "hi"})
	out, opt := execBoth(t, root, c)
	if want := "sales -> sales_by_pq (reaggregated)"; len(opt.Rollups) != 1 || opt.Rollups[0] != want {
		t.Fatalf("Rollups = %v, want %q", opt.Rollups, want)
	}
	agg := opt.Root
	for agg != nil && agg.Op != OpAggregate {
		agg = agg.Child()
	}
	if agg == nil || agg.Aggs[0].Func != table.AggCountMerge {
		t.Fatalf("COUNT not remapped to COUNT_MERGE: %s", opt.Root)
	}
	if out.Len() != 3 {
		t.Fatalf("rows = %d, want 3", out.Len())
	}
}

func TestRollupCoarseRefusesAvg(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, pqRollup("sales_by_pq"))
	// AVG of partial averages is wrong for uneven group sizes; AVG never
	// re-aggregates even though the rollup materializes it.
	root := aggOver(scan("sales"), []string{"product"},
		table.Agg{Func: table.AggAvg, Col: "revenue", As: "avg_rev"})
	_, opt := execBoth(t, root, c)
	if len(opt.Rollups) != 0 {
		t.Fatalf("AVG routed coarser: %v", opt.Rollups)
	}
}

func TestRollupCoarseRefusesFloatSum(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, pqRollup("sales_by_pq"))
	// revenue is a float column: re-associating float additions is not
	// bit-exact, so a coarser SUM(revenue) stays on the base table.
	root := aggOver(scan("sales"), []string{"product"},
		table.Agg{Func: table.AggSum, Col: "revenue", As: "total"})
	_, opt := execBoth(t, root, c)
	if len(opt.Rollups) != 0 {
		t.Fatalf("float SUM routed coarser: %v", opt.Rollups)
	}
}

func TestRollupRefusesNonScanShapes(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, productRollup())
	agg := table.Agg{Func: table.AggSum, Col: "revenue", As: "total"}
	shapes := map[string]*Node{
		"ranged scan":             aggOver(&Node{Op: OpScan, Table: "sales", RowEnd: 3}, []string{"product"}, agg),
		"scan missing agg column": aggOver(&Node{Op: OpScan, Table: "sales", Cols: []string{"product"}}, []string{"product"}, agg),
		"sort below": aggOver(
			&Node{Op: OpSort, Keys: []table.SortKey{{Col: "revenue"}}, In: []*Node{scan("sales")}},
			[]string{"product"}, agg),
		"unmaterialized agg": aggOver(scan("sales"), []string{"product"},
			table.Agg{Func: table.AggMin, Col: "revenue", As: "lo"}),
		"different grain": aggOver(scan("sales"), []string{"quarter"}, agg),
	}
	for name, root := range shapes {
		opt := Optimize(root.Clone(), CatalogStats(c))
		if len(opt.Rollups) != 0 {
			t.Errorf("%s: routed %v", name, opt.Rollups)
		}
	}
}

func TestRollupPrefersExactOverCoarse(t *testing.T) {
	c := testCatalog()
	// "a_pq" sorts before "z_by_product"; exact routing must still win
	// over the earlier-named reaggregation candidate.
	mustAddRollup(t, c, pqRollup("a_pq"))
	fine := productRollup()
	fine.Name = "z_by_product"
	mustAddRollup(t, c, fine)
	root := aggOver(scan("sales"), []string{"product"},
		table.Agg{Func: table.AggCount, Col: "", As: "n"})
	_, opt := execBoth(t, root, c)
	if want := "sales -> z_by_product (exact)"; len(opt.Rollups) != 1 || opt.Rollups[0] != want {
		t.Fatalf("Rollups = %v, want %q", opt.Rollups, want)
	}
}

func TestRollupRoutingSkippedWithoutRollupStats(t *testing.T) {
	c := testCatalog()
	mustAddRollup(t, c, productRollup())
	root := aggOver(scan("sales"), []string{"product"},
		table.Agg{Func: table.AggSum, Col: "revenue", As: "total"})
	// A bare Stats without RollupsFor disables the pass entirely.
	opt := Optimize(root, noRollupStats{CatalogStats(c)})
	if len(opt.Rollups) != 0 || traced(t, opt, "rollup") {
		t.Fatalf("pass ran without RollupStats: %v", opt.Trace)
	}
}

// noRollupStats wraps a Stats and hides its RollupStats implementation.
type noRollupStats struct{ s Stats }

func (n noRollupStats) Schema(tbl string) (table.Schema, bool)  { return n.s.Schema(tbl) }
func (n noRollupStats) Card(tbl string) (int, bool)             { return n.s.Card(tbl) }
func (n noRollupStats) TableStats(tbl string) *table.TableStats { return n.s.TableStats(tbl) }
