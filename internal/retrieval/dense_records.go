package retrieval

import (
	"repro/internal/chunk"
	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/vector"
)

// NewDenseFromRecords builds the dense baseline directly from source
// records, without a graph: text documents are chunked and embedded,
// structured/semi-structured records are embedded from their rendered
// text. This is the standalone conventional-RAG indexing path used by
// the RAG pipeline and the index-cost experiment (E1).
func NewDenseFromRecords(records []store.Record, chunker *chunk.Chunker, embedder *slm.Embedder, ix vector.Index) (*Dense, error) {
	d := &Dense{
		ix:       ix,
		embedder: embedder,
		texts:    make(map[string]string),
		kinds:    make(map[string]string),
	}
	for _, rec := range records {
		if rec.Kind == store.KindText {
			for _, ch := range chunker.Split(rec.ID, rec.Text) {
				id := "chunk:" + ch.ID
				if err := ix.Add(id, embedder.Embed(ch.Text)); err != nil {
					return nil, err
				}
				d.texts[id] = ch.Text
				d.kinds[id] = "chunk"
			}
			continue
		}
		if rec.Text == "" {
			continue
		}
		id := "row:" + rec.ID
		if err := ix.Add(id, embedder.Embed(rec.Text)); err != nil {
			return nil, err
		}
		d.texts[id] = rec.Text
		d.kinds[id] = "row"
	}
	return d, nil
}
