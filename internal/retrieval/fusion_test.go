package retrieval

import (
	"testing"

	"repro/internal/slm"
	"repro/internal/vector"
)

func TestFusionCombines(t *testing.T) {
	g := testGraph(t)
	ner := testNER()
	embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim)
	dense, err := NewDense(g, embedder, vector.NewFlat(embedder.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	fusion := NewFusion(
		NewTopology(g, ner, DefaultTopologyOptions()),
		dense,
		NewBM25(g),
	)
	if fusion.Name() != "rrf_fusion" {
		t.Errorf("name = %q", fusion.Name())
	}
	ev := fusion.Retrieve("How many units did Product Alpha sell in Q2?", 5)
	if len(ev) == 0 {
		t.Fatal("no fused evidence")
	}
	if len(ev) > 5 {
		t.Errorf("k not respected: %d", len(ev))
	}
	// Scores are strictly positive and descending.
	for i, e := range ev {
		if e.Score <= 0 {
			t.Errorf("score[%d] = %v", i, e.Score)
		}
		if i > 0 && ev[i-1].Score < e.Score {
			t.Error("not descending")
		}
	}
}

func TestFusionAgreementBoost(t *testing.T) {
	// A document found by all retrievers must outrank one found by a
	// single retriever at similar ranks. Construct via the shared
	// corpus: the on-topic chunk appears in all three top lists.
	g := testGraph(t)
	ner := testNER()
	embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim)
	dense, err := NewDense(g, embedder, vector.NewFlat(embedder.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	topo := NewTopology(g, ner, DefaultTopologyOptions())
	bm := NewBM25(g)
	fusion := NewFusion(topo, dense, bm)

	query := "Product Beta units in Q2"
	fused := fusion.Retrieve(query, 3)
	if len(fused) == 0 {
		t.Fatal("no results")
	}
	// Count how many single retrievers rank the fused top-1 in their
	// own top-3; agreement should be at least 2 of 3.
	agree := 0
	for _, r := range []Retriever{topo, dense, bm} {
		for _, e := range r.Retrieve(query, 3) {
			if e.NodeID == fused[0].NodeID {
				agree++
				break
			}
		}
	}
	if agree < 2 {
		t.Errorf("fused top-1 %s agreed by only %d retrievers", fused[0].NodeID, agree)
	}
}

func TestFusionDeterministic(t *testing.T) {
	g := testGraph(t)
	fusion := NewFusion(NewBM25(g), NewBM25(g))
	a := fusion.Retrieve("Product Alpha stars", 4)
	b := fusion.Retrieve("Product Alpha stars", 4)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i].NodeID != b[i].NodeID {
			t.Fatal("order differs")
		}
	}
}
