package retrieval

import (
	"repro/internal/graph"
	"repro/internal/slm"
	"repro/internal/vector"
)

// Dense is the conventional-RAG baseline retriever: every chunk and
// row is embedded into a vector index and queries are nearest-neighbor
// searches (paper Section I, gap 1 — the "dense vector retrieval"
// pipelines whose indexing and inference cost the graph index avoids).
type Dense struct {
	ix       vector.Index
	embedder *slm.Embedder
	texts    map[string]string
	kinds    map[string]string
}

// NewDense builds the baseline over the same graph contents the
// topology retriever uses, so comparisons are apples-to-apples. Pass
// either a Flat or IVF index (untrained IVF self-trains on first use).
func NewDense(g *graph.Graph, embedder *slm.Embedder, ix vector.Index) (*Dense, error) {
	d := &Dense{
		ix:       ix,
		embedder: embedder,
		texts:    make(map[string]string),
		kinds:    make(map[string]string),
	}
	for _, typ := range []graph.NodeType{graph.NodeChunk, graph.NodeRow} {
		kind := "chunk"
		if typ == graph.NodeRow {
			kind = "row"
		}
		for _, n := range g.NodesOfType(typ) {
			text := n.Attrs["text"]
			if text == "" {
				continue
			}
			if err := ix.Add(n.ID, embedder.Embed(text)); err != nil {
				return nil, err
			}
			d.texts[n.ID] = text
			d.kinds[n.ID] = kind
		}
	}
	return d, nil
}

// Name implements Retriever.
func (d *Dense) Name() string { return "dense" }

// Retrieve implements Retriever.
func (d *Dense) Retrieve(query string, k int) []Evidence {
	hits := d.ix.Search(d.embedder.Embed(query), k)
	out := make([]Evidence, 0, len(hits))
	for _, h := range hits {
		out = append(out, Evidence{
			NodeID: h.ID,
			Text:   d.texts[h.ID],
			Score:  h.Score,
			Kind:   d.kinds[h.ID],
		})
	}
	return out
}

// IndexSizeBytes reports the vector index's resident size, for the
// index-cost experiment.
func (d *Dense) IndexSizeBytes() int64 { return d.ix.SizeBytes() }
