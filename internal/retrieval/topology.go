// Package retrieval implements the paper's topology-enhanced retrieval
// (Section III.B) and the two baselines it is evaluated against: dense
// vector retrieval (conventional RAG) and BM25 sparse retrieval.
//
// All retrievers share one interface: given a natural-language query
// they return scored Evidence items (text chunks or structured rows)
// that downstream QA consumes.
package retrieval

import (
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/slm"
)

// Evidence is one retrieved context item.
type Evidence struct {
	NodeID string  // graph node id ("chunk:..." or "row:...")
	Text   string  // renderable content
	Score  float64 // retriever-specific relevance, higher = better
	Kind   string  // "chunk" or "row"
}

// Retriever is the shared retrieval interface.
type Retriever interface {
	// Retrieve returns the top-k evidence for the query, best first.
	Retrieve(query string, k int) []Evidence
	// Name identifies the retriever in experiment output.
	Name() string
}

// TopologyOptions configures the graph retriever.
type TopologyOptions struct {
	MaxDepth         int     // traversal hop limit (default 3)
	Budget           int     // max settled nodes (default 256)
	Decay            float64 // per-hop decay (default 0.7)
	DisableCentral   bool    // ablation: no centrality prior
	DisableCueEdges  bool    // ablation: skip relates/cue edges
	LexicalFallback  bool    // fall back to lexical scan when no anchors (default true)
	AnchorsPerEntity int     // unused entities beyond this are ignored
	Workers          int     // PageRank workers; 0 = GOMAXPROCS, 1 = sequential
}

// DefaultTopologyOptions returns the standard configuration.
func DefaultTopologyOptions() TopologyOptions {
	return TopologyOptions{MaxDepth: 3, Budget: 256, Decay: 0.7, LexicalFallback: true}
}

// Topology is the paper's retriever: anchor the query's entities in the
// graph, expand best-first along typed edges weighted by PageRank
// centrality, and collect the chunks and rows reached.
type Topology struct {
	g    *graph.Graph
	ner  *slm.NER
	opts TopologyOptions
	rank map[string]float64 // PageRank prior, computed once
	norm float64            // max rank, for normalization
}

// NewTopology builds the retriever over a finished graph. PageRank is
// computed eagerly so query-time cost is traversal only.
func NewTopology(g *graph.Graph, ner *slm.NER, opts TopologyOptions) *Topology {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 3
	}
	if opts.Budget <= 0 {
		opts.Budget = 256
	}
	t := &Topology{g: g, ner: ner, opts: opts}
	if !opts.DisableCentral {
		t.rank = g.PageRank(t.pageRankOptions())
		for _, v := range t.rank {
			if v > t.norm {
				t.norm = v
			}
		}
	}
	return t
}

// pageRankOptions forwards the retriever's worker bound to PageRank.
func (t *Topology) pageRankOptions() graph.PageRankOptions {
	opts := graph.DefaultPageRankOptions()
	opts.Workers = t.opts.Workers
	return opts
}

// Name implements Retriever.
func (t *Topology) Name() string { return "topology" }

// Refresh recomputes the centrality prior after the graph has been
// mutated (incremental ingestion). Cheap relative to a rebuild: one
// PageRank pass.
func (t *Topology) Refresh() {
	if t.opts.DisableCentral {
		return
	}
	t.rank = t.g.PageRank(t.pageRankOptions())
	t.norm = 0
	for _, v := range t.rank {
		if v > t.norm {
			t.norm = v
		}
	}
}

// Retrieve implements Retriever.
//
// Scoring is anchor-additive: the expansion runs once per anchor
// entity and a node's score is the SUM of its per-anchor path scores,
// so evidence connected to several of the query's entities ("Product
// Alpha" AND "Q2") dominates evidence connected to only one — the
// "dynamically assesses and connects nodes representing the sales
// data ... as well as any associated temporal nodes" behaviour of
// Section III.B.
func (t *Topology) Retrieve(query string, k int) []Evidence {
	anchors := t.anchors(query)
	if len(anchors) == 0 {
		if !t.opts.LexicalFallback {
			return nil
		}
		return t.lexicalScan(query, k)
	}
	edgeWeights := map[graph.EdgeType]float64{
		graph.EdgeMentions: 1.0,
		graph.EdgeNextTo:   0.4,
		graph.EdgePartOf:   0.2,
	}
	if !t.opts.DisableCueEdges {
		// Cue edges widen reach to related entities; they carry lower
		// multipliers than direct mentions so they add paths without
		// drowning them.
		edgeWeights[graph.EdgeRelates] = 0.5
		edgeWeights[graph.EdgeCueArg] = 0.4
		edgeWeights[graph.EdgeCueIn] = 0.6
	}
	nodePrior := func(n *graph.Node) float64 { return 1 }
	if t.rank != nil && t.norm > 0 {
		nodePrior = func(n *graph.Node) float64 {
			// Map rank into [0.5, 1.5] so the prior biases rather than
			// dominates path scores.
			return 0.5 + t.rank[n.ID]/t.norm
		}
	}
	opts := graph.ExpandOptions{
		MaxDepth:   t.opts.MaxDepth,
		Budget:     t.opts.Budget,
		Decay:      t.opts.Decay,
		NodeWeight: nodePrior,
		EdgeTypes:  edgeWeights,
	}
	total := make(map[string]float64)
	for _, a := range anchors {
		for _, v := range t.g.WeightedExpand([]string{a}, opts) {
			total[v.ID] += v.Score
		}
	}
	qTerms := queryTerms(query)
	var out []Evidence
	for id, s := range total {
		n := t.g.Node(id)
		if n == nil {
			continue
		}
		var kind string
		switch n.Type {
		case graph.NodeChunk:
			kind = "chunk"
		case graph.NodeRow:
			kind = "row"
		default:
			continue
		}
		text := n.Attrs["text"]
		// Blend topology score with lexical affinity so that among
		// equally-reachable items the on-topic one wins.
		score := s * (1 + 2*lexicalOverlap(qTerms, text))
		out = append(out, Evidence{NodeID: id, Text: text, Score: score, Kind: kind})
	}
	sortEvidence(out)
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// anchors maps query entities to existing graph entity nodes.
func (t *Topology) anchors(query string) []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range t.ner.Recognize(query) {
		id := index.EntityNodeID(e.Canonical)
		if !seen[id] && t.g.HasNode(id) {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// lexicalScan is the anchor-free fallback: score every chunk/row by
// query-term overlap. It keeps recall non-zero for queries whose
// entities never appear in the corpus.
func (t *Topology) lexicalScan(query string, k int) []Evidence {
	qTerms := queryTerms(query)
	var out []Evidence
	for _, typ := range []graph.NodeType{graph.NodeChunk, graph.NodeRow} {
		kind := "chunk"
		if typ == graph.NodeRow {
			kind = "row"
		}
		for _, n := range t.g.NodesOfType(typ) {
			text := n.Attrs["text"]
			s := lexicalOverlap(qTerms, text)
			if s > 0 {
				out = append(out, Evidence{NodeID: n.ID, Text: text, Score: s, Kind: kind})
			}
		}
	}
	sortEvidence(out)
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// ExplainPath returns a hop-by-hop path from any query anchor to the
// given evidence node, for answer provenance.
func (t *Topology) ExplainPath(query, evidenceID string) []string {
	for _, a := range t.anchors(query) {
		if p := t.g.ShortestPath(a, evidenceID); p != nil {
			return p
		}
	}
	return nil
}

func queryTerms(q string) map[string]bool {
	terms := make(map[string]bool)
	for _, w := range slm.Words(slm.Tokenize(q)) {
		if !slm.IsStopword(w) {
			terms[w] = true
		}
	}
	return terms
}

func lexicalOverlap(qTerms map[string]bool, text string) float64 {
	if len(qTerms) == 0 {
		return 0
	}
	hits := 0
	seen := map[string]bool{}
	for _, w := range slm.Words(slm.Tokenize(text)) {
		if qTerms[w] && !seen[w] {
			seen[w] = true
			hits++
		}
	}
	return float64(hits) / float64(len(qTerms))
}

func sortEvidence(out []Evidence) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].NodeID < out[j].NodeID
	})
}

// Texts extracts the evidence texts in order.
func Texts(ev []Evidence) []string {
	out := make([]string, len(ev))
	for i, e := range ev {
		out[i] = e.Text
	}
	return out
}

// IDs extracts the evidence node ids in order, with their prefixes
// ("chunk:", "row:") stripped for comparison against gold labels.
func IDs(ev []Evidence) []string {
	out := make([]string, len(ev))
	for i, e := range ev {
		id := e.NodeID
		if idx := strings.IndexByte(id, ':'); idx >= 0 {
			id = id[idx+1:]
		}
		out[i] = id
	}
	return out
}
