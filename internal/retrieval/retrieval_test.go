package retrieval

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/vector"
)

func testNER() *slm.NER {
	n := slm.NewNER()
	n.AddGazetteer(slm.EntProduct, "Product Alpha", "Product Beta", "Widget Pro")
	n.AddGazetteer(slm.EntDrug, "Drug A", "Drug B")
	n.AddGazetteer(slm.EntSideEffect, "nausea", "fatigue", "headache")
	return n
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	txt := store.NewTextStore("notes")
	txt.Add("doc-alpha", "Product Alpha sold 42 units in Q2. Customers rated Product Alpha 4 stars. Product Alpha shipping was fast.")
	txt.Add("doc-beta", "Product Beta sold 20 units in Q2. Product Beta was rated 2 stars.")
	txt.Add("doc-med", "Patient P-1 received Drug A on 2024-05-01. Patient P-1 reported nausea. Patient P-2 received Drug B.")
	txt.Add("doc-noise", "The weather was sunny. Traffic was heavy downtown. Nothing else happened.")

	cat := table.NewCatalog()
	sales := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "revenue", Type: table.TypeFloat},
	})
	sales.MustAppend([]table.Value{table.S("Product Alpha"), table.F(4200)})
	sales.MustAppend([]table.Value{table.S("Product Beta"), table.F(2000)})
	cat.Put(sales)

	m := store.NewMulti().Add(txt).Add(store.NewRelationalStore("db", cat))
	g, _, err := index.NewBuilder(testNER(), index.DefaultOptions()).Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTopologyAnchored(t *testing.T) {
	g := testGraph(t)
	r := NewTopology(g, testNER(), DefaultTopologyOptions())
	ev := r.Retrieve("How many units did Product Alpha sell in Q2?", 5)
	if len(ev) == 0 {
		t.Fatal("no evidence")
	}
	if !strings.Contains(ev[0].Text, "Product Alpha") {
		t.Errorf("top evidence off-topic: %q", ev[0].Text)
	}
	for _, e := range ev {
		if strings.Contains(e.Text, "weather") {
			t.Errorf("noise retrieved: %q", e.Text)
		}
	}
}

func TestTopologyCrossModal(t *testing.T) {
	g := testGraph(t)
	r := NewTopology(g, testNER(), DefaultTopologyOptions())
	ev := r.Retrieve("Product Alpha revenue", 10)
	var hasChunk, hasRow bool
	for _, e := range ev {
		if e.Kind == "chunk" {
			hasChunk = true
		}
		if e.Kind == "row" {
			hasRow = true
		}
	}
	if !hasChunk || !hasRow {
		t.Errorf("cross-modal evidence: chunk=%v row=%v", hasChunk, hasRow)
	}
}

func TestTopologyLexicalFallback(t *testing.T) {
	g := testGraph(t)
	r := NewTopology(g, testNER(), DefaultTopologyOptions())
	ev := r.Retrieve("what happened with the weather", 3)
	if len(ev) == 0 {
		t.Fatal("fallback returned nothing")
	}
	if !strings.Contains(ev[0].Text, "weather") {
		t.Errorf("fallback top: %q", ev[0].Text)
	}
}

func TestTopologyNoFallbackOption(t *testing.T) {
	g := testGraph(t)
	opts := DefaultTopologyOptions()
	opts.LexicalFallback = false
	r := NewTopology(g, testNER(), opts)
	if ev := r.Retrieve("completely unrelated nonsense zzz", 3); len(ev) != 0 {
		t.Errorf("expected no evidence, got %v", ev)
	}
}

func TestTopologyAblationNoCentrality(t *testing.T) {
	g := testGraph(t)
	opts := DefaultTopologyOptions()
	opts.DisableCentral = true
	r := NewTopology(g, testNER(), opts)
	if r.rank != nil {
		t.Error("pagerank computed despite ablation")
	}
	if ev := r.Retrieve("Product Alpha units", 3); len(ev) == 0 {
		t.Error("ablated retriever returned nothing")
	}
}

func TestTopologyExplainPath(t *testing.T) {
	g := testGraph(t)
	r := NewTopology(g, testNER(), DefaultTopologyOptions())
	ev := r.Retrieve("Product Alpha ratings", 1)
	if len(ev) == 0 {
		t.Fatal("no evidence")
	}
	path := r.ExplainPath("Product Alpha ratings", ev[0].NodeID)
	if len(path) < 2 {
		t.Errorf("path = %v", path)
	}
	if !strings.HasPrefix(path[0], "ent:") {
		t.Errorf("path should start at an entity anchor: %v", path)
	}
}

func TestTopologyBudgetRespected(t *testing.T) {
	g := testGraph(t)
	opts := DefaultTopologyOptions()
	opts.Budget = 3
	r := NewTopology(g, testNER(), opts)
	ev := r.Retrieve("Product Alpha sales", 100)
	if len(ev) > 3 {
		t.Errorf("budget exceeded: %d items", len(ev))
	}
}

func TestDenseRetrieval(t *testing.T) {
	g := testGraph(t)
	e := slm.NewEmbedder(slm.DefaultEmbeddingDim)
	d, err := NewDense(g, e, vector.NewFlat(e.Dim()))
	if err != nil {
		t.Fatal(err)
	}
	ev := d.Retrieve("patient reported nausea after drug", 3)
	if len(ev) == 0 {
		t.Fatal("no dense evidence")
	}
	if !strings.Contains(ev[0].Text, "nausea") && !strings.Contains(ev[0].Text, "Drug") {
		t.Errorf("top dense hit: %q", ev[0].Text)
	}
	if d.IndexSizeBytes() <= 0 {
		t.Error("index size must be positive")
	}
}

func TestDenseWithIVF(t *testing.T) {
	g := testGraph(t)
	e := slm.NewEmbedder(slm.DefaultEmbeddingDim)
	d, err := NewDense(g, e, vector.NewIVF(e.Dim(), 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	ev := d.Retrieve("Product Beta stars rating", 3)
	if len(ev) == 0 {
		t.Fatal("no IVF evidence")
	}
}

func TestBM25Retrieval(t *testing.T) {
	g := testGraph(t)
	r := NewBM25(g)
	ev := r.Retrieve("Product Beta units Q2", 3)
	if len(ev) == 0 {
		t.Fatal("no bm25 evidence")
	}
	if !strings.Contains(ev[0].Text, "Product Beta") {
		t.Errorf("top bm25 hit: %q", ev[0].Text)
	}
}

func TestBM25EmptyGraph(t *testing.T) {
	r := NewBM25(graph.New())
	if ev := r.Retrieve("anything", 3); len(ev) != 0 {
		t.Errorf("empty corpus returned %v", ev)
	}
}

func TestBM25NoMatch(t *testing.T) {
	g := testGraph(t)
	r := NewBM25(g)
	if ev := r.Retrieve("zzzz qqqq xxxx", 3); len(ev) != 0 {
		t.Errorf("nonsense query returned %v", ev)
	}
}

func TestRetrieverNames(t *testing.T) {
	g := testGraph(t)
	e := slm.NewEmbedder(32)
	d, _ := NewDense(g, e, vector.NewFlat(32))
	names := map[string]bool{}
	for _, r := range []Retriever{NewTopology(g, testNER(), DefaultTopologyOptions()), d, NewBM25(g)} {
		if r.Name() == "" || names[r.Name()] {
			t.Errorf("bad name %q", r.Name())
		}
		names[r.Name()] = true
	}
}

func TestEvidenceHelpers(t *testing.T) {
	ev := []Evidence{
		{NodeID: "chunk:doc#0", Text: "a"},
		{NodeID: "row:db/sales/1", Text: "b"},
	}
	if got := Texts(ev); got[0] != "a" || got[1] != "b" {
		t.Errorf("Texts = %v", got)
	}
	ids := IDs(ev)
	if ids[0] != "doc#0" || ids[1] != "db/sales/1" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestTopologyDeterministic(t *testing.T) {
	g := testGraph(t)
	r := NewTopology(g, testNER(), DefaultTopologyOptions())
	a := r.Retrieve("Product Alpha sales in Q2", 5)
	b := r.Retrieve("Product Alpha sales in Q2", 5)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].NodeID != b[i].NodeID {
			t.Fatal("nondeterministic order")
		}
	}
}

func TestTopKRespected(t *testing.T) {
	g := testGraph(t)
	for _, r := range []Retriever{NewTopology(g, testNER(), DefaultTopologyOptions()), NewBM25(g)} {
		if ev := r.Retrieve("Product Alpha Q2 units", 2); len(ev) > 2 {
			t.Errorf("%s returned %d > k", r.Name(), len(ev))
		}
	}
}
