package retrieval

import "sort"

// Fusion combines several retrievers with reciprocal rank fusion
// (RRF): score(d) = Σ_r 1/(K + rank_r(d)). It is the standard
// low-cost ensemble in retrieval systems and serves here as the upper
// baseline in the retrieval experiments — if topology alone approaches
// the fusion of all three retrievers, the graph index is doing the
// heavy lifting.
type Fusion struct {
	retrievers []Retriever
	k          float64
}

// RRFConstant is the conventional dampening constant.
const RRFConstant = 60

// NewFusion builds an RRF ensemble over the given retrievers.
func NewFusion(retrievers ...Retriever) *Fusion {
	return &Fusion{retrievers: retrievers, k: RRFConstant}
}

// Name implements Retriever.
func (f *Fusion) Name() string { return "rrf_fusion" }

// Retrieve implements Retriever.
func (f *Fusion) Retrieve(query string, k int) []Evidence {
	type acc struct {
		ev    Evidence
		score float64
	}
	scores := map[string]*acc{}
	fetch := k * 2
	if fetch < 20 {
		fetch = 20
	}
	for _, r := range f.retrievers {
		for rank, ev := range r.Retrieve(query, fetch) {
			a, ok := scores[ev.NodeID]
			if !ok {
				a = &acc{ev: ev}
				scores[ev.NodeID] = a
			}
			a.score += 1 / (f.k + float64(rank+1))
		}
	}
	out := make([]Evidence, 0, len(scores))
	for _, a := range scores {
		e := a.ev
		e.Score = a.score
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].NodeID < out[j].NodeID
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
