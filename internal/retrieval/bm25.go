package retrieval

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/slm"
)

// BM25 is the classical sparse-retrieval baseline (Okapi BM25 with
// k1=1.2, b=0.75) over the same chunk/row corpus.
type BM25 struct {
	k1, b    float64
	docs     []bm25Doc
	df       map[string]int // document frequency per term
	avgLen   float64
	idsIndex map[string]int
}

type bm25Doc struct {
	id    string
	kind  string
	text  string
	tf    map[string]int
	count int
}

// NewBM25 indexes the graph's chunks and rows.
func NewBM25(g *graph.Graph) *BM25 {
	r := &BM25{k1: 1.2, b: 0.75, df: make(map[string]int), idsIndex: make(map[string]int)}
	var totalLen int
	for _, typ := range []graph.NodeType{graph.NodeChunk, graph.NodeRow} {
		kind := "chunk"
		if typ == graph.NodeRow {
			kind = "row"
		}
		for _, n := range g.NodesOfType(typ) {
			text := n.Attrs["text"]
			if text == "" {
				continue
			}
			tf := make(map[string]int)
			count := 0
			for _, w := range slm.Words(slm.Tokenize(text)) {
				if slm.IsStopword(w) {
					continue
				}
				tf[w]++
				count++
			}
			for term := range tf {
				r.df[term]++
			}
			r.idsIndex[n.ID] = len(r.docs)
			r.docs = append(r.docs, bm25Doc{id: n.ID, kind: kind, text: text, tf: tf, count: count})
			totalLen += count
		}
	}
	if len(r.docs) > 0 {
		r.avgLen = float64(totalLen) / float64(len(r.docs))
	}
	return r
}

// Name implements Retriever.
func (r *BM25) Name() string { return "bm25" }

// Retrieve implements Retriever.
func (r *BM25) Retrieve(query string, k int) []Evidence {
	if len(r.docs) == 0 {
		return nil
	}
	var qTerms []string
	seen := map[string]bool{}
	for _, w := range slm.Words(slm.Tokenize(query)) {
		if !slm.IsStopword(w) && !seen[w] {
			seen[w] = true
			qTerms = append(qTerms, w)
		}
	}
	n := float64(len(r.docs))
	var out []Evidence
	for _, d := range r.docs {
		var score float64
		for _, term := range qTerms {
			tf := float64(d.tf[term])
			if tf == 0 {
				continue
			}
			df := float64(r.df[term])
			idf := math.Log(1 + (n-df+0.5)/(df+0.5))
			denom := tf + r.k1*(1-r.b+r.b*float64(d.count)/r.avgLen)
			score += idf * tf * (r.k1 + 1) / denom
		}
		if score > 0 {
			out = append(out, Evidence{NodeID: d.id, Text: d.text, Score: score, Kind: d.kind})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].NodeID < out[j].NodeID
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
