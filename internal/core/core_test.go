package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/workload"
)

func hybridFor(t *testing.T, c *workload.Corpus) *Hybrid {
	t.Helper()
	ner := slm.NewNER()
	c.Register(ner)
	h, err := NewHybrid(c.Sources, ner, DefaultHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHybridIngest(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	stats, extracted := h.Stats()
	if stats.Nodes == 0 || stats.Chunks == 0 {
		t.Errorf("index stats: %+v", stats)
	}
	if extracted == 0 {
		t.Error("no extractions")
	}
	// Extraction must have created ratings and metric_changes tables.
	for _, name := range []string{"ratings", "metric_changes", "sales", "products"} {
		if _, err := h.Catalog().Get(name); err != nil {
			t.Errorf("catalog missing %s: %v", name, err)
		}
	}
}

func TestHybridAnswersAllClasses(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	for _, q := range c.Queries {
		ans := h.Answer(q.Text)
		if !ans.Answered() {
			t.Errorf("[%s] %q unanswered: %v", q.Class, q.Text, ans.Err)
			continue
		}
		if ans.Text != q.Gold {
			t.Errorf("[%s] %q:\n  got  %q\n  want %q\n  plan %s", q.Class, q.Text, ans.Text, q.Gold, ans.Plan)
		}
		if len(ans.Evidence) == 0 {
			t.Errorf("[%s] %q has no evidence", q.Class, q.Text)
		}
	}
}

func TestHybridHealthcareAnswers(t *testing.T) {
	c := workload.Healthcare(workload.DefaultHealthcareOptions())
	h := hybridFor(t, c)
	correct := 0
	for _, q := range c.Queries {
		ans := h.Answer(q.Text)
		if ans.Answered() && ans.Text == q.Gold {
			correct++
		} else {
			t.Logf("[%s] %q: got %q want %q (plan %s)", q.Class, q.Text, ans.Text, q.Gold, ans.Plan)
		}
	}
	if frac := float64(correct) / float64(len(c.Queries)); frac < 0.9 {
		t.Errorf("healthcare accuracy = %v (%d/%d)", frac, correct, len(c.Queries))
	}
}

func TestHybridUncertaintyPopulated(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	ans := h.Answer(c.Queries[0].Text)
	if ans.Uncertainty.Samples == 0 {
		t.Error("no uncertainty samples")
	}
	if ans.Latency <= 0 {
		t.Error("latency not recorded")
	}
}

func TestHybridUnanswerable(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	ans := h.Answer("what is the airspeed velocity of an unladen swallow")
	if ans.Answered() {
		// A lexical-fallback answer is acceptable, but it must carry
		// high uncertainty or weak evidence rather than fabricating
		// silently with confidence. We only require it not to panic
		// and to produce a well-formed Answer.
		t.Logf("fallback answer: %q (entropy %.2f)", ans.Text, ans.Uncertainty.SemanticH)
	} else if !errors.Is(ans.Err, ErrNoAnswer) && !errors.Is(ans.Err, semop.ErrNoBinding) {
		t.Errorf("unexpected error type: %v", ans.Err)
	}
}

func TestRAGAnswersLookupButFailsAggregates(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	r, err := NewRAG(c.Sources, ner, DefaultRAGOptions())
	if err != nil {
		t.Fatal(err)
	}
	aggEM := 0
	aggN := 0
	for _, q := range c.QueriesOf(workload.ClassAggregate) {
		aggN++
		if ans := r.Answer(q.Text); ans.Answered() && ans.Text == q.Gold {
			aggEM++
		}
	}
	if aggN > 0 && aggEM == aggN {
		t.Error("RAG should not ace aggregates — baseline too strong to be real")
	}
	// Cross-modal single-fact lookups should at least return evidence.
	q := c.QueriesOf(workload.ClassCrossModal)[0]
	ans := r.Answer(q.Text)
	if len(ans.Evidence) == 0 {
		t.Errorf("RAG returned no evidence for %q", q.Text)
	}
}

func TestTextToSQLStructuredOnly(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	ts := NewTextToSQL(c.NativeCatalog(), ner)

	// Structured lookups succeed exactly.
	okCount := 0
	lookups := c.QueriesOf(workload.ClassSingleLookup)
	for _, q := range lookups {
		if ans := ts.Answer(q.Text); ans.Answered() && ans.Text == q.Gold {
			okCount++
		}
	}
	if okCount != len(lookups) {
		t.Errorf("text-to-sql lookups: %d/%d", okCount, len(lookups))
	}

	// Cross-modal rating queries must fail: ratings only exist in text.
	for _, q := range c.QueriesOf(workload.ClassCrossModal) {
		ans := ts.Answer(q.Text)
		if ans.Answered() && ans.Text == q.Gold {
			t.Errorf("text-to-sql answered cross-modal %q — should be impossible", q.Text)
		}
	}
}

func TestEvaluateQAOrdering(t *testing.T) {
	// The E3 claim: hybrid > both baselines on cross-modal queries.
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h := hybridFor(t, c)
	r, err := NewRAG(c.Sources, ner, DefaultRAGOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTextToSQL(c.NativeCatalog(), ner)

	cross := c.QueriesOf(workload.ClassCrossModal)
	hStats := EvaluateQA(h, cross)[workload.ClassCrossModal]
	rStats := EvaluateQA(r, cross)[workload.ClassCrossModal]
	tStats := EvaluateQA(ts, cross)[workload.ClassCrossModal]

	if hStats.EM <= rStats.EM && hStats.EM <= tStats.EM {
		t.Errorf("hybrid EM %v not above baselines (rag %v, ttsql %v)", hStats.EM, rStats.EM, tStats.EM)
	}
	if hStats.EM < 0.9 {
		t.Errorf("hybrid cross-modal EM = %v, want >= 0.9", hStats.EM)
	}
	if tStats.EM != 0 {
		t.Errorf("text-to-sql cross-modal EM = %v, want 0", tStats.EM)
	}
}

func TestEvaluateQAOverall(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	stats := EvaluateQA(h, c.Queries)
	overall := stats[workload.Class("overall")]
	if overall.N != len(c.Queries) {
		t.Errorf("overall N = %d", overall.N)
	}
	if overall.EM < 0.9 {
		t.Errorf("hybrid overall EM = %v", overall.EM)
	}
	if overall.MeanMillis <= 0 {
		t.Error("latency not aggregated")
	}
}

func TestEvaluateRetrieval(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	stats := EvaluateRetrieval(h.Retriever(), c.Queries, []int{1, 5, 10})
	if stats.N == 0 {
		t.Fatal("no queries evaluated")
	}
	if stats.RecallAt[10] < stats.RecallAt[1] {
		t.Errorf("recall not monotone: %v", stats.RecallAt)
	}
	if stats.RecallAt[10] == 0 {
		t.Error("zero recall@10")
	}
	if stats.MRR < 0 || stats.MRR > 1 {
		t.Errorf("MRR = %v", stats.MRR)
	}
}

func TestEvaluateExtraction(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	stats := EvaluateExtraction(h.Catalog(), c.GoldFacts)
	if stats.GoldFacts == 0 || stats.Extracted == 0 {
		t.Fatalf("degenerate stats: %+v", stats)
	}
	if stats.Recall < 0.9 {
		t.Errorf("extraction recall = %v (%d/%d)", stats.Recall, stats.Matched, stats.GoldFacts)
	}
	if stats.Precision < 0.8 {
		t.Errorf("extraction precision = %v", stats.Precision)
	}
	if stats.F1 <= 0 || stats.F1 > 1 {
		t.Errorf("f1 = %v", stats.F1)
	}
}

func TestSynthesizeEmptyResult(t *testing.T) {
	_, err := synthesize(&semop.Plan{}, semop.Query{Raw: "q"}, nil)
	if !errors.Is(err, ErrNoAnswer) {
		t.Errorf("err = %v", err)
	}
}

func TestPipelineNames(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h := hybridFor(t, c)
	r, _ := NewRAG(c.Sources, ner, DefaultRAGOptions())
	ts := NewTextToSQL(c.NativeCatalog(), ner)
	names := map[string]bool{}
	for _, p := range []Pipeline{h, r, ts} {
		if p.Name() == "" || names[p.Name()] {
			t.Errorf("bad pipeline name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

func TestHybridAblationNoCues(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	opts := DefaultHybridOptions()
	opts.Index.DisableCues = true
	h, err := NewHybrid(c.Sources, ner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats, _ := h.Stats(); stats.Cues != 0 {
		t.Error("cues built despite ablation")
	}
	// Still answers (structured path unaffected).
	q := c.QueriesOf(workload.ClassSingleLookup)[0]
	if ans := h.Answer(q.Text); !ans.Answered() {
		t.Errorf("ablated hybrid failed: %v", ans.Err)
	}
}

func TestAnswerPlanVisible(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	h := hybridFor(t, c)
	ans := h.Answer(c.QueriesOf(workload.ClassAggregate)[0].Text)
	if !strings.Contains(ans.Plan, "Scan(") {
		t.Errorf("plan = %q", ans.Plan)
	}
}
