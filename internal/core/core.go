// Package core assembles the paper's system (Section III.C, "Enabling
// Complex Multi-Entity QA through Hybrid Pipelines") and the two
// baselines it is evaluated against:
//
//   - Hybrid — graph index + topology retrieval + SLM table generation
//   - semantic operator synthesis + TableQA + entropy scoring. The
//     paper's contribution.
//   - RAG — dense vector retrieval + generative reading. The
//     conventional pipeline of Section I, gap 1.
//   - TextToSQL — semantic operators over native structured tables
//     only. The engine that "fail[s] to parse the unstructured
//     component" (Section I, gap 2).
//
// All three implement Pipeline, so the experiment harness treats them
// uniformly.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/entropy"
	"repro/internal/retrieval"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/table"
)

// Answer is a pipeline's response to one question.
type Answer struct {
	Text        string               // final answer string ("" when unanswerable)
	Plan        string               // synthesized operator plan, if any
	Explain     string               // federated logical→physical EXPLAIN, if executed
	Evidence    []retrieval.Evidence // supporting context items
	Uncertainty entropy.Report       // semantic-entropy assessment
	Latency     time.Duration        // wall-clock answer time
	Err         error                // non-nil when the pipeline could not answer
}

// Answered reports whether the pipeline produced an answer.
func (a Answer) Answered() bool { return a.Err == nil && a.Text != "" }

// Pipeline is the common QA interface of the three systems.
type Pipeline interface {
	// Name identifies the pipeline in experiment output.
	Name() string
	// Answer resolves one natural-language question.
	Answer(question string) Answer
}

// ErrNoAnswer is returned when a pipeline cannot produce any answer.
var ErrNoAnswer = errors.New("core: no answer")

// synthesize renders an executed plan's result table as an answer
// string. The formats here are the system's answer contract; the
// workload generators produce gold strings in the same formats.
func synthesize(p *semop.Plan, q semop.Query, res *table.Table) (string, error) {
	if res == nil || res.Len() == 0 {
		return "", fmt.Errorf("%w: empty result for %q", ErrNoAnswer, q.Raw)
	}
	// Grouped aggregates and comparisons: "key: value, key: value".
	if len(p.GroupBy) > 0 && len(p.Aggs) > 0 && len(res.Schema) >= 2 {
		parts := make([]string, 0, res.Len())
		for _, row := range res.Rows {
			parts = append(parts, fmt.Sprintf("%s: %s", row[0], table.FormatValue(row[len(row)-1])))
		}
		return strings.Join(parts, ", "), nil
	}
	// Global aggregate: single value.
	if len(p.Aggs) > 0 && res.Len() == 1 {
		return table.FormatValue(res.Rows[0][len(res.Rows[0])-1]), nil
	}
	// List intent over a known metric column: distinct sorted values.
	if q.Intent == semop.IntentList || q.Intent == semop.IntentLookup {
		col := res.Schema.ColIndex(p.MetricCol)
		if col < 0 {
			col = len(res.Schema) - 1
		}
		if q.Intent == semop.IntentLookup && res.Len() >= 1 {
			return table.FormatValue(res.Rows[0][col]), nil
		}
		seen := map[string]bool{}
		var vals []string
		for _, row := range res.Rows {
			v := table.FormatValue(row[col])
			if v != "NULL" && !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return "", fmt.Errorf("%w: all-null result for %q", ErrNoAnswer, q.Raw)
		}
		sort.Strings(vals)
		return strings.Join(vals, ", "), nil
	}
	// Fallback: first cell.
	return table.FormatValue(res.Rows[0][0]), nil
}

// assessUncertainty samples M answers around the produced answer and
// its competitors and scores their semantic entropy (Section III.D).
//
// conflicts carries distinct values the structured result itself
// disagreed on (several extracted rows answering the same lookup
// differently — the paper's "conflicting training data" case). When
// present, they compete on their observed counts and the final answer
// gets no confidence boost: the disagreement is real. Otherwise the
// produced answer dominates evidence-derived alternatives.
func assessUncertainty(answerText string, conflicts []slm.Candidate,
	evidence []retrieval.Evidence, question string,
	ner *slm.NER, gen *slm.Generator, clusterer *entropy.Clusterer, samples int, rng *slm.RNG) entropy.Report {

	var cands []slm.Candidate
	if len(conflicts) > 1 {
		cands = conflicts
	} else {
		cands = slm.DeriveCandidates(question, retrieval.Texts(evidence), ner)
		if len(cands) > 3 {
			cands = cands[:3]
		}
		if answerText != "" {
			boosted := []slm.Candidate{{Text: answerText, Weight: 3}}
			for _, c := range cands {
				if c.Text != answerText {
					boosted = append(boosted, slm.Candidate{Text: c.Text, Weight: c.Weight * 0.5})
				}
			}
			cands = boosted
		}
	}
	if len(cands) == 0 {
		return entropy.Report{}
	}
	gens := gen.Sample(cands, samples, rng)
	return entropy.Assess(gens, clusterer)
}

// resultConflicts extracts the distinct values a lookup/list result
// offers for the metric column, weighted by how often each occurs.
// Aggregates never conflict (one row); multi-row lookups may.
func resultConflicts(p *semop.Plan, q semop.Query, res *table.Table) []slm.Candidate {
	if res == nil || len(p.Aggs) > 0 || res.Len() < 2 {
		return nil
	}
	if q.Intent != semop.IntentLookup {
		return nil
	}
	col := res.Schema.ColIndex(p.MetricCol)
	if col < 0 {
		return nil
	}
	counts := map[string]float64{}
	var order []string
	for _, row := range res.Rows {
		v := table.FormatValue(row[col])
		if v == "NULL" {
			continue
		}
		if _, ok := counts[v]; !ok {
			order = append(order, v)
		}
		counts[v]++
	}
	if len(order) < 2 {
		return nil
	}
	cands := make([]slm.Candidate, 0, len(order))
	for _, v := range order {
		cands = append(cands, slm.Candidate{Text: v, Weight: counts[v]})
	}
	return cands
}
