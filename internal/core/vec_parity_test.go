package core

import (
	"reflect"
	"testing"

	"repro/internal/logical"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/workload"
)

// vecParitySkips is the exact set of workload questions excluded from
// vectorized parity per domain, keyed by question text with the plan
// shape that justifies the exclusion. Every operator now has a
// columnar kernel (Sort and Compare were the last two), so the set is
// empty in both domains. Pinning it empty makes silent coverage loss
// fail loudly: a question newly skipped means kernel coverage
// regressed, and that surfaces as a diff against this map.
var vecParitySkips = map[string]map[string]string{
	"ecommerce":  {},
	"healthcare": {},
}

// TestVectorizedMatchesRowExecutor holds the vectorized executor to
// bit-identity with the row interpreter on every bound workload
// question across both domains: for each optimized plan, ExecVec must
// return a table identical in schema, row order and cell values to
// logical.Exec — at one worker and at several, since output order
// must not depend on parallelism. A plan that reports itself
// non-vectorizable is tracked, not dropped: the skip set must equal
// vecParitySkips (empty) exactly.
func TestVectorizedMatchesRowExecutor(t *testing.T) {
	corpora := map[string]*workload.Corpus{
		"ecommerce":  workload.ECommerce(workload.DefaultECommerceOptions()),
		"healthcare": workload.Healthcare(workload.DefaultHealthcareOptions()),
	}
	for domain, c := range corpora {
		t.Run(domain, func(t *testing.T) {
			ner := slm.NewNER()
			c.Register(ner)
			h, err := NewHybrid(c.Sources, ner, DefaultHybridOptions())
			if err != nil {
				t.Fatal(err)
			}
			cat := h.Catalog()
			bound, vectorized := 0, 0
			skipped := map[string]string{}
			for _, q := range c.Queries {
				plan, err := semop.Bind(semop.Parse(q.Text, ner), cat)
				if err != nil {
					continue
				}
				bound++
				opt := logical.Optimize(semop.Compile(plan), logical.CatalogStats(cat))
				want, wantErr := logical.Exec(opt.Root, cat)
				if !logical.Vectorizable(opt.Root) {
					// Every IR operator has a columnar kernel now, so no
					// bound plan should land here; any that does is tracked
					// and fails the empty-set assertion below.
					switch {
					case hasOp(opt.Root, logical.OpSort):
						skipped[q.Text] = "sort"
					case hasOp(opt.Root, logical.OpCompare):
						skipped[q.Text] = "compare"
					default:
						t.Errorf("%q: plan reported non-vectorizable", q.Text)
					}
					continue
				}
				vectorized++
				for _, workers := range []int{1, 2, 8} {
					got, err := logical.ExecVec(opt.Root, cat, workers)
					if wantErr != nil {
						if err == nil {
							t.Errorf("%q (workers=%d): row executor errored (%v) but vectorized succeeded",
								q.Text, workers, wantErr)
						}
						continue
					}
					if err != nil {
						t.Errorf("%q (workers=%d): vectorized exec: %v", q.Text, workers, err)
						continue
					}
					if renderTable(got) != renderTable(want) {
						t.Errorf("%q (workers=%d): vectorized result diverges from row executor:\n%s\nvs\n%s",
							q.Text, workers, renderTable(got), renderTable(want))
					}
				}
			}
			if bound == 0 {
				t.Fatal("no workload question bound — parity test vacuous")
			}
			if vectorized == 0 {
				t.Fatal("no plan took the vectorized path — parity test vacuous")
			}
			if !reflect.DeepEqual(skipped, vecParitySkips[domain]) {
				t.Errorf("vectorized-parity skip set drifted:\ngot:  %v\nwant: %v\n(update vecParitySkips only for a deliberate kernel-coverage change)",
					skipped, vecParitySkips[domain])
			}
			t.Logf("%s: %d/%d bound questions verified through the vectorized executor (%d tracked skips)",
				domain, vectorized, bound, len(skipped))
		})
	}
}

// hasOp reports whether any node in the tree has the given op.
func hasOp(n *logical.Node, op logical.Op) bool {
	if n == nil {
		return false
	}
	if n.Op == op {
		return true
	}
	for _, in := range n.In {
		if hasOp(in, op) {
			return true
		}
	}
	return false
}
