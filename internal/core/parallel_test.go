package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/slm"
	"repro/internal/workload"
)

// hybridWithWorkers builds the e-commerce corpus with a fixed worker
// count.
func hybridWithWorkers(t *testing.T, workers int) (*Hybrid, *workload.Corpus) {
	t.Helper()
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	opts := DefaultHybridOptions()
	opts.Workers = workers
	h, err := NewHybrid(c.Sources, ner, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h, c
}

// Parallel ingest must produce exactly the same system as sequential
// ingest: same stats, same graph, same catalog, same answers.
func TestParallelBuildDeterminism(t *testing.T) {
	seq, c := hybridWithWorkers(t, 1)
	par, _ := hybridWithWorkers(t, 8)

	ss, seqExtracted := seq.Stats()
	sp, parExtracted := par.Stats()
	ss.BuildTime, sp.BuildTime = 0, 0 // wall-clock may differ; nothing else may
	if ss != sp {
		t.Errorf("IndexStats diverge:\n  seq %+v\n  par %+v", ss, sp)
	}
	if seqExtracted != parExtracted {
		t.Errorf("ExtractCount: seq %d, par %d", seqExtracted, parExtracted)
	}
	if seq.Graph().NodeCount() != par.Graph().NodeCount() || seq.Graph().EdgeCount() != par.Graph().EdgeCount() {
		t.Errorf("graph shape diverges: seq %d/%d, par %d/%d",
			seq.Graph().NodeCount(), seq.Graph().EdgeCount(),
			par.Graph().NodeCount(), par.Graph().EdgeCount())
	}
	if !reflect.DeepEqual(seq.Catalog().Names(), par.Catalog().Names()) {
		t.Fatalf("catalog names diverge: seq %v, par %v", seq.Catalog().Names(), par.Catalog().Names())
	}
	for _, name := range seq.Catalog().Names() {
		st, _ := seq.Catalog().Get(name)
		pt, _ := par.Catalog().Get(name)
		if st.String() != pt.String() {
			t.Errorf("table %s diverges:\nseq:\n%s\npar:\n%s", name, st.String(), pt.String())
		}
	}
	for _, q := range c.Queries {
		sa, pa := seq.Answer(q.Text), par.Answer(q.Text)
		if sa.Text != pa.Text || sa.Plan != pa.Plan {
			t.Errorf("%q: seq (%q, %s) vs par (%q, %s)", q.Text, sa.Text, sa.Plan, pa.Text, pa.Plan)
		}
		if sa.Uncertainty.SemanticH != pa.Uncertainty.SemanticH {
			t.Errorf("%q: entropy seq %v vs par %v", q.Text, sa.Uncertainty.SemanticH, pa.Uncertainty.SemanticH)
		}
	}
}

// AnswerAll must return, at every worker count, exactly the answers a
// sequential loop of Answer calls would have produced, in order.
func TestAnswerAllMatchesSequential(t *testing.T) {
	seq, c := hybridWithWorkers(t, 0)
	par, _ := hybridWithWorkers(t, 0)
	questions := make([]string, 0, len(c.Queries))
	for _, q := range c.Queries {
		questions = append(questions, q.Text)
	}

	want := make([]Answer, len(questions))
	for i, q := range questions {
		want[i] = seq.Answer(q)
	}
	for _, workers := range []int{1, 4} {
		got := par.AnswerAll(questions, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d answers, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Text != want[i].Text || got[i].Plan != want[i].Plan {
				t.Errorf("workers=%d [%d] %q: got (%q, %s), want (%q, %s)",
					workers, i, questions[i], got[i].Text, got[i].Plan, want[i].Text, want[i].Plan)
			}
			if got[i].Uncertainty.SemanticH != want[i].Uncertainty.SemanticH {
				t.Errorf("workers=%d [%d]: entropy %v, want %v",
					workers, i, got[i].Uncertainty.SemanticH, want[i].Uncertainty.SemanticH)
			}
		}
		// Reset the comparison stream: build a fresh hybrid so the next
		// worker count sees the same RNG forks.
		par, _ = hybridWithWorkers(t, 0)
	}
}

// With the cache enabled, duplicate questions inside one batch must be
// answered identically at any worker count — parallel workers must not
// race to fill the same key with different samples.
func TestAnswerAllCachedDuplicatesDeterministic(t *testing.T) {
	build := func() *Hybrid {
		c := workload.ECommerce(workload.DefaultECommerceOptions())
		ner := slm.NewNER()
		c.Register(ner)
		opts := DefaultHybridOptions()
		opts.CacheSize = 16
		h, err := NewHybrid(c.Sources, ner, opts)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	q0, q1 := c.Queries[0].Text, c.Queries[1].Text
	batch := []string{q0, q1, "  " + q0 + " ", q0, q1}
	want := build().AnswerAll(batch, 1)
	got := build().AnswerAll(batch, 8)
	for i := range batch {
		if got[i].Text != want[i].Text || got[i].Uncertainty.SemanticH != want[i].Uncertainty.SemanticH {
			t.Errorf("[%d] %q: par (%q, H=%v) vs seq (%q, H=%v)",
				i, batch[i], got[i].Text, got[i].Uncertainty.SemanticH, want[i].Text, want[i].Uncertainty.SemanticH)
		}
	}
	if want[0].Uncertainty.SemanticH != want[3].Uncertainty.SemanticH {
		t.Error("duplicate question did not reuse the first computation")
	}
}

// The answer cache must serve repeats, evict LRU past capacity, and be
// purged by Ingest.
func TestAnswerCache(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	opts := DefaultHybridOptions()
	opts.CacheSize = 2
	h, err := NewHybrid(c.Sources, ner, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := c.Queries[0].Text

	first := h.Answer(q)
	cached := h.Answer("  " + q + "  ") // normalization must hit the same key
	if hits, misses, size := h.CacheStats(); hits != 1 || misses != 1 || size != 1 {
		t.Errorf("after repeat: hits=%d misses=%d size=%d", hits, misses, size)
	}
	if cached.Text != first.Text || cached.Plan != first.Plan ||
		cached.Uncertainty.SemanticH != first.Uncertainty.SemanticH {
		t.Errorf("cached answer diverges: %+v vs %+v", cached.Text, first.Text)
	}

	// Fill past capacity: the least recently used entry is evicted.
	h.Answer(c.Queries[1].Text)
	h.Answer(c.Queries[2].Text)
	if _, _, size := h.CacheStats(); size != 2 {
		t.Errorf("size after eviction = %d, want 2", size)
	}

	// Ingest invalidates everything.
	if err := h.Ingest("live", "cache-purge-doc", "Product Alpha launched."); err != nil {
		t.Fatal(err)
	}
	if _, _, size := h.CacheStats(); size != 0 {
		t.Errorf("size after ingest = %d, want 0", size)
	}
}

// The cache must be transparent to the RNG stream: with caching on,
// answers to questions after a cache hit are identical to a run with
// caching off.
func TestAnswerCacheStreamTransparent(t *testing.T) {
	build := func(cacheSize int) (*Hybrid, *workload.Corpus) {
		c := workload.ECommerce(workload.DefaultECommerceOptions())
		ner := slm.NewNER()
		c.Register(ner)
		opts := DefaultHybridOptions()
		opts.CacheSize = cacheSize
		h, err := NewHybrid(c.Sources, ner, opts)
		if err != nil {
			t.Fatal(err)
		}
		return h, c
	}
	withCache, c := build(8)
	noCache, _ := build(0)
	q0, q1 := c.Queries[0].Text, c.Queries[1].Text
	seq := []string{q0, q0, q1} // second q0 hits the cache
	for i, q := range seq {
		a, b := withCache.Answer(q), noCache.Answer(q)
		if a.Text != b.Text {
			t.Errorf("[%d] %q: cached %q vs uncached %q", i, q, a.Text, b.Text)
		}
		// The hit itself (i==1) replays the first computation's entropy
		// sample rather than re-sampling; every fresh question must see
		// the same RNG fork it would have seen without the cache.
		if i != 1 && a.Uncertainty.SemanticH != b.Uncertainty.SemanticH {
			t.Errorf("[%d] %q: entropy cached H=%v vs uncached H=%v",
				i, q, a.Uncertainty.SemanticH, b.Uncertainty.SemanticH)
		}
	}
}

// Concurrent Ingest and Answer must interleave safely (run with -race)
// and every answer must come from a consistent snapshot.
func TestConcurrentIngestAndAnswer(t *testing.T) {
	h, c := hybridWithWorkers(t, 0)
	questions := make([]string, 0, len(c.Queries))
	for _, q := range c.Queries {
		questions = append(questions, q.Text)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 24; i++ {
			doc := fmt.Sprintf("Customer C-%d rated Product Alpha %d stars.", 9000+i, i%5+1)
			if err := h.Ingest("live", fmt.Sprintf("live-%d", i), doc); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 4*len(questions); i++ {
		h.Answer(questions[i%len(questions)])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	stats, _ := h.Stats()
	if stats.Docs == 0 {
		t.Error("stats snapshot empty after concurrent ingest")
	}
}
