package core

import (
	"testing"

	"repro/internal/slm"
	"repro/internal/workload"
)

// The ops corpus exercises the semi-structured path: JSON logs
// materialize into typed tables that semantic operators aggregate over.
func TestHybridOpsAnswers(t *testing.T) {
	c := workload.Ops(workload.DefaultOpsOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h, err := NewHybrid(c.Sources, ner, DefaultHybridOptions())
	if err != nil {
		t.Fatal(err)
	}
	// JSON logs became a catalog table.
	if _, err := h.Catalog().Get("logs"); err != nil {
		t.Fatalf("logs table missing: %v (catalog %v)", err, h.Catalog().Names())
	}
	// XML deploy config became a catalog table too.
	if _, err := h.Catalog().Get("deploy"); err != nil {
		t.Fatalf("deploy table missing: %v", err)
	}
	for _, q := range c.Queries {
		ans := h.Answer(q.Text)
		if !ans.Answered() {
			t.Errorf("[%s] %q unanswered: %v", q.Class, q.Text, ans.Err)
			continue
		}
		if ans.Text != q.Gold {
			t.Errorf("[%s] %q:\n  got  %q\n  want %q\n  plan %s", q.Class, q.Text, ans.Text, q.Gold, ans.Plan)
		}
	}
}

func TestOpsDeterministic(t *testing.T) {
	a := workload.Ops(workload.DefaultOpsOptions())
	b := workload.Ops(workload.DefaultOpsOptions())
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("query counts differ")
	}
	for i := range a.Queries {
		if a.Queries[i].Gold != b.Queries[i].Gold {
			t.Fatal("ops not deterministic")
		}
	}
}
