package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/entropy"
	"repro/internal/extract"
	"repro/internal/fault"
	"repro/internal/federate"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/logical"
	"repro/internal/metrics"
	"repro/internal/retrieval"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/sql"
	"repro/internal/store"
	"repro/internal/table"
)

// HybridOptions configures the paper's system.
type HybridOptions struct {
	Index             index.Options
	Topology          retrieval.TopologyOptions
	EvidenceK         int    // evidence items per query (default 8)
	EntropyM          int    // samples for uncertainty scoring (default 5)
	Seed              uint64 // generator sampling seed
	DisableExtraction bool   // ablation: no Relational Table Generation

	// Workers bounds ingest parallelism: the graph build's analysis pool
	// and the Relational Table Generation pass both fan out per record /
	// per document and merge deterministically, so results are identical
	// to a sequential run. 0 means GOMAXPROCS; 1 forces sequential.
	Workers int

	// CacheSize enables an LRU answer cache of that many entries, keyed
	// by normalized question and purged on Ingest. 0 disables caching.
	CacheSize int

	// QueryTimeout bounds each federated query execution: fragment
	// scans past the deadline are cancelled and the query fails with
	// context.DeadlineExceeded. 0 means no deadline.
	QueryTimeout time.Duration

	// ScanRetries caps transient-failure retries per fragment scan
	// (capped exponential backoff between attempts). 0 uses the default
	// budget; -1 disables retries entirely.
	ScanRetries int
}

// DefaultHybridOptions returns the standard configuration.
func DefaultHybridOptions() HybridOptions {
	return HybridOptions{
		Index:     index.DefaultOptions(),
		Topology:  retrieval.DefaultTopologyOptions(),
		EvidenceK: 8,
		EntropyM:  5,
		Seed:      1,
	}
}

// Hybrid is the paper's end-to-end system: at ingest it builds the
// heterogeneous graph index and runs Relational Table Generation over
// every unstructured document; at query time it synthesizes semantic
// operators over the combined catalog, retrieves topology-guided
// evidence, and scores semantic entropy.
//
// After construction a Hybrid is safe for concurrent use: Answer and
// AnswerAll may run from any number of goroutines, interleaved with
// Ingest calls. Ingest takes the write half of an RWMutex guarding the
// graph, catalog, retriever and stats; answering takes the read half.
// WithCost is setup-time only and must happen before concurrent use.
type Hybrid struct {
	ner       *slm.NER
	graph     *graph.Graph
	builder   *index.Builder
	extractor *extract.Engine
	retriever *retrieval.Topology
	catalog   *table.Catalog // native + extracted tables
	fed       *federate.Executor
	gen       *slm.Generator
	greedy    *slm.Generator // temperature-0 fallback decoder, cost-instrumented
	clusterer *entropy.Clusterer
	opts      HybridOptions
	rngMu     sync.Mutex
	rng       *slm.RNG
	cost      *slm.CostModel
	cache     *answerCache        // nil when disabled
	counters  *metrics.CounterSet // federated resilience counters

	// mu guards graph/catalog/retriever/IndexStats/ExtractCount against
	// Ingest-vs-Answer races. Reading the exported fields directly is
	// safe only when no Ingest can run concurrently; use Stats otherwise.
	mu sync.RWMutex

	IndexStats   index.Stats // guarded by mu
	ExtractCount int         // guarded by mu; extracted rows merged into the catalog
}

// NewHybrid ingests the sources and returns a ready system. The
// recognizer should already carry the domain gazetteer.
func NewHybrid(sources *store.Multi, ner *slm.NER, opts HybridOptions) (*Hybrid, error) {
	if opts.EvidenceK <= 0 {
		opts.EvidenceK = 8
	}
	if opts.EntropyM <= 0 {
		opts.EntropyM = 5
	}
	if opts.Workers != 0 {
		if opts.Index.Workers == 0 {
			opts.Index.Workers = opts.Workers
		}
		if opts.Topology.Workers == 0 {
			opts.Topology.Workers = opts.Workers
		}
	}
	h := &Hybrid{
		ner:       ner,
		gen:       slm.NewGenerator(),
		greedy:    &slm.Generator{Temperature: 0},
		clusterer: entropy.NewClusterer(slm.NewEmbedder(slm.DefaultEmbeddingDim)),
		opts:      opts,
		rng:       slm.NewRNG(opts.Seed),
	}
	if opts.CacheSize > 0 {
		h.cache = newAnswerCache(opts.CacheSize)
	}

	// Relational Table Generation reads only the source text, so it can
	// run concurrently with the graph build and the centrality prior;
	// the merge below joins on it. Workers == 1 keeps everything on the
	// calling goroutine. Either way the merged catalog is identical.
	var extractions []extract.Extraction
	var extractDone chan struct{}
	if !opts.DisableExtraction {
		h.extractor = extract.NewEngine(ner, extract.Rules()...)
		var docs []extract.Doc
		for _, s := range sources.Sources() {
			if s.Kind() != store.KindText {
				continue
			}
			for _, rec := range s.Records() {
				docs = append(docs, extract.Doc{ID: rec.ID, Text: rec.Text})
			}
		}
		if opts.Workers == 1 {
			extractions = h.extractor.ExtractDocs(docs, 1)
		} else {
			extractDone = make(chan struct{})
			go func() {
				defer close(extractDone)
				extractions = h.extractor.ExtractDocs(docs, opts.Workers)
			}()
		}
	}

	// 1. Graph index over every source.
	h.builder = index.NewBuilder(ner, opts.Index)
	g, stats, err := h.builder.Build(sources)
	if err != nil {
		return nil, fmt.Errorf("core: hybrid index: %w", err)
	}
	h.graph = g
	h.IndexStats = stats
	h.retriever = retrieval.NewTopology(g, ner, opts.Topology)

	// 2. Catalog: native tables, materialized semi-structured sources
	// (JSON/XML become typed relations), plus SLM-generated tables
	// from every unstructured document (Relational Table Generation).
	h.catalog = table.NewCatalog()
	for _, s := range sources.Sources() {
		switch src := s.(type) {
		case *store.RelationalStore:
			for _, name := range src.Catalog().Names() {
				if t, err := src.Catalog().Get(name); err == nil {
					h.catalog.Put(t)
				}
			}
		default:
			if s.Kind() == store.KindJSON || s.Kind() == store.KindXML {
				t, err := store.ToTable(s.Name(), s.Records())
				if err != nil {
					return nil, fmt.Errorf("core: materialize %s: %w", s.Name(), err)
				}
				if t.Len() > 0 {
					h.catalog.Put(t)
				}
			}
		}
	}
	if !opts.DisableExtraction {
		if extractDone != nil {
			<-extractDone
		}
		if err := extract.Merge(h.catalog, extractions); err != nil {
			return nil, fmt.Errorf("core: hybrid extraction: %w", err)
		}
		h.ExtractCount = len(extractions)
	}
	h.initFederation()
	return h, nil
}

// fedEpoch versions everything the federated backends read. All three
// terms are monotone nondecreasing and every Ingest advances at least
// one, so cached physical plans, scan indexes and materialized graph
// views invalidate on any mutation. Callers hold h.mu.
func (h *Hybrid) fedEpoch() uint64 {
	return h.catalog.Epoch() + uint64(h.graph.NodeCount()) + uint64(h.graph.EdgeCount())
}

// graphEpoch versions only what the graph-evidence views derive from.
// The views used to key on the combined federation epoch, which also
// moves on catalog-only mutations (extraction merges, CSV re-Puts) —
// rematerializing an unchanged graph for no reason. Keying on the
// graph terms alone skips those rebuilds; plan-cache invalidation
// still uses the combined fedEpoch.
func (h *Hybrid) graphEpoch() uint64 {
	return uint64(h.graph.NodeCount()) + uint64(h.graph.EdgeCount())
}

// initFederation assembles the default backend set: the in-memory
// catalog (indexed scans), the SQL dialect driver over the same
// catalog, and the graph-evidence views. The executor carries the
// system's resilience knobs — query deadline, retry budget — and
// reports retry/failover/breaker events into the shared counter set.
func (h *Hybrid) initFederation() {
	if h.counters == nil {
		h.counters = metrics.NewCounterSet()
	}
	retry := fault.DefaultPolicy()
	if h.opts.ScanRetries != 0 {
		retry.MaxRetries = h.opts.ScanRetries
	}
	h.fed = federate.New(h.fedEpoch, federate.Options{
		Workers:  h.opts.Workers,
		Timeout:  h.opts.QueryTimeout,
		Retry:    retry,
		Counters: h.counters,
	},
		federate.NewMemory(h.catalog),
		federate.NewSQL(h.catalog),
		federate.NewGraphEvidence(h.graph, h.graphEpoch))
}

// Metrics returns the federated resilience counters as "name=value"
// lines in sorted name order: scan retries taken, failovers routed,
// breaker transitions, stale-registry replans. Empty until a
// resilience event occurs.
func (h *Hybrid) Metrics() []string { return h.counters.Snapshot() }

// Federation exposes the federated executor (EXPLAIN, plan-cache
// stats, direct execution in benchmarks).
func (h *Hybrid) Federation() *federate.Executor { return h.fed }

// RegisterBackend adds a federated execution backend to the live
// system, replacing any backend with the same name. Cached plans and
// answers are invalidated; safe to call concurrently with Answer.
func (h *Hybrid) RegisterBackend(b federate.Backend) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fed.Register(b)
	if h.cache != nil {
		h.cache.purge()
	}
}

// AddRollup registers a materialized rollup on the live system's
// catalog: the materialization is built immediately, the optimizer's
// rollup pass starts routing matching aggregates onto it, and every
// subsequent catalog mutation re-materializes it synchronously. The
// catalog epoch advances, so cached physical plans and answers are
// invalidated. Safe to call concurrently with Answer/Query.
func (h *Hybrid) AddRollup(def table.RollupDef) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.catalog.AddRollup(def); err != nil {
		return err
	}
	if h.cache != nil {
		h.cache.purge()
	}
	return nil
}

// Rollups lists the registered rollup definitions, sorted by name.
// Safe to call concurrently with Ingest.
func (h *Hybrid) Rollups() []table.RollupDef {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.catalog.Rollups()
}

// DescribeRollup renders one registered rollup (definition, row count,
// epoch). Safe to call concurrently with Ingest.
func (h *Hybrid) DescribeRollup(name string) (string, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.catalog.DescribeRollup(name)
}

// NewHybridFromState reconstructs a hybrid system from a previously
// built graph index and catalog (see Graph/Catalog accessors and their
// serializers) without re-ingesting sources. The recognizer must carry
// the same gazetteer used at build time, or query anchoring degrades.
func NewHybridFromState(g *graph.Graph, catalog *table.Catalog, ner *slm.NER, opts HybridOptions) *Hybrid {
	if opts.EvidenceK <= 0 {
		opts.EvidenceK = 8
	}
	if opts.EntropyM <= 0 {
		opts.EntropyM = 5
	}
	if opts.Workers != 0 {
		if opts.Index.Workers == 0 {
			opts.Index.Workers = opts.Workers
		}
		if opts.Topology.Workers == 0 {
			opts.Topology.Workers = opts.Workers
		}
	}
	h := &Hybrid{
		ner:       ner,
		graph:     g,
		builder:   index.NewBuilder(ner, opts.Index),
		catalog:   catalog,
		gen:       slm.NewGenerator(),
		greedy:    &slm.Generator{Temperature: 0},
		clusterer: entropy.NewClusterer(slm.NewEmbedder(slm.DefaultEmbeddingDim)),
		opts:      opts,
		rng:       slm.NewRNG(opts.Seed),
	}
	if opts.CacheSize > 0 {
		h.cache = newAnswerCache(opts.CacheSize)
	}
	if !opts.DisableExtraction {
		h.extractor = extract.NewEngine(ner, extract.Rules()...)
	}
	h.retriever = retrieval.NewTopology(g, ner, opts.Topology)
	h.initFederation()
	h.IndexStats = index.Stats{
		Nodes:     g.NodeCount(),
		Edges:     g.EdgeCount(),
		Entities:  len(g.NodesOfType(graph.NodeEntity)),
		Chunks:    len(g.NodesOfType(graph.NodeChunk)),
		Cues:      len(g.NodesOfType(graph.NodeCue)),
		Rows:      len(g.NodesOfType(graph.NodeRow)),
		Docs:      len(g.NodesOfType(graph.NodeDoc)),
		SizeBytes: g.SizeBytes(),
	}
	return h
}

// WithCost attaches a cost model to the answer path — both the sampling
// generator and the greedy fallback decoder, so fallback generations
// are visible to cost accounting. It returns h.
func (h *Hybrid) WithCost(c *slm.CostModel) *Hybrid {
	h.cost = c
	h.gen.WithCost(c)
	h.greedy.WithCost(c)
	return h
}

// Name implements Pipeline.
func (h *Hybrid) Name() string { return "hybrid" }

// Catalog exposes the combined catalog (native + extracted), used by
// examples and the extraction-quality experiment.
func (h *Hybrid) Catalog() *table.Catalog { return h.catalog }

// Graph exposes the built index for inspection.
func (h *Hybrid) Graph() *graph.Graph { return h.graph }

// Retriever exposes the topology retriever for the retrieval
// experiments.
func (h *Hybrid) Retriever() *retrieval.Topology { return h.retriever }

// Ingest indexes one new unstructured document into the live system:
// the graph gains its chunks/entities/cues, extraction adds its rows
// to the catalog, and the retriever's centrality prior refreshes. This
// is the paper's "real-time data analytics" path — no rebuild.
//
// Ingest may be called concurrently with Answer/AnswerAll: it holds the
// write lock for the duration of the mutation and purges the answer
// cache so no stale answer survives the new evidence.
func (h *Hybrid) Ingest(source, id, text string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cache != nil {
		// Purge even on a failed ingest: a partial mutation (graph
		// indexed, merge failed) must not leave stale answers behind.
		defer h.cache.purge()
	}
	rec := store.Record{ID: id, Source: source, Kind: store.KindText, Text: text}
	stats, err := h.builder.IndexRecord(h.graph, rec)
	if err != nil {
		return fmt.Errorf("core: ingest %s: %w", id, err)
	}
	h.IndexStats.Docs++
	h.IndexStats.Chunks += stats.Chunks
	h.IndexStats.Cues += stats.Cues
	h.IndexStats.Nodes = stats.Nodes
	h.IndexStats.Edges = stats.Edges
	h.IndexStats.Entities = stats.Entities
	h.IndexStats.SizeBytes = stats.SizeBytes
	if h.extractor != nil {
		extractions := h.extractor.ExtractDoc(id, text)
		if err := extract.Merge(h.catalog, extractions); err != nil {
			return fmt.Errorf("core: ingest %s: %w", id, err)
		}
		h.ExtractCount += len(extractions)
	}
	h.retriever.Refresh()
	return nil
}

// QueryResult is the outcome of a SQL-entry query: the result table
// plus the same logical → rules → physical EXPLAIN the NL path emits.
type QueryResult struct {
	Table   *table.Table
	Plan    string // optimized logical plan rendering
	Explain string // federated EXPLAIN with the optimizer rule trace
}

// Query executes one SQL SELECT through the unified pipeline: parse →
// compile to the shared logical IR → rule-based optimization →
// federated execution. Because the physical-plan cache keys on the
// canonical IR fingerprint, a SQL query and the natural-language
// question it corresponds to share one cached physical plan. Safe to
// call concurrently with Ingest.
func (h *Hybrid) Query(query string) (QueryResult, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return QueryResult{}, err
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	cat := h.catalog
	node, err := sql.Compile(stmt, cat)
	if errors.Is(err, table.ErrNoTable) {
		// Tables served only by federated backends (graph views,
		// registered external stores) resolve against the federated
		// schema surface.
		cat = h.fed.BindingCatalog()
		node, err = sql.Compile(stmt, cat)
	}
	if err != nil {
		return QueryResult{}, err
	}
	opt := logical.Optimize(node, logical.CatalogStats(cat))
	res, run, err := h.fed.ExecuteIR(opt)
	if err != nil {
		return QueryResult{}, err
	}
	// Plan renders from the executed physical plan, not the fresh
	// compilation: on a cache hit the executor may serve a
	// fingerprint-equivalent plan warmed by the other entry form, and
	// Plan must agree with Explain's "logical:" line.
	return QueryResult{Table: res, Plan: run.Plan.Root.String(), Explain: federate.Explain(run)}, nil
}

// Triples exports the graph's cue layer as knowledge facts — the
// "knowledge database construction" output. Safe to call concurrently
// with Ingest.
func (h *Hybrid) Triples() []index.Triple {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return index.Triples(h.graph)
}

// Stats returns a consistent snapshot of the index statistics and the
// extracted-row count. Unlike reading the exported fields directly,
// Stats is safe to call concurrently with Ingest.
func (h *Hybrid) Stats() (index.Stats, int) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.IndexStats, h.ExtractCount
}

// Answer implements Pipeline: parse → bind → execute → synthesize,
// with graph-retrieved evidence and a generative fallback when no
// table can answer. Safe to call from any goroutine, including
// concurrently with Ingest.
func (h *Hybrid) Answer(question string) Answer {
	// Fork a per-call generator stream so concurrent Answers do not
	// race on shared RNG state; the fork point is serialized, keeping
	// single-threaded runs deterministic.
	h.rngMu.Lock()
	rng := h.rng.Fork()
	h.rngMu.Unlock()
	return h.answerWith(question, rng)
}

// answerWith is Answer with an explicit generator stream; AnswerAll
// pre-forks one stream per question in input order so batch results are
// deterministic regardless of goroutine scheduling.
func (h *Hybrid) answerWith(question string, rng *slm.RNG) Answer {
	start := time.Now()
	ans := Answer{}

	key := normalizeQuestion(question)
	if h.cache != nil {
		if cached, ok := h.cache.get(key); ok {
			cached.Latency = time.Since(start)
			return cached
		}
	}

	// The read lock covers every structure Ingest mutates: retriever
	// (centrality prior), graph (traversal), and catalog (bind/exec).
	h.mu.RLock()
	var epoch uint64
	if h.cache != nil {
		// Under the read lock no purge can run, so this epoch is the
		// one the evidence below is computed against.
		epoch = h.cache.snapshotEpoch()
	}
	ans.Evidence = h.retriever.Retrieve(question, h.opts.EvidenceK)

	var conflicts []slm.Candidate
	q := semop.Parse(question, h.ner)
	statsCat := h.catalog
	plan, err := semop.Bind(q, h.catalog)
	if errors.Is(err, semop.ErrNoBinding) {
		// Fall back to the federated schema surface: backends beyond the
		// catalog (graph-evidence views, registered external stores) may
		// still bind the query structurally.
		if fedPlan, fedErr := semop.Bind(q, h.fed.BindingCatalog()); fedErr == nil {
			plan, err = fedPlan, nil
			statsCat = h.fed.BindingCatalog()
		}
	}
	if err == nil {
		ans.Plan = plan.String()
		// NL entry onto the shared IR: compile the bound plan, run the
		// rule passes against the catalog that bound it, execute
		// federated. The plan cache keys on the canonical IR, so the SQL
		// form of the same question (Query) reuses this physical plan.
		opt := logical.Optimize(semop.Compile(plan), logical.CatalogStats(statsCat))
		res, run, execErr := h.fed.ExecuteIR(opt)
		if execErr == nil {
			ans.Explain = federate.Explain(run)
			text, synthErr := synthesize(plan, q, res)
			if synthErr == nil {
				ans.Text = text
				conflicts = resultConflicts(plan, q, res)
			} else {
				err = synthErr
			}
		} else {
			err = execErr
		}
	}
	h.mu.RUnlock()

	if ans.Text == "" {
		// Generative fallback over retrieved evidence, decoded through
		// the cost-instrumented greedy generator so fallback answers
		// show up in cost accounting like every other generation.
		cands := slm.DeriveCandidates(question, retrieval.Texts(ans.Evidence), h.ner)
		if len(cands) > 0 {
			ans.Text = h.greedy.Generate(cands, rng).Canonical
		} else if err != nil {
			ans.Err = err
		} else {
			ans.Err = fmt.Errorf("%w: %q", ErrNoAnswer, question)
		}
	}

	ans.Uncertainty = assessUncertainty(ans.Text, conflicts, ans.Evidence, question,
		h.ner, h.gen, h.clusterer, h.opts.EntropyM, rng)
	ans.Latency = time.Since(start)
	if h.cache != nil {
		h.cache.put(key, ans, epoch)
	}
	return ans
}
