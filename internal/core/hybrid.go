package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/entropy"
	"repro/internal/extract"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/retrieval"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
)

// HybridOptions configures the paper's system.
type HybridOptions struct {
	Index             index.Options
	Topology          retrieval.TopologyOptions
	EvidenceK         int    // evidence items per query (default 8)
	EntropyM          int    // samples for uncertainty scoring (default 5)
	Seed              uint64 // generator sampling seed
	DisableExtraction bool   // ablation: no Relational Table Generation
}

// DefaultHybridOptions returns the standard configuration.
func DefaultHybridOptions() HybridOptions {
	return HybridOptions{
		Index:     index.DefaultOptions(),
		Topology:  retrieval.DefaultTopologyOptions(),
		EvidenceK: 8,
		EntropyM:  5,
		Seed:      1,
	}
}

// Hybrid is the paper's end-to-end system: at ingest it builds the
// heterogeneous graph index and runs Relational Table Generation over
// every unstructured document; at query time it synthesizes semantic
// operators over the combined catalog, retrieves topology-guided
// evidence, and scores semantic entropy.
type Hybrid struct {
	ner       *slm.NER
	graph     *graph.Graph
	builder   *index.Builder
	extractor *extract.Engine
	retriever *retrieval.Topology
	catalog   *table.Catalog // native + extracted tables
	gen       *slm.Generator
	clusterer *entropy.Clusterer
	opts      HybridOptions
	rngMu     sync.Mutex
	rng       *slm.RNG
	cost      *slm.CostModel

	IndexStats   index.Stats
	ExtractCount int // extracted rows merged into the catalog
}

// NewHybrid ingests the sources and returns a ready system. The
// recognizer should already carry the domain gazetteer.
func NewHybrid(sources *store.Multi, ner *slm.NER, opts HybridOptions) (*Hybrid, error) {
	if opts.EvidenceK <= 0 {
		opts.EvidenceK = 8
	}
	if opts.EntropyM <= 0 {
		opts.EntropyM = 5
	}
	h := &Hybrid{
		ner:       ner,
		gen:       slm.NewGenerator(),
		clusterer: entropy.NewClusterer(slm.NewEmbedder(slm.DefaultEmbeddingDim)),
		opts:      opts,
		rng:       slm.NewRNG(opts.Seed),
	}

	// 1. Graph index over every source.
	h.builder = index.NewBuilder(ner, opts.Index)
	g, stats, err := h.builder.Build(sources)
	if err != nil {
		return nil, fmt.Errorf("core: hybrid index: %w", err)
	}
	h.graph = g
	h.IndexStats = stats
	h.retriever = retrieval.NewTopology(g, ner, opts.Topology)

	// 2. Catalog: native tables, materialized semi-structured sources
	// (JSON/XML become typed relations), plus SLM-generated tables
	// from every unstructured document (Relational Table Generation).
	h.catalog = table.NewCatalog()
	for _, s := range sources.Sources() {
		switch src := s.(type) {
		case *store.RelationalStore:
			for _, name := range src.Catalog().Names() {
				if t, err := src.Catalog().Get(name); err == nil {
					h.catalog.Put(t)
				}
			}
		default:
			if s.Kind() == store.KindJSON || s.Kind() == store.KindXML {
				t, err := store.ToTable(s.Name(), s.Records())
				if err != nil {
					return nil, fmt.Errorf("core: materialize %s: %w", s.Name(), err)
				}
				if t.Len() > 0 {
					h.catalog.Put(t)
				}
			}
		}
	}
	if !opts.DisableExtraction {
		h.extractor = extract.NewEngine(ner, extract.Rules()...)
		var extractions []extract.Extraction
		for _, s := range sources.Sources() {
			if s.Kind() != store.KindText {
				continue
			}
			for _, rec := range s.Records() {
				extractions = append(extractions, h.extractor.ExtractDoc(rec.ID, rec.Text)...)
			}
		}
		if err := extract.Merge(h.catalog, extractions); err != nil {
			return nil, fmt.Errorf("core: hybrid extraction: %w", err)
		}
		h.ExtractCount = len(extractions)
	}
	return h, nil
}

// NewHybridFromState reconstructs a hybrid system from a previously
// built graph index and catalog (see Graph/Catalog accessors and their
// serializers) without re-ingesting sources. The recognizer must carry
// the same gazetteer used at build time, or query anchoring degrades.
func NewHybridFromState(g *graph.Graph, catalog *table.Catalog, ner *slm.NER, opts HybridOptions) *Hybrid {
	if opts.EvidenceK <= 0 {
		opts.EvidenceK = 8
	}
	if opts.EntropyM <= 0 {
		opts.EntropyM = 5
	}
	h := &Hybrid{
		ner:       ner,
		graph:     g,
		builder:   index.NewBuilder(ner, opts.Index),
		catalog:   catalog,
		gen:       slm.NewGenerator(),
		clusterer: entropy.NewClusterer(slm.NewEmbedder(slm.DefaultEmbeddingDim)),
		opts:      opts,
		rng:       slm.NewRNG(opts.Seed),
	}
	if !opts.DisableExtraction {
		h.extractor = extract.NewEngine(ner, extract.Rules()...)
	}
	h.retriever = retrieval.NewTopology(g, ner, opts.Topology)
	h.IndexStats = index.Stats{
		Nodes:     g.NodeCount(),
		Edges:     g.EdgeCount(),
		Entities:  len(g.NodesOfType(graph.NodeEntity)),
		Chunks:    len(g.NodesOfType(graph.NodeChunk)),
		Cues:      len(g.NodesOfType(graph.NodeCue)),
		Rows:      len(g.NodesOfType(graph.NodeRow)),
		Docs:      len(g.NodesOfType(graph.NodeDoc)),
		SizeBytes: g.SizeBytes(),
	}
	return h
}

// WithCost attaches a cost model to the answer path. It returns h.
func (h *Hybrid) WithCost(c *slm.CostModel) *Hybrid {
	h.cost = c
	h.gen.WithCost(c)
	return h
}

// Name implements Pipeline.
func (h *Hybrid) Name() string { return "hybrid" }

// Catalog exposes the combined catalog (native + extracted), used by
// examples and the extraction-quality experiment.
func (h *Hybrid) Catalog() *table.Catalog { return h.catalog }

// Graph exposes the built index for inspection.
func (h *Hybrid) Graph() *graph.Graph { return h.graph }

// Retriever exposes the topology retriever for the retrieval
// experiments.
func (h *Hybrid) Retriever() *retrieval.Topology { return h.retriever }

// Ingest indexes one new unstructured document into the live system:
// the graph gains its chunks/entities/cues, extraction adds its rows
// to the catalog, and the retriever's centrality prior refreshes. This
// is the paper's "real-time data analytics" path — no rebuild.
func (h *Hybrid) Ingest(source, id, text string) error {
	rec := store.Record{ID: id, Source: source, Kind: store.KindText, Text: text}
	stats, err := h.builder.IndexRecord(h.graph, rec)
	if err != nil {
		return fmt.Errorf("core: ingest %s: %w", id, err)
	}
	h.IndexStats.Docs++
	h.IndexStats.Chunks += stats.Chunks
	h.IndexStats.Cues += stats.Cues
	h.IndexStats.Nodes = stats.Nodes
	h.IndexStats.Edges = stats.Edges
	h.IndexStats.Entities = stats.Entities
	h.IndexStats.SizeBytes = stats.SizeBytes
	if h.extractor != nil {
		extractions := h.extractor.ExtractDoc(id, text)
		if err := extract.Merge(h.catalog, extractions); err != nil {
			return fmt.Errorf("core: ingest %s: %w", id, err)
		}
		h.ExtractCount += len(extractions)
	}
	h.retriever.Refresh()
	return nil
}

// Triples exports the graph's cue layer as knowledge facts — the
// "knowledge database construction" output.
func (h *Hybrid) Triples() []index.Triple { return index.Triples(h.graph) }

// Answer implements Pipeline: parse → bind → execute → synthesize,
// with graph-retrieved evidence and a generative fallback when no
// table can answer.
func (h *Hybrid) Answer(question string) Answer {
	start := time.Now()
	ans := Answer{}

	// Fork a per-call generator stream so concurrent Answers do not
	// race on shared RNG state; the fork point is serialized, keeping
	// single-threaded runs deterministic.
	h.rngMu.Lock()
	rng := h.rng.Fork()
	h.rngMu.Unlock()

	ans.Evidence = h.retriever.Retrieve(question, h.opts.EvidenceK)

	var conflicts []slm.Candidate
	q := semop.Parse(question, h.ner)
	plan, err := semop.Bind(q, h.catalog)
	if err == nil {
		ans.Plan = plan.String()
		res, execErr := semop.Exec(plan, h.catalog)
		if execErr == nil {
			text, synthErr := synthesize(plan, q, res)
			if synthErr == nil {
				ans.Text = text
				conflicts = resultConflicts(plan, q, res)
			} else {
				err = synthErr
			}
		} else {
			err = execErr
		}
	}
	if ans.Text == "" {
		// Generative fallback over retrieved evidence.
		cands := slm.DeriveCandidates(question, retrieval.Texts(ans.Evidence), h.ner)
		if len(cands) > 0 {
			greedy := &slm.Generator{Temperature: 0}
			ans.Text = greedy.Generate(cands, rng).Canonical
		} else if err != nil {
			ans.Err = err
		} else {
			ans.Err = fmt.Errorf("%w: %q", ErrNoAnswer, question)
		}
	}

	ans.Uncertainty = assessUncertainty(ans.Text, conflicts, ans.Evidence, question,
		h.ner, h.gen, h.clusterer, h.opts.EntropyM, rng)
	ans.Latency = time.Since(start)
	return ans
}
