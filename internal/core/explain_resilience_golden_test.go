package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/federate"
)

// resilienceQuery is the SQL join shape: it lowers to two routed
// fragments (ratings, metric_changes), so fault injection exercises
// retries and failover on multiple concurrent scans in one query.
const resilienceQuery = "SELECT AVG(stars) AS result FROM ratings JOIN metric_changes ON ratings.product = metric_changes.product WHERE change_pct > 15"

// resilienceScenarios pair a golden name with the chaos wrapper that
// produces it. Each wrapper keeps the inner backend's "memory" name,
// so registering it replaces the healthy built-in and the plan still
// routes to "memory" — the faults hit at scan time.
var resilienceScenarios = []struct {
	name  string
	chaos func(h *Hybrid) federate.Backend
}{
	// Seeded transient faults within the retry budget: every scan
	// eventually succeeds on the planned backend, EXPLAIN shows the
	// retry counts, and results are bit-identical to fault-free.
	{"resilience_retry", func(h *Hybrid) federate.Backend {
		return federate.NewChaos(federate.NewMemory(h.Catalog()), federate.ChaosOptions{
			Seed: 7, MaxTransient: 2, Clock: fault.NewFakeClock(),
		})
	}},
	// Backend fully down: every scan routed to memory fails
	// permanently and fails over to the next-cheapest backend serving
	// the table (sql, over the same catalog) — same results, EXPLAIN
	// shows the failover edges.
	{"resilience_failover", func(h *Hybrid) federate.Backend {
		return federate.NewChaos(federate.NewMemory(h.Catalog()), federate.ChaosOptions{Down: true})
	}},
}

// TestExplainGoldenResilience pins the EXPLAIN resilience line under
// seeded fault injection: the same chaos schedule renders the same
// retry and failover counts at any worker count, and the faulted
// query's result table stays bit-identical to the fault-free run.
// Regenerate with: go test ./internal/core -run TestExplainGoldenResilience -update
func TestExplainGoldenResilience(t *testing.T) {
	baseline := explainHybrid(t, 1)
	want, err := baseline.Query(resilienceQuery)
	if err != nil {
		t.Fatalf("fault-free baseline: %v", err)
	}

	for _, sc := range resilienceScenarios {
		t.Run(sc.name, func(t *testing.T) {
			var explain string
			for _, workers := range []int{1, 2, 8} {
				h := explainHybrid(t, workers)
				h.RegisterBackend(sc.chaos(h))
				res, err := h.Query(resilienceQuery)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := res.Table.String(); got != want.Table.String() {
					t.Fatalf("workers=%d: result drifted under faults:\n%s\nvs fault-free:\n%s",
						workers, got, want.Table.String())
				}
				if explain == "" {
					explain = res.Explain
				} else if res.Explain != explain {
					t.Fatalf("EXPLAIN differs across worker counts:\n%s\nvs\n%s", explain, res.Explain)
				}
				if ms := h.Metrics(); len(ms) == 0 {
					t.Fatalf("workers=%d: no resilience counters recorded", workers)
				}
			}
			if !strings.Contains(explain, "resilience:") {
				t.Fatalf("EXPLAIN missing resilience line:\n%s", explain)
			}
			checkGolden(t, sc.name, explain)
		})
	}
}
