package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/slm"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// explainShapes covers one question per plan shape the planner lowers:
// filter, group-by, join, compare, list. Each golden file snapshots
// the full logical → physical EXPLAIN, so any change to routing,
// pushdown or cost estimates shows up as a diff.
var explainShapes = []struct {
	name     string
	question string
}{
	{"filter", "What was the total units of Product Alpha in Q4?"},
	{"groupby", "What is the average rating by product?"},
	{"join", "What is the average rating of products with a sales increase of more than 15%?"},
	{"compare", "Compare sales of Product Alpha vs Product Beta"},
	{"list", "Which products had a sales increase of more than 15%?"},
}

func explainHybrid(t *testing.T, workers int) *Hybrid {
	t.Helper()
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	opts := DefaultHybridOptions()
	opts.Workers = workers
	h, err := NewHybrid(c.Sources, ner, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestExplainGolden proves plan rendering is deterministic at any
// Workers count and pins the exact EXPLAIN text per question shape.
// Regenerate with: go test ./internal/core -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	seq := explainHybrid(t, 1)
	par := explainHybrid(t, 0)

	for _, shape := range explainShapes {
		t.Run(shape.name, func(t *testing.T) {
			ansSeq := seq.Answer(shape.question)
			if ansSeq.Explain == "" {
				t.Fatalf("no EXPLAIN produced (plan %q, err %v)", ansSeq.Plan, ansSeq.Err)
			}
			if ansPar := par.Answer(shape.question); ansPar.Explain != ansSeq.Explain {
				t.Errorf("EXPLAIN differs between Workers=1 and Workers=0:\n%s\nvs\n%s",
					ansSeq.Explain, ansPar.Explain)
			}
			// Replanning the same question must render identically (plan
			// cache hit path included).
			if again := seq.Answer(shape.question); again.Explain != ansSeq.Explain {
				t.Errorf("EXPLAIN not stable across repeated answers:\n%s\nvs\n%s",
					ansSeq.Explain, again.Explain)
			}

			golden := filepath.Join("testdata", "explain", shape.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(ansSeq.Explain+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to regenerate): %v", err)
			}
			if got := ansSeq.Explain + "\n"; got != string(want) {
				t.Errorf("EXPLAIN drifted from %s:\ngot:\n%swant:\n%s", golden, got, want)
			}
		})
	}
}

// TestExplainBatchMatchesSequential pins batch answering to the same
// EXPLAIN output as sequential answering at any parallelism.
func TestExplainBatchMatchesSequential(t *testing.T) {
	h := explainHybrid(t, 0)
	questions := make([]string, 0, len(explainShapes))
	for _, s := range explainShapes {
		questions = append(questions, s.question)
	}
	batch := h.AnswerAll(questions, 8)
	for i, q := range questions {
		seq := h.Answer(q)
		if batch[i].Explain != seq.Explain {
			t.Errorf("%s: batch EXPLAIN differs from sequential:\n%s\nvs\n%s",
				q, batch[i].Explain, seq.Explain)
		}
	}
}
