package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/slm"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// explainShapes covers one question per plan shape the planner lowers:
// filter, group-by, join, compare, list, plus the optimizer-sensitive
// shapes — a comparison with a shared pushable predicate and a join
// whose driving side carries an equality on the join key (the reorder
// rule's seeding case). Each golden file snapshots the full logical →
// rules → physical EXPLAIN, so any change to routing, pushdown, rule
// firing or cost estimates shows up as a diff.
var explainShapes = []struct {
	name     string
	question string
}{
	{"filter", "What was the total units of Product Alpha in Q4?"},
	{"groupby", "What is the average rating by product?"},
	{"join", "What is the average rating of products with a sales increase of more than 15%?"},
	{"compare", "Compare sales of Product Alpha vs Product Beta"},
	{"list", "Which products had a sales increase of more than 15%?"},
	{"compare_filtered", "Compare sales of Product Alpha vs Product Beta in Q4"},
	{"join_seeded", "What is the average rating of Product Alpha among products with a sales increase of more than 15%?"},
}

// sqlShapes drive the same golden harness through the SQL entry path
// (Hybrid.Query): parse → compile to the shared IR → rule passes →
// federated execution. The first two are the SQL forms of the filter
// and group-by NL shapes and must lower to the same canonical IR.
var sqlShapes = []struct {
	name  string
	query string
}{
	{"sql_filter", "SELECT SUM(change_pct) AS result FROM metric_changes WHERE product = 'Product Alpha' AND quarter = 'Q4'"},
	{"sql_groupby", "SELECT product, AVG(stars) AS result FROM ratings GROUP BY product"},
	{"sql_join", "SELECT AVG(stars) AS result FROM ratings JOIN metric_changes ON ratings.product = metric_changes.product WHERE change_pct > 15"},
	{"sql_orderby", "SELECT product, revenue FROM sales WHERE quarter = 'Q4' ORDER BY revenue DESC LIMIT 3"},
	// An unfiltered ORDER BY: the full 32-row scan clears the
	// vectorization threshold, so the residual Sort dispatches to the
	// columnar sort kernel (exec: vectorized), unlike sql_orderby whose
	// filtered scan estimates below it.
	{"sql_orderby_vec", "SELECT product, revenue FROM sales ORDER BY revenue DESC, product"},
	// The statistics-driven reorder gate's no-fire case: ratings is
	// raw-larger than metric_changes (the pre-stats rule's only gate),
	// but per-column stats estimate the driving side filtering down to
	// ~1 row — below the ~3-row seeded joined side — so the key
	// equality is NOT seeded and the trace records the skip.
	{"sql_join_skip_seed", "SELECT AVG(stars) AS result FROM ratings JOIN metric_changes ON ratings.product = metric_changes.product WHERE product = 'Product Alpha' AND stars < 4"},
}

func explainHybrid(t *testing.T, workers int) *Hybrid {
	t.Helper()
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	opts := DefaultHybridOptions()
	opts.Workers = workers
	h, err := NewHybrid(c.Sources, ner, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "explain", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got+"\n" != string(want) {
		t.Errorf("EXPLAIN drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestExplainGolden proves plan rendering — including the optimizer
// rule trace — is deterministic at any Workers count and pins the
// exact EXPLAIN text per question shape.
// Regenerate with: go test ./internal/core -run TestExplainGolden -update
func TestExplainGolden(t *testing.T) {
	seq := explainHybrid(t, 1)
	par := explainHybrid(t, 0)

	for _, shape := range explainShapes {
		t.Run(shape.name, func(t *testing.T) {
			ansSeq := seq.Answer(shape.question)
			if ansSeq.Explain == "" {
				t.Fatalf("no EXPLAIN produced (plan %q, err %v)", ansSeq.Plan, ansSeq.Err)
			}
			if ansPar := par.Answer(shape.question); ansPar.Explain != ansSeq.Explain {
				t.Errorf("EXPLAIN differs between Workers=1 and Workers=0:\n%s\nvs\n%s",
					ansSeq.Explain, ansPar.Explain)
			}
			// Replanning the same question must render identically (plan
			// cache hit path included).
			if again := seq.Answer(shape.question); again.Explain != ansSeq.Explain {
				t.Errorf("EXPLAIN not stable across repeated answers:\n%s\nvs\n%s",
					ansSeq.Explain, again.Explain)
			}
			checkGolden(t, shape.name, ansSeq.Explain)
		})
	}
}

// TestExplainGoldenSQL pins the SQL entry path's EXPLAIN — same
// harness, same rule trace section — proving SQL statements lower
// through the identical logical IR and physical planner.
func TestExplainGoldenSQL(t *testing.T) {
	seq := explainHybrid(t, 1)
	par := explainHybrid(t, 0)

	for _, shape := range sqlShapes {
		t.Run(shape.name, func(t *testing.T) {
			resSeq, err := seq.Query(shape.query)
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if resSeq.Explain == "" {
				t.Fatal("no EXPLAIN produced")
			}
			resPar, err := par.Query(shape.query)
			if err != nil {
				t.Fatalf("parallel query: %v", err)
			}
			if resPar.Explain != resSeq.Explain {
				t.Errorf("EXPLAIN differs between Workers=1 and Workers=0:\n%s\nvs\n%s",
					resSeq.Explain, resPar.Explain)
			}
			if again, err := seq.Query(shape.query); err != nil || again.Explain != resSeq.Explain {
				t.Errorf("EXPLAIN not stable across repeated queries (err %v):\n%s\nvs\n%s",
					err, again.Explain, resSeq.Explain)
			}
			checkGolden(t, shape.name, resSeq.Explain)
		})
	}
}

// TestExplainBatchMatchesSequential pins batch answering to the same
// EXPLAIN output as sequential answering at any parallelism.
func TestExplainBatchMatchesSequential(t *testing.T) {
	h := explainHybrid(t, 0)
	questions := make([]string, 0, len(explainShapes))
	for _, s := range explainShapes {
		questions = append(questions, s.question)
	}
	batch := h.AnswerAll(questions, 8)
	for i, q := range questions {
		seq := h.Answer(q)
		if batch[i].Explain != seq.Explain {
			t.Errorf("%s: batch EXPLAIN differs from sequential:\n%s\nvs\n%s",
				q, batch[i].Explain, seq.Explain)
		}
	}
}
