package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chunk"
	"repro/internal/entropy"
	"repro/internal/retrieval"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/sql"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/vector"
)

// RAGOptions configures the conventional-RAG baseline.
type RAGOptions struct {
	Chunk     chunk.Options
	EvidenceK int
	EntropyM  int
	UseIVF    bool // approximate index instead of exact scan
	Seed      uint64
}

// DefaultRAGOptions returns the standard configuration.
func DefaultRAGOptions() RAGOptions {
	return RAGOptions{Chunk: chunk.DefaultOptions(), EvidenceK: 8, EntropyM: 5, Seed: 1}
}

// RAG is the conventional dense-retrieval pipeline the paper positions
// against (Section I): embed everything, retrieve nearest neighbors,
// read generatively. It has no table engine, so numeric aggregation
// and joins depend entirely on some chunk containing the answer span.
type RAG struct {
	ner       *slm.NER
	dense     *retrieval.Dense
	gen       *slm.Generator
	clusterer *entropy.Clusterer
	opts      RAGOptions
	rng       *slm.RNG
}

// NewRAG embeds the sources into a vector index and returns the
// baseline pipeline.
func NewRAG(sources *store.Multi, ner *slm.NER, opts RAGOptions) (*RAG, error) {
	if opts.EvidenceK <= 0 {
		opts.EvidenceK = 8
	}
	if opts.EntropyM <= 0 {
		opts.EntropyM = 5
	}
	embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim)
	var ix vector.Index
	if opts.UseIVF {
		ix = vector.NewIVF(embedder.Dim(), 16, 4)
	} else {
		ix = vector.NewFlat(embedder.Dim())
	}
	dense, err := retrieval.NewDenseFromRecords(sources.Records(), chunk.New(opts.Chunk), embedder, ix)
	if err != nil {
		return nil, fmt.Errorf("core: rag index: %w", err)
	}
	return &RAG{
		ner:       ner,
		dense:     dense,
		gen:       slm.NewGenerator(),
		clusterer: entropy.NewClusterer(embedder),
		opts:      opts,
		rng:       slm.NewRNG(opts.Seed),
	}, nil
}

// Name implements Pipeline.
func (r *RAG) Name() string { return "rag" }

// Dense exposes the underlying retriever for the retrieval experiment.
func (r *RAG) Dense() *retrieval.Dense { return r.dense }

// Answer implements Pipeline: retrieve, then read extractively.
func (r *RAG) Answer(question string) Answer {
	start := time.Now()
	ans := Answer{}
	ans.Evidence = r.dense.Retrieve(question, r.opts.EvidenceK)
	cands := slm.DeriveCandidates(question, retrieval.Texts(ans.Evidence), r.ner)
	if len(cands) == 0 {
		ans.Err = fmt.Errorf("%w: %q", ErrNoAnswer, question)
	} else {
		greedy := &slm.Generator{Temperature: 0}
		ans.Text = greedy.Generate(cands, r.rng).Canonical
	}
	ans.Uncertainty = assessUncertainty(ans.Text, nil, ans.Evidence, question,
		r.ner, r.gen, r.clusterer, r.opts.EntropyM, r.rng)
	ans.Latency = time.Since(start)
	return ans
}

// TextToSQL is the classical structured-only baseline: semantic
// operator synthesis over the *native* relational catalog. Questions
// whose answers live in unstructured text fail to bind or return empty
// results — the failure mode of Section I, gap 2.
type TextToSQL struct {
	ner     *slm.NER
	catalog *table.Catalog
}

// NewTextToSQL wraps a native catalog.
func NewTextToSQL(catalog *table.Catalog, ner *slm.NER) *TextToSQL {
	return &TextToSQL{ner: ner, catalog: catalog}
}

// Name implements Pipeline.
func (t *TextToSQL) Name() string { return "text_to_sql" }

// Answer implements Pipeline: parse → bind → render SQL → execute the
// SQL through the internal/sql engine. The Plan field carries the
// generated SQL text, so this baseline is a genuine text-to-SQL
// system, not an in-memory shortcut. Plans with synthesized semi-joins
// exceed the dialect (no subqueries) and execute through the logical
// plan directly.
func (t *TextToSQL) Answer(question string) Answer {
	start := time.Now()
	ans := Answer{}
	q := semop.Parse(question, t.ner)
	plan, err := semop.Bind(q, t.catalog)
	if err != nil {
		ans.Err = err
		ans.Latency = time.Since(start)
		return ans
	}

	var res *table.Table
	if plan.JoinTable != "" {
		ans.Plan = plan.String()
		res, err = semop.Exec(plan, t.catalog)
	} else {
		stmts := plan.ToSQL()
		ans.Plan = strings.Join(stmts, "; ")
		res, err = t.execSQL(stmts)
	}
	if err != nil {
		ans.Err = err
		ans.Latency = time.Since(start)
		return ans
	}
	text, err := synthesize(plan, q, res)
	if err != nil {
		ans.Err = err
	} else {
		ans.Text = text
	}
	ans.Latency = time.Since(start)
	return ans
}

// execSQL runs each statement and unions the results (comparison plans
// render one statement per compared item).
func (t *TextToSQL) execSQL(stmts []string) (*table.Table, error) {
	var out *table.Table
	for _, stmt := range stmts {
		res, err := sql.Exec(t.catalog, stmt)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = res
			continue
		}
		out.Rows = append(out.Rows, res.Rows...)
	}
	return out, nil
}
