package core

import (
	"container/list"
	"strings"
	"sync"
)

// answerCache is a small LRU of fully-formed Answers keyed by normalized
// question. It makes repeated questions — the common shape of dashboard
// and batch traffic — O(1) instead of a full retrieve/plan/sample pass.
//
// Entries are invalidated wholesale on Ingest via purge. To close the
// window where an answer computed against the pre-ingest index is
// inserted after the purge, every fill carries the epoch observed under
// the Hybrid read lock; put drops the entry when the epoch has moved.
//
// Cached Answers share their Evidence slice across callers; callers
// treat answers as read-only values, which every current caller does.
type answerCache struct {
	mu       sync.Mutex
	capacity int
	epoch    uint64                   // guarded by mu
	order    *list.List               // guarded by mu; front = most recent
	entries  map[string]*list.Element // guarded by mu; key -> element whose Value is *cacheEntry
	hits     int64                    // guarded by mu
	misses   int64                    // guarded by mu
}

//lint:ignore unilint/epochkey cacheEntry is one LRU slot, not a cache; answerCache owns the epoch and drops all entries on bump
type cacheEntry struct {
	key string
	ans Answer
}

func newAnswerCache(capacity int) *answerCache {
	return &answerCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// get returns the cached answer for key, marking it most recently used.
func (c *answerCache) get(key string) (Answer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return Answer{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// snapshotEpoch returns the current invalidation epoch; callers read it
// under the Hybrid read lock so it cannot advance mid-read.
func (c *answerCache) snapshotEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// put inserts an answer computed at the given epoch, evicting the least
// recently used entry past capacity. Stale fills (epoch advanced by an
// ingest since the answer was computed) are dropped.
func (c *answerCache) put(key string, ans Answer, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).ans = ans
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, ans: ans})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// purge drops every entry and advances the epoch so in-flight fills
// against the old index are rejected.
func (c *answerCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.order.Init()
	c.entries = make(map[string]*list.Element, c.capacity)
}

// stats reports hit/miss counters and the current entry count.
func (c *answerCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

// normalizeQuestion is the cache key: lower-cased, whitespace-collapsed,
// trailing punctuation stripped, so "What is X?" and "what is x" share
// an entry.
func normalizeQuestion(q string) string {
	q = strings.TrimRight(strings.TrimSpace(q), " \t?.!")
	return strings.Join(strings.Fields(strings.ToLower(q)), " ")
}
