package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/federate"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/workload"
)

// chaosScenarios are the fault schedules the parity suite injects.
// Each returns the chaos-wrapped backends to register on a built
// hybrid; the wrappers keep the built-in backend names, so they
// replace the healthy memory/SQL drivers in place. All schedules are
// seeded and pure, so a scenario behaves identically on every run and
// at every worker count.
var chaosScenarios = []struct {
	name string
	wrap func(h *Hybrid) []federate.Backend
}{
	// Transient faults on both catalog backends, within the retry
	// budget: every scan eventually succeeds where it was routed.
	{"transient", func(h *Hybrid) []federate.Backend {
		clock := fault.NewFakeClock()
		return []federate.Backend{
			federate.NewChaos(federate.NewMemory(h.Catalog()), federate.ChaosOptions{Seed: 11, MaxTransient: 2, Clock: clock}),
			federate.NewChaos(federate.NewSQL(h.Catalog()), federate.ChaosOptions{Seed: 12, MaxTransient: 2, Clock: clock}),
		}
	}},
	// Injected scan latency (recorded by a fake clock, not slept) on
	// top of transient faults.
	{"latency", func(h *Hybrid) []federate.Backend {
		clock := fault.NewFakeClock()
		return []federate.Backend{
			federate.NewChaos(federate.NewMemory(h.Catalog()), federate.ChaosOptions{Seed: 21, MaxTransient: 1, Latency: 5 * time.Millisecond, Clock: clock}),
		}
	}},
	// The memory backend fully down: every fragment routed to it fails
	// over to the SQL driver over the same catalog, and after enough
	// consecutive failures the breaker opens and routing re-plans
	// around the dead backend entirely.
	{"memory_down", func(h *Hybrid) []federate.Backend {
		return []federate.Backend{
			federate.NewChaos(federate.NewMemory(h.Catalog()), federate.ChaosOptions{Down: true}),
		}
	}},
}

// TestChaosParityAcrossCorpora holds the federated executor to
// bit-identical results under fault injection on every bound workload
// question across both demo domains: for each chaos scenario and
// worker count, executing through the faulted federation must return
// exactly what the fault-free single-catalog executor returns —
// retries, failovers and breaker trips are invisible in results.
func TestChaosParityAcrossCorpora(t *testing.T) {
	corpora := map[string]*workload.Corpus{
		"ecommerce":  workload.ECommerce(workload.DefaultECommerceOptions()),
		"healthcare": workload.Healthcare(workload.DefaultHealthcareOptions()),
	}
	for domain, c := range corpora {
		t.Run(domain, func(t *testing.T) {
			ner := slm.NewNER()
			c.Register(ner)
			for _, sc := range chaosScenarios {
				t.Run(sc.name, func(t *testing.T) {
					for _, workers := range []int{1, 2, 8} {
						opts := DefaultHybridOptions()
						opts.Workers = workers
						h, err := NewHybrid(c.Sources, ner, opts)
						if err != nil {
							t.Fatal(err)
						}
						for _, b := range sc.wrap(h) {
							h.RegisterBackend(b)
						}
						cat := h.Catalog()
						bound := 0
						for _, q := range c.Queries {
							plan, err := semop.Bind(semop.Parse(q.Text, ner), cat)
							if err != nil {
								continue
							}
							bound++
							want, wantErr := semop.Exec(plan, cat)
							got, _, err := h.Federation().Execute(plan)
							if wantErr != nil {
								if err == nil {
									t.Errorf("%q (workers=%d): fault-free executor errored (%v) but chaos run succeeded",
										q.Text, workers, wantErr)
								}
								continue
							}
							if err != nil {
								t.Errorf("%q (workers=%d): chaos run: %v", q.Text, workers, err)
								continue
							}
							if renderTable(got) != renderTable(want) {
								t.Errorf("%q (workers=%d): result diverged under %s faults:\n%s\nvs\n%s",
									q.Text, workers, sc.name, renderTable(got), renderTable(want))
							}
						}
						if bound == 0 {
							t.Fatal("no workload question bound — chaos parity vacuous")
						}
					}
				})
			}
		})
	}
}

// TestChaosIngestQueryRace interleaves live ingest with answering
// under transient fault injection — the supported concurrent surface
// (Answer vs Ingest) must stay race-free while scans are retrying.
// Run with -race; correctness of individual answers during the churn
// is covered by the parity suite above, here only safety and absence
// of deadlock are asserted.
func TestChaosIngestQueryRace(t *testing.T) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	opts := DefaultHybridOptions()
	opts.Workers = 8
	h, err := NewHybrid(c.Sources, ner, opts)
	if err != nil {
		t.Fatal(err)
	}
	clock := fault.NewFakeClock()
	h.RegisterBackend(federate.NewChaos(federate.NewMemory(h.Catalog()),
		federate.ChaosOptions{Seed: 3, MaxTransient: 2, Clock: clock}))

	questions := make([]string, 0, 4)
	for _, q := range c.Queries {
		if len(questions) == 4 {
			break
		}
		questions = append(questions, q.Text)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 16; i++ {
			if err := h.Ingest("docs", fmt.Sprintf("chaos-race-%d", i),
				"Customer C-9 rated Product Alpha 4 stars."); err != nil {
				t.Errorf("ingest %d: %v", i, err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, q := range questions {
					h.Answer(q)
				}
			}
		}()
	}
	wg.Wait()
	<-done
}
