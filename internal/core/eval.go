package core

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/retrieval"
	"repro/internal/table"
	"repro/internal/workload"
)

// QAStats aggregates answer quality over a query set.
type QAStats struct {
	N          int
	EM         float64 // mean exact match
	F1         float64 // mean token F1
	Answered   float64 // fraction with any answer
	MeanMillis float64 // mean answer latency
}

// EvaluateQA runs the pipeline over the queries and aggregates per
// class plus an "overall" entry.
func EvaluateQA(p Pipeline, queries []workload.Query) map[workload.Class]QAStats {
	acc := map[workload.Class]*QAStats{}
	overall := &QAStats{}
	get := func(c workload.Class) *QAStats {
		if acc[c] == nil {
			acc[c] = &QAStats{}
		}
		return acc[c]
	}
	for _, q := range queries {
		ans := p.Answer(q.Text)
		em, f1, answered := 0.0, 0.0, 0.0
		if ans.Answered() {
			answered = 1
			if metrics.ExactMatch(ans.Text, q.Gold) {
				em = 1
			}
			f1 = metrics.TokenF1(ans.Text, q.Gold)
		}
		for _, s := range []*QAStats{get(q.Class), overall} {
			s.N++
			s.EM += em
			s.F1 += f1
			s.Answered += answered
			s.MeanMillis += float64(ans.Latency.Microseconds()) / 1000
		}
	}
	out := map[workload.Class]QAStats{}
	finish := func(c workload.Class, s *QAStats) {
		if s.N > 0 {
			n := float64(s.N)
			s.EM /= n
			s.F1 /= n
			s.Answered /= n
			s.MeanMillis /= n
		}
		out[c] = *s
	}
	for c, s := range acc {
		finish(c, s)
	}
	finish(workload.Class("overall"), overall)
	return out
}

// RetrievalStats aggregates retrieval quality over a query set.
type RetrievalStats struct {
	N        int
	RecallAt map[int]float64
	MRR      float64
}

// EvaluateRetrieval measures recall@k (for each k) and MRR of the
// retriever against gold evidence, at record granularity.
func EvaluateRetrieval(r retrieval.Retriever, queries []workload.Query, ks []int) RetrievalStats {
	stats := RetrievalStats{RecallAt: map[int]float64{}}
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	for _, q := range queries {
		if len(q.GoldEvidence) == 0 {
			continue
		}
		ev := r.Retrieve(q.Text, maxK*4) // over-fetch; dedup shrinks it
		ids := workload.NormalizeEvidence(retrieval.IDs(ev))
		stats.N++
		for _, k := range ks {
			stats.RecallAt[k] += metrics.RecallAtK(ids, q.GoldEvidence, k)
		}
		stats.MRR += metrics.MRR(ids, q.GoldEvidence)
	}
	if stats.N > 0 {
		for _, k := range ks {
			stats.RecallAt[k] /= float64(stats.N)
		}
		stats.MRR /= float64(stats.N)
	}
	return stats
}

// ExtractionStats reports cell-level extraction quality.
type ExtractionStats struct {
	GoldFacts int
	Extracted int
	Matched   int
	Precision float64
	Recall    float64
	F1        float64
}

// EvaluateExtraction matches gold facts against the extracted catalog:
// a gold fact is recovered when its table holds a row agreeing on
// every gold cell; an extracted row is correct when it matches some
// gold fact the same way. Each extracted row can witness one fact.
func EvaluateExtraction(catalog *table.Catalog, gold []workload.GoldFact) ExtractionStats {
	stats := ExtractionStats{GoldFacts: len(gold)}

	// Group gold by table for matching.
	byTable := map[string][]workload.GoldFact{}
	var tables []string
	for _, g := range gold {
		if _, ok := byTable[g.Table]; !ok {
			tables = append(tables, g.Table)
		}
		byTable[g.Table] = append(byTable[g.Table], g)
	}
	sort.Strings(tables)

	usedRow := map[string]map[int]bool{}
	for _, name := range tables {
		tbl, err := catalog.Get(name)
		if err != nil {
			continue
		}
		if usedRow[name] == nil {
			usedRow[name] = map[int]bool{}
		}
		for _, g := range byTable[name] {
			for ri, row := range tbl.Rows {
				if usedRow[name][ri] {
					continue
				}
				if rowMatchesFact(tbl, row, g) {
					usedRow[name][ri] = true
					stats.Matched++
					break
				}
			}
		}
	}
	// Count all extracted rows across gold tables (precision
	// denominator): rows in tables the workload defines gold for.
	for _, name := range tables {
		if tbl, err := catalog.Get(name); err == nil {
			stats.Extracted += tbl.Len()
		}
	}
	if stats.Extracted > 0 {
		stats.Precision = float64(stats.Matched) / float64(stats.Extracted)
	}
	if stats.GoldFacts > 0 {
		stats.Recall = float64(stats.Matched) / float64(stats.GoldFacts)
	}
	if stats.Precision+stats.Recall > 0 {
		stats.F1 = 2 * stats.Precision * stats.Recall / (stats.Precision + stats.Recall)
	}
	return stats
}

func rowMatchesFact(tbl *table.Table, row []table.Value, g workload.GoldFact) bool {
	for col, want := range g.Cells {
		idx := tbl.Schema.ColIndex(col)
		if idx < 0 {
			return false
		}
		v := row[idx]
		if v.IsNull() {
			return false
		}
		if v.IsNumeric() {
			parsed, err := table.Parse(v.Kind(), want)
			if err != nil || !table.Equal(v, parsed) {
				return false
			}
			continue
		}
		if v.String() != want {
			return false
		}
	}
	return true
}
