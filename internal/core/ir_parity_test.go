package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/sql"
	"repro/internal/table"
	"repro/internal/workload"
)

// legacyExec is a frozen copy of the pre-IR semop executor (the
// hand-coded interpreter the logical-plan refactor deleted). It is the
// reference the parity tests hold the unified paths to: every plan the
// binder produces must execute bit-identically through the IR
// pipeline, the federated planner, and this snapshot.
func legacyExec(p *semop.Plan, c *table.Catalog) (*table.Table, error) {
	tbl, err := c.Get(p.Table)
	if err != nil {
		return nil, err
	}
	cur := tbl

	if p.JoinTable != "" {
		other, err := c.Get(p.JoinTable)
		if err != nil {
			return nil, err
		}
		filtered := other
		if len(p.JoinFilters) > 0 {
			filtered, err = table.Filter(other, p.JoinFilters...)
			if err != nil {
				return nil, err
			}
		}
		keys, err := table.Project(filtered, p.JoinRightCol)
		if err != nil {
			return nil, err
		}
		keys = table.Distinct(keys)
		cur, err = table.HashJoin(cur, keys, p.JoinLeftCol, p.JoinRightCol)
		if err != nil {
			return nil, err
		}
	}

	if len(p.Comparison) > 0 && p.CompareCol != "" {
		return legacyCompare(p, cur, p.Filters)
	}

	if len(p.Filters) > 0 {
		cur, err = table.Filter(cur, p.Filters...)
		if err != nil {
			return nil, err
		}
	}
	if len(p.Aggs) > 0 {
		cur, err = table.Aggregate(cur, p.GroupBy, p.Aggs)
		if err != nil {
			return nil, err
		}
	}
	if len(p.OrderBy) > 0 {
		cur, err = table.Sort(cur, p.OrderBy...)
		if err != nil {
			return nil, err
		}
	}
	if p.LimitRows > 0 {
		cur = table.Limit(cur, p.LimitRows)
	}
	if len(p.Columns) > 0 {
		cur, err = table.Project(cur, p.Columns...)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func legacyCompare(p *semop.Plan, tbl *table.Table, preds []table.Pred) (*table.Table, error) {
	var out *table.Table
	items := append([]string(nil), p.Comparison...)
	sort.Strings(items)
	for _, item := range items {
		preds := append(append([]table.Pred(nil), preds...),
			table.Pred{Col: p.CompareCol, Op: table.OpContains, Val: table.S(item)})
		filtered, err := table.Filter(tbl, preds...)
		if err != nil {
			return nil, err
		}
		agged, err := table.Aggregate(filtered, []string{p.CompareCol}, p.Aggs)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = table.New("comparison", agged.Schema)
		}
		out.Rows = append(out.Rows, agged.Rows...)
	}
	if out == nil {
		return nil, fmt.Errorf("comparison with no items")
	}
	return out, nil
}

// renderTable flattens a result to an exact comparable string: schema
// names and every cell's canonical rendering, so "bit-identical" means
// identical schema, row order and values.
func renderTable(t *table.Table) string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), ","))
	for _, row := range t.Rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.Key())
		}
	}
	return b.String()
}

// TestIRMatchesLegacyExecutor binds every workload question across two
// domains and asserts the three unified paths — single-store IR
// execution (semop.Exec), optimized IR execution, and the federated
// planner — all produce tables bit-identical to the frozen pre-IR
// interpreter.
func TestIRMatchesLegacyExecutor(t *testing.T) {
	corpora := map[string]*workload.Corpus{
		"ecommerce":  workload.ECommerce(workload.DefaultECommerceOptions()),
		"healthcare": workload.Healthcare(workload.DefaultHealthcareOptions()),
	}
	for domain, c := range corpora {
		t.Run(domain, func(t *testing.T) {
			ner := slm.NewNER()
			c.Register(ner)
			h, err := NewHybrid(c.Sources, ner, DefaultHybridOptions())
			if err != nil {
				t.Fatal(err)
			}
			cat := h.Catalog()
			bound := 0
			for _, q := range c.Queries {
				plan, err := semop.Bind(semop.Parse(q.Text, ner), cat)
				if err != nil {
					continue
				}
				bound++
				want, err := legacyExec(plan, cat)
				if err != nil {
					// The legacy path could not execute this plan either
					// way; the IR path must fail too, not fabricate rows.
					if _, irErr := semop.Exec(plan, cat); irErr == nil {
						t.Errorf("%q: legacy errored (%v) but IR succeeded", q.Text, err)
					}
					continue
				}
				got, err := semop.Exec(plan, cat)
				if err != nil {
					t.Errorf("%q: IR exec: %v", q.Text, err)
					continue
				}
				if renderTable(got) != renderTable(want) {
					t.Errorf("%q: IR result diverges from legacy:\n%s\nvs\n%s",
						q.Text, renderTable(got), renderTable(want))
				}
				fed, _, err := h.Federation().Execute(plan)
				if err != nil {
					t.Errorf("%q: federated exec: %v", q.Text, err)
					continue
				}
				if renderTable(fed) != renderTable(want) {
					t.Errorf("%q: federated result diverges from legacy:\n%s\nvs\n%s",
						q.Text, renderTable(fed), renderTable(want))
				}
			}
			if bound == 0 {
				t.Fatal("no workload question bound — parity test vacuous")
			}
			t.Logf("%s: %d questions verified against the legacy interpreter", domain, bound)
		})
	}
}

// TestNLAndSQLShareOnePhysicalPlan proves the plan-cache unification:
// the NL form of a question and its ToSQL rendering compile to the
// same canonical IR fingerprint, land on one cached physical plan, and
// return bit-identical tables.
func TestNLAndSQLShareOnePhysicalPlan(t *testing.T) {
	h := explainHybrid(t, 1)
	ner := slm.NewNER()
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	c.Register(ner)

	questions := []string{
		"What was the total units of Product Alpha in Q4?",      // filter + aggregate
		"What is the average rating by product?",                // group-by
		"Which products had a sales increase of more than 15%?", // list
	}
	for _, q := range questions {
		t.Run(q, func(t *testing.T) {
			plan, err := semop.Bind(semop.Parse(q, ner), h.Catalog())
			if err != nil {
				t.Fatal(err)
			}
			stmts := plan.ToSQL()
			if len(stmts) != 1 {
				t.Fatalf("expected one statement, got %v", stmts)
			}
			stmt, err := sql.Parse(stmts[0])
			if err != nil {
				t.Fatalf("parse %q: %v", stmts[0], err)
			}
			sqlNode, err := sql.Compile(stmt, h.Catalog())
			if err != nil {
				t.Fatal(err)
			}
			st := logical.CatalogStats(h.Catalog())
			nlFP := logical.Fingerprint(logical.Optimize(semop.Compile(plan), st).Root)
			sqlFP := logical.Fingerprint(logical.Optimize(sqlNode, st).Root)
			if nlFP != sqlFP {
				t.Fatalf("NL and SQL canonical fingerprints differ:\n%q\nvs\n%q", nlFP, sqlFP)
			}

			// One cache entry serves both entries.
			nlRes, _, err := h.Federation().Execute(plan)
			if err != nil {
				t.Fatal(err)
			}
			hits0, _, size0 := h.Federation().PlanCacheStats()
			sqlRes, err := h.Query(stmts[0])
			if err != nil {
				t.Fatal(err)
			}
			hits1, _, size1 := h.Federation().PlanCacheStats()
			if hits1 != hits0+1 || size1 != size0 {
				t.Errorf("SQL entry did not reuse the NL physical plan: hits %d -> %d, size %d -> %d",
					hits0, hits1, size0, size1)
			}
			if renderTable(sqlRes.Table) != renderTable(nlRes) {
				t.Errorf("NL and SQL results differ:\n%s\nvs\n%s",
					renderTable(sqlRes.Table), renderTable(nlRes))
			}
		})
	}
}
