package core

import (
	"repro/internal/par"
	"repro/internal/slm"
)

// AnswerAll answers every question with up to workers goroutines
// (<= 0 means GOMAXPROCS) and returns the answers in question order.
//
// Generator streams are forked per question in input order before any
// worker starts, so the i-th answer is identical to what the i-th
// sequential Answer call would have produced — batch results do not
// depend on goroutine scheduling. With the answer cache enabled,
// duplicate questions within the batch are computed once and the
// remaining slots filled from the first occurrence, exactly what a
// sequential loop's cache hits would return. AnswerAll may interleave
// with Ingest; each answer sees either the pre- or post-ingest index,
// never a partial mutation.
func (h *Hybrid) AnswerAll(questions []string, workers int) []Answer {
	out := make([]Answer, len(questions))
	if len(questions) == 0 {
		return out
	}
	rngs := make([]*slm.RNG, len(questions))
	h.rngMu.Lock()
	for i := range rngs {
		rngs[i] = h.rng.Fork()
	}
	h.rngMu.Unlock()

	// With caching on, concurrent workers could otherwise race to fill
	// the same key and hand duplicate questions scheduling-dependent
	// samples; dedup restores the sequential cache-hit semantics.
	dupOf := make([]int, len(questions))
	compute := make([]int, 0, len(questions))
	if h.cache != nil {
		firstIdx := make(map[string]int, len(questions))
		for i, q := range questions {
			key := normalizeQuestion(q)
			if j, ok := firstIdx[key]; ok {
				dupOf[i] = j
				continue
			}
			firstIdx[key] = i
			dupOf[i] = -1
			compute = append(compute, i)
		}
	} else {
		for i := range questions {
			dupOf[i] = -1
			compute = append(compute, i)
		}
	}

	par.ForEach(len(compute), workers, func(k int) {
		i := compute[k]
		out[i] = h.answerWith(questions[i], rngs[i])
	})
	for i, j := range dupOf {
		if j >= 0 {
			out[i] = out[j]
		}
	}
	return out
}

// CacheStats reports the answer cache's hit/miss counters and current
// size; all zeros when caching is disabled.
func (h *Hybrid) CacheStats() (hits, misses int64, size int) {
	if h.cache == nil {
		return 0, 0, 0
	}
	return h.cache.stats()
}
