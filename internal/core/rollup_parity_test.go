package core

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/table"
	"repro/internal/workload"
)

// domainRollups returns rollup definitions at the grains the workload
// corpora aggregate over, so the routing pass has candidates for the
// real question set.
func domainRollups(domain string) []table.RollupDef {
	switch domain {
	case "ecommerce":
		return []table.RollupDef{
			{Name: "ratings_by_product", Base: "ratings", GroupBy: []string{"product"},
				Aggs: []table.Agg{
					{Func: table.AggAvg, Col: "stars"},
					{Func: table.AggSum, Col: "stars"},
					{Func: table.AggCount, Col: "", As: "n"},
					{Func: table.AggMin, Col: "stars"},
					{Func: table.AggMax, Col: "stars"},
				}},
			{Name: "sales_by_pq", Base: "sales", GroupBy: []string{"product", "quarter"},
				Aggs: []table.Agg{
					{Func: table.AggSum, Col: "revenue"},
					{Func: table.AggAvg, Col: "revenue"},
					{Func: table.AggCount, Col: "", As: "n"},
				}},
		}
	case "healthcare":
		return []table.RollupDef{
			{Name: "trials_by_drug", Base: "trial_results", GroupBy: []string{"drug"},
				Aggs: []table.Agg{
					{Func: table.AggAvg, Col: "efficacy_pct"},
					{Func: table.AggSum, Col: "enrolled"},
					{Func: table.AggCount, Col: "", As: "n"},
				}},
			{Name: "treatments_by_drug", Base: "treatments", GroupBy: []string{"drug"},
				Aggs: []table.Agg{{Func: table.AggCount, Col: "", As: "n"}}},
		}
	}
	return nil
}

// hiddenRollupStats wraps catalog stats while hiding the RollupStats
// extension, producing the unrouted plan for the same catalog.
type hiddenRollupStats struct{ s logical.Stats }

func (h hiddenRollupStats) Schema(tbl string) (table.Schema, bool)  { return h.s.Schema(tbl) }
func (h hiddenRollupStats) Card(tbl string) (int, bool)             { return h.s.Card(tbl) }
func (h hiddenRollupStats) TableStats(tbl string) *table.TableStats { return h.s.TableStats(tbl) }

// TestRollupRoutingParityAcrossCorpus holds routed aggregate plans to
// bit-identity with their unrouted versions over every bound workload
// question in both domains: same catalog, one optimization with the
// rollup registry visible and one with it hidden, results compared
// cell-for-cell through the row executor and the vectorized executor at
// 1, 2 and 8 workers. Routing must be invisible in results at any
// parallelism.
func TestRollupRoutingParityAcrossCorpus(t *testing.T) {
	corpora := map[string]*workload.Corpus{
		"ecommerce":  workload.ECommerce(workload.DefaultECommerceOptions()),
		"healthcare": workload.Healthcare(workload.DefaultHealthcareOptions()),
	}
	for domain, c := range corpora {
		t.Run(domain, func(t *testing.T) {
			ner := slm.NewNER()
			c.Register(ner)
			h, err := NewHybrid(c.Sources, ner, DefaultHybridOptions())
			if err != nil {
				t.Fatal(err)
			}
			for _, def := range domainRollups(domain) {
				if err := h.AddRollup(def); err != nil {
					t.Fatalf("register %s: %v", def.Name, err)
				}
			}
			cat := h.Catalog()
			bound, routed := 0, 0
			for _, q := range c.Queries {
				plan, err := semop.Bind(semop.Parse(q.Text, ner), cat)
				if err != nil {
					continue
				}
				bound++
				node := semop.Compile(plan)
				plain := logical.Optimize(node.Clone(), hiddenRollupStats{logical.CatalogStats(cat)})
				opt := logical.Optimize(node.Clone(), logical.CatalogStats(cat))
				if len(opt.Rollups) > 0 {
					routed++
				}
				want, wantErr := logical.Exec(plain.Root, cat)
				got, gotErr := logical.Exec(opt.Root, cat)
				if (wantErr == nil) != (gotErr == nil) {
					t.Errorf("%q: routed/unrouted error mismatch: %v vs %v", q.Text, gotErr, wantErr)
					continue
				}
				if wantErr != nil {
					continue
				}
				if renderTable(got) != renderTable(want) {
					t.Errorf("%q: routed result diverges from unrouted (%v):\n%s\nvs\n%s",
						q.Text, opt.Rollups, renderTable(got), renderTable(want))
					continue
				}
				if !logical.Vectorizable(opt.Root) {
					t.Errorf("%q: routed plan reported non-vectorizable — every operator has a columnar kernel", q.Text)
					continue
				}
				for _, workers := range []int{1, 2, 8} {
					vec, err := logical.ExecVec(opt.Root, cat, workers)
					if err != nil {
						t.Errorf("%q (workers=%d): vectorized routed exec: %v", q.Text, workers, err)
						continue
					}
					if renderTable(vec) != renderTable(want) {
						t.Errorf("%q (workers=%d): vectorized routed result diverges:\n%s\nvs\n%s",
							q.Text, workers, renderTable(vec), renderTable(want))
					}
				}
			}
			if bound == 0 {
				t.Fatal("no workload question bound — parity vacuous")
			}
			if routed == 0 {
				t.Fatal("no question routed onto a rollup — parity vacuous")
			}
			t.Logf("%s: %d/%d bound questions routed onto rollups", domain, routed, bound)
		})
	}
}

// TestExplainRollupGolden pins the EXPLAIN rendering of routed plans:
// the `rollup:` line records base -> rollup and the routing mode, for
// both the NL entry (a pinned global aggregate) and the SQL entry (an
// exact grain match), stable across worker counts and replans.
func TestExplainRollupGolden(t *testing.T) {
	shapes := []struct {
		name, nl, sql string
	}{
		{name: "rollup_pinned", nl: "What is the average rating of Product Alpha?"},
		{name: "rollup_exact", sql: "SELECT product, AVG(stars) AS result FROM ratings GROUP BY product"},
	}
	seq := explainHybrid(t, 1)
	par := explainHybrid(t, 0)
	for _, h := range []*Hybrid{seq, par} {
		if err := h.AddRollup(table.RollupDef{
			Name:    "ratings_by_product",
			Base:    "ratings",
			GroupBy: []string{"product"},
			Aggs: []table.Agg{
				{Func: table.AggAvg, Col: "stars"},
				{Func: table.AggCount, Col: "", As: "n"},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			explain := func(h *Hybrid) string {
				if shape.sql != "" {
					res, err := h.Query(shape.sql)
					if err != nil {
						t.Fatalf("query: %v", err)
					}
					return res.Explain
				}
				ans := h.Answer(shape.nl)
				if ans.Err != nil {
					t.Fatalf("answer: %v", ans.Err)
				}
				return ans.Explain
			}
			got := explain(seq)
			if !strings.Contains(got, "rollup:   ratings -> ratings_by_product") {
				t.Fatalf("EXPLAIN missing rollup line:\n%s", got)
			}
			if parGot := explain(par); parGot != got {
				t.Errorf("EXPLAIN differs between Workers=1 and Workers=0:\n%s\nvs\n%s", got, parGot)
			}
			if again := explain(seq); again != got {
				t.Errorf("EXPLAIN not stable across replans:\n%s\nvs\n%s", got, again)
			}
			checkGolden(t, shape.name, got)
		})
	}
}

// TestRollupIngestInvalidatesRoutedPlan pins the staleness guarantee:
// after a routed aggregate executes (and its physical plan is cached),
// an ingest that appends base rows must maintain the rollup
// synchronously and bump the data epoch, so the next execution of the
// same query reflects the new rows — never a stale materialization.
func TestRollupIngestInvalidatesRoutedPlan(t *testing.T) {
	h := explainHybrid(t, 1)
	if err := h.AddRollup(table.RollupDef{
		Name:    "ratings_by_product",
		Base:    "ratings",
		GroupBy: []string{"product"},
		Aggs: []table.Agg{
			{Func: table.AggSum, Col: "stars"},
			{Func: table.AggCount, Col: "", As: "n"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT product, SUM(stars) AS total, COUNT(*) AS n FROM ratings WHERE product = 'Product Alpha' GROUP BY product"
	before, err := h.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(before.Explain, "rollup:   ratings -> ratings_by_product (exact)") {
		t.Fatalf("query not routed:\n%s", before.Explain)
	}
	if before.Table.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%v", before.Table.Len(), before.Table)
	}
	n0 := before.Table.Rows[0][2].Int()

	if err := h.Ingest("reviews", "stale-check", "Product Alpha was rated 1 stars."); err != nil {
		t.Fatal(err)
	}
	after, err := h.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.Explain, "rollup:") {
		t.Fatalf("re-executed query lost routing:\n%s", after.Explain)
	}
	if got := after.Table.Rows[0][2].Int(); got != n0+1 {
		t.Fatalf("routed result is stale after ingest: count = %d, want %d", got, n0+1)
	}
	// The routed answer must equal the unrouted aggregation of the
	// post-ingest base rows, bit for bit.
	cat := h.Catalog()
	base, err := cat.Get("ratings")
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := table.Filter(base, table.Pred{Col: "product", Op: table.OpEq, Val: table.S("Product Alpha")})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := table.Aggregate(filtered, []string{"product"},
		[]table.Agg{{Func: table.AggSum, Col: "stars", As: "total"}, {Func: table.AggCount, Col: "", As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if renderTable(after.Table) != renderTable(fresh) {
		t.Fatalf("routed result diverges from fresh aggregation:\n%s\nvs\n%s",
			renderTable(after.Table), renderTable(fresh))
	}
}
