package chunk

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitEmpty(t *testing.T) {
	c := New(DefaultOptions())
	if got := c.Split("d", ""); got != nil {
		t.Errorf("empty doc: %v", got)
	}
}

func TestSplitSingleSentence(t *testing.T) {
	c := New(DefaultOptions())
	got := c.Split("d", "Q2 sales increased 20%.")
	if len(got) != 1 {
		t.Fatalf("got %d chunks", len(got))
	}
	if got[0].ID != "d#0" || got[0].DocID != "d" || got[0].Seq != 0 {
		t.Errorf("chunk metadata: %+v", got[0])
	}
	if got[0].Sentences != 1 {
		t.Errorf("sentences = %d", got[0].Sentences)
	}
}

func TestSplitRespectsBudget(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		b.WriteString("Product Alpha sold forty two units in the second quarter of the year. ")
	}
	c := New(Options{MaxTokens: 30, OverlapSentence: 0})
	chunks := c.Split("d", b.String())
	if len(chunks) < 10 {
		t.Fatalf("expected many chunks, got %d", len(chunks))
	}
	for _, ch := range chunks {
		if n := countTokens(ch.Text); n > 30+13 { // one sentence may overflow
			t.Errorf("chunk %s has %d tokens", ch.ID, n)
		}
	}
}

func TestSplitOverlap(t *testing.T) {
	text := "First fact here. Second fact here. Third fact here. Fourth fact here."
	c := New(Options{MaxTokens: 8, OverlapSentence: 1})
	chunks := c.Split("d", text)
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	// With overlap 1, consecutive chunks share a sentence.
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Start >= chunks[i-1].End {
			t.Errorf("chunks %d and %d do not overlap", i-1, i)
		}
	}
}

func TestSplitNoOverlapGaps(t *testing.T) {
	text := "Alpha one. Beta two. Gamma three. Delta four. Epsilon five."
	c := New(Options{MaxTokens: 8, OverlapSentence: 0})
	chunks := c.Split("d", text)
	// Every sentence must be inside some chunk.
	for _, s := range []string{"Alpha one", "Beta two", "Gamma three", "Delta four", "Epsilon five"} {
		found := false
		for _, ch := range chunks {
			if strings.Contains(ch.Text, s) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("sentence %q not covered", s)
		}
	}
}

func TestSplitOffsetsValid(t *testing.T) {
	text := "One sentence. Another sentence follows. And a third."
	c := New(Options{MaxTokens: 10, OverlapSentence: 1})
	for _, ch := range c.Split("doc", text) {
		if ch.Start < 0 || ch.End > len(text) || ch.Start >= ch.End {
			t.Fatalf("bad span: %+v", ch)
		}
		if text[ch.Start:ch.End] != ch.Text {
			t.Errorf("text mismatch: %q vs slice %q", ch.Text, text[ch.Start:ch.End])
		}
	}
}

func TestNewNormalizesOptions(t *testing.T) {
	c := New(Options{MaxTokens: -5, OverlapSentence: -2})
	chunks := c.Split("d", "A few words here. More words there.")
	if len(chunks) == 0 {
		t.Fatal("normalized chunker produced nothing")
	}
}

func TestSplitSequentialIDs(t *testing.T) {
	text := strings.Repeat("Some sentence with several words inside it. ", 20)
	c := New(Options{MaxTokens: 16, OverlapSentence: 0})
	for i, ch := range c.Split("doc", text) {
		if ch.Seq != i {
			t.Errorf("chunk %d has Seq %d", i, ch.Seq)
		}
	}
}

// Property: chunking always terminates, covers the first and last
// sentence, and produces monotonically increasing spans.
func TestSplitProperties(t *testing.T) {
	c := New(Options{MaxTokens: 12, OverlapSentence: 1})
	f := func(words []string, nSentences uint8) bool {
		n := int(nSentences%20) + 1
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString("word")
			for j, w := range words {
				if j > 3 {
					break
				}
				clean := strings.Map(func(r rune) rune {
					if r >= 'a' && r <= 'z' {
						return r
					}
					return -1
				}, strings.ToLower(w))
				if clean != "" {
					b.WriteString(" " + clean)
				}
			}
			b.WriteString(". ")
		}
		chunks := c.Split("d", b.String())
		if len(chunks) == 0 {
			return false
		}
		for i := 1; i < len(chunks); i++ {
			if chunks[i].Start <= chunks[i-1].Start {
				return false
			}
		}
		return chunks[0].Start <= 1 && chunks[len(chunks)-1].End >= len(strings.TrimRight(b.String(), " "))-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
