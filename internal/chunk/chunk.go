// Package chunk segments raw documents into the text-chunk nodes of the
// heterogeneous graph index (paper Section III.A: "Text chunks are the
// foundational segments derived from raw documents, serving as the
// basic nodes within the graph").
//
// Chunking is sentence-aligned: sentences are grouped greedily into
// windows under a token budget, with optional sentence overlap between
// consecutive chunks so entity mentions near a boundary appear in at
// least one complete context.
package chunk

import (
	"fmt"

	"repro/internal/slm"
)

// Chunk is one contiguous segment of a source document.
type Chunk struct {
	ID        string // stable id: "<docID>#<n>"
	DocID     string // owning document
	Seq       int    // position within the document, from 0
	Text      string
	Start     int // byte offset in the document
	End       int
	Sentences int // number of sentences merged into this chunk
}

// Options configures a Chunker. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	MaxTokens       int // token budget per chunk (words+numbers)
	OverlapSentence int // sentences repeated from the previous chunk
}

// DefaultOptions matches the lightweight setting of MiniRAG-style
// systems: short chunks an SLM can tag in one pass.
func DefaultOptions() Options {
	return Options{MaxTokens: 64, OverlapSentence: 1}
}

// Chunker splits documents under a fixed options set.
type Chunker struct {
	opts Options
}

// New returns a Chunker. Invalid options are normalized: MaxTokens < 8
// becomes 8, negative overlap becomes 0.
func New(opts Options) *Chunker {
	if opts.MaxTokens < 8 {
		opts.MaxTokens = 8
	}
	if opts.OverlapSentence < 0 {
		opts.OverlapSentence = 0
	}
	return &Chunker{opts: opts}
}

// Split segments text into chunks. Every non-blank sentence of the
// document appears in at least one chunk, and chunk byte ranges are
// valid spans of text. Empty input yields no chunks.
func (c *Chunker) Split(docID, text string) []Chunk {
	sentences := slm.SplitSentences(text)
	if len(sentences) == 0 {
		return nil
	}
	var chunks []Chunk
	i := 0
	for i < len(sentences) {
		budget := c.opts.MaxTokens
		j := i
		toks := 0
		for j < len(sentences) {
			n := countTokens(sentences[j].Text)
			if j > i && toks+n > budget {
				break
			}
			toks += n
			j++
		}
		start := sentences[i].Start
		end := sentences[j-1].End
		chunks = append(chunks, Chunk{
			ID:        fmt.Sprintf("%s#%d", docID, len(chunks)),
			DocID:     docID,
			Seq:       len(chunks),
			Text:      text[start:end],
			Start:     start,
			End:       end,
			Sentences: j - i,
		})
		if j >= len(sentences) {
			break
		}
		// Step forward, re-including the trailing overlap sentences.
		next := j - c.opts.OverlapSentence
		if next <= i {
			next = i + 1
		}
		i = next
	}
	return chunks
}

// countTokens counts word and number tokens, the same notion of length
// the simulated SLM's cost model uses.
func countTokens(s string) int {
	n := 0
	for _, t := range slm.Tokenize(s) {
		if t.Kind == slm.TokenWord || t.Kind == slm.TokenNumber {
			n++
		}
	}
	return n
}
