// Package index builds the semantic-aware heterogeneous graph index of
// paper Section III.A from heterogeneous sources: it chunks documents,
// tags entities with the (simulated) SLM, infers relational cues, and
// links text chunks, named entities, cues and structured records into
// one graph.Graph.
//
// Ablation switches (DisableCues, DisableEntityNodes) exist so
// experiment E7 can measure each component's contribution.
package index

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chunk"
	"repro/internal/graph"
	"repro/internal/slm"
	"repro/internal/store"
)

// Options configures a Builder.
type Options struct {
	Chunk              chunk.Options
	DisableCues        bool // ablation: skip relational-cue inference
	DisableEntityNodes bool // ablation: chunk-only graph
	MinCueCooccur      int  // min co-occurrences for a relates edge (default 1)
}

// DefaultOptions returns the standard build configuration.
func DefaultOptions() Options {
	return Options{Chunk: chunk.DefaultOptions(), MinCueCooccur: 1}
}

// Stats reports what a build produced and what it cost.
type Stats struct {
	Docs       int
	Chunks     int
	Entities   int
	Cues       int
	Rows       int
	Nodes      int
	Edges      int
	BuildTime  time.Duration
	ModelCalls int64
	SizeBytes  int64
}

// String renders the stats one-line.
func (s Stats) String() string {
	return fmt.Sprintf("docs=%d chunks=%d entities=%d cues=%d rows=%d nodes=%d edges=%d bytes=%d time=%v calls=%d",
		s.Docs, s.Chunks, s.Entities, s.Cues, s.Rows, s.Nodes, s.Edges, s.SizeBytes, s.BuildTime, s.ModelCalls)
}

// Builder constructs graph indexes.
type Builder struct {
	ner     *slm.NER
	chunker *chunk.Chunker
	opts    Options
	cost    *slm.CostModel
}

// NewBuilder returns a builder using the given recognizer.
func NewBuilder(ner *slm.NER, opts Options) *Builder {
	if opts.MinCueCooccur < 1 {
		opts.MinCueCooccur = 1
	}
	return &Builder{ner: ner, chunker: chunk.New(opts.Chunk), opts: opts}
}

// WithCost attaches a cost model for build accounting. It returns b.
func (b *Builder) WithCost(c *slm.CostModel) *Builder {
	b.cost = c
	return b
}

// EntityNodeID returns the graph node id for a canonical entity.
func EntityNodeID(canonical string) string { return "ent:" + canonical }

// Build indexes all records of the source group into a fresh graph.
func (b *Builder) Build(m *store.Multi) (*graph.Graph, Stats, error) {
	start := time.Now()
	g := graph.New()
	var stats Stats
	var callsBefore int64
	if b.cost != nil {
		callsBefore = b.cost.TotalCalls()
	}

	cueCounts := make(map[string]int) // "e1\x1fverb\x1fe2" -> count

	for _, rec := range m.Records() {
		switch rec.Kind {
		case store.KindText:
			if err := b.indexDocument(g, rec, cueCounts, &stats); err != nil {
				return nil, stats, err
			}
		default:
			if err := b.indexRecord(g, rec, &stats); err != nil {
				return nil, stats, err
			}
		}
	}

	if !b.opts.DisableCues && !b.opts.DisableEntityNodes {
		b.materializeCues(g, cueCounts, &stats)
	}

	stats.Nodes = g.NodeCount()
	stats.Edges = g.EdgeCount()
	stats.Entities = len(g.NodesOfType(graph.NodeEntity))
	stats.SizeBytes = g.SizeBytes()
	stats.BuildTime = time.Since(start)
	if b.cost != nil {
		stats.ModelCalls = b.cost.TotalCalls() - callsBefore
	}
	return g, stats, nil
}

// indexDocument chunks an unstructured document, tags each chunk, and
// links chunks, entities, and intra-sentence cue candidates.
func (b *Builder) indexDocument(g *graph.Graph, rec store.Record, cueCounts map[string]int, stats *Stats) error {
	docNode := graph.Node{ID: "doc:" + rec.ID, Type: graph.NodeDoc, Label: rec.ID,
		Attrs: map[string]string{"source": rec.Source}}
	g.EnsureNode(docNode)
	stats.Docs++

	chunks := b.chunker.Split(rec.ID, rec.Text)
	var prevChunkID string
	for _, ch := range chunks {
		chunkID := "chunk:" + ch.ID
		g.EnsureNode(graph.Node{
			ID: chunkID, Type: graph.NodeChunk, Label: ch.ID,
			Attrs: map[string]string{"text": ch.Text, "doc": rec.ID, "source": rec.Source},
		})
		stats.Chunks++
		if err := g.AddEdge(graph.Edge{From: chunkID, To: docNode.ID, Type: graph.EdgePartOf}); err != nil {
			return fmt.Errorf("index: %w", err)
		}
		if prevChunkID != "" {
			if err := g.AddUndirected(graph.Edge{From: prevChunkID, To: chunkID, Type: graph.EdgeNextTo, Weight: 0.5}); err != nil {
				return fmt.Errorf("index: %w", err)
			}
		}
		prevChunkID = chunkID

		if b.opts.DisableEntityNodes {
			continue
		}
		// Tag per sentence so cue inference sees sentence scope.
		for _, sent := range slm.SplitSentences(ch.Text) {
			ents := b.ner.Recognize(sent.Text)
			for _, e := range ents {
				entID := EntityNodeID(e.Canonical)
				g.EnsureNode(graph.Node{
					ID: entID, Type: graph.NodeEntity, Label: e.Canonical,
					Attrs: map[string]string{"etype": string(e.Type)},
				})
				if !hasEdge(g, chunkID, entID, graph.EdgeMentions) {
					if err := g.AddUndirected(graph.Edge{From: chunkID, To: entID, Type: graph.EdgeMentions}); err != nil {
						return fmt.Errorf("index: %w", err)
					}
				}
			}
			if !b.opts.DisableCues {
				collectCues(sent.Text, ents, chunkID, cueCounts)
			}
		}
	}
	return nil
}

// indexRecord indexes one structured/semi-structured record as a row
// node linked to entity nodes matching its field values.
func (b *Builder) indexRecord(g *graph.Graph, rec store.Record, stats *Stats) error {
	rowID := "row:" + rec.ID
	attrs := map[string]string{"source": rec.Source, "kind": string(rec.Kind), "text": rec.Text}
	for k, v := range rec.Fields {
		attrs["f:"+k] = v
	}
	g.EnsureNode(graph.Node{ID: rowID, Type: graph.NodeRow, Label: rec.ID, Attrs: attrs})
	stats.Rows++

	if b.opts.DisableEntityNodes {
		return nil
	}
	// Link the row to entities recognized in its rendered text and to
	// value nodes for its fields, giving cross-modal connectivity.
	ents := b.ner.Recognize(rec.Text)
	seen := map[string]bool{}
	for _, e := range ents {
		entID := EntityNodeID(e.Canonical)
		if seen[entID] {
			continue
		}
		seen[entID] = true
		g.EnsureNode(graph.Node{
			ID: entID, Type: graph.NodeEntity, Label: e.Canonical,
			Attrs: map[string]string{"etype": string(e.Type)},
		})
		if err := g.AddUndirected(graph.Edge{From: rowID, To: entID, Type: graph.EdgeMentions}); err != nil {
			return fmt.Errorf("index: %w", err)
		}
	}
	return nil
}

// cueVerbs are the relation-bearing verbs that create cue nodes
// ("Customer X purchased Product Y", "Patient X received Drug Y").
var cueVerbs = map[string]bool{
	"purchased": true, "bought": true, "ordered": true, "sold": true,
	"received": true, "prescribed": true, "administered": true,
	"reported": true, "experienced": true, "developed": true,
	"rated": true, "reviewed": true, "returned": true,
	"treated": true, "diagnosed": true, "caused": true, "reduced": true,
	"increased": true, "decreased": true, "launched": true,
}

// collectCues finds verb-mediated entity pairs inside one sentence and
// accumulates their co-occurrence counts.
func collectCues(sentence string, ents []slm.Entity, chunkID string, cueCounts map[string]int) {
	if len(ents) < 2 {
		return
	}
	verb := ""
	for _, w := range slm.Words(slm.Tokenize(sentence)) {
		if cueVerbs[w] {
			verb = w
			break
		}
	}
	if verb == "" {
		verb = "cooccurs"
	}
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			a, b := ents[i].Canonical, ents[j].Canonical
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			key := a + "\x1f" + verb + "\x1f" + b + "\x1f" + chunkID
			cueCounts[key]++
		}
	}
}

// materializeCues converts accumulated cue counts into cue nodes and
// relates edges. Pairs below MinCueCooccur are dropped.
func (b *Builder) materializeCues(g *graph.Graph, cueCounts map[string]int, stats *Stats) {
	pairTotals := make(map[string]int)
	for key, n := range cueCounts {
		parts := strings.SplitN(key, "\x1f", 4)
		pairKey := parts[0] + "\x1f" + parts[1] + "\x1f" + parts[2]
		pairTotals[pairKey] += n
	}
	made := make(map[string]bool)
	for key := range cueCounts {
		parts := strings.SplitN(key, "\x1f", 4)
		e1, verb, e2, chunkID := parts[0], parts[1], parts[2], parts[3]
		pairKey := e1 + "\x1f" + verb + "\x1f" + e2
		if pairTotals[pairKey] < b.opts.MinCueCooccur {
			continue
		}
		cueID := "cue:" + e1 + "|" + verb + "|" + e2
		if !made[cueID] {
			made[cueID] = true
			// The cue may already exist from an earlier incremental
			// ingest; only create the node and its entity edges once.
			if !g.HasNode(cueID) {
				g.EnsureNode(graph.Node{
					ID: cueID, Type: graph.NodeCue, Label: verb,
					Attrs: map[string]string{"arg1": e1, "arg2": e2, "verb": verb},
				})
				stats.Cues++
				w := 1.0 + float64(pairTotals[pairKey])*0.1
				id1, id2 := EntityNodeID(e1), EntityNodeID(e2)
				if g.HasNode(id1) && g.HasNode(id2) {
					g.AddUndirected(graph.Edge{From: id1, To: id2, Type: graph.EdgeRelates, Weight: w})
					g.AddUndirected(graph.Edge{From: cueID, To: id1, Type: graph.EdgeCueArg})
					g.AddUndirected(graph.Edge{From: cueID, To: id2, Type: graph.EdgeCueArg})
				}
			}
		}
		if g.HasNode(chunkID) {
			if !hasEdge(g, cueID, chunkID, graph.EdgeCueIn) {
				g.AddUndirected(graph.Edge{From: cueID, To: chunkID, Type: graph.EdgeCueIn})
			}
		}
	}
}

func hasEdge(g *graph.Graph, from, to string, t graph.EdgeType) bool {
	for _, e := range g.Out(from) {
		if e.To == to && e.Type == t {
			return true
		}
	}
	return false
}
