// Package index builds the semantic-aware heterogeneous graph index of
// paper Section III.A from heterogeneous sources: it chunks documents,
// tags entities with the (simulated) SLM, infers relational cues, and
// links text chunks, named entities, cues and structured records into
// one graph.Graph.
//
// Ablation switches (DisableCues, DisableEntityNodes) exist so
// experiment E7 can measure each component's contribution.
package index

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chunk"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/slm"
	"repro/internal/store"
)

// Options configures a Builder.
type Options struct {
	Chunk              chunk.Options
	DisableCues        bool // ablation: skip relational-cue inference
	DisableEntityNodes bool // ablation: chunk-only graph
	MinCueCooccur      int  // min co-occurrences for a relates edge (default 1)

	// Workers bounds the analysis worker pool used by Build: the
	// per-record chunking and SLM tagging run concurrently, while graph
	// mutation replays sequentially in record order so the result is
	// byte-identical to a sequential build. 0 means GOMAXPROCS; 1 forces
	// the fully sequential path.
	Workers int
}

// DefaultOptions returns the standard build configuration.
func DefaultOptions() Options {
	return Options{Chunk: chunk.DefaultOptions(), MinCueCooccur: 1}
}

// Stats reports what a build produced and what it cost.
type Stats struct {
	Docs       int
	Chunks     int
	Entities   int
	Cues       int
	Rows       int
	Nodes      int
	Edges      int
	BuildTime  time.Duration
	ModelCalls int64
	SizeBytes  int64
}

// String renders the stats one-line.
func (s Stats) String() string {
	return fmt.Sprintf("docs=%d chunks=%d entities=%d cues=%d rows=%d nodes=%d edges=%d bytes=%d time=%v calls=%d",
		s.Docs, s.Chunks, s.Entities, s.Cues, s.Rows, s.Nodes, s.Edges, s.SizeBytes, s.BuildTime, s.ModelCalls)
}

// Builder constructs graph indexes.
type Builder struct {
	ner     *slm.NER
	chunker *chunk.Chunker
	opts    Options
	cost    *slm.CostModel
}

// NewBuilder returns a builder using the given recognizer.
func NewBuilder(ner *slm.NER, opts Options) *Builder {
	if opts.MinCueCooccur < 1 {
		opts.MinCueCooccur = 1
	}
	return &Builder{ner: ner, chunker: chunk.New(opts.Chunk), opts: opts}
}

// WithCost attaches a cost model for build accounting. It returns b.
func (b *Builder) WithCost(c *slm.CostModel) *Builder {
	b.cost = c
	return b
}

// EntityNodeID returns the graph node id for a canonical entity.
func EntityNodeID(canonical string) string { return "ent:" + canonical }

// Build indexes all records of the source group into a fresh graph.
//
// The expensive per-record work — chunking and SLM entity tagging — runs
// on a bounded worker pool (Options.Workers); graph mutation then
// replays sequentially in record order, so the built graph is identical
// to a Workers=1 build.
func (b *Builder) Build(m *store.Multi) (*graph.Graph, Stats, error) {
	start := time.Now()
	g := graph.New()
	var stats Stats
	var callsBefore int64
	if b.cost != nil {
		callsBefore = b.cost.TotalCalls()
	}

	cueCounts := make(map[string]int) // "e1\x1fverb\x1fe2" -> count

	records := m.Records()
	analyses := b.analyzeAll(records)
	for i, rec := range records {
		switch rec.Kind {
		case store.KindText:
			if err := b.applyDocument(g, rec, analyses[i], cueCounts, &stats); err != nil {
				return nil, stats, err
			}
		default:
			if err := b.applyRecord(g, rec, analyses[i], &stats); err != nil {
				return nil, stats, err
			}
		}
	}

	if !b.opts.DisableCues && !b.opts.DisableEntityNodes {
		b.materializeCues(g, cueCounts, &stats)
	}

	stats.Nodes = g.NodeCount()
	stats.Edges = g.EdgeCount()
	stats.Entities = len(g.NodesOfType(graph.NodeEntity))
	stats.SizeBytes = g.SizeBytes()
	stats.BuildTime = time.Since(start)
	if b.cost != nil {
		stats.ModelCalls = b.cost.TotalCalls() - callsBefore
	}
	return g, stats, nil
}

// applyDocument replays an analyzed unstructured document into the
// graph: chunk nodes, entity links, and intra-sentence cue candidates.
// All SLM work already happened in analyzeRecord; this function only
// mutates the graph and must run single-threaded in record order.
func (b *Builder) applyDocument(g *graph.Graph, rec store.Record, an recordAnalysis, cueCounts map[string]int, stats *Stats) error {
	docNode := graph.Node{ID: "doc:" + rec.ID, Type: graph.NodeDoc, Label: rec.ID,
		Attrs: map[string]string{"source": rec.Source}}
	g.EnsureNode(docNode)
	stats.Docs++

	var prevChunkID string
	for _, ca := range an.chunks {
		chunkID := "chunk:" + ca.chunk.ID
		g.EnsureNode(graph.Node{
			ID: chunkID, Type: graph.NodeChunk, Label: ca.chunk.ID,
			Attrs: map[string]string{"text": ca.chunk.Text, "doc": rec.ID, "source": rec.Source},
		})
		stats.Chunks++
		if err := g.AddEdge(graph.Edge{From: chunkID, To: docNode.ID, Type: graph.EdgePartOf}); err != nil {
			return fmt.Errorf("index: %w", err)
		}
		if prevChunkID != "" {
			if err := g.AddUndirected(graph.Edge{From: prevChunkID, To: chunkID, Type: graph.EdgeNextTo, Weight: 0.5}); err != nil {
				return fmt.Errorf("index: %w", err)
			}
		}
		prevChunkID = chunkID

		if b.opts.DisableEntityNodes {
			continue
		}
		// The chunk node is always created by this call, so mentions
		// dedup needs only a local set, not an adjacency scan.
		mentioned := make(map[string]bool)
		for _, sa := range ca.sents {
			for _, e := range sa.ents {
				entID := EntityNodeID(e.Canonical)
				g.EnsureNode(graph.Node{
					ID: entID, Type: graph.NodeEntity, Label: e.Canonical,
					Attrs: map[string]string{"etype": string(e.Type)},
				})
				if !mentioned[entID] {
					mentioned[entID] = true
					if err := g.AddUndirected(graph.Edge{From: chunkID, To: entID, Type: graph.EdgeMentions}); err != nil {
						return fmt.Errorf("index: %w", err)
					}
				}
			}
			if !b.opts.DisableCues {
				collectCues(sa.verb, sa.ents, chunkID, cueCounts)
			}
		}
	}
	return nil
}

// applyRecord replays one analyzed structured/semi-structured record as
// a row node linked to entity nodes matching its field values.
func (b *Builder) applyRecord(g *graph.Graph, rec store.Record, an recordAnalysis, stats *Stats) error {
	rowID := "row:" + rec.ID
	attrs := map[string]string{"source": rec.Source, "kind": string(rec.Kind), "text": rec.Text}
	for k, v := range rec.Fields {
		attrs["f:"+k] = v
	}
	g.EnsureNode(graph.Node{ID: rowID, Type: graph.NodeRow, Label: rec.ID, Attrs: attrs})
	stats.Rows++

	if b.opts.DisableEntityNodes {
		return nil
	}
	// Link the row to entities recognized in its rendered text and to
	// value nodes for its fields, giving cross-modal connectivity.
	seen := map[string]bool{}
	for _, e := range an.ents {
		entID := EntityNodeID(e.Canonical)
		if seen[entID] {
			continue
		}
		seen[entID] = true
		g.EnsureNode(graph.Node{
			ID: entID, Type: graph.NodeEntity, Label: e.Canonical,
			Attrs: map[string]string{"etype": string(e.Type)},
		})
		if err := g.AddUndirected(graph.Edge{From: rowID, To: entID, Type: graph.EdgeMentions}); err != nil {
			return fmt.Errorf("index: %w", err)
		}
	}
	return nil
}

// cueVerbs are the relation-bearing verbs that create cue nodes
// ("Customer X purchased Product Y", "Patient X received Drug Y").
var cueVerbs = map[string]bool{
	"purchased": true, "bought": true, "ordered": true, "sold": true,
	"received": true, "prescribed": true, "administered": true,
	"reported": true, "experienced": true, "developed": true,
	"rated": true, "reviewed": true, "returned": true,
	"treated": true, "diagnosed": true, "caused": true, "reduced": true,
	"increased": true, "decreased": true, "launched": true,
}

// cueVerb returns the first relation-bearing verb of the sentence, or
// "cooccurs" when none matches. It is pure analysis (tokenization only)
// and safe to run concurrently.
func cueVerb(sentence string) string {
	for _, w := range slm.Words(slm.Tokenize(sentence)) {
		if cueVerbs[w] {
			return w
		}
	}
	return "cooccurs"
}

// collectCues accumulates co-occurrence counts for verb-mediated entity
// pairs inside one sentence, using the verb found at analysis time.
func collectCues(verb string, ents []slm.Entity, chunkID string, cueCounts map[string]int) {
	if len(ents) < 2 || verb == "" {
		return
	}
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			a, b := ents[i].Canonical, ents[j].Canonical
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			key := a + "\x1f" + verb + "\x1f" + b + "\x1f" + chunkID
			cueCounts[key]++
		}
	}
}

// cueRef is one parsed cue-count key.
type cueRef struct {
	key                 string
	e1, verb, e2, chunk string
	count               int
}

// materializeCues converts accumulated cue counts into cue nodes and
// relates edges. Pairs below MinCueCooccur are dropped. Keys are
// visited in sorted order so adjacency-list order — and therefore the
// floating-point summation order of everything downstream (PageRank,
// traversal scores) — is identical across runs and worker counts.
//
// Sorting makes each (e1, verb, e2) pair a contiguous group, so pair
// totals and one-time cue-node creation fall out of a single linear
// scan with no side maps; key parsing fans out across the worker pool.
func (b *Builder) materializeCues(g *graph.Graph, cueCounts map[string]int, stats *Stats) {
	keys := make([]string, 0, len(cueCounts))
	for key := range cueCounts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	refs := make([]cueRef, len(keys))
	parseWorkers := b.opts.Workers
	if len(keys) < 1024 {
		parseWorkers = 1 // not worth the fan-out
	}
	par.ForRange(len(keys), parseWorkers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			parts := strings.SplitN(keys[i], "\x1f", 4)
			refs[i] = cueRef{key: keys[i], e1: parts[0], verb: parts[1], e2: parts[2], chunk: parts[3],
				count: cueCounts[keys[i]]}
		}
	})

	samePair := func(a, b cueRef) bool { return a.e1 == b.e1 && a.verb == b.verb && a.e2 == b.e2 }
	for start := 0; start < len(refs); {
		end, total := start, 0
		for end < len(refs) && samePair(refs[end], refs[start]) {
			total += refs[end].count
			end++
		}
		group := refs[start:end]
		r := group[0]
		start = end
		if total < b.opts.MinCueCooccur {
			continue
		}
		cueID := "cue:" + r.e1 + "|" + r.verb + "|" + r.e2
		// The cue may already exist from an earlier incremental ingest;
		// only create the node and its entity edges once.
		fresh := !g.HasNode(cueID)
		if fresh {
			g.EnsureNode(graph.Node{
				ID: cueID, Type: graph.NodeCue, Label: r.verb,
				Attrs: map[string]string{"arg1": r.e1, "arg2": r.e2, "verb": r.verb},
			})
			stats.Cues++
			g.Reserve(cueID, 2+len(group), 2+len(group))
			w := 1.0 + float64(total)*0.1
			id1, id2 := EntityNodeID(r.e1), EntityNodeID(r.e2)
			if g.HasNode(id1) && g.HasNode(id2) {
				g.AddUndirected(graph.Edge{From: id1, To: id2, Type: graph.EdgeRelates, Weight: w})
				g.AddUndirected(graph.Edge{From: cueID, To: id1, Type: graph.EdgeCueArg})
				g.AddUndirected(graph.Edge{From: cueID, To: id2, Type: graph.EdgeCueArg})
			}
		}
		for _, gr := range group {
			if !g.HasNode(gr.chunk) {
				continue
			}
			// Keys are unique per (pair, chunk), so a cue created by
			// this call cannot see the same chunk twice — the linear
			// duplicate scan is only needed for cues that predate the
			// call (incremental re-ingest of a related document).
			if fresh || !hasEdge(g, cueID, gr.chunk, graph.EdgeCueIn) {
				g.AddUndirected(graph.Edge{From: cueID, To: gr.chunk, Type: graph.EdgeCueIn})
			}
		}
	}
}

func hasEdge(g *graph.Graph, from, to string, t graph.EdgeType) bool {
	for _, e := range g.Out(from) {
		if e.To == to && e.Type == t {
			return true
		}
	}
	return false
}
