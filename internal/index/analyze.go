package index

import (
	"repro/internal/chunk"
	"repro/internal/par"
	"repro/internal/slm"
	"repro/internal/store"
)

// recordAnalysis is the SLM-computed view of one record: everything the
// builder needs that does not touch the graph. Producing it is pure
// (chunking, sentence splitting, entity tagging, cue-verb detection),
// so analyses for different records can be computed concurrently and
// replayed in record order for a deterministic build.
type recordAnalysis struct {
	chunks []chunkAnalysis // text records: chunk windows with tagged sentences
	ents   []slm.Entity    // structured records: entities of the rendered text
}

// chunkAnalysis is one chunk window plus its per-sentence tagging.
type chunkAnalysis struct {
	chunk chunk.Chunk
	sents []sentAnalysis
}

// sentAnalysis is the tagging of one sentence: its entities and, when
// cue inference is on and the sentence has at least two entities, its
// relation-bearing verb.
type sentAnalysis struct {
	ents []slm.Entity
	verb string
}

// analyzeRecord computes the analysis for one record. It performs no
// graph mutation and is safe to call from multiple goroutines.
func (b *Builder) analyzeRecord(rec store.Record) recordAnalysis {
	if rec.Kind == store.KindText {
		return b.analyzeDocument(rec)
	}
	var an recordAnalysis
	if !b.opts.DisableEntityNodes {
		an.ents = b.ner.Recognize(rec.Text)
	}
	return an
}

// analyzeDocument chunks an unstructured document and tags each chunk
// sentence by sentence, mirroring the work the sequential builder did
// inline.
func (b *Builder) analyzeDocument(rec store.Record) recordAnalysis {
	chunks := b.chunker.Split(rec.ID, rec.Text)
	an := recordAnalysis{chunks: make([]chunkAnalysis, len(chunks))}
	for i, ch := range chunks {
		ca := chunkAnalysis{chunk: ch}
		if !b.opts.DisableEntityNodes {
			for _, sent := range slm.SplitSentences(ch.Text) {
				sa := sentAnalysis{ents: b.ner.Recognize(sent.Text)}
				if !b.opts.DisableCues && len(sa.ents) >= 2 {
					sa.verb = cueVerb(sent.Text)
				}
				ca.sents = append(ca.sents, sa)
			}
		}
		an.chunks[i] = ca
	}
	return an
}

// analyzeAll analyzes every record, using up to Options.Workers
// goroutines (0 = GOMAXPROCS). Output order matches input order
// regardless of scheduling, which is what keeps parallel builds
// byte-identical to sequential ones.
func (b *Builder) analyzeAll(records []store.Record) []recordAnalysis {
	out := make([]recordAnalysis, len(records))
	par.ForEach(len(records), b.opts.Workers, func(i int) {
		out[i] = b.analyzeRecord(records[i])
	})
	return out
}
