package index

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Triple is one exported knowledge fact: a verb-mediated relation
// between two canonical entities, with the source documents that
// support it. This is the "knowledge database construction" output of
// the paper's future-work section: the cue layer of the graph index,
// externalized as subject–predicate–object facts.
type Triple struct {
	Subject   string   `json:"subject"`
	Predicate string   `json:"predicate"`
	Object    string   `json:"object"`
	Sources   []string `json:"sources,omitempty"`
}

// Triples extracts all cue relations from the graph, sorted by
// (subject, predicate, object) for deterministic output.
func Triples(g *graph.Graph) []Triple {
	var out []Triple
	for _, cue := range g.NodesOfType(graph.NodeCue) {
		t := Triple{
			Subject:   cue.Attrs["arg1"],
			Predicate: cue.Attrs["verb"],
			Object:    cue.Attrs["arg2"],
		}
		seen := map[string]bool{}
		for _, nb := range g.Neighbors(cue.ID, graph.EdgeCueIn) {
			n := g.Node(nb)
			if n == nil || n.Type != graph.NodeChunk {
				continue
			}
			doc := n.Attrs["doc"]
			if doc == "" {
				doc = n.Label
			}
			if !seen[doc] {
				seen[doc] = true
				t.Sources = append(t.Sources, doc)
			}
		}
		sort.Strings(t.Sources)
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object < b.Object
	})
	return out
}

// WriteTriplesTSV writes triples as subject<TAB>predicate<TAB>object
// <TAB>comma-joined-sources lines.
func WriteTriplesTSV(w io.Writer, triples []Triple) error {
	for _, t := range triples {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n",
			t.Subject, t.Predicate, t.Object, strings.Join(t.Sources, ",")); err != nil {
			return fmt.Errorf("index: write triples: %w", err)
		}
	}
	return nil
}

// WriteTriplesJSON writes triples as a JSON array.
func WriteTriplesJSON(w io.Writer, triples []Triple) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(triples); err != nil {
		return fmt.Errorf("index: write triples: %w", err)
	}
	return nil
}
