package index

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/store"
)

// ErrDocExists reports an incremental ingest of an id that is already
// indexed; re-indexing in place would duplicate edges.
var ErrDocExists = fmt.Errorf("index: document already indexed")

// IndexRecord indexes one record into an existing graph — the
// incremental path behind the paper's "real-time data analytics"
// future-work direction. Text records are chunked, tagged and
// cue-linked exactly as in a batch build, except that relational cues
// materialize per document (with MinCueCooccur == 1 this is identical
// to the batch result; higher thresholds apply within the document).
//
// Returns the per-record stats delta plus refreshed graph totals. The
// graph must not be read concurrently with an IndexRecord call.
func (b *Builder) IndexRecord(g *graph.Graph, rec store.Record) (Stats, error) {
	var stats Stats
	if rec.Kind == store.KindText && g.HasNode("doc:"+rec.ID) {
		return stats, fmt.Errorf("%w: %s", ErrDocExists, rec.ID)
	}
	if rec.Kind != store.KindText && g.HasNode("row:"+rec.ID) {
		return stats, fmt.Errorf("%w: %s", ErrDocExists, rec.ID)
	}
	an := b.analyzeRecord(rec)
	if rec.Kind == store.KindText {
		cueCounts := make(map[string]int)
		if err := b.applyDocument(g, rec, an, cueCounts, &stats); err != nil {
			return stats, fmt.Errorf("index: incremental: %w", err)
		}
		if !b.opts.DisableCues && !b.opts.DisableEntityNodes {
			b.materializeCues(g, cueCounts, &stats)
		}
	} else {
		if err := b.applyRecord(g, rec, an, &stats); err != nil {
			return stats, fmt.Errorf("index: incremental: %w", err)
		}
	}
	stats.Nodes = g.NodeCount()
	stats.Edges = g.EdgeCount()
	stats.Entities = len(g.NodesOfType(graph.NodeEntity))
	stats.SizeBytes = g.SizeBytes()
	return stats, nil
}
