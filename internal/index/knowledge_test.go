package index

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/store"
)

func TestTriplesExtracted(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, _, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	triples := Triples(g)
	if len(triples) == 0 {
		t.Fatal("no triples")
	}
	foundReceived := false
	for _, tr := range triples {
		if tr.Predicate == "received" {
			foundReceived = true
			if len(tr.Sources) == 0 {
				t.Error("received triple lacks provenance")
			}
		}
		if tr.Subject == "" || tr.Object == "" {
			t.Errorf("malformed triple %+v", tr)
		}
	}
	if !foundReceived {
		t.Errorf("no received triple among %d", len(triples))
	}
	// Sorted by subject.
	for i := 1; i < len(triples); i++ {
		if triples[i].Subject < triples[i-1].Subject {
			t.Fatal("triples not sorted")
		}
	}
}

func TestTriplesSerializers(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, _, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	triples := Triples(g)

	var tsv bytes.Buffer
	if err := WriteTriplesTSV(&tsv, triples); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(tsv.String(), "\n"); lines != len(triples) {
		t.Errorf("tsv lines = %d, triples = %d", lines, len(triples))
	}

	var js bytes.Buffer
	if err := WriteTriplesJSON(&js, triples); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"predicate"`) {
		t.Error("json shape wrong")
	}
}

func TestIncrementalIndexRecord(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, stats0, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{
		ID: "live-1", Source: "notes", Kind: store.KindText,
		Text: "Patient P-77 received Drug A on 2024-08-01. Patient P-77 reported fatigue.",
	}
	stats, err := b.IndexRecord(g, rec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes <= stats0.Nodes {
		t.Error("graph did not grow")
	}
	if !g.HasNode("doc:live-1") || !g.HasNode(EntityNodeID("p-77")) {
		t.Error("incremental nodes missing")
	}
	// Cue for the new relation exists.
	found := false
	for _, tr := range Triples(g) {
		if tr.Predicate == "received" && (tr.Subject == "p-77" || tr.Object == "p-77") {
			found = true
		}
	}
	if !found {
		t.Error("incremental cue missing")
	}
}

func TestIncrementalDuplicateRejected(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, _, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{ID: "n1", Source: "notes", Kind: store.KindText, Text: "again"}
	if _, err := b.IndexRecord(g, rec); err == nil {
		t.Error("duplicate doc accepted")
	}
}

func TestIncrementalRowRecord(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, _, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{
		ID: "logs/e99", Source: "logs", Kind: store.KindJSON,
		Text:   "service is SVC-9. latency ms is 42.",
		Fields: map[string]string{"service": "SVC-9", "latency_ms": "42"},
	}
	if _, err := b.IndexRecord(g, rec); err != nil {
		t.Fatal(err)
	}
	if !g.HasNode("row:logs/e99") {
		t.Error("row node missing")
	}
	// Duplicate row rejected.
	if _, err := b.IndexRecord(g, rec); err == nil {
		t.Error("duplicate row accepted")
	}
}

func TestIncrementalEquivalentToBatchAtThresholdOne(t *testing.T) {
	// Building doc-by-doc must yield the same node/edge counts as one
	// batch build when MinCueCooccur == 1.
	batchBuilder := NewBuilder(testNER(), DefaultOptions())
	batch, _, err := batchBuilder.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}

	incBuilder := NewBuilder(testNER(), DefaultOptions())
	inc, _, err := incBuilder.Build(store.NewMulti()) // empty
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testSources().Records() {
		if _, err := incBuilder.IndexRecord(inc, rec); err != nil {
			t.Fatal(err)
		}
	}
	if batch.NodeCount() != inc.NodeCount() || batch.EdgeCount() != inc.EdgeCount() {
		t.Errorf("batch %d/%d vs incremental %d/%d nodes/edges",
			batch.NodeCount(), batch.EdgeCount(), inc.NodeCount(), inc.EdgeCount())
	}
}
