package index

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
)

func testNER() *slm.NER {
	n := slm.NewNER()
	n.AddGazetteer(slm.EntProduct, "Product Alpha", "Product Beta")
	n.AddGazetteer(slm.EntDrug, "Drug A")
	n.AddGazetteer(slm.EntSideEffect, "nausea", "fatigue")
	return n
}

func testSources() *store.Multi {
	txt := store.NewTextStore("notes")
	txt.Add("n1", "Patient P-1 received Drug A on 2024-05-01. Patient P-1 reported nausea.")
	txt.Add("n2", "Product Alpha sold 42 units in Q2. Customers rated Product Alpha 4 stars.")

	cat := table.NewCatalog()
	sales := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "revenue", Type: table.TypeFloat},
	})
	sales.MustAppend([]table.Value{table.S("Product Alpha"), table.F(100)})
	cat.Put(sales)

	js := store.NewJSONStore("logs")
	js.LoadLines(strings.NewReader(`{"id":"e1","product":"Product Beta","event":"return"}`))

	return store.NewMulti().
		Add(txt).
		Add(store.NewRelationalStore("db", cat)).
		Add(js)
}

func TestBuildBasic(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, stats, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != 2 {
		t.Errorf("docs = %d", stats.Docs)
	}
	if stats.Chunks == 0 || stats.Entities == 0 || stats.Rows != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Nodes != g.NodeCount() || stats.Edges != g.EdgeCount() {
		t.Error("stats disagree with graph")
	}
	if stats.SizeBytes <= 0 || stats.BuildTime < 0 {
		t.Errorf("accounting: %+v", stats)
	}
}

func TestBuildLinksCrossModal(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, _, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	// "product alpha" entity must link both a text chunk and the
	// relational row — the cross-modal bridge of Section III.A.
	entID := EntityNodeID("product alpha")
	if !g.HasNode(entID) {
		t.Fatalf("entity node missing; nodes: %v", g.CountByType())
	}
	var hasChunk, hasRow bool
	for _, nb := range g.Neighbors(entID) {
		if strings.HasPrefix(nb, "chunk:") {
			hasChunk = true
		}
		if strings.HasPrefix(nb, "row:") {
			hasRow = true
		}
	}
	if !hasChunk || !hasRow {
		t.Errorf("cross-modal links: chunk=%v row=%v neighbors=%v", hasChunk, hasRow, g.Neighbors(entID))
	}
}

func TestBuildCueNodes(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g, stats, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cues == 0 {
		t.Fatal("no cues inferred")
	}
	cues := g.NodesOfType(graph.NodeCue)
	foundReceived := false
	for _, c := range cues {
		if c.Attrs["verb"] == "received" {
			foundReceived = true
		}
	}
	if !foundReceived {
		t.Errorf("no 'received' cue among %d cues", len(cues))
	}
	// Relates edge between patient and drug.
	if len(g.Neighbors(EntityNodeID("drug a"), graph.EdgeRelates)) == 0 {
		t.Error("no relates edges for drug a")
	}
}

func TestBuildAblationNoCues(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableCues = true
	g, stats, err := NewBuilder(testNER(), opts).Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cues != 0 || len(g.NodesOfType(graph.NodeCue)) != 0 {
		t.Error("cues built despite ablation")
	}
	if stats.Entities == 0 {
		t.Error("entities should still exist")
	}
}

func TestBuildAblationNoEntities(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableEntityNodes = true
	g, stats, err := NewBuilder(testNER(), opts).Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 0 || len(g.NodesOfType(graph.NodeEntity)) != 0 {
		t.Error("entity nodes built despite ablation")
	}
	if stats.Chunks == 0 {
		t.Error("chunks should still exist")
	}
}

func TestBuildChunkSequenceEdges(t *testing.T) {
	txt := store.NewTextStore("long")
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		sb.WriteString("This is a long filler sentence with many additional words to overflow chunk budgets easily. ")
	}
	txt.Add("doc", sb.String())
	g, stats, err := NewBuilder(testNER(), DefaultOptions()).Build(store.NewMulti().Add(txt))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks < 2 {
		t.Fatalf("chunks = %d", stats.Chunks)
	}
	first := "chunk:doc#0"
	if len(g.Neighbors(first, graph.EdgeNextTo)) == 0 {
		t.Error("no next edges between chunks")
	}
}

func TestBuildEmptySources(t *testing.T) {
	g, stats, err := NewBuilder(testNER(), DefaultOptions()).Build(store.NewMulti())
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() != 0 || stats.Docs != 0 {
		t.Errorf("empty build: %+v", stats)
	}
}

func TestBuildDeterministic(t *testing.T) {
	b := NewBuilder(testNER(), DefaultOptions())
	g1, _, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := NewBuilder(testNER(), DefaultOptions()).Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if g1.NodeCount() != g2.NodeCount() || g1.EdgeCount() != g2.EdgeCount() {
		t.Error("builds differ")
	}
}

func TestBuildCostAccounting(t *testing.T) {
	cost := slm.NewCostModel(slm.SLMProfile())
	b := NewBuilder(testNER().WithCost(cost), DefaultOptions()).WithCost(cost)
	_, stats, err := b.Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ModelCalls == 0 {
		t.Error("model calls not accounted")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Docs: 1, Chunks: 2}
	if !strings.Contains(s.String(), "docs=1") {
		t.Errorf("stats string: %q", s.String())
	}
}

func TestMinCueCooccurFilters(t *testing.T) {
	opts := DefaultOptions()
	opts.MinCueCooccur = 99
	_, stats, err := NewBuilder(testNER(), opts).Build(testSources())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cues != 0 {
		t.Errorf("cues = %d despite threshold", stats.Cues)
	}
}
