package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := chainGraph(t)
	s := g.DOTString(0)
	if !strings.HasPrefix(s, "digraph unisem {") || !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Errorf("dot frame:\n%s", s)
	}
	for _, want := range []string{`"a" [shape=box`, `"a" -> "b"`, "label=\"next\""} {
		if !strings.Contains(s, want) {
			t.Errorf("dot missing %q:\n%s", want, s)
		}
	}
}

func TestWriteDOTCapped(t *testing.T) {
	g := chainGraph(t)
	s := g.DOTString(2)
	// Only two node declarations and no edges to excluded nodes.
	if strings.Count(s, "shape=") != 2 {
		t.Errorf("cap ignored:\n%s", s)
	}
}

func TestWriteDOTDeterministic(t *testing.T) {
	g := chainGraph(t)
	if g.DOTString(0) != g.DOTString(0) {
		t.Error("dot not deterministic")
	}
}

func TestWriteDOTTruncatesLabels(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "x", Type: NodeChunk, Label: strings.Repeat("w", 100)})
	if !strings.Contains(g.DOTString(0), "…") {
		t.Error("long label not truncated")
	}
}
