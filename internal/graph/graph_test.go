package graph

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// chainGraph builds a -> b -> c -> d with an entity hub linked to all.
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"a", "b", "c", "d", "hub"} {
		if err := g.AddNode(Node{ID: id, Type: NodeChunk, Label: id}); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if err := g.AddEdge(Edge{From: pair[0], To: pair[1], Type: EdgeNextTo}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := g.AddUndirected(Edge{From: "hub", To: id, Type: EdgeMentions}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode(Node{ID: "x", Type: NodeChunk}); err != nil {
		t.Fatal(err)
	}
	err := g.AddNode(Node{ID: "x", Type: NodeEntity})
	if !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate add: %v", err)
	}
}

func TestAddNodeEmptyID(t *testing.T) {
	if err := New().AddNode(Node{}); err == nil {
		t.Error("empty id accepted")
	}
}

func TestAddEdgeMissingEndpoint(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "x", Type: NodeChunk})
	err := g.AddEdge(Edge{From: "x", To: "missing", Type: EdgeNextTo})
	if !errors.Is(err, ErrBadEdge) {
		t.Errorf("missing endpoint: %v", err)
	}
}

func TestEnsureNodeFirstWriteWins(t *testing.T) {
	g := New()
	g.EnsureNode(Node{ID: "e", Type: NodeEntity, Label: "first"})
	n := g.EnsureNode(Node{ID: "e", Type: NodeEntity, Label: "second"})
	if n.Label != "first" {
		t.Errorf("label = %q, want first", n.Label)
	}
}

func TestDefaultEdgeWeight(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "a", Type: NodeChunk})
	g.AddNode(Node{ID: "b", Type: NodeChunk})
	g.AddEdge(Edge{From: "a", To: "b", Type: EdgeNextTo})
	if w := g.Out("a")[0].Weight; w != 1 {
		t.Errorf("default weight = %v", w)
	}
}

func TestNeighborsFiltered(t *testing.T) {
	g := chainGraph(t)
	all := g.Neighbors("hub")
	if len(all) != 4 {
		t.Errorf("hub neighbors = %v", all)
	}
	next := g.Neighbors("a", EdgeNextTo)
	if len(next) != 1 || next[0] != "b" {
		t.Errorf("filtered = %v", next)
	}
}

func TestCounts(t *testing.T) {
	g := chainGraph(t)
	if g.NodeCount() != 5 {
		t.Errorf("nodes = %d", g.NodeCount())
	}
	if g.EdgeCount() != 3+8 {
		t.Errorf("edges = %d", g.EdgeCount())
	}
	byType := g.CountByType()
	if byType[NodeChunk] != 5 {
		t.Errorf("byType = %v", byType)
	}
}

func TestBFSDepths(t *testing.T) {
	g := chainGraph(t)
	visits := g.BFS([]string{"a"}, 2, EdgeNextTo)
	want := map[string]int{"a": 0, "b": 1, "c": 2}
	if len(visits) != len(want) {
		t.Fatalf("visits = %v", visits)
	}
	for _, v := range visits {
		if want[v.ID] != v.Depth {
			t.Errorf("%s at depth %d, want %d", v.ID, v.Depth, want[v.ID])
		}
	}
}

func TestBFSUnknownAnchor(t *testing.T) {
	g := chainGraph(t)
	if got := g.BFS([]string{"nope"}, 3); len(got) != 0 {
		t.Errorf("unknown anchor: %v", got)
	}
}

func TestBFSVisitOnceProperty(t *testing.T) {
	// Random small graphs: BFS never reports a node twice and depths
	// are within the limit.
	f := func(edges []uint8, maxDepth uint8) bool {
		g := New()
		const n = 10
		for i := 0; i < n; i++ {
			g.AddNode(Node{ID: fmt.Sprintf("n%d", i), Type: NodeChunk})
		}
		for i := 0; i+1 < len(edges); i += 2 {
			from := fmt.Sprintf("n%d", int(edges[i])%n)
			to := fmt.Sprintf("n%d", int(edges[i+1])%n)
			if from != to {
				g.AddEdge(Edge{From: from, To: to, Type: EdgeNextTo})
			}
		}
		d := int(maxDepth % 5)
		visits := g.BFS([]string{"n0"}, d)
		seen := map[string]bool{}
		for _, v := range visits {
			if seen[v.ID] || v.Depth > d {
				return false
			}
			seen[v.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightedExpandPrefersStrongEdges(t *testing.T) {
	g := New()
	for _, id := range []string{"q", "strong", "weak"} {
		g.AddNode(Node{ID: id, Type: NodeChunk})
	}
	g.AddEdge(Edge{From: "q", To: "strong", Type: EdgeMentions, Weight: 1.0})
	g.AddEdge(Edge{From: "q", To: "weak", Type: EdgeMentions, Weight: 0.1})
	visits := g.WeightedExpand([]string{"q"}, ExpandOptions{MaxDepth: 1})
	if visits[0].ID != "q" || visits[1].ID != "strong" || visits[2].ID != "weak" {
		t.Errorf("order = %v", visits)
	}
}

func TestWeightedExpandBudget(t *testing.T) {
	g := chainGraph(t)
	visits := g.WeightedExpand([]string{"hub"}, ExpandOptions{MaxDepth: 3, Budget: 2})
	if len(visits) != 2 {
		t.Errorf("budgeted visits = %v", visits)
	}
}

func TestWeightedExpandEdgeTypeGate(t *testing.T) {
	g := chainGraph(t)
	visits := g.WeightedExpand([]string{"a"}, ExpandOptions{
		MaxDepth:  3,
		EdgeTypes: map[EdgeType]float64{EdgeNextTo: 1},
	})
	for _, v := range visits {
		if v.ID == "hub" {
			t.Error("gated edge type was traversed")
		}
	}
}

func TestWeightedExpandNodePrior(t *testing.T) {
	g := New()
	for _, id := range []string{"q", "x", "y"} {
		g.AddNode(Node{ID: id, Type: NodeChunk})
	}
	g.AddEdge(Edge{From: "q", To: "x", Type: EdgeMentions})
	g.AddEdge(Edge{From: "q", To: "y", Type: EdgeMentions})
	visits := g.WeightedExpand([]string{"q"}, ExpandOptions{
		MaxDepth: 1,
		NodeWeight: func(n *Node) float64 {
			if n.ID == "y" {
				return 2
			}
			return 1
		},
	})
	pos := map[string]int{}
	for i, v := range visits {
		pos[v.ID] = i
	}
	if pos["y"] >= pos["x"] {
		t.Errorf("prior ignored: %v", visits)
	}
}

func TestShortestPath(t *testing.T) {
	g := chainGraph(t)
	path := g.ShortestPath("a", "d")
	// a->b->c->d is 4 hops; a->hub? hub edges are undirected so
	// a has no edge to hub (only hub->a and a->hub via AddUndirected
	// twin), so a -> hub -> d has length 3.
	if len(path) != 3 || path[0] != "a" || path[1] != "hub" || path[2] != "d" {
		t.Errorf("path = %v", path)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := chainGraph(t)
	if p := g.ShortestPath("a", "a"); len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "a", Type: NodeChunk})
	g.AddNode(Node{ID: "b", Type: NodeChunk})
	if p := g.ShortestPath("a", "b"); p != nil {
		t.Errorf("disconnected path = %v", p)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "x", "y"} {
		g.AddNode(Node{ID: id, Type: NodeChunk})
	}
	g.AddEdge(Edge{From: "a", To: "b", Type: EdgeNextTo})
	g.AddEdge(Edge{From: "b", To: "c", Type: EdgeNextTo})
	g.AddEdge(Edge{From: "x", To: "y", Type: EdgeNextTo})
	comps := g.ConnectedComponents()
	if len(comps) != 2 || len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("components = %v", comps)
	}
}

func TestDegreeCentralityBounds(t *testing.T) {
	g := chainGraph(t)
	for id, c := range g.DegreeCentrality() {
		if c < 0 || c > 1 {
			t.Errorf("centrality[%s] = %v out of [0,1]", id, c)
		}
	}
}

func TestDegreeCentralitySingleNode(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "only", Type: NodeChunk})
	if c := g.DegreeCentrality()["only"]; c != 0 {
		t.Errorf("single-node centrality = %v", c)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := chainGraph(t)
	pr := g.PageRank(DefaultPageRankOptions())
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("pagerank sum = %v", sum)
	}
}

func TestPageRankHubWins(t *testing.T) {
	g := chainGraph(t)
	pr := g.PageRank(DefaultPageRankOptions())
	for _, id := range []string{"a"} {
		if pr["hub"] <= pr[id] {
			t.Errorf("hub rank %v <= %s rank %v", pr["hub"], id, pr[id])
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if pr := New().PageRank(DefaultPageRankOptions()); len(pr) != 0 {
		t.Errorf("empty graph pagerank = %v", pr)
	}
}

func TestPageRankPropertyNonNegative(t *testing.T) {
	f := func(edges []uint8) bool {
		g := New()
		const n = 8
		for i := 0; i < n; i++ {
			g.AddNode(Node{ID: fmt.Sprintf("n%d", i), Type: NodeChunk})
		}
		for i := 0; i+1 < len(edges); i += 2 {
			from := fmt.Sprintf("n%d", int(edges[i])%n)
			to := fmt.Sprintf("n%d", int(edges[i+1])%n)
			if from != to {
				g.AddEdge(Edge{From: from, To: to, Type: EdgeNextTo})
			}
		}
		pr := g.PageRank(DefaultPageRankOptions())
		var sum float64
		for _, v := range pr {
			if v < 0 {
				return false
			}
			sum += v
		}
		return sum > 0.99 && sum < 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClosenessSample(t *testing.T) {
	g := chainGraph(t)
	cs := g.ClosenessSample(5)
	if len(cs) != g.NodeCount() {
		t.Errorf("closeness size = %d", len(cs))
	}
	for id, v := range cs {
		if v < 0 {
			t.Errorf("closeness[%s] = %v", id, v)
		}
	}
}

func TestTopK(t *testing.T) {
	scores := map[string]float64{"a": 0.5, "b": 0.9, "c": 0.9, "d": 0.1}
	got := TopK(scores, 3)
	if len(got) != 3 || got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Errorf("TopK = %v", got)
	}
	if got := TopK(scores, 10); len(got) != 4 {
		t.Errorf("TopK overshoot = %v", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := chainGraph(t)
	g.Node("a").Attrs = map[string]string{"text": "hello"}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != g.NodeCount() || g2.EdgeCount() != g.EdgeCount() {
		t.Errorf("round trip: %d/%d nodes, %d/%d edges",
			g2.NodeCount(), g.NodeCount(), g2.EdgeCount(), g.EdgeCount())
	}
	if g2.Node("a").Attrs["text"] != "hello" {
		t.Error("attrs lost in round trip")
	}
}

func TestSerializationDeterministic(t *testing.T) {
	g := chainGraph(t)
	var a, b bytes.Buffer
	g.WriteJSON(&a)
	g.WriteJSON(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialization not deterministic")
	}
}

func TestReadJSONCorrupt(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("corrupt input accepted")
	}
}

func TestSizeBytesPositive(t *testing.T) {
	g := chainGraph(t)
	if g.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive for a nonempty graph")
	}
}

func TestNodesOfTypeSorted(t *testing.T) {
	g := New()
	g.AddNode(Node{ID: "z", Type: NodeEntity})
	g.AddNode(Node{ID: "a", Type: NodeEntity})
	g.AddNode(Node{ID: "m", Type: NodeChunk})
	ents := g.NodesOfType(NodeEntity)
	if len(ents) != 2 || ents[0].ID != "a" || ents[1].ID != "z" {
		t.Errorf("NodesOfType = %v", ents)
	}
}
