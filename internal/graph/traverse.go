package graph

import (
	"container/heap"
	"sort"
)

// Visit is one node reached by a traversal, with the depth at which it
// was first seen and the accumulated path score.
type Visit struct {
	ID    string
	Depth int
	Score float64
}

// BFS performs breadth-first expansion from the anchor nodes up to
// maxDepth hops, following only the given edge types (nil = all).
// Each node is visited once, at its minimum depth; anchors are depth 0.
// Results are ordered by (depth, id) for determinism.
func (g *Graph) BFS(anchors []string, maxDepth int, types ...EdgeType) []Visit {
	var filter map[EdgeType]bool
	if len(types) > 0 {
		filter = make(map[EdgeType]bool, len(types))
		for _, t := range types {
			filter[t] = true
		}
	}
	depth := make(map[string]int)
	var frontier []string
	for _, a := range anchors {
		if !g.HasNode(a) {
			continue
		}
		if _, ok := depth[a]; !ok {
			depth[a] = 0
			frontier = append(frontier, a)
		}
	}
	d := 0
	for len(frontier) > 0 && d < maxDepth {
		var next []string
		for _, id := range frontier {
			for _, e := range g.Out(id) {
				if filter != nil && !filter[e.Type] {
					continue
				}
				if _, seen := depth[e.To]; !seen {
					depth[e.To] = d + 1
					next = append(next, e.To)
				}
			}
		}
		frontier = next
		d++
	}
	visits := make([]Visit, 0, len(depth))
	for id, dd := range depth {
		visits = append(visits, Visit{ID: id, Depth: dd, Score: 1.0 / float64(1+dd)})
	}
	sort.Slice(visits, func(i, j int) bool {
		if visits[i].Depth != visits[j].Depth {
			return visits[i].Depth < visits[j].Depth
		}
		return visits[i].ID < visits[j].ID
	})
	return visits
}

// expandItem is a priority-queue entry for WeightedExpand.
type expandItem struct {
	id    string
	score float64
	depth int
	index int
}

type expandQueue []*expandItem

func (q expandQueue) Len() int           { return len(q) }
func (q expandQueue) Less(i, j int) bool { return q[i].score > q[j].score }
func (q expandQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *expandQueue) Push(x interface{}) {
	it := x.(*expandItem)
	it.index = len(*q)
	*q = append(*q, it)
}
func (q *expandQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ExpandOptions parameterizes WeightedExpand.
type ExpandOptions struct {
	MaxDepth   int                  // hop limit (0 = anchors only)
	Budget     int                  // max nodes to settle; <=0 = unlimited
	Decay      float64              // per-hop score decay in (0, 1]
	NodeWeight func(*Node) float64  // multiplicative node prior (nil = 1)
	EdgeTypes  map[EdgeType]float64 // per-type edge multiplier (nil = 1)
}

// WeightedExpand is the topology-enhanced traversal of Section III.B:
// a best-first expansion from the anchors where a node's score is the
// best product of edge weights, per-hop decay, and a node prior
// (typically a centrality measure). The highest-scoring nodes settle
// first, so a budget yields the most topologically relevant subgraph.
func (g *Graph) WeightedExpand(anchors []string, opts ExpandOptions) []Visit {
	if opts.Decay <= 0 || opts.Decay > 1 {
		opts.Decay = 0.7
	}
	nodePrior := func(n *Node) float64 { return 1 }
	if opts.NodeWeight != nil {
		nodePrior = opts.NodeWeight
	}
	edgeMult := func(t EdgeType) float64 { return 1 }
	if opts.EdgeTypes != nil {
		edgeMult = func(t EdgeType) float64 {
			if m, ok := opts.EdgeTypes[t]; ok {
				return m
			}
			return 0 // unlisted types are not traversed
		}
	}

	settled := make(map[string]Visit)
	best := make(map[string]float64)
	q := &expandQueue{}
	heap.Init(q)
	for _, a := range anchors {
		if !g.HasNode(a) {
			continue
		}
		if best[a] < 1 {
			best[a] = 1
			heap.Push(q, &expandItem{id: a, score: 1, depth: 0})
		}
	}
	for q.Len() > 0 {
		it := heap.Pop(q).(*expandItem)
		if _, done := settled[it.id]; done {
			continue
		}
		settled[it.id] = Visit{ID: it.id, Depth: it.depth, Score: it.score}
		if opts.Budget > 0 && len(settled) >= opts.Budget {
			break
		}
		if it.depth >= opts.MaxDepth {
			continue
		}
		for _, e := range g.Out(it.id) {
			mult := edgeMult(e.Type)
			if mult == 0 {
				continue
			}
			n := g.Node(e.To)
			s := it.score * opts.Decay * e.Weight * mult * nodePrior(n)
			if s <= best[e.To] {
				continue
			}
			best[e.To] = s
			heap.Push(q, &expandItem{id: e.To, score: s, depth: it.depth + 1})
		}
	}
	visits := make([]Visit, 0, len(settled))
	for _, v := range settled {
		visits = append(visits, v)
	}
	sort.Slice(visits, func(i, j int) bool {
		if visits[i].Score != visits[j].Score {
			return visits[i].Score > visits[j].Score
		}
		return visits[i].ID < visits[j].ID
	})
	return visits
}

// ShortestPath returns one minimum-hop path between two nodes following
// any edge type, or nil if disconnected. Used to explain answers
// ("Patient X —received→ Drug Y —reported→ nausea").
func (g *Graph) ShortestPath(from, to string) []string {
	if !g.HasNode(from) || !g.HasNode(to) {
		return nil
	}
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: ""}
	frontier := []string{from}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			// Deterministic neighbor order.
			edges := g.Out(id)
			for _, e := range edges {
				if _, seen := prev[e.To]; seen {
					continue
				}
				prev[e.To] = id
				if e.To == to {
					return buildPath(prev, from, to)
				}
				next = append(next, e.To)
			}
		}
		frontier = next
	}
	return nil
}

func buildPath(prev map[string]string, from, to string) []string {
	var rev []string
	for cur := to; cur != ""; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == from {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ConnectedComponents returns the weakly connected components as sorted
// slices of node ids, largest first. Useful as an index sanity check:
// a well-linked corpus should have one dominant component.
func (g *Graph) ConnectedComponents() [][]string {
	seen := make(map[string]bool)
	var comps [][]string
	for _, start := range g.NodeIDs() {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, id)
			for _, e := range g.Out(id) {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
			for _, e := range g.In(id) {
				if !seen[e.From] {
					seen[e.From] = true
					stack = append(stack, e.From)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}
