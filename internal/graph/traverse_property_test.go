package graph

import (
	"fmt"
	"testing"
	"testing/quick"
)

// randomGraph builds a graph from fuzz bytes: n nodes and edges(i,j)
// pairs with weights derived from the bytes.
func randomGraph(edges []uint8) *Graph {
	g := New()
	const n = 12
	for i := 0; i < n; i++ {
		g.AddNode(Node{ID: fmt.Sprintf("n%d", i), Type: NodeChunk})
	}
	for i := 0; i+2 < len(edges); i += 3 {
		from := fmt.Sprintf("n%d", int(edges[i])%n)
		to := fmt.Sprintf("n%d", int(edges[i+1])%n)
		if from == to {
			continue
		}
		w := 0.1 + float64(edges[i+2]%10)/10
		g.AddEdge(Edge{From: from, To: to, Type: EdgeMentions, Weight: w})
	}
	return g
}

// WeightedExpand invariants: scores are in (0, 1], anchors score 1,
// every settled node is reachable within MaxDepth, budget is obeyed.
func TestWeightedExpandInvariantsProperty(t *testing.T) {
	f := func(edges []uint8, depth, budget uint8) bool {
		g := randomGraph(edges)
		d := int(depth%4) + 1
		b := int(budget%20) + 1
		visits := g.WeightedExpand([]string{"n0"}, ExpandOptions{
			MaxDepth: d, Budget: b, Decay: 0.7,
		})
		if len(visits) > b {
			return false
		}
		for _, v := range visits {
			if v.Score <= 0 || v.Score > 1.0000001 {
				return false
			}
			if v.Depth > d {
				return false
			}
			if v.ID == "n0" && v.Score != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ShortestPath returns a genuine path: consecutive elements are
// connected and endpoints match.
func TestShortestPathValidityProperty(t *testing.T) {
	f := func(edges []uint8, toIdx uint8) bool {
		g := randomGraph(edges)
		to := fmt.Sprintf("n%d", int(toIdx)%12)
		path := g.ShortestPath("n0", to)
		if path == nil {
			return true // disconnected is fine
		}
		if path[0] != "n0" || path[len(path)-1] != to {
			return false
		}
		for i := 1; i < len(path); i++ {
			connected := false
			for _, e := range g.Out(path[i-1]) {
				if e.To == path[i] {
					connected = true
					break
				}
			}
			if !connected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BFS depth is minimal: no edge can connect a depth-d node to a node
// recorded at depth > d+1.
func TestBFSMinimalityProperty(t *testing.T) {
	f := func(edges []uint8) bool {
		g := randomGraph(edges)
		visits := g.BFS([]string{"n0"}, 12)
		depth := map[string]int{}
		for _, v := range visits {
			depth[v.ID] = v.Depth
		}
		for id, d := range depth {
			for _, e := range g.Out(id) {
				if dd, ok := depth[e.To]; ok && dd > d+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
