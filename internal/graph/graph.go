// Package graph implements the semantic-aware heterogeneous graph index
// of paper Section III.A: a single topological structure whose nodes
// are text chunks, named entities, relational cues, and structured
// records, and whose typed weighted edges encode relationships such as
// "Patient X received Drug Y on Date Z".
//
// The graph is the system's index: retrieval is sparse, topology-guided
// traversal over it (Section III.B) instead of dense vector search.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeType classifies a heterogeneous graph node.
type NodeType string

// Node types in the unified index.
const (
	NodeChunk  NodeType = "chunk"  // raw document segment
	NodeEntity NodeType = "entity" // named entity (canonical)
	NodeCue    NodeType = "cue"    // inferred relational cue
	NodeRow    NodeType = "row"    // structured table row
	NodeTable  NodeType = "table"  // table schema node
	NodeDoc    NodeType = "doc"    // source document
	NodeValue  NodeType = "value"  // semi-structured field value
)

// EdgeType classifies a relationship between nodes.
type EdgeType string

// Edge types in the unified index.
const (
	EdgeMentions EdgeType = "mentions" // chunk -> entity
	EdgeRelates  EdgeType = "relates"  // entity <-> entity via a cue
	EdgeCueArg   EdgeType = "cue_arg"  // cue -> entity argument
	EdgeCueIn    EdgeType = "cue_in"   // cue -> supporting chunk
	EdgeNextTo   EdgeType = "next"     // chunk -> following chunk
	EdgePartOf   EdgeType = "part_of"  // chunk -> doc, row -> table
	EdgeHasValue EdgeType = "value"    // row -> value node
	EdgeSameAs   EdgeType = "same_as"  // cross-modal identity link
)

// Node is a graph vertex. Attrs carries type-specific payload (e.g. a
// chunk's text, an entity's type, a row's table and index).
type Node struct {
	ID    string            `json:"id"`
	Type  NodeType          `json:"type"`
	Label string            `json:"label"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Edge is a typed, weighted, directed connection. Undirected semantics
// are represented by a reverse twin edge (see AddUndirected).
type Edge struct {
	From   string   `json:"from"`
	To     string   `json:"to"`
	Type   EdgeType `json:"type"`
	Weight float64  `json:"weight"`
}

// Sentinel errors returned by graph operations.
var (
	ErrNodeExists   = errors.New("graph: node already exists")
	ErrNodeNotFound = errors.New("graph: node not found")
	ErrBadEdge      = errors.New("graph: edge endpoint missing")
)

// vertex packs a node with its adjacency so one map lookup reaches
// both; edge insertion — the hottest build operation — touches exactly
// two vertices instead of six map slots.
type vertex struct {
	node *Node
	out  []Edge // adjacency by source
	in   []Edge // reverse adjacency by target
}

// Graph is an in-memory heterogeneous property graph. It is not safe
// for concurrent mutation; build once, then read from any goroutine.
type Graph struct {
	vs    map[string]*vertex
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{vs: make(map[string]*vertex)}
}

// AddNode inserts a node. It returns ErrNodeExists if the id is taken.
func (g *Graph) AddNode(n Node) error {
	if n.ID == "" {
		return fmt.Errorf("graph: empty node id: %w", ErrNodeNotFound)
	}
	if _, ok := g.vs[n.ID]; ok {
		return fmt.Errorf("%w: %s", ErrNodeExists, n.ID)
	}
	g.vs[n.ID] = &vertex{node: &n}
	return nil
}

// EnsureNode inserts the node if absent and returns the stored node.
// Existing nodes are returned unchanged (first write wins), which is
// the behaviour the index builder needs for entity unification.
func (g *Graph) EnsureNode(n Node) *Node {
	if existing, ok := g.vs[n.ID]; ok {
		return existing.node
	}
	g.vs[n.ID] = &vertex{node: &n}
	return &n
}

// Node returns the node with id, or nil if absent.
func (g *Graph) Node(id string) *Node {
	v, ok := g.vs[id]
	if !ok {
		return nil
	}
	return v.node
}

// HasNode reports whether id is present.
func (g *Graph) HasNode(id string) bool { _, ok := g.vs[id]; return ok }

// AddEdge inserts a directed edge. Both endpoints must exist.
func (g *Graph) AddEdge(e Edge) error {
	from, ok := g.vs[e.From]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrBadEdge, e.From, e.To)
	}
	to, ok := g.vs[e.To]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrBadEdge, e.From, e.To)
	}
	if e.Weight == 0 {
		e.Weight = 1
	}
	from.out = appendEdge(from.out, e)
	to.in = appendEdge(to.in, e)
	g.edges++
	return nil
}

// AddUndirected inserts the edge and its reverse twin. It resolves each
// endpoint once, not once per direction — this is the hottest write in
// index construction.
func (g *Graph) AddUndirected(e Edge) error {
	from, ok := g.vs[e.From]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrBadEdge, e.From, e.To)
	}
	to, ok := g.vs[e.To]
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrBadEdge, e.From, e.To)
	}
	if e.Weight == 0 {
		e.Weight = 1
	}
	rev := Edge{From: e.To, To: e.From, Type: e.Type, Weight: e.Weight}
	from.out = appendEdge(from.out, e)
	to.in = appendEdge(to.in, e)
	to.out = appendEdge(to.out, rev)
	from.in = appendEdge(from.in, rev)
	g.edges += 2
	return nil
}

// appendEdge grows an adjacency list, seeding fresh lists with room for
// a typical node's degree so the first few inserts do not reallocate.
func appendEdge(es []Edge, e Edge) []Edge {
	if es == nil {
		es = make([]Edge, 0, 4)
	}
	return append(es, e)
}

// Reserve grows id's adjacency capacity ahead of a known burst of edge
// insertions, avoiding repeated reallocation for high-degree nodes. It
// is a no-op for unknown ids.
func (g *Graph) Reserve(id string, out, in int) {
	v, ok := g.vs[id]
	if !ok {
		return
	}
	if need := len(v.out) + out; need > cap(v.out) {
		ns := make([]Edge, len(v.out), need)
		copy(ns, v.out)
		v.out = ns
	}
	if need := len(v.in) + in; need > cap(v.in) {
		ns := make([]Edge, len(v.in), need)
		copy(ns, v.in)
		v.in = ns
	}
}

// Out returns the outgoing edges of id (shared slice; do not mutate).
func (g *Graph) Out(id string) []Edge {
	v, ok := g.vs[id]
	if !ok {
		return nil
	}
	return v.out
}

// In returns the incoming edges of id (shared slice; do not mutate).
func (g *Graph) In(id string) []Edge {
	v, ok := g.vs[id]
	if !ok {
		return nil
	}
	return v.in
}

// Neighbors returns the distinct node ids reachable over one outgoing
// edge, optionally filtered to the given edge types (nil = all).
func (g *Graph) Neighbors(id string, types ...EdgeType) []string {
	var filter map[EdgeType]bool
	if len(types) > 0 {
		filter = make(map[EdgeType]bool, len(types))
		for _, t := range types {
			filter[t] = true
		}
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range g.Out(id) {
		if filter != nil && !filter[e.Type] {
			continue
		}
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	sort.Strings(out)
	return out
}

// Degree returns the out-degree of id.
func (g *Graph) Degree(id string) int { return len(g.Out(id)) }

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int { return len(g.vs) }

// EdgeCount returns the number of directed edges (an undirected edge
// counts twice).
func (g *Graph) EdgeCount() int { return g.edges }

// NodeIDs returns all node ids in sorted order.
func (g *Graph) NodeIDs() []string {
	ids := make([]string, 0, len(g.vs))
	for id := range g.vs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NodesOfType returns all nodes of the given type, sorted by id.
func (g *Graph) NodesOfType(t NodeType) []*Node {
	var out []*Node
	for _, v := range g.vs {
		if v.node.Type == t {
			out = append(out, v.node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CountByType returns node counts per type, for index statistics.
func (g *Graph) CountByType() map[NodeType]int {
	m := make(map[NodeType]int)
	for _, v := range g.vs {
		m[v.node.Type]++
	}
	return m
}

// SizeBytes estimates the resident size of the index: node labels and
// attrs plus edge records. Used by experiment E1 (index size).
func (g *Graph) SizeBytes() int64 {
	var b int64
	for _, v := range g.vs {
		n := v.node
		b += int64(len(n.ID) + len(n.Label) + 16)
		for k, av := range n.Attrs {
			b += int64(len(k) + len(av) + 16)
		}
		for _, e := range v.out {
			b += int64(len(e.From) + len(e.To) + len(e.Type) + 8)
		}
	}
	return b
}
