package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// serialized is the stable on-disk form of a graph.
type serialized struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// WriteJSON serializes the graph as deterministic JSON (nodes and edges
// sorted), suitable for persistence and for diffing index builds.
func (g *Graph) WriteJSON(w io.Writer) error {
	s := serialized{Nodes: make([]Node, 0, len(g.vs))}
	for _, id := range g.NodeIDs() {
		s.Nodes = append(s.Nodes, *g.vs[id].node)
	}
	for _, id := range g.NodeIDs() {
		s.Edges = append(s.Edges, g.vs[id].out...)
	}
	sort.Slice(s.Edges, func(i, j int) bool {
		a, b := s.Edges[i], s.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Type < b.Type
	})
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// ReadJSON reconstructs a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var s serialized
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	g := New()
	for _, n := range s.Nodes {
		if err := g.AddNode(n); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}
