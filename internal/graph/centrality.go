package graph

import (
	"math"
	"sort"
)

// DegreeCentrality returns normalized out-degree per node: degree
// divided by (n-1). For n <= 1 all values are 0.
func (g *Graph) DegreeCentrality() map[string]float64 {
	n := len(g.nodes)
	out := make(map[string]float64, n)
	if n <= 1 {
		for id := range g.nodes {
			out[id] = 0
		}
		return out
	}
	denom := float64(n - 1)
	for id := range g.nodes {
		out[id] = float64(len(g.out[id])) / denom
	}
	return out
}

// PageRankOptions configures PageRank.
type PageRankOptions struct {
	Damping    float64 // typically 0.85
	Iterations int     // fixed iteration cap
	Tolerance  float64 // early-exit L1 threshold
}

// DefaultPageRankOptions returns the standard setting.
func DefaultPageRankOptions() PageRankOptions {
	return PageRankOptions{Damping: 0.85, Iterations: 40, Tolerance: 1e-8}
}

// PageRank computes weighted PageRank over the directed graph. Edge
// weights bias the random walk; dangling mass is redistributed
// uniformly. Scores sum to 1 over all nodes. This is the "centrality
// measure[] to identify influential nodes" of Section III.B.
func (g *Graph) PageRank(opts PageRankOptions) map[string]float64 {
	n := len(g.nodes)
	ranks := make(map[string]float64, n)
	if n == 0 {
		return ranks
	}
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 40
	}
	ids := g.NodeIDs()
	init := 1.0 / float64(n)
	for _, id := range ids {
		ranks[id] = init
	}
	// Precompute total outgoing weight per node.
	outWeight := make(map[string]float64, n)
	for id, es := range g.out {
		var w float64
		for _, e := range es {
			w += e.Weight
		}
		outWeight[id] = w
	}
	next := make(map[string]float64, n)
	for iter := 0; iter < opts.Iterations; iter++ {
		var dangling float64
		for _, id := range ids {
			if outWeight[id] == 0 {
				dangling += ranks[id]
			}
			next[id] = 0
		}
		for _, id := range ids {
			w := outWeight[id]
			if w == 0 {
				continue
			}
			share := ranks[id] / w
			for _, e := range g.out[id] {
				next[e.To] += share * e.Weight
			}
		}
		base := (1-opts.Damping)/float64(n) + opts.Damping*dangling/float64(n)
		var delta float64
		for _, id := range ids {
			v := base + opts.Damping*next[id]
			delta += math.Abs(v - ranks[id])
			ranks[id] = v
		}
		if delta < opts.Tolerance {
			break
		}
	}
	return ranks
}

// ClosenessSample estimates closeness centrality by running BFS from a
// deterministic sample of k source nodes. Exact closeness is O(V·E);
// the sampled estimate is enough for traversal priors on large graphs.
func (g *Graph) ClosenessSample(k int) map[string]float64 {
	ids := g.NodeIDs()
	n := len(ids)
	out := make(map[string]float64, n)
	if n == 0 {
		return out
	}
	if k <= 0 || k > n {
		k = n
	}
	stride := n / k
	if stride == 0 {
		stride = 1
	}
	sumDist := make(map[string]float64, n)
	reached := make(map[string]int, n)
	for i := 0; i < n; i += stride {
		src := ids[i]
		for _, v := range g.BFS([]string{src}, n) {
			sumDist[v.ID] += float64(v.Depth)
			reached[v.ID]++
		}
	}
	for _, id := range ids {
		if reached[id] == 0 || sumDist[id] == 0 {
			out[id] = 0
			continue
		}
		out[id] = float64(reached[id]) / sumDist[id]
	}
	return out
}

// TopK returns the k highest-scoring ids from a score map, ties broken
// by id for determinism.
func TopK(scores map[string]float64, k int) []string {
	ids := make([]string, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}
