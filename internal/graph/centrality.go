package graph

import (
	"math"
	"sort"

	"repro/internal/par"
)

// DegreeCentrality returns normalized out-degree per node: degree
// divided by (n-1). For n <= 1 all values are 0.
func (g *Graph) DegreeCentrality() map[string]float64 {
	n := len(g.vs)
	out := make(map[string]float64, n)
	if n <= 1 {
		for id := range g.vs {
			out[id] = 0
		}
		return out
	}
	denom := float64(n - 1)
	for id, v := range g.vs {
		out[id] = float64(len(v.out)) / denom
	}
	return out
}

// PageRankOptions configures PageRank.
type PageRankOptions struct {
	Damping    float64 // typically 0.85
	Iterations int     // fixed iteration cap
	Tolerance  float64 // early-exit L1 threshold
	Workers    int     // gather workers per iteration; 0 = GOMAXPROCS, 1 = sequential
}

// DefaultPageRankOptions returns the standard setting.
func DefaultPageRankOptions() PageRankOptions {
	return PageRankOptions{Damping: 0.85, Iterations: 40, Tolerance: 1e-8}
}

// PageRank computes weighted PageRank over the directed graph. Edge
// weights bias the random walk; dangling mass is redistributed
// uniformly. Scores sum to 1 over all nodes. This is the "centrality
// measure[] to identify influential nodes" of Section III.B.
//
// The iteration runs pull-style over a dense index-space copy of the
// graph: each node gathers from its in-edges in list order, so every
// node's score is independent of how nodes are partitioned across
// workers — results are bit-identical at any worker count.
func (g *Graph) PageRank(opts PageRankOptions) map[string]float64 {
	n := len(g.vs)
	out := make(map[string]float64, n)
	if n == 0 {
		return out
	}
	if opts.Damping <= 0 || opts.Damping >= 1 {
		opts.Damping = 0.85
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 40
	}
	ids := g.NodeIDs()
	idx := make(map[string]int, n)
	for i, id := range ids {
		idx[id] = i
	}

	// CSR-style reverse adjacency plus per-node total outgoing weight:
	// the hot loop then touches only flat slices, no string hashing.
	outWeight := make([]float64, n)
	offs := make([]int, n+1)
	for i, id := range ids {
		v := g.vs[id]
		for _, e := range v.out {
			outWeight[i] += e.Weight
		}
		offs[i+1] = offs[i] + len(v.in)
	}
	srcs := make([]int32, offs[n])
	ws := make([]float64, offs[n])
	for i, id := range ids {
		base := offs[i]
		for j, e := range g.vs[id].in {
			srcs[base+j] = int32(idx[e.From])
			ws[base+j] = e.Weight
		}
	}

	ranks := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n)
	init := 1.0 / float64(n)
	for i := range ranks {
		ranks[i] = init
	}

	d := opts.Damping
	for iter := 0; iter < opts.Iterations; iter++ {
		var dangling float64
		for i := 0; i < n; i++ {
			if outWeight[i] == 0 {
				dangling += ranks[i]
				contrib[i] = 0
			} else {
				contrib[i] = ranks[i] / outWeight[i]
			}
		}
		base := (1-d)/float64(n) + d*dangling/float64(n)

		par.ForRange(n, opts.Workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				var s float64
				for k := offs[v]; k < offs[v+1]; k++ {
					s += contrib[srcs[k]] * ws[k]
				}
				next[v] = base + d*s
			}
		})

		// Convergence delta sums sequentially in index order so the
		// early-exit decision is also worker-count independent.
		var delta float64
		for i := 0; i < n; i++ {
			delta += math.Abs(next[i] - ranks[i])
		}
		ranks, next = next, ranks
		if delta < opts.Tolerance {
			break
		}
	}
	for i, id := range ids {
		out[id] = ranks[i]
	}
	return out
}

// ClosenessSample estimates closeness centrality by running BFS from a
// deterministic sample of k source nodes. Exact closeness is O(V·E);
// the sampled estimate is enough for traversal priors on large graphs.
func (g *Graph) ClosenessSample(k int) map[string]float64 {
	ids := g.NodeIDs()
	n := len(ids)
	out := make(map[string]float64, n)
	if n == 0 {
		return out
	}
	if k <= 0 || k > n {
		k = n
	}
	stride := n / k
	if stride == 0 {
		stride = 1
	}
	sumDist := make(map[string]float64, n)
	reached := make(map[string]int, n)
	for i := 0; i < n; i += stride {
		src := ids[i]
		for _, v := range g.BFS([]string{src}, n) {
			sumDist[v.ID] += float64(v.Depth)
			reached[v.ID]++
		}
	}
	for _, id := range ids {
		if reached[id] == 0 || sumDist[id] == 0 {
			out[id] = 0
			continue
		}
		out[id] = float64(reached[id]) / sumDist[id]
	}
	return out
}

// TopK returns the k highest-scoring ids from a score map, ties broken
// by id for determinism.
func TopK(scores map[string]float64, k int) []string {
	ids := make([]string, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}
