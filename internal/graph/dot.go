package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visual
// inspection of the heterogeneous index (fig. 1 of the paper, live).
// Node shapes encode types: chunks are boxes, entities ellipses, cues
// diamonds, rows folders, docs notes. maxNodes caps output for large
// graphs (0 = no cap); nodes are emitted in sorted id order so output
// is deterministic.
func (g *Graph) WriteDOT(w io.Writer, maxNodes int) error {
	if _, err := fmt.Fprintln(w, "digraph unisem {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=LR; node [fontsize=10];`)
	included := make(map[string]bool)
	count := 0
	for _, id := range g.NodeIDs() {
		if maxNodes > 0 && count >= maxNodes {
			break
		}
		n := g.vs[id].node
		shape := "ellipse"
		switch n.Type {
		case NodeChunk:
			shape = "box"
		case NodeCue:
			shape = "diamond"
		case NodeRow:
			shape = "folder"
		case NodeDoc:
			shape = "note"
		}
		label := n.Label
		if len(label) > 32 {
			label = label[:32] + "…"
		}
		fmt.Fprintf(w, "  %q [shape=%s,label=%q];\n", id, shape, label)
		included[id] = true
		count++
	}
	for _, id := range g.NodeIDs() {
		if !included[id] {
			continue
		}
		for _, e := range g.vs[id].out {
			if !included[e.To] {
				continue
			}
			fmt.Fprintf(w, "  %q -> %q [label=%q,fontsize=8];\n", e.From, e.To, string(e.Type))
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// DOTString renders the graph (capped at maxNodes) as a DOT string.
func (g *Graph) DOTString(maxNodes int) string {
	var b strings.Builder
	_ = g.WriteDOT(&b, maxNodes)
	return b.String()
}
