package sql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Sentinel errors.
var (
	ErrSyntax = errors.New("sql: syntax error")
)

// SelectItem is one projection: a bare column or an aggregate call.
type SelectItem struct {
	Col   string
	Agg   table.AggFunc
	IsAgg bool
	As    string
	Star  bool // COUNT(*) or SELECT *
}

// JoinClause is an INNER equi-join.
type JoinClause struct {
	Table    string
	LeftCol  string // column of the FROM table (qualified form accepted)
	RightCol string // column of the joined table
}

// Where is one conjunct of the WHERE clause.
type Where struct {
	Col string
	Op  table.CmpOp
	Val table.Value
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Stmt is a parsed SELECT statement.
type Stmt struct {
	Items    []SelectItem
	Distinct bool
	From     string
	// RowStart/RowEnd restrict the FROM table to the physical row range
	// [RowStart, RowEnd) — the ROWS a TO b clause the federated SQL
	// backend uses to express fragment-ranged scans as text. RowEnd 0
	// means the whole table.
	RowStart, RowEnd int
	Join             *JoinClause
	Wheres           []Where
	GroupBy          []string
	OrderBy          []OrderKey
	Limit            int // 0 = none
}

type parser struct {
	toks []token
	pos  int
	src  string
}

// Parse parses one SELECT statement.
func Parse(input string) (*Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.cur().kind == tokSymbol && p.cur().text == ";" {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s (byte %d of %q)", ErrSyntax, fmt.Sprintf(format, args...), p.cur().pos, p.src)
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return nil
	}
	return p.errf("expected %s, got %q", kw, p.cur().text)
}

func (p *parser) expectSymbol(s string) error {
	if p.cur().kind == tokSymbol && p.cur().text == s {
		p.pos++
		return nil
	}
	return p.errf("expected %q, got %q", s, p.cur().text)
}

func (p *parser) selectStmt() (*Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &Stmt{}
	if p.cur().kind == tokKeyword && p.cur().text == "DISTINCT" {
		stmt.Distinct = true
		p.pos++
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	if p.cur().kind == tokKeyword && p.cur().text == "ROWS" {
		p.pos++
		start, err := p.rowBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		end, err := p.rowBound()
		if err != nil {
			return nil, err
		}
		if end <= start {
			return nil, p.errf("empty ROWS range %d TO %d", start, end)
		}
		stmt.RowStart, stmt.RowEnd = start, end
	}

	if p.cur().kind == tokKeyword && (p.cur().text == "JOIN" || p.cur().text == "INNER") {
		if p.cur().text == "INNER" {
			p.pos++
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		join, err := p.joinClause()
		if err != nil {
			return nil, err
		}
		stmt.Join = join
	}

	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.pos++
		for {
			w, err := p.whereClause()
			if err != nil {
				return nil, err
			}
			stmt.Wheres = append(stmt.Wheres, w)
			if p.cur().kind == tokKeyword && p.cur().text == "AND" {
				p.pos++
				continue
			}
			break
		}
	}

	if p.cur().kind == tokKeyword && p.cur().text == "GROUP" {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.pos++
				continue
			}
			break
		}
	}

	if p.cur().kind == tokKeyword && p.cur().text == "ORDER" {
		p.pos++
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.cur().kind == tokKeyword && (p.cur().text == "DESC" || p.cur().text == "ASC") {
				key.Desc = p.cur().text == "DESC"
				p.pos++
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.pos++
				continue
			}
			break
		}
	}

	if p.cur().kind == tokKeyword && p.cur().text == "LIMIT" {
		p.pos++
		if p.cur().kind != tokNumber {
			return nil, p.errf("expected LIMIT count")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT count")
		}
		stmt.Limit = n
	}
	return stmt, nil
}

// rowBound parses one non-negative integer bound of a ROWS clause.
func (p *parser) rowBound() (int, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected ROWS bound, got %q", p.cur().text)
	}
	n, err := strconv.Atoi(p.next().text)
	if err != nil || n < 0 {
		return 0, p.errf("bad ROWS bound")
	}
	return n, nil
}

var aggKeywords = map[string]table.AggFunc{
	"COUNT": table.AggCount,
	"SUM":   table.AggSum,
	"AVG":   table.AggAvg,
	"MIN":   table.AggMin,
	"MAX":   table.AggMax,
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.cur().kind == tokSymbol && p.cur().text == "*" {
		p.pos++
		return SelectItem{Star: true}, nil
	}
	if fn, ok := aggKeywords[p.cur().text]; ok && p.cur().kind == tokKeyword {
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: fn, IsAgg: true}
		if p.cur().kind == tokSymbol && p.cur().text == "*" {
			p.pos++
			item.Star = true
		} else {
			col, err := p.columnRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectItem{}, err
		}
		if p.cur().kind == tokKeyword && p.cur().text == "AS" {
			p.pos++
			as, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			item.As = as
		}
		return item, nil
	}
	col, err := p.columnRef()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: col}
	if p.cur().kind == tokKeyword && p.cur().text == "AS" {
		p.pos++
		as, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = as
	}
	return item, nil
}

func (p *parser) joinClause() (*JoinClause, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	left, err := p.columnRef()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	right, err := p.columnRef()
	if err != nil {
		return nil, err
	}
	return &JoinClause{Table: name, LeftCol: left, RightCol: right}, nil
}

func (p *parser) whereClause() (Where, error) {
	col, err := p.columnRef()
	if err != nil {
		return Where{}, err
	}
	var op table.CmpOp
	switch {
	case p.cur().kind == tokSymbol:
		switch p.cur().text {
		case "=":
			op = table.OpEq
		case "!=", "<>":
			op = table.OpNe
		case "<":
			op = table.OpLt
		case "<=":
			op = table.OpLe
		case ">":
			op = table.OpGt
		case ">=":
			op = table.OpGe
		default:
			return Where{}, p.errf("bad operator %q", p.cur().text)
		}
		p.pos++
	case p.cur().kind == tokKeyword && p.cur().text == "CONTAINS":
		op = table.OpContains
		p.pos++
	default:
		return Where{}, p.errf("expected comparison operator, got %q", p.cur().text)
	}
	val, err := p.literal()
	if err != nil {
		return Where{}, err
	}
	return Where{Col: col, Op: op, Val: val}, nil
}

func (p *parser) literal() (table.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return table.Value{}, p.errf("bad number %q", t.text)
			}
			return table.F(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return table.Value{}, p.errf("bad number %q", t.text)
		}
		return table.I(n), nil
	case t.kind == tokString:
		p.pos++
		return table.S(t.text), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.pos++
		return table.B(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.pos++
		return table.B(false), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return table.Null(table.TypeString), nil
	default:
		return table.Value{}, p.errf("expected literal, got %q", t.text)
	}
}

// columnRef parses "col" or "table.col" (the qualifier is kept — the
// executor resolves it against join-renamed schemas).
func (p *parser) columnRef() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.cur().kind == tokSymbol && p.cur().text == "." {
		p.pos++
		col, err := p.ident()
		if err != nil {
			return "", err
		}
		return name + "." + col, nil
	}
	return name, nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}
