package sql

import (
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/table"
)

// Compile lowers a parsed SELECT statement onto the shared logical IR.
// Every column reference is resolved at compile time against catalog
// schemas — tracked through join renames, aggregation and projection
// aliases exactly the way the table engine names them — so the
// compiled tree executes through the same operator loop (and the same
// rule-based optimizer) as the natural-language entry path.
func Compile(stmt *Stmt, c *table.Catalog) (*logical.Node, error) {
	base, err := c.Get(stmt.From)
	if err != nil {
		return nil, err
	}
	cur := &logical.Node{Op: logical.OpScan, Table: base.Name,
		RowStart: stmt.RowStart, RowEnd: stmt.RowEnd}
	rel, schema := base.Name, base.Schema

	if stmt.Join != nil {
		right, err := c.Get(stmt.Join.Table)
		if err != nil {
			return nil, err
		}
		leftCol, err := resolveIn(schema, rel, stmt.Join.LeftCol)
		if err != nil {
			return nil, err
		}
		rightCol, err := resolveIn(right.Schema, right.Name, stmt.Join.RightCol)
		if err != nil {
			return nil, err
		}
		cur = &logical.Node{Op: logical.OpJoin,
			LeftCol: leftCol, RightCol: rightCol,
			In: []*logical.Node{cur, {Op: logical.OpScan, Table: right.Name}}}
		schema = table.JoinedSchema(schema, right.Name, right.Schema)
		rel = rel + "_join_" + right.Name
	}

	if len(stmt.Wheres) > 0 {
		preds := make([]table.Pred, 0, len(stmt.Wheres))
		for _, w := range stmt.Wheres {
			col, err := resolveIn(schema, rel, w.Col)
			if err != nil {
				return nil, err
			}
			// Literal re-typing against the column (the old inline block)
			// is the optimizer's retype pass now; the compiler only
			// resolves names.
			preds = append(preds, table.Pred{Col: col, Op: w.Op, Val: w.Val})
		}
		cur = &logical.Node{Op: logical.OpFilter, Preds: preds, In: []*logical.Node{cur}}
	}

	hasAgg := false
	for _, item := range stmt.Items {
		if item.IsAgg {
			hasAgg = true
			break
		}
	}

	switch {
	case hasAgg:
		groupBy := make([]string, 0, len(stmt.GroupBy))
		for _, g := range stmt.GroupBy {
			col, err := resolveIn(schema, rel, g)
			if err != nil {
				return nil, err
			}
			groupBy = append(groupBy, col)
		}
		var aggs []table.Agg
		for _, item := range stmt.Items {
			if !item.IsAgg {
				col, err := resolveIn(schema, rel, item.Col)
				if err != nil {
					return nil, err
				}
				if !contains(groupBy, col) {
					return nil, fmt.Errorf("%w: non-aggregated column %s outside GROUP BY", ErrUnsupported, col)
				}
				continue
			}
			agg := table.Agg{Func: item.Agg, As: item.As}
			if !item.Star {
				col, err := resolveIn(schema, rel, item.Col)
				if err != nil {
					return nil, err
				}
				agg.Col = col
			}
			aggs = append(aggs, agg)
		}
		cur = &logical.Node{Op: logical.OpAggregate, GroupBy: groupBy, Aggs: aggs, In: []*logical.Node{cur}}
		schema = table.AggregateSchema(schema, groupBy, aggs)
		rel += "_agg"
	case len(stmt.GroupBy) > 0:
		return nil, fmt.Errorf("%w: GROUP BY without aggregates", ErrUnsupported)
	default:
		star := len(stmt.Items) == 1 && stmt.Items[0].Star
		if !star {
			cols := make([]string, 0, len(stmt.Items))
			aliases := make([]string, 0, len(stmt.Items))
			aliased := false
			out := make(table.Schema, 0, len(stmt.Items))
			for _, item := range stmt.Items {
				col, err := resolveIn(schema, rel, item.Col)
				if err != nil {
					return nil, err
				}
				cols = append(cols, col)
				aliases = append(aliases, item.As)
				sc := schema[schema.ColIndex(col)]
				if item.As != "" {
					aliased = true
					sc.Name = item.As
				}
				out = append(out, sc)
			}
			node := &logical.Node{Op: logical.OpProject, Proj: cols, In: []*logical.Node{cur}}
			if aliased {
				node.Aliases = aliases
			}
			cur = node
			schema = out
		}
	}

	if stmt.Distinct {
		cur = &logical.Node{Op: logical.OpDistinct, In: []*logical.Node{cur}}
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]table.SortKey, 0, len(stmt.OrderBy))
		for _, k := range stmt.OrderBy {
			col, err := resolveIn(schema, rel, k.Col)
			if err != nil {
				return nil, err
			}
			keys = append(keys, table.SortKey{Col: col, Desc: k.Desc})
		}
		cur = &logical.Node{Op: logical.OpSort, Keys: keys, In: []*logical.Node{cur}}
	}
	if stmt.Limit > 0 {
		cur = &logical.Node{Op: logical.OpLimit, N: stmt.Limit, In: []*logical.Node{cur}}
	}
	return cur, nil
}

// resolveIn maps a possibly table-qualified column reference to the
// schema's column name: "t.col" matches "col" or the join-renamed
// "t.col" form; bare "col" matches case-insensitively.
func resolveIn(schema table.Schema, rel, ref string) (string, error) {
	if idx := schema.ColIndex(ref); idx >= 0 {
		return schema[idx].Name, nil
	}
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		bare := ref[i+1:]
		if idx := schema.ColIndex(bare); idx >= 0 {
			return schema[idx].Name, nil
		}
	}
	return "", fmt.Errorf("%w: %s in %s(%s)", ErrBadColumn, ref, rel, strings.Join(schema.Names(), ","))
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
