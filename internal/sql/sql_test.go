package sql

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func testCatalog() *table.Catalog {
	c := table.NewCatalog()
	sales := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "quarter", Type: table.TypeString},
		{Name: "revenue", Type: table.TypeFloat},
		{Name: "units", Type: table.TypeInt},
	})
	sales.MustAppend([]table.Value{table.S("Alpha"), table.S("Q1"), table.F(100), table.I(10)})
	sales.MustAppend([]table.Value{table.S("Alpha"), table.S("Q2"), table.F(120), table.I(12)})
	sales.MustAppend([]table.Value{table.S("Beta"), table.S("Q1"), table.F(80), table.I(8)})
	sales.MustAppend([]table.Value{table.S("Beta"), table.S("Q2"), table.F(60), table.I(6)})
	c.Put(sales)

	products := table.New("products", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "maker", Type: table.TypeString},
	})
	products.MustAppend([]table.Value{table.S("Alpha"), table.S("Acme")})
	products.MustAppend([]table.Value{table.S("Beta"), table.S("Globex")})
	c.Put(products)
	return c
}

func mustExec(t *testing.T, q string) *table.Table {
	t.Helper()
	res, err := Exec(testCatalog(), q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	res := mustExec(t, "SELECT * FROM sales")
	if res.Len() != 4 || len(res.Schema) != 4 {
		t.Errorf("result:\n%s", res)
	}
}

func TestSelectProjection(t *testing.T) {
	res := mustExec(t, "SELECT product, revenue FROM sales")
	if len(res.Schema) != 2 || res.Schema[0].Name != "product" {
		t.Errorf("schema = %v", res.Schema.Names())
	}
}

func TestSelectAlias(t *testing.T) {
	res := mustExec(t, "SELECT revenue AS rev FROM sales LIMIT 1")
	if res.Schema[0].Name != "rev" {
		t.Errorf("alias = %v", res.Schema.Names())
	}
}

func TestWhere(t *testing.T) {
	res := mustExec(t, "SELECT * FROM sales WHERE quarter = 'Q2' AND revenue > 100")
	if res.Len() != 1 || res.Rows[0][0].Str() != "Alpha" {
		t.Errorf("result:\n%s", res)
	}
}

func TestWhereOperators(t *testing.T) {
	cases := map[string]int{
		"SELECT * FROM sales WHERE revenue >= 100":         2,
		"SELECT * FROM sales WHERE revenue < 80":           1,
		"SELECT * FROM sales WHERE revenue != 60":          3,
		"SELECT * FROM sales WHERE product CONTAINS 'alp'": 2,
		"SELECT * FROM sales WHERE units <= 8":             2,
	}
	for q, want := range cases {
		if res := mustExec(t, q); res.Len() != want {
			t.Errorf("%q: %d rows, want %d", q, res.Len(), want)
		}
	}
}

func TestWhereLiteralRetyping(t *testing.T) {
	// Integer literal against a float column must still match.
	res := mustExec(t, "SELECT * FROM sales WHERE revenue = 120")
	if res.Len() != 1 {
		t.Errorf("retyping failed: %d rows", res.Len())
	}
}

func TestGlobalAggregate(t *testing.T) {
	res := mustExec(t, "SELECT SUM(revenue) AS total, COUNT(*) AS n FROM sales")
	if res.Len() != 1 || res.Rows[0][0].Float() != 360 || res.Rows[0][1].Int() != 4 {
		t.Errorf("result:\n%s", res)
	}
}

func TestGroupBy(t *testing.T) {
	res := mustExec(t, "SELECT product, SUM(revenue) AS total FROM sales GROUP BY product ORDER BY total DESC")
	if res.Len() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	if res.Rows[0][0].Str() != "Alpha" || res.Rows[0][1].Float() != 220 {
		t.Errorf("first group: %v", res.Rows[0])
	}
}

func TestJoin(t *testing.T) {
	res := mustExec(t, "SELECT maker, SUM(revenue) AS total FROM sales JOIN products ON sales.product = products.product GROUP BY maker ORDER BY maker")
	if res.Len() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	if res.Rows[0][0].Str() != "Acme" || res.Rows[0][1].Float() != 220 {
		t.Errorf("join agg: %v", res.Rows[0])
	}
}

func TestInnerJoinKeyword(t *testing.T) {
	res := mustExec(t, "SELECT * FROM sales INNER JOIN products ON sales.product = products.product")
	if res.Len() != 4 {
		t.Errorf("inner join rows = %d", res.Len())
	}
}

func TestDistinct(t *testing.T) {
	res := mustExec(t, "SELECT DISTINCT product FROM sales")
	if res.Len() != 2 {
		t.Errorf("distinct rows = %d", res.Len())
	}
}

func TestOrderByMultiKey(t *testing.T) {
	res := mustExec(t, "SELECT * FROM sales ORDER BY quarter, revenue DESC")
	if res.Rows[0][1].Str() != "Q1" || res.Rows[0][2].Float() != 100 {
		t.Errorf("first row: %v", res.Rows[0])
	}
}

func TestLimit(t *testing.T) {
	if res := mustExec(t, "SELECT * FROM sales LIMIT 2"); res.Len() != 2 {
		t.Errorf("limit rows = %d", res.Len())
	}
}

func TestTrailingSemicolon(t *testing.T) {
	if res := mustExec(t, "SELECT * FROM sales;"); res.Len() != 4 {
		t.Error("semicolon handling broken")
	}
}

func TestStringEscapes(t *testing.T) {
	c := table.NewCatalog()
	tbl := table.New("t", table.Schema{{Name: "s", Type: table.TypeString}})
	tbl.MustAppend([]table.Value{table.S("it's")})
	c.Put(tbl)
	res, err := Exec(c, "SELECT * FROM t WHERE s = 'it''s'")
	if err != nil || res.Len() != 1 {
		t.Errorf("escape: %v %v", err, res)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM sales",
		"SELECT * FROM",
		"SELECT * FROM sales WHERE",
		"SELECT * FROM sales WHERE revenue",
		"SELECT * FROM sales WHERE revenue ~ 5",
		"SELECT * FROM sales LIMIT x",
		"SELECT * FROM sales GARBAGE",
		"SELECT SUM( FROM sales",
		"SELECT * FROM sales WHERE s = 'unterminated",
		"UPDATE sales SET revenue = 0",
	}
	for _, q := range bad {
		if _, err := Exec(testCatalog(), q); err == nil {
			t.Errorf("%q: accepted", q)
		}
	}
}

func TestSemanticsErrors(t *testing.T) {
	if _, err := Exec(testCatalog(), "SELECT ghost FROM sales"); !errors.Is(err, ErrBadColumn) {
		t.Errorf("bad column: %v", err)
	}
	if _, err := Exec(testCatalog(), "SELECT * FROM ghost"); !errors.Is(err, table.ErrNoTable) {
		t.Errorf("bad table: %v", err)
	}
	if _, err := Exec(testCatalog(), "SELECT product FROM sales GROUP BY quarter"); !errors.Is(err, ErrUnsupported) {
		t.Errorf("non-grouped column: %v", err)
	}
	if _, err := Exec(testCatalog(), "SELECT product FROM sales JOIN ghost ON sales.product = ghost.product"); err == nil {
		t.Error("bad join table accepted")
	}
}

func TestQualifiedColumns(t *testing.T) {
	res := mustExec(t, "SELECT sales.product FROM sales WHERE sales.revenue > 100")
	if res.Len() != 1 {
		t.Errorf("qualified: %d rows", res.Len())
	}
}

func TestParserNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		// Any input either parses or errors; never panics.
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := lex("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 7 {
		t.Errorf("positions: %+v", toks[:2])
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	res := mustExec(t, "SELECT * FROM sales WHERE revenue > -10")
	if res.Len() != 4 {
		t.Errorf("negative literal: %d rows", res.Len())
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	c := table.NewCatalog()
	tbl := table.New("t", table.Schema{{Name: "x", Type: table.TypeFloat}})
	tbl.MustAppend([]table.Value{table.F(1)})
	tbl.MustAppend([]table.Value{table.Null(table.TypeFloat)})
	c.Put(tbl)
	res, err := Exec(c, "SELECT COUNT(x) AS cx, COUNT(*) AS call FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 || res.Rows[0][1].Int() != 2 {
		t.Errorf("counts: %v", res.Rows[0])
	}
}

func TestRoundTripThroughString(t *testing.T) {
	// Render a statement's result and sanity-check shape.
	res := mustExec(t, "SELECT product, AVG(units) AS avg_units FROM sales GROUP BY product")
	s := res.String()
	if !strings.Contains(s, "avg_units") {
		t.Errorf("render:\n%s", s)
	}
}

func TestRowsRange(t *testing.T) {
	// ROWS a TO b restricts the FROM table to physical rows [a, b) —
	// the clause the federated SQL backend renders fragment-ranged
	// scans with.
	res := mustExec(t, "SELECT product FROM sales ROWS 1 TO 3")
	if res.Len() != 2 {
		t.Fatalf("ROWS 1 TO 3 returned %d rows, want 2", res.Len())
	}
	if res.Rows[0][0].Str() != "Alpha" || res.Rows[1][0].Str() != "Beta" {
		t.Errorf("ROWS slice returned wrong rows:\n%s", res)
	}
	// Out-of-bounds ranges clamp.
	if res := mustExec(t, "SELECT * FROM sales ROWS 2 TO 99"); res.Len() != 2 {
		t.Errorf("clamped range returned %d rows, want 2", res.Len())
	}
	// Composes with WHERE and aggregation over the sliced rows only.
	res = mustExec(t, "SELECT SUM(revenue) AS total FROM sales ROWS 0 TO 2 WHERE product = 'Alpha'")
	if res.Len() != 1 || res.Rows[0][0].Float() != 220 {
		t.Errorf("ranged aggregate:\n%s", res)
	}
}

func TestRowsRangeErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT * FROM sales ROWS 3 TO 3",
		"SELECT * FROM sales ROWS 4 TO 2",
		"SELECT * FROM sales ROWS x TO 2",
		"SELECT * FROM sales ROWS 1 2",
	} {
		if _, err := Exec(testCatalog(), q); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
}
