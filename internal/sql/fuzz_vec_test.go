package sql

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/table"
)

// FuzzVecParity drives arbitrary SQL through both executors — the row
// interpreter and the vectorized columnar engine — and requires them
// to agree bit-exactly: same error outcome, same schema, same row
// order, same cell values at one worker and several. Every operator
// the SQL surface can produce has a columnar kernel (ORDER BY included
// since the sort kernel landed), so a compiled plan that reports
// itself non-vectorizable is itself a failure. The second fuzz input
// derives a Compare plan — the NL-entry comparison shape SQL cannot
// spell — over the fuzzed item list, covering the compare kernel's
// branch reassembly, empty branches and the no-item error.
func FuzzVecParity(f *testing.F) {
	seeds := []struct{ query, items string }{
		{"SELECT * FROM sales", ""},
		{"SELECT product, revenue FROM sales WHERE revenue > 90", ""},
		{"SELECT * FROM sales WHERE product CONTAINS 'ALP' AND units >= 10", ""},
		{"SELECT SUM(units) AS result FROM sales WHERE product = 'Alpha' AND quarter = 'Q2'", ""},
		{"SELECT product, AVG(revenue), MIN(units), MAX(units), COUNT(revenue) FROM sales GROUP BY product", ""},
		{"SELECT DISTINCT quarter FROM sales", ""},
		{"SELECT COUNT(*) FROM sales JOIN products ON sales.product = products.product WHERE maker = 'Acme'", ""},
		{"SELECT products.product, SUM(revenue) AS r FROM sales JOIN products ON sales.product = products.product GROUP BY products.product", ""},
		{"SELECT revenue FROM sales WHERE revenue = '120'", ""},
		{"SELECT units FROM sales WHERE units >= 10.5", ""},
		{"SELECT * FROM sales LIMIT 3", ""},
		{"SELECT nope FROM sales WHERE units > 0", ""},
		{"SELECT product FROM sales ORDER BY product", ""},
		{"SELECT product, revenue FROM sales ORDER BY revenue DESC, product", ""},
		{"SELECT * FROM sales WHERE units > 5 ORDER BY quarter, units DESC LIMIT 7", ""},
		{"SELECT product, SUM(revenue) AS r FROM sales GROUP BY product ORDER BY r DESC", ""},
		{"SELECT quarter FROM sales ORDER BY nope", ""},
		{"SELECT FROM WHERE", ""},
		{"", ""},
		{"SELECT * FROM sales", "Alpha,Beta"},
		{"", "Alpha,Alpha,no-such-product"},
		{"", "no-such-a,no-such-b"},
		{"", ","},
	}
	for _, s := range seeds {
		f.Add(s.query, s.items)
	}

	f.Fuzz(func(t *testing.T, query, items string) {
		catalog := testCatalog()
		stmt, err := Parse(query)
		if err == nil {
			if node, err := Compile(stmt, catalog); err == nil {
				opt := logical.Optimize(node, logical.CatalogStats(catalog))
				if !logical.Vectorizable(opt.Root) {
					t.Fatalf("compiled plan for %q reports non-vectorizable: %s", query, opt.Root)
				}
				assertVecMatchesRow(t, opt.Root, catalog, query)
			}
		}
		if items != "" {
			// SQL has no comparison syntax; build the NL-entry Compare
			// shape directly over the fuzzed item list.
			cmp := &logical.Node{Op: logical.OpCompare, CompareCol: "product",
				Items: strings.Split(items, ","),
				Aggs: []table.Agg{
					{Func: table.AggSum, Col: "revenue", As: "result"},
					{Func: table.AggCount, Col: "units", As: "n"},
				},
				In: []*logical.Node{{Op: logical.OpScan, Table: "sales"}}}
			opt := logical.Optimize(cmp, logical.CatalogStats(catalog))
			if !logical.Vectorizable(opt.Root) {
				t.Fatalf("compare plan for items %q reports non-vectorizable: %s", items, opt.Root)
			}
			assertVecMatchesRow(t, opt.Root, catalog, "COMPARE "+items)
		}
	})
}

// assertVecMatchesRow executes one optimized tree through both engines
// and fails on any divergence in error outcome or rendered result.
func assertVecMatchesRow(t *testing.T, root *logical.Node, catalog *table.Catalog, label string) {
	t.Helper()
	want, wantErr := logical.Exec(root, catalog)
	for _, workers := range []int{1, 3} {
		got, err := logical.ExecVec(root, catalog, workers)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("executor error outcomes diverge for %q (workers=%d): vec=%v row=%v",
				label, workers, err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if r1, r2 := renderResult(got), renderResult(want); r1 != r2 {
			t.Fatalf("vectorized result diverges for %q (workers=%d):\n%s\nvs\n%s",
				label, workers, r1, r2)
		}
	}
}

// renderResult flattens a table to schema names plus every cell's
// canonical Key(), so equality means bit-identical results.
func renderResult(t *table.Table) string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), ","))
	for _, row := range t.Rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.Key())
		}
	}
	return b.String()
}
