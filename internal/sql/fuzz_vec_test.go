package sql

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/table"
)

// FuzzVecParity drives arbitrary SQL through both executors — the row
// interpreter and the vectorized columnar engine — and requires them
// to agree bit-exactly on every plan whose operators have columnar
// kernels: same error outcome, same schema, same row order, same cell
// values at one worker and several. The seed corpus covers every
// operator with a vectorized kernel (filter shapes across all column
// types and operators, joins, grouped and global aggregates, DISTINCT,
// LIMIT) plus shapes that must take the row fallback.
func FuzzVecParity(f *testing.F) {
	seeds := []string{
		"SELECT * FROM sales",
		"SELECT product, revenue FROM sales WHERE revenue > 90",
		"SELECT * FROM sales WHERE product CONTAINS 'ALP' AND units >= 10",
		"SELECT SUM(units) AS result FROM sales WHERE product = 'Alpha' AND quarter = 'Q2'",
		"SELECT product, AVG(revenue), MIN(units), MAX(units), COUNT(revenue) FROM sales GROUP BY product",
		"SELECT DISTINCT quarter FROM sales",
		"SELECT COUNT(*) FROM sales JOIN products ON sales.product = products.product WHERE maker = 'Acme'",
		"SELECT products.product, SUM(revenue) AS r FROM sales JOIN products ON sales.product = products.product GROUP BY products.product",
		"SELECT revenue FROM sales WHERE revenue = '120'",
		"SELECT units FROM sales WHERE units >= 10.5",
		"SELECT * FROM sales LIMIT 3",
		"SELECT nope FROM sales WHERE units > 0",
		"SELECT product FROM sales ORDER BY product", // Sort: row fallback
		"SELECT FROM WHERE",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, query string) {
		catalog := testCatalog()
		stmt, err := Parse(query)
		if err != nil {
			return
		}
		node, err := Compile(stmt, catalog)
		if err != nil {
			return
		}
		opt := logical.Optimize(node, logical.CatalogStats(catalog))
		if !logical.Vectorizable(opt.Root) {
			return // row fallback; covered by FuzzParseCompileExec
		}
		want, wantErr := logical.Exec(opt.Root, catalog)
		for _, workers := range []int{1, 3} {
			got, err := logical.ExecVec(opt.Root, catalog, workers)
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("executor error outcomes diverge for %q (workers=%d): vec=%v row=%v",
					query, workers, err, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if r1, r2 := renderResult(got), renderResult(want); r1 != r2 {
				t.Fatalf("vectorized result diverges for %q (workers=%d):\n%s\nvs\n%s",
					query, workers, r1, r2)
			}
		}
	})
}

// renderResult flattens a table to schema names plus every cell's
// canonical Key(), so equality means bit-identical results.
func renderResult(t *table.Table) string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Schema.Names(), ","))
	for _, row := range t.Rows {
		b.WriteByte('\n')
		for i, v := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(v.Key())
		}
	}
	return b.String()
}
