package sql

import (
	"errors"

	"repro/internal/logical"
	"repro/internal/table"
)

// Sentinel execution errors.
var (
	ErrUnsupported = errors.New("sql: unsupported construct")
	ErrBadColumn   = errors.New("sql: unknown column")
)

// Exec parses and executes one SELECT statement against the catalog.
func Exec(catalog *table.Catalog, query string) (*table.Table, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecStmt(catalog, stmt)
}

// ExecStmt executes a parsed statement: compile to the shared logical
// IR, run the rule passes (literal re-typing, pushdown, pruning), and
// interpret through internal/logical's single operator loop. The
// duplicate SQL interpreter this package used to carry is gone — SQL
// and natural-language queries execute through the same algebra.
func ExecStmt(catalog *table.Catalog, stmt *Stmt) (*table.Table, error) {
	node, err := Compile(stmt, catalog)
	if err != nil {
		return nil, err
	}
	opt := logical.Optimize(node, logical.CatalogStats(catalog))
	return logical.Exec(opt.Root, catalog)
}
