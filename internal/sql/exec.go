package sql

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/table"
)

// Sentinel execution errors.
var (
	ErrUnsupported = errors.New("sql: unsupported construct")
	ErrBadColumn   = errors.New("sql: unknown column")
)

// Exec parses and executes one SELECT statement against the catalog.
func Exec(catalog *table.Catalog, query string) (*table.Table, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return ExecStmt(catalog, stmt)
}

// ExecStmt executes a parsed statement.
func ExecStmt(catalog *table.Catalog, stmt *Stmt) (*table.Table, error) {
	cur, err := catalog.Get(stmt.From)
	if err != nil {
		return nil, err
	}

	if stmt.Join != nil {
		right, err := catalog.Get(stmt.Join.Table)
		if err != nil {
			return nil, err
		}
		leftCol, err := resolveCol(cur, stmt.Join.LeftCol)
		if err != nil {
			return nil, err
		}
		rightCol, err := resolveCol(right, stmt.Join.RightCol)
		if err != nil {
			return nil, err
		}
		cur, err = table.HashJoin(cur, right, leftCol, rightCol)
		if err != nil {
			return nil, err
		}
	}

	if len(stmt.Wheres) > 0 {
		preds := make([]table.Pred, 0, len(stmt.Wheres))
		for _, w := range stmt.Wheres {
			col, err := resolveCol(cur, w.Col)
			if err != nil {
				return nil, err
			}
			val := w.Val
			// Re-type numeric literals against the column so "= 20"
			// matches a float column and "= '5'" a string column.
			if idx := cur.Schema.ColIndex(col); idx >= 0 && !val.IsNull() {
				want := cur.Schema[idx].Type
				if val.Kind() != want && !(val.IsNumeric() && (want == table.TypeInt || want == table.TypeFloat)) {
					if parsed, perr := table.Parse(want, val.String()); perr == nil {
						val = parsed
					}
				}
			}
			preds = append(preds, table.Pred{Col: col, Op: w.Op, Val: val})
		}
		cur, err = table.Filter(cur, preds...)
		if err != nil {
			return nil, err
		}
	}

	hasAgg := false
	for _, item := range stmt.Items {
		if item.IsAgg {
			hasAgg = true
			break
		}
	}

	switch {
	case hasAgg:
		cur, err = execAggregate(cur, stmt)
		if err != nil {
			return nil, err
		}
	case len(stmt.GroupBy) > 0:
		return nil, fmt.Errorf("%w: GROUP BY without aggregates", ErrUnsupported)
	default:
		// Plain projection unless SELECT *.
		star := len(stmt.Items) == 1 && stmt.Items[0].Star
		if !star {
			cols := make([]string, 0, len(stmt.Items))
			for _, item := range stmt.Items {
				col, err := resolveCol(cur, item.Col)
				if err != nil {
					return nil, err
				}
				cols = append(cols, col)
			}
			cur, err = table.Project(cur, cols...)
			if err != nil {
				return nil, err
			}
			// Apply aliases.
			for i, item := range stmt.Items {
				if item.As != "" && i < len(cur.Schema) {
					cur.Schema[i].Name = item.As
				}
			}
		}
	}

	if stmt.Distinct {
		cur = table.Distinct(cur)
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]table.SortKey, 0, len(stmt.OrderBy))
		for _, k := range stmt.OrderBy {
			col, err := resolveCol(cur, k.Col)
			if err != nil {
				return nil, err
			}
			keys = append(keys, table.SortKey{Col: col, Desc: k.Desc})
		}
		cur, err = table.Sort(cur, keys...)
		if err != nil {
			return nil, err
		}
	}
	if stmt.Limit > 0 {
		cur = table.Limit(cur, stmt.Limit)
	}
	return cur, nil
}

func execAggregate(cur *table.Table, stmt *Stmt) (*table.Table, error) {
	groupBy := make([]string, 0, len(stmt.GroupBy))
	for _, g := range stmt.GroupBy {
		col, err := resolveCol(cur, g)
		if err != nil {
			return nil, err
		}
		groupBy = append(groupBy, col)
	}
	var aggs []table.Agg
	for _, item := range stmt.Items {
		if !item.IsAgg {
			// Non-aggregate items must be group keys; validated by the
			// table engine when projecting group columns.
			col, err := resolveCol(cur, item.Col)
			if err != nil {
				return nil, err
			}
			if !contains(groupBy, col) {
				return nil, fmt.Errorf("%w: non-aggregated column %s outside GROUP BY", ErrUnsupported, col)
			}
			continue
		}
		agg := table.Agg{Func: item.Agg, As: item.As}
		if !item.Star {
			col, err := resolveCol(cur, item.Col)
			if err != nil {
				return nil, err
			}
			agg.Col = col
		}
		aggs = append(aggs, agg)
	}
	return table.Aggregate(cur, groupBy, aggs)
}

// resolveCol maps a possibly table-qualified column reference to the
// schema's column name: "t.col" matches "col" or the join-renamed
// "t.col" form; bare "col" matches case-insensitively.
func resolveCol(t *table.Table, ref string) (string, error) {
	if t.Schema.ColIndex(ref) >= 0 {
		return schemaName(t, ref), nil
	}
	if idx := strings.IndexByte(ref, '.'); idx >= 0 {
		bare := ref[idx+1:]
		if t.Schema.ColIndex(bare) >= 0 {
			return schemaName(t, bare), nil
		}
	}
	return "", fmt.Errorf("%w: %s in %s(%s)", ErrBadColumn, ref, t.Name, strings.Join(t.Schema.Names(), ","))
}

func schemaName(t *table.Table, ref string) string {
	return t.Schema[t.Schema.ColIndex(ref)].Name
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
