// Package sql implements a small SQL dialect over the table engine:
//
//	SELECT [DISTINCT] cols | agg(col) [AS name] ...
//	FROM table [ROWS a TO b]
//	[JOIN table2 ON t1.col = t2.col]
//	[WHERE pred [AND pred]...]
//	[GROUP BY col, ...]
//	[ORDER BY col [DESC], ...]
//	[LIMIT n]
//
// The dialect is the target language of Semantic Operator Synthesis:
// semop plans render to SQL (Plan.ToSQL in internal/semop) and this
// package parses and executes that SQL against a table.Catalog, so the
// Text-to-SQL baseline is a genuine text→SQL→execution pipeline rather
// than an in-memory shortcut.
package sql

import (
	"fmt"
	"strings"
)

// tokKind classifies a lexer token.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved words, upper-cased
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AND": true, "AS": true, "DESC": true,
	"ASC": true, "JOIN": true, "ON": true, "DISTINCT": true, "COUNT": true,
	"SUM": true, "AVG": true, "MIN": true, "MAX": true, "CONTAINS": true,
	"NOT": true, "NULL": true, "TRUE": true, "FALSE": true, "INNER": true,
	"ROWS": true, "TO": true,
}

// lex tokenizes a SQL string. Errors carry byte positions.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			i++
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at byte %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			text := input[start:i]
			upper := strings.ToUpper(text)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: text, pos: start})
			}
		case c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			}
			toks = append(toks, token{kind: tokSymbol, text: input[start:i], pos: start})
		case c == '=' || c == '(' || c == ')' || c == ',' || c == '*' || c == '.' || c == ';':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at byte %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
