package sql

import (
	"testing"

	"repro/internal/logical"
)

// FuzzParseCompileExec drives arbitrary input through the full SQL
// entry path — lex → parse → compile-to-IR → optimize → interpret —
// and checks the invariants that must hold for any input:
//
//   - nothing panics, whatever the bytes;
//   - a statement that parses either compiles or fails with a typed
//     error, never a malformed tree;
//   - the pipeline is deterministic: a second run produces the same
//     optimized fingerprint and the same rows.
//
// CI runs this as a short -fuzztime smoke; the seed corpus covers
// every production the parser knows.
func FuzzParseCompileExec(f *testing.F) {
	seeds := []string{
		"SELECT * FROM sales",
		"SELECT product, revenue AS rev FROM sales WHERE revenue > 90 ORDER BY rev DESC LIMIT 2",
		"SELECT SUM(units) AS result FROM sales WHERE product = 'Alpha' AND quarter = 'Q2'",
		"SELECT product, AVG(revenue) FROM sales GROUP BY product ORDER BY product",
		"SELECT DISTINCT quarter FROM sales",
		"SELECT COUNT(*) FROM sales JOIN products ON sales.product = products.product WHERE maker = 'Acme'",
		"SELECT products.product, SUM(revenue) AS r FROM sales JOIN products ON sales.product = products.product GROUP BY products.product",
		"SELECT maker FROM products WHERE product CONTAINS 'alp'",
		"SELECT revenue FROM sales WHERE revenue = '120'",
		"SELECT units FROM sales WHERE units >= 10 AND units <= 12;",
		"SELECT nope FROM sales",
		"SELECT * FROM missing_table",
		"SELECT product FROM sales GROUP BY product",
		"SELECT FROM WHERE",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, query string) {
		catalog := testCatalog()
		stmt, err := Parse(query)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		node, err := Compile(stmt, catalog)
		if err != nil {
			return
		}
		opt := logical.Optimize(node, logical.CatalogStats(catalog))
		res, err := logical.Exec(opt.Root, catalog)

		// Soundness: the rule passes may change which rows match (retype
		// fixes literal typing) but must never turn an executable plan
		// into a failing one — a pruned column or broken join rename
		// shows up here as an optimized-only error.
		if _, plainErr := logical.Exec(node, catalog); plainErr == nil && err != nil {
			t.Fatalf("optimizer broke an executable plan for %q: %v\ntrace: %v", query, err, opt.Trace)
		}

		// Determinism: recompiling and re-running the same statement
		// must reproduce the fingerprint and the exact result.
		node2, err2 := Compile(stmt, catalog)
		if err2 != nil {
			t.Fatalf("compile succeeded then failed: %v", err2)
		}
		opt2 := logical.Optimize(node2, logical.CatalogStats(catalog))
		if logical.Fingerprint(opt.Root) != logical.Fingerprint(opt2.Root) {
			t.Fatalf("fingerprint not deterministic for %q", query)
		}
		res2, errB := logical.Exec(opt2.Root, catalog)
		if (err == nil) != (errB == nil) {
			t.Fatalf("execution determinism broke for %q: %v vs %v", query, err, errB)
		}
		if err == nil {
			if res.Len() != res2.Len() || len(res.Schema) != len(res2.Schema) {
				t.Fatalf("result shape not deterministic for %q", query)
			}
		}
	})
}
