package fault

import (
	"errors"
	"testing"
	"time"
)

func TestTaxonomy(t *testing.T) {
	base := errors.New("boom")
	if IsTransient(base) {
		t.Error("unclassified error reported transient; must default permanent")
	}
	if !IsTransient(Transient(base)) {
		t.Error("Transient() not recognized")
	}
	if IsTransient(Permanent(base)) {
		t.Error("Permanent() reported transient")
	}
	// Classification survives wrapping and exposes the cause.
	wrapped := errors.Join(errors.New("ctx"), Transient(base))
	if !IsTransient(wrapped) {
		t.Error("transient classification lost through wrapping")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Unwrap broken: errors.Is cannot reach the cause")
	}
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Error("wrapping nil must stay nil")
	}
	if got := Transient(base).Error(); got != "transient: boom" {
		t.Errorf("Error() = %q", got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := Policy{MaxRetries: 5, Base: time.Millisecond, Cap: 5 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		5 * time.Millisecond, // capped
		5 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	if got := (Policy{}).Backoff(3); got != 0 {
		t.Errorf("zero-policy backoff = %v, want 0", got)
	}
}

func TestFakeClockRecords(t *testing.T) {
	c := NewFakeClock()
	c.Sleep(time.Second)
	c.Sleep(2 * time.Second)
	if got := c.Sleeps(); len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Errorf("Sleeps() = %v", got)
	}
	if c.Total() != 3*time.Second {
		t.Errorf("Total() = %v, want 3s", c.Total())
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, "sales") != Hash64(1, "sales") {
		t.Error("Hash64 not deterministic")
	}
	if Hash64(1, "sales") == Hash64(2, "sales") {
		t.Error("seed not mixed in")
	}
	if Hash64(1, "sales") == Hash64(1, "sales2") {
		t.Error("identity not mixed in")
	}
	// Cheap uniformity sanity: low bit should flip across identities.
	ones := 0
	for i := 0; i < 64; i++ {
		if Hash64(7, string(rune('a'+i)))&1 == 1 {
			ones++
		}
	}
	if ones < 16 || ones > 48 {
		t.Errorf("low-bit balance %d/64 looks degenerate", ones)
	}
}
