// Package fault is the failure vocabulary of the federated execution
// layer: a transient-vs-permanent error taxonomy, a capped
// exponential-backoff retry policy, and an injectable clock so retry
// schedules are testable without real sleeps. It also provides the
// deterministic seeded hashing the chaos backend wrapper derives its
// fault schedules from, keeping injected failures a pure function of
// (seed, identity, attempt) — never of goroutine scheduling or wall
// time.
//
// The taxonomy is deliberately conservative: an error is transient
// only when something explicitly marked it so (a backend that knows a
// timeout is retryable, the chaos injector). Everything else —
// including plain errors from an engine that has never heard of this
// package — classifies permanent, so a retry loop can never spin on a
// deterministic failure like an unknown column.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ScanError classifies one backend failure. Transient failures
// (connection blips, injected chaos, overload shedding) are worth
// retrying; permanent failures (bad fragment, missing table, engine
// bug) never succeed on retry and instead trigger failover.
type ScanError struct {
	Err       error
	Transient bool
}

// Error implements error.
func (e *ScanError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("%s: %v", kind, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ScanError) Unwrap() error { return e.Err }

// Transient wraps err as a retryable failure.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &ScanError{Err: err, Transient: true}
}

// Permanent wraps err as a non-retryable failure.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &ScanError{Err: err, Transient: false}
}

// IsTransient reports whether err is marked retryable anywhere in its
// chain. Unclassified errors are permanent: retrying a failure nobody
// vouched for wastes the retry budget on deterministic errors.
func IsTransient(err error) bool {
	var se *ScanError
	if errors.As(err, &se) {
		return se.Transient
	}
	return false
}

// Policy is a capped exponential-backoff retry schedule: attempt n
// (0-based) sleeps Base<<n, capped at Cap, before retrying; at most
// MaxRetries retries follow the initial attempt.
type Policy struct {
	MaxRetries int
	Base       time.Duration
	Cap        time.Duration
}

// DefaultPolicy is the executor's standard schedule: three retries at
// 1ms/2ms/4ms. Short enough that a permanently-down backend fails over
// quickly, long enough to ride out scheduling blips.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 3, Base: time.Millisecond, Cap: 20 * time.Millisecond}
}

// Backoff returns the delay before retry attempt n (0-based).
func (p Policy) Backoff(attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			return p.Cap
		}
	}
	if p.Cap > 0 && d > p.Cap {
		return p.Cap
	}
	return d
}

// Clock abstracts the sleeps the retry loop takes between attempts, so
// tests inject a recording fake and never block on real time.
type Clock interface {
	Sleep(d time.Duration)
}

// realClock sleeps on the wall clock.
type realClock struct{}

// Sleep implements Clock.
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock returns the wall-clock implementation.
func RealClock() Clock { return realClock{} }

// FakeClock records requested sleeps and returns immediately — the
// clock every test injects so seeded fault runs finish in microseconds
// regardless of how much backoff they schedule.
type FakeClock struct {
	mu    sync.Mutex
	slept []time.Duration // guarded by mu
}

// NewFakeClock returns an empty recording clock.
func NewFakeClock() *FakeClock { return &FakeClock{} }

// Sleep implements Clock: it records d and returns immediately.
func (f *FakeClock) Sleep(d time.Duration) {
	f.mu.Lock()
	f.slept = append(f.slept, d)
	f.mu.Unlock()
}

// Sleeps returns a copy of every recorded sleep, in call order.
func (f *FakeClock) Sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// Total returns the summed virtual time slept.
func (f *FakeClock) Total() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var t time.Duration
	for _, d := range f.slept {
		t += d
	}
	return t
}

// Hash64 mixes a seed and a string into a uniform 64-bit value
// (FNV-1a folded through a splitmix64 finalizer). It is the primitive
// behind seeded chaos schedules: the same (seed, identity) always maps
// to the same faults, on any machine, at any worker count.
func Hash64(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// splitmix64 finalizer: avalanche the FNV state so nearby
	// identities decorrelate.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
