package store

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/table"
)

func TestTextStore(t *testing.T) {
	s := NewTextStore("notes")
	s.Add("n1", "Patient reported fatigue.")
	s.Add("n2", "Dose was increased.")
	s.Add("n1", "Patient reported severe fatigue.") // replace

	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Kind() != KindText || s.Name() != "notes" {
		t.Error("metadata wrong")
	}
	recs := s.Records()
	if len(recs) != 2 || recs[0].ID != "n1" {
		t.Fatalf("records = %v", recs)
	}
	if !strings.Contains(recs[0].Text, "severe") {
		t.Error("replacement not applied")
	}
	if txt, ok := s.Doc("n2"); !ok || txt != "Dose was increased." {
		t.Errorf("Doc = %q %v", txt, ok)
	}
	if _, ok := s.Doc("missing"); ok {
		t.Error("missing doc found")
	}
}

func TestJSONStoreLoadLines(t *testing.T) {
	input := `{"id":"e1","level":"error","latency_ms":120,"ctx":{"region":"eu","retry":true}}
{"id":"e2","level":"info","latency_ms":8.5,"tags":["a","b"]}`
	s := NewJSONStore("logs")
	if err := s.LoadLines(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	recs := s.Records()
	if recs[0].ID != "logs/e1" {
		t.Errorf("id = %q", recs[0].ID)
	}
	f := recs[0].Fields
	if f["ctx.region"] != "eu" || f["ctx.retry"] != "true" || f["latency_ms"] != "120" {
		t.Errorf("fields = %v", f)
	}
	if recs[1].Fields["tags[0]"] != "a" {
		t.Errorf("array flatten: %v", recs[1].Fields)
	}
	if recs[1].Fields["latency_ms"] != "8.5" {
		t.Errorf("float format: %v", recs[1].Fields["latency_ms"])
	}
	if !strings.Contains(recs[0].Text, "level is error") {
		t.Errorf("text render: %q", recs[0].Text)
	}
}

func TestJSONStoreParseError(t *testing.T) {
	s := NewJSONStore("bad")
	err := s.LoadLines(strings.NewReader(`{"ok":1}` + "\n" + `{broken`))
	if !errors.Is(err, ErrParse) {
		t.Errorf("err = %v", err)
	}
}

func TestJSONStoreNullField(t *testing.T) {
	s := NewJSONStore("logs")
	if err := s.LoadLines(strings.NewReader(`{"a":null,"b":1}`)); err != nil {
		t.Fatal(err)
	}
	rec := s.Records()[0]
	if v, ok := rec.Fields["a"]; !ok || v != "" {
		t.Errorf("null field: %v", rec.Fields)
	}
	if strings.Contains(rec.Text, "a is") {
		t.Errorf("empty field rendered: %q", rec.Text)
	}
}

func TestXMLStore(t *testing.T) {
	input := `<config>
  <service id="svc1"><host>db1.local</host><port>5432</port></service>
  <service id="svc2"><host>db2.local</host><port>5433</port></service>
</config>`
	s := NewXMLStore("conf")
	if err := s.Load(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d: %v", s.Len(), s.Records())
	}
	recs := s.Records()
	if recs[0].ID != "conf/svc1" {
		t.Errorf("id = %q", recs[0].ID)
	}
	if recs[0].Fields["service.host"] != "db1.local" {
		t.Errorf("fields = %v", recs[0].Fields)
	}
	if recs[0].Fields["service.@id"] != "svc1" {
		t.Errorf("attr flatten: %v", recs[0].Fields)
	}
}

func TestXMLStoreLeafRoot(t *testing.T) {
	s := NewXMLStore("conf")
	if err := s.Load(strings.NewReader(`<flag>enabled</flag>`)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Records()[0].Fields["flag"] != "enabled" {
		t.Errorf("records = %v", s.Records())
	}
}

func TestXMLStoreParseError(t *testing.T) {
	s := NewXMLStore("bad")
	if err := s.Load(strings.NewReader("<unclosed>")); !errors.Is(err, ErrParse) {
		t.Errorf("err = %v", err)
	}
}

func relCatalog(t *testing.T) *table.Catalog {
	t.Helper()
	c := table.NewCatalog()
	tbl := table.New("sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "revenue", Type: table.TypeFloat},
	})
	tbl.MustAppend([]table.Value{table.S("Alpha"), table.F(120)})
	tbl.MustAppend([]table.Value{table.S("Beta"), table.Null(table.TypeFloat)})
	c.Put(tbl)
	return c
}

func TestRelationalStore(t *testing.T) {
	s := NewRelationalStore("db", relCatalog(t))
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	recs := s.Records()
	if recs[0].ID != "db/sales/0" {
		t.Errorf("id = %q", recs[0].ID)
	}
	if recs[0].Fields["product"] != "Alpha" || recs[0].Fields["revenue"] != "120" {
		t.Errorf("fields = %v", recs[0].Fields)
	}
	if _, ok := recs[1].Fields["revenue"]; ok {
		t.Error("null cell should be omitted from fields")
	}
	if s.Catalog() == nil {
		t.Error("catalog accessor nil")
	}
}

func TestMulti(t *testing.T) {
	txt := NewTextStore("notes")
	txt.Add("n1", "text one.")
	rel := NewRelationalStore("db", relCatalog(t))
	m := NewMulti().Add(txt).Add(rel)
	if m.Len() != 3 {
		t.Errorf("multi len = %d", m.Len())
	}
	if len(m.Records()) != 3 {
		t.Errorf("multi records = %d", len(m.Records()))
	}
	if len(m.Sources()) != 2 {
		t.Errorf("sources = %d", len(m.Sources()))
	}
}

func TestFieldsToTextDeterministic(t *testing.T) {
	f := map[string]string{"b": "2", "a": "1", "c": "3"}
	if fieldsToText(f) != fieldsToText(f) {
		t.Error("not deterministic")
	}
	if got := fieldsToText(f); !strings.HasPrefix(got, "a is 1. b is 2") {
		t.Errorf("order: %q", got)
	}
}
