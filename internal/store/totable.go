package store

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// ToTable materializes semi-structured records (JSON logs, XML
// configs) as a typed relation so the TableQA engine can aggregate and
// join over them — the step that makes "semi-structured formats" full
// citizens of the unified query layer rather than retrieval-only text.
//
// The schema is the union of the records' field keys; each column's
// type is inferred from its observed values (int ⊂ float widening,
// anything mixed degrades to string). Missing fields become NULL.
func ToTable(name string, recs []Record) (*table.Table, error) {
	// Union of keys and per-key type votes.
	votes := map[string]map[table.ColType]int{}
	var keys []string
	for _, rec := range recs {
		for k, v := range rec.Fields {
			if votes[k] == nil {
				votes[k] = map[table.ColType]int{}
				keys = append(keys, k)
			}
			if v == "" {
				continue
			}
			votes[k][table.Infer(v)]++
		}
	}
	sort.Strings(keys)

	schema := make(table.Schema, 0, len(keys))
	for _, k := range keys {
		schema = append(schema, table.Column{Name: k, Type: electType(votes[k])})
	}
	t := table.New(name, schema)
	for _, rec := range recs {
		row := make([]table.Value, len(schema))
		for i, col := range schema {
			raw, ok := rec.Fields[col.Name]
			if !ok || raw == "" {
				row[i] = table.Null(col.Type)
				continue
			}
			v, err := table.Parse(col.Type, raw)
			if err != nil {
				// Type election can be defeated by a late outlier;
				// degrade the cell, not the load.
				v = table.Null(col.Type)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, fmt.Errorf("store: materialize %s: %w", name, err)
		}
	}
	return t, nil
}

// electType picks a column type from observed value types: unanimous
// types win; int+float widens to float; any other mixture is string.
func electType(v map[table.ColType]int) table.ColType {
	if len(v) == 0 {
		return table.TypeString
	}
	if len(v) == 1 {
		for t := range v {
			return t
		}
	}
	if len(v) == 2 && v[table.TypeInt] > 0 && v[table.TypeFloat] > 0 {
		return table.TypeFloat
	}
	return table.TypeString
}
