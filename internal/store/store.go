// Package store implements the heterogeneous source substrate: the
// structured (CSV/relational), semi-structured (JSON logs, XML
// configs) and unstructured (free text) stores the paper's system
// queries through one interface (Section I).
//
// Every store yields Records — a flat, source-tagged view that the
// index builder consumes uniformly. Semi-structured payloads are
// flattened to dotted key paths; unstructured documents pass through
// as text.
package store

import (
	"encoding/json"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/table"
)

// Kind classifies a data source.
type Kind string

// Source kinds.
const (
	KindText       Kind = "text"       // unstructured documents
	KindJSON       Kind = "json"       // JSON log lines / arrays
	KindXML        Kind = "xml"        // XML configuration trees
	KindRelational Kind = "relational" // typed tables
)

// Record is the unified view of one item from any source: a document,
// a log entry, a config element, or a table row.
type Record struct {
	ID     string            // stable id within the source
	Source string            // source name
	Kind   Kind              // source kind
	Text   string            // unstructured content ("" for pure rows)
	Fields map[string]string // flattened key/value payload
}

// Source is a named collection of records.
type Source interface {
	// Name returns the source's unique name.
	Name() string
	// Kind returns the source kind.
	Kind() Kind
	// Records returns all records in deterministic order.
	Records() []Record
	// Len returns the record count.
	Len() int
}

// Sentinel errors.
var (
	ErrParse = errors.New("store: parse error")
	ErrEmpty = errors.New("store: empty source")
)

// --- Unstructured text ---

// TextStore holds free-text documents (clinical notes, reviews,
// forum posts).
type TextStore struct {
	name string
	ids  []string
	docs map[string]string
}

// NewTextStore returns an empty document store.
func NewTextStore(name string) *TextStore {
	return &TextStore{name: name, docs: make(map[string]string)}
}

// Add inserts a document. Re-adding an id replaces its text.
func (s *TextStore) Add(id, text string) {
	if _, ok := s.docs[id]; !ok {
		s.ids = append(s.ids, id)
	}
	s.docs[id] = text
}

// Doc returns a document's text and whether it exists.
func (s *TextStore) Doc(id string) (string, bool) {
	t, ok := s.docs[id]
	return t, ok
}

// Name implements Source.
func (s *TextStore) Name() string { return s.name }

// Kind implements Source.
func (s *TextStore) Kind() Kind { return KindText }

// Len implements Source.
func (s *TextStore) Len() int { return len(s.ids) }

// Records implements Source.
func (s *TextStore) Records() []Record {
	out := make([]Record, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, Record{
			ID: id, Source: s.name, Kind: KindText, Text: s.docs[id],
		})
	}
	return out
}

// --- Semi-structured JSON ---

// JSONStore holds flattened JSON objects, one record per object.
type JSONStore struct {
	name    string
	records []Record
}

// NewJSONStore returns an empty JSON store.
func NewJSONStore(name string) *JSONStore {
	return &JSONStore{name: name}
}

// LoadLines reads JSON-lines input (one object per line; blank lines
// skipped) and appends one record per object.
func (s *JSONStore) LoadLines(r io.Reader) error {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var v interface{}
		err := dec.Decode(&v)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%w: json object %d: %v", ErrParse, n, err)
		}
		s.AddObject(v)
		n++
	}
	return nil
}

// AddObject flattens one decoded JSON value into a record.
func (s *JSONStore) AddObject(v interface{}) {
	fields := make(map[string]string)
	flattenJSON("", v, fields)
	id := fmt.Sprintf("%s/%d", s.name, len(s.records))
	// Prefer an explicit id-ish field when present.
	for _, key := range []string{"id", "event_id", "log_id", "record_id"} {
		if val, ok := fields[key]; ok && val != "" {
			id = fmt.Sprintf("%s/%s", s.name, val)
			break
		}
	}
	s.records = append(s.records, Record{
		ID: id, Source: s.name, Kind: KindJSON,
		Text:   fieldsToText(fields),
		Fields: fields,
	})
}

// Name implements Source.
func (s *JSONStore) Name() string { return s.name }

// Kind implements Source.
func (s *JSONStore) Kind() Kind { return KindJSON }

// Len implements Source.
func (s *JSONStore) Len() int { return len(s.records) }

// Records implements Source.
func (s *JSONStore) Records() []Record { return append([]Record(nil), s.records...) }

func flattenJSON(prefix string, v interface{}, out map[string]string) {
	switch x := v.(type) {
	case map[string]interface{}:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			flattenJSON(joinPath(prefix, k), x[k], out)
		}
	case []interface{}:
		for i, item := range x {
			flattenJSON(fmt.Sprintf("%s[%d]", prefix, i), item, out)
		}
	case nil:
		out[prefix] = ""
	case float64:
		out[prefix] = trimFloat(x)
	case bool:
		out[prefix] = fmt.Sprintf("%t", x)
	default:
		out[prefix] = fmt.Sprintf("%v", x)
	}
}

func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

func joinPath(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// fieldsToText renders flattened fields as a deterministic sentence-like
// string so semi-structured records can also be chunked and tagged.
func fieldsToText(fields map[string]string) string {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	keyWords := strings.NewReplacer(".", " ", "_", " ")
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		if fields[k] == "" {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s is %s", keyWords.Replace(k), fields[k]))
	}
	return strings.Join(parts, ". ") + "."
}

// --- Semi-structured XML ---

// XMLStore holds flattened XML elements.
type XMLStore struct {
	name    string
	records []Record
}

// NewXMLStore returns an empty XML store.
func NewXMLStore(name string) *XMLStore {
	return &XMLStore{name: name}
}

// xmlNode is a generic XML tree node.
type xmlNode struct {
	XMLName  xml.Name
	Attrs    []xml.Attr `xml:",any,attr"`
	Content  string     `xml:",chardata"`
	Children []xmlNode  `xml:",any"`
}

// Load parses an XML document and appends one record per second-level
// element (the conventional layout of config files: a root wrapping
// repeated entries). A root with no children yields one record.
func (s *XMLStore) Load(r io.Reader) error {
	var root xmlNode
	if err := xml.NewDecoder(r).Decode(&root); err != nil {
		return fmt.Errorf("%w: xml: %v", ErrParse, err)
	}
	if len(root.Children) == 0 {
		s.addNode(root)
		return nil
	}
	for _, child := range root.Children {
		s.addNode(child)
	}
	return nil
}

func (s *XMLStore) addNode(n xmlNode) {
	fields := make(map[string]string)
	flattenXML(n.XMLName.Local, n, fields)
	id := fmt.Sprintf("%s/%d", s.name, len(s.records))
	for _, attr := range n.Attrs {
		if strings.EqualFold(attr.Name.Local, "id") {
			id = fmt.Sprintf("%s/%s", s.name, attr.Value)
			break
		}
	}
	s.records = append(s.records, Record{
		ID: id, Source: s.name, Kind: KindXML,
		Text:   fieldsToText(fields),
		Fields: fields,
	})
}

func flattenXML(prefix string, n xmlNode, out map[string]string) {
	for _, a := range n.Attrs {
		out[joinPath(prefix, "@"+a.Name.Local)] = a.Value
	}
	content := strings.TrimSpace(n.Content)
	if len(n.Children) == 0 {
		if content != "" {
			out[prefix] = content
		}
		return
	}
	for _, c := range n.Children {
		flattenXML(joinPath(prefix, c.XMLName.Local), c, out)
	}
}

// Name implements Source.
func (s *XMLStore) Name() string { return s.name }

// Kind implements Source.
func (s *XMLStore) Kind() Kind { return KindXML }

// Len implements Source.
func (s *XMLStore) Len() int { return len(s.records) }

// Records implements Source.
func (s *XMLStore) Records() []Record { return append([]Record(nil), s.records...) }

// --- Structured relational ---

// RelationalStore wraps a table.Catalog as a record source: each row
// becomes one record with column-name fields.
type RelationalStore struct {
	name    string
	catalog *table.Catalog
}

// NewRelationalStore wraps a catalog. The catalog remains the system
// of record; this view is for indexing.
func NewRelationalStore(name string, c *table.Catalog) *RelationalStore {
	return &RelationalStore{name: name, catalog: c}
}

// Catalog returns the underlying catalog for TableQA execution.
func (s *RelationalStore) Catalog() *table.Catalog { return s.catalog }

// Name implements Source.
func (s *RelationalStore) Name() string { return s.name }

// Kind implements Source.
func (s *RelationalStore) Kind() Kind { return KindRelational }

// Len implements Source.
func (s *RelationalStore) Len() int {
	n := 0
	for _, name := range s.catalog.Names() {
		t, err := s.catalog.Get(name)
		if err == nil {
			n += t.Len()
		}
	}
	return n
}

// Records implements Source.
func (s *RelationalStore) Records() []Record {
	var out []Record
	for _, name := range s.catalog.Names() {
		t, err := s.catalog.Get(name)
		if err != nil {
			continue
		}
		for i, row := range t.Rows {
			fields := make(map[string]string, len(row))
			for c, v := range row {
				if !v.IsNull() {
					fields[t.Schema[c].Name] = v.String()
				}
			}
			out = append(out, Record{
				ID:     fmt.Sprintf("%s/%s/%d", s.name, t.Name, i),
				Source: s.name,
				Kind:   KindRelational,
				Text:   fieldsToText(fields),
				Fields: fields,
			})
		}
	}
	return out
}

// Multi groups several sources, preserving registration order.
type Multi struct {
	sources []Source
}

// NewMulti returns an empty source group.
func NewMulti() *Multi { return &Multi{} }

// Add registers a source and returns m for chaining.
func (m *Multi) Add(s Source) *Multi {
	m.sources = append(m.sources, s)
	return m
}

// Sources returns the registered sources in order.
func (m *Multi) Sources() []Source { return append([]Source(nil), m.sources...) }

// Records returns all records of all sources.
func (m *Multi) Records() []Record {
	var out []Record
	for _, s := range m.sources {
		out = append(out, s.Records()...)
	}
	return out
}

// Len returns the total record count.
func (m *Multi) Len() int {
	n := 0
	for _, s := range m.sources {
		n += s.Len()
	}
	return n
}
