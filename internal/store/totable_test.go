package store

import (
	"strings"
	"testing"

	"repro/internal/table"
)

func jsonRecords(t *testing.T, lines string) []Record {
	t.Helper()
	s := NewJSONStore("logs")
	if err := s.LoadLines(strings.NewReader(lines)); err != nil {
		t.Fatal(err)
	}
	return s.Records()
}

func TestToTableBasic(t *testing.T) {
	recs := jsonRecords(t, `{"service":"a","latency_ms":120,"ok":true}
{"service":"b","latency_ms":80.5,"ok":false}`)
	tbl, err := ToTable("logs", recs)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	// int + float observations widen to float.
	idx := tbl.Schema.ColIndex("latency_ms")
	if idx < 0 || tbl.Schema[idx].Type != table.TypeFloat {
		t.Errorf("latency type = %v", tbl.Schema)
	}
	if bi := tbl.Schema.ColIndex("ok"); bi < 0 || tbl.Schema[bi].Type != table.TypeBool {
		t.Errorf("bool type = %v", tbl.Schema)
	}
	if si := tbl.Schema.ColIndex("service"); si < 0 || tbl.Schema[si].Type != table.TypeString {
		t.Errorf("string type = %v", tbl.Schema)
	}
}

func TestToTableMissingFieldsNull(t *testing.T) {
	recs := jsonRecords(t, `{"a":1}
{"b":"x"}`)
	tbl, err := ToTable("t", recs)
	if err != nil {
		t.Fatal(err)
	}
	ai, bi := tbl.Schema.ColIndex("a"), tbl.Schema.ColIndex("b")
	if !tbl.Rows[0][bi].IsNull() || !tbl.Rows[1][ai].IsNull() {
		t.Errorf("missing fields should be NULL: %v", tbl.Rows)
	}
}

func TestToTableMixedTypesDegradeToString(t *testing.T) {
	recs := jsonRecords(t, `{"v":1}
{"v":"abc"}`)
	tbl, err := ToTable("t", recs)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema[tbl.Schema.ColIndex("v")].Type != table.TypeString {
		t.Errorf("mixed type = %v", tbl.Schema)
	}
	if tbl.Rows[0][0].String() != "1" {
		t.Errorf("int rendered as %q", tbl.Rows[0][0])
	}
}

func TestToTableAggregatable(t *testing.T) {
	recs := jsonRecords(t, `{"service":"a","latency_ms":100}
{"service":"a","latency_ms":200}
{"service":"b","latency_ms":50}`)
	tbl, err := ToTable("logs", recs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := table.Aggregate(tbl, []string{"service"}, []table.Agg{
		{Func: table.AggAvg, Col: "latency_ms", As: "avg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || res.Rows[0][1].Float() != 150 {
		t.Errorf("agg over materialized table:\n%s", res)
	}
}

func TestToTableEmpty(t *testing.T) {
	tbl, err := ToTable("empty", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 || len(tbl.Schema) != 0 {
		t.Errorf("empty: %v", tbl)
	}
}

func TestToTableXML(t *testing.T) {
	s := NewXMLStore("deploy")
	if err := s.Load(strings.NewReader(
		`<deployments><d id="x"><replicas>3</replicas></d><d id="y"><replicas>5</replicas></d></deployments>`)); err != nil {
		t.Fatal(err)
	}
	tbl, err := ToTable("deploy", s.Records())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	ri := tbl.Schema.ColIndex("d.replicas")
	if ri < 0 || tbl.Schema[ri].Type != table.TypeInt {
		t.Errorf("schema = %v", tbl.Schema.Names())
	}
}
