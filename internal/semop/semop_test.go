package semop

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/slm"
	"repro/internal/table"
)

func testNER() *slm.NER {
	n := slm.NewNER()
	n.AddGazetteer(slm.EntProduct, "Product Alpha", "Product Beta")
	n.AddGazetteer(slm.EntDrug, "Drug A", "Drug B")
	return n
}

func testCatalog() *table.Catalog {
	c := table.NewCatalog()

	sales := table.New("product_sales", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "quarter", Type: table.TypeString},
		{Name: "units", Type: table.TypeInt},
	})
	sales.MustAppend([]table.Value{table.S("Product Alpha"), table.S("Q2"), table.I(40)})
	sales.MustAppend([]table.Value{table.S("Product Alpha"), table.S("Q3"), table.I(50)})
	sales.MustAppend([]table.Value{table.S("Product Beta"), table.S("Q2"), table.I(20)})
	sales.MustAppend([]table.Value{table.S("Product Beta"), table.S("Q3"), table.I(25)})
	c.Put(sales)

	ratings := table.New("ratings", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "stars", Type: table.TypeFloat},
	})
	ratings.MustAppend([]table.Value{table.S("Product Alpha"), table.F(4.5)})
	ratings.MustAppend([]table.Value{table.S("Product Beta"), table.F(3.0)})
	ratings.MustAppend([]table.Value{table.S("Product Beta"), table.F(4.0)})
	c.Put(ratings)

	changes := table.New("metric_changes", table.Schema{
		{Name: "quarter", Type: table.TypeString},
		{Name: "metric", Type: table.TypeString},
		{Name: "change_pct", Type: table.TypeFloat},
	})
	changes.MustAppend([]table.Value{table.S("Q2"), table.S("sales"), table.F(20)})
	changes.MustAppend([]table.Value{table.S("Q3"), table.S("sales"), table.F(10)})
	c.Put(changes)

	return c
}

func TestParseAggregateIntent(t *testing.T) {
	q := Parse("Find the total sales of all products in Q3", testNER())
	if q.Intent != IntentAggregate || !q.HasAgg || q.AggFunc != table.AggSum {
		t.Errorf("frame = %+v", q)
	}
	if q.Metric != "sales" {
		t.Errorf("metric = %q", q.Metric)
	}
	foundQ3 := false
	for _, c := range q.Conditions {
		if c.Field == "quarter" && c.Value.Str() == "Q3" {
			foundQ3 = true
		}
	}
	if !foundQ3 {
		t.Errorf("conditions = %v", q.Conditions)
	}
}

func TestParseAverage(t *testing.T) {
	q := Parse("What is the average rating of Product Beta?", testNER())
	if q.AggFunc != table.AggAvg || q.Metric != "rating" {
		t.Errorf("frame = %+v", q)
	}
}

func TestParseCount(t *testing.T) {
	q := Parse("How many patients reported side effects?", testNER())
	if q.AggFunc != table.AggCount {
		t.Errorf("frame = %+v", q)
	}
}

func TestParseCompareIntent(t *testing.T) {
	q := Parse("Compare sales for Product Alpha and Product Beta in Q2", testNER())
	if q.Intent != IntentCompare {
		t.Fatalf("intent = %v", q.Intent)
	}
	if len(q.Compare) != 2 {
		t.Errorf("compare items = %v", q.Compare)
	}
}

func TestParseThreshold(t *testing.T) {
	q := Parse("Which products had a sales increase of more than 15% in the last quarter?", testNER())
	found := false
	for _, c := range q.Conditions {
		if c.Field == "change_pct" && c.Op == table.OpGt && c.Value.Float() == 15 {
			found = true
		}
	}
	if !found {
		t.Errorf("conditions = %v", q.Conditions)
	}
}

func TestParseGroupBy(t *testing.T) {
	q := Parse("Compare the average ratings of products from different manufacturers", testNER())
	if q.GroupBy != "manufacturer" {
		t.Errorf("groupBy = %q", q.GroupBy)
	}
	q2 := Parse("total sales by quarter", testNER())
	if q2.GroupBy != "quarter" {
		t.Errorf("groupBy = %q", q2.GroupBy)
	}
}

func TestParseListIntent(t *testing.T) {
	q := Parse("List products rated above 4 stars", testNER())
	if q.Intent != IntentList {
		t.Errorf("intent = %v", q.Intent)
	}
}

func TestParseLookupFallback(t *testing.T) {
	q := Parse("tell me something", testNER())
	if q.Intent != IntentLookup {
		t.Errorf("intent = %v", q.Intent)
	}
}

func TestIntentString(t *testing.T) {
	if IntentAggregate.String() != "aggregate" || Intent(9).String() != "unknown" {
		t.Error("Intent.String broken")
	}
}

func TestBindAndExecTotalSales(t *testing.T) {
	c := testCatalog()
	q := Parse("Find the total sales of all products in Q3", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Table != "product_sales" || p.MetricCol != "units" {
		t.Errorf("binding = %+v", p)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Float() != 75 {
		t.Errorf("result:\n%s", res)
	}
}

func TestBindAndExecAverageRating(t *testing.T) {
	c := testCatalog()
	q := Parse("What is the average rating of Product Beta?", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Float() != 3.5 {
		t.Errorf("result:\n%s", res)
	}
}

func TestBindAndExecCompare(t *testing.T) {
	c := testCatalog()
	q := Parse("Compare total sales for Product Alpha and Product Beta in Q2", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	byProduct := map[string]float64{}
	for _, r := range res.Rows {
		byProduct[r[0].Str()] = r[1].Float()
	}
	if byProduct["Product Alpha"] != 40 || byProduct["Product Beta"] != 20 {
		t.Errorf("comparison = %v", byProduct)
	}
}

func TestBindThresholdOnChanges(t *testing.T) {
	c := testCatalog()
	q := Parse("Which quarters had a sales change of more than 15%?", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Table != "metric_changes" {
		t.Fatalf("table = %s", p.Table)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Str() != "Q2" {
		t.Errorf("result:\n%s", res)
	}
}

func TestBindFailsOnEmptyCatalog(t *testing.T) {
	q := Parse("Find the total sales in Q3", testNER())
	_, err := Bind(q, table.NewCatalog())
	if !errors.Is(err, ErrNoBinding) {
		t.Errorf("err = %v", err)
	}
}

func TestBindEntityFallback(t *testing.T) {
	c := testCatalog()
	// No metric word, but a product entity that matches product_sales.
	q := Parse("Product Alpha in Q2", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("result:\n%s", res)
	}
}

func TestPlanString(t *testing.T) {
	c := testCatalog()
	q := Parse("Find the total sales of all products in Q3", testNER())
	p, _ := Bind(q, c)
	s := p.String()
	for _, want := range []string{"Scan(product_sales)", "Filter", "Aggregate"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan %q missing %q", s, want)
		}
	}
}

func TestExecNilPlan(t *testing.T) {
	if _, err := Exec(nil, testCatalog()); !errors.Is(err, ErrEmptyPlan) {
		t.Errorf("err = %v", err)
	}
}

func TestExecMissingTable(t *testing.T) {
	p := &Plan{Table: "ghost"}
	if _, err := Exec(p, testCatalog()); !errors.Is(err, table.ErrNoTable) {
		t.Errorf("err = %v", err)
	}
}

func TestLeadingNumber(t *testing.T) {
	if f, pct, ok := leadingNumber(" 15% in sales"); !ok || !pct || f != 15 {
		t.Errorf("got %v %v %v", f, pct, ok)
	}
	if f, pct, ok := leadingNumber(" 20 percent"); !ok || !pct || f != 20 {
		t.Errorf("got %v %v %v", f, pct, ok)
	}
	if _, _, ok := leadingNumber("no number anywhere in this string"); ok {
		t.Error("found number in text without one")
	}
}

func TestSingular(t *testing.T) {
	if singular("manufacturers") != "manufacturer" || singular("glass") != "glass" {
		t.Error("singular broken")
	}
}
