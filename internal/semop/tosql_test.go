package semop

import (
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/table"
)

func TestToSQLAggregate(t *testing.T) {
	c := testCatalog()
	q := Parse("Find the total sales of all products in Q3", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.ToSQL()
	if len(stmts) != 1 {
		t.Fatalf("stmts = %v", stmts)
	}
	s := stmts[0]
	for _, want := range []string{"SELECT", "SUM(units)", "FROM product_sales", "WHERE quarter = 'Q3'"} {
		if !strings.Contains(s, want) {
			t.Errorf("sql %q missing %q", s, want)
		}
	}
	// The rendered SQL must actually execute and agree with the plan.
	res, err := sql.Exec(c, s)
	if err != nil {
		t.Fatalf("exec %q: %v", s, err)
	}
	direct, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != direct.Len() || table.Compare(res.Rows[0][0], direct.Rows[0][0]) != 0 {
		t.Errorf("sql path %v != plan path %v", res.Rows[0], direct.Rows[0])
	}
}

func TestToSQLCompareRendersPerItem(t *testing.T) {
	c := testCatalog()
	q := Parse("Compare total sales for Product Alpha and Product Beta in Q2", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	stmts := p.ToSQL()
	if len(stmts) != 2 {
		t.Fatalf("stmts = %v", stmts)
	}
	// Items render in sorted order, one statement each.
	if !strings.Contains(stmts[0], "product alpha") || !strings.Contains(stmts[1], "product beta") {
		t.Errorf("stmts = %v", stmts)
	}
	for _, s := range stmts {
		if _, err := sql.Exec(c, s); err != nil {
			t.Errorf("exec %q: %v", s, err)
		}
	}
}

func TestToSQLLookupAndList(t *testing.T) {
	c := testCatalog()
	q := Parse("List products rated above 4 stars", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	s := p.ToSQL()[0]
	if !strings.Contains(s, "LIMIT 50") {
		t.Errorf("sql = %q", s)
	}
	if _, err := sql.Exec(c, s); err != nil {
		t.Errorf("exec: %v", err)
	}
}

func TestToSQLEscapesQuotes(t *testing.T) {
	p := &Plan{
		Table:   "t",
		Filters: []table.Pred{{Col: "name", Op: table.OpEq, Val: table.S("O'Brien")}},
	}
	s := p.ToSQL()[0]
	if !strings.Contains(s, "'O''Brien'") {
		t.Errorf("sql = %q", s)
	}
}

func TestToSQLJoinRendered(t *testing.T) {
	p := &Plan{
		Table: "ratings", MetricCol: "stars",
		JoinTable: "metric_changes", JoinLeftCol: "product", JoinRightCol: "product",
		JoinFilters: []table.Pred{{Col: "change_pct", Op: table.OpGt, Val: table.F(15)}},
		Aggs:        []table.Agg{{Func: table.AggAvg, Col: "stars", As: "result"}},
	}
	s := p.ToSQL()[0]
	for _, want := range []string{"JOIN metric_changes ON ratings.product = metric_changes.product", "change_pct > 15"} {
		if !strings.Contains(s, want) {
			t.Errorf("sql %q missing %q", s, want)
		}
	}
}
