package semop

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/table"
)

// Sentinel errors from binding and execution.
var (
	ErrNoBinding = errors.New("semop: no table binding for query")
	ErrEmptyPlan = errors.New("semop: empty plan")
)

// Plan is an executable logical plan bound to a catalog.
type Plan struct {
	Table      string
	MetricCol  string // numeric column the query targets ("" for list)
	Filters    []table.Pred
	GroupBy    []string
	Aggs       []table.Agg
	OrderBy    []table.SortKey
	LimitRows  int      // 0 = no limit
	Columns    []string // projection ("" = all)
	Comparison []string // compare values for the compare intent
	CompareCol string   // column holding the compared entity

	// Synthesized join, for conditions that live in another table
	// ("average rating of products with a sales increase over 15%"
	// joins ratings with metric_changes on product).
	JoinTable    string
	JoinLeftCol  string
	JoinRightCol string
	JoinFilters  []table.Pred
}

// String renders the plan as a readable operator pipeline, the
// "explain" output of the synthesized semantic operators.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scan(%s)", p.Table)
	if p.JoinTable != "" {
		fmt.Fprintf(&b, " -> Join(%s on %s=%s)", p.JoinTable, p.JoinLeftCol, p.JoinRightCol)
		for _, f := range p.JoinFilters {
			fmt.Fprintf(&b, " -> Filter(%s)", f)
		}
	}
	for _, f := range p.Filters {
		fmt.Fprintf(&b, " -> Filter(%s)", f)
	}
	if len(p.Aggs) > 0 {
		names := make([]string, len(p.Aggs))
		for i, a := range p.Aggs {
			names[i] = fmt.Sprintf("%s(%s)", a.Func, a.Col)
		}
		fmt.Fprintf(&b, " -> Aggregate(group=%v, %s)", p.GroupBy, strings.Join(names, ","))
	}
	if len(p.OrderBy) > 0 {
		fmt.Fprintf(&b, " -> Sort(%s)", p.OrderBy[0].Col)
	}
	if p.LimitRows > 0 {
		fmt.Fprintf(&b, " -> Limit(%d)", p.LimitRows)
	}
	if len(p.Columns) > 0 {
		fmt.Fprintf(&b, " -> Project(%s)", strings.Join(p.Columns, ","))
	}
	return b.String()
}

// metricBindings maps metric words to candidate (table, column) pairs,
// most specific first. The binder falls back to schema search when no
// candidate matches the live catalog.
var metricBindings = map[string][][2]string{
	"sales":        {{"product_sales", "units"}, {"sales", "revenue"}, {"sales", "units"}, {"revenues", "amount_usd"}},
	"units":        {{"product_sales", "units"}, {"sales", "units"}},
	"revenue":      {{"revenues", "amount_usd"}, {"sales", "revenue"}},
	"amount":       {{"revenues", "amount_usd"}},
	"rating":       {{"ratings", "stars"}, {"reviews", "stars"}, {"reviews", "rating"}},
	"change":       {{"metric_changes", "change_pct"}},
	"side effects": {{"side_effects", "effect"}},
	"error":        {{"logs", "level"}, {"events", "level"}},
	"patients":     {{"treatments", "patient"}, {"patients", "patient"}},
	"treatments":   {{"treatments", "drug"}},
	"orders":       {{"orders", "units"}, {"product_sales", "units"}},
	"price":        {{"products", "price"}},
	"latency":      {{"logs", "latency_ms"}},
	"errors":       {{"logs", "level"}},
	"efficacy":     {{"trial_results", "efficacy_pct"}, {"trials", "efficacy"}},
}

// Bind resolves the parsed query against the catalog, producing an
// executable plan. Binding fails with ErrNoBinding when no table can
// answer the query — exactly the failure mode the paper ascribes to
// Text-to-SQL over unstructured-only corpora.
func Bind(q Query, c *table.Catalog) (*Plan, error) {
	tbl, col, err := bindMetric(q, c)
	if err != nil {
		return nil, err
	}
	p := &Plan{Table: tbl.Name, MetricCol: col}

	// Conditions that name a column of the bound table become filters;
	// conditions that live in another table trigger join synthesis.
	for _, cond := range q.Conditions {
		field := cond.Field
		if field == "value" {
			field = col // thresholds on the bare metric
		}
		if tbl.Schema.ColIndex(field) < 0 {
			for _, alt := range cond.Fallbacks {
				if tbl.Schema.ColIndex(alt) >= 0 {
					field = alt
					break
				}
			}
		}
		if idx := tbl.Schema.ColIndex(field); idx >= 0 {
			// Re-type the literal against the bound column (shared with
			// the SQL entry path and the IR constant-folding rule), so a
			// textual threshold filters a numeric column numerically.
			val := table.CoerceTo(tbl.Schema[idx].Type, cond.Value)
			p.Filters = append(p.Filters, table.Pred{Col: field, Op: cond.Op, Val: val})
			continue
		}
		bindJoinCondition(p, tbl, c, table.Pred{Col: field, Op: cond.Op, Val: cond.Value})
	}

	switch q.Intent {
	case IntentAggregate:
		fn := q.AggFunc
		aggCol := col
		if fn == table.AggCount {
			aggCol = ""
		}
		p.Aggs = []table.Agg{{Func: fn, Col: aggCol, As: "result"}}
		if q.GroupBy != "" {
			if gcol := resolveGroupCol(tbl, q.GroupBy); gcol != "" {
				p.GroupBy = []string{gcol}
			}
		}
	case IntentCompare:
		p.Comparison = append([]string(nil), q.Compare...)
		p.CompareCol = compareColumn(tbl)
		if p.CompareCol != "" {
			p.GroupBy = []string{p.CompareCol}
			fn := table.AggAvg
			if q.HasAgg {
				fn = q.AggFunc
			}
			p.Aggs = []table.Agg{{Func: fn, Col: col, As: "result"}}
			// Keep only the compared entities.
			comparePreds(p, q)
		}
	case IntentList:
		p.LimitRows = 50
	default:
		p.LimitRows = 10
	}
	return p, nil
}

// comparePreds narrows a compare plan to its compared entities. A
// single Filter conjunction cannot express OR, so comparison executes
// per item and unions (see Exec); here we only record the items.
func comparePreds(p *Plan, q Query) {
	// Drop entity equality filters that conflict with comparison —
	// each compared item is applied separately during Exec.
	var kept []table.Pred
	for _, f := range p.Filters {
		if f.Col == p.CompareCol {
			continue
		}
		kept = append(kept, f)
	}
	p.Filters = kept
}

func bindMetric(q Query, c *table.Catalog) (*table.Table, string, error) {
	if q.Metric != "" {
		if cands, ok := metricBindings[q.Metric]; ok {
			for _, cand := range cands {
				if tbl, err := c.Get(cand[0]); err == nil && tbl.Schema.ColIndex(cand[1]) >= 0 {
					return tbl, cand[1], nil
				}
			}
		}
		// Schema search: exact column match, then a column whose name
		// starts with the metric word ("latency" → "latency_ms"), then
		// a table whose name contains the metric word.
		for _, name := range c.Names() {
			tbl, err := c.Get(name)
			if err != nil {
				continue
			}
			if idx := tbl.Schema.ColIndex(q.Metric); idx >= 0 {
				return tbl, tbl.Schema[idx].Name, nil
			}
		}
		for _, name := range c.Names() {
			tbl, err := c.Get(name)
			if err != nil {
				continue
			}
			for _, col := range tbl.Schema {
				if strings.HasPrefix(strings.ToLower(col.Name), strings.ToLower(q.Metric)) {
					return tbl, col.Name, nil
				}
			}
			if strings.Contains(name, strings.ReplaceAll(q.Metric, " ", "_")) {
				if col := firstNumericCol(tbl); col != "" {
					return tbl, col, nil
				}
			}
		}
	}
	// Entity-driven fallback: choose the table with the most matching
	// filterable columns.
	var best *table.Table
	bestScore := 0
	for _, name := range c.Names() {
		tbl, err := c.Get(name)
		if err != nil {
			continue
		}
		score := 0
		for _, cond := range q.Conditions {
			if tbl.Schema.ColIndex(cond.Field) >= 0 {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = tbl, score
		}
	}
	if best != nil {
		col := firstNumericCol(best)
		if col == "" && len(best.Schema) > 0 {
			col = best.Schema[len(best.Schema)-1].Name
		}
		return best, col, nil
	}
	return nil, "", fmt.Errorf("%w: metric=%q conditions=%d catalog=%v",
		ErrNoBinding, q.Metric, len(q.Conditions), c.Names())
}

func firstNumericCol(t *table.Table) string {
	for _, c := range t.Schema {
		if c.Type == table.TypeInt || c.Type == table.TypeFloat {
			return c.Name
		}
	}
	return ""
}

func resolveGroupCol(t *table.Table, word string) string {
	if idx := t.Schema.ColIndex(word); idx >= 0 {
		return t.Schema[idx].Name
	}
	// Common synonyms.
	synonyms := map[string][]string{
		"manufacturer": {"maker", "brand", "vendor"},
		"maker":        {"manufacturer", "brand"},
		"product":      {"product", "item"},
		"quarter":      {"quarter", "period"},
		"drug":         {"drug", "medication"},
		"patient":      {"patient"},
		"region":       {"region", "area"},
	}
	for _, s := range synonyms[word] {
		if idx := t.Schema.ColIndex(s); idx >= 0 {
			return t.Schema[idx].Name
		}
	}
	return ""
}

// compareColumn picks the column holding compared entity names.
func compareColumn(t *table.Table) string {
	for _, name := range []string{"product", "drug", "item", "name", "patient"} {
		if t.Schema.ColIndex(name) >= 0 {
			return name
		}
	}
	// First string column.
	for _, c := range t.Schema {
		if c.Type == table.TypeString {
			return c.Name
		}
	}
	return ""
}

// bindJoinCondition tries to satisfy a condition through a join: find
// another table holding the condition's column that shares a key
// column with the main table ("product", "drug", "patient", "quarter"
// or any common column name). First match wins, deterministically by
// table name.
func bindJoinCondition(p *Plan, main *table.Table, c *table.Catalog, pred table.Pred) {
	if p.JoinTable != "" {
		// One synthesized join per plan; extra conditions go to the
		// same join when the column matches.
		other, err := c.Get(p.JoinTable)
		if err == nil {
			if idx := other.Schema.ColIndex(pred.Col); idx >= 0 {
				pred.Val = table.CoerceTo(other.Schema[idx].Type, pred.Val)
				p.JoinFilters = append(p.JoinFilters, pred)
			}
		}
		return
	}
	for _, name := range c.Names() {
		if strings.EqualFold(name, main.Name) {
			continue
		}
		other, err := c.Get(name)
		if err != nil {
			continue
		}
		idx := other.Schema.ColIndex(pred.Col)
		if idx < 0 {
			continue
		}
		left, right := joinKey(main, other)
		if left == "" {
			continue
		}
		p.JoinTable = other.Name
		p.JoinLeftCol = left
		p.JoinRightCol = right
		pred.Val = table.CoerceTo(other.Schema[idx].Type, pred.Val)
		p.JoinFilters = append(p.JoinFilters, pred)
		return
	}
}

// joinKey picks the join key column pair shared by two tables.
func joinKey(a, b *table.Table) (string, string) {
	for _, key := range []string{"product", "drug", "patient", "quarter", "id", "name"} {
		if a.Schema.ColIndex(key) >= 0 && b.Schema.ColIndex(key) >= 0 {
			return key, key
		}
	}
	for _, col := range a.Schema {
		if b.Schema.ColIndex(col.Name) >= 0 {
			return col.Name, col.Name
		}
	}
	return "", ""
}

// Exec runs the plan against the catalog and returns the result table.
// Since the logical-IR unification it is a thin entry point: compile
// to the shared IR and interpret through the single operator loop in
// internal/logical — the same algebra the SQL entry and the federated
// planner use. The rule passes are deliberately skipped here: Bind
// already re-typed every literal, and this direct single-store call is
// the system's unoptimized reference (and benchmark baseline); the
// serving paths — Hybrid.Answer/Query and the federated Executor —
// run logical.Optimize and amortize it through the fingerprint-keyed
// physical-plan cache.
func Exec(p *Plan, c *table.Catalog) (*table.Table, error) {
	if p == nil {
		return nil, ErrEmptyPlan
	}
	return logical.Exec(Compile(p), c)
}
