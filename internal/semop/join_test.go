package semop

import (
	"strings"
	"testing"

	"repro/internal/table"
)

// joinCatalog has ratings and metric_changes sharing a product key, so
// the flagship cross-modal query needs a synthesized join.
func joinCatalog() *table.Catalog {
	c := table.NewCatalog()
	ratings := table.New("ratings", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "stars", Type: table.TypeFloat},
	})
	ratings.MustAppend([]table.Value{table.S("Product Alpha"), table.F(4.0)})
	ratings.MustAppend([]table.Value{table.S("Product Alpha"), table.F(5.0)})
	ratings.MustAppend([]table.Value{table.S("Product Beta"), table.F(2.0)})
	ratings.MustAppend([]table.Value{table.S("Product Gamma"), table.F(3.0)})
	c.Put(ratings)

	changes := table.New("metric_changes", table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "quarter", Type: table.TypeString},
		{Name: "change_pct", Type: table.TypeFloat},
	})
	changes.MustAppend([]table.Value{table.S("Product Alpha"), table.S("Q2"), table.F(20)})
	changes.MustAppend([]table.Value{table.S("Product Alpha"), table.S("Q3"), table.F(25)})
	changes.MustAppend([]table.Value{table.S("Product Beta"), table.S("Q2"), table.F(5)})
	changes.MustAppend([]table.Value{table.S("Product Gamma"), table.S("Q2"), table.F(30)})
	c.Put(changes)
	return c
}

func TestBindSynthesizesJoin(t *testing.T) {
	c := joinCatalog()
	q := Parse("What is the average rating of products with a sales increase of more than 15%?", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.Table != "ratings" {
		t.Fatalf("main table = %s", p.Table)
	}
	if p.JoinTable != "metric_changes" || p.JoinLeftCol != "product" {
		t.Fatalf("join = %s on %s=%s", p.JoinTable, p.JoinLeftCol, p.JoinRightCol)
	}
	if !strings.Contains(p.String(), "Join(metric_changes") {
		t.Errorf("plan string: %s", p.String())
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	// Qualifying products: Alpha (20, 25) and Gamma (30). Beta (5) is
	// out. AVG over Alpha's two ratings and Gamma's one: (4+5+3)/3 = 4.
	if res.Len() != 1 {
		t.Fatalf("result:\n%s", res)
	}
	if got := res.Rows[0][0].Float(); got != 4.0 {
		t.Errorf("avg = %v, want 4.0", got)
	}
}

func TestJoinDoesNotDoubleCount(t *testing.T) {
	// Alpha qualifies via two change rows; its ratings must count once.
	c := joinCatalog()
	q := Parse("How many ratings do products with a sales increase of more than 15% have?", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Int() != 3 {
		t.Errorf("count result:\n%s", res)
	}
}

func TestJoinWithQuarterFilterOnJoinedTable(t *testing.T) {
	c := joinCatalog()
	q := Parse("average rating of products with a sales increase of more than 15% in Q2", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	// quarter lives in metric_changes, not ratings — it must land in
	// the join filters.
	foundQuarter := false
	for _, f := range p.JoinFilters {
		if f.Col == "quarter" {
			foundQuarter = true
		}
	}
	if !foundQuarter {
		t.Fatalf("join filters = %v", p.JoinFilters)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	// Q2 qualifiers: Alpha (20), Gamma (30). AVG(4,5,3) = 4.
	if res.Len() != 1 || res.Rows[0][0].Float() != 4.0 {
		t.Errorf("result:\n%s", res)
	}
}

func TestNoJoinWhenNoSharedKey(t *testing.T) {
	c := table.NewCatalog()
	a := table.New("a", table.Schema{{Name: "x", Type: table.TypeFloat}})
	a.MustAppend([]table.Value{table.F(1)})
	c.Put(a)
	b := table.New("b", table.Schema{{Name: "change_pct", Type: table.TypeFloat}})
	b.MustAppend([]table.Value{table.F(20)})
	c.Put(b)

	p := &Plan{Table: "a", MetricCol: "x"}
	mainTbl, _ := c.Get("a")
	bindJoinCondition(p, mainTbl, c, table.Pred{Col: "change_pct", Op: table.OpGt, Val: table.F(15)})
	if p.JoinTable != "" {
		t.Errorf("join synthesized without a key: %+v", p)
	}
}
