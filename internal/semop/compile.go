package semop

import (
	"repro/internal/logical"
	"repro/internal/table"
)

// Compile lowers a bound plan onto the shared logical IR, preserving
// the exact operator order the single-store executor always used:
// scan → semi-join (joined side filtered, key-projected and
// deduplicated) → comparison or filter → aggregate → sort → limit →
// project. Compiling a nil plan yields a nil tree.
func Compile(p *Plan) *logical.Node {
	if p == nil {
		return nil
	}
	cur := &logical.Node{Op: logical.OpScan, Table: p.Table}

	if p.JoinTable != "" {
		right := &logical.Node{Op: logical.OpScan, Table: p.JoinTable}
		if len(p.JoinFilters) > 0 {
			right = &logical.Node{Op: logical.OpFilter,
				Preds: append([]table.Pred(nil), p.JoinFilters...), In: []*logical.Node{right}}
		}
		// Semi-join shape: only distinct join keys cross into the hash
		// join, so a main row with several qualifying matches is not
		// duplicated.
		right = &logical.Node{Op: logical.OpProject,
			Proj: []string{p.JoinRightCol}, In: []*logical.Node{right}}
		right = &logical.Node{Op: logical.OpDistinct, In: []*logical.Node{right}}
		cur = &logical.Node{Op: logical.OpJoin,
			LeftCol: p.JoinLeftCol, RightCol: p.JoinRightCol,
			In: []*logical.Node{cur, right}}
	}

	if len(p.Comparison) > 0 && p.CompareCol != "" {
		return &logical.Node{Op: logical.OpCompare,
			CompareCol: p.CompareCol,
			Items:      append([]string(nil), p.Comparison...),
			Preds:      append([]table.Pred(nil), p.Filters...),
			Aggs:       append([]table.Agg(nil), p.Aggs...),
			In:         []*logical.Node{cur}}
	}

	if len(p.Filters) > 0 {
		cur = &logical.Node{Op: logical.OpFilter,
			Preds: append([]table.Pred(nil), p.Filters...), In: []*logical.Node{cur}}
	}
	if len(p.Aggs) > 0 {
		cur = &logical.Node{Op: logical.OpAggregate,
			GroupBy: append([]string(nil), p.GroupBy...),
			Aggs:    append([]table.Agg(nil), p.Aggs...),
			In:      []*logical.Node{cur}}
	}
	if len(p.OrderBy) > 0 {
		cur = &logical.Node{Op: logical.OpSort,
			Keys: append([]table.SortKey(nil), p.OrderBy...), In: []*logical.Node{cur}}
	}
	if p.LimitRows > 0 {
		cur = &logical.Node{Op: logical.OpLimit, N: p.LimitRows, In: []*logical.Node{cur}}
	}
	if len(p.Columns) > 0 {
		cur = &logical.Node{Op: logical.OpProject,
			Proj: append([]string(nil), p.Columns...), In: []*logical.Node{cur}}
	}
	return cur
}
