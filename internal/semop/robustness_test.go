package semop

import (
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// Parse must never panic, whatever the input.
func TestParseNeverPanicsProperty(t *testing.T) {
	ner := testNER()
	f := func(s string) bool {
		_ = Parse(s, ner)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Bind+Exec over arbitrary questions either answers or errors; never
// panics, never returns a nil table with nil error.
func TestBindExecTotalProperty(t *testing.T) {
	ner := testNER()
	c := testCatalog()
	f := func(s string) bool {
		q := Parse(s, ner)
		p, err := Bind(q, c)
		if err != nil {
			return true
		}
		res, err := Exec(p, c)
		return err != nil || res != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConditionFallbackFields(t *testing.T) {
	// An ID condition binds to "service" when the table has no
	// "patient" column.
	c := table.NewCatalog()
	logs := table.New("logs", table.Schema{
		{Name: "service", Type: table.TypeString},
		{Name: "latency_ms", Type: table.TypeFloat},
	})
	logs.MustAppend([]table.Value{table.S("SVC-1"), table.F(100)})
	logs.MustAppend([]table.Value{table.S("SVC-2"), table.F(300)})
	c.Put(logs)

	q := Parse("What is the average latency of SVC-1?", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range p.Filters {
		if f.Col == "service" && f.Val.Str() == "SVC-1" {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback filter missing: %v", p.Filters)
	}
	res, err := Exec(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0].Float() != 100 {
		t.Errorf("result:\n%s", res)
	}
}

func TestErrorLevelCondition(t *testing.T) {
	q := Parse("How many error events did SVC-1 have?", testNER())
	found := false
	for _, cond := range q.Conditions {
		if cond.Field == "level" && cond.Value.Str() == "error" {
			found = true
		}
	}
	if !found {
		t.Errorf("level condition missing: %v", q.Conditions)
	}
}

func TestLevelConditionHarmlessElsewhere(t *testing.T) {
	// "error" in a question over a catalog without a level column must
	// not break binding.
	c := testCatalog()
	q := Parse("Did any sales reports contain an error for Product Alpha?", testNER())
	if _, err := Bind(q, c); err != nil {
		// Binding may fail for other reasons, but must not panic and
		// must not fail due to the level condition alone. Accept a
		// clean ErrNoBinding.
		t.Logf("bind: %v", err)
	}
}

func TestMetricPrefixBinding(t *testing.T) {
	c := table.NewCatalog()
	logs := table.New("events", table.Schema{
		{Name: "service", Type: table.TypeString},
		{Name: "latency_ms", Type: table.TypeFloat},
	})
	logs.MustAppend([]table.Value{table.S("SVC-1"), table.F(10)})
	c.Put(logs)
	q := Parse("average latency for SVC-1", testNER())
	p, err := Bind(q, c)
	if err != nil {
		t.Fatal(err)
	}
	if p.MetricCol != "latency_ms" {
		t.Errorf("metric col = %q", p.MetricCol)
	}
}
