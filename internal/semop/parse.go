// Package semop implements Semantic Operator Synthesis (paper Section
// III.C, task 2): translating a natural-language query into executable
// relational operations — aggregations, filters, group-bys, joins —
// over the catalog of structured and SLM-generated tables.
//
// The pipeline is parse → bind → compile → optimize → execute: Parse
// produces a semantic Query frame from the question; Bind resolves its
// metric and filters against a concrete table.Catalog; Compile lowers
// the bound Plan onto the shared logical IR (internal/logical), whose
// rule-based optimizer and single operator loop the SQL entry path and
// the federated planner use as well.
package semop

import (
	"strconv"
	"strings"

	"repro/internal/slm"
	"repro/internal/table"
)

// Intent is the query's top-level semantic class.
type Intent int

// Query intents.
const (
	IntentLookup    Intent = iota // point lookup / evidence question
	IntentAggregate               // SUM/AVG/COUNT/MIN/MAX over a metric
	IntentCompare                 // compare a metric across named entities
	IntentList                    // enumerate matching rows
)

// String names the intent.
func (i Intent) String() string {
	switch i {
	case IntentLookup:
		return "lookup"
	case IntentAggregate:
		return "aggregate"
	case IntentCompare:
		return "compare"
	case IntentList:
		return "list"
	default:
		return "unknown"
	}
}

// Condition is an unbound filter: a semantic field (quarter, product,
// threshold metric…) an operator and a literal. Fallbacks lists
// alternative field names tried in order when Field does not exist in
// the bound table (an ID in a question may be a patient, a service, or
// a generic id depending on the domain).
type Condition struct {
	Field     string
	Fallbacks []string
	Op        table.CmpOp
	Value     table.Value
}

// Query is the parsed semantic frame of a natural-language question.
type Query struct {
	Raw        string
	Intent     Intent
	AggFunc    table.AggFunc
	HasAgg     bool
	Metric     string       // metric word: "sales", "rating", "revenue"…
	GroupBy    string       // "by manufacturer" → "manufacturer"
	Compare    []string     // canonical entity names under comparison
	Conditions []Condition  // filters (quarter, thresholds, entities)
	Entities   []slm.Entity // all recognized entities, for anchoring
}

// aggTriggers maps surface cues to aggregate functions, checked in
// order (longest phrases first).
var aggTriggers = []struct {
	phrase string
	fn     table.AggFunc
}{
	{"how many", table.AggCount},
	{"number of", table.AggCount},
	{"count of", table.AggCount},
	{"total", table.AggSum},
	{"sum of", table.AggSum},
	{"overall", table.AggSum},
	{"average", table.AggAvg},
	{"mean", table.AggAvg},
	{"avg", table.AggAvg},
	{"highest", table.AggMax},
	{"maximum", table.AggMax},
	{"max", table.AggMax},
	{"best", table.AggMax},
	{"top", table.AggMax},
	{"lowest", table.AggMin},
	{"minimum", table.AggMin},
	{"min", table.AggMin},
	{"worst", table.AggMin},
}

// metricSynonyms maps metric words in questions to themselves (the
// binder maps them on to columns). Recognized metric vocabulary.
// Order matters: more specific metrics first, so "sales increase of
// 15%" parses as a change-metric question, not a sales question.
var metricWords = []string{
	"side effects", "increase", "decrease", "change",
	"sales", "revenue", "units", "satisfaction", "rating", "ratings",
	"stars", "effects", "patients", "orders",
	"amount", "price", "latency", "errors", "error", "treatments", "efficacy",
}

// Parse analyzes the question with the recognizer and produces its
// semantic frame. Parsing is deterministic and never fails; an
// unparseable question degrades to IntentLookup with no conditions,
// which the hybrid pipeline answers through graph retrieval alone.
func Parse(question string, ner *slm.NER) Query {
	q := Query{Raw: question, Intent: IntentLookup}
	lower := strings.ToLower(question)
	q.Entities = ner.Recognize(question)

	// Aggregation cue.
	for _, t := range aggTriggers {
		if strings.Contains(lower, t.phrase) {
			q.AggFunc = t.fn
			q.HasAgg = true
			q.Intent = IntentAggregate
			break
		}
	}
	// "How many units/sales/orders…" asks for a sum of a numeric
	// metric, not a row count.
	if q.HasAgg && q.AggFunc == table.AggCount {
		for _, m := range []string{"units", "sales", "orders"} {
			if strings.Contains(lower, "how many "+m) || strings.Contains(lower, "number of "+m) {
				q.AggFunc = table.AggSum
				break
			}
		}
	}

	// Comparison cue.
	if strings.HasPrefix(lower, "compare") || strings.Contains(lower, " versus ") ||
		strings.Contains(lower, " vs ") || strings.Contains(lower, " vs. ") {
		q.Intent = IntentCompare
		q.Compare = compareItems(q.Entities)
	}

	// List cue.
	if !q.HasAgg && q.Intent == IntentLookup &&
		(strings.HasPrefix(lower, "list") || strings.HasPrefix(lower, "show") ||
			strings.HasPrefix(lower, "which") || strings.HasPrefix(lower, "find all")) {
		q.Intent = IntentList
	}

	// Metric word. The question's *target* metric lives before any
	// filter clause ("average rating of products WITH A sales increase
	// of more than 15%"), so search the pre-filter segment first.
	q.Metric = findMetric(preFilterSegment(lower))
	if q.Metric == "" {
		q.Metric = findMetric(lower)
	}

	// Group-by: "by <noun>", "per <noun>", "from different <noun>s",
	// "across <noun>s".
	q.GroupBy = parseGroupBy(lower)

	// Conditions from entities and threshold phrases.
	q.Conditions = parseConditions(lower, q.Entities)

	return q
}

// filterMarkers introduce filter clauses; the metric before them is
// the query target, metrics after them are conditions.
var filterMarkers = []string{
	"with a ", "with an ", "whose ", "that had ", "which had ",
}

func preFilterSegment(lower string) string {
	cut := len(lower)
	for _, m := range filterMarkers {
		if idx := strings.Index(lower, m); idx >= 0 && idx < cut {
			cut = idx
		}
	}
	return lower[:cut]
}

func findMetric(segment string) string {
	for _, m := range metricWords {
		if strings.Contains(segment, m) {
			return normalizeMetric(m)
		}
	}
	return ""
}

func normalizeMetric(m string) string {
	switch m {
	case "ratings", "stars", "satisfaction":
		return "rating"
	case "increase", "decrease", "change":
		return "change"
	case "effects":
		return "side effects"
	}
	return m
}

// compareItems picks the entities being compared: prefer products,
// then drugs, then generic proper nouns.
func compareItems(ents []slm.Entity) []string {
	for _, prefer := range []slm.EntityType{slm.EntProduct, slm.EntDrug, slm.EntMisc, slm.EntID} {
		var items []string
		seen := map[string]bool{}
		for _, e := range ents {
			if e.Type == prefer && !seen[e.Canonical] {
				seen[e.Canonical] = true
				items = append(items, e.Canonical)
			}
		}
		if len(items) >= 2 {
			return items
		}
	}
	return nil
}

func parseGroupBy(lower string) string {
	for _, marker := range []string{"from different ", "by ", "per ", "across "} {
		idx := strings.Index(lower, marker)
		if idx < 0 {
			continue
		}
		rest := strings.Fields(lower[idx+len(marker):])
		if len(rest) == 0 {
			continue
		}
		word := strings.Trim(rest[0], "?,.;:")
		// Skip grammatical uses ("by the", "by 15%").
		if word == "the" || word == "a" || word == "an" || word == "" {
			continue
		}
		if c := word[0]; c >= '0' && c <= '9' {
			continue
		}
		return singular(word)
	}
	return ""
}

func singular(w string) string {
	if len(w) > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") {
		return w[:len(w)-1]
	}
	return w
}

// thresholdPhrases map comparison wording to operators.
var thresholdPhrases = []struct {
	phrase string
	op     table.CmpOp
}{
	{"more than", table.OpGt},
	{"greater than", table.OpGt},
	{"over", table.OpGt},
	{"above", table.OpGt},
	{"at least", table.OpGe},
	{"less than", table.OpLt},
	{"under", table.OpLt},
	{"below", table.OpLt},
	{"at most", table.OpLe},
}

func parseConditions(lower string, ents []slm.Entity) []Condition {
	var out []Condition
	// Entity-derived equality filters.
	for _, e := range ents {
		switch e.Type {
		case slm.EntQuarter:
			out = append(out, Condition{
				Field: "quarter", Op: table.OpEq,
				Value: table.S(strings.ToUpper(strings.Fields(e.Canonical)[0])),
			})
		case slm.EntProduct:
			out = append(out, Condition{Field: "product", Op: table.OpEq, Value: table.S(titleCase(e.Canonical))})
		case slm.EntDrug:
			out = append(out, Condition{Field: "drug", Op: table.OpEq, Value: table.S(titleCase(e.Canonical))})
		case slm.EntID:
			out = append(out, Condition{
				Field:     "patient",
				Fallbacks: []string{"service", "customer", "id"},
				Op:        table.OpEq,
				Value:     table.S(strings.ToUpper(e.Canonical)),
			})
		case slm.EntManufacturer:
			out = append(out, Condition{Field: "manufacturer", Op: table.OpEq, Value: table.S(titleCase(e.Canonical))})
		}
	}
	// Log-level filter: "error events", "errors in". Binds only when
	// the chosen table has a level column; harmless elsewhere.
	if strings.Contains(lower, "error") {
		out = append(out, Condition{Field: "level", Op: table.OpEq, Value: table.S("error")})
	}

	// Threshold filters: "<phrase> N%" or "<phrase> N".
	for _, tp := range thresholdPhrases {
		idx := strings.Index(lower, tp.phrase)
		if idx < 0 {
			continue
		}
		rest := lower[idx+len(tp.phrase):]
		num, isPct, ok := leadingNumber(rest)
		if !ok {
			continue
		}
		field := "value"
		if isPct {
			field = "change_pct"
		}
		out = append(out, Condition{Field: field, Op: tp.op, Value: table.F(num)})
		break
	}
	return out
}

// leadingNumber parses the first numeric token of s, reporting whether
// it was a percentage.
func leadingNumber(s string) (float64, bool, bool) {
	for _, tok := range slm.Tokenize(s) {
		if tok.Kind == slm.TokenNumber {
			isPct := strings.HasSuffix(tok.Text, "%")
			f, err := strconv.ParseFloat(strings.TrimSuffix(strings.ReplaceAll(tok.Text, ",", ""), "%"), 64)
			if err != nil {
				return 0, false, false
			}
			if !isPct && strings.HasPrefix(strings.TrimSpace(s[tok.End:]), "percent") {
				isPct = true
			}
			return f, isPct, true
		}
		// Stop scanning after a few tokens; the number must be near.
		if tok.Kind == slm.TokenWord && tok.Start > 24 {
			break
		}
	}
	return 0, false, false
}

func titleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if len(f) > 0 {
			fields[i] = strings.ToUpper(f[:1]) + f[1:]
		}
	}
	return strings.Join(fields, " ")
}
