package semop

import (
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/table"
)

// ToSQL renders the bound plan as a statement in the dialect of
// internal/sql, making Semantic Operator Synthesis a genuine
// text→SQL→execution pipeline. Comparison plans render one statement
// per compared item (the dialect has no OR); callers union results.
// The per-item lowering comes from logical.CompareBranches — the same
// compare-to-grouped-filter rewrite the IR optimizer and executor use
// — so the text→SQL pipeline and the optimizer cannot drift.
func (p *Plan) ToSQL() []string {
	if len(p.Comparison) > 0 && p.CompareCol != "" {
		node := &logical.Node{Op: logical.OpCompare,
			CompareCol: p.CompareCol,
			Items:      p.Comparison,
			Preds:      p.Filters,
			Aggs:       p.Aggs,
		}
		branches := logical.CompareBranches(node)
		out := make([]string, 0, len(branches))
		for _, br := range branches {
			sub := *p
			sub.Comparison = nil
			sub.GroupBy = br.GroupBy
			sub.Filters = br.Preds
			out = append(out, sub.renderOne())
		}
		return out
	}
	return []string{p.renderOne()}
}

func (p *Plan) renderOne() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case len(p.Aggs) > 0:
		parts := make([]string, 0, len(p.GroupBy)+len(p.Aggs))
		parts = append(parts, p.GroupBy...)
		for _, a := range p.Aggs {
			col := a.Col
			if col == "" {
				col = "*"
			}
			as := a.As
			if as == "" {
				as = strings.ToLower(a.Func.String()) + "_" + a.Col
			}
			parts = append(parts, fmt.Sprintf("%s(%s) AS %s", a.Func, col, as))
		}
		b.WriteString(strings.Join(parts, ", "))
	case len(p.Columns) > 0:
		b.WriteString(strings.Join(p.Columns, ", "))
	default:
		b.WriteString("*")
	}
	fmt.Fprintf(&b, " FROM %s", p.Table)
	if p.JoinTable != "" {
		fmt.Fprintf(&b, " JOIN %s ON %s.%s = %s.%s",
			p.JoinTable, p.Table, p.JoinLeftCol, p.JoinTable, p.JoinRightCol)
	}
	wheres := make([]string, 0, len(p.Filters)+len(p.JoinFilters))
	for _, f := range p.Filters {
		wheres = append(wheres, renderPred(f))
	}
	for _, f := range p.JoinFilters {
		wheres = append(wheres, renderPred(f))
	}
	if len(wheres) > 0 {
		b.WriteString(" WHERE " + strings.Join(wheres, " AND "))
	}
	if len(p.GroupBy) > 0 && len(p.Aggs) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(p.GroupBy, ", "))
	}
	for i, k := range p.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(k.Col)
		if k.Desc {
			b.WriteString(" DESC")
		}
	}
	if p.LimitRows > 0 {
		fmt.Fprintf(&b, " LIMIT %d", p.LimitRows)
	}
	return b.String()
}

func renderPred(f table.Pred) string {
	val := f.Val.String()
	if !f.Val.IsNumeric() && !f.Val.IsNull() && f.Val.Kind() != table.TypeBool {
		val = "'" + strings.ReplaceAll(val, "'", "''") + "'"
	}
	op := f.Op.String()
	return fmt.Sprintf("%s %s %s", f.Col, op, val)
}
