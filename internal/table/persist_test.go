package table

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCatalogJSONRoundTrip(t *testing.T) {
	c := NewCatalog()
	tbl := New("sales", Schema{
		{Name: "product", Type: TypeString},
		{Name: "revenue", Type: TypeFloat},
		{Name: "when", Type: TypeDate},
		{Name: "active", Type: TypeBool},
		{Name: "units", Type: TypeInt},
	})
	tbl.MustAppend([]Value{S("Alpha"), F(120.5), D("2024-05-01"), B(true), I(12)})
	tbl.MustAppend([]Value{S("Beta"), Null(TypeFloat), Null(TypeDate), B(false), Null(TypeInt)})
	c.Put(tbl)

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCatalogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := back.Get("sales")
	if err != nil {
		t.Fatal(err)
	}
	if bt.Len() != 2 || len(bt.Schema) != 5 {
		t.Fatalf("shape: %d rows, %d cols", bt.Len(), len(bt.Schema))
	}
	if Compare(bt.Rows[0][1], F(120.5)) != 0 {
		t.Errorf("float cell: %v", bt.Rows[0][1])
	}
	if !bt.Rows[1][1].IsNull() || !bt.Rows[1][4].IsNull() {
		t.Error("nulls lost")
	}
	if bt.Rows[0][3].Kind() != TypeBool || !bt.Rows[0][3].Bool() {
		t.Errorf("bool cell: %v", bt.Rows[0][3])
	}
	if bt.Rows[0][2].Str() != "2024-05-01" {
		t.Errorf("date cell: %v", bt.Rows[0][2])
	}
}

// TestCatalogJSONRoundTripsStats proves per-column statistics
// serialize and restore identically (modulo the epoch stamp, which is
// the loaded catalog's own), so a loaded system plans with the exact
// estimates the saved one used — no rebuild drift.
func TestCatalogJSONRoundTripsStats(t *testing.T) {
	c := NewCatalog()
	c.Put(statsFixture())
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"stats"`) {
		t.Fatal("statistics not serialized")
	}
	back, err := ReadCatalogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, want := back.StatsOf("sales"), c.StatsOf("sales")
	if got == nil {
		t.Fatal("loaded catalog has no statistics")
	}
	if !reflect.DeepEqual(clearEpochs(got), clearEpochs(want)) {
		t.Errorf("statistics drifted through persistence:\n%+v\nvs\n%+v", got, want)
	}
	// Pre-statistics files (no "stats" field) rebuild from rows.
	legacy := `{"tables":[{"name":"t","columns":[{"Name":"a","Type":1}],"rows":[["1"],["2"],["2"]]}]}`
	lc, err := ReadCatalogJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	ts := lc.StatsOf("t")
	if ts == nil || ts.Col("a").NDV != 2 {
		t.Errorf("legacy file did not rebuild statistics: %+v", ts)
	}
}

func TestCatalogJSONDeterministic(t *testing.T) {
	c := NewCatalog()
	for _, name := range []string{"zeta", "alpha"} {
		tbl := New(name, Schema{{Name: "x", Type: TypeInt}})
		tbl.MustAppend([]Value{I(1)})
		c.Put(tbl)
	}
	var a, b bytes.Buffer
	c.WriteJSON(&a)
	c.WriteJSON(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("not deterministic")
	}
	// alpha serialized before zeta.
	if strings.Index(a.String(), "alpha") > strings.Index(a.String(), "zeta") {
		t.Error("tables not sorted")
	}
}

func TestReadCatalogJSONErrors(t *testing.T) {
	if _, err := ReadCatalogJSON(strings.NewReader("{bad")); err == nil {
		t.Error("corrupt json accepted")
	}
	// Row arity mismatch.
	bad := `{"tables":[{"name":"t","columns":[{"Name":"a","Type":1}],"rows":[["1","2"]]}]}`
	if _, err := ReadCatalogJSON(strings.NewReader(bad)); err == nil {
		t.Error("ragged row accepted")
	}
	// Unparseable cell for the declared type.
	bad2 := `{"tables":[{"name":"t","columns":[{"Name":"a","Type":1}],"rows":[["xyz"]]}]}`
	if _, err := ReadCatalogJSON(strings.NewReader(bad2)); err == nil {
		t.Error("bad cell accepted")
	}
}

func TestCatalogJSONRoundTripsZones(t *testing.T) {
	c := NewCatalog()
	c.Put(zonesFixture(2*FragmentRows + 9))
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"zones"`) {
		t.Fatal("zone maps not serialized")
	}
	back, err := ReadCatalogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, want := back.ZonesOf("sales"), c.ZonesOf("sales")
	if got == nil {
		t.Fatal("loaded catalog has no zone maps")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zone maps drifted through persistence:\n%+v\nvs\n%+v", got, want)
	}
	// Pre-zones files rebuild deterministically from rows, so pruning
	// decisions cannot depend on file vintage.
	legacy := `{"tables":[{"name":"t","columns":[{"Name":"a","Type":1}],"rows":[["1"],["2"],["2"]],"stats":[{"col":"a","rows":3,"ndv":2,"min":"1","max":"2"}]}]}`
	lc, err := ReadCatalogJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := lc.Get("t")
	if z := lc.ZonesOf("t"); z == nil || !reflect.DeepEqual(z, BuildZones(lt)) {
		t.Errorf("legacy file did not rebuild zone maps: %+v", z)
	}
}

func TestReadCatalogJSONRejectsCorruptZones(t *testing.T) {
	for _, zones := range []string{
		`[{"lo":-1,"hi":2,"cols":[]}]`,                          // negative start
		`[{"lo":0,"hi":9,"cols":[]}]`,                           // end past the rows
		`[{"lo":2,"hi":2,"cols":[]}]`,                           // empty fragment
		`[{"lo":0,"hi":2,"cols":[]},{"lo":1,"hi":3,"cols":[]}]`, // overlap
	} {
		in := `{"tables":[{"name":"t","columns":[{"Name":"a","Type":1}],"rows":[["1"],["2"],["3"]],` +
			`"stats":[{"col":"a","rows":3,"ndv":3,"min":"1","max":"3"}],"zones":` + zones + `}]}`
		if _, err := ReadCatalogJSON(strings.NewReader(in)); err == nil {
			t.Errorf("corrupt zones %s loaded without error", zones)
		}
	}
}
