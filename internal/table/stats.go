package table

import (
	"sort"
	"strings"
)

// Statistics shape parameters. Exact mode keeps full per-value counts
// for low-cardinality columns (the workload's entity/quarter/category
// columns), making equality and CONTAINS estimates exact; everything
// else falls back to NDV division and equi-depth histogram
// interpolation.
const (
	// StatsMaxExact is the NDV ceiling below which a column keeps
	// exact per-value counts.
	StatsMaxExact = 64
	// StatsBuckets is the number of equi-depth histogram buckets.
	StatsBuckets = 8
)

// ValueCount is one distinct column value and its occurrence count.
type ValueCount struct {
	Val   Value
	Count int
}

// Bucket is one equi-depth histogram bucket over a column's sorted
// non-null values: it covers every value v with Lower ≤ v ≤ Upper.
// Buckets partition the value domain (a distinct value never straddles
// two buckets), so bucket counts sum to the column's non-null rows.
type Bucket struct {
	Lower Value // smallest value in the bucket
	Upper Value // largest value in the bucket
	Count int   // rows in the bucket
	NDV   int   // distinct values in the bucket
}

// ColStats summarizes one column for cardinality estimation: null and
// distinct counts, value bounds, an equi-depth histogram, and — for
// low-NDV columns — exact per-value counts.
type ColStats struct {
	Col   string
	Rows  int // table rows at build time (including nulls)
	Nulls int
	NDV   int   // distinct non-null values
	Min   Value // NULL when the column has no non-null values
	Max   Value
	Hist  []Bucket
	Exact []ValueCount // full distinct-value counts when NDV ≤ StatsMaxExact, ascending
}

// TableStats is the per-column statistics of one table, stamped with
// the catalog epoch it was built at. Built by Catalog.Put; consumed by
// the logical optimizer's selectivity model and every federated
// backend's Estimate.
type TableStats struct {
	Table string
	Rows  int
	Epoch uint64
	Cols  []ColStats // schema order
}

// Col returns the statistics of the named column (case-insensitive),
// or nil.
func (ts *TableStats) Col(name string) *ColStats {
	if ts == nil {
		return nil
	}
	for i := range ts.Cols {
		if strings.EqualFold(ts.Cols[i].Col, name) {
			return &ts.Cols[i]
		}
	}
	return nil
}

// BuildStats computes per-column statistics for the table. The build
// is deterministic for fixed rows: values sort by the engine's total
// Compare order and every derived quantity (NDV, bucket boundaries,
// exact counts) follows from that order alone.
func BuildStats(t *Table) *TableStats {
	ts := &TableStats{Table: t.Name, Rows: len(t.Rows), Cols: make([]ColStats, len(t.Schema))}
	for ci, col := range t.Schema {
		ts.Cols[ci] = buildColStats(col.Name, t.Rows, ci)
	}
	return ts
}

func buildColStats(name string, rows [][]Value, ci int) ColStats {
	cs := ColStats{Col: name, Rows: len(rows)}
	vals := make([]Value, 0, len(rows))
	for _, r := range rows {
		if r[ci].IsNull() {
			cs.Nulls++
			continue
		}
		vals = append(vals, r[ci])
	}
	if len(vals) == 0 {
		return cs
	}
	sort.SliceStable(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	cs.Min, cs.Max = vals[0], vals[len(vals)-1]

	// Distinct runs over the sorted values: (value, count) pairs in
	// ascending order. NDV, exact counts and histogram buckets all
	// derive from them.
	type run struct {
		val   Value
		count int
	}
	runs := []run{{val: vals[0], count: 1}}
	for _, v := range vals[1:] {
		if Equal(v, runs[len(runs)-1].val) {
			runs[len(runs)-1].count++
		} else {
			runs = append(runs, run{val: v, count: 1})
		}
	}
	cs.NDV = len(runs)
	if cs.NDV <= StatsMaxExact {
		cs.Exact = make([]ValueCount, cs.NDV)
		for i, r := range runs {
			cs.Exact[i] = ValueCount{Val: r.val, Count: r.count}
		}
	}

	// Equi-depth buckets: fill to the target depth, closing only on a
	// distinct-value boundary so no value straddles buckets.
	depth := (len(vals) + StatsBuckets - 1) / StatsBuckets
	var b *Bucket
	for _, r := range runs {
		if b == nil {
			cs.Hist = append(cs.Hist, Bucket{Lower: r.val})
			b = &cs.Hist[len(cs.Hist)-1]
		}
		b.Upper = r.val
		b.Count += r.count
		b.NDV++
		if b.Count >= depth {
			b = nil
		}
	}
	return cs
}

// EqCount returns the exact number of rows equal to v when the column
// keeps exact per-value counts; ok is false otherwise.
func (cs *ColStats) EqCount(v Value) (count int, ok bool) {
	if cs == nil || cs.Exact == nil {
		return 0, false
	}
	for _, vc := range cs.Exact {
		if Equal(vc.Val, v) {
			return vc.Count, true
		}
	}
	return 0, true // exact counts cover every distinct value: absent means zero
}

// Selectivity estimates the fraction of the column's rows (nulls
// included in the denominator, never in the numerator — NULL satisfies
// no comparison) matching the predicate. ok is false when the
// statistics cannot judge the operator, in which case the caller
// should fall back to the fixed heuristic.
func (cs *ColStats) Selectivity(p Pred) (frac float64, ok bool) {
	if cs == nil {
		return 0, false
	}
	if cs.Rows == 0 {
		return 0, true
	}
	if p.Val.IsNull() {
		return 0, true // NULL literal matches nothing
	}
	rows := float64(cs.Rows)
	nonNull := float64(cs.Rows - cs.Nulls)
	if nonNull == 0 {
		return 0, true
	}
	switch p.Op {
	case OpEq:
		return cs.eqFraction(p.Val), true
	case OpNe:
		f := nonNull/rows - cs.eqFraction(p.Val)
		if f < 0 {
			f = 0
		}
		return f, true
	case OpLt, OpLe, OpGt, OpGe:
		matched, ok := cs.rangeCount(p)
		if !ok {
			return 0, false
		}
		return clampFrac(matched / rows), true
	case OpContains:
		if cs.Exact == nil {
			return 0, false // substring frequency needs the value set
		}
		needle := strings.ToLower(p.Val.String())
		matched := 0
		for _, vc := range cs.Exact {
			if strings.Contains(strings.ToLower(vc.Val.String()), needle) {
				matched += vc.Count
			}
		}
		return float64(matched) / rows, true
	default:
		return 0, false
	}
}

// eqFraction is the equality fraction: exact when per-value counts are
// kept, out-of-bounds zero, else the uniform 1/NDV share of non-null
// rows.
func (cs *ColStats) eqFraction(v Value) float64 {
	rows := float64(cs.Rows)
	if n, ok := cs.EqCount(v); ok {
		return float64(n) / rows
	}
	if Compare(v, cs.Min) < 0 || Compare(v, cs.Max) > 0 {
		return 0
	}
	nonNull := float64(cs.Rows - cs.Nulls)
	return nonNull / float64(cs.NDV) / rows
}

// rangeCount estimates how many rows satisfy a range predicate: exact
// counts when available, else full buckets plus linear interpolation
// inside the boundary bucket (numeric columns) or a half-bucket
// assumption (ordered non-numeric columns).
func (cs *ColStats) rangeCount(p Pred) (float64, bool) {
	if cs.Exact != nil {
		matched := 0
		for _, vc := range cs.Exact {
			c := Compare(vc.Val, p.Val)
			keep := false
			switch p.Op {
			case OpLt:
				keep = c < 0
			case OpLe:
				keep = c <= 0
			case OpGt:
				keep = c > 0
			case OpGe:
				keep = c >= 0
			}
			if keep {
				matched += vc.Count
			}
		}
		return float64(matched), true
	}
	if len(cs.Hist) == 0 {
		return 0, false
	}
	// below estimates rows with value < p.Val (OpLt/OpGe boundary) or
	// ≤ p.Val (OpLe/OpGt boundary); without exact counts the equality
	// mass at the boundary is folded into the interpolation.
	var below float64
	for _, b := range cs.Hist {
		switch {
		case Compare(p.Val, b.Lower) < 0:
			// bucket entirely above the boundary
		case Compare(p.Val, b.Upper) >= 0:
			below += float64(b.Count)
		default:
			below += float64(b.Count) * interpolate(b.Lower, b.Upper, p.Val)
		}
	}
	nonNull := float64(cs.Rows - cs.Nulls)
	switch p.Op {
	case OpLt, OpLe:
		return below, true
	default: // OpGt, OpGe
		return nonNull - below, true
	}
}

// interpolate returns the fraction of a bucket's rows assumed below v,
// linearly for numeric bounds and half the bucket otherwise.
func interpolate(lower, upper, v Value) float64 {
	if lower.IsNumeric() && upper.IsNumeric() && v.IsNumeric() {
		lo, hi := lower.Float(), upper.Float()
		if hi > lo {
			return clampFrac((v.Float() - lo) / (hi - lo))
		}
	}
	return 0.5
}

func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// DefaultSelectivity is the fixed per-predicate row-fraction heuristic
// used wherever per-column statistics are unavailable (unknown
// columns, statistics-free backends). It is the pre-statistics cost
// model, kept as the shared fallback so every estimator degrades to
// the same deterministic guess.
func DefaultSelectivity(p Pred) float64 {
	switch p.Op {
	case OpEq:
		return 0.1
	case OpNe:
		return 0.9
	case OpContains:
		return 0.5
	default: // range comparisons
		return 1.0 / 3
	}
}

// SelectivityOf estimates p's row fraction from the column's
// statistics when they can judge it, falling back to
// DefaultSelectivity. A nil receiver is the statistics-free case.
func (ts *TableStats) SelectivityOf(p Pred) float64 {
	if ts != nil {
		if f, ok := ts.Col(p.Col).Selectivity(p); ok {
			return f
		}
	}
	return DefaultSelectivity(p)
}

// EstimateRows applies the selectivities of a predicate conjunction
// (independence assumed) to n rows, keeping at least one expected row
// for any non-empty input.
func (ts *TableStats) EstimateRows(n int, preds []Pred) int {
	if n == 0 {
		return 0
	}
	f := float64(n)
	for _, p := range preds {
		f *= ts.SelectivityOf(p)
	}
	if out := int(f); out >= 1 {
		return out
	}
	return 1
}
