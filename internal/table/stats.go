package table

import (
	"fmt"
	"sort"
	"strings"
)

// Statistics shape parameters. Exact mode keeps full per-value counts
// for low-cardinality columns (the workload's entity/quarter/category
// columns), making equality and CONTAINS estimates exact; everything
// else falls back to NDV division and equi-depth histogram
// interpolation.
const (
	// StatsMaxExact is the NDV ceiling below which a column keeps
	// exact per-value counts.
	StatsMaxExact = 64
	// StatsBuckets is the number of equi-depth histogram buckets.
	StatsBuckets = 8
)

// ValueCount is one distinct column value and its occurrence count.
type ValueCount struct {
	Val   Value
	Count int
}

// Bucket is one equi-depth histogram bucket over a column's sorted
// non-null values: it covers every value v with Lower ≤ v ≤ Upper.
// Buckets partition the value domain (a distinct value never straddles
// two buckets), so bucket counts sum to the column's non-null rows.
type Bucket struct {
	Lower Value // smallest value in the bucket
	Upper Value // largest value in the bucket
	Count int   // rows in the bucket
	NDV   int   // distinct values in the bucket
}

// ColStats summarizes one column for cardinality estimation: null and
// distinct counts, value bounds, an equi-depth histogram, and — for
// low-NDV columns — exact per-value counts.
type ColStats struct {
	Col   string
	Rows  int // table rows at build time (including nulls)
	Nulls int
	NDV   int   // distinct non-null values
	Min   Value // NULL when the column has no non-null values
	Max   Value
	Hist  []Bucket
	Exact []ValueCount // full distinct-value counts when NDV ≤ StatsMaxExact, ascending
}

// TableStats is the per-column statistics of one table, stamped with
// the catalog epoch it was built at. Built by Catalog.Put; consumed by
// the logical optimizer's selectivity model and every federated
// backend's Estimate.
type TableStats struct {
	Table string
	Rows  int
	Epoch uint64
	Cols  []ColStats // schema order
}

// Col returns the statistics of the named column (case-insensitive),
// or nil.
func (ts *TableStats) Col(name string) *ColStats {
	if ts == nil {
		return nil
	}
	for i := range ts.Cols {
		if strings.EqualFold(ts.Cols[i].Col, name) {
			return &ts.Cols[i]
		}
	}
	return nil
}

// BuildStats computes per-column statistics for the table. The build
// is deterministic for fixed rows: values sort by the engine's total
// Compare order and every derived quantity (NDV, bucket boundaries,
// exact counts) follows from that order alone.
func BuildStats(t *Table) *TableStats {
	ts, _ := buildStatsRuns(t)
	return ts
}

// buildStatsRuns is BuildStats plus the per-column distinct runs
// (ascending (value, count) pairs covering every non-null cell) the
// statistics derive from. Catalog.Put retains the runs so an
// append-only re-Put can merge only the appended rows instead of
// re-sorting the whole column.
func buildStatsRuns(t *Table) (*TableStats, [][]ValueCount) {
	ts := &TableStats{Table: t.Name, Rows: len(t.Rows), Cols: make([]ColStats, len(t.Schema))}
	runs := make([][]ValueCount, len(t.Schema))
	for ci, col := range t.Schema {
		vals, nulls := collectCol(t.Rows, ci)
		runs[ci] = runsOf(vals)
		ts.Cols[ci] = finishColStats(col.Name, len(t.Rows), nulls, runs[ci])
	}
	return ts, runs
}

// collectCol gathers a column's non-null values in the engine's total
// Compare order (stable, so ties keep row order) plus its null count.
func collectCol(rows [][]Value, ci int) (vals []Value, nulls int) {
	vals = make([]Value, 0, len(rows))
	for _, r := range rows {
		if r[ci].IsNull() {
			nulls++
			continue
		}
		vals = append(vals, r[ci])
	}
	sort.SliceStable(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	return vals, nulls
}

// runsOf collapses sorted values into ascending distinct runs. The
// representative of a run is its first value in the stable order —
// i.e. the earliest-row value among equals — which is what makes
// incremental merging (older runs first) bit-equivalent to a full
// rebuild.
func runsOf(vals []Value) []ValueCount {
	if len(vals) == 0 {
		return nil
	}
	runs := []ValueCount{{Val: vals[0], Count: 1}}
	for _, v := range vals[1:] {
		if Equal(v, runs[len(runs)-1].Val) {
			runs[len(runs)-1].Count++
		} else {
			runs = append(runs, ValueCount{Val: v, Count: 1})
		}
	}
	return runs
}

// mergeRuns merges two ascending distinct-run lists into a fresh one.
// Where a value appears in both, the older list's representative wins
// (its rows came first), reproducing exactly the runs a full stable
// sort of the combined rows would produce.
func mergeRuns(old, delta []ValueCount) []ValueCount {
	if len(delta) == 0 {
		return old
	}
	out := make([]ValueCount, 0, len(old)+len(delta))
	i, j := 0, 0
	for i < len(old) && j < len(delta) {
		switch c := Compare(old[i].Val, delta[j].Val); {
		case c < 0:
			out = append(out, old[i])
			i++
		case c > 0:
			out = append(out, delta[j])
			j++
		default:
			out = append(out, ValueCount{Val: old[i].Val, Count: old[i].Count + delta[j].Count})
			i++
			j++
		}
	}
	out = append(out, old[i:]...)
	out = append(out, delta[j:]...)
	return out
}

// finishColStats derives one column's statistics from its distinct
// runs — the one derivation shared by the full build and the
// incremental merge, so the two paths are bit-equivalent by
// construction (pinned by FuzzIncrementalStats).
func finishColStats(name string, totalRows, nulls int, runs []ValueCount) ColStats {
	cs := ColStats{Col: name, Rows: totalRows, Nulls: nulls}
	if len(runs) == 0 {
		return cs
	}
	nonNull := 0
	for _, r := range runs {
		nonNull += r.Count
	}
	cs.Min, cs.Max = runs[0].Val, runs[len(runs)-1].Val
	cs.NDV = len(runs)
	if cs.NDV <= StatsMaxExact {
		cs.Exact = make([]ValueCount, cs.NDV)
		copy(cs.Exact, runs)
	}

	// Equi-depth buckets: fill to the target depth, closing only on a
	// distinct-value boundary so no value straddles buckets.
	depth := (nonNull + StatsBuckets - 1) / StatsBuckets
	var b *Bucket
	for _, r := range runs {
		if b == nil {
			cs.Hist = append(cs.Hist, Bucket{Lower: r.Val})
			b = &cs.Hist[len(cs.Hist)-1]
		}
		b.Upper = r.Val
		b.Count += r.Count
		b.NDV++
		if b.Count >= depth {
			b = nil
		}
	}
	return cs
}

// extendStatsRuns rebuilds the statistics of a table whose first
// oldRows rows are unchanged since prev was built: only the appended
// rows are collected and sorted, then merged into the retained runs.
// For d appended rows this costs O(d log d + NDV) per column instead
// of the full O(n log n) re-sort, and produces statistics bit-equal to
// BuildStats over the final rows.
func extendStatsRuns(prev *TableStats, prevRuns [][]ValueCount, t *Table, oldRows int) (*TableStats, [][]ValueCount) {
	ts := &TableStats{Table: t.Name, Rows: len(t.Rows), Cols: make([]ColStats, len(t.Schema))}
	runs := make([][]ValueCount, len(t.Schema))
	for ci, col := range t.Schema {
		vals, deltaNulls := collectCol(t.Rows[oldRows:], ci)
		runs[ci] = mergeRuns(prevRuns[ci], runsOf(vals))
		ts.Cols[ci] = finishColStats(col.Name, len(t.Rows), prev.Cols[ci].Nulls+deltaNulls, runs[ci])
	}
	return ts, runs
}

// EqCount returns the exact number of rows equal to v when the column
// keeps exact per-value counts; ok is false otherwise.
func (cs *ColStats) EqCount(v Value) (count int, ok bool) {
	if cs == nil || cs.Exact == nil {
		return 0, false
	}
	for _, vc := range cs.Exact {
		if Equal(vc.Val, v) {
			return vc.Count, true
		}
	}
	return 0, true // exact counts cover every distinct value: absent means zero
}

// Selectivity estimates the fraction of the column's rows (nulls
// included in the denominator, never in the numerator — NULL satisfies
// no comparison) matching the predicate. ok is false when the
// statistics cannot judge the operator, in which case the caller
// should fall back to the fixed heuristic.
func (cs *ColStats) Selectivity(p Pred) (frac float64, ok bool) {
	if cs == nil {
		return 0, false
	}
	if cs.Rows == 0 {
		return 0, true
	}
	if p.Val.IsNull() {
		return 0, true // NULL literal matches nothing
	}
	rows := float64(cs.Rows)
	nonNull := float64(cs.Rows - cs.Nulls)
	if nonNull == 0 {
		return 0, true
	}
	if cs.Refutes(p) {
		// Table-level zone bounds prove the predicate empty: the exact
		// zero the fragment pruner acts on, surfaced through the same
		// selectivity model the optimizer and planner consult.
		return 0, true
	}
	switch p.Op {
	case OpEq:
		return cs.eqFraction(p.Val), true
	case OpNe:
		f := nonNull/rows - cs.eqFraction(p.Val)
		if f < 0 {
			f = 0
		}
		return f, true
	case OpLt, OpLe, OpGt, OpGe:
		matched, ok := cs.rangeCount(p)
		if !ok {
			return 0, false
		}
		return clampFrac(matched / rows), true
	case OpContains:
		if cs.Exact == nil {
			return 0, false // substring frequency needs the value set
		}
		needle := strings.ToLower(p.Val.String())
		matched := 0
		for _, vc := range cs.Exact {
			if strings.Contains(strings.ToLower(vc.Val.String()), needle) {
				matched += vc.Count
			}
		}
		return float64(matched) / rows, true
	default:
		return 0, false
	}
}

// Refutes reports whether the column statistics prove that no row can
// satisfy p — the table-level analogue of ZoneCol.Refutes, using the
// column's min/max bounds and (when kept) exact value counts. Only
// sound proofs qualify: histogram interpolation never refutes.
func (cs *ColStats) Refutes(p Pred) bool {
	if cs == nil {
		return false
	}
	if p.Val.IsNull() {
		return true
	}
	if cs.Rows == 0 || cs.Rows == cs.Nulls {
		return true // no non-null cell to satisfy anything
	}
	switch p.Op {
	case OpEq:
		if cs.Exact != nil {
			n, _ := cs.EqCount(p.Val)
			return n == 0
		}
		return Compare(p.Val, cs.Min) < 0 || Compare(p.Val, cs.Max) > 0
	case OpNe:
		if cs.Exact != nil {
			return len(cs.Exact) == 1 && Equal(cs.Exact[0].Val, p.Val)
		}
		return Equal(cs.Min, cs.Max) && Equal(cs.Min, p.Val)
	case OpLt:
		return Compare(cs.Min, p.Val) >= 0
	case OpLe:
		return Compare(cs.Min, p.Val) > 0
	case OpGt:
		return Compare(cs.Max, p.Val) <= 0
	case OpGe:
		return Compare(cs.Max, p.Val) < 0
	case OpContains:
		if cs.Exact == nil {
			return false
		}
		needle := strings.ToLower(p.Val.String())
		for _, vc := range cs.Exact {
			if strings.Contains(strings.ToLower(vc.Val.String()), needle) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Refutes reports whether the statistics prove the predicate
// conjunction returns no rows: an empty table, or any single conjunct
// refuted by its column's statistics.
func (ts *TableStats) Refutes(preds []Pred) bool {
	if ts == nil {
		return false
	}
	if ts.Rows == 0 {
		return true
	}
	for _, p := range preds {
		if ts.Col(p.Col).Refutes(p) {
			return true
		}
	}
	return false
}

// eqFraction is the equality fraction: exact when per-value counts are
// kept, out-of-bounds zero, else the uniform 1/NDV share of non-null
// rows.
func (cs *ColStats) eqFraction(v Value) float64 {
	rows := float64(cs.Rows)
	if n, ok := cs.EqCount(v); ok {
		return float64(n) / rows
	}
	if Compare(v, cs.Min) < 0 || Compare(v, cs.Max) > 0 {
		return 0
	}
	nonNull := float64(cs.Rows - cs.Nulls)
	return nonNull / float64(cs.NDV) / rows
}

// rangeCount estimates how many rows satisfy a range predicate: exact
// counts when available, else full buckets plus linear interpolation
// inside the boundary bucket (numeric columns) or a half-bucket
// assumption (ordered non-numeric columns).
func (cs *ColStats) rangeCount(p Pred) (float64, bool) {
	if cs.Exact != nil {
		matched := 0
		for _, vc := range cs.Exact {
			c := Compare(vc.Val, p.Val)
			keep := false
			switch p.Op {
			case OpLt:
				keep = c < 0
			case OpLe:
				keep = c <= 0
			case OpGt:
				keep = c > 0
			case OpGe:
				keep = c >= 0
			}
			if keep {
				matched += vc.Count
			}
		}
		return float64(matched), true
	}
	if len(cs.Hist) == 0 {
		return 0, false
	}
	// below estimates rows with value < p.Val (OpLt/OpGe boundary) or
	// ≤ p.Val (OpLe/OpGt boundary); without exact counts the equality
	// mass at the boundary is folded into the interpolation.
	var below float64
	for _, b := range cs.Hist {
		switch {
		case Compare(p.Val, b.Lower) < 0:
			// bucket entirely above the boundary
		case Compare(p.Val, b.Upper) >= 0:
			below += float64(b.Count)
		default:
			below += float64(b.Count) * interpolate(b.Lower, b.Upper, p.Val)
		}
	}
	nonNull := float64(cs.Rows - cs.Nulls)
	switch p.Op {
	case OpLt, OpLe:
		return below, true
	default: // OpGt, OpGe
		return nonNull - below, true
	}
}

// interpolate returns the fraction of a bucket's rows assumed below v,
// linearly for numeric bounds and half the bucket otherwise.
func interpolate(lower, upper, v Value) float64 {
	if lower.IsNumeric() && upper.IsNumeric() && v.IsNumeric() {
		lo, hi := lower.Float(), upper.Float()
		if hi > lo {
			return clampFrac((v.Float() - lo) / (hi - lo))
		}
	}
	return 0.5
}

func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// DefaultSelectivity is the fixed per-predicate row-fraction heuristic
// used wherever per-column statistics are unavailable (unknown
// columns, statistics-free backends). It is the pre-statistics cost
// model, kept as the shared fallback so every estimator degrades to
// the same deterministic guess.
func DefaultSelectivity(p Pred) float64 {
	switch p.Op {
	case OpEq:
		return 0.1
	case OpNe:
		return 0.9
	case OpContains:
		return 0.5
	default: // range comparisons
		return 1.0 / 3
	}
}

// SelectivityOf estimates p's row fraction from the column's
// statistics when they can judge it, falling back to
// DefaultSelectivity. A nil receiver is the statistics-free case.
func (ts *TableStats) SelectivityOf(p Pred) float64 {
	if ts != nil {
		if f, ok := ts.Col(p.Col).Selectivity(p); ok {
			return f
		}
	}
	return DefaultSelectivity(p)
}

// Describe renders the table statistics for diagnostics (uniquery
// -stats): one line per column with row/null/NDV counts, bounds, and
// histogram/exact-set sizes.
func (ts *TableStats) Describe() string {
	if ts == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stats: table %s rows=%d epoch=%d\n", ts.Table, ts.Rows, ts.Epoch)
	for _, cs := range ts.Cols {
		fmt.Fprintf(&b, "  %-16s ndv=%d nulls=%d min=%s max=%s buckets=%d",
			cs.Col, cs.NDV, cs.Nulls, cs.Min, cs.Max, len(cs.Hist))
		if cs.Exact != nil {
			fmt.Fprintf(&b, " exact=%d", len(cs.Exact))
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

// EstimateRows applies the selectivities of a predicate conjunction
// (independence assumed) to n rows, keeping at least one expected row
// for any non-empty input.
func (ts *TableStats) EstimateRows(n int, preds []Pred) int {
	if n == 0 {
		return 0
	}
	f := float64(n)
	for _, p := range preds {
		f *= ts.SelectivityOf(p)
	}
	if out := int(f); out >= 1 {
		return out
	}
	return 1
}
