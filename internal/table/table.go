package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema []Column

// ColIndex returns the index of the named column (case-insensitive),
// or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Sentinel errors for table operations.
var (
	ErrSchemaMismatch = errors.New("table: row does not match schema")
	ErrNoColumn       = errors.New("table: no such column")
	ErrNoTable        = errors.New("table: no such table")
)

// Table is an in-memory relation.
type Table struct {
	Name   string
	Schema Schema
	Rows   [][]Value
}

// New returns an empty table with the given schema.
func New(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// Append adds a row after validating arity and types. NULLs of any
// declared type are accepted in any column.
func (t *Table) Append(row []Value) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("%w: got %d values, want %d", ErrSchemaMismatch, len(row), len(t.Schema))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.Kind() != t.Schema[i].Type {
			// Int is acceptable where float is declared.
			if t.Schema[i].Type == TypeFloat && v.Kind() == TypeInt {
				row[i] = F(v.Float())
				continue
			}
			return fmt.Errorf("%w: column %s wants %v, got %v",
				ErrSchemaMismatch, t.Schema[i].Name, t.Schema[i].Type, v.Kind())
		}
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// MustAppend appends and panics on schema mismatch; for test fixtures
// and generators whose rows are constructed to match.
func (t *Table) MustAppend(row []Value) {
	if err := t.Append(row); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Col returns the values of the named column.
func (t *Table) Col(name string) ([]Value, error) {
	idx := t.Schema.ColIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoColumn, name)
	}
	out := make([]Value, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out, nil
}

// Clone returns a deep copy (rows are copied; values are immutable).
func (t *Table) Clone() *Table {
	nt := New(t.Name, append(Schema(nil), t.Schema...))
	nt.Rows = make([][]Value, len(t.Rows))
	for i, r := range t.Rows {
		nt.Rows[i] = append([]Value(nil), r...)
	}
	return nt
}

// String renders the table as an aligned ASCII grid (capped at 20 rows)
// for CLI output and examples.
func (t *Table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.Schema))
	for i, c := range t.Schema {
		widths[i] = len(c.Name)
	}
	maxRows := len(t.Rows)
	truncated := false
	if maxRows > 20 {
		maxRows = 20
		truncated = true
	}
	for _, r := range t.Rows[:maxRows] {
		for i, v := range r {
			if l := len(v.String()); l > widths[i] {
				widths[i] = l
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Schema.Names())
	sep := make([]string, len(t.Schema))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows[:maxRows] {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		writeRow(cells)
	}
	if truncated {
		fmt.Fprintf(&b, "... (%d rows total)\n", len(t.Rows))
	}
	return b.String()
}

// ReadCSV loads a table from CSV with a header row. Column types are
// inferred from the first non-empty cell of each column unless schema
// is non-nil, in which case it must match the header arity.
func ReadCSV(name string, r io.Reader, schema Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("table: csv %s has no header", name)
	}
	header := records[0]
	body := records[1:]
	if schema == nil {
		schema = make(Schema, len(header))
		for i, h := range header {
			typ := TypeString
			for _, rec := range body {
				if i < len(rec) && strings.TrimSpace(rec[i]) != "" {
					typ = Infer(rec[i])
					break
				}
			}
			schema[i] = Column{Name: strings.TrimSpace(h), Type: typ}
		}
	} else if len(schema) != len(header) {
		return nil, fmt.Errorf("%w: header has %d columns, schema %d",
			ErrSchemaMismatch, len(header), len(schema))
	}
	t := New(name, schema)
	for ln, rec := range body {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("table: csv %s line %d: %w", name, ln+2, ErrSchemaMismatch)
		}
		row := make([]Value, len(rec))
		for i, cell := range rec {
			v, err := Parse(schema[i].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("table: csv %s line %d: %w", name, ln+2, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return nil, fmt.Errorf("table: csv %s line %d: %w", name, ln+2, err)
		}
	}
	return t, nil
}

// WriteCSV writes the table with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return fmt.Errorf("table: write csv: %w", err)
	}
	for _, r := range t.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			if v.IsNull() {
				cells[i] = ""
			} else {
				cells[i] = v.String()
			}
		}
		if err := cw.Write(cells); err != nil {
			return fmt.Errorf("table: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Catalog is a named collection of tables — the structured half of the
// heterogeneous database. Alongside every table it keeps the
// per-column statistics (BuildStats) and per-fragment zone maps
// (BuildZones) the cost-based planning stack consumes, maintained
// incrementally: an append-only re-Put merges delta statistics for
// only the rows it appended and extends the zone maps of only the
// fragments it touched, while any other mutation falls back to a full
// rebuild.
type Catalog struct {
	tables  map[string]*Table
	stats   map[string]*TableStats
	zones   map[string]*Zones
	frags   map[string]*Frags
	state   map[string]*tableState
	rollups map[string]*rollupState
	epoch   uint64
}

// tableState is what Put retains to recognize (and serve) the
// append-only fast path: an independent snapshot of the row-slice
// headers the current statistics were built from, the schema at build
// time, and the per-column distinct runs the incremental merge extends.
type tableState struct {
	rows   [][]Value
	schema Schema
	runs   [][]ValueCount
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		stats:   make(map[string]*TableStats),
		zones:   make(map[string]*Zones),
		frags:   make(map[string]*Frags),
		state:   make(map[string]*tableState),
		rollups: make(map[string]*rollupState),
	}
}

// Put registers a table, replacing any existing table of that name,
// advances the catalog epoch, and refreshes the table's per-column
// statistics and fragment zone maps (stamped with the new epoch).
// Callers that mutate a registered table in place must re-Put it so
// epoch-keyed consumers (plan caches, scan indexes, statistics, zone
// maps) observe the change.
//
// When the re-Put is append-only — the schema is unchanged and the
// previously registered rows are the same row slices, with new rows
// only appended (the engine never edits a row after Append, so
// identical headers mean identical content) — statistics merge only
// the appended rows' delta and zone maps extend only the open tail
// fragment: O(delta) work instead of the O(n log n) full rebuild,
// which remains the slow path for every other mutation shape. Both
// paths yield bit-identical results (FuzzIncrementalStats).
func (c *Catalog) Put(t *Table) {
	key := strings.ToLower(t.Name)
	if _, ok := c.rollups[key]; ok {
		// The caller is reclaiming a rollup's name for an ordinary
		// table: deregister the rollup so its maintainer never
		// overwrites the caller's data.
		delete(c.rollups, key)
	}
	c.putTable(t)
	c.maintainRollups(key, t)
}

// putTable is Put without the rollup hooks: the shared registration
// path for base tables and rollup materializations (which must not
// re-trigger maintenance).
func (c *Catalog) putTable(t *Table) {
	key := strings.ToLower(t.Name)
	var (
		ts   *TableStats
		runs [][]ValueCount
		z    *Zones
		fr   *Frags
	)
	if st := c.state[key]; st != nil && schemaEqual(st.schema, t.Schema) && rowsPrefixUnchanged(t.Rows, st.rows) {
		ts, runs = extendStatsRuns(c.stats[key], st.runs, t, len(st.rows))
		z = ExtendZones(c.zones[key], t)
		fr = ExtendFrags(c.frags[key], t)
	} else {
		ts, runs = buildStatsRuns(t)
		z = BuildZones(t)
		fr = BuildFrags(t)
	}
	c.state[key] = &tableState{
		rows:   append([][]Value(nil), t.Rows...),
		schema: append(Schema(nil), t.Schema...),
		runs:   runs,
	}
	c.putWithStats(t, ts, z, fr)
}

// rowsPrefixUnchanged reports whether cur still starts with exactly
// the row slices of prev: same count or more, with every prefix row
// being the identical slice header (base pointer and length). Rows are
// immutable once appended, so header identity implies content
// identity; a replaced, truncated or widened row changes its header
// and forces the full rebuild.
func rowsPrefixUnchanged(cur, prev [][]Value) bool {
	if len(cur) < len(prev) {
		return false
	}
	for i, p := range prev {
		if !sameRowSlice(cur[i], p) {
			return false
		}
	}
	return true
}

func sameRowSlice(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

func schemaEqual(a, b Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// putWithStats registers a table with precomputed statistics, zone
// maps and columnar fragments — the persistence loader's entry, which
// restores what it serialized instead of rebuilding. A nil fr extracts
// fragments here (columnar form is derived data and never serialized).
func (c *Catalog) putWithStats(t *Table, ts *TableStats, z *Zones, fr *Frags) {
	key := strings.ToLower(t.Name)
	if fr == nil {
		fr = BuildFrags(t)
	}
	c.tables[key] = t
	c.epoch++
	ts.Epoch = c.epoch
	c.stats[key] = ts
	c.zones[key] = z
	c.frags[key] = fr
}

// StatsOf returns the per-column statistics built at the named table's
// last Put, or nil for an unknown table. The returned statistics are
// shared and must not be mutated.
func (c *Catalog) StatsOf(name string) *TableStats {
	return c.stats[strings.ToLower(name)]
}

// ZonesOf returns the fragment zone maps built at the named table's
// last Put, or nil for an unknown table. The returned zones are shared
// and must not be mutated.
func (c *Catalog) ZonesOf(name string) *Zones {
	return c.zones[strings.ToLower(name)]
}

// FragsOf returns the columnar fragments extracted at the named
// table's last Put, or nil for an unknown table. The returned
// fragments are shared and must not be mutated.
func (c *Catalog) FragsOf(name string) *Frags {
	return c.frags[strings.ToLower(name)]
}

// Epoch counts catalog mutations. Anything derived from catalog
// contents (physical plans, per-column scan indexes) is valid only for
// the epoch it was computed at.
func (c *Catalog) Epoch() uint64 { return c.epoch }

// Get returns the named table or ErrNoTable.
func (c *Catalog) Get(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// Names returns registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of tables.
func (c *Catalog) Len() int { return len(c.tables) }
