package table

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := S("hi"); v.Kind() != TypeString || v.Str() != "hi" || v.IsNull() {
		t.Errorf("S: %+v", v)
	}
	if v := I(42); v.Int() != 42 || v.Float() != 42 {
		t.Errorf("I: %+v", v)
	}
	if v := F(2.5); v.Float() != 2.5 || !v.IsNumeric() {
		t.Errorf("F: %+v", v)
	}
	if v := B(true); !v.Bool() {
		t.Errorf("B: %+v", v)
	}
	if v := D("2024-05-01"); v.Kind() != TypeDate || v.Str() != "2024-05-01" {
		t.Errorf("D: %+v", v)
	}
	if v := Null(TypeInt); !v.IsNull() || v.String() != "NULL" {
		t.Errorf("Null: %+v", v)
	}
}

func TestCompareNumericCrossType(t *testing.T) {
	if Compare(I(2), F(2.0)) != 0 {
		t.Error("int 2 != float 2.0")
	}
	if Compare(I(1), F(1.5)) != -1 {
		t.Error("1 should be < 1.5")
	}
	if Compare(F(3.5), I(3)) != 1 {
		t.Error("3.5 should be > 3")
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(Null(TypeInt), I(0)) != -1 {
		t.Error("NULL should sort before values")
	}
	if Compare(Null(TypeInt), Null(TypeString)) != 0 {
		t.Error("NULLs should compare equal")
	}
	if Compare(S(""), Null(TypeString)) != 1 {
		t.Error("empty string should sort after NULL")
	}
}

func TestCompareStringsAndDates(t *testing.T) {
	if Compare(S("apple"), S("banana")) >= 0 {
		t.Error("string compare broken")
	}
	if Compare(D("2024-01-01"), D("2024-02-01")) >= 0 {
		t.Error("date compare broken")
	}
	if Compare(B(false), B(true)) != -1 {
		t.Error("bool compare broken")
	}
}

func TestKeyEquality(t *testing.T) {
	// Values that compare equal must share a key (hash-join invariant).
	if I(2).Key() != F(2.0).Key() {
		t.Error("int/float key mismatch")
	}
	if S("x").Key() == Null(TypeString).Key() {
		t.Error("null key collides with value key")
	}
}

func TestKeyCompareConsistencyProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := I(a), I(b)
		if Compare(va, vb) == 0 {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		typ  ColType
		raw  string
		want string
	}{
		{TypeInt, "42", "42"},
		{TypeInt, "1,200", "1200"},
		{TypeFloat, "2.5", "2.5"},
		{TypeFloat, "15%", "15"},
		{TypeBool, "true", "true"},
		{TypeString, "hello", "hello"},
		{TypeDate, "2024-05-01", "2024-05-01"},
	}
	for _, tc := range tests {
		v, err := Parse(tc.typ, tc.raw)
		if err != nil {
			t.Errorf("Parse(%v, %q): %v", tc.typ, tc.raw, err)
			continue
		}
		if v.String() != tc.want {
			t.Errorf("Parse(%v, %q) = %q, want %q", tc.typ, tc.raw, v.String(), tc.want)
		}
	}
}

func TestParseEmptyIsNull(t *testing.T) {
	v, err := Parse(TypeInt, "  ")
	if err != nil || !v.IsNull() {
		t.Errorf("empty parse: %v %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(TypeInt, "abc"); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := Parse(TypeFloat, "xyz"); err == nil {
		t.Error("bad float accepted")
	}
	if _, err := Parse(TypeBool, "maybe"); err == nil {
		t.Error("bad bool accepted")
	}
}

func TestInfer(t *testing.T) {
	tests := map[string]ColType{
		"42":         TypeInt,
		"3.14":       TypeFloat,
		"12%":        TypeFloat,
		"1,200":      TypeInt,
		"true":       TypeBool,
		"2024-05-01": TypeDate,
		"hello":      TypeString,
		"":           TypeString,
		"2024-5-1":   TypeString,
	}
	for raw, want := range tests {
		if got := Infer(raw); got != want {
			t.Errorf("Infer(%q) = %v, want %v", raw, got, want)
		}
	}
}

func TestColTypeString(t *testing.T) {
	if TypeInt.String() != "int" || TypeDate.String() != "date" || ColType(99).String() != "unknown" {
		t.Error("ColType.String broken")
	}
}

func TestValueStringFormats(t *testing.T) {
	if F(2.50).String() != "2.5" {
		t.Errorf("float format: %q", F(2.50).String())
	}
	if I(-7).String() != "-7" {
		t.Errorf("int format: %q", I(-7).String())
	}
	if B(false).String() != "false" {
		t.Errorf("bool format: %q", B(false).String())
	}
}
