package table

import (
	"fmt"
	"sort"
	"strings"
)

// CmpOp is a comparison operator in a predicate.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpContains // case-insensitive substring, strings only
)

// String renders the operator.
func (o CmpOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpContains:
		return "CONTAINS"
	default:
		return "?"
	}
}

// Pred is a single-column comparison predicate.
type Pred struct {
	Col string
	Op  CmpOp
	Val Value
}

// String renders the predicate.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val)
}

// Eval applies the predicate to a row of the given schema. NULL never
// satisfies any comparison (SQL three-valued logic collapsed to false).
func (p Pred) Eval(schema Schema, row []Value) (bool, error) {
	idx := schema.ColIndex(p.Col)
	if idx < 0 {
		return false, fmt.Errorf("%w: %s", ErrNoColumn, p.Col)
	}
	return p.Match(row[idx])
}

// Match applies the predicate's comparison to a single cell. It is the
// one comparison body both executors share: Eval resolves the column
// and calls it per row, and the vectorized kernels call it on every
// path their typed fast paths do not cover — so the two executors
// cannot diverge on comparison semantics.
func (p Pred) Match(v Value) (bool, error) {
	if v.IsNull() || p.Val.IsNull() {
		return false, nil
	}
	if p.Op == OpContains {
		return strings.Contains(strings.ToLower(v.String()), strings.ToLower(p.Val.String())), nil
	}
	c := Compare(v, p.Val)
	switch p.Op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	default:
		return false, fmt.Errorf("table: unknown operator %v", p.Op)
	}
}

// Filter returns the rows satisfying all predicates (conjunction).
func Filter(t *Table, preds ...Pred) (*Table, error) {
	return FilterHint(t, 0, preds...)
}

// FilterHint is Filter with a result-size hint (rows, from the
// optimizer's cardinality estimate) used to pre-size the output slice;
// 0 means no hint. The hint never changes results, only allocation.
func FilterHint(t *Table, hint int, preds ...Pred) (*Table, error) {
	out := New(t.Name, t.Schema)
	if hint > 0 {
		if hint > len(t.Rows) {
			hint = len(t.Rows)
		}
		out.Rows = make([][]Value, 0, hint)
	}
	for _, row := range t.Rows {
		keep := true
		for _, p := range preds {
			ok, err := p.Eval(t.Schema, row)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// FilterRanges filters only the rows inside the given ascending,
// disjoint row ranges — the scan shape fragment pruning produces: the
// pruned fragments are provably empty under the predicates, so the
// result (rows and order) is identical to a full-table Filter while
// only the surviving rows are read. scanned reports how many rows were
// actually visited.
func FilterRanges(t *Table, ranges []RowRange, preds ...Pred) (out *Table, scanned int, err error) {
	out = New(t.Name, t.Schema)
	for _, r := range ranges {
		end := r.End
		if end > len(t.Rows) {
			end = len(t.Rows)
		}
		for ri := r.Start; ri < end; ri++ {
			scanned++
			row := t.Rows[ri]
			keep := true
			for _, p := range preds {
				ok, err := p.Eval(t.Schema, row)
				if err != nil {
					return nil, scanned, err
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, scanned, nil
}

// Project returns only the named columns, in the given order.
func Project(t *Table, cols ...string) (*Table, error) {
	idxs := make([]int, len(cols))
	schema := make(Schema, len(cols))
	for i, c := range cols {
		idx := t.Schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoColumn, c)
		}
		idxs[i] = idx
		schema[i] = t.Schema[idx]
	}
	out := New(t.Name, schema)
	for _, row := range t.Rows {
		nr := make([]Value, len(idxs))
		for i, idx := range idxs {
			nr[i] = row[idx]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// HashJoin performs an inner equi-join of left and right on
// left.leftCol = right.rightCol, building the hash table on the smaller
// side. Output schema is left columns followed by right columns, with
// right-side name collisions prefixed by the right table name.
func HashJoin(left, right *Table, leftCol, rightCol string) (*Table, error) {
	return HashJoinHint(left, right, leftCol, rightCol, 0)
}

// HashJoinHint is HashJoin with a result-size hint (rows, from the
// optimizer's cardinality estimate) used to pre-size the output slice;
// 0 means no hint. The build map is always pre-sized from the actual
// build-side length. The hint never changes results, only allocation.
func HashJoinHint(left, right *Table, leftCol, rightCol string, hint int) (*Table, error) {
	li := left.Schema.ColIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, left.Name, leftCol)
	}
	ri := right.Schema.ColIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, right.Name, rightCol)
	}
	out := New(left.Name+"_join_"+right.Name, joinSchema(left, right))
	if hint > 0 {
		out.Rows = make([][]Value, 0, hint)
	}

	// Build on the smaller input, probe with the larger.
	if len(left.Rows) <= len(right.Rows) {
		build := make(map[string][][]Value, len(left.Rows))
		for _, lr := range left.Rows {
			if lr[li].IsNull() {
				continue
			}
			k := lr[li].Key()
			build[k] = append(build[k], lr)
		}
		for _, rr := range right.Rows {
			if rr[ri].IsNull() {
				continue
			}
			for _, lr := range build[rr[ri].Key()] {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	} else {
		build := make(map[string][][]Value, len(right.Rows))
		for _, rr := range right.Rows {
			if rr[ri].IsNull() {
				continue
			}
			k := rr[ri].Key()
			build[k] = append(build[k], rr)
		}
		for _, lr := range left.Rows {
			if lr[li].IsNull() {
				continue
			}
			for _, rr := range build[lr[li].Key()] {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	}
	return out, nil
}

// NestedLoopJoin joins on an arbitrary row predicate; used for
// non-equi conditions. on receives (leftRow, rightRow).
func NestedLoopJoin(left, right *Table, on func(l, r []Value) bool) *Table {
	out := New(left.Name+"_join_"+right.Name, joinSchema(left, right))
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			if on(lr, rr) {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
	}
	return out
}

func joinSchema(left, right *Table) Schema {
	return JoinedSchema(left.Schema, right.Name, right.Schema)
}

// JoinedSchema computes the output schema of a join without executing
// it: left columns first, then right columns with name collisions
// prefixed by the right relation's name. Plan compilers use it to
// resolve column references exactly the way HashJoin will name them.
func JoinedSchema(left Schema, rightName string, right Schema) Schema {
	schema := append(Schema(nil), left...)
	used := make(map[string]bool, len(schema))
	for _, c := range schema {
		used[strings.ToLower(c.Name)] = true
	}
	for _, c := range right {
		name := c.Name
		if used[strings.ToLower(name)] {
			name = rightName + "." + name
		}
		used[strings.ToLower(name)] = true
		schema = append(schema, Column{Name: name, Type: c.Type})
	}
	return schema
}

func concatRows(a, b []Value) []Value {
	out := make([]Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// AggFunc is an aggregation function.
type AggFunc int

// Aggregation functions.
const (
	AggSum AggFunc = iota
	AggAvg
	AggCount
	AggMin
	AggMax
	// AggCountMerge re-aggregates already-counted partial COUNT columns:
	// it sums integer partial counts and emits an integer, so a COUNT
	// regrouped from a materialized rollup keeps COUNT's output type and
	// exact value. Counts stay far below 2^53, where float64 addition is
	// exact, so the shared float accumulator loses nothing. Only the
	// rollup routing pass emits it; no entry language parses it.
	AggCountMerge
)

// String names the function.
func (f AggFunc) String() string {
	switch f {
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggCountMerge:
		return "COUNT_MERGE"
	default:
		return "?"
	}
}

// Agg is one aggregation: Func over Col, emitted as output column As.
// For AggCount, Col may be "" (count rows) or a column (count non-null).
type Agg struct {
	Func AggFunc
	Col  string
	As   string
}

// Aggregate groups t by the groupBy columns (possibly empty for a
// global aggregate) and computes the aggregations. Output columns are
// the group keys followed by one column per Agg. NULLs are skipped by
// every function except COUNT(""). Group order is deterministic
// (sorted by key values).
func Aggregate(t *Table, groupBy []string, aggs []Agg) (*Table, error) {
	return AggregateHint(t, groupBy, aggs, 0)
}

// AggregateHint is Aggregate with a group-count hint (from the
// optimizer's group-key NDV estimate) used to pre-size the accumulator
// map and ordering slice; 0 means no hint. The hint never changes
// results, only allocation.
func AggregateHint(t *Table, groupBy []string, aggs []Agg, hint int) (*Table, error) {
	acc, err := makeAggAcc(t.Schema, groupBy, aggs, hint)
	if err != nil {
		return nil, err
	}
	acc.fold(t.Rows)
	return acc.emit(t.Name + "_agg"), nil
}

// aggAcc is the row engine's group-by accumulation state, split into
// fold (accumulate rows, in row order) and emit (materialize groups in
// sorted key order) so a caller can keep it alive between folds. The
// rollup maintainer relies on exactly that split: folding only a Put's
// appended rows into a retained aggAcc performs the identical
// accumulation sequence — including every float addition — as folding
// all rows from scratch, which is what makes incremental rollup
// materializations bit-equal to full rebuilds (FuzzRollupMaintenance).
type aggAcc struct {
	schema   Schema
	groupBy  []string
	aggs     []Agg
	groupIdx []int
	aggIdx   []int
	hint     int

	groups map[string]*aggGroup // allocated on first fold of a row
	order  []string
}

// aggGroup is one group's accumulator: the key values plus per-agg
// running sums, non-null counts and min/max values.
type aggGroup struct {
	key    []Value
	sums   []float64
	counts []int64
	mins   []Value
	maxs   []Value
}

// newAggAcc resolves the group and aggregate columns against schema and
// returns an empty heap-retained accumulator for callers that keep it
// alive across folds (hint pre-sizes the group map).
func newAggAcc(schema Schema, groupBy []string, aggs []Agg, hint int) (*aggAcc, error) {
	acc, err := makeAggAcc(schema, groupBy, aggs, hint)
	if err != nil {
		return nil, err
	}
	return &acc, nil
}

// makeAggAcc is newAggAcc returning the accumulator by value, so a
// fold-then-emit caller like AggregateHint can keep it on its stack.
func makeAggAcc(schema Schema, groupBy []string, aggs []Agg, hint int) (aggAcc, error) {
	groupIdx := make([]int, len(groupBy))
	for i, c := range groupBy {
		idx := schema.ColIndex(c)
		if idx < 0 {
			return aggAcc{}, fmt.Errorf("%w: %s", ErrNoColumn, c)
		}
		groupIdx[i] = idx
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "" {
			if a.Func != AggCount {
				return aggAcc{}, fmt.Errorf("table: %v requires a column", a.Func)
			}
			aggIdx[i] = -1
			continue
		}
		idx := schema.ColIndex(a.Col)
		if idx < 0 {
			return aggAcc{}, fmt.Errorf("%w: %s", ErrNoColumn, a.Col)
		}
		if a.Func != AggCount && a.Func != AggMin && a.Func != AggMax && schema[idx].Type != TypeInt && schema[idx].Type != TypeFloat {
			return aggAcc{}, fmt.Errorf("table: %v over non-numeric column %s", a.Func, a.Col)
		}
		aggIdx[i] = idx
	}
	return aggAcc{
		schema:   schema,
		groupBy:  groupBy,
		aggs:     aggs,
		groupIdx: groupIdx,
		aggIdx:   aggIdx,
		hint:     hint,
	}, nil
}

// fold accumulates the rows, in order, into the group state.
func (a *aggAcc) fold(rows [][]Value) {
	if len(rows) > 0 && a.groups == nil {
		a.groups = make(map[string]*aggGroup, a.hint)
		if a.hint > 0 {
			a.order = make([]string, 0, a.hint)
		}
	}
	for _, row := range rows {
		var kb strings.Builder
		key := make([]Value, len(a.groupIdx))
		for i, gi := range a.groupIdx {
			key[i] = row[gi]
			kb.WriteString(row[gi].Key())
			kb.WriteByte('\x1f')
		}
		ks := kb.String()
		acc, ok := a.groups[ks]
		if !ok {
			acc = &aggGroup{
				key:    key,
				sums:   make([]float64, len(a.aggs)),
				counts: make([]int64, len(a.aggs)),
				mins:   make([]Value, len(a.aggs)),
				maxs:   make([]Value, len(a.aggs)),
			}
			a.groups[ks] = acc
			a.order = append(a.order, ks)
		}
		for i := range a.aggs {
			if a.aggIdx[i] == -1 {
				acc.counts[i]++
				continue
			}
			v := row[a.aggIdx[i]]
			if v.IsNull() {
				continue
			}
			acc.counts[i]++
			if v.IsNumeric() {
				acc.sums[i] += v.Float()
			}
			if acc.mins[i].IsNull() || Compare(v, acc.mins[i]) < 0 {
				acc.mins[i] = v
			}
			if acc.maxs[i].IsNull() || Compare(v, acc.maxs[i]) > 0 {
				acc.maxs[i] = v
			}
		}
	}
}

// emit materializes the groups, in sorted key order, as a fresh table.
// The accumulator stays valid: emit may be called again after more
// folds and will include everything folded so far.
func (a *aggAcc) emit(name string) *Table {
	sort.Strings(a.order)
	out := New(name, AggregateSchema(a.schema, a.groupBy, a.aggs))
	if len(a.order) > 0 {
		out.Rows = make([][]Value, 0, len(a.order))
	}
	for _, ks := range a.order {
		acc := a.groups[ks]
		row := append([]Value(nil), acc.key...)
		for i, ag := range a.aggs {
			switch ag.Func {
			case AggSum:
				if acc.counts[i] == 0 {
					row = append(row, Null(TypeFloat))
				} else {
					row = append(row, F(acc.sums[i]))
				}
			case AggAvg:
				if acc.counts[i] == 0 {
					row = append(row, Null(TypeFloat))
				} else {
					row = append(row, F(acc.sums[i]/float64(acc.counts[i])))
				}
			case AggCount:
				row = append(row, I(acc.counts[i]))
			case AggMin:
				row = append(row, acc.mins[i])
			case AggMax:
				row = append(row, acc.maxs[i])
			case AggCountMerge:
				row = append(row, I(int64(acc.sums[i])))
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// AggregateSchema computes the output schema of Aggregate without
// executing it: group-key columns (with their input types) followed by
// one column per aggregation. Plan compilers use it to resolve
// references against aggregated relations.
func AggregateSchema(in Schema, groupBy []string, aggs []Agg) Schema {
	schema := make(Schema, 0, len(groupBy)+len(aggs))
	for _, c := range groupBy {
		typ := TypeString
		if idx := in.ColIndex(c); idx >= 0 {
			typ = in[idx].Type
		}
		schema = append(schema, Column{Name: c, Type: typ})
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = strings.ToLower(a.Func.String()) + "_" + a.Col
		}
		typ := TypeFloat
		if a.Func == AggCount || a.Func == AggCountMerge {
			typ = TypeInt
		} else if a.Func == AggMin || a.Func == AggMax {
			if idx := in.ColIndex(a.Col); idx >= 0 {
				typ = in[idx].Type
			}
		}
		schema = append(schema, Column{Name: name, Type: typ})
	}
	return schema
}

// SortKey orders rows by a column.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort returns a copy of t ordered by the keys (stable).
func Sort(t *Table, keys ...SortKey) (*Table, error) {
	idxs := make([]int, len(keys))
	for i, k := range keys {
		idx := t.Schema.ColIndex(k.Col)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoColumn, k.Col)
		}
		idxs[i] = idx
	}
	out := t.Clone()
	sort.SliceStable(out.Rows, func(a, b int) bool {
		for i, k := range keys {
			c := Compare(out.Rows[a][idxs[i]], out.Rows[b][idxs[i]])
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out, nil
}

// Limit returns at most n rows.
func Limit(t *Table, n int) *Table {
	out := New(t.Name, t.Schema)
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	if n < 0 {
		n = 0
	}
	out.Rows = append(out.Rows, t.Rows[:n]...)
	return out
}

// Distinct removes duplicate rows, keeping first occurrences.
func Distinct(t *Table) *Table {
	out := New(t.Name, t.Schema)
	seen := make(map[string]bool)
	for _, row := range t.Rows {
		var kb strings.Builder
		for _, v := range row {
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}
