package table

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func rollupBase() *Table {
	t := New("sales", Schema{
		{Name: "region", Type: TypeString},
		{Name: "product", Type: TypeString},
		{Name: "revenue", Type: TypeFloat},
		{Name: "units", Type: TypeInt},
	})
	rows := []struct {
		r, p  string
		rev   float64
		units int64
	}{
		{"east", "alpha", 120, 3},
		{"east", "beta", 80, 2},
		{"west", "alpha", 200, 5},
		{"west", "beta", 60, 1},
		{"east", "alpha", 40, 4},
	}
	for _, r := range rows {
		t.MustAppend([]Value{S(r.r), S(r.p), F(r.rev), I(r.units)})
	}
	return t
}

func regionRollup() RollupDef {
	return RollupDef{
		Name:    "sales_by_region",
		Base:    "sales",
		GroupBy: []string{"region"},
		Aggs: []Agg{
			{Func: AggSum, Col: "revenue"},
			{Func: AggCount, Col: "units"},
			{Func: AggMin, Col: "revenue"},
			{Func: AggMax, Col: "revenue"},
			{Func: AggAvg, Col: "revenue"},
		},
	}
}

// assertRollupFresh asserts the materialization equals a from-scratch
// aggregation of the base table's current rows, bit-for-bit.
func assertRollupFresh(t *testing.T, c *Catalog, base *Table, def RollupDef, ctx string) {
	t.Helper()
	mat, err := c.Get(def.Name)
	if err != nil {
		t.Fatalf("%s: materialization missing: %v", ctx, err)
	}
	want, err := AggregateHint(base, def.GroupBy, def.Aggs, 0)
	if err != nil {
		t.Fatalf("%s: reference aggregation: %v", ctx, err)
	}
	if !reflect.DeepEqual(mat.Schema, want.Schema) {
		t.Fatalf("%s: schema diverged:\n%+v\nvs\n%+v", ctx, mat.Schema, want.Schema)
	}
	if !reflect.DeepEqual(mat.Rows, want.Rows) {
		t.Fatalf("%s: rows diverged:\n%v\nvs\n%v", ctx, mat, want)
	}
}

func TestAddRollupMaterializesImmediately(t *testing.T) {
	c := NewCatalog()
	base := rollupBase()
	c.Put(base)
	def := regionRollup()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}
	assertRollupFresh(t, c, base, def, "initial materialization")

	mat, _ := c.Get(def.Name)
	if mat.Len() != 2 {
		t.Fatalf("materialization rows = %d, want 2 groups", mat.Len())
	}
	// The materialization is a normal catalog table: statistics, zone
	// maps and fragments exist and its stats carry the current epoch.
	if c.StatsOf(def.Name) == nil || c.ZonesOf(def.Name) == nil || c.FragsOf(def.Name) == nil {
		t.Fatal("materialization missing derived planner state")
	}
	if got := c.StatsOf(def.Name).Epoch; got != c.Epoch() {
		t.Fatalf("materialization stats epoch = %d, want catalog epoch %d", got, c.Epoch())
	}
}

func TestAddRollupValidation(t *testing.T) {
	c := NewCatalog()
	c.Put(rollupBase())
	if err := c.AddRollup(regionRollup()); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		def  RollupDef
	}{
		{"empty name", RollupDef{Base: "sales", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggCount}}}},
		{"table collision", RollupDef{Name: "sales", Base: "sales", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggCount}}}},
		{"duplicate rollup", regionRollup()},
		{"rollup base", RollupDef{Name: "r2", Base: "sales_by_region", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggCount}}}},
		{"unknown base", RollupDef{Name: "r3", Base: "nope", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggCount}}}},
		{"no group keys", RollupDef{Name: "r4", Base: "sales", Aggs: []Agg{{Func: AggCount}}}},
		{"no aggregates", RollupDef{Name: "r5", Base: "sales", GroupBy: []string{"region"}}},
		{"merge function", RollupDef{Name: "r6", Base: "sales", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggCountMerge, Col: "units"}}}},
		{"unknown group column", RollupDef{Name: "r7", Base: "sales", GroupBy: []string{"nope"}, Aggs: []Agg{{Func: AggCount}}}},
		{"unknown agg column", RollupDef{Name: "r8", Base: "sales", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggSum, Col: "nope"}}}},
		{"non-numeric sum", RollupDef{Name: "r9", Base: "sales", GroupBy: []string{"region"}, Aggs: []Agg{{Func: AggSum, Col: "product"}}}},
		{"duplicate output", RollupDef{Name: "r10", Base: "sales", GroupBy: []string{"region"}, Aggs: []Agg{
			{Func: AggSum, Col: "revenue", As: "x"}, {Func: AggCount, Col: "units", As: "x"}}}},
	}
	for _, tc := range cases {
		if err := c.AddRollup(tc.def); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Failed registrations must leave no state behind.
	if got := len(c.Rollups()); got != 1 {
		t.Fatalf("rollups = %d, want only the valid one", got)
	}
}

func TestRollupIncrementalMaintenance(t *testing.T) {
	c := NewCatalog()
	base := rollupBase()
	c.Put(base)
	def := regionRollup()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}

	// Append-only Put: the incremental fold must equal a fresh build.
	base.MustAppend([]Value{S("north"), S("alpha"), F(300), I(7)})
	base.MustAppend([]Value{S("east"), Null(TypeString), Null(TypeFloat), I(2)})
	c.Put(base)
	assertRollupFresh(t, c, base, def, "append-only maintenance")
	epochAfterAppend := c.Epoch()

	// In-place replacement: full-rebuild path, still equal.
	row := append([]Value(nil), base.Rows[0]...)
	row[2] = F(999)
	base.Rows[0] = row
	c.Put(base)
	assertRollupFresh(t, c, base, def, "replacement rebuild")
	if c.Epoch() <= epochAfterAppend {
		t.Fatal("maintenance did not advance the epoch")
	}
}

func TestRollupAccessors(t *testing.T) {
	c := NewCatalog()
	c.Put(rollupBase())
	other := New("orders", Schema{{Name: "id", Type: TypeInt}})
	other.MustAppend([]Value{I(1)})
	c.Put(other)
	def := regionRollup()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}

	if got := c.RollupNames(); !reflect.DeepEqual(got, []string{"sales_by_region"}) {
		t.Fatalf("RollupNames = %v", got)
	}
	if got := c.Rollups(); len(got) != 1 || got[0].Name != def.Name {
		t.Fatalf("Rollups = %+v", got)
	}
	if got := c.RollupsFor("SALES"); len(got) != 1 {
		t.Fatalf("RollupsFor(SALES) = %+v", got)
	}
	if got := c.RollupsFor("orders"); len(got) != 0 {
		t.Fatalf("RollupsFor(orders) = %+v", got)
	}
	if _, ok := c.RollupByName("Sales_By_Region"); !ok {
		t.Fatal("RollupByName is not case-insensitive")
	}

	desc, err := c.DescribeRollup(def.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sales_by_region", "FROM sales GROUP BY region", "rows=2", fmt.Sprintf("epoch=%d", c.Epoch())} {
		if !strings.Contains(desc, want) {
			t.Errorf("DescribeRollup = %q, missing %q", desc, want)
		}
	}
	if _, err := c.DescribeRollup("nope"); !errors.Is(err, ErrNoRollup) {
		t.Fatalf("DescribeRollup(nope) err = %v, want ErrNoRollup", err)
	}
}

func TestRollupDroppedWhenSchemaLosesColumn(t *testing.T) {
	c := NewCatalog()
	c.Put(rollupBase())
	def := regionRollup()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}
	// Re-Put the base without the revenue column: the rebuild cannot be
	// satisfied, so the rollup deregisters and its materialization drops.
	slim := New("sales", Schema{{Name: "region", Type: TypeString}, {Name: "units", Type: TypeInt}})
	slim.MustAppend([]Value{S("east"), I(3)})
	c.Put(slim)
	if got := len(c.Rollups()); got != 0 {
		t.Fatalf("rollups = %d after losing a column, want 0", got)
	}
	if _, err := c.Get(def.Name); err == nil {
		t.Fatal("materialization survived the drop")
	}
}

func TestPutReclaimsRollupName(t *testing.T) {
	c := NewCatalog()
	base := rollupBase()
	c.Put(base)
	def := regionRollup()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}
	// A caller registering an ordinary table under the rollup's name
	// wins: the rollup deregisters and its data is never overwritten.
	own := New(def.Name, Schema{{Name: "x", Type: TypeInt}})
	own.MustAppend([]Value{I(42)})
	c.Put(own)
	if got := len(c.Rollups()); got != 0 {
		t.Fatalf("rollups = %d after name reclaim, want 0", got)
	}
	base.MustAppend([]Value{S("south"), S("beta"), F(10), I(1)})
	c.Put(base)
	got, err := c.Get(def.Name)
	if err != nil || got.Len() != 1 || !reflect.DeepEqual(got.Rows[0], []Value{I(42)}) {
		t.Fatalf("reclaimed table overwritten: %v %v", got, err)
	}
}

func TestRollupPersistRoundTrip(t *testing.T) {
	c := NewCatalog()
	base := rollupBase()
	c.Put(base)
	def := regionRollup()
	if err := c.AddRollup(def); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The materialization is derived data: its rows must not be
	// serialized as a table, only the definition is.
	if s := buf.String(); strings.Contains(s, `"name":"sales_by_region","columns"`) {
		t.Fatal("materialization serialized as a table")
	}

	loaded, err := ReadCatalogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Rollups(); !reflect.DeepEqual(got, []RollupDef{def}) {
		t.Fatalf("loaded rollups = %+v, want %+v", got, def)
	}
	want, _ := c.Get(def.Name)
	got, err := loaded.Get(def.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Schema, want.Schema) || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("rematerialization diverged:\n%v\nvs\n%v", got, want)
	}
	// Maintenance still runs on the loaded catalog.
	lb, _ := loaded.Get("sales")
	lb.MustAppend([]Value{S("south"), S("beta"), F(10), I(1)})
	loaded.Put(lb)
	assertRollupFresh(t, loaded, lb, def, "post-load maintenance")
}

func TestParseAggFunc(t *testing.T) {
	for _, fn := range []AggFunc{AggSum, AggAvg, AggCount, AggMin, AggMax, AggCountMerge} {
		got, err := ParseAggFunc(strings.ToLower(fn.String()))
		if err != nil || got != fn {
			t.Errorf("ParseAggFunc(%q) = %v, %v", fn.String(), got, err)
		}
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("ParseAggFunc accepted median")
	}
}

// FuzzRollupMaintenance pins bit-equivalence between incrementally
// maintained rollup materializations and a from-scratch aggregation of
// the final rows, across random Put sequences: appends (the
// incremental fold), in-place row replacements and wholesale table
// rebuilds (the deterministic full-rebuild path), interleaved
// arbitrarily — the rollup mirror of FuzzIncrementalStats.
func FuzzRollupMaintenance(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 251, 0, 9}, uint8(3))
	f.Add(bytes.Repeat([]byte{7, 130, 255, 0, 64, 65}, 120), uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, step uint8) {
		tb := New("fuzz", Schema{
			{Name: "k", Type: TypeString},
			{Name: "n", Type: TypeInt},
			{Name: "f", Type: TypeFloat},
		})
		c := NewCatalog()
		c.Put(tb)
		def := RollupDef{
			Name:    "fuzz_by_k",
			Base:    "fuzz",
			GroupBy: []string{"k"},
			Aggs: []Agg{
				{Func: AggSum, Col: "f"},
				{Func: AggCount, Col: "f"},
				{Func: AggAvg, Col: "f"},
				{Func: AggMin, Col: "n"},
				{Func: AggMax, Col: "f"},
				{Func: AggCount, Col: "", As: "rows"},
			},
		}
		if err := c.AddRollup(def); err != nil {
			t.Fatal(err)
		}
		every := int(step%7) + 1
		for i, b := range data {
			switch {
			case b < 230 || tb.Len() == 0:
				k := S(fmt.Sprintf("v%d", b%23))
				n := I(int64(int(b) - 100))
				fv := F(float64(b) / 3)
				if b%19 == 0 {
					k = Null(TypeString)
				}
				if b%11 == 0 {
					fv = Null(TypeFloat)
				}
				tb.MustAppend([]Value{k, n, fv})
			case b < 243:
				ri := int(b) % tb.Len()
				row := append([]Value(nil), tb.Rows[ri]...)
				row[1] = I(int64(b))
				tb.Rows[ri] = row
			default:
				nt := New("fuzz", tb.Schema)
				nt.Rows = append([][]Value(nil), tb.Rows...)
				tb = nt
			}
			if (i+1)%every == 0 {
				c.Put(tb)
				mat, err := c.Get(def.Name)
				if err != nil {
					t.Fatalf("op %d: materialization missing: %v", i, err)
				}
				want, err := AggregateHint(tb, def.GroupBy, def.Aggs, 0)
				if err != nil {
					t.Fatalf("op %d: reference aggregation: %v", i, err)
				}
				if !reflect.DeepEqual(mat.Schema, want.Schema) || !reflect.DeepEqual(mat.Rows, want.Rows) {
					t.Fatalf("op %d: maintained rollup diverges from full rebuild:\n%v\nvs\n%v", i, mat, want)
				}
			}
		}
	})
}
