package table

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrNoRollup is returned when a named rollup is not registered.
var ErrNoRollup = errors.New("table: unknown rollup")

// RollupDef defines a materialized rollup: a grouped aggregation over a
// base table, kept materialized as a normal catalog table under Name.
// Aggregates are restricted to the distributive/algebraic functions the
// row engine folds incrementally (COUNT, SUM, MIN, MAX, and AVG as its
// SUM+COUNT pair), which is what lets maintenance refold only appended
// rows and the optimizer route matching Aggregate subtrees onto the
// materialization.
type RollupDef struct {
	// Name is the rollup's (and its materialization's) catalog name.
	Name string
	// Base is the table the rollup aggregates.
	Base string
	// GroupBy lists the group-key columns, in materialized key order.
	GroupBy []string
	// Aggs lists the aggregates, in materialized column order.
	Aggs []Agg
}

// String renders the definition for errors, EXPLAIN and -stats output,
// e.g. "daily = SELECT day, COUNT(), SUM(amount) FROM sales GROUP BY day".
func (d RollupDef) String() string {
	cols := make([]string, 0, len(d.GroupBy)+len(d.Aggs))
	cols = append(cols, d.GroupBy...)
	for _, a := range d.Aggs {
		cols = append(cols, fmt.Sprintf("%s(%s)", a.Func, a.Col))
	}
	return fmt.Sprintf("%s = SELECT %s FROM %s GROUP BY %s",
		d.Name, strings.Join(cols, ", "), d.Base, strings.Join(d.GroupBy, ", "))
}

// rollupState is the maintainer's retained state for one rollup. It is
// cache-shaped — derived from base-table contents — so it carries the
// epoch its materialization was registered at; staleness is structurally
// impossible because maintenance runs synchronously inside Put, but the
// epoch lets introspection (and the epochkey analyzer) verify that.
type rollupState struct {
	def RollupDef
	// acc is the live accumulator; folding only a Put's appended rows
	// into it reproduces the from-scratch accumulation bit-for-bit
	// (FuzzRollupMaintenance).
	acc *aggAcc
	// rows snapshots the base-table row-slice headers acc has folded,
	// and schema the base schema at that fold — the same delta
	// detection tableState serves for incremental statistics.
	rows   [][]Value
	schema Schema
	// epoch is the catalog epoch at which the current materialization
	// was registered.
	epoch uint64
}

// ParseAggFunc parses an aggregate function's display name ("SUM",
// "count", ...) back to its AggFunc — the inverse of AggFunc.String,
// shared by catalog persistence and the uniquery -rollup flag.
func ParseAggFunc(name string) (AggFunc, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "COUNT":
		return AggCount, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	case "COUNT_MERGE":
		return AggCountMerge, nil
	}
	return 0, fmt.Errorf("table: unknown aggregate function %q", name)
}

// rollupFuncOK reports whether f may appear in a rollup definition.
// AggCountMerge is excluded: it exists only as the routing pass's
// re-aggregation function over already-materialized counts.
func rollupFuncOK(f AggFunc) bool {
	switch f {
	case AggSum, AggAvg, AggCount, AggMin, AggMax:
		return true
	}
	return false
}

// AddRollup validates def against the current catalog, materializes it
// from the base table's rows, and registers the materialization as a
// normal table (gaining statistics, zone maps and columnar fragments
// like any other Put). From then on every Put of the base table
// re-materializes it: incrementally when the Put is append-only, by
// deterministic full rebuild otherwise.
func (c *Catalog) AddRollup(def RollupDef) error {
	if def.Name == "" {
		return errors.New("table: rollup needs a name")
	}
	key := strings.ToLower(def.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("table: rollup %s collides with existing table", def.Name)
	}
	if _, ok := c.rollups[key]; ok {
		return fmt.Errorf("table: rollup %s already registered", def.Name)
	}
	baseKey := strings.ToLower(def.Base)
	if _, ok := c.rollups[baseKey]; ok {
		return fmt.Errorf("table: rollup %s cannot use rollup %s as base", def.Name, def.Base)
	}
	base, ok := c.tables[baseKey]
	if !ok {
		return fmt.Errorf("%w: %s (rollup %s base)", ErrNoTable, def.Base, def.Name)
	}
	if len(def.GroupBy) == 0 {
		return fmt.Errorf("table: rollup %s needs at least one group-by column", def.Name)
	}
	if len(def.Aggs) == 0 {
		return fmt.Errorf("table: rollup %s needs at least one aggregate", def.Name)
	}
	for _, a := range def.Aggs {
		if !rollupFuncOK(a.Func) {
			return fmt.Errorf("table: rollup %s: %s is not distributive/algebraic", def.Name, a.Func)
		}
	}
	outSchema := AggregateSchema(base.Schema, def.GroupBy, def.Aggs)
	seen := make(map[string]bool, len(outSchema))
	for _, col := range outSchema {
		n := strings.ToLower(col.Name)
		if seen[n] {
			return fmt.Errorf("table: rollup %s: duplicate output column %s", def.Name, col.Name)
		}
		seen[n] = true
	}
	acc, err := newAggAcc(base.Schema, def.GroupBy, def.Aggs, 0)
	if err != nil {
		return fmt.Errorf("table: rollup %s: %w", def.Name, err)
	}
	acc.fold(base.Rows)
	rs := &rollupState{
		def:    def,
		acc:    acc,
		rows:   append([][]Value(nil), base.Rows...),
		schema: append(Schema(nil), base.Schema...),
	}
	c.rollups[key] = rs
	c.putTable(acc.emit(def.Name))
	rs.epoch = c.epoch
	return nil
}

// maintainRollups re-materializes, in sorted name order, every rollup
// whose base is the table just registered under baseKey. An append-only
// Put (schema unchanged, retained row-slice headers identical, rows
// only appended) folds only the delta rows into the retained
// accumulator; any other mutation rebuilds the accumulator from scratch
// — deterministically, and bit-identically to the incremental path. A
// rebuild the new schema can no longer satisfy (a group or aggregate
// column vanished) deregisters the rollup and drops its
// materialization.
func (c *Catalog) maintainRollups(baseKey string, t *Table) {
	var names []string
	for name, rs := range c.rollups {
		if strings.ToLower(rs.def.Base) == baseKey {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		rs := c.rollups[name]
		if schemaEqual(rs.schema, t.Schema) && rowsPrefixUnchanged(t.Rows, rs.rows) {
			rs.acc.fold(t.Rows[len(rs.rows):])
		} else {
			acc, err := newAggAcc(t.Schema, rs.def.GroupBy, rs.def.Aggs, len(rs.acc.order))
			if err != nil {
				c.dropRollup(name)
				continue
			}
			acc.fold(t.Rows)
			rs.acc = acc
		}
		rs.rows = append([][]Value(nil), t.Rows...)
		rs.schema = append(Schema(nil), t.Schema...)
		c.putTable(rs.acc.emit(rs.def.Name))
		rs.epoch = c.epoch
	}
}

// dropRollup deregisters a rollup and removes its materialization from
// the catalog, advancing the epoch so cached plans that routed onto it
// are invalidated.
func (c *Catalog) dropRollup(key string) {
	delete(c.rollups, key)
	delete(c.tables, key)
	delete(c.stats, key)
	delete(c.zones, key)
	delete(c.frags, key)
	delete(c.state, key)
	c.epoch++
}

// Rollups returns every registered rollup definition, sorted by name.
func (c *Catalog) Rollups() []RollupDef {
	names := make([]string, 0, len(c.rollups))
	for name := range c.rollups {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]RollupDef, 0, len(names))
	for _, name := range names {
		out = append(out, c.rollups[name].def)
	}
	return out
}

// RollupNames returns registered rollup names, sorted.
func (c *Catalog) RollupNames() []string {
	names := make([]string, 0, len(c.rollups))
	for name := range c.rollups {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RollupByName returns the named rollup's definition.
func (c *Catalog) RollupByName(name string) (RollupDef, bool) {
	rs, ok := c.rollups[strings.ToLower(name)]
	if !ok {
		return RollupDef{}, false
	}
	return rs.def, true
}

// RollupsFor returns the definitions of every rollup over the named
// base table, sorted by rollup name.
func (c *Catalog) RollupsFor(base string) []RollupDef {
	baseKey := strings.ToLower(base)
	var names []string
	for name, rs := range c.rollups {
		if strings.ToLower(rs.def.Base) == baseKey {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]RollupDef, 0, len(names))
	for _, name := range names {
		out = append(out, c.rollups[name].def)
	}
	return out
}

// DescribeRollup renders one registered rollup — definition, current
// materialized row count, and the epoch its materialization was
// registered at — or ErrNoRollup.
func (c *Catalog) DescribeRollup(name string) (string, error) {
	rs, ok := c.rollups[strings.ToLower(name)]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoRollup, name)
	}
	rows := 0
	if t, ok := c.tables[strings.ToLower(rs.def.Name)]; ok {
		rows = t.Len()
	}
	return fmt.Sprintf("rollup %s rows=%d epoch=%d", rs.def, rows, rs.epoch), nil
}
