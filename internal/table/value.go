// Package table implements the structured-data substrate: typed
// relational tables, a logical-operator execution engine (filter,
// project, join, group-by aggregation, sort, limit), and CSV
// interchange. It is the "TableQA engine" that the paper's hybrid
// pipeline feeds with SLM-generated tables (Section III.C).
//
// Beyond the row-oriented operators, the Catalog maintains three
// derived, epoch-stamped artifacts per registered table, each updated
// incrementally on append-only Puts and rebuilt otherwise: per-column
// statistics (TableStats — the planner's cost inputs), per-fragment
// zone maps (Zones — plan-time pruning proofs over 256-row fragments,
// FragmentRows), and columnar fragments (Frags — typed column arrays
// with null bitmaps, the batch form internal/logical's vectorized
// executor consumes). The catalog's Epoch is the repo-wide
// invalidation convention: everything derived from table contents
// carries the epoch it was computed at and is re-derived when the
// epoch moves.
package table

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ColType is a column's data type.
type ColType int

// Supported column types.
const (
	TypeString ColType = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeDate // ISO-8601 string, compares lexically
)

// String names the type.
func (t ColType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeDate:
		return "date"
	default:
		return "unknown"
	}
}

// Value is a typed cell. The zero Value is a NULL: Null() reports true
// and it compares less than every non-null value.
type Value struct {
	kind  ColType
	valid bool
	s     string
	i     int64
	f     float64
	b     bool
}

// Constructors.

// S returns a string value.
func S(v string) Value { return Value{kind: TypeString, valid: true, s: v} }

// I returns an int value.
func I(v int64) Value { return Value{kind: TypeInt, valid: true, i: v} }

// F returns a float value.
func F(v float64) Value { return Value{kind: TypeFloat, valid: true, f: v} }

// B returns a bool value.
func B(v bool) Value { return Value{kind: TypeBool, valid: true, b: v} }

// D returns a date value from an ISO-8601 string.
func D(v string) Value { return Value{kind: TypeDate, valid: true, s: v} }

// Null returns the NULL value of the given type.
func Null(t ColType) Value { return Value{kind: t} }

// Kind returns the value's type.
func (v Value) Kind() ColType { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return !v.valid }

// Str returns the string content (string/date values).
func (v Value) Str() string { return v.s }

// Int returns the int content.
func (v Value) Int() int64 { return v.i }

// Float returns the numeric content of int or float values.
func (v Value) Float() float64 {
	if v.kind == TypeInt {
		return float64(v.i)
	}
	return v.f
}

// Bool returns the bool content.
func (v Value) Bool() bool { return v.b }

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool { return v.kind == TypeInt || v.kind == TypeFloat }

// String renders the value for display; NULL renders as "NULL".
func (v Value) String() string {
	if !v.valid {
		return "NULL"
	}
	switch v.kind {
	case TypeString, TypeDate:
		return v.s
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// Compare orders two values: NULL < everything; numerics compare by
// value across int/float; strings and dates lexically; bools false <
// true. Cross-type non-numeric comparisons fall back to the rendered
// string so sorting is total.
func Compare(a, b Value) int {
	switch {
	case !a.valid && !b.valid:
		return 0
	case !a.valid:
		return -1
	case !b.valid:
		return 1
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == b.kind {
		switch a.kind {
		case TypeString, TypeDate:
			return strings.Compare(a.s, b.s)
		case TypeBool:
			switch {
			case !a.b && b.b:
				return -1
			case a.b && !b.b:
				return 1
			default:
				return 0
			}
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Key returns a map-key form used by hash joins and group-by. Values
// that compare equal have equal keys.
func (v Value) Key() string {
	if !v.valid {
		return "\x00null"
	}
	if v.IsNumeric() {
		return "n:" + strconv.FormatFloat(v.Float(), 'g', -1, 64)
	}
	switch v.kind {
	case TypeBool:
		return "b:" + strconv.FormatBool(v.b)
	default:
		return "s:" + v.s
	}
}

// Parse converts raw text to a value of type t. Empty text parses to
// NULL. Parse errors are reported, not silently coerced.
func Parse(t ColType, raw string) (Value, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Null(t), nil
	}
	switch t {
	case TypeString:
		return S(raw), nil
	case TypeDate:
		return D(raw), nil
	case TypeInt:
		n, err := strconv.ParseInt(strings.ReplaceAll(raw, ",", ""), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("table: parse int %q: %w", raw, err)
		}
		return I(n), nil
	case TypeFloat:
		clean := strings.TrimSuffix(strings.ReplaceAll(raw, ",", ""), "%")
		f, err := strconv.ParseFloat(clean, 64)
		if err != nil {
			return Value{}, fmt.Errorf("table: parse float %q: %w", raw, err)
		}
		return F(f), nil
	case TypeBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return Value{}, fmt.Errorf("table: parse bool %q: %w", raw, err)
		}
		return B(b), nil
	default:
		return Value{}, fmt.Errorf("table: unknown type %v", t)
	}
}

// CoerceTo re-types a literal against the column type it is compared
// to, so "= 20" matches a float column and "= '5'" a string column.
// Numeric literals on numeric columns are left alone (Compare already
// crosses int/float exactly); NULLs and unparseable literals pass
// through unchanged. This is the one re-typing rule shared by semantic
// operator binding, the SQL entry path and the IR optimizer's
// constant-folding pass.
func CoerceTo(want ColType, v Value) Value {
	if v.IsNull() || v.Kind() == want {
		return v
	}
	if v.IsNumeric() && (want == TypeInt || want == TypeFloat) {
		return v
	}
	if parsed, err := Parse(want, v.String()); err == nil {
		return parsed
	}
	return v
}

// Infer guesses the tightest type for raw text: int, then float
// (including "12%" and "1,200" forms), then bool, then date, then
// string.
func Infer(raw string) ColType {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return TypeString
	}
	if _, err := strconv.ParseInt(strings.ReplaceAll(raw, ",", ""), 10, 64); err == nil {
		return TypeInt
	}
	clean := strings.TrimSuffix(strings.ReplaceAll(raw, ",", ""), "%")
	if _, err := strconv.ParseFloat(clean, 64); err == nil {
		return TypeFloat
	}
	if raw == "true" || raw == "false" {
		return TypeBool
	}
	if looksISODate(raw) {
		return TypeDate
	}
	return TypeString
}

// FormatNumber renders a numeric answer consistently across the
// system: rounded to two decimals with trailing zeros stripped, so
// pipeline answers and workload gold strings compare exactly.
func FormatNumber(f float64) string {
	r := math.Round(f*100) / 100
	return strconv.FormatFloat(r, 'f', -1, 64)
}

// FormatValue renders a cell as an answer string: numerics through
// FormatNumber, everything else through String.
func FormatValue(v Value) string {
	if !v.IsNull() && v.IsNumeric() {
		return FormatNumber(v.Float())
	}
	return v.String()
}

func looksISODate(s string) bool {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return false
	}
	for i, c := range s {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
