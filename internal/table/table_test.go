package table

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func salesTable(t *testing.T) *Table {
	t.Helper()
	tbl := New("sales", Schema{
		{Name: "product", Type: TypeString},
		{Name: "quarter", Type: TypeString},
		{Name: "revenue", Type: TypeFloat},
		{Name: "units", Type: TypeInt},
	})
	rows := [][]Value{
		{S("Alpha"), S("Q1"), F(100), I(10)},
		{S("Alpha"), S("Q2"), F(120), I(12)},
		{S("Beta"), S("Q1"), F(80), I(8)},
		{S("Beta"), S("Q2"), F(60), I(6)},
		{S("Gamma"), S("Q2"), F(200), I(20)},
	}
	for _, r := range rows {
		if err := tbl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAppendSchemaValidation(t *testing.T) {
	tbl := New("t", Schema{{Name: "a", Type: TypeInt}})
	if err := tbl.Append([]Value{S("wrong")}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("type mismatch: %v", err)
	}
	if err := tbl.Append([]Value{I(1), I(2)}); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("arity mismatch: %v", err)
	}
	if err := tbl.Append([]Value{Null(TypeString)}); err != nil {
		t.Errorf("null of any declared type should be accepted: %v", err)
	}
}

func TestAppendIntIntoFloat(t *testing.T) {
	tbl := New("t", Schema{{Name: "x", Type: TypeFloat}})
	if err := tbl.Append([]Value{I(3)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0].Kind() != TypeFloat || tbl.Rows[0][0].Float() != 3 {
		t.Errorf("coercion: %+v", tbl.Rows[0][0])
	}
}

func TestColAndClone(t *testing.T) {
	tbl := salesTable(t)
	col, err := tbl.Col("revenue")
	if err != nil || len(col) != 5 || col[0].Float() != 100 {
		t.Errorf("Col: %v %v", col, err)
	}
	if _, err := tbl.Col("nope"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing col: %v", err)
	}
	cl := tbl.Clone()
	cl.Rows[0][0] = S("Changed")
	if tbl.Rows[0][0].Str() == "Changed" {
		t.Error("clone aliases original")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := salesTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("sales", &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("rows: %d vs %d", back.Len(), tbl.Len())
	}
	// Types inferred: revenue should be numeric again.
	if back.Schema[2].Type != TypeInt && back.Schema[2].Type != TypeFloat {
		t.Errorf("revenue type = %v", back.Schema[2].Type)
	}
	if Compare(back.Rows[4][2], F(200)) != 0 {
		t.Errorf("cell mismatch: %v", back.Rows[4][2])
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader(""), nil); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1"), nil); err == nil {
		t.Error("ragged csv accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("a\nnotanint"), Schema{{Name: "a", Type: TypeInt}}); err == nil {
		t.Error("unparseable cell accepted")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1,2"), Schema{{Name: "a", Type: TypeInt}}); !errors.Is(err, ErrSchemaMismatch) {
		t.Error("schema arity mismatch accepted")
	}
}

func TestReadCSVNullCells(t *testing.T) {
	tbl, err := ReadCSV("x", strings.NewReader("a,b\n1,\n,2"), Schema{
		{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Rows[0][1].IsNull() || !tbl.Rows[1][0].IsNull() {
		t.Errorf("nulls not preserved: %v", tbl.Rows)
	}
}

func TestTableString(t *testing.T) {
	s := salesTable(t).String()
	if !strings.Contains(s, "product") || !strings.Contains(s, "Alpha") {
		t.Errorf("render:\n%s", s)
	}
}

func TestTableStringTruncates(t *testing.T) {
	tbl := New("big", Schema{{Name: "n", Type: TypeInt}})
	for i := 0; i < 50; i++ {
		tbl.MustAppend([]Value{I(int64(i))})
	}
	if s := tbl.String(); !strings.Contains(s, "50 rows total") {
		t.Errorf("truncation marker missing:\n%s", s)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.Put(salesTable(t))
	got, err := c.Get("SALES") // case-insensitive
	if err != nil || got.Name != "sales" {
		t.Errorf("Get: %v %v", got, err)
	}
	if _, err := c.Get("missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing: %v", err)
	}
	if c.Len() != 1 || c.Names()[0] != "sales" {
		t.Errorf("catalog state: %d %v", c.Len(), c.Names())
	}
}

func TestSchemaColIndexCaseInsensitive(t *testing.T) {
	s := Schema{{Name: "Revenue", Type: TypeFloat}}
	if s.ColIndex("revenue") != 0 || s.ColIndex("REVENUE") != 0 {
		t.Error("case-insensitive lookup broken")
	}
	if s.ColIndex("other") != -1 {
		t.Error("missing column found")
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend should panic on mismatch")
		}
	}()
	New("t", Schema{{Name: "a", Type: TypeInt}}).MustAppend([]Value{S("x")})
}
