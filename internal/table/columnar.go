package table

// Columnar batch extraction: the vectorized executor's data layout.
// Each 256-row fragment (FragmentRows, shared with the zone maps) is
// materialized once into typed column arrays — int64/float64/string/
// bool slices plus a null bitmap — so the hot kernels in
// internal/logical/exec_vec.go run over machine types instead of
// interface-shaped Values. A column whose cells do not all match its
// extracted class keeps the original Values (Boxed); kernels fall back
// to per-Value evaluation there, so extraction never changes results.

// Bitmap is a fixed-size bit set used for per-row null flags. A nil
// Bitmap reads as all-clear.
type Bitmap []uint64

// NewBitmap returns a cleared bitmap covering n bits.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Set sets bit i. The bitmap must be non-nil and cover i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i; nil bitmaps report false.
func (b Bitmap) Get(i int) bool {
	return b != nil && b[i>>6]&(1<<(uint(i)&63)) != 0
}

// Any reports whether any bit is set.
func (b Bitmap) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// ColVec is one column of a Batch in typed array form. Exactly one of
// the typed slices (or Boxed) is populated, chosen by the column's
// schema type; Nulls marks NULL rows (typed slots of NULL rows hold
// zero values). When any non-null cell's dynamic kind disagrees with
// the schema type — possible for operator-built intermediates that
// bypass Append validation — the whole column is kept as Boxed Values
// and kernels use the exact row-interpreter semantics on it.
type ColVec struct {
	Name   string
	Type   ColType
	Ints   []int64   // TypeInt
	Floats []float64 // TypeFloat
	Strs   []string  // TypeString and TypeDate (dates compare lexically)
	Bools  []bool    // TypeBool
	Nulls  Bitmap    // nil when the extracted rows hold no NULLs
	Boxed  []Value   // mixed-kind fallback; nil on the typed paths
}

// ValueAt reconstructs the original cell at row i. For unboxed columns
// the result is bit-identical to the source Value (same kind, same
// payload); Boxed columns return the stored Value itself.
func (c *ColVec) ValueAt(i int) Value {
	if c.Boxed != nil {
		return c.Boxed[i]
	}
	if c.Nulls.Get(i) {
		return Null(c.Type)
	}
	switch c.Type {
	case TypeInt:
		return I(c.Ints[i])
	case TypeFloat:
		return F(c.Floats[i])
	case TypeBool:
		return B(c.Bools[i])
	case TypeDate:
		return D(c.Strs[i])
	default:
		return S(c.Strs[i])
	}
}

// Batch is a row range of one table in columnar form: Len rows across
// Cols, in schema order.
type Batch struct {
	Schema Schema
	Len    int
	Cols   []ColVec
}

// BatchRange extracts rows [start, end) of t into a Batch. The range
// must be within bounds. Extraction is pure and deterministic; the
// resulting batch shares nothing mutable with t beyond boxed Values
// (which are immutable by convention).
func BatchRange(t *Table, start, end int) *Batch {
	n := end - start
	b := &Batch{Schema: t.Schema, Len: n, Cols: make([]ColVec, len(t.Schema))}
	for ci, col := range t.Schema {
		b.Cols[ci] = extractCol(t, ci, col, start, n)
	}
	return b
}

func extractCol(t *Table, ci int, col Column, start, n int) ColVec {
	cv := ColVec{Name: col.Name, Type: col.Type}
	switch col.Type {
	case TypeInt:
		cv.Ints = make([]int64, n)
	case TypeFloat:
		cv.Floats = make([]float64, n)
	case TypeBool:
		cv.Bools = make([]bool, n)
	default:
		cv.Strs = make([]string, n)
	}
	for i := 0; i < n; i++ {
		v := t.Rows[start+i][ci]
		if v.IsNull() {
			if cv.Nulls == nil {
				cv.Nulls = NewBitmap(n)
			}
			cv.Nulls.Set(i)
			continue
		}
		ok := false
		switch col.Type {
		case TypeInt:
			if ok = v.Kind() == TypeInt; ok {
				cv.Ints[i] = v.Int()
			}
		case TypeFloat:
			if ok = v.Kind() == TypeFloat; ok {
				cv.Floats[i] = v.Float()
			}
		case TypeBool:
			if ok = v.Kind() == TypeBool; ok {
				cv.Bools[i] = v.Bool()
			}
		case TypeDate:
			if ok = v.Kind() == TypeDate; ok {
				cv.Strs[i] = v.Str()
			}
		default:
			if ok = v.Kind() == TypeString; ok {
				cv.Strs[i] = v.Str()
			}
		}
		if !ok {
			// Kind anomaly: keep the column as exact Values so the
			// vectorized kernels reproduce interpreter semantics.
			return boxedCol(t, ci, col, start, n)
		}
	}
	return cv
}

func boxedCol(t *Table, ci int, col Column, start, n int) ColVec {
	cv := ColVec{Name: col.Name, Type: col.Type, Boxed: make([]Value, n)}
	for i := 0; i < n; i++ {
		cv.Boxed[i] = t.Rows[start+i][ci]
	}
	return cv
}

// Frags is the per-fragment columnar form of one table, aligned to the
// same FragmentRows grid as the zone maps so zone-pruned row ranges map
// directly onto batches. Like Zones, a Frags value is immutable once
// published: appends extend into a fresh Frags that shares the sealed
// batches.
type Frags struct {
	Table   string
	Rows    int // rows covered
	Batches []*Batch
}

// BuildFrags extracts every fragment of t. Deterministic for fixed
// rows.
func BuildFrags(t *Table) *Frags {
	f := &Frags{Table: t.Name}
	return extendFragsFrom(f, t, 0)
}

// ExtendFrags extends f with the rows appended since it was built,
// reusing every sealed fragment's batch and re-extracting only the
// open tail fragment — the same incremental contract as ExtendZones.
// The caller must have established that the first f.Rows rows are
// unchanged; a nil f builds from scratch.
func ExtendFrags(f *Frags, t *Table) *Frags {
	if f == nil || f.Rows > len(t.Rows) {
		return BuildFrags(t)
	}
	sealed := len(f.Batches)
	if sealed > 0 && f.Batches[sealed-1].Len < FragmentRows {
		sealed-- // partial tail fragment: re-extract with the new rows
	}
	nf := &Frags{Table: t.Name, Batches: f.Batches[:sealed:sealed]}
	return extendFragsFrom(nf, t, sealed*FragmentRows)
}

func extendFragsFrom(f *Frags, t *Table, from int) *Frags {
	for start := from; start < len(t.Rows); start += FragmentRows {
		end := start + FragmentRows
		if end > len(t.Rows) {
			end = len(t.Rows)
		}
		f.Batches = append(f.Batches, BatchRange(t, start, end))
	}
	f.Rows = len(t.Rows)
	return f
}
