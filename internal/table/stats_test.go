package table

import (
	"fmt"
	"reflect"
	"testing"
)

func statsFixture() *Table {
	t := New("sales", Schema{
		{Name: "product", Type: TypeString},
		{Name: "revenue", Type: TypeFloat},
		{Name: "units", Type: TypeInt},
	})
	products := []string{"Alpha", "Beta", "Gamma", "Alpha"}
	for i := 0; i < 16; i++ {
		rev := F(float64(100 + i*10))
		if i%8 == 7 {
			rev = Null(TypeFloat)
		}
		t.MustAppend([]Value{S(products[i%4]), rev, I(int64(i))})
	}
	return t
}

func TestBuildStatsBasics(t *testing.T) {
	ts := BuildStats(statsFixture())
	if ts.Rows != 16 {
		t.Fatalf("rows = %d, want 16", ts.Rows)
	}
	cs := ts.Col("product")
	if cs == nil {
		t.Fatal("no stats for product")
	}
	if cs.NDV != 3 || cs.Nulls != 0 {
		t.Errorf("product NDV=%d nulls=%d, want 3/0", cs.NDV, cs.Nulls)
	}
	if n, ok := cs.EqCount(S("Alpha")); !ok || n != 8 {
		t.Errorf("EqCount(Alpha) = %d,%v, want 8,true (Alpha appears twice per cycle)", n, ok)
	}
	if n, ok := cs.EqCount(S("Zeta")); !ok || n != 0 {
		t.Errorf("EqCount(Zeta) = %d,%v, want 0,true (exact set covers absence)", n, ok)
	}
	rev := ts.Col("revenue")
	if rev.Nulls != 2 {
		t.Errorf("revenue nulls = %d, want 2", rev.Nulls)
	}
	if rev.Min.Float() != 100 || rev.Max.Float() != 240 {
		t.Errorf("revenue bounds = [%v, %v], want [100, 240]", rev.Min, rev.Max)
	}
	if ts.Col("no_such") != nil {
		t.Error("stats invented an unknown column")
	}
}

func TestSelectivityExactAndRange(t *testing.T) {
	ts := BuildStats(statsFixture())
	cs := ts.Col("product")
	if f, ok := cs.Selectivity(Pred{Col: "product", Op: OpEq, Val: S("Beta")}); !ok || f != 4.0/16 {
		t.Errorf("eq selectivity = %v,%v, want 0.25", f, ok)
	}
	if f, ok := cs.Selectivity(Pred{Col: "product", Op: OpContains, Val: S("a")}); !ok || f != 1.0 {
		t.Errorf("contains selectivity = %v,%v, want 1.0 (every product has an 'a')", f, ok)
	}
	if f, ok := cs.Selectivity(Pred{Col: "product", Op: OpNe, Val: S("Alpha")}); !ok || f != 0.5 {
		t.Errorf("ne selectivity = %v,%v, want 0.5", f, ok)
	}
	units := ts.Col("units")
	if f, ok := units.Selectivity(Pred{Col: "units", Op: OpLt, Val: I(8)}); !ok || f != 0.5 {
		t.Errorf("range selectivity = %v,%v, want 0.5 (exact counts)", f, ok)
	}
	rev := ts.Col("revenue")
	// NULL literal and null rows never match.
	if f, ok := rev.Selectivity(Pred{Col: "revenue", Op: OpEq, Val: Null(TypeFloat)}); !ok || f != 0 {
		t.Errorf("null literal selectivity = %v,%v, want 0", f, ok)
	}
}

func TestSelectivityHistogramFallback(t *testing.T) {
	// More than StatsMaxExact distinct values forces histogram-only
	// estimation.
	tb := New("wide", Schema{{Name: "v", Type: TypeInt}})
	n := StatsMaxExact * 4
	for i := 0; i < n; i++ {
		tb.MustAppend([]Value{I(int64(i))})
	}
	cs := BuildStats(tb).Col("v")
	if cs.Exact != nil {
		t.Fatalf("exact counts kept for NDV=%d > %d", cs.NDV, StatsMaxExact)
	}
	sum := 0
	for _, b := range cs.Hist {
		sum += b.Count
	}
	if sum != n {
		t.Fatalf("histogram counts sum to %d, want %d", sum, n)
	}
	f, ok := cs.Selectivity(Pred{Col: "v", Op: OpLt, Val: I(int64(n / 4))})
	if !ok {
		t.Fatal("histogram could not judge a range predicate")
	}
	if f < 0.2 || f > 0.3 {
		t.Errorf("interpolated quartile selectivity = %v, want ≈0.25", f)
	}
	// Equality outside the bounds is impossible.
	if f, ok := cs.Selectivity(Pred{Col: "v", Op: OpEq, Val: I(int64(n + 5))}); !ok || f != 0 {
		t.Errorf("out-of-bounds equality = %v,%v, want 0", f, ok)
	}
}

func TestCatalogPutBuildsAndVersionsStats(t *testing.T) {
	c := NewCatalog()
	tb := statsFixture()
	c.Put(tb)
	ts := c.StatsOf("sales")
	if ts == nil {
		t.Fatal("Put did not build statistics")
	}
	if ts.Epoch != c.Epoch() {
		t.Errorf("stats epoch %d != catalog epoch %d", ts.Epoch, c.Epoch())
	}
	tb.MustAppend([]Value{S("Delta"), F(1), I(99)})
	c.Put(tb)
	ts2 := c.StatsOf("sales")
	if ts2.Epoch != c.Epoch() || ts2 == ts {
		t.Error("re-Put did not rebuild statistics at the new epoch")
	}
	if ts2.Col("product").NDV != 4 {
		t.Errorf("rebuilt NDV = %d, want 4", ts2.Col("product").NDV)
	}
	if c.StatsOf("missing") != nil {
		t.Error("stats for unknown table")
	}
}

// clearEpochs strips the catalog-epoch stamp so stats built through
// different Put sequences compare structurally.
func clearEpochs(ts *TableStats) *TableStats {
	cp := *ts
	cp.Epoch = 0
	return &cp
}

// FuzzStats is the histogram-maintenance property test: any Put
// sequence arriving at the same final rows yields identical statistics
// (determinism — the stats are a pure function of table content, which
// is what makes parallel ingest stats-safe), and the structural
// invariants hold: bucket counts and exact counts both sum to the
// non-null row count, NDV matches the bucket NDV total, and bounds
// bracket every bucket.
func FuzzStats(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 200, 7}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{255, 0, 255, 0, 9, 9, 9, 9, 9, 40, 41, 42}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, chunks uint8) {
		tb := New("fuzz", Schema{
			{Name: "k", Type: TypeString},
			{Name: "n", Type: TypeInt},
		})
		for i, b := range data {
			k := S(fmt.Sprintf("v%d", b%29))
			n := I(int64(int(b) - 128))
			if b%17 == 0 {
				k = Null(TypeString)
			}
			if b%13 == 0 {
				n = Null(TypeInt)
			}
			tb.MustAppend([]Value{k, n})
			_ = i
		}

		// One-shot build vs incremental re-Puts of growing prefixes
		// (the ingest pattern: mutate in place, re-Put): final stats
		// must be identical because they depend only on final rows.
		c := NewCatalog()
		c.Put(tb)
		oneShot := c.StatsOf("fuzz")

		inc := NewCatalog()
		step := int(chunks%8) + 1
		grow := New("fuzz", tb.Schema)
		for i, row := range tb.Rows {
			grow.Rows = append(grow.Rows, row)
			if (i+1)%step == 0 {
				inc.Put(grow)
			}
		}
		inc.Put(grow)
		if !reflect.DeepEqual(clearEpochs(oneShot), clearEpochs(inc.StatsOf("fuzz"))) {
			t.Fatalf("incremental Put stats diverge from one-shot build:\n%+v\nvs\n%+v",
				oneShot, inc.StatsOf("fuzz"))
		}

		for _, cs := range oneShot.Cols {
			nonNull := cs.Rows - cs.Nulls
			histSum, histNDV := 0, 0
			for _, b := range cs.Hist {
				if b.Count <= 0 || b.NDV <= 0 {
					t.Fatalf("%s: degenerate bucket %+v", cs.Col, b)
				}
				if Compare(b.Lower, b.Upper) > 0 {
					t.Fatalf("%s: inverted bucket bounds %+v", cs.Col, b)
				}
				histSum += b.Count
				histNDV += b.NDV
			}
			if histSum != nonNull {
				t.Fatalf("%s: bucket counts sum to %d, want non-null rows %d", cs.Col, histSum, nonNull)
			}
			if histNDV != cs.NDV {
				t.Fatalf("%s: bucket NDVs sum to %d, want %d", cs.Col, histNDV, cs.NDV)
			}
			if cs.Exact != nil {
				exactSum := 0
				for _, vc := range cs.Exact {
					exactSum += vc.Count
				}
				if exactSum != nonNull {
					t.Fatalf("%s: exact counts sum to %d, want %d", cs.Col, exactSum, nonNull)
				}
				if len(cs.Exact) != cs.NDV {
					t.Fatalf("%s: %d exact values, want NDV %d", cs.Col, len(cs.Exact), cs.NDV)
				}
			}
			if nonNull > 0 {
				if cs.Min.IsNull() || cs.Max.IsNull() || Compare(cs.Min, cs.Max) > 0 {
					t.Fatalf("%s: bad bounds [%v, %v]", cs.Col, cs.Min, cs.Max)
				}
			}
		}
	})
}
