package table

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// zonesFixture builds a table spanning several fragments with a
// low-NDV string column, a monotone int column (distinct per row, so
// per-fragment ranges are disjoint) and a float column with nulls.
func zonesFixture(rows int) *Table {
	t := New("sales", Schema{
		{Name: "product", Type: TypeString},
		{Name: "seq", Type: TypeInt},
		{Name: "revenue", Type: TypeFloat},
	})
	products := []string{"Alpha", "Beta", "Gamma"}
	for i := 0; i < rows; i++ {
		rev := F(float64(100 + i))
		if i%97 == 13 {
			rev = Null(TypeFloat)
		}
		t.MustAppend([]Value{S(products[i%len(products)]), I(int64(i)), rev})
	}
	return t
}

func TestBuildZonesFragments(t *testing.T) {
	tb := zonesFixture(2*FragmentRows + 40)
	z := BuildZones(tb)
	if len(z.Maps) != 3 {
		t.Fatalf("fragments = %d, want 3", len(z.Maps))
	}
	if z.Rows != tb.Len() {
		t.Fatalf("zones cover %d rows, want %d", z.Rows, tb.Len())
	}
	zm := z.Maps[1]
	if zm.Start != FragmentRows || zm.End != 2*FragmentRows {
		t.Fatalf("fragment 1 covers [%d,%d), want [%d,%d)", zm.Start, zm.End, FragmentRows, 2*FragmentRows)
	}
	seq := zm.Col("seq")
	if seq == nil || seq.Min.Int() != FragmentRows || seq.Max.Int() != 2*FragmentRows-1 {
		t.Fatalf("seq bounds = [%v,%v], want [%d,%d]", seq.Min, seq.Max, FragmentRows, 2*FragmentRows-1)
	}
	if seq.Exact {
		t.Error("256 distinct ints kept an exact set beyond ZoneMaxVals")
	}
	prod := zm.Col("product")
	if prod == nil || !prod.Exact || len(prod.Vals) != 3 {
		t.Fatalf("product zone = %+v, want exact 3-value set", prod)
	}
	if z.Maps[2].End-z.Maps[2].Start != 40 {
		t.Errorf("tail fragment holds %d rows, want 40", z.Maps[2].End-z.Maps[2].Start)
	}
}

func TestZoneRefutes(t *testing.T) {
	tb := zonesFixture(FragmentRows)
	zm := BuildZones(tb).Maps[0]
	cases := []struct {
		pred    Pred
		refuted bool
	}{
		{Pred{Col: "seq", Op: OpGt, Val: I(999)}, true},
		{Pred{Col: "seq", Op: OpGe, Val: I(255)}, false},
		{Pred{Col: "seq", Op: OpGe, Val: I(256)}, true},
		{Pred{Col: "seq", Op: OpLt, Val: I(0)}, true},
		{Pred{Col: "seq", Op: OpLe, Val: I(0)}, false},
		{Pred{Col: "seq", Op: OpEq, Val: I(-3)}, true},
		{Pred{Col: "product", Op: OpEq, Val: S("Delta")}, true},
		{Pred{Col: "product", Op: OpEq, Val: S("Beta")}, false},
		{Pred{Col: "product", Op: OpNe, Val: S("Alpha")}, false},
		{Pred{Col: "product", Op: OpContains, Val: S("amm")}, false},
		{Pred{Col: "product", Op: OpContains, Val: S("zzz")}, true},
		{Pred{Col: "product", Op: OpEq, Val: Null(TypeString)}, true},
		{Pred{Col: "no_such", Op: OpEq, Val: S("x")}, false},
	}
	for _, tc := range cases {
		if got := zm.Col(tc.pred.Col).Refutes(tc.pred); got != tc.refuted {
			t.Errorf("refutes(%s) = %v, want %v", tc.pred, got, tc.refuted)
		}
	}
	// A refuted fragment must genuinely be empty under the predicate.
	for _, tc := range cases {
		if !tc.refuted || zm.Col(tc.pred.Col) == nil {
			continue
		}
		got, err := Filter(tb, tc.pred)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 0 {
			t.Errorf("refuted predicate %s matches %d rows — unsound", tc.pred, got.Len())
		}
	}
}

// TestPruneMatchesFilter is the soundness property: for a battery of
// predicates, filtering only the surviving ranges returns exactly the
// rows a full-table filter returns, in the same order.
func TestPruneMatchesFilter(t *testing.T) {
	tb := zonesFixture(3*FragmentRows + 17)
	z := BuildZones(tb)
	preds := [][]Pred{
		{{Col: "seq", Op: OpLt, Val: I(100)}},
		{{Col: "seq", Op: OpGe, Val: I(700)}},
		{{Col: "seq", Op: OpGt, Val: I(int64(tb.Len() + 5))}},
		{{Col: "seq", Op: OpGe, Val: I(300)}, {Col: "seq", Op: OpLt, Val: I(400)}},
		{{Col: "product", Op: OpEq, Val: S("Beta")}},
		{{Col: "product", Op: OpEq, Val: S("Zeta")}},
		{{Col: "revenue", Op: OpGt, Val: F(1e9)}},
		{{Col: "revenue", Op: OpLe, Val: F(150)}},
	}
	for _, ps := range preds {
		keep, pruned := z.Prune(ps)
		if pruned+countRanges(keep, z) != len(z.Maps) {
			t.Errorf("%v: pruned %d + kept ranges do not cover %d fragments", ps, pruned, len(z.Maps))
		}
		want, err := Filter(tb, ps...)
		if err != nil {
			t.Fatal(err)
		}
		got, scanned, err := FilterRanges(tb, keep, ps...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%v: pruned filter returns %d rows, full filter %d", ps, got.Len(), want.Len())
		}
		if scanned != RangesLen(keep) {
			t.Errorf("%v: scanned %d, want %d", ps, scanned, RangesLen(keep))
		}
		if pruned > 0 && scanned >= tb.Len() {
			t.Errorf("%v: pruning %d fragments did not reduce the scan", ps, pruned)
		}
	}
}

// countRanges counts how many fragments the kept ranges span (ranges
// merge adjacent fragments, so expand against the fragment grid).
func countRanges(keep []RowRange, z *Zones) int {
	n := 0
	for _, zm := range z.Maps {
		for _, r := range keep {
			if zm.Start >= r.Start && zm.End <= r.End {
				n++
				break
			}
		}
	}
	return n
}

func TestIntersectRanges(t *testing.T) {
	a := []RowRange{{0, 256}, {512, 768}}
	b := []RowRange{{100, 600}}
	got := IntersectRanges(a, b)
	want := []RowRange{{100, 256}, {512, 600}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if out := IntersectRanges(a, nil); len(out) != 0 {
		t.Fatalf("intersect with empty = %v, want empty", out)
	}
}

// TestCatalogPutIncrementalBitEquivalence drives the append-only fast
// path directly through Catalog.Put and pins its statistics and zone
// maps to the full rebuild, including across the fragment-seal
// boundary and after an in-place mutation forces the slow path.
func TestCatalogPutIncrementalBitEquivalence(t *testing.T) {
	tb := zonesFixture(FragmentRows - 5)
	c := NewCatalog()
	c.Put(tb)

	assertEqualFullBuild := func(step string) {
		t.Helper()
		if got, want := clearEpochs(c.StatsOf("sales")), clearEpochs(BuildStats(tb)); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: incremental stats diverge from full rebuild:\n%+v\nvs\n%+v", step, got, want)
		}
		if got, want := c.ZonesOf("sales"), BuildZones(tb); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: incremental zones diverge from full rebuild:\n%+v\nvs\n%+v", step, got, want)
		}
	}

	// Appends crossing the fragment boundary, re-Put each batch.
	for batch := 0; batch < 4; batch++ {
		for i := 0; i < 7; i++ {
			tb.MustAppend([]Value{S("Delta"), I(int64(10000 + batch*10 + i)), F(float64(batch))})
		}
		c.Put(tb)
		assertEqualFullBuild(fmt.Sprintf("append batch %d", batch))
	}

	// In-place mutation (replaced row slice) must fall back to the full
	// rebuild and still agree.
	tb.Rows[3] = append([]Value(nil), tb.Rows[3]...)
	tb.Rows[3][0] = S("Mutated")
	c.Put(tb)
	assertEqualFullBuild("in-place mutation")

	// Schema widening (extract.Merge's shape: new column, rows extended
	// in place) must also fall back.
	tb.Schema = append(tb.Schema, Column{Name: "extra", Type: TypeInt})
	for i := range tb.Rows {
		tb.Rows[i] = append(tb.Rows[i], Null(TypeInt))
	}
	c.Put(tb)
	assertEqualFullBuild("schema widening")
}

// FuzzIncrementalStats pins bit-equivalence between the incremental
// statistics/zone-map maintenance and the full rebuild across random
// Put sequences: appends (the fast path), in-place row replacements
// and re-Puts of rebuilt tables (the slow path), interleaved
// arbitrarily. After every Put the catalog's statistics and zone maps
// must equal a from-scratch BuildStats/BuildZones of the final rows.
func FuzzIncrementalStats(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 251, 0, 9}, uint8(3))
	f.Add(bytes.Repeat([]byte{7, 130, 255, 0, 64, 65}, 120), uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, step uint8) {
		tb := New("fuzz", Schema{
			{Name: "k", Type: TypeString},
			{Name: "n", Type: TypeInt},
			{Name: "f", Type: TypeFloat},
		})
		c := NewCatalog()
		c.Put(tb)
		every := int(step%7) + 1
		for i, b := range data {
			switch {
			case b < 230 || tb.Len() == 0:
				k := S(fmt.Sprintf("v%d", b%23))
				n := I(int64(int(b) - 100))
				fv := F(float64(b) / 3)
				if b%19 == 0 {
					k = Null(TypeString)
				}
				if b%11 == 0 {
					fv = Null(TypeFloat)
				}
				tb.MustAppend([]Value{k, n, fv})
			case b < 243:
				// In-place replacement: new row slice at an existing index.
				ri := int(b) % tb.Len()
				row := append([]Value(nil), tb.Rows[ri]...)
				row[1] = I(int64(b))
				tb.Rows[ri] = row
			default:
				// Rebuild the table object wholesale (same name, copied
				// rows): the registered headers all change.
				nt := New("fuzz", tb.Schema)
				nt.Rows = append([][]Value(nil), tb.Rows...)
				tb = nt
			}
			if (i+1)%every == 0 {
				c.Put(tb)
				if got, want := clearEpochs(c.StatsOf("fuzz")), clearEpochs(BuildStats(tb)); !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: incremental stats diverge from full rebuild:\n%+v\nvs\n%+v", i, got, want)
				}
				if got, want := c.ZonesOf("fuzz"), BuildZones(tb); !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: incremental zones diverge from full rebuild:\n%+v\nvs\n%+v", i, got, want)
				}
			}
		}
	})
}

// TestStatsRefutes pins the table-level zone-bound refutation feeding
// SelectivityWith's exact zeros and logical.ProvablyEmpty.
func TestStatsRefutes(t *testing.T) {
	ts := BuildStats(statsFixture()) // revenue in [100,240], units 0..15, product 3 values
	refuted := []Pred{
		{Col: "revenue", Op: OpGt, Val: F(240)},
		{Col: "revenue", Op: OpGe, Val: F(241)},
		{Col: "revenue", Op: OpLt, Val: F(100)},
		{Col: "units", Op: OpEq, Val: I(99)},
		{Col: "product", Op: OpContains, Val: S("xyz")},
		{Col: "product", Op: OpEq, Val: Null(TypeString)},
	}
	for _, p := range refuted {
		if !ts.Col(p.Col).Refutes(p) {
			t.Errorf("stats failed to refute %s", p)
		}
		if f, ok := ts.Col(p.Col).Selectivity(p); !ok || f != 0 {
			t.Errorf("selectivity(%s) = %v,%v, want exact 0", p, f, ok)
		}
	}
	kept := []Pred{
		{Col: "revenue", Op: OpGe, Val: F(240)},
		{Col: "revenue", Op: OpLe, Val: F(100)},
		{Col: "units", Op: OpEq, Val: I(15)},
		{Col: "product", Op: OpNe, Val: S("Alpha")},
	}
	for _, p := range kept {
		if ts.Col(p.Col).Refutes(p) {
			t.Errorf("stats wrongly refuted satisfiable %s", p)
		}
	}
	if !ts.Refutes([]Pred{{Col: "units", Op: OpLt, Val: I(5)}, {Col: "revenue", Op: OpGt, Val: F(1e6)}}) {
		t.Error("conjunction with one refuted conjunct not refuted")
	}
}
