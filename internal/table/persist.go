package table

import (
	"encoding/json"
	"fmt"
	"io"
)

// persistTable is the on-disk form of one table: schema plus rows in
// display encoding (NULL as JSON null), plus the per-column statistics
// and per-fragment zone maps built at its last Put, so a loaded
// catalog plans — and prunes — with the same estimates it was saved
// with.
type persistTable struct {
	Name    string         `json:"name"`
	Columns []Column       `json:"columns"`
	Rows    [][]*string    `json:"rows"`
	Stats   []persistStats `json:"stats,omitempty"`
	Zones   []persistZone  `json:"zones,omitempty"`
}

// persistZone is the on-disk form of one fragment's zone map.
type persistZone struct {
	Start int              `json:"lo"`
	End   int              `json:"hi"`
	Cols  []persistZoneCol `json:"cols"`
}

type persistZoneCol struct {
	Col   string   `json:"col"`
	Nulls int      `json:"nulls,omitempty"`
	Min   *string  `json:"min,omitempty"`
	Max   *string  `json:"max,omitempty"`
	Vals  []string `json:"vals,omitempty"`
	Exact bool     `json:"exact,omitempty"`
}

// persistStats is the on-disk form of one column's statistics. Values
// round-trip through their display strings, typed by the column they
// belong to.
type persistStats struct {
	Col   string          `json:"col"`
	Rows  int             `json:"rows"`
	Nulls int             `json:"nulls,omitempty"`
	NDV   int             `json:"ndv"`
	Min   *string         `json:"min,omitempty"`
	Max   *string         `json:"max,omitempty"`
	Hist  []persistBucket `json:"hist,omitempty"`
	Exact []persistCount  `json:"exact,omitempty"`
}

type persistBucket struct {
	Lower string `json:"lo"`
	Upper string `json:"hi"`
	Count int    `json:"n"`
	NDV   int    `json:"ndv"`
}

type persistCount struct {
	Val   string `json:"v"`
	Count int    `json:"n"`
}

// persistRollup is the on-disk form of one rollup definition. Only the
// definition is serialized: the materialization (like columnar
// fragments) is derived data, deterministically rebuilt from the base
// table at load.
type persistRollup struct {
	Name    string       `json:"name"`
	Base    string       `json:"base"`
	GroupBy []string     `json:"group_by"`
	Aggs    []persistAgg `json:"aggs"`
}

// persistAgg is the on-disk form of one aggregate, with the function
// round-tripped through its display name.
type persistAgg struct {
	Func string `json:"func"`
	Col  string `json:"col,omitempty"`
	As   string `json:"as,omitempty"`
}

// persistCatalog is the on-disk form of a catalog.
type persistCatalog struct {
	Tables  []persistTable  `json:"tables"`
	Rollups []persistRollup `json:"rollups,omitempty"`
}

// WriteJSON serializes the catalog deterministically (tables and
// rollups sorted by name). Values round-trip through their display
// strings, which is lossless for every supported type. Rollup
// materializations are not serialized as tables — only their
// definitions are, and loading re-materializes them from the base
// rows bit-identically.
func (c *Catalog) WriteJSON(w io.Writer) error {
	var p persistCatalog
	for _, def := range c.Rollups() {
		pr := persistRollup{Name: def.Name, Base: def.Base, GroupBy: append([]string(nil), def.GroupBy...)}
		for _, a := range def.Aggs {
			pr.Aggs = append(pr.Aggs, persistAgg{Func: a.Func.String(), Col: a.Col, As: a.As})
		}
		p.Rollups = append(p.Rollups, pr)
	}
	for _, name := range c.Names() {
		if _, ok := c.RollupByName(name); ok {
			continue
		}
		t, err := c.Get(name)
		if err != nil {
			return err
		}
		pt := persistTable{Name: t.Name, Columns: append([]Column(nil), t.Schema...)}
		for _, row := range t.Rows {
			pr := make([]*string, len(row))
			for i, v := range row {
				if v.IsNull() {
					continue
				}
				s := v.String()
				pr[i] = &s
			}
			pt.Rows = append(pt.Rows, pr)
		}
		pt.Stats = persistTableStats(c.StatsOf(name))
		pt.Zones = persistTableZones(c.ZonesOf(name))
		p.Tables = append(p.Tables, pt)
	}
	if err := json.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("table: write catalog: %w", err)
	}
	return nil
}

func persistTableStats(ts *TableStats) []persistStats {
	if ts == nil {
		return nil
	}
	out := make([]persistStats, len(ts.Cols))
	for i, cs := range ts.Cols {
		ps := persistStats{Col: cs.Col, Rows: cs.Rows, Nulls: cs.Nulls, NDV: cs.NDV}
		if !cs.Min.IsNull() {
			s := cs.Min.String()
			ps.Min = &s
		}
		if !cs.Max.IsNull() {
			s := cs.Max.String()
			ps.Max = &s
		}
		for _, b := range cs.Hist {
			ps.Hist = append(ps.Hist, persistBucket{
				Lower: b.Lower.String(), Upper: b.Upper.String(), Count: b.Count, NDV: b.NDV,
			})
		}
		for _, vc := range cs.Exact {
			ps.Exact = append(ps.Exact, persistCount{Val: vc.Val.String(), Count: vc.Count})
		}
		out[i] = ps
	}
	return out
}

func persistTableZones(z *Zones) []persistZone {
	if z == nil {
		return nil
	}
	out := make([]persistZone, len(z.Maps))
	for i, zm := range z.Maps {
		pz := persistZone{Start: zm.Start, End: zm.End, Cols: make([]persistZoneCol, len(zm.Cols))}
		for ci, zc := range zm.Cols {
			pc := persistZoneCol{Col: zc.Col, Nulls: zc.Nulls, Exact: zc.Exact}
			if !zc.Min.IsNull() {
				s := zc.Min.String()
				pc.Min = &s
			}
			if !zc.Max.IsNull() {
				s := zc.Max.String()
				pc.Max = &s
			}
			for _, v := range zc.Vals {
				pc.Vals = append(pc.Vals, v.String())
			}
			pz.Cols[ci] = pc
		}
		out[i] = pz
	}
	return out
}

// ReadCatalogJSON reconstructs a catalog written by WriteJSON,
// restoring serialized per-column statistics and fragment zone maps
// (or rebuilding them for files written before they existed) so
// planning over a loaded catalog reproduces the saved system's
// physical plans, including its fragment-pruning decisions.
func ReadCatalogJSON(r io.Reader) (*Catalog, error) {
	var p persistCatalog
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("table: read catalog: %w", err)
	}
	c := NewCatalog()
	for _, pt := range p.Tables {
		t := New(pt.Name, append(Schema(nil), pt.Columns...))
		for ri, pr := range pt.Rows {
			if len(pr) != len(t.Schema) {
				return nil, fmt.Errorf("table: read catalog %s row %d: %w", pt.Name, ri, ErrSchemaMismatch)
			}
			row := make([]Value, len(pr))
			for i, cell := range pr {
				if cell == nil {
					row[i] = Null(t.Schema[i].Type)
					continue
				}
				v, err := Parse(t.Schema[i].Type, *cell)
				if err != nil {
					return nil, fmt.Errorf("table: read catalog %s row %d: %w", pt.Name, ri, err)
				}
				row[i] = v
			}
			if err := t.Append(row); err != nil {
				return nil, fmt.Errorf("table: read catalog %s row %d: %w", pt.Name, ri, err)
			}
		}
		if pt.Stats == nil {
			c.Put(t)
			continue
		}
		ts, err := parseTableStats(t, pt.Stats)
		if err != nil {
			return nil, fmt.Errorf("table: read catalog %s: %w", pt.Name, err)
		}
		z, err := parseTableZones(t, pt.Zones)
		if err != nil {
			return nil, fmt.Errorf("table: read catalog %s: %w", pt.Name, err)
		}
		c.putWithStats(t, ts, z, nil)
	}
	for _, pr := range p.Rollups {
		def := RollupDef{Name: pr.Name, Base: pr.Base, GroupBy: append([]string(nil), pr.GroupBy...)}
		for _, pa := range pr.Aggs {
			fn, err := ParseAggFunc(pa.Func)
			if err != nil {
				return nil, fmt.Errorf("table: read catalog rollup %s: %w", pr.Name, err)
			}
			def.Aggs = append(def.Aggs, Agg{Func: fn, Col: pa.Col, As: pa.As})
		}
		if err := c.AddRollup(def); err != nil {
			return nil, fmt.Errorf("table: read catalog rollup %s: %w", pr.Name, err)
		}
	}
	return c, nil
}

// parseTableZones restores serialized zone maps; files written before
// zone maps existed rebuild them from the rows (BuildZones is a pure
// function of the rows, so the rebuilt maps — and every pruning
// decision — match the saved system's exactly).
func parseTableZones(t *Table, zones []persistZone) (*Zones, error) {
	if zones == nil {
		return BuildZones(t), nil
	}
	z := &Zones{Table: t.Name, Rows: t.Len(), Maps: make([]ZoneMap, len(zones))}
	prevEnd := 0
	for i, pz := range zones {
		// Fragment ranges index straight into the rows at scan time, so
		// a corrupt file must be rejected here, like every other
		// malformed field: in-bounds, non-empty, ascending and disjoint.
		if pz.Start < prevEnd || pz.End <= pz.Start || pz.End > t.Len() {
			return nil, fmt.Errorf("table: zone fragment [%d,%d) out of order or bounds (rows %d)",
				pz.Start, pz.End, t.Len())
		}
		prevEnd = pz.End
		zm := ZoneMap{Start: pz.Start, End: pz.End, Cols: make([]ZoneCol, len(pz.Cols))}
		for ci, pc := range pz.Cols {
			idx := t.Schema.ColIndex(pc.Col)
			if idx < 0 {
				return nil, fmt.Errorf("zone map for unknown column %s: %w", pc.Col, ErrNoColumn)
			}
			typ := t.Schema[idx].Type
			zc := ZoneCol{Col: pc.Col, Nulls: pc.Nulls, Exact: pc.Exact}
			var err error
			if zc.Min, err = parseStatValue(typ, pc.Min); err != nil {
				return nil, err
			}
			if zc.Max, err = parseStatValue(typ, pc.Max); err != nil {
				return nil, err
			}
			for _, raw := range pc.Vals {
				v, err := Parse(typ, raw)
				if err != nil {
					return nil, err
				}
				zc.Vals = append(zc.Vals, v)
			}
			zm.Cols[ci] = zc
		}
		z.Maps[i] = zm
	}
	return z, nil
}

func parseTableStats(t *Table, cols []persistStats) (*TableStats, error) {
	ts := &TableStats{Table: t.Name, Rows: t.Len(), Cols: make([]ColStats, len(cols))}
	for i, ps := range cols {
		ci := t.Schema.ColIndex(ps.Col)
		if ci < 0 {
			return nil, fmt.Errorf("stats for unknown column %s: %w", ps.Col, ErrNoColumn)
		}
		typ := t.Schema[ci].Type
		cs := ColStats{Col: ps.Col, Rows: ps.Rows, Nulls: ps.Nulls, NDV: ps.NDV}
		var err error
		if cs.Min, err = parseStatValue(typ, ps.Min); err != nil {
			return nil, err
		}
		if cs.Max, err = parseStatValue(typ, ps.Max); err != nil {
			return nil, err
		}
		for _, pb := range ps.Hist {
			lo, err := Parse(typ, pb.Lower)
			if err != nil {
				return nil, err
			}
			hi, err := Parse(typ, pb.Upper)
			if err != nil {
				return nil, err
			}
			cs.Hist = append(cs.Hist, Bucket{Lower: lo, Upper: hi, Count: pb.Count, NDV: pb.NDV})
		}
		for _, pc := range ps.Exact {
			v, err := Parse(typ, pc.Val)
			if err != nil {
				return nil, err
			}
			cs.Exact = append(cs.Exact, ValueCount{Val: v, Count: pc.Count})
		}
		ts.Cols[i] = cs
	}
	return ts, nil
}

func parseStatValue(typ ColType, s *string) (Value, error) {
	if s == nil {
		return Null(typ), nil
	}
	return Parse(typ, *s)
}
