package table

import (
	"encoding/json"
	"fmt"
	"io"
)

// persistTable is the on-disk form of one table: schema plus rows in
// display encoding (NULL as JSON null).
type persistTable struct {
	Name    string      `json:"name"`
	Columns []Column    `json:"columns"`
	Rows    [][]*string `json:"rows"`
}

// persistCatalog is the on-disk form of a catalog.
type persistCatalog struct {
	Tables []persistTable `json:"tables"`
}

// WriteJSON serializes the catalog deterministically (tables sorted by
// name). Values round-trip through their display strings, which is
// lossless for every supported type.
func (c *Catalog) WriteJSON(w io.Writer) error {
	var p persistCatalog
	for _, name := range c.Names() {
		t, err := c.Get(name)
		if err != nil {
			return err
		}
		pt := persistTable{Name: t.Name, Columns: append([]Column(nil), t.Schema...)}
		for _, row := range t.Rows {
			pr := make([]*string, len(row))
			for i, v := range row {
				if v.IsNull() {
					continue
				}
				s := v.String()
				pr[i] = &s
			}
			pt.Rows = append(pt.Rows, pr)
		}
		p.Tables = append(p.Tables, pt)
	}
	if err := json.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("table: write catalog: %w", err)
	}
	return nil
}

// ReadCatalogJSON reconstructs a catalog written by WriteJSON.
func ReadCatalogJSON(r io.Reader) (*Catalog, error) {
	var p persistCatalog
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("table: read catalog: %w", err)
	}
	c := NewCatalog()
	for _, pt := range p.Tables {
		t := New(pt.Name, append(Schema(nil), pt.Columns...))
		for ri, pr := range pt.Rows {
			if len(pr) != len(t.Schema) {
				return nil, fmt.Errorf("table: read catalog %s row %d: %w", pt.Name, ri, ErrSchemaMismatch)
			}
			row := make([]Value, len(pr))
			for i, cell := range pr {
				if cell == nil {
					row[i] = Null(t.Schema[i].Type)
					continue
				}
				v, err := Parse(t.Schema[i].Type, *cell)
				if err != nil {
					return nil, fmt.Errorf("table: read catalog %s row %d: %w", pt.Name, ri, err)
				}
				row[i] = v
			}
			if err := t.Append(row); err != nil {
				return nil, fmt.Errorf("table: read catalog %s row %d: %w", pt.Name, ri, err)
			}
		}
		c.Put(t)
	}
	return c, nil
}
