package table

import (
	"fmt"
	"strings"
)

// Zone-map shape parameters. Every table partitions into fixed-size
// row fragments; each fragment carries a per-column summary (min/max
// bounds, null count, and — while the fragment stays low-cardinality —
// the exact distinct-value set). Scans consult the summaries to skip
// fragments a pushed predicate conjunction provably cannot match.
const (
	// FragmentRows is the fixed fragment size, in rows. The last
	// fragment of a table may be shorter.
	FragmentRows = 256
	// ZoneMaxVals is the distinct-value ceiling below which a fragment
	// column keeps its exact value set (enabling equality, inequality
	// and CONTAINS refutation beyond what min/max bounds can prove).
	ZoneMaxVals = 8
)

// RowRange is a half-open row interval [Start, End).
type RowRange struct {
	Start, End int
}

// Len returns the number of rows in the range.
func (r RowRange) Len() int { return r.End - r.Start }

// ZoneCol is one column's summary within a fragment.
type ZoneCol struct {
	Col   string
	Nulls int
	Min   Value // NULL when the fragment has no non-null values
	Max   Value
	Vals  []Value // ascending distinct non-null values; valid only when Exact
	Exact bool    // Vals holds every distinct non-null value of the fragment
}

// ZoneMap is one fragment's zone map: the row range it covers plus a
// summary per schema column.
type ZoneMap struct {
	Start, End int
	Cols       []ZoneCol // schema order
}

// Zones is the per-fragment zone-map set of one table, built (and
// extended incrementally for append-only Puts) by Catalog.Put. Like
// TableStats, a Zones value is immutable once published: extension
// produces a fresh Zones sharing the sealed fragments.
type Zones struct {
	Table string
	Rows  int // rows covered
	Maps  []ZoneMap
}

// BuildZones computes the zone maps of every fragment. Deterministic
// for fixed rows.
func BuildZones(t *Table) *Zones {
	z := &Zones{Table: t.Name}
	return extendZonesFrom(z, t, 0)
}

// ExtendZones extends z with the rows appended since it was built,
// reusing every sealed fragment's map and rebuilding only the open
// tail fragment. The caller must have established that the first
// z.Rows rows are unchanged (Catalog.Put's append-only check); any
// other shape must rebuild with BuildZones. A nil z builds from
// scratch.
func ExtendZones(z *Zones, t *Table) *Zones {
	if z == nil || z.Rows > len(t.Rows) {
		return BuildZones(t)
	}
	sealed := len(z.Maps)
	if sealed > 0 && z.Maps[sealed-1].End-z.Maps[sealed-1].Start < FragmentRows {
		sealed-- // partial tail fragment: rebuild it with the new rows
	}
	nz := &Zones{Table: t.Name, Maps: z.Maps[:sealed:sealed]}
	return extendZonesFrom(nz, t, sealed*FragmentRows)
}

// extendZonesFrom appends fragment maps covering rows [from, len).
func extendZonesFrom(z *Zones, t *Table, from int) *Zones {
	for start := from; start < len(t.Rows); start += FragmentRows {
		end := start + FragmentRows
		if end > len(t.Rows) {
			end = len(t.Rows)
		}
		z.Maps = append(z.Maps, buildZoneMap(t, start, end))
	}
	z.Rows = len(t.Rows)
	return z
}

func buildZoneMap(t *Table, start, end int) ZoneMap {
	zm := ZoneMap{Start: start, End: end, Cols: make([]ZoneCol, len(t.Schema))}
	for ci, col := range t.Schema {
		zc := ZoneCol{Col: col.Name, Exact: true}
		for ri := start; ri < end; ri++ {
			v := t.Rows[ri][ci]
			if v.IsNull() {
				zc.Nulls++
				continue
			}
			if zc.Min.IsNull() || Compare(v, zc.Min) < 0 {
				zc.Min = v
			}
			if zc.Max.IsNull() || Compare(v, zc.Max) > 0 {
				zc.Max = v
			}
			if zc.Exact {
				zc.Vals, zc.Exact = zoneInsert(zc.Vals, v)
			}
		}
		if !zc.Exact {
			zc.Vals = nil
		}
		zm.Cols[ci] = zc
	}
	return zm
}

// zoneInsert adds v to the ascending distinct set, reporting overflow
// (set abandoned) when the set would exceed ZoneMaxVals.
func zoneInsert(vals []Value, v Value) ([]Value, bool) {
	lo := 0
	for lo < len(vals) {
		c := Compare(vals[lo], v)
		if c == 0 {
			return vals, true
		}
		if c > 0 {
			break
		}
		lo++
	}
	if len(vals) >= ZoneMaxVals {
		return nil, false
	}
	vals = append(vals, Value{})
	copy(vals[lo+1:], vals[lo:])
	vals[lo] = v
	return vals, true
}

// Col returns the named column's summary (case-insensitive), or nil.
func (zm *ZoneMap) Col(name string) *ZoneCol {
	for i := range zm.Cols {
		if strings.EqualFold(zm.Cols[i].Col, name) {
			return &zm.Cols[i]
		}
	}
	return nil
}

// Refutes reports whether the zone proves that no row of the fragment
// can satisfy p. The rules are sound with respect to Pred.Eval: NULL
// cells (and NULL literals) never satisfy any comparison, bounds use
// the same total Compare order Eval uses, and CONTAINS/equality tests
// on exact value sets replay Eval's own matching.
func (zc *ZoneCol) Refutes(p Pred) bool {
	if zc == nil {
		return false
	}
	if p.Val.IsNull() {
		return true // NULL literal matches nothing
	}
	if zc.Min.IsNull() {
		return true // every cell in the fragment is NULL
	}
	switch p.Op {
	case OpEq:
		if zc.Exact {
			return !zoneHas(zc.Vals, p.Val)
		}
		return Compare(p.Val, zc.Min) < 0 || Compare(p.Val, zc.Max) > 0
	case OpNe:
		// Refuted only when every non-null value equals the literal.
		if zc.Exact {
			return len(zc.Vals) == 1 && Equal(zc.Vals[0], p.Val)
		}
		return Equal(zc.Min, zc.Max) && Equal(zc.Min, p.Val)
	case OpLt:
		return Compare(zc.Min, p.Val) >= 0
	case OpLe:
		return Compare(zc.Min, p.Val) > 0
	case OpGt:
		return Compare(zc.Max, p.Val) <= 0
	case OpGe:
		return Compare(zc.Max, p.Val) < 0
	case OpContains:
		if !zc.Exact {
			return false // substring matching needs the value set
		}
		needle := strings.ToLower(p.Val.String())
		for _, v := range zc.Vals {
			if strings.Contains(strings.ToLower(v.String()), needle) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func zoneHas(vals []Value, v Value) bool {
	for _, x := range vals {
		if Equal(x, v) {
			return true
		}
	}
	return false
}

// Refutes reports whether the fragment's zone map proves the predicate
// conjunction empty: any single refuted conjunct refutes the whole
// fragment. Predicates on columns the map does not cover refute
// nothing.
func (zm *ZoneMap) Refutes(preds []Pred) bool {
	for _, p := range preds {
		if zm.Col(p.Col).Refutes(p) {
			return true
		}
	}
	return false
}

// Prune partitions the table's fragments under a pushed predicate
// conjunction: keep is the merged, ascending row ranges of fragments
// the zone maps cannot refute (never nil — empty means every fragment
// is provably empty), pruned counts refuted fragments. Deterministic
// for fixed zones and predicates.
func (z *Zones) Prune(preds []Pred) (keep []RowRange, pruned int) {
	keep = make([]RowRange, 0, len(z.Maps))
	for _, zm := range z.Maps {
		if zm.Refutes(preds) {
			pruned++
			continue
		}
		if n := len(keep); n > 0 && keep[n-1].End == zm.Start {
			keep[n-1].End = zm.End
		} else {
			keep = append(keep, RowRange{Start: zm.Start, End: zm.End})
		}
	}
	return keep, pruned
}

// IntersectRanges intersects two ascending disjoint range lists,
// returning their (never-nil) ascending intersection. Used to combine
// zone-pruned fragments with an explicit scan row range.
func IntersectRanges(a, b []RowRange) []RowRange {
	out := make([]RowRange, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].Start, a[i].End
		if b[j].Start > lo {
			lo = b[j].Start
		}
		if b[j].End < hi {
			hi = b[j].End
		}
		if lo < hi {
			out = append(out, RowRange{Start: lo, End: hi})
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// RangesLen sums the row counts of a range list.
func RangesLen(ranges []RowRange) int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// Describe renders the zone maps for diagnostics (uniquery -stats):
// one line per fragment with each column's bounds, null count and
// exact value set.
func (z *Zones) Describe() string {
	if z == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "zones: %d fragments of up to %d rows over %d rows\n", len(z.Maps), FragmentRows, z.Rows)
	for i, zm := range z.Maps {
		fmt.Fprintf(&b, "  frag[%d] rows [%d,%d)\n", i, zm.Start, zm.End)
		for _, zc := range zm.Cols {
			fmt.Fprintf(&b, "    %-16s nulls=%d min=%s max=%s", zc.Col, zc.Nulls, zc.Min, zc.Max)
			if zc.Exact {
				vals := make([]string, len(zc.Vals))
				for vi, v := range zc.Vals {
					vals[vi] = v.String()
				}
				fmt.Fprintf(&b, " vals=[%s]", strings.Join(vals, ","))
			}
			b.WriteByte('\n')
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
