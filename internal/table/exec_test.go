package table

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFilter(t *testing.T) {
	tbl := salesTable(t)
	got, err := Filter(tbl, Pred{Col: "quarter", Op: OpEq, Val: S("Q2")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("Q2 rows = %d", got.Len())
	}
	got, err = Filter(tbl,
		Pred{Col: "quarter", Op: OpEq, Val: S("Q2")},
		Pred{Col: "revenue", Op: OpGt, Val: F(100)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("conjunction rows = %d", got.Len())
	}
}

func TestFilterOperators(t *testing.T) {
	tbl := salesTable(t)
	cases := []struct {
		pred Pred
		want int
	}{
		{Pred{Col: "revenue", Op: OpGe, Val: F(100)}, 3},
		{Pred{Col: "revenue", Op: OpLt, Val: F(100)}, 2},
		{Pred{Col: "revenue", Op: OpLe, Val: F(80)}, 2},
		{Pred{Col: "revenue", Op: OpNe, Val: F(200)}, 4},
		{Pred{Col: "product", Op: OpContains, Val: S("alph")}, 2},
	}
	for _, tc := range cases {
		got, err := Filter(tbl, tc.pred)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != tc.want {
			t.Errorf("%v matched %d rows, want %d", tc.pred, got.Len(), tc.want)
		}
	}
}

func TestFilterNullNeverMatches(t *testing.T) {
	tbl := New("t", Schema{{Name: "x", Type: TypeInt}})
	tbl.MustAppend([]Value{Null(TypeInt)})
	tbl.MustAppend([]Value{I(1)})
	for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpGt} {
		got, err := Filter(tbl, Pred{Col: "x", Op: op, Val: I(1)})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got.Rows {
			if r[0].IsNull() {
				t.Errorf("NULL matched %v", op)
			}
		}
	}
}

func TestFilterUnknownColumn(t *testing.T) {
	_, err := Filter(salesTable(t), Pred{Col: "nope", Op: OpEq, Val: I(1)})
	if !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column: %v", err)
	}
}

func TestFilterIdempotenceProperty(t *testing.T) {
	tbl := salesTable(t)
	f := func(threshold float64) bool {
		p := Pred{Col: "revenue", Op: OpGt, Val: F(threshold)}
		once, err := Filter(tbl, p)
		if err != nil {
			return false
		}
		twice, err := Filter(once, p)
		if err != nil {
			return false
		}
		return once.Len() == twice.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProject(t *testing.T) {
	got, err := Project(salesTable(t), "revenue", "product")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Schema) != 2 || got.Schema[0].Name != "revenue" {
		t.Errorf("schema = %v", got.Schema.Names())
	}
	if got.Rows[0][1].Str() != "Alpha" {
		t.Errorf("row = %v", got.Rows[0])
	}
	if _, err := Project(salesTable(t), "missing"); !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing: %v", err)
	}
}

func productTable(t *testing.T) *Table {
	t.Helper()
	tbl := New("products", Schema{
		{Name: "product", Type: TypeString},
		{Name: "maker", Type: TypeString},
	})
	tbl.MustAppend([]Value{S("Alpha"), S("Acme")})
	tbl.MustAppend([]Value{S("Beta"), S("Globex")})
	tbl.MustAppend([]Value{S("Delta"), S("Acme")})
	return tbl
}

func TestHashJoin(t *testing.T) {
	joined, err := HashJoin(salesTable(t), productTable(t), "product", "product")
	if err != nil {
		t.Fatal(err)
	}
	// Alpha x2 + Beta x2 rows match; Gamma and Delta don't.
	if joined.Len() != 4 {
		t.Errorf("join rows = %d", joined.Len())
	}
	// Collided column renamed.
	if joined.Schema.ColIndex("products.product") < 0 {
		t.Errorf("schema = %v", joined.Schema.Names())
	}
}

func TestHashJoinSymmetricCount(t *testing.T) {
	a, err := HashJoin(salesTable(t), productTable(t), "product", "product")
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashJoin(productTable(t), salesTable(t), "product", "product")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Errorf("join cardinality asymmetric: %d vs %d", a.Len(), b.Len())
	}
}

func TestHashJoinNullKeysDropped(t *testing.T) {
	l := New("l", Schema{{Name: "k", Type: TypeString}})
	l.MustAppend([]Value{Null(TypeString)})
	l.MustAppend([]Value{S("a")})
	r := New("r", Schema{{Name: "k2", Type: TypeString}})
	r.MustAppend([]Value{Null(TypeString)})
	r.MustAppend([]Value{S("a")})
	j, err := HashJoin(l, r, "k", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Errorf("null keys joined: %d rows", j.Len())
	}
}

func TestHashJoinMissingColumn(t *testing.T) {
	_, err := HashJoin(salesTable(t), productTable(t), "nope", "product")
	if !errors.Is(err, ErrNoColumn) {
		t.Errorf("missing col: %v", err)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	sales := salesTable(t)
	// Non-equi: pair each sale with strictly higher-revenue sales.
	out := NestedLoopJoin(sales, sales, func(l, r []Value) bool {
		return Compare(l[2], r[2]) < 0
	})
	want := 0
	for _, a := range sales.Rows {
		for _, b := range sales.Rows {
			if Compare(a[2], b[2]) < 0 {
				want++
			}
		}
	}
	if out.Len() != want {
		t.Errorf("nested loop rows = %d, want %d", out.Len(), want)
	}
}

func TestAggregateGlobal(t *testing.T) {
	got, err := Aggregate(salesTable(t), nil, []Agg{
		{Func: AggSum, Col: "revenue", As: "total"},
		{Func: AggCount, Col: "", As: "n"},
		{Func: AggAvg, Col: "units", As: "avg_units"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("global agg rows = %d", got.Len())
	}
	row := got.Rows[0]
	if row[0].Float() != 560 {
		t.Errorf("sum = %v", row[0])
	}
	if row[1].Int() != 5 {
		t.Errorf("count = %v", row[1])
	}
	if row[2].Float() != 11.2 {
		t.Errorf("avg = %v", row[2])
	}
}

func TestAggregateGroupBy(t *testing.T) {
	got, err := Aggregate(salesTable(t), []string{"product"}, []Agg{
		{Func: AggSum, Col: "revenue", As: "total"},
		{Func: AggMax, Col: "revenue", As: "best"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("groups = %d", got.Len())
	}
	byProduct := map[string][]Value{}
	for _, r := range got.Rows {
		byProduct[r[0].Str()] = r
	}
	if byProduct["Alpha"][1].Float() != 220 {
		t.Errorf("Alpha total = %v", byProduct["Alpha"][1])
	}
	if byProduct["Beta"][2].Float() != 80 {
		t.Errorf("Beta max = %v", byProduct["Beta"][2])
	}
}

func TestAggregateMinMaxNonNumeric(t *testing.T) {
	got, err := Aggregate(salesTable(t), nil, []Agg{
		{Func: AggMin, Col: "quarter", As: "first_q"},
		{Func: AggMax, Col: "product", As: "last_p"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].Str() != "Q1" || got.Rows[0][1].Str() != "Gamma" {
		t.Errorf("min/max: %v", got.Rows[0])
	}
}

func TestAggregateNullsSkipped(t *testing.T) {
	tbl := New("t", Schema{{Name: "x", Type: TypeFloat}})
	tbl.MustAppend([]Value{F(10)})
	tbl.MustAppend([]Value{Null(TypeFloat)})
	got, err := Aggregate(tbl, nil, []Agg{
		{Func: AggAvg, Col: "x", As: "a"},
		{Func: AggCount, Col: "x", As: "c"},
		{Func: AggCount, Col: "", As: "rows"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].Float() != 10 {
		t.Errorf("avg over nulls = %v", got.Rows[0][0])
	}
	if got.Rows[0][1].Int() != 1 || got.Rows[0][2].Int() != 2 {
		t.Errorf("counts = %v", got.Rows[0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	tbl := New("t", Schema{{Name: "x", Type: TypeFloat}})
	got, err := Aggregate(tbl, nil, []Agg{{Func: AggSum, Col: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty input produced %d groups", got.Len())
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(salesTable(t), []string{"nope"}, nil); !errors.Is(err, ErrNoColumn) {
		t.Errorf("bad group col: %v", err)
	}
	if _, err := Aggregate(salesTable(t), nil, []Agg{{Func: AggSum, Col: "product"}}); err == nil {
		t.Error("sum over string accepted")
	}
	if _, err := Aggregate(salesTable(t), nil, []Agg{{Func: AggSum, Col: ""}}); err == nil {
		t.Error("sum without column accepted")
	}
}

func TestAggregateSumAvgIdentityProperty(t *testing.T) {
	// AVG * COUNT == SUM for any set of non-null values.
	f := func(xs []int16) bool {
		tbl := New("t", Schema{{Name: "x", Type: TypeFloat}})
		for _, x := range xs {
			tbl.MustAppend([]Value{F(float64(x))})
		}
		got, err := Aggregate(tbl, nil, []Agg{
			{Func: AggSum, Col: "x"}, {Func: AggAvg, Col: "x"}, {Func: AggCount, Col: "x"},
		})
		if err != nil {
			return false
		}
		if got.Len() == 0 {
			return len(xs) == 0
		}
		sum := got.Rows[0][0].Float()
		avg := got.Rows[0][1].Float()
		cnt := float64(got.Rows[0][2].Int())
		diff := sum - avg*cnt
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSort(t *testing.T) {
	got, err := Sort(salesTable(t), SortKey{Col: "revenue", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][2].Float() != 200 || got.Rows[4][2].Float() != 60 {
		t.Errorf("sorted order wrong: %v", got.Rows)
	}
	// Original untouched.
	orig := salesTable(t)
	if orig.Rows[0][2].Float() != 100 {
		t.Error("Sort mutated input")
	}
}

func TestSortMultiKey(t *testing.T) {
	got, err := Sort(salesTable(t), SortKey{Col: "quarter"}, SortKey{Col: "revenue", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][1].Str() != "Q1" || got.Rows[0][2].Float() != 100 {
		t.Errorf("multi-key first row: %v", got.Rows[0])
	}
}

func TestLimitAndDistinct(t *testing.T) {
	tbl := salesTable(t)
	if Limit(tbl, 2).Len() != 2 {
		t.Error("limit 2")
	}
	if Limit(tbl, 100).Len() != 5 {
		t.Error("limit overshoot")
	}
	if Limit(tbl, -1).Len() != 0 {
		t.Error("negative limit")
	}
	dup := tbl.Clone()
	dup.Rows = append(dup.Rows, dup.Rows[0])
	if Distinct(dup).Len() != 5 {
		t.Errorf("distinct = %d", Distinct(dup).Len())
	}
}

func TestCmpOpString(t *testing.T) {
	if OpEq.String() != "=" || OpContains.String() != "CONTAINS" || CmpOp(99).String() != "?" {
		t.Error("CmpOp.String broken")
	}
}

func TestAggFuncString(t *testing.T) {
	if AggSum.String() != "SUM" || AggFunc(9).String() != "?" {
		t.Error("AggFunc.String broken")
	}
}

func TestPredString(t *testing.T) {
	p := Pred{Col: "revenue", Op: OpGt, Val: F(100)}
	if p.String() != "revenue > 100" {
		t.Errorf("Pred.String = %q", p.String())
	}
}
