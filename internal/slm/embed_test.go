package slm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	e := NewEmbedder(64)
	a := e.Embed("Q2 sales increased 20%")
	b := e.Embed("Q2 sales increased 20%")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := NewEmbedder(128)
	v := e.Embed("customer satisfaction ratings for products")
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("norm^2 = %v, want 1", sum)
	}
}

func TestEmbedSimilarityOrdering(t *testing.T) {
	e := NewEmbedder(256)
	query := e.Embed("sales increase for Product Alpha in Q2")
	related := e.Embed("Product Alpha sales increased during Q2")
	unrelated := e.Embed("the patient was diagnosed with influenza")
	if Cosine(query, related) <= Cosine(query, unrelated) {
		t.Errorf("related %v <= unrelated %v", Cosine(query, related), Cosine(query, unrelated))
	}
}

func TestEmbedStemmingUnifies(t *testing.T) {
	e := NewEmbedder(256)
	a := e.Embed("sales increased rapidly")
	b := e.Embed("sale increase rapid")
	if Cosine(a, b) < 0.5 {
		t.Errorf("stemmed variants cosine = %v, want >= 0.5", Cosine(a, b))
	}
}

func TestEmbedEmptyInput(t *testing.T) {
	e := NewEmbedder(32)
	v := e.Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty input should embed to zero vector")
		}
	}
	if Cosine(v, v) != 0 {
		t.Error("cosine of zero vectors should be 0")
	}
}

func TestEmbedStopwordsIgnored(t *testing.T) {
	e := NewEmbedder(128)
	a := e.Embed("the sales of the products")
	b := e.Embed("sales products")
	if c := Cosine(a, b); c < 0.8 {
		t.Errorf("stopword-stripped cosine = %v, want >= 0.8", c)
	}
}

func TestNewEmbedderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEmbedder(0) should panic")
		}
	}()
	NewEmbedder(0)
}

func TestCosineMismatchedLengths(t *testing.T) {
	if Cosine([]float32{1, 0}, []float32{1}) != 0 {
		t.Error("mismatched lengths should return 0")
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	e := NewEmbedder(64)
	f := func(a, b string) bool {
		c := Cosine(e.Embed(a), e.Embed(b))
		return c >= -1.0000001 && c <= 1.0000001 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineSelfSimilarityProperty(t *testing.T) {
	e := NewEmbedder(64)
	f := func(s string) bool {
		v := e.Embed(s)
		c := Cosine(v, v)
		// Self-similarity is 1 for non-zero vectors, 0 for zero vectors.
		return math.Abs(c-1) < 1e-6 || c == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStem(t *testing.T) {
	tests := map[string]string{
		"increased": "increas",
		"increase":  "increas",
		"increases": "increas",
		"companies": "company",
		"running":   "runn",
		"sales":     "sale", // len 4 after s-strip: silent-e rule skips
		"sale":      "sale",
		"glass":     "glass",
		"boxes":     "box",
		"rapidly":   "rapid",
		"is":        "is",
	}
	for in, want := range tests {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmbedCostAccounting(t *testing.T) {
	cost := NewCostModel(SLMProfile())
	e := NewEmbedder(64).WithCost(cost)
	e.Embed("three content words here")
	if cost.Calls(OpEmbed) != 1 {
		t.Errorf("embed calls = %d", cost.Calls(OpEmbed))
	}
}
