package slm

// RNG is a small deterministic pseudo-random number generator
// (splitmix64). Every stochastic component in this repository takes an
// explicit *RNG so that all experiments are reproducible under a seed;
// the math/rand global source is never used.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("slm: RNG.Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal value using the
// sum of uniforms (Irwin–Hall with 12 terms), which is accurate enough
// for workload noise and avoids math imports here.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from the current stream. Forked
// generators let concurrent components share one seed without sharing
// mutable state.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64()}
}
