package slm

import (
	"strings"
)

// EntityType classifies a recognized named entity. The inventory covers
// the paper's running examples: products, drugs, patients, quarters,
// percentages, money, dates, ratings and generic identifiers.
type EntityType string

// Entity types recognized by the simulated SLM tagger.
const (
	EntProduct      EntityType = "PRODUCT"
	EntDrug         EntityType = "DRUG"
	EntPerson       EntityType = "PERSON"
	EntOrg          EntityType = "ORG"
	EntQuarter      EntityType = "QUARTER"
	EntDate         EntityType = "DATE"
	EntPercent      EntityType = "PERCENT"
	EntMoney        EntityType = "MONEY"
	EntRating       EntityType = "RATING"
	EntQuantity     EntityType = "QUANTITY"
	EntID           EntityType = "ID"
	EntMetric       EntityType = "METRIC"
	EntCondition    EntityType = "CONDITION"
	EntSideEffect   EntityType = "SIDE_EFFECT"
	EntManufacturer EntityType = "MANUFACTURER"
	EntMisc         EntityType = "MISC"
)

// Entity is a recognized span with a canonical form used as the graph
// node key. Canonicalization lower-cases and strips determiners so that
// "the Product Alpha" and "Product Alpha" unify.
type Entity struct {
	Type      EntityType
	Text      string // surface form
	Canonical string // canonical key
	Start     int    // byte offset in source
	End       int
}

// NER recognizes entities with a gazetteer plus deterministic surface
// patterns — the "lightweight SLM-based tagging" of Section III.A.
// A NER value is safe for concurrent use after construction.
type NER struct {
	gazetteer map[string]EntityType // canonical phrase -> type
	maxLen    int                   // longest gazetteer phrase, in tokens
	cost      *CostModel
}

// NewNER returns a recognizer with the built-in pattern rules and an
// empty gazetteer. Domain vocabularies are added with AddGazetteer.
func NewNER() *NER {
	return &NER{gazetteer: make(map[string]EntityType), maxLen: 1}
}

// WithCost attaches a cost model: each Recognize call is accounted as
// one simulated SLM inference over the token length. It returns n.
func (n *NER) WithCost(c *CostModel) *NER {
	n.cost = c
	return n
}

// AddGazetteer registers canonical phrases of a given type. Phrases are
// matched case-insensitively and greedily (longest match first).
func (n *NER) AddGazetteer(t EntityType, phrases ...string) {
	for _, p := range phrases {
		key := canonicalize(p)
		if key == "" {
			continue
		}
		n.gazetteer[key] = t
		if l := len(strings.Fields(key)); l > n.maxLen {
			n.maxLen = l
		}
	}
}

// GazetteerSize reports the number of registered phrases.
func (n *NER) GazetteerSize() int { return len(n.gazetteer) }

// Recognize extracts entities from text. Matching order: gazetteer
// (longest-first), then surface patterns (quarters, percents, money,
// ratings, dates, IDs, quantities), then capitalized-sequence proper
// nouns. Overlapping matches are resolved in that priority order.
func (n *NER) Recognize(text string) []Entity {
	tokens := Tokenize(text)
	if n.cost != nil {
		n.cost.Record(OpTag, len(tokens))
	}
	claimed := make([]bool, len(tokens))
	var ents []Entity

	add := func(e Entity, from, to int) {
		for i := from; i < to; i++ {
			claimed[i] = true
		}
		ents = append(ents, e)
	}

	// Pass 1: gazetteer, longest match first.
	for i := 0; i < len(tokens); i++ {
		if claimed[i] {
			continue
		}
		limit := n.maxLen
		if i+limit > len(tokens) {
			limit = len(tokens) - i
		}
		for l := limit; l >= 1; l-- {
			if anyClaimed(claimed, i, i+l) {
				continue
			}
			key := canonicalTokens(tokens[i : i+l])
			if t, ok := n.gazetteer[key]; ok {
				add(Entity{
					Type:      t,
					Text:      text[tokens[i].Start:tokens[i+l-1].End],
					Canonical: key,
					Start:     tokens[i].Start,
					End:       tokens[i+l-1].End,
				}, i, i+l)
				i += l - 1
				break
			}
		}
	}

	// Pass 2: surface patterns.
	for i := 0; i < len(tokens); i++ {
		if claimed[i] {
			continue
		}
		if e, width, ok := matchPattern(text, tokens, i, claimed); ok {
			add(e, i, i+width)
			i += width - 1
		}
	}

	// Pass 3: capitalized sequences as generic proper nouns.
	for i := 0; i < len(tokens); i++ {
		if claimed[i] || tokens[i].Kind != TokenWord || !isUpperInitial(tokens[i].Text) {
			continue
		}
		if i == 0 && !looksProper(tokens, 0) {
			continue
		}
		j := i
		for j < len(tokens) && !claimed[j] && tokens[j].Kind == TokenWord && isUpperInitial(tokens[j].Text) {
			j++
		}
		surface := text[tokens[i].Start:tokens[j-1].End]
		add(Entity{
			Type:      EntMisc,
			Text:      surface,
			Canonical: canonicalize(surface),
			Start:     tokens[i].Start,
			End:       tokens[j-1].End,
		}, i, j)
		i = j - 1
	}

	sortEntities(ents)
	return ents
}

// matchPattern tries the built-in surface patterns at token i.
func matchPattern(text string, tokens []Token, i int, claimed []bool) (Entity, int, bool) {
	t := tokens[i]
	lower := strings.ToLower(t.Text)

	// Quarter: "Q2", "Q2 2024", "second quarter".
	if len(lower) == 2 && lower[0] == 'q' && lower[1] >= '1' && lower[1] <= '4' {
		width := 1
		end := t.End
		if i+1 < len(tokens) && !claimed[i+1] && tokens[i+1].Kind == TokenNumber && isYear(tokens[i+1].Text) {
			width = 2
			end = tokens[i+1].End
		}
		return Entity{Type: EntQuarter, Text: text[t.Start:end], Canonical: canonicalize(text[t.Start:end]), Start: t.Start, End: end}, width, true
	}
	if ord, ok := ordinalQuarter(lower); ok && i+1 < len(tokens) && strings.EqualFold(tokens[i+1].Text, "quarter") {
		end := tokens[i+1].End
		return Entity{Type: EntQuarter, Text: text[t.Start:end], Canonical: "q" + ord, Start: t.Start, End: end}, 2, true
	}

	// Percent: number token ending in '%' or "N percent".
	if t.Kind == TokenNumber && strings.HasSuffix(t.Text, "%") {
		return Entity{Type: EntPercent, Text: t.Text, Canonical: strings.TrimSuffix(t.Text, "%") + "%", Start: t.Start, End: t.End}, 1, true
	}
	if t.Kind == TokenNumber && i+1 < len(tokens) && strings.EqualFold(tokens[i+1].Text, "percent") {
		end := tokens[i+1].End
		return Entity{Type: EntPercent, Text: text[t.Start:end], Canonical: t.Text + "%", Start: t.Start, End: end}, 2, true
	}

	// Money: "$1,234.56" — '$' tokenizes as a symbol before the number —
	// or "N dollars".
	if t.Kind == TokenSymbol && t.Text == "$" && i+1 < len(tokens) && tokens[i+1].Kind == TokenNumber {
		end := tokens[i+1].End
		unitWidth := 2
		if i+2 < len(tokens) && isMagnitudeWord(tokens[i+2].Text) {
			end = tokens[i+2].End
			unitWidth = 3
		}
		return Entity{Type: EntMoney, Text: text[t.Start:end], Canonical: canonicalize(text[t.Start:end]), Start: t.Start, End: end}, unitWidth, true
	}
	if t.Kind == TokenNumber && i+1 < len(tokens) && isCurrencyWord(tokens[i+1].Text) {
		end := tokens[i+1].End
		return Entity{Type: EntMoney, Text: text[t.Start:end], Canonical: canonicalize(text[t.Start:end]), Start: t.Start, End: end}, 2, true
	}

	// Rating: "4.5 stars", "rated 4 out of 5".
	if t.Kind == TokenNumber && i+1 < len(tokens) && isStarsWord(tokens[i+1].Text) {
		end := tokens[i+1].End
		return Entity{Type: EntRating, Text: text[t.Start:end], Canonical: t.Text, Start: t.Start, End: end}, 2, true
	}

	// Date: "2024-05-01", "May 5, 2024", "2024".
	if t.Kind == TokenNumber && isISODateStart(text, t) {
		end := t.Start + 10
		return Entity{Type: EntDate, Text: text[t.Start:end], Canonical: text[t.Start:end], Start: t.Start, End: end}, dateTokenWidth(tokens, i, end), true
	}
	if isMonthName(lower) && i+1 < len(tokens) && tokens[i+1].Kind == TokenNumber {
		end := tokens[i+1].End
		width := 2
		// Optional ", YYYY".
		j := i + 2
		if j < len(tokens) && tokens[j].Kind == TokenPunct && tokens[j].Text == "," && j+1 < len(tokens) && isYear(tokens[j+1].Text) {
			end = tokens[j+1].End
			width = 4
		}
		return Entity{Type: EntDate, Text: text[t.Start:end], Canonical: canonicalize(text[t.Start:end]), Start: t.Start, End: end}, width, true
	}

	// ID: "P-1042", "TRIAL_7", "#123" style mixed alphanumerics.
	if t.Kind == TokenWord && looksLikeID(t.Text) {
		return Entity{Type: EntID, Text: t.Text, Canonical: strings.ToLower(t.Text), Start: t.Start, End: t.End}, 1, true
	}

	// Quantity: "12 units", "3 tablets".
	if t.Kind == TokenNumber && i+1 < len(tokens) && isUnitWord(tokens[i+1].Text) {
		end := tokens[i+1].End
		return Entity{Type: EntQuantity, Text: text[t.Start:end], Canonical: canonicalize(text[t.Start:end]), Start: t.Start, End: end}, 2, true
	}

	return Entity{}, 0, false
}

func dateTokenWidth(tokens []Token, i int, end int) int {
	w := 1
	for j := i + 1; j < len(tokens) && tokens[j].Start < end; j++ {
		w++
	}
	return w
}

func anyClaimed(claimed []bool, from, to int) bool {
	for i := from; i < to; i++ {
		if claimed[i] {
			return true
		}
	}
	return false
}

func looksProper(tokens []Token, i int) bool {
	// A sentence-initial capitalized word counts as proper if the next
	// token is also capitalized ("Product Alpha ...").
	return i+1 < len(tokens) && tokens[i+1].Kind == TokenWord && isUpperInitial(tokens[i+1].Text)
}

func looksLikeID(s string) bool {
	hasLetter, hasDigit, hasSep := false, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			hasDigit = true
		case c == '_' || c == '-':
			hasSep = true
		case isLetter(c):
			hasLetter = true
		}
	}
	if !hasLetter || !hasDigit {
		return false
	}
	// Require a separator or an upper-case prefix like "P1042".
	return hasSep || (s[0] >= 'A' && s[0] <= 'Z')
}

func isYear(s string) bool {
	if len(s) != 4 {
		return false
	}
	for i := 0; i < 4; i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return s[0] == '1' || s[0] == '2'
}

func isISODateStart(text string, t Token) bool {
	if !isYear(t.Text) || t.Start+10 > len(text) {
		return false
	}
	s := text[t.Start : t.Start+10]
	return s[4] == '-' && s[7] == '-' &&
		isDigit(s[5]) && isDigit(s[6]) && isDigit(s[8]) && isDigit(s[9])
}

func ordinalQuarter(s string) (string, bool) {
	switch s {
	case "first":
		return "1", true
	case "second":
		return "2", true
	case "third":
		return "3", true
	case "fourth":
		return "4", true
	}
	return "", false
}

func isMonthName(s string) bool {
	switch s {
	case "january", "february", "march", "april", "may", "june", "july",
		"august", "september", "october", "november", "december",
		"jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept",
		"oct", "nov", "dec":
		return true
	}
	return false
}

func isCurrencyWord(s string) bool {
	switch strings.ToLower(s) {
	case "dollars", "dollar", "usd", "euros", "euro", "eur":
		return true
	}
	return false
}

func isMagnitudeWord(s string) bool {
	switch strings.ToLower(s) {
	case "million", "billion", "thousand", "k", "m", "bn":
		return true
	}
	return false
}

func isStarsWord(s string) bool {
	switch strings.ToLower(s) {
	case "stars", "star":
		return true
	}
	return false
}

func isUnitWord(s string) bool {
	switch strings.ToLower(s) {
	case "units", "unit", "tablets", "tablet", "mg", "ml", "items", "item",
		"orders", "order", "doses", "dose", "patients", "reviews":
		return true
	}
	return false
}

// canonicalize lower-cases, collapses whitespace, and strips leading
// determiners so surface variants share a key.
func canonicalize(s string) string {
	fields := strings.Fields(strings.ToLower(s))
	for len(fields) > 0 && determiners[fields[0]] {
		fields = fields[1:]
	}
	for i, f := range fields {
		fields[i] = strings.Trim(f, ".,;:!?\"'()[]{}")
	}
	return strings.Join(fields, " ")
}

func canonicalTokens(tokens []Token) string {
	parts := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if t.Kind == TokenPunct {
			continue
		}
		parts = append(parts, strings.ToLower(t.Text))
	}
	return strings.Join(parts, " ")
}

// sortEntities orders entities by start offset (stable, insertion sort —
// entity lists are short).
func sortEntities(ents []Entity) {
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].Start < ents[j-1].Start; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
}
