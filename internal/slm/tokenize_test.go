package slm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Q2 sales increased 20%", []string{"Q2", "sales", "increased", "20%"}},
		{"Hello, world!", []string{"Hello", ",", "world", "!"}},
		{"$1,234.56 revenue", []string{"$", "1,234.56", "revenue"}},
		{"patient-reported outcomes", []string{"patient-reported", "outcomes"}},
		{"don't stop", []string{"don't", "stop"}},
		{"", nil},
		{"   \t\n ", nil},
		{"3.5 stars", []string{"3.5", "stars"}},
		{"A/B test", []string{"A", "/", "B", "test"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		var texts []string
		for _, tok := range got {
			texts = append(texts, tok.Text)
		}
		if !equalStrings(texts, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, texts, tc.want)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "Product Alpha sold 42 units."
	for _, tok := range Tokenize(text) {
		if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
			t.Fatalf("bad offsets %+v for %q", tok, text)
		}
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("offset mismatch: token %q but text slice %q", tok.Text, text[tok.Start:tok.End])
		}
	}
}

func TestTokenizeNumberEdgeCases(t *testing.T) {
	// Sentence-final period must not be swallowed by the number.
	toks := Tokenize("Sales were 1,200.")
	if len(toks) != 4 {
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
	if toks[2].Text != "1,200" || toks[2].Kind != TokenNumber {
		t.Errorf("number token = %+v, want 1,200", toks[2])
	}
	if toks[3].Text != "." {
		t.Errorf("final token = %+v, want '.'", toks[3])
	}
}

func TestTokenizeKinds(t *testing.T) {
	toks := Tokenize("rated 4.5 stars ($99)")
	kinds := map[string]TokenKind{}
	for _, tok := range toks {
		kinds[tok.Text] = tok.Kind
	}
	if kinds["4.5"] != TokenNumber {
		t.Errorf("4.5 kind = %v", kinds["4.5"])
	}
	if kinds["rated"] != TokenWord {
		t.Errorf("rated kind = %v", kinds["rated"])
	}
	if kinds["("] != TokenPunct {
		t.Errorf("( kind = %v", kinds["("])
	}
	if kinds["$"] != TokenSymbol {
		t.Errorf("$ kind = %v", kinds["$"])
	}
}

func TestTokenKindString(t *testing.T) {
	for k, want := range map[TokenKind]string{
		TokenWord: "word", TokenNumber: "number", TokenPunct: "punct",
		TokenSymbol: "symbol", TokenKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("TokenKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestWords(t *testing.T) {
	got := Words(Tokenize("Compare Sales for Q2, please!"))
	want := []string{"compare", "sales", "for", "q2", "please"}
	if !equalStrings(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestSplitSentences(t *testing.T) {
	text := "Q2 sales increased 20%. Customer satisfaction fell. Dr. Smith approved the 3.5 mg dose on May 5, 2024."
	spans := SplitSentences(text)
	if len(spans) != 3 {
		t.Fatalf("got %d sentences: %#v", len(spans), spans)
	}
	if !strings.HasPrefix(spans[2].Text, "Dr. Smith") {
		t.Errorf("abbreviation split wrongly: %q", spans[2].Text)
	}
	if !strings.Contains(spans[2].Text, "3.5 mg") {
		t.Errorf("decimal split wrongly: %q", spans[2].Text)
	}
}

func TestSplitSentencesOffsets(t *testing.T) {
	text := "First sentence. Second one! Third?"
	for _, s := range SplitSentences(text) {
		sub := text[s.Start:s.End]
		if strings.TrimSpace(sub) != s.Text {
			t.Errorf("span text %q != slice %q", s.Text, sub)
		}
	}
}

func TestSplitSentencesEmpty(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Errorf("SplitSentences(\"\") = %v", got)
	}
	if got := SplitSentences("   "); len(got) != 0 {
		t.Errorf("SplitSentences(blank) = %v", got)
	}
	if got := SplitSentences("no terminator"); len(got) != 1 {
		t.Errorf("unterminated text: %v", got)
	}
}

// Property: tokenization covers every non-space byte of ASCII inputs
// exactly once, in order.
func TestTokenizeCoverageProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Restrict to printable ASCII to keep the property crisp.
		s := make([]byte, 0, len(raw))
		for _, b := range raw {
			if b >= 32 && b < 127 {
				s = append(s, b)
			}
		}
		text := string(s)
		toks := Tokenize(text)
		last := 0
		for _, tok := range toks {
			if tok.Start < last {
				return false // overlap or out of order
			}
			// Bytes skipped between tokens must all be spaces.
			for i := last; i < tok.Start; i++ {
				if text[i] != ' ' && text[i] != '\t' {
					return false
				}
			}
			if text[tok.Start:tok.End] != tok.Text {
				return false
			}
			last = tok.End
		}
		for i := last; i < len(text); i++ {
			if text[i] != ' ' && text[i] != '\t' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
