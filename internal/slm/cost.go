package slm

import (
	"fmt"
	"sync"
	"time"
)

// Op identifies a class of simulated model invocation for cost
// accounting.
type Op int

// Operation classes recorded by the cost model.
const (
	OpTag Op = iota // NER / POS tagging pass
	OpEmbed
	OpGenerate
	opCount
)

// String names the operation class.
func (o Op) String() string {
	switch o {
	case OpTag:
		return "tag"
	case OpEmbed:
		return "embed"
	case OpGenerate:
		return "generate"
	default:
		return "unknown"
	}
}

// Profile parameterizes the simulated inference cost of a model class.
// The paper's efficiency argument (Section I) is about the cost
// structure of SLMs vs. LLMs — per-token latency and resident memory —
// so a profile captures exactly those. Values are loosely calibrated to
// the MobileLLM (sub-billion) vs. 70B-class comparison the paper cites:
// the LLM profile is ~40x slower per token and ~100x larger.
type Profile struct {
	Name          string
	LatencyPerTok time.Duration // simulated decode/encode time per token
	FixedLatency  time.Duration // per-call overhead (kernel launch, cache)
	MemoryBytes   int64         // resident weights + KV cache
}

// SLMProfile models a sub-billion-parameter on-device model.
func SLMProfile() Profile {
	return Profile{
		Name:          "slm-350m",
		LatencyPerTok: 2 * time.Microsecond,
		FixedLatency:  40 * time.Microsecond,
		MemoryBytes:   700 << 20, // 0.7 GiB fp16 weights
	}
}

// LLMProfile models a 70B-class served model, for the paper's
// comparison baseline. The absolute numbers are illustrative; only the
// ratio to SLMProfile matters for experiment E8.
func LLMProfile() Profile {
	return Profile{
		Name:          "llm-70b",
		LatencyPerTok: 80 * time.Microsecond,
		FixedLatency:  2 * time.Millisecond,
		MemoryBytes:   70 << 30, // 70 GiB
	}
}

// CostModel accumulates simulated inference cost. It is safe for
// concurrent use. A CostModel does not sleep; it converts recorded work
// into simulated latency so benchmarks report the cost *structure*
// without burning wall-clock time.
type CostModel struct {
	mu      sync.Mutex
	profile Profile
	calls   [opCount]int64
	tokens  [opCount]int64
}

// NewCostModel returns an empty accumulator for the given profile.
func NewCostModel(p Profile) *CostModel {
	return &CostModel{profile: p}
}

// Record accounts one model call of the given class over n tokens.
func (c *CostModel) Record(op Op, n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.calls[op]++
	c.tokens[op] += int64(n)
	c.mu.Unlock()
}

// Calls returns the number of calls recorded for op.
func (c *CostModel) Calls(op Op) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[op]
}

// Tokens returns the number of tokens recorded for op.
func (c *CostModel) Tokens(op Op) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tokens[op]
}

// TotalCalls returns calls across all operation classes.
func (c *CostModel) TotalCalls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s int64
	for _, v := range c.calls {
		s += v
	}
	return s
}

// TotalTokens returns tokens across all operation classes.
func (c *CostModel) TotalTokens() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s int64
	for _, v := range c.tokens {
		s += v
	}
	return s
}

// SimulatedLatency converts the recorded work into the latency the
// profiled model would have spent.
func (c *CostModel) SimulatedLatency() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d time.Duration
	for op := Op(0); op < opCount; op++ {
		d += time.Duration(c.calls[op]) * c.profile.FixedLatency
		d += time.Duration(c.tokens[op]) * c.profile.LatencyPerTok
	}
	return d
}

// MemoryBytes returns the profile's resident memory requirement.
func (c *CostModel) MemoryBytes() int64 { return c.profile.MemoryBytes }

// ProfileName returns the profile's name.
func (c *CostModel) ProfileName() string { return c.profile.Name }

// Reset zeroes the accumulated counters.
func (c *CostModel) Reset() {
	c.mu.Lock()
	c.calls = [opCount]int64{}
	c.tokens = [opCount]int64{}
	c.mu.Unlock()
}

// Snapshot returns a human-readable accounting line.
func (c *CostModel) Snapshot() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var d time.Duration
	var calls, toks int64
	for op := Op(0); op < opCount; op++ {
		d += time.Duration(c.calls[op])*c.profile.FixedLatency + time.Duration(c.tokens[op])*c.profile.LatencyPerTok
		calls += c.calls[op]
		toks += c.tokens[op]
	}
	return fmt.Sprintf("%s: %d calls, %d tokens, simulated %v, resident %d MiB",
		c.profile.Name, calls, toks, d, c.profile.MemoryBytes>>20)
}
