// Package slm implements the simulated Small Language Model substrate
// that the rest of the system is built on.
//
// The paper assumes an on-device SLM that can (1) tag named entities in
// text, (2) embed text for similarity, and (3) generate answers with
// temperature sampling. Go has no mature SLM inference bindings, so this
// package provides a deterministic, rule-based stand-in that exposes the
// same interface surface: Tokenize, Tagger, NER, Embedder, Generator,
// plus a CostModel that accounts for simulated inference cost so the
// paper's SLM-vs-LLM efficiency comparisons remain meaningful. See
// DESIGN.md §2 for the substitution rationale.
package slm

import (
	"strings"
	"unicode"
)

// TokenKind classifies a surface token.
type TokenKind int

// Token kinds produced by Tokenize.
const (
	TokenWord TokenKind = iota
	TokenNumber
	TokenPunct
	TokenSymbol
)

// String returns the kind name for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case TokenWord:
		return "word"
	case TokenNumber:
		return "number"
	case TokenPunct:
		return "punct"
	case TokenSymbol:
		return "symbol"
	default:
		return "unknown"
	}
}

// Token is a surface token with its byte offsets in the source text.
type Token struct {
	Text  string
	Kind  TokenKind
	Start int // byte offset of first byte
	End   int // byte offset one past last byte
}

// Tokenize splits text into word, number, punctuation and symbol tokens.
// Numbers keep internal '.' , ',' and '%' attached ("1,234.5%", "20%"),
// and words keep internal hyphens and apostrophes ("patient-reported",
// "don't"), which the extraction rules depend on.
func Tokenize(text string) []Token {
	var tokens []Token
	i := 0
	n := len(text)
	for i < n {
		c := rune(text[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case isDigit(byte(text[i])):
			start := i
			i++
			for i < n && (isDigit(text[i]) || text[i] == '.' || text[i] == ',') {
				// A trailing '.' or ',' belongs to the sentence, not the number.
				if (text[i] == '.' || text[i] == ',') && (i+1 >= n || !isDigit(text[i+1])) {
					break
				}
				i++
			}
			if i < n && text[i] == '%' {
				i++
			}
			tokens = append(tokens, Token{Text: text[start:i], Kind: TokenNumber, Start: start, End: i})
		case isWordStart(c):
			start := i
			i++
			for i < n {
				r := rune(text[i])
				if isWordPart(r) {
					i++
					continue
				}
				// Keep internal hyphen/apostrophe when followed by a
				// letter or digit ("patient-reported", "P-1042").
				if (r == '-' || r == '\'') && i+1 < n && isWordPart(rune(text[i+1])) {
					i += 2
					continue
				}
				break
			}
			tokens = append(tokens, Token{Text: text[start:i], Kind: TokenWord, Start: start, End: i})
		case isPunct(c):
			tokens = append(tokens, Token{Text: string(c), Kind: TokenPunct, Start: i, End: i + 1})
			i++
		default:
			tokens = append(tokens, Token{Text: string(c), Kind: TokenSymbol, Start: i, End: i + 1})
			i++
		}
	}
	return tokens
}

// Words returns just the lower-cased word and number texts of tokens,
// which is the form the embedder and BM25 consume.
func Words(tokens []Token) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if t.Kind == TokenWord || t.Kind == TokenNumber {
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}

// SplitSentences splits text on sentence-final punctuation while keeping
// abbreviations ("Dr.", "e.g.") and decimal points intact. Offsets are
// preserved so chunks can cite source spans.
func SplitSentences(text string) []Span {
	var spans []Span
	start := 0
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		if c == '.' || c == '!' || c == '?' || c == '\n' {
			if c == '.' && isAbbreviationDot(text, i) {
				i++
				continue
			}
			end := i + 1
			if s := strings.TrimSpace(text[start:end]); s != "" {
				spans = append(spans, Span{Start: start, End: end, Text: s})
			}
			i = end
			for i < n && (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' || text[i] == '\r') {
				i++
			}
			start = i
			continue
		}
		i++
	}
	if s := strings.TrimSpace(text[start:]); s != "" {
		spans = append(spans, Span{Start: start, End: n, Text: s})
	}
	return spans
}

// Span is a byte range of the source text with its trimmed content.
type Span struct {
	Start int
	End   int
	Text  string
}

// isAbbreviationDot reports whether the '.' at index i is part of an
// abbreviation or decimal rather than a sentence terminator.
func isAbbreviationDot(text string, i int) bool {
	// Decimal: digit on both sides.
	if i > 0 && i+1 < len(text) && isDigit(text[i-1]) && isDigit(text[i+1]) {
		return true
	}
	// Single-letter abbreviation like "A." mid-sentence followed by
	// lower-case continuation, or known short abbreviations.
	j := i - 1
	for j >= 0 && isLetter(text[j]) {
		j--
	}
	word := text[j+1 : i]
	switch strings.ToLower(word) {
	case "dr", "mr", "mrs", "ms", "prof", "st":
		// Title abbreviations precede capitalized names; always join.
		return true
	case "e.g", "i.e", "vs", "etc", "no", "fig", "al", "g", "e", "i":
		// Only treat as abbreviation when not at end of text and the
		// next non-space byte is lower case or a digit.
		k := i + 1
		for k < len(text) && text[k] == ' ' {
			k++
		}
		if k < len(text) && (isLower(text[k]) || isDigit(text[k])) {
			return true
		}
	}
	return false
}

func isDigit(b byte) bool  { return b >= '0' && b <= '9' }
func isLower(b byte) bool  { return b >= 'a' && b <= 'z' }
func isLetter(b byte) bool { return isLower(b) || (b >= 'A' && b <= 'Z') }

func isWordStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isWordPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

func isPunct(r rune) bool {
	switch r {
	case '.', ',', ';', ':', '!', '?', '(', ')', '[', ']', '{', '}', '"', '\'', '-', '/', '–', '—':
		return true
	}
	return unicode.IsPunct(r)
}
