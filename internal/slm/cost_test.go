package slm

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCostModelAccumulates(t *testing.T) {
	c := NewCostModel(SLMProfile())
	c.Record(OpTag, 10)
	c.Record(OpTag, 5)
	c.Record(OpEmbed, 20)
	if c.Calls(OpTag) != 2 || c.Tokens(OpTag) != 15 {
		t.Errorf("tag: calls=%d tokens=%d", c.Calls(OpTag), c.Tokens(OpTag))
	}
	if c.TotalCalls() != 3 || c.TotalTokens() != 35 {
		t.Errorf("total: calls=%d tokens=%d", c.TotalCalls(), c.TotalTokens())
	}
}

func TestCostModelLatencyRatio(t *testing.T) {
	slm := NewCostModel(SLMProfile())
	llm := NewCostModel(LLMProfile())
	for _, c := range []*CostModel{slm, llm} {
		c.Record(OpGenerate, 1000)
		c.Record(OpTag, 1000)
	}
	ratio := float64(llm.SimulatedLatency()) / float64(slm.SimulatedLatency())
	if ratio < 10 {
		t.Errorf("LLM/SLM latency ratio = %v, want >= 10", ratio)
	}
	if llm.MemoryBytes() <= slm.MemoryBytes() {
		t.Error("LLM memory should exceed SLM memory")
	}
}

func TestCostModelReset(t *testing.T) {
	c := NewCostModel(SLMProfile())
	c.Record(OpEmbed, 100)
	c.Reset()
	if c.TotalCalls() != 0 || c.TotalTokens() != 0 {
		t.Error("reset did not zero counters")
	}
	if c.SimulatedLatency() != 0 {
		t.Error("reset did not zero latency")
	}
}

func TestCostModelNilSafe(t *testing.T) {
	var c *CostModel
	c.Record(OpTag, 5) // must not panic
}

func TestCostModelConcurrent(t *testing.T) {
	c := NewCostModel(SLMProfile())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Record(OpEmbed, 1)
			}
		}()
	}
	wg.Wait()
	if c.Calls(OpEmbed) != 800 {
		t.Errorf("concurrent calls = %d, want 800", c.Calls(OpEmbed))
	}
}

func TestCostModelSnapshot(t *testing.T) {
	c := NewCostModel(SLMProfile())
	c.Record(OpGenerate, 12)
	s := c.Snapshot()
	if !strings.Contains(s, "slm-350m") || !strings.Contains(s, "1 calls") {
		t.Errorf("snapshot = %q", s)
	}
}

func TestSimulatedLatencyPositive(t *testing.T) {
	c := NewCostModel(SLMProfile())
	c.Record(OpGenerate, 100)
	if c.SimulatedLatency() < 100*2*time.Microsecond {
		t.Errorf("latency = %v too small", c.SimulatedLatency())
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpTag: "tag", OpEmbed: "embed", OpGenerate: "generate", Op(9): "unknown"} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestTagCoarse(t *testing.T) {
	tagged := Tag(Tokenize("The patient received Drug treatment in Q2 and improved quickly."))
	byText := map[string]POS{}
	for _, tt := range tagged {
		byText[tt.Text] = tt.POS
	}
	if byText["The"] != POSDeterminer {
		t.Errorf("The = %v", byText["The"])
	}
	if byText["received"] != POSVerb {
		t.Errorf("received = %v", byText["received"])
	}
	if byText["patient"] != POSNoun {
		t.Errorf("patient = %v", byText["patient"])
	}
	if byText["Drug"] != POSProperNoun {
		t.Errorf("Drug = %v", byText["Drug"])
	}
	if byText["and"] != POSConjunction {
		t.Errorf("and = %v", byText["and"])
	}
	if byText["in"] != POSPreposition {
		t.Errorf("in = %v", byText["in"])
	}
}

func TestPOSString(t *testing.T) {
	if POSNoun.String() != "NOUN" || POSProperNoun.String() != "PROPN" || POS(99).String() != "X" {
		t.Error("POS String mapping broken")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG streams diverge under same seed")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(21)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked RNGs should differ")
	}
}
